(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the ablation/validation experiments listed in
   DESIGN.md §3.

   Targets (run all by default, or select: `dune exec bench/main.exe -- t1 x4`):
     table1   (T1)  profiling overhead, LOOPS & SIMPLE, opt ON/OFF
     figure1  (F1)  the Fig. 1 statement-level CFG
     figure2  (F2)  the Fig. 2 extended CFG
     figure3  (F3)  the Fig. 3 annotated FCDG — TIME=920, STD_DEV=300
     counters (X1)  counter counts & dynamic updates: naive vs smart, per optimization
     sampling (X2)  PC-sampling vs counters at statement granularity
     accuracy (X3)  estimated TIME/STD_DEV vs measured mean/std over runs
     chunks   (X4)  variance-driven chunk size (Kruskal-Weiss) vs baselines
     static   (X5)  compile-time frequency analysis vs profiling
     wal      (P5)  crash-safe store: WAL append/recovery, compaction
     wall           Bechamel wall-clock suite (one Test per table/figure) *)

module Interp = S89_vm.Interp
module CM = S89_vm.Cost_model
module Optimize = S89_vm.Optimize
module Program = S89_frontend.Program
module Analysis = S89_profiling.Analysis
module Placement = S89_profiling.Placement
module Naive = S89_profiling.Naive
module Pipeline = S89_core.Pipeline
module Interproc = S89_core.Interproc
module Report = S89_core.Report
module Stats = S89_util.Stats
module W = S89_workloads.Demos
module Pool = S89_exec.Pool
module Chunked = S89_exec.Chunked

(* work pool shared by the targets that distribute independent reps
   (accuracy's measurement runs, chunks' simulator replications);
   set from --domains N, defaults to sequential *)
let bench_pool = ref (Pool.create ~domains:1 ())

let section title =
  Fmt.pr "@.=============================================================@.";
  Fmt.pr "%s@." title;
  Fmt.pr "=============================================================@."

(* ---- machine-readable results (--json FILE) ----

   [timed] is the one way to measure anything here: wall seconds plus
   bytes allocated (Gc.allocated_bytes covers minor+major+external).
   Experiments push named entries onto [json_entries]; [write_json]
   emits them by hand (no JSON library in the image). *)

let timed f =
  (* settle the heap first so a run never pays major-GC debt (or works
     against a fragmented free list) left by the previous — possibly much
     more allocation-heavy — measurement *)
  Gc.compact ();
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let wall = Unix.gettimeofday () -. t0 in
  let alloc = Gc.allocated_bytes () -. a0 in
  (r, wall, alloc)

(* best wall time over [reps] runs; the sub-10ms workloads need this or
   the speedup ratios are scheduler noise.  Allocation is deterministic
   per run, so the first run's figure stands. *)
let timed_best ~reps f =
  let r, w0, a0 = timed f in
  let best = ref w0 in
  for _ = 2 to reps do
    let _, w, _ = timed f in
    if w < !best then best := w
  done;
  (r, !best, a0)

(* two measurements whose ratio is the headline number: interleave the
   reps so transient background load degrades both sides alike *)
let timed_pair ~reps f g =
  let rf, wf0, af = timed f in
  let rg, wg0, ag = timed g in
  let wf = ref wf0 and wg = ref wg0 in
  for _ = 2 to reps do
    let _, w, _ = timed f in
    if w < !wf then wf := w;
    let _, w, _ = timed g in
    if w < !wg then wg := w
  done;
  ((rf, !wf, af), (rg, !wg, ag))

type json_field = Num of float | Int of int | Str of string

let json_entries : (string * (string * json_field) list) list ref = ref []

(* every row carries the VM backend that produced its headline number
   ("none" for rows that never run the VM, "all" for cross-backend
   comparisons) and the bytes allocated by that measurement *)
let record ?(backend = "compiled") ?(alloc = Float.nan) name fields =
  let fields = if Float.is_nan alloc then fields else ("alloc_bytes", Num alloc) :: fields in
  json_entries := (name, ("backend", Str backend) :: fields) :: !json_entries

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_value = function
  | Int i -> string_of_int i
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Num x ->
      if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
      else Printf.sprintf "%.6g" x

let write_json file =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, fields) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (Printf.sprintf "    { \"name\": \"%s\"" (json_escape name));
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf (Printf.sprintf ", \"%s\": %s" (json_escape k) (json_value v)))
        fields;
      Buffer.add_string buf " }")
    (List.rev !json_entries);
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "@.wrote %d benchmark entries to %s@." (List.length !json_entries) file

let run_vm ?(instr = S89_vm.Probe.empty) ?(seed = 42) ?(backend = Interp.Compiled)
    ?plan ~cm prog =
  let config =
    { Interp.default_config with cost_model = cm; instr; seed; backend;
      emit_plan = plan }
  in
  let vm = Interp.create ~config prog in
  ignore (Interp.run vm);
  vm

(* Sub-2% deltas (the probe overhead) sit below what even a best-of-9
   interleaved pair resolves: BENCH_PR6.json recorded *negative*
   overheads when background load happened to land on the instrumented
   side of the single pair.  Taking the median over several independent
   interleaved pairs discards those one-sided outliers; the first pair's
   results are returned for the cycle-parity checks. *)
let median_pair_delta ~pairs ~reps f g =
  let deltas = ref [] in
  let first = ref None in
  for _ = 1 to pairs do
    let ((_, wf, _), (_, wg, _)) as p = timed_pair ~reps f g in
    if !first = None then first := Some p;
    deltas := ((wg -. wf) /. wf) :: !deltas
  done;
  let a = Array.of_list !deltas in
  Array.sort compare a;
  (Option.get !first, a.(Array.length a / 2))

(* ------------------------------------------------------------------ *)
(* T1: Table 1 — profiling overhead                                    *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section
    "Table 1: sequential execution times with and without profiling\n\
     (paper, IBM 3090 CPU seconds, opt ON: LOOPS 0.05/0.06/0.08, SIMPLE \
     3.8/4.2/4.4)\n\
     (ours: simulated cycles on the cost-model VM; wall seconds in parens;\n\
     last columns: wall-clock speedup of the compiled backend over the tree\n\
     walker, and of the bytecode backend over the compiled one, on the\n\
     uninstrumented run)";
  let programs =
    [ ("LOOPS", S89_workloads.Livermore.source);
      ("SIMPLE", S89_workloads.Simple_code.source ()) ]
  in
  Fmt.pr "@.%-8s %-8s %20s %28s %28s %10s %10s@." "Program" "Compiler"
    "Original" "Smart profiling" "Naive profiling" "vs tree" "bc/comp";
  List.iter
    (fun (name, src) ->
      let base = Program.of_source src in
      let opt = Optimize.program base in
      List.iter
        (fun (mode, prog, cm) ->
          let smart = Placement.plan (Analysis.of_program prog) in
          let naive = Naive.plan prog in
          let run backend instr =
            timed_best ~reps:5 (fun () -> run_vm ~backend ~cm ~instr prog)
          in
          let (vm0, w0, a0), (vmt, wt, at) =
            timed_pair ~reps:5
              (fun () ->
                run_vm ~backend:Interp.Compiled ~cm ~instr:S89_vm.Probe.empty
                  prog)
              (fun () ->
                run_vm ~backend:Interp.Tree ~cm ~instr:S89_vm.Probe.empty prog)
          in
          let c0 = Interp.cycles vm0 in
          let vm1, w1, _ = run Interp.Compiled (Placement.probes smart) in
          let c1 = Interp.cycles vm1 in
          let vm2, w2, _ = run Interp.Compiled (Naive.probes naive) in
          let c2 = Interp.cycles vm2 in
          (* bytecode backend: interleaved against compiled so the
             headline ratio samples the same load profile *)
          let (_, w0c, _), (vmb, wb, ab) =
            timed_pair ~reps:5
              (fun () ->
                run_vm ~backend:Interp.Compiled ~cm ~instr:S89_vm.Probe.empty
                  prog)
              (fun () ->
                run_vm ~backend:Interp.Bytecode ~cm ~instr:S89_vm.Probe.empty
                  prog)
          in
          (* smart-probe overhead is ~1-2%, far below run-to-run wall
             noise, so it comes from interleaved best-of-9 pairs — and
             the median over 5 independent pairs, which is what keeps a
             single load spike from producing a negative overhead *)
          let ((_, _wbp, _), (vm1b, w1b, _)), probe_overhead_bc =
            median_pair_delta ~pairs:5 ~reps:9
              (fun () ->
                run_vm ~backend:Interp.Bytecode ~cm ~instr:S89_vm.Probe.empty
                  prog)
              (fun () ->
                run_vm ~backend:Interp.Bytecode ~cm
                  ~instr:(Placement.probes smart) prog)
          in
          (* the PGO loop: plan + reoptimize from one profiled run.  The
             plan alone (inlining, layout, intrinsics) is observationally
             invisible, so running it on the *same* program isolates the
             wall-clock win over the PR6-era conservative emission; the
             reoptimized program carries the predicted/measured cycle
             delta (the estimator predicting its own speedup) *)
          let t = Pipeline.create prog in
          let pr = Pipeline.pgo ~cost_model:cm ~seed:42 t in
          let (vmb6, wb6, _), (vmbp, wbpgo, _) =
            timed_pair ~reps:5
              (fun () ->
                run_vm ~backend:Interp.Bytecode ~cm
                  ~plan:S89_vm.Emit.conservative_plan prog)
              (fun () ->
                run_vm ~backend:Interp.Bytecode ~cm ~plan:pr.Pipeline.pgo_plan
                  prog)
          in
          let fallback_pr6 = Interp.fallback_execs vmb6 in
          let fallback_pgo = Interp.fallback_execs vmbp in
          if Interp.cycles vmb6 <> c0 || Interp.cycles vmbp <> c0 then
            Fmt.pr
              "!! emission-plan cycle mismatch on %s/%s: conservative %d / pgo \
               %d vs %d@."
              name mode (Interp.cycles vmb6) (Interp.cycles vmbp) c0;
          if Interp.cycles vmt <> c0 then
            Fmt.pr "!! backend cycle mismatch on %s/%s: tree %d vs compiled %d@."
              name mode (Interp.cycles vmt) c0;
          if Interp.cycles vmb <> c0 then
            Fmt.pr
              "!! backend cycle mismatch on %s/%s: bytecode %d vs compiled %d@."
              name mode (Interp.cycles vmb) c0;
          if Interp.cycles vm1b <> c1 then
            Fmt.pr
              "!! smart-profiling cycle mismatch on %s/%s: bytecode %d vs \
               compiled %d@."
              name mode (Interp.cycles vm1b) c1;
          let speedup = wt /. w0 in
          let speedup_bc = w0c /. wb in
          let speedup_pgo = wb6 /. wbpgo in
          record ~backend:"all" ~alloc:a0
            (Printf.sprintf "table1/%s/%s" name mode)
            [
              ("cycles_original", Int c0);
              ("cycles_smart", Int c1);
              ("cycles_naive", Int c2);
              ("wall_s_compiled", Num w0);
              ("wall_s_smart", Num w1);
              ("wall_s_naive", Num w2);
              ("wall_s_tree", Num wt);
              ("wall_s_bytecode", Num wb);
              ("wall_s_smart_bytecode", Num w1b);
              ("alloc_bytes_compiled", Num a0);
              ("alloc_bytes_tree", Num at);
              ("alloc_bytes_bytecode", Num ab);
              ("speedup_vs_tree", Num speedup);
              ("speedup_bytecode_vs_compiled", Num speedup_bc);
              ("probe_overhead_bytecode", Num probe_overhead_bc);
              ("wall_s_bytecode_pr6", Num wb6);
              ("wall_s_bytecode_pgo", Num wbpgo);
              ("speedup_pgo_vs_pr6", Num speedup_pgo);
              ("fallback_execs", Int fallback_pr6);
              ("fallback_execs_pgo", Int fallback_pgo);
              ("cycles_pgo", Int pr.Pipeline.pgo_cycles_after);
              ("pgo_predicted_delta", Int pr.Pipeline.pgo_predicted_delta);
              ("pgo_measured_delta", Int pr.Pipeline.pgo_measured_delta);
              ("pgo_prediction_error", Num (Pipeline.pgo_accuracy pr));
            ];
          let pct a = 100.0 *. float_of_int (a - c0) /. float_of_int c0 in
          Fmt.pr
            "%-8s %-8s %12d (%4.1fs) %14d +%4.1f%% (%4.1fs) %14d +%4.1f%% (%4.1fs) %8.1fx %9.1fx@."
            name mode c0 w0 c1 (pct c1) w1 c2 (pct c2) w2 speedup speedup_bc;
          Fmt.pr
            "         pgo: %5.2fx vs PR6 emission, fallbacks %d -> %d, \
             predicted/measured delta %d/%d@."
            speedup_pgo fallback_pr6 fallback_pgo pr.Pipeline.pgo_predicted_delta
            pr.Pipeline.pgo_measured_delta)
        [ ("opt-ON", opt, CM.optimized); ("opt-OFF", base, CM.unoptimized) ])
    programs;
  Fmt.pr
    "@.shape check: smart overhead < naive overhead; both small against the@.\
     opt ON/OFF gap - matching the paper's Table 1 ordering.@."

(* ------------------------------------------------------------------ *)
(* F1-F3: the worked example                                           *)
(* ------------------------------------------------------------------ *)

let fig1_pipeline () =
  let t = Pipeline.of_source (W.fig1 ()) in
  let a = Hashtbl.find t.Pipeline.analyses "FIG1" in
  (t, a)

let figure1 () =
  section "Figure 1: original control flow graph (statement level)";
  let t, _ = fig1_pipeline () in
  let p = Program.find t.Pipeline.prog "FIG1" in
  Fmt.pr "%a@."
    (S89_cfg.Cfg.pp ~pp_info:(fun fmt i -> Fmt.pf fmt " {%a}" S89_frontend.Ir.pp_info i))
    p.Program.cfg;
  Fmt.pr "@.DOT:@.%s@." (Report.cfg_dot p)

let figure2 () =
  section "Figure 2: extended control flow graph (preheaders, postexits, START/STOP)";
  let _, a = fig1_pipeline () in
  Fmt.pr "%a@."
    (S89_cfg.Ecfg.pp ~pp_info:(fun fmt i -> Fmt.pf fmt " {%a}" S89_frontend.Ir.pp_info i))
    a.Analysis.ecfg;
  Fmt.pr "@.DOT:@.%s@." (Report.ecfg_dot a)

(* the exact profile and costs of the paper's worked example *)
let figure3_estimate () =
  let t, a = fig1_pipeline () in
  let ecfg = a.Analysis.ecfg in
  let start = S89_cfg.Ecfg.start ecfg in
  let ph = S89_cfg.Ecfg.preheader_of_header ecfg 3 in
  let u = S89_cfg.Label.U and tt = S89_cfg.Label.T and ff = S89_cfg.Label.F in
  let fig1_totals = Hashtbl.create 16 in
  List.iter
    (fun (k, v) -> Hashtbl.replace fig1_totals k v)
    [ ((start, u), 1); ((ph, u), 10); ((3, tt), 5); ((3, ff), 5); ((4, tt), 1);
      ((4, ff), 4); ((5, tt), 0); ((5, ff), 5) ];
  let a2 = Hashtbl.find t.Pipeline.analyses "FOO" in
  let foo_totals = Hashtbl.create 4 in
  Hashtbl.replace foo_totals (S89_cfg.Ecfg.start a2.Analysis.ecfg, u) 9;
  let totals = function "FIG1" -> fig1_totals | _ -> foo_totals in
  let cost_override name node =
    match (name, node) with
    | "FIG1", (3 | 4 | 5) -> 1.0 (* the IF nodes *)
    | "FOO", 1 -> 100.0 (* makes TIME(FOO) = 100, the paper's CALL cost *)
    | _ -> 0.0
  in
  (t, Pipeline.estimate_totals t ~totals ~cost_override)

let figure3 () =
  section
    "Figure 3: FCDG with <FREQ, TOTAL_FREQ> and [COST, TIME, E[T2], VAR, STD_DEV]\n\
     (paper: TIME(START) = 920, STD_DEV(START) = 300)";
  let _, est = figure3_estimate () in
  Fmt.pr "%a@." Report.pp est;
  let time = Interproc.program_time est and sd = Interproc.program_std_dev est in
  Fmt.pr "@.headline: TIME(START)=%g (paper: 920)   STD_DEV(START)=%g (paper: 300)  %s@."
    time sd
    (if Float.abs (time -. 920.0) < 1e-6 && Float.abs (sd -. 300.0) < 1e-6 then
       "[EXACT MATCH]"
     else "[MISMATCH]");
  Fmt.pr "@.DOT:@.%s@." (Report.fcdg_dot (Interproc.main_est est))

(* ------------------------------------------------------------------ *)
(* X1: counter-count ablation                                          *)
(* ------------------------------------------------------------------ *)

let counters () =
  section
    "X1: counters and dynamic counter updates - naive vs smart, per optimization\n\
     (opt1 = counter per control condition; opt2 = conservation laws;\n\
     opt3 = DO-loop bulk adds)";
  let programs =
    [ ("FIG1", W.fig1 ()); ("BRANCHY", W.branchy ()); ("CGOTO", W.computed_goto ());
      ("LOOPS", S89_workloads.Livermore.source);
      ("SIMPLE", S89_workloads.Simple_code.source ~n:40 ~cycles:3 ()) ]
  in
  Fmt.pr "@.%-8s | %22s | %22s | %22s | %22s@." "Program" "naive (blocks)"
    "smart opt1" "smart opt1+2" "smart opt1+2+3";
  Fmt.pr "%s@." (String.make 110 '-');
  List.iter
    (fun (name, src) ->
      let prog = Program.of_source src in
      let analyses = Analysis.of_program prog in
      let vm = run_vm ~cm:CM.optimized prog in
      let naive = Naive.plan prog in
      let cell (plan : Placement.t) =
        Fmt.str "%4d ctr %10d upd" (Placement.n_counters plan)
          (Placement.dynamic_updates plan vm)
      in
      let p1 = Placement.plan ~opt2:false ~opt3:false analyses in
      let p12 = Placement.plan ~opt2:true ~opt3:false analyses in
      let p123 = Placement.plan ~opt2:true ~opt3:true analyses in
      Fmt.pr "%-8s | %4d ctr %10d upd | %s | %s | %s@." name (Naive.n_counters naive)
        (Naive.dynamic_updates naive prog vm)
        (cell p1) (cell p12) (cell p123))
    programs

(* ------------------------------------------------------------------ *)
(* X2: sampling vs counters                                            *)
(* ------------------------------------------------------------------ *)

let sampling () =
  section
    "X2: simulated PC-sampling vs exact counters, statement granularity\n\
     (the 3rd-section argument: \"the coarse granularity of the sampling\n\
     interval makes this approach unsuitable for determining execution\n\
     frequencies of individual statements\")";
  let src = S89_workloads.Simple_code.source ~n:40 ~cycles:3 () in
  let prog = Program.of_source src in
  Fmt.pr "@.%-16s %14s %16s %20s@." "sample interval" "samples" "mean rel.err"
    "zero-sample stmts";
  List.iter
    (fun interval ->
      let config =
        { Interp.default_config with cost_model = CM.optimized;
          sample_interval = Some interval }
      in
      let vm = Interp.create ~config prog in
      ignore (Interp.run vm);
      let total_samples = Interp.cycles vm / interval in
      let err = Stats.create () in
      let zero = ref 0 and considered = ref 0 in
      List.iter
        (fun (p : Program.proc) ->
          S89_cfg.Cfg.iter_nodes
            (fun nd ->
              let execs = Interp.node_execs vm p.Program.name nd in
              let cost =
                CM.node_cost CM.optimized
                  (S89_cfg.Cfg.info p.Program.cfg nd).S89_frontend.Ir.ir
              in
              if execs > 0 && cost > 0 then begin
                incr considered;
                let samples = Interp.node_samples vm p.Program.name nd in
                if samples = 0 then incr zero;
                (* frequency estimate from samples: execs ~ samples*interval/cost *)
                let est =
                  float_of_int samples *. float_of_int interval /. float_of_int cost
                in
                Stats.add err (Stats.rel_err est (float_of_int execs))
              end)
            p.Program.cfg)
        (Program.procs prog);
      Fmt.pr "%-16d %14d %15.1f%% %13d / %3d@." interval total_samples
        (100.0 *. Stats.mean err) !zero !considered)
    [ 10; 100; 1_000; 10_000; 100_000 ];
  Fmt.pr
    "@.counters give exact per-statement frequencies at a few %% run-time cost;@.\
     realistic sampling intervals miss many statements entirely.@."

(* ------------------------------------------------------------------ *)
(* X3: estimator accuracy                                              *)
(* ------------------------------------------------------------------ *)

let accuracy () =
  section
    "X3: estimated TIME / STD_DEV vs measured mean / std-dev over seeded runs\n\
     (TIME estimated from an accumulated smart-counter profile; measurement\n\
     is the uninstrumented cycle count of runs with the same seeds)";
  let cases =
    [ ("BRANCHY", W.branchy (), 60); ("CHUNKY", W.chunky (), 60);
      ("NESTED", W.nested_random (), 60); ("CGOTO", W.computed_goto (), 60);
      ("SORT", W.sort (), 60); ("SIEVE", W.sieve (), 60);
      ("LINPACK", S89_workloads.Linpack_like.source (), 30);
      ("LOOPS", S89_workloads.Livermore.source, 8) ]
  in
  Fmt.pr "@.%-8s %14s %14s %7s | %12s %12s %12s@." "Program" "est TIME" "meas mean"
    "err" "SD paper" "SD indep" "SD meas";
  List.iter
    (fun (name, src, runs) ->
      let t = Pipeline.of_source src in
      (* independent seeded measurement runs, distributed over the bench
         pool (--domains N).  Each run's cycle count depends only on its
         seed and the fold below is in seed order, so the Stats are
         identical at any domain count. *)
      let cycles =
        Pool.map !bench_pool
          (fun s ->
            float_of_int (Interp.cycles (Pipeline.run_once ~seed:(1001 + s) t)))
          (Array.init runs (fun s -> s))
      in
      let st = Stats.of_list (Array.to_list cycles) in
      let profile = Pipeline.profile_smart ~runs ~seed:1001 t in
      (* the paper's formula (Case 1 with FREQ², iterations fully correlated)
         and the Wald-identity variant (independent iterations), both with
         callee-variance propagation enabled *)
      let est = Pipeline.estimate_profiled ~call_variance:true t profile in
      let est_ind =
        Pipeline.estimate_profiled ~call_variance:true
          ~iteration_model:S89_core.Variance.Independent t profile
      in
      let time = Interproc.program_time est in
      Fmt.pr "%-8s %14.1f %14.1f %6.2f%% | %12.1f %12.1f %12.1f@." name time
        (Stats.mean st)
        (100.0 *. Stats.rel_err time (Stats.mean st))
        (Interproc.program_std_dev est)
        (Interproc.program_std_dev est_ind)
        (Stats.std_dev st))
    cases;
  Fmt.pr
    "@.TIME matches the measured mean almost exactly (same seeds feed both).@.\
     'SD paper' is the paper's Case-1 formula (FREQ^2: iterations fully@.\
     correlated - a conservative upper bound, ~sqrt(F) above iid reality);@.\
     'SD indep' is the Wald-identity variant for independent iterations.@."

(* ------------------------------------------------------------------ *)
(* X4: variance-driven chunking                                        *)
(* ------------------------------------------------------------------ *)

let chunks () =
  section
    "X4: chunk size for parallel loops (Kruskal-Weiss, the paper's use case)\n\
     simulated makespan, N=10000 iterations, mean 100 cycles, overhead h=50";
  let n = 10_000 and mu = 100.0 and h = 50.0 in
  Fmt.pr "@.%-4s %-6s | %8s | %12s %12s %12s | %8s@." "P" "cv" "KW k"
    "static N/P" "self-sched" "KW chunk" "KW win";
  Fmt.pr "%s@." (String.make 80 '-');
  List.iter
    (fun p ->
      List.iter
        (fun cv ->
          let sigma = cv *. mu in
          let dist = S89_sched.Dist.of_moments ~mean:mu ~variance:(sigma *. sigma) in
          let k = S89_sched.Chunk.kw_chunk ~n ~p ~h ~sigma in
          let avg strat =
            Stats.mean
              (S89_sched.Parsim.run_avg ~seeds:8 ~map:(Pool.map_list !bench_pool)
                 ~n ~p ~h ~dist strat)
          in
          let m_static = avg S89_sched.Chunk.Static_split in
          let m_self = avg S89_sched.Chunk.Self_sched in
          let m_kw = avg (S89_sched.Chunk.Fixed k) in
          let best_baseline = Float.min m_static m_self in
          Fmt.pr "%-4d %-6.2g | %8d | %12.0f %12.0f %12.0f | %+6.1f%%@." p cv k
            m_static m_self m_kw
            (100.0 *. (best_baseline -. m_kw) /. best_baseline))
        [ 0.0; 0.1; 0.5; 1.0; 2.0 ])
    [ 4; 16; 64 ];
  (* estimator-driven: derive mu/sigma of the CHUNKY loop body from the
     paper's TIME/VAR machinery, then chunk accordingly *)
  Fmt.pr "@.-- estimator-driven chunking of the CHUNKY loop body --@.";
  let t = Pipeline.of_source (W.chunky ()) in
  let profile = Pipeline.profile_smart ~runs:20 t in
  let est = Pipeline.estimate_profiled t profile in
  let pe = Interproc.main_est est in
  let a = pe.Interproc.analysis in
  List.iter
    (fun hd ->
      let body = S89_cdg.Fcdg.children a.Analysis.fcdg hd S89_cfg.Label.T in
      let time =
        List.fold_left
          (fun acc v -> acc +. S89_core.Time_est.time pe.Interproc.time v)
          0.0 body
      in
      let var =
        List.fold_left
          (fun acc v -> acc +. S89_core.Variance.var pe.Interproc.variance v)
          0.0 body
      in
      if time > 50.0 && var > 0.0 then begin
        let nf = 10_000 and p = 16 and hov = 50.0 in
        let k = S89_sched.Chunk.from_estimate ~time ~var ~n:nf ~p ~h:hov in
        Fmt.pr
          "loop@%d: per-iteration TIME=%.1f STD=%.1f -> KW chunk=%d (N/P would be %d)@."
          hd time (sqrt var) k
          (S89_sched.Chunk.static_chunk ~n:nf ~p);
        let dist = S89_sched.Dist.of_moments ~mean:time ~variance:var in
        List.iter
          (fun (nm, strat) ->
            let m =
              Stats.mean
                (S89_sched.Parsim.run_avg ~seeds:8
                   ~map:(Pool.map_list !bench_pool) ~n:nf ~p ~h:hov ~dist strat)
            in
            Fmt.pr "  %-14s makespan %.0f@." nm m)
          [ ("static-N/P", S89_sched.Chunk.Static_split);
            ("self-sched-1", S89_sched.Chunk.Self_sched);
            ("kruskal-weiss", S89_sched.Chunk.Fixed k) ]
      end)
    (S89_cfg.Ecfg.headers a.Analysis.ecfg)

(* ------------------------------------------------------------------ *)
(* P3: Domain work-pool scaling                                        *)
(* ------------------------------------------------------------------ *)

let stats_equal a b =
  Stats.count a = Stats.count b
  && Stats.mean a = Stats.mean b
  && Stats.variance a = Stats.variance b
  && Stats.min a = Stats.min b
  && Stats.max a = Stats.max b

let scaling () =
  section
    "P3: Domain work-pool scaling (1/2/4 domains vs sequential)\n\
     three hot paths: Parsim.run_avg replications, batch VM measurement\n\
     runs (Chunked.map with the self-tuned Kruskal-Weiss chunk), and the\n\
     per-procedure ECFG->CDG->FCDG analysis pipelines.  Every parallel\n\
     run is checked identical to the sequential one.";
  let host = Domain.recommended_domain_count () in
  Fmt.pr "@.host cores (Domain.recommended_domain_count): %d%s@." host
    (if host = 1 then "  [single core: parallel rows measure pure overhead]"
     else "");
  let row ?backend ?alloc name d w_seq w_par same =
    record ?backend ?alloc
      (Printf.sprintf "scaling/%s/d%d" name d)
      [
        ("domains", Int d);
        ("wall_s_seq", Num w_seq);
        ("wall_s_parallel", Num w_par);
        ("parallel_speedup", Num (w_seq /. w_par));
        ("identical", Int (if same then 1 else 0));
      ];
    Fmt.pr "%-18s %8d %11.4f %11.4f %9.2fx%s@." name d w_seq w_par
      (w_seq /. w_par)
      (if same then "" else "  [MISMATCH]")
  in
  Fmt.pr "@.%-18s %8s %11s %11s %10s@." "workload" "domains" "seq (s)"
    "par (s)" "speedup";
  Fmt.pr "%s@." (String.make 64 '-');
  (* -- 1: Parsim.run_avg seeded replications -- *)
  let n = 50_000 and p = 16 and h = 50.0 and seeds = 64 in
  let dist = S89_sched.Dist.Exponential { mean = 100.0 } in
  let run_avg ?map () =
    S89_sched.Parsim.run_avg ?map ~seeds ~n ~p ~h ~dist
      S89_sched.Chunk.Kruskal_weiss
  in
  let st0, w_seq, a_seq = timed_best ~reps:3 (fun () -> run_avg ()) in
  List.iter
    (fun d ->
      let pool = Pool.create ~force_parallel:(d > 1) ~domains:d () in
      let st, w_par, _ =
        timed_best ~reps:3 (fun () -> run_avg ~map:(Pool.map_list pool) ())
      in
      row ~backend:"none" ~alloc:a_seq "parsim.run_avg" d w_seq w_par
        (stats_equal st0 st))
    [ 1; 2; 4 ];
  (* -- 2: batch VM measurement runs via Chunked.map (KW self-chunking) -- *)
  let t = Pipeline.of_source (W.chunky ()) in
  let seeds_arr = Array.init 32 (fun s -> 1001 + s) in
  let one_run s = Interp.cycles (Pipeline.run_once ~seed:s t) in
  let c0, w_seq, a_seq =
    timed_best ~reps:3 (fun () -> Array.map one_run seeds_arr)
  in
  List.iter
    (fun d ->
      let pool = Pool.create ~force_parallel:(d > 1) ~domains:d () in
      let c, w_par, _ =
        timed_best ~reps:3 (fun () -> Chunked.map pool one_run seeds_arr)
      in
      row ~alloc:a_seq "vm.batch-runs" d w_seq w_par (c = c0))
    [ 1; 2; 4 ];
  (* -- 3: per-procedure analysis pipelines (LOOPS + SIMPLE) -- *)
  let progs =
    [
      Program.of_source S89_workloads.Livermore.source;
      Program.of_source (S89_workloads.Simple_code.source ());
    ]
  in
  let analyze pool = List.map (fun prog -> Analysis.of_program ?pool prog) progs in
  let same_analyses a b =
    List.for_all2
      (fun ta tb ->
        Hashtbl.length ta = Hashtbl.length tb
        && Hashtbl.fold
             (fun name (x : Analysis.t) acc ->
               acc
               &&
               match Hashtbl.find_opt tb name with
               | None -> false
               | Some (y : Analysis.t) -> x.Analysis.conditions = y.Analysis.conditions)
             ta true)
      a b
  in
  let a0, w_seq, a_seq = timed_best ~reps:3 (fun () -> analyze None) in
  List.iter
    (fun d ->
      let pool = Pool.create ~force_parallel:(d > 1) ~domains:d () in
      let a, w_par, _ = timed_best ~reps:3 (fun () -> analyze (Some pool)) in
      row ~backend:"none" ~alloc:a_seq "analysis.pipeline" d w_seq w_par
        (same_analyses a0 a))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* P4: guard overhead                                                  *)
(* ------------------------------------------------------------------ *)

let guards () =
  section
    "P4: execution-guard overhead (fuel / cycle budget / call depth)\n\
     uninstrumented compiled-backend runs of Table 1's programs, default\n\
     config (guards at their max_int sentinels) vs explicitly configured\n\
     finite limits high enough never to trip - the delta is the price of\n\
     guarded execution";
  let programs =
    [ ("LOOPS", S89_workloads.Livermore.source);
      ("SIMPLE", S89_workloads.Simple_code.source ()) ]
  in
  Fmt.pr "@.%-8s %14s %14s %12s@." "Program" "default (s)" "limited (s)"
    "overhead";
  List.iter
    (fun (name, src) ->
      let prog = Optimize.program (Program.of_source src) in
      let cm = CM.optimized in
      let limited =
        {
          Interp.default_config with
          cost_model = cm;
          max_steps = max_int / 2;
          max_cycles = max_int / 2;
          max_call_depth = 1_000_000;
        }
      in
      let run config () =
        let vm = Interp.create ~config prog in
        ignore (Interp.run vm);
        vm
      in
      let run_def = run { Interp.default_config with cost_model = cm }
      and run_lim = run limited in
      (* the two sides execute IDENTICAL code paths (the guards are
         always-on comparisons against max_int sentinels), so the honest
         estimate of the overhead needs the noise floor well under the
         2% budget.  Per-side minima don't get there on a shared box:
         background load can shadow one side for a whole run.  Instead,
         interleave single runs pairwise with alternating order
         (A B / B A / ...) so both sides sample the same load profile,
         and take the ratio of the two SUMS — drift and spikes then hit
         numerator and denominator alike and cancel in the ratio *)
      let vm0 = run_def () and vm1 = run_lim () in
      let _, t_once, a_def = timed run_def in
      let pairs = max 16 (int_of_float (Float.ceil (4.0 /. t_once))) in
      (* keep the pair count even so the two orders are balanced *)
      let pairs = pairs + (pairs land 1) in
      let ratios = Array.make pairs 1.0 in
      let sum_def = ref 0.0 and sum_lim = ref 0.0 in
      for i = 0 to pairs - 1 do
        let wd, wl =
          if i mod 2 = 0 then
            let _, wd, _ = timed run_def in
            let _, wl, _ = timed run_lim in
            (wd, wl)
          else
            let _, wl, _ = timed run_lim in
            let _, wd, _ = timed run_def in
            (wd, wl)
        in
        ratios.(i) <- wl /. wd;
        sum_def := !sum_def +. wd;
        sum_lim := !sum_lim +. wl
      done;
      let w_def = !sum_def /. float_of_int pairs
      and w_lim = !sum_lim /. float_of_int pairs in
      (* trimmed mean of the per-pair ratios: a load spike during one
         run contaminates exactly one pair, and trimming the quartiles
         discards it; the remaining drift bias alternates sign with the
         pair order, so the balanced middle half averages it away *)
      Array.sort compare ratios;
      let lo = pairs / 4 and hi = pairs - (pairs / 4) in
      let acc = ref 0.0 in
      for i = lo to hi - 1 do
        acc := !acc +. ratios.(i)
      done;
      let ratio = !acc /. float_of_int (hi - lo) in
      if Interp.cycles vm0 <> Interp.cycles vm1 then
        Fmt.pr "!! cycle mismatch on %s: default %d vs limited %d@." name
          (Interp.cycles vm0) (Interp.cycles vm1);
      let overhead = ratio -. 1.0 in
      record ~alloc:a_def
        (Printf.sprintf "guards/%s" name)
        [
          ("wall_s_default", Num w_def);
          ("wall_s_limited", Num w_lim);
          ("guard_overhead", Num overhead);
        ];
      Fmt.pr "%-8s %14.4f %14.4f %+11.2f%%@." name w_def w_lim
        (100.0 *. overhead))
    programs;
  Fmt.pr
    "@.the guards are branch-predictable comparisons on the hot accounting@.\
     path; configuring finite limits must cost within noise of the default.@."

(* ------------------------------------------------------------------ *)
(* X5: compile-time analysis vs profiling                              *)
(* ------------------------------------------------------------------ *)

let static_analysis () =
  section
    "X5: compile-time frequency analysis vs profiling (the first paragraph\n\
     of the paper's section 3: analysis is feasible for \"a Fortran DO loop\n\
     with constant bounds and no conditional loop exits, an IF condition\n\
     that can be computed at compile-time\" - and needs profiles elsewhere)";
  Fmt.pr "@.%-8s %14s %14s %8s   %s@." "Program" "static TIME" "profiled TIME"
    "ratio" "why";
  List.iter
    (fun (name, src, why) ->
      let prog = Optimize.program (Program.of_source src) in
      let t = Pipeline.create prog in
      let est_static =
        Pipeline.estimate_totals t
          ~totals:(S89_core.Static_freq.program_totals t.Pipeline.analyses)
      in
      let vm = Pipeline.run_once ~seed:3 t in
      let est_oracle = Pipeline.estimate_oracle t vm in
      let s = Interproc.program_time est_static in
      let p = Interproc.program_time est_oracle in
      Fmt.pr "%-8s %14.0f %14.0f %8.2f   %s@." name s p (s /. p) why)
    [ ("SIMPLE", S89_workloads.Simple_code.source ~n:30 ~cycles:3 (),
       "constant mesh loops: fully analyzable");
      ("LOOPS", S89_workloads.Livermore.source,
       "mostly constant DO nests; GOTO loops need the heuristic");
      ("BRANCHY", W.branchy (), "constant trip, 50/50 branch heuristic vs data");
      ("CHUNKY", W.chunky (), "20%-taken heavy branch modeled as 50/50");
      ("FIG1", W.fig1 (), "GOTO loop: default loop frequency 10 vs actual 3") ];
  Fmt.pr
    "@.constant-bound programs are estimated well with no profile at all;@.\
     data-dependent branching is why the paper profiles.@."

(* ------------------------------------------------------------------ *)
(* P5: crash-safe store costs                                          *)
(* ------------------------------------------------------------------ *)

let wal_bench () =
  section
    "P5: WAL persistence costs (crash-safe store)\n\
     append throughput without fsync (the framing + checksum price),\n\
     recovery of the resulting log, and snapshot compaction";
  let module Wal = S89_store.Wal in
  let module Store = S89_store.Store in
  let with_tmp_dir f =
    let dir = Filename.temp_file "s89bench" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    Fun.protect
      ~finally:(fun () ->
        Array.iter
          (fun x -> try Sys.remove (Filename.concat dir x) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ())
      (fun () -> f dir)
  in
  with_tmp_dir @@ fun dir ->
  let n = 20_000 in
  let payload i = Printf.sprintf "run %d\ntotal MAIN 1 T %d\ntotal MAIN 4 F %d" i i (i * 7) in
  let path = Filename.concat dir "bench.log" in
  let _, w_append, a_append =
    timed (fun () ->
        let w, _ = Wal.open_ ~fsync:false path in
        for i = 0 to n - 1 do
          Wal.append w (payload i)
        done;
        Wal.close w)
  in
  let r, w_recover, a_recover = timed (fun () -> Wal.recover path) in
  Fmt.pr "@.%-34s %10d records@." "log size" n;
  Fmt.pr "%-34s %10.0f records/s  (%.2f us/record)@." "append (no fsync)"
    (float_of_int n /. w_append)
    (1e6 *. w_append /. float_of_int n);
  Fmt.pr "%-34s %10.0f records/s  (%.3f s total)@." "recovery scan"
    (float_of_int (List.length r.Wal.payloads) /. w_recover)
    w_recover;
  record ~backend:"none" ~alloc:a_append "wal/append"
    [ ("records", Int n); ("wall_s", Num w_append);
      ("records_per_s", Num (float_of_int n /. w_append)) ];
  record ~backend:"none" ~alloc:a_recover "wal/recover"
    [ ("records", Int (List.length r.Wal.payloads)); ("wall_s", Num w_recover);
      ("records_per_s", Num (float_of_int (List.length r.Wal.payloads) /. w_recover)) ];
  Sys.remove path;
  (* store-level: run appends through accumulate + auto-compaction *)
  let totals =
    let tbl = Hashtbl.create 4 in
    List.iter (fun c -> Hashtbl.replace tbl c 3)
      [ (1, S89_cfg.Label.T); (4, S89_cfg.Label.F); (9, S89_cfg.Label.U) ];
    let per_proc = Hashtbl.create 1 in
    Hashtbl.replace per_proc "MAIN" tbl;
    per_proc
  in
  let sdir = Filename.concat dir "store" in
  let runs = 4_096 in
  let s = Store.open_ ~fsync:false ~compact_threshold:256 ~dir:sdir () in
  let _, w_store, a_store =
    timed (fun () ->
        for i = 0 to runs - 1 do
          Store.append_run s ~seed:i totals
        done)
  in
  let _, w_compact, a_compact = timed (fun () -> Store.compact s) in
  Store.close s;
  let _, w_reopen, a_reopen =
    timed (fun () -> Store.close (Store.open_ ~fsync:false ~dir:sdir ()))
  in
  Array.iter
    (fun x -> try Sys.remove (Filename.concat sdir x) with Sys_error _ -> ())
    (Sys.readdir sdir);
  (try Unix.rmdir sdir with Unix.Unix_error _ -> ());
  Fmt.pr "%-34s %10.0f runs/s  (threshold 256, %d runs)@." "store append+auto-compact"
    (float_of_int runs /. w_store)
    runs;
  Fmt.pr "%-34s %10.4f s@." "final compaction" w_compact;
  Fmt.pr "%-34s %10.4f s@." "recovery (open after close)" w_reopen;
  record ~backend:"none" ~alloc:a_store "wal/store_append"
    [ ("runs", Int runs); ("wall_s", Num w_store);
      ("runs_per_s", Num (float_of_int runs /. w_store)) ];
  record ~backend:"none" ~alloc:a_compact "wal/compact"
    [ ("wall_s", Num w_compact) ];
  record ~backend:"none" ~alloc:a_reopen "wal/reopen"
    [ ("wall_s", Num w_reopen) ]

(* ------------------------------------------------------------------ *)
(* P9: TCP service latency + overload shedding                         *)
(* ------------------------------------------------------------------ *)

let serve_bench () =
  section
    "P9: multi-tenant TCP service\n\
     steady-state job latency (p50/p99 from the server histogram) and\n\
     overload behaviour (NET001 shedding once the tenant queue fills)";
  let module Server = S89_net.Server in
  let module Proto = S89_net.Proto in
  let with_tmp_root f =
    let dir = Filename.temp_file "s89serve" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    let rec rm_rf p =
      if Sys.is_directory p then (
        Array.iter (fun x -> rm_rf (Filename.concat p x)) (Sys.readdir p);
        Unix.rmdir p)
      else Sys.remove p
    in
    Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ()) (fun () -> f dir)
  in
  let rpc port req =
    let fd = Server.Client.connect ~port () in
    Fun.protect ~finally:(fun () -> Server.Client.close fd) (fun () ->
        match Server.Client.rpc fd req with
        | Ok resp -> resp
        | Error msg -> failwith ("serve bench rpc: " ^ msg))
  in
  (* scrape one value out of the /metrics text document *)
  let metric text name =
    String.split_on_char '\n' text
    |> List.find_map (fun line ->
           if String.length line > String.length name
              && String.sub line 0 (String.length name) = name
              && line.[String.length name] = ' '
           then
             float_of_string_opt
               (String.sub line
                  (String.length name + 1)
                  (String.length line - String.length name - 1))
           else None)
    |> Option.value ~default:Float.nan
  in
  let source = W.fig1 () in
  let tenants = [| "acme"; "bravo"; "corp" |] in
  (* -------- steady state: every job admitted, latency histogram ---- *)
  with_tmp_root (fun root ->
      let server =
        Server.start
          ~config:{ Server.default_config with workers = 2; fsync = false }
          ~store_root:(Filename.concat root "steady") ()
      in
      let port = Server.port server in
      let jobs = 48 in
      let _, wall, _ =
        timed (fun () ->
            for i = 0 to jobs - 1 do
              let tenant = tenants.(i mod Array.length tenants) in
              match
                rpc port
                  (Proto.Submit
                     { tenant; job = Printf.sprintf "job%02d" i; runs = 10;
                       seed = 7 + i; deadline = 0.0; source })
              with
              | Proto.Accepted _ -> ()
              | _ -> failwith "serve bench: steady submit rejected"
            done;
            (* poll until the whole batch drained *)
            let rec wait_done tries =
              if tries = 0 then failwith "serve bench: steady jobs never drained";
              let text =
                match rpc port Proto.Metrics with
                | Proto.Metrics_text t -> t
                | _ -> failwith "serve bench: metrics rpc failed"
              in
              if int_of_float (metric text "s89_jobs_done") < jobs then (
                Thread.delay 0.01;
                wait_done (tries - 1))
            in
            wait_done 6_000)
      in
      let text = Server.metrics_text server in
      let p50 = metric text "s89_job_latency_seconds{quantile=\"0.5\"}" in
      let p99 = metric text "s89_job_latency_seconds{quantile=\"0.99\"}" in
      let rejected = int_of_float (metric text "s89_jobs_rejected") in
      Server.stop server;
      Fmt.pr "@.%-34s %10d jobs over %d tenants@." "steady-state batch" jobs
        (Array.length tenants);
      Fmt.pr "%-34s %10.1f jobs/s@." "throughput" (float_of_int jobs /. wall);
      Fmt.pr "%-34s %10.4f s (p50)   %.4f s (p99)@." "job latency" p50 p99;
      Fmt.pr "%-34s %10d@." "rejections" rejected;
      record ~backend:"compiled" "serve/steady"
        [ ("jobs", Int jobs); ("rejected", Int rejected);
          ("rejection_rate", Num (float_of_int rejected /. float_of_int jobs));
          ("p50_latency_s", Num p50); ("p99_latency_s", Num p99);
          ("throughput_jobs_s", Num (float_of_int jobs /. wall));
          ("saturated", Str "no") ]);
  (* -------- overload: 1 worker, queue of 1, burst must shed -------- *)
  with_tmp_root (fun root ->
      let server =
        Server.start
          ~config:
            { Server.default_config with workers = 1; queue_capacity = 1;
              fsync = false }
          ~store_root:(Filename.concat root "overload") ()
      in
      let port = Server.port server in
      (* a long job pins the single worker... *)
      (match
         rpc port
           (Proto.Submit
              { tenant = "busy"; job = "long"; runs = 2_000_000; seed = 1;
                deadline = 0.0; source })
       with
      | Proto.Accepted _ -> ()
      | _ -> failwith "serve bench: long job rejected");
      let rec wait_running tries =
        if tries = 0 then failwith "serve bench: long job never started";
        match rpc port (Proto.Status { tenant = "busy"; job = "long" }) with
        | Proto.Job_status { state = "running"; _ } -> ()
        | _ ->
            Thread.delay 0.005;
            wait_running (tries - 1)
      in
      wait_running 2_000;
      (* ...so a burst overfills the 1-slot queue and the rest shed *)
      let burst = 20 in
      let rejected = ref 0 in
      let _, wall, _ =
        timed (fun () ->
            for i = 0 to burst - 1 do
              match
                rpc port
                  (Proto.Submit
                     { tenant = "busy"; job = Printf.sprintf "burst%02d" i;
                       runs = 5; seed = 100 + i; deadline = 0.0; source })
              with
              | Proto.Accepted _ -> ()
              | Proto.Rejected { retry_after; _ } ->
                  assert (retry_after > 0.0);
                  incr rejected
              | _ -> failwith "serve bench: unexpected burst answer"
            done)
      in
      let text = Server.metrics_text server in
      let p50 = metric text "s89_job_latency_seconds{quantile=\"0.5\"}" in
      let p99 = metric text "s89_job_latency_seconds{quantile=\"0.99\"}" in
      Server.stop server;
      let submitted = burst + 1 in
      let rate = float_of_int !rejected /. float_of_int submitted in
      Fmt.pr "@.%-34s %10d submissions (1 worker, queue 1)@." "overload burst"
        submitted;
      Fmt.pr "%-34s %10d shed with NET001 (%.0f%%)@." "rejections" !rejected
        (100.0 *. rate);
      Fmt.pr "%-34s %10.0f submissions/s@." "admission decisions"
        (float_of_int burst /. wall);
      if !rejected = 0 then
        Fmt.pr "[WARN] overload run shed nothing — queue never saturated@.";
      record ~backend:"compiled" "serve/overload"
        [ ("jobs", Int submitted); ("rejected", Int !rejected);
          ("rejection_rate", Num rate); ("p50_latency_s", Num p50);
          ("p99_latency_s", Num p99);
          ("throughput_jobs_s", Num (float_of_int burst /. wall));
          ("saturated", Str "yes") ]);
  (* -------- exhaustion: flooding tenant vs. well-behaved SLO -------- *)
  (* PR-10 resource governance: a flooding tenant is held back by its
     token bucket + job quota while a well-behaved tenant's client-side
     p99 must stay within a small factor of its unloaded baseline, and
     the GC (retention 0, size-bounded) must pull the store back under
     [max_store_bytes] once the flood stops. *)
  with_tmp_root (fun root ->
      let max_store_bytes = 256 * 1024 in
      let server =
        Server.start
          ~config:
            { Server.default_config with
              workers = 2; fsync = false;
              quota =
                { S89_net.Quota.rate = 40.0; burst = 8; max_bytes = 0;
                  max_jobs = 16 };
              retain_done = 0.0; max_store_bytes; gc_interval = 0.1 }
          ~store_root:(Filename.concat root "exhaust") ()
      in
      let port = Server.port server in
      let wait_done tenant job =
        let rec go tries =
          if tries = 0 then failwith "serve bench: exhaust job never finished";
          match rpc port (Proto.Status { tenant; job }) with
          | Proto.Job_status { state = "done"; _ } -> ()
          | _ ->
              Thread.delay 0.002;
              go (tries - 1)
        in
        go 30_000
      in
      (* client-observed latency: submit (retrying its own rate limit)
         through done *)
      let timed_job tenant job =
        let t0 = Unix.gettimeofday () in
        let rec submit tries =
          if tries = 0 then failwith "serve bench: well-behaved submit starved";
          match
            rpc port
              (Proto.Submit
                 { tenant; job; runs = 10; seed = 11; deadline = 0.0; source })
          with
          | Proto.Accepted _ -> ()
          | Proto.Rejected { retry_after; _ } ->
              Thread.delay (Float.max 0.005 retry_after);
              submit (tries - 1)
          | _ -> failwith "serve bench: unexpected submit answer"
        in
        submit 1_000;
        wait_done tenant job;
        Unix.gettimeofday () -. t0
      in
      let p99 xs =
        let a = Array.of_list xs in
        Array.sort compare a;
        let n = Array.length a in
        a.(min (n - 1) (int_of_float (ceil (0.99 *. float_of_int n)) - 1))
      in
      let jobs = 12 in
      let baseline =
        List.init jobs (fun i -> timed_job "good" (Printf.sprintf "base%02d" i))
      in
      let p99_unloaded = p99 baseline in
      (* the flood: one tenant hammering admission from its own thread *)
      let stop_flood = Atomic.make false in
      let flood_sent = ref 0 in
      let flood_rejected = ref 0 in
      let flooder =
        Thread.create
          (fun () ->
            while not (Atomic.get stop_flood) do
              incr flood_sent;
              match
                rpc port
                  (Proto.Submit
                     { tenant = "flood"; job = Printf.sprintf "f%06d" !flood_sent;
                       runs = 10; seed = !flood_sent; deadline = 0.0; source })
              with
              | Proto.Rejected _ -> incr flood_rejected
              | _ -> ()
            done)
          ()
      in
      let loaded =
        List.init jobs (fun i -> timed_job "good" (Printf.sprintf "load%02d" i))
      in
      Atomic.set stop_flood true;
      Thread.join flooder;
      let p99_loaded = p99 loaded in
      (* let the GC reap the flood's finished jobs, then read the gauge *)
      let rec wait_gc tries =
        let bytes =
          int_of_float (metric (Server.metrics_text server) "s89_store_bytes")
        in
        if bytes > max_store_bytes && tries > 0 then begin
          Thread.delay 0.1;
          wait_gc (tries - 1)
        end
        else bytes
      in
      let store_bytes_after = wait_gc 100 in
      let gc_collected =
        int_of_float (metric (Server.metrics_text server) "s89_gc_collected")
      in
      Server.stop server;
      let ratio = p99_loaded /. Float.max 1e-9 p99_unloaded in
      let flood_rate =
        float_of_int !flood_rejected /. float_of_int (Stdlib.max 1 !flood_sent)
      in
      Fmt.pr "@.%-34s %10.4f s (unloaded)   %.4f s (under flood)@."
        "well-behaved tenant p99" p99_unloaded p99_loaded;
      Fmt.pr "%-34s %10.2fx@." "flood p99 ratio" ratio;
      Fmt.pr "%-34s %10d sent, %d shed (%.0f%%)@." "flood" !flood_sent
        !flood_rejected (100.0 *. flood_rate);
      Fmt.pr "%-34s %10d collected, %d bytes left (bound %d)@." "gc"
        gc_collected store_bytes_after max_store_bytes;
      record ~backend:"compiled" "serve/exhaust"
        [ ("jobs", Int (2 * jobs)); ("rejected", Int !flood_rejected);
          ("rejection_rate", Num flood_rate);
          ("p99_unloaded_s", Num p99_unloaded);
          ("p99_well_behaved_s", Num p99_loaded);
          ("flood_p99_ratio", Num ratio);
          ("p99_latency_s", Num p99_loaded);
          ("gc_collected", Int gc_collected);
          ("store_bytes_after_gc", Int store_bytes_after);
          ("max_store_bytes", Int max_store_bytes);
          ("saturated", Str "yes") ])

(* ------------------------------------------------------------------ *)
(* P8: incremental memoized analysis + strong control dependence      *)
(* ------------------------------------------------------------------ *)

module Memo = S89_core.Memo
module Static_freq = S89_core.Static_freq
module Gen = S89_testgen.Gen_prog
module Ecfg = S89_cfg.Ecfg
module Control_dep = S89_cdg.Control_dep
module Postdom = S89_graph.Postdom
module Digraph = S89_graph.Digraph

(* the pre-PR8 control-dependence construction, kept as the reference
   side of the comparison: a strict-postdominance filter per edge (each
   query an ancestor walk) and a hashtable probe per emitted (x, y, l)
   triple *)
let old_cdg_walk ecfg =
  let graph = S89_cfg.Cfg.graph (Ecfg.cfg ecfg) in
  let pdom = Postdom.compute graph ~exit_:(Ecfg.stop ecfg) in
  let cdg = Digraph.create () in
  ignore (Digraph.add_nodes cdg (Digraph.num_nodes graph));
  let seen = Hashtbl.create 64 in
  Digraph.iter_edges
    (fun (e : S89_cfg.Label.t Digraph.edge) ->
      let x = e.src and s = e.dst in
      if not (Postdom.strictly_postdominates pdom s x) then begin
        let limit = Postdom.ipostdom pdom x in
        let rec walk t =
          if Some t <> limit then begin
            if not (Hashtbl.mem seen (x, t, e.label)) then begin
              Hashtbl.replace seen (x, t, e.label) ();
              ignore (Digraph.add_edge cdg ~src:x ~dst:t ~label:e.label)
            end;
            match Postdom.ipostdom pdom t with Some t' -> walk t' | None -> ()
          end
        in
        walk s
      end)
    graph;
  cdg

let incremental () =
  section
    "P8. Incremental memoized analysis (edit-stream replay) + CDG construction";
  (* ---- edit-stream replay: cold vs. warm re-analysis.  Parsing is
     outside the timed region on both sides — the paper's machinery
     (and the memo) starts at analysis, so "cold" is a full per-edit
     re-analysis and "warm" the memoized dirty-cone one. *)
  let streams =
    [ ("simple-sized", 48, 8, 12, 10); (* ~2k lines of SIMPLE-ish bodies *)
      ("testgen", 96, 4, 24, 12) (* wider call DAG of gen_ast-style bodies *) ]
  in
  Fmt.pr "@.%-14s %10s %10s %9s %9s %11s@." "edit stream" "cold ms" "warm ms"
    "speedup" "hit rate" "dirty cone";
  List.iter
    (fun (label, procs, size, fan, edits) ->
      let consts = Array.make procs 1 in
      let parse () =
        Program.of_source (Gen.gen_incremental_source ~size ~fan ~consts 77)
      in
      let analyze ?memo prog =
        let t = Pipeline.create ?memo prog in
        Pipeline.estimate_totals ?memo t
          ~totals:(Pipeline.static_totals ?memo t)
      in
      let rng = S89_util.Prng.create ~seed:0xed17 in
      let stream = Array.init edits (fun _ -> S89_util.Prng.int rng procs) in
      let replay phase_analyze =
        Array.fill consts 0 procs 1;
        let total = ref 0.0 in
        Array.iter
          (fun j ->
            consts.(j) <- consts.(j) + 1;
            let prog = parse () in
            let _, w, _ = timed (fun () -> ignore (phase_analyze prog)) in
            total := !total +. w)
          stream;
        !total
      in
      (* cold: from-scratch analysis + estimation after every edit *)
      let cold_s = replay (fun prog -> analyze prog) in
      (* warm: one persistent memo, primed on the base program *)
      Array.fill consts 0 procs 1;
      let memo = Memo.create () in
      ignore (analyze ~memo (parse ()));
      Memo.reset_stats memo;
      let warm_s = replay (fun prog -> analyze ~memo prog) in
      let st = Memo.stats memo in
      let hit_rate =
        float_of_int st.Memo.hits /. float_of_int (st.Memo.hits + st.Memo.misses)
      in
      let dirty_cone = float_of_int st.Memo.misses /. float_of_int edits in
      (* the memoized result must be byte-identical to a fresh one on
         the stream's final program *)
      Array.fill consts 0 procs 1;
      Array.iter (fun j -> consts.(j) <- consts.(j) + 1) stream;
      let final = parse () in
      let identical =
        Fmt.str "%a" Report.pp (analyze ~memo final)
        = Fmt.str "%a" Report.pp (analyze final)
      in
      let cold_ms = 1e3 *. cold_s /. float_of_int edits
      and warm_ms = 1e3 *. warm_s /. float_of_int edits in
      Fmt.pr "%-14s %10.2f %10.2f %8.1fx %8.0f%% %11.1f%s@." label cold_ms
        warm_ms (cold_s /. warm_s) (100.0 *. hit_rate) dirty_cone
        (if identical then "" else "  [MISMATCH]");
      record ~backend:"none" ("incremental/" ^ label)
        [ ("procs", Int procs); ("edits", Int edits); ("cold_ms", Num cold_ms);
          ("warm_ms", Num warm_ms); ("warm_speedup", Num (cold_s /. warm_s));
          ("hit_rate", Num hit_rate); ("dirty_cone", Num dirty_cone);
          ("byte_identical", Str (if identical then "yes" else "no")) ])
    streams;
  (* ---- the strong-control-dependence swap, on a ~1e5-node CFG ---- *)
  let src = Gen.gen_wide_cfg_source ~nodes:100_000 () in
  let prog = Program.of_source src in
  let p = Program.main_proc prog in
  let ecfg =
    Ecfg.extend
      ~empty:{ S89_frontend.Ir.ir = S89_frontend.Ir.Nop "SYNTH"; src_label = None }
      p.Program.cfg
  in
  let n = Digraph.num_nodes (S89_cfg.Cfg.graph (Ecfg.cfg ecfg)) in
  let cdg_new, w_new, a_new =
    timed_best ~reps:3 (fun () -> Control_dep.compute ecfg)
  in
  let cdg_old, w_old, a_old = timed_best ~reps:3 (fun () -> old_cdg_walk ecfg) in
  let edges g = Digraph.num_edges g in
  let same = edges (Control_dep.graph cdg_new) = edges cdg_old in
  Fmt.pr "@.%-34s %10d nodes@." "generated ECFG" n;
  Fmt.pr "%-34s %10.1f ms  (%d edges)@." "CDG, ancestor-walk reference"
    (1e3 *. w_old) (edges cdg_old);
  Fmt.pr "%-34s %10.1f ms  (%d edges)%s@." "CDG, interval-numbered (PR8)"
    (1e3 *. w_new)
    (edges (Control_dep.graph cdg_new))
    (if same then "" else "  [EDGE-COUNT MISMATCH]");
  Fmt.pr "%-34s %10.2fx@." "construction speedup" (w_old /. w_new);
  record ~backend:"none" ~alloc:a_new "incremental/cdg_new"
    [ ("nodes", Int n); ("edges", Int (edges (Control_dep.graph cdg_new)));
      ("wall_ms", Num (1e3 *. w_new)) ];
  record ~backend:"none" ~alloc:a_old "incremental/cdg_old"
    [ ("nodes", Int n); ("edges", Int (edges cdg_old));
      ("wall_ms", Num (1e3 *. w_old));
      ("speedup_new_over_old", Num (w_old /. w_new));
      ("edge_sets_agree", Str (if same then "yes" else "no")) ]

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock suite                                          *)
(* ------------------------------------------------------------------ *)

let wall () =
  section "Bechamel wall-clock micro-suite (one Test per table/figure)";
  let open Bechamel in
  let loops_prog = Program.of_source S89_workloads.Livermore.source in
  let simple_small =
    Program.of_source (S89_workloads.Simple_code.source ~n:20 ~cycles:1 ())
  in
  let fig1_prog = Program.of_source (W.fig1 ()) in
  let pipeline_loops = Pipeline.create loops_prog in
  let vm_loops = Pipeline.run_once pipeline_loops in
  let tests =
    Test.make_grouped ~name:"s89"
      [
        Test.make ~name:"table1.vm-run-SIMPLE-20x1"
          (Staged.stage (fun () -> ignore (run_vm ~cm:CM.optimized simple_small)));
        Test.make ~name:"figures.analysis-pipeline-FIG1"
          (Staged.stage (fun () -> ignore (Analysis.of_program fig1_prog)));
        Test.make ~name:"counters.smart-plan-LOOPS"
          (Staged.stage (fun () ->
               ignore (Placement.plan (Analysis.of_program loops_prog))));
        Test.make ~name:"accuracy.estimate-LOOPS"
          (Staged.stage (fun () ->
               ignore (Pipeline.estimate_oracle pipeline_loops vm_loops)));
        Test.make ~name:"chunks.parsim-10k"
          (Staged.stage (fun () ->
               ignore
                 (S89_sched.Parsim.run ~n:10_000 ~p:16 ~h:50.0
                    ~dist:(S89_sched.Dist.Exponential { mean = 100.0 })
                    S89_sched.Chunk.Self_sched)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some (est :: _) -> Fmt.pr "%-45s %14.1f ns/run@." name est
      | _ -> Fmt.pr "%-45s (no estimate)@." name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

let all_targets =
  [ ("table1", table1); ("t1", table1); ("figure1", figure1); ("f1", figure1);
    ("figure2", figure2); ("f2", figure2); ("figure3", figure3); ("f3", figure3);
    ("counters", counters); ("x1", counters); ("sampling", sampling);
    ("x2", sampling); ("accuracy", accuracy); ("x3", accuracy); ("chunks", chunks);
    ("x4", chunks); ("static", static_analysis); ("x5", static_analysis);
    ("scaling", scaling); ("p3", scaling); ("guards", guards); ("p4", guards);
    ("wal", wal_bench); ("p5", wal_bench); ("incremental", incremental);
    ("p8", incremental); ("serve", serve_bench); ("p9", serve_bench);
    ("wall", wall) ]

let default_order =
  [ figure1; figure2; figure3; table1; counters; sampling; accuracy; chunks;
    static_analysis ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* peel off `--json FILE` anywhere in the argument list *)
  let rec split_json acc = function
    | "--json" :: file :: rest -> (Some file, List.rev_append acc rest)
    | "--json" :: [] ->
        Fmt.epr "--json requires a file argument@.";
        exit 1
    | a :: rest -> split_json (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json_file, args = split_json [] args in
  (* peel off `--domains N` anywhere in the argument list; reject <= 0 *)
  let rec split_domains = function
    | "--domains" :: v :: rest -> (
        match int_of_string_opt v with
        | Some d when d >= 1 ->
            let d', rest' = split_domains rest in
            ((match d' with None -> Some d | some -> some (* last wins *)), rest')
        | Some d ->
            Fmt.epr "--domains: must be >= 1 (got %d)@." d;
            exit 1
        | None ->
            Fmt.epr "--domains: expected a positive integer (got %s)@." v;
            exit 1)
    | "--domains" :: [] ->
        Fmt.epr "--domains requires a value@.";
        exit 1
    | a :: rest ->
        let d, rest' = split_domains rest in
        (d, a :: rest')
    | [] -> (None, [])
  in
  let domains_opt, args = split_domains args in
  let domains = Option.value domains_opt ~default:1 in
  bench_pool := Pool.create ~force_parallel:(domains > 1) ~domains ();
  if domains > 1 then
    Fmt.pr "using a %d-domain work pool for independent reps@."
      (Pool.domains !bench_pool);
  (* fail on an unwritable path now, not after minutes of benchmarking *)
  (match json_file with
  | Some file -> (
      match open_out file with
      | oc -> close_out oc
      | exception Sys_error msg ->
          Fmt.epr "--json: cannot write %s (%s)@." file msg;
          exit 1)
  | None -> ());
  (match args with
  | [] -> List.iter (fun f -> f ()) default_order
  | _ ->
      List.iter
        (fun a ->
          match List.assoc_opt (String.lowercase_ascii a) all_targets with
          | Some f -> f ()
          | None ->
              Fmt.epr "unknown bench target %s; known: %a@." a
                Fmt.(list ~sep:sp string)
                (List.map fst all_targets);
              exit 1)
        args);
  match json_file with None -> () | Some file -> write_json file
