(* The paper's worked example, reproduced end to end.

     dune exec examples/paper_example.exe

   Builds the Figure 1 code fragment, shows the CFG (Figure 1), the
   extended CFG with preheaders/postexits/START/STOP (Figure 2), and the
   annotated forward control dependence graph with the paper's exact
   profile and costs (Figure 3) — including the headline numbers
   TIME(START) = 920 and STD_DEV(START) = 300. *)

module Pipeline = S89_core.Pipeline
module Interproc = S89_core.Interproc
module Report = S89_core.Report
module Analysis = S89_profiling.Analysis
module Ecfg = S89_cfg.Ecfg
module Label = S89_cfg.Label
module Program = S89_frontend.Program

let () =
  let t = Pipeline.of_source (S89_workloads.Demos.fig1 ()) in
  let a = Hashtbl.find t.Pipeline.analyses "FIG1" in

  Fmt.pr "---- Figure 1: control flow graph ----@.";
  let p = Program.find t.Pipeline.prog "FIG1" in
  Fmt.pr "%a@.@."
    (S89_cfg.Cfg.pp ~pp_info:(fun fmt i -> Fmt.pf fmt " {%a}" S89_frontend.Ir.pp_info i))
    p.Program.cfg;

  Fmt.pr "---- Figure 2: extended control flow graph ----@.";
  Fmt.pr "%a@.@."
    (Ecfg.pp ~pp_info:(fun fmt i -> Fmt.pf fmt " {%a}" S89_frontend.Ir.pp_info i))
    a.Analysis.ecfg;

  Fmt.pr "---- Figure 3: annotated FCDG ----@.";
  (* the paper's profile: loop entered once, header executed 10 times,
     IF(M.GE.0) splits 5/5, exit taken through IF(N.LT.0) *)
  let ecfg = a.Analysis.ecfg in
  let start = Ecfg.start ecfg in
  let ph = Ecfg.preheader_of_header ecfg 3 in
  let fig1_totals = Hashtbl.create 16 in
  List.iter
    (fun (k, v) -> Hashtbl.replace fig1_totals k v)
    [ ((start, Label.U), 1); ((ph, Label.U), 10); ((3, Label.T), 5); ((3, Label.F), 5);
      ((4, Label.T), 1); ((4, Label.F), 4); ((5, Label.T), 0); ((5, Label.F), 5) ];
  let a2 = Hashtbl.find t.Pipeline.analyses "FOO" in
  let foo_totals = Hashtbl.create 4 in
  Hashtbl.replace foo_totals (Ecfg.start a2.Analysis.ecfg, Label.U) 9;
  (* the paper's COSTs: 0 everywhere except the IFs (1) and CALL (100,
     realized as TIME(FOO) = 100 through rule 2) *)
  let cost_override name node =
    match (name, node) with
    | "FIG1", (3 | 4 | 5) -> 1.0
    | "FOO", 1 -> 100.0
    | _ -> 0.0
  in
  let est =
    Pipeline.estimate_totals t
      ~totals:(function "FIG1" -> fig1_totals | _ -> foo_totals)
      ~cost_override
  in
  Fmt.pr "%a@.@." Report.pp est;
  Fmt.pr "paper:    TIME(START) = 920, STD_DEV(START) = 300@.";
  Fmt.pr "computed: TIME(START) = %g, STD_DEV(START) = %g@."
    (Interproc.program_time est)
    (Interproc.program_std_dev est)
