(* Profiling the LOOPS benchmark (24 Livermore-style kernels).

     dune exec examples/livermore.exe

   Runs the whole suite under the optimized counter placement, then ranks
   the kernels by estimated share of total execution time — the classic
   "where does the time go" question that §1 motivates, answered from the
   program database instead of wall-clock sampling. *)

module Program = S89_frontend.Program
module Pipeline = S89_core.Pipeline
module Interproc = S89_core.Interproc
module Placement = S89_profiling.Placement
module Naive = S89_profiling.Naive
module Interp = S89_vm.Interp

let () =
  let prog = Program.of_source S89_workloads.Livermore.source in
  let t = Pipeline.create prog in

  (* the §3 comparison on this suite *)
  let analyses = t.Pipeline.analyses in
  let smart = Placement.plan analyses in
  let naive = Naive.plan prog in
  let vm = Pipeline.run_once t in
  Fmt.pr "LOOPS: %d statements across %d kernels@."
    (List.fold_left
       (fun acc (p : Program.proc) -> acc + S89_cfg.Cfg.num_nodes p.Program.cfg)
       0 (Program.procs prog))
    (List.length (Program.procs prog) - 1);
  Fmt.pr "counters:        smart %4d   naive %4d@." (Placement.n_counters smart)
    (Naive.n_counters naive);
  Fmt.pr "counter updates: smart %4d   naive %4d  (one run)@.@."
    (Placement.dynamic_updates smart vm)
    (Naive.dynamic_updates naive prog vm);

  (* estimate and rank the kernels: the gprof-style flat profile the
     paper's related-work section points at *)
  let profile = Pipeline.profile_smart ~runs:5 ~seed:10 t in
  let est = Pipeline.estimate_profiled ~call_variance:true t profile in
  Fmt.pr "flat profile (gprof-style, from estimates rather than samples):@.";
  Fmt.pr "%a@." S89_core.Report.flat_profile est;
  Fmt.pr "whole suite: %.0f cycles per run@." (Interproc.program_time est)
