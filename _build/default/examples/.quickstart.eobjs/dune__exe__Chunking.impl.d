examples/chunking.ml: Chunk Dist Fmt List Parsim S89_cdg S89_cfg S89_core S89_profiling S89_sched S89_util S89_workloads
