examples/paper_example.ml: Fmt Hashtbl List S89_cfg S89_core S89_frontend S89_profiling S89_workloads
