examples/quickstart.mli:
