examples/quickstart.ml: Fmt S89_core S89_profiling
