examples/livermore.mli:
