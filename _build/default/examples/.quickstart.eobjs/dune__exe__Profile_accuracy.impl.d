examples/profile_accuracy.ml: Fmt List S89_core S89_util S89_vm S89_workloads
