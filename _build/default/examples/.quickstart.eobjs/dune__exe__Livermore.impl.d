examples/livermore.ml: Fmt List S89_cfg S89_core S89_frontend S89_profiling S89_vm S89_workloads
