examples/chunking.mli:
