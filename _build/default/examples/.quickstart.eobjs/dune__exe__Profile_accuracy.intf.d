examples/profile_accuracy.mli:
