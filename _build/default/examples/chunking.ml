(* Variance-driven chunk sizing (§5's motivating application).

     dune exec examples/chunking.exe

   The estimator computes TIME and VAR for the body of a data-dependent
   loop; Kruskal–Weiss turns (mean, std-dev, overhead, P) into a chunk
   size; the discrete-event simulator confirms the choice against the
   N/P split and size-1 self-scheduling. *)

module Pipeline = S89_core.Pipeline
module Interproc = S89_core.Interproc
module Analysis = S89_profiling.Analysis
module Ecfg = S89_cfg.Ecfg
module Fcdg = S89_cdg.Fcdg
module Stats = S89_util.Stats
open S89_sched

let () =
  (* a loop whose body cost depends heavily on the data: ~20% of the
     iterations take a slow path *)
  let t = Pipeline.of_source (S89_workloads.Demos.chunky ~iters:400 ~p_heavy:20 ()) in
  let profile = Pipeline.profile_smart ~runs:25 ~seed:2 t in
  let est = Pipeline.estimate_profiled ~call_variance:true t profile in

  let pe = Interproc.main_est est in
  let a = pe.Interproc.analysis in
  Fmt.pr "loops found in CHUNKY and their estimated per-iteration moments:@.";
  List.iter
    (fun h ->
      let body = Fcdg.children a.Analysis.fcdg h S89_cfg.Label.T in
      let time =
        List.fold_left (fun acc v -> acc +. S89_core.Time_est.time pe.Interproc.time v)
          0.0 body
      in
      let var =
        List.fold_left
          (fun acc v -> acc +. S89_core.Variance.var pe.Interproc.variance v)
          0.0 body
      in
      Fmt.pr "  loop@%d: TIME = %.1f, STD_DEV = %.1f (cv %.2f)@." h time (sqrt var)
        (if time > 0.0 then sqrt var /. time else 0.0);
      if time > 100.0 then begin
        (* schedule 20000 such iterations on 16 processors, 40-cycle dispatch *)
        let n = 20_000 and p = 16 and h_ov = 40.0 in
        let k = Chunk.from_estimate ~time ~var ~n ~p ~h:h_ov in
        Fmt.pr "@.  scheduling %d iterations on %d processors (overhead %g):@." n p h_ov;
        Fmt.pr "    Kruskal-Weiss chunk size: %d (static N/P would be %d)@.@." k
          (Chunk.static_chunk ~n ~p);
        let dist = Dist.of_moments ~mean:time ~variance:var in
        List.iter
          (fun (name, strat) ->
            let st = Parsim.run_avg ~seeds:12 ~n ~p ~h:h_ov ~dist strat in
            Fmt.pr "    %-16s makespan %10.0f cycles (+/- %.0f)@." name (Stats.mean st)
              (Stats.std_dev st))
          [ ("static N/P", Chunk.Static_split); ("self-sched (k=1)", Chunk.Self_sched);
            ("guided", Chunk.Guided); ("kruskal-weiss", Chunk.Fixed k) ]
      end)
    (Ecfg.headers a.Analysis.ecfg);
  Fmt.pr
    "@.the paper's point: with low variance, big chunks win (less overhead);@.\
     with high variance, smaller chunks rebalance the load - and the@.\
     estimator's VAR tells the compiler which case it is in.@."
