(* Quickstart: the whole pipeline on a small program, end to end.

     dune exec examples/quickstart.exe

   1. write an MF77 program (Fortran-77 flavoured);
   2. parse + lower it and build the analyses (ECFG, FCDG);
   3. plan optimized counters (§3), run instrumented, reconstruct totals;
   4. estimate TIME and STD_DEV for every statement (§4-§5);
   5. print a Figure-3 style report. *)

module Pipeline = S89_core.Pipeline
module Interproc = S89_core.Interproc
module Report = S89_core.Report
module Placement = S89_profiling.Placement

let source =
  {|
      PROGRAM DEMO
      REAL PRICES(100)
      INTEGER N, I
      N = 100
      TOTAL = 0.0
      NBIG = 0
      DO 10 I = 1, N
        PRICES(I) = 100.0 * RAND()
10    CONTINUE
      DO 20 I = 1, N
        IF (PRICES(I) .GT. 50.0) THEN
          TOTAL = TOTAL + TAXED(PRICES(I))
          NBIG = NBIG + 1
        ELSE
          TOTAL = TOTAL + PRICES(I)
        ENDIF
20    CONTINUE
      PRINT *, TOTAL, NBIG
      END

      REAL FUNCTION TAXED(P)
      TAXED = P * 1.2 + SQRT(P)
      END
|}

let () =
  (* parse, lower, analyze *)
  let t = Pipeline.of_source source in

  (* profile: 20 instrumented runs with the paper's optimized counters *)
  let profile = Pipeline.profile_smart ~runs:20 ~seed:1 t in
  Fmt.pr "profiled 20 runs with %d counters (avg %.0f cycles per run)@.@."
    (Placement.n_counters profile.Pipeline.plan)
    profile.Pipeline.avg_cycles;

  (* estimate average execution times and their variance *)
  let est = Pipeline.estimate_profiled ~call_variance:true t profile in
  Fmt.pr "%a@.@." Report.pp est;

  Fmt.pr "whole program: TIME = %.1f cycles, STD_DEV = %.1f cycles@."
    (Interproc.program_time est)
    (Interproc.program_std_dev est)
