(* How good are the estimates?  (And what do the variance models buy?)

     dune exec examples/profile_accuracy.exe

   For a branchy program whose execution time genuinely varies with its
   random inputs, compare:
   - estimated TIME (from an accumulated smart-counter profile) against
     the measured mean cycle count over fresh runs;
   - the paper's STD_DEV (Case 1 with FREQ², iterations fully correlated)
     and the Wald-identity variant (independent iterations) against the
     empirical standard deviation. *)

module Pipeline = S89_core.Pipeline
module Interproc = S89_core.Interproc
module Interp = S89_vm.Interp
module Stats = S89_util.Stats

let () =
  let runs = 100 in
  List.iter
    (fun (name, src) ->
      let t = Pipeline.of_source src in
      (* measure: uninstrumented seeded runs *)
      let st = Stats.create () in
      for s = 0 to runs - 1 do
        let vm = Pipeline.run_once ~seed:(4000 + s) t in
        Stats.add st (float_of_int (Interp.cycles vm))
      done;
      (* estimate: smart profile over the same seeds *)
      let profile = Pipeline.profile_smart ~runs ~seed:4000 t in
      let est = Pipeline.estimate_profiled ~call_variance:true t profile in
      let est_ind =
        Pipeline.estimate_profiled ~call_variance:true
          ~iteration_model:S89_core.Variance.Independent t profile
      in
      Fmt.pr "%s (%d runs):@." name runs;
      Fmt.pr "  TIME      estimated %12.1f   measured mean %12.1f  (err %.3f%%)@."
        (Interproc.program_time est) (Stats.mean st)
        (100.0 *. Stats.rel_err (Interproc.program_time est) (Stats.mean st));
      Fmt.pr "  STD_DEV   paper     %12.1f   (correlated iterations: upper bound)@."
        (Interproc.program_std_dev est);
      Fmt.pr "            independent %10.1f   measured %12.1f@.@."
        (Interproc.program_std_dev est_ind)
        (Stats.std_dev st))
    [ ("BRANCHY", S89_workloads.Demos.branchy ());
      ("CHUNKY", S89_workloads.Demos.chunky ());
      ("NESTED", S89_workloads.Demos.nested_random ()) ]
