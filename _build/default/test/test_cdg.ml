(* Tests for s89_cdg: control dependence (Definition 2) and the forward
   control dependence graph, checked against the paper's Figure 3 and an
   independent definitional oracle on randomly generated programs. *)

open S89_cfg
open S89_cdg
module Digraph = S89_graph.Digraph
module Program = S89_frontend.Program

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let fig1_analysis () =
  let prog = Program.of_source (S89_workloads.Demos.fig1 ()) in
  S89_profiling.Analysis.of_proc (Program.find prog "FIG1")

(* In the lowered FIG1: 0=ENTRY 1=M= 2=N= 3=IF(M) 4=IF(N.LT.0) 5=IF(N.GE.0)
   6=CALL 7=CONT 8=STOP-node — verified by the frontend tests. *)

let cdg_fig1_memberships () =
  let a = fig1_analysis () in
  let cd = a.S89_profiling.Analysis.cdg in
  let ecfg = a.S89_profiling.Analysis.ecfg in
  let is_cd ~on y = Control_dep.is_control_dependent cd ecfg ~on y in
  (* the worked example's control dependences *)
  check cb "IF(N.LT.0) CD on (IFM,T)" true (is_cd ~on:(3, Label.T) 4);
  check cb "IF(N.GE.0) CD on (IFM,F)" true (is_cd ~on:(3, Label.F) 5);
  check cb "CALL CD on (IFNLT,F)" true (is_cd ~on:(4, Label.F) 6);
  check cb "CALL CD on (IFNGE,F)" true (is_cd ~on:(5, Label.F) 6);
  check cb "CALL not CD on (IFM,T)" false (is_cd ~on:(3, Label.T) 6);
  let start = Ecfg.start ecfg in
  check cb "CONT CD on START" true (is_cd ~on:(start, Label.U) 7);
  let ph = Ecfg.preheader_of_header ecfg 3 in
  check cb "header CD on preheader" true (is_cd ~on:(ph, Ecfg.body_label) 3);
  check cb "preheader CD on START" true (is_cd ~on:(start, Label.U) ph);
  (* loop-carried: nothing is CD on the unconditional latch *)
  check cb "nothing CD on CALL,U" false (is_cd ~on:(6, Label.U) 3)

let fcdg_fig1_structure () =
  let a = fig1_analysis () in
  let fcdg = a.S89_profiling.Analysis.fcdg in
  let ecfg = a.S89_profiling.Analysis.ecfg in
  let start = Ecfg.start ecfg in
  let ph = Ecfg.preheader_of_header ecfg 3 in
  (* Figure 3's shape *)
  check cb "start -> preheader" true (List.mem ph (Fcdg.children fcdg start Label.U));
  check cb "start -> cont" true (List.mem 7 (Fcdg.children fcdg start Label.U));
  check cb "preheader -U-> header" true
    (List.mem 3 (Fcdg.children fcdg ph Ecfg.body_label));
  check cb "ifm -T-> ifnlt" true (Fcdg.children fcdg 3 Label.T = [ 4 ]);
  check cb "ifm -F-> ifnge" true (Fcdg.children fcdg 3 Label.F = [ 5 ]);
  check cb "call child of both" true
    (List.mem 6 (Fcdg.children fcdg 4 Label.F)
    && List.mem 6 (Fcdg.children fcdg 5 Label.F));
  (* postexits hang under the preheader's pseudo edges and the exit branches *)
  List.iter
    (fun pe ->
      let parents = List.map (fun (e : Label.t Digraph.edge) -> e.src) (Fcdg.in_edges fcdg pe) in
      check cb "postexit under preheader" true (List.mem ph parents);
      check cb "postexit under an exit branch" true
        (List.mem 4 parents || List.mem 5 parents))
    (Ecfg.postexits_of_header ecfg 3);
  (* the labels L(u) and conditions *)
  check cb "labels of ifm" true (Fcdg.labels fcdg 3 = [ Label.T; Label.F ]);
  check cb "conditions include (ifm,T)" true
    (List.mem (3, Label.T) (Fcdg.control_conditions fcdg))

let fcdg_well_formed a =
  let fcdg = a.S89_profiling.Analysis.fcdg in
  let ecfg = a.S89_profiling.Analysis.ecfg in
  let g = Fcdg.graph fcdg in
  (* acyclic *)
  if not (S89_graph.Topo.is_acyclic g) then Alcotest.fail "FCDG cyclic";
  (* rooted: everything except STOP reachable from START *)
  let num = S89_graph.Dfs.number g ~root:(Fcdg.start fcdg) in
  Digraph.iter_nodes
    (fun v ->
      if v <> Fcdg.stop fcdg && not (S89_graph.Dfs.reachable num v) then
        Alcotest.failf "node %d not reachable in FCDG" v)
    g;
  (* STOP is never control dependent on anything *)
  if Fcdg.in_edges fcdg (Fcdg.stop fcdg) <> [] then Alcotest.fail "STOP has parents";
  (* the topological orders are consistent *)
  let topo = Fcdg.topological fcdg in
  let pos = Array.make (Digraph.num_nodes g) 0 in
  Array.iteri (fun i v -> pos.(v) <- i) topo;
  Digraph.iter_edges
    (fun e -> if pos.(e.src) >= pos.(e.dst) then Alcotest.fail "topo violated")
    g;
  let bu = Fcdg.bottom_up fcdg in
  check ci "bottom_up is reverse" topo.(0) bu.(Array.length bu - 1);
  ignore ecfg

let fcdg_well_formed_demos () =
  List.iter
    (fun src ->
      let prog = Program.of_source src in
      List.iter
        (fun (p : Program.proc) -> fcdg_well_formed (S89_profiling.Analysis.of_proc p))
        (Program.procs prog))
    [ S89_workloads.Demos.fig1 (); S89_workloads.Demos.branchy ();
      S89_workloads.Demos.chunky (); S89_workloads.Demos.nested_random ();
      S89_workloads.Demos.computed_goto (); S89_workloads.Demos.irreducible ();
      S89_workloads.Simple_code.source ~n:8 ~cycles:1 () ]

let fcdg_back_edges_on_loops () =
  (* a bottom-tested loop has a loop-carried control dependence that must
     be removed: IF at the bottom branching back to the body top *)
  let src =
    {|
      PROGRAM BOT
      INTEGER K
      K = 10
10    K = K - 1
      IF (K .GT. 0) GOTO 10
      END
|}
  in
  let prog = Program.of_source src in
  let a = S89_profiling.Analysis.of_proc (Program.find prog "BOT") in
  check cb "some CDG back edge removed" true
    (Fcdg.removed_back_edges a.S89_profiling.Analysis.fcdg <> []);
  fcdg_well_formed a

(* Oracle completeness/soundness: the FCDG+removed-back-edges together are
   exactly the definitional control dependences, on random programs. *)
let cd_oracle_prop =
  QCheck.Test.make ~count:40 ~name:"CDG = Definition 2 oracle (random programs)"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let prog = Gen_prog.gen_program seed in
      List.for_all
        (fun (p : Program.proc) ->
          let a = S89_profiling.Analysis.of_proc p in
          let cd = a.S89_profiling.Analysis.cdg in
          let ecfg = a.S89_profiling.Analysis.ecfg in
          let cdg = Control_dep.graph cd in
          let n = Digraph.num_nodes cdg in
          (* soundness: every CDG edge satisfies the definition *)
          let sound =
            Digraph.fold_edges
              (fun ok e ->
                ok
                && Control_dep.is_control_dependent cd ecfg ~on:(e.src, e.label) e.dst)
              true cdg
          in
          (* completeness: every definitional dependence is a CDG edge *)
          let complete = ref true in
          let ext = Ecfg.cfg ecfg in
          for x = 0 to n - 1 do
            List.iter
              (fun l ->
                for y = 0 to n - 1 do
                  if
                    Control_dep.is_control_dependent cd ecfg ~on:(x, l) y
                    && not
                         (List.exists
                            (fun (e : Label.t Digraph.edge) ->
                              e.dst = y && Label.equal e.label l)
                            (Digraph.succ_edges cdg x))
                  then complete := false
                done)
              (Cfg.out_labels ext x)
          done;
          sound && !complete)
        (Program.procs prog))

(* FCDG node frequencies are what control dependence promises: a node's
   execution count equals the sum of its parent conditions' totals *)
let node_total_prop =
  QCheck.Test.make ~count:40
    ~name:"NODE_TOTAL(v) = sum of in-condition totals (random programs)"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let prog = Gen_prog.gen_program seed in
      let vm = S89_vm.Interp.create prog in
      ignore (S89_vm.Interp.run vm);
      List.for_all
        (fun (p : Program.proc) ->
          let a = S89_profiling.Analysis.of_proc p in
          let fcdg = a.S89_profiling.Analysis.fcdg in
          let ecfg = a.S89_profiling.Analysis.ecfg in
          let totals = S89_profiling.Analysis.oracle_totals a vm in
          let ok = ref true in
          Digraph.iter_nodes
            (fun v ->
              if
                v <> Fcdg.start fcdg && v <> Fcdg.stop fcdg
                && Ecfg.is_original ecfg v
              then begin
                let expected =
                  List.fold_left
                    (fun acc (e : Label.t Digraph.edge) ->
                      acc
                      + (match Hashtbl.find_opt totals (e.src, e.label) with
                        | Some n -> n
                        | None -> 0))
                    0 (Fcdg.in_edges fcdg v)
                in
                let actual =
                  S89_vm.Interp.node_execs vm p.Program.name v
                in
                if expected <> actual then ok := false
              end)
            (Fcdg.graph fcdg);
          !ok)
        (Program.procs prog))

let suite =
  [
    Alcotest.test_case "CDG: fig1 memberships" `Quick cdg_fig1_memberships;
    Alcotest.test_case "FCDG: fig1 = Figure 3 shape" `Quick fcdg_fig1_structure;
    Alcotest.test_case "FCDG: well-formed on demos" `Quick fcdg_well_formed_demos;
    Alcotest.test_case "FCDG: back edges on bottom-test loop" `Quick
      fcdg_back_edges_on_loops;
    QCheck_alcotest.to_alcotest cd_oracle_prop;
    QCheck_alcotest.to_alcotest node_total_prop;
  ]
