(* Tests for s89_core: COST/TIME/VAR estimation, the paper's worked
   example (golden 920/300), the exactness property against the VM,
   variance models, interprocedural rules and recursion handling. *)

module Program = S89_frontend.Program
module Interp = S89_vm.Interp
module Analysis = S89_profiling.Analysis
module Label = S89_cfg.Label
module Ecfg = S89_cfg.Ecfg
open S89_core

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check = Alcotest.check
let cb = Alcotest.bool
let cf = Alcotest.float 1e-9
let cfl tol = Alcotest.float tol

(* ---------------- the paper's worked example ---------------- *)

let figure3_setup () =
  let t = Pipeline.of_source (S89_workloads.Demos.fig1 ()) in
  let a = Hashtbl.find t.Pipeline.analyses "FIG1" in
  let ecfg = a.Analysis.ecfg in
  let start = Ecfg.start ecfg in
  let ph = Ecfg.preheader_of_header ecfg 3 in
  let fig1_totals = Hashtbl.create 16 in
  List.iter
    (fun (k, v) -> Hashtbl.replace fig1_totals k v)
    [ ((start, Label.U), 1); ((ph, Label.U), 10); ((3, Label.T), 5); ((3, Label.F), 5);
      ((4, Label.T), 1); ((4, Label.F), 4); ((5, Label.T), 0); ((5, Label.F), 5) ];
  let a2 = Hashtbl.find t.Pipeline.analyses "FOO" in
  let foo_totals = Hashtbl.create 4 in
  Hashtbl.replace foo_totals (Ecfg.start a2.Analysis.ecfg, Label.U) 9;
  let totals = function "FIG1" -> fig1_totals | _ -> foo_totals in
  let cost_override name node =
    match (name, node) with
    | "FIG1", (3 | 4 | 5) -> 1.0
    | "FOO", 1 -> 100.0
    | _ -> 0.0
  in
  (t, Pipeline.estimate_totals t ~totals ~cost_override)

let golden_headline () =
  let _, est = figure3_setup () in
  check cf "TIME(START) = 920" 920.0 (Interproc.program_time est);
  check cf "VAR(START) = 90000" 90000.0 (Interproc.program_var est);
  check cf "STD_DEV(START) = 300" 300.0 (Interproc.program_std_dev est)

let golden_node_tuples () =
  let _, est = figure3_setup () in
  let pe = Interproc.proc_est est "FIG1" in
  (* node 3 = the loop IF; tuple [1, 92, 9364, 900, 30] *)
  check cf "COST(3)" 1.0 (Time_est.cost pe.Interproc.time 3);
  check cf "TIME(3)" 92.0 (Time_est.time pe.Interproc.time 3);
  check cf "E[T²](3)" 9364.0 (Variance.e2 pe.Interproc.variance 3);
  check cf "VAR(3)" 900.0 (Variance.var pe.Interproc.variance 3);
  check cf "STD_DEV(3)" 30.0 (Variance.std_dev pe.Interproc.variance 3);
  (* node 4 = IF(N.LT.0); [1, 81, 8161, 1600, 40] *)
  check cf "TIME(4)" 81.0 (Time_est.time pe.Interproc.time 4);
  check cf "VAR(4)" 1600.0 (Variance.var pe.Interproc.variance 4);
  (* node 5 = IF(N.GE.0); [1, 101, 10201, 0, 0] *)
  check cf "TIME(5)" 101.0 (Time_est.time pe.Interproc.time 5);
  check cf "VAR(5)" 0.0 (Variance.var pe.Interproc.variance 5);
  (* the CALL costs TIME(FOO) = 100 via rule 2 *)
  check cf "COST(CALL)" 100.0 (Time_est.cost pe.Interproc.time 6);
  let foo = Interproc.proc_est est "FOO" in
  check cf "TIME(FOO)" 100.0 (Time_est.total_time foo.Interproc.time foo.Interproc.analysis)

let golden_report () =
  let _, est = figure3_setup () in
  let s = Fmt.str "%a" Report.pp est in
  check cb "mentions TIME" true
    (contains s "TIME(START)=920");
  check cb "mentions SD" true (contains s "STD_DEV(START)=300");
  let dot = Report.fcdg_dot (Interproc.main_est est) in
  check cb "dot graph" true (contains dot "digraph fcdg");
  let a = (Interproc.main_est est).Interproc.analysis in
  check cb "ecfg dot" true (contains (Report.ecfg_dot a) "digraph ecfg")

(* ---------------- exactness: estimate = measurement ---------------- *)

let exactness prog_src seed =
  let t = Pipeline.of_source prog_src in
  let vm = Pipeline.run_once ~seed t in
  let est = Pipeline.estimate_oracle t vm in
  let measured = float_of_int (Interp.cycles vm) in
  let predicted = Interproc.program_time est in
  if Float.abs (measured -. predicted) > 1e-6 *. (1.0 +. measured) then
    Alcotest.failf "measured %.3f but predicted %.3f" measured predicted

let exactness_demos () =
  List.iter
    (fun src -> exactness src 11)
    [ S89_workloads.Demos.fig1 (); S89_workloads.Demos.branchy ();
      S89_workloads.Demos.chunky (); S89_workloads.Demos.nested_random ();
      S89_workloads.Demos.computed_goto (); S89_workloads.Demos.irreducible ();
      S89_workloads.Demos.sort (); S89_workloads.Demos.sieve ();
      S89_workloads.Linpack_like.source (); S89_workloads.Livermore.source ]

let exactness_random_prop =
  QCheck.Test.make ~count:50
    ~name:"TIME(START) = measured cycles (oracle freqs, random programs)"
    QCheck.(pair (int_range 0 100000) (int_range 0 500))
    (fun (seed, vmseed) ->
      exactness (Gen_prog.gen_source seed) vmseed;
      true)

(* the same holds under the unoptimized cost model *)
let exactness_cost_models () =
  let t = Pipeline.of_source (S89_workloads.Demos.branchy ()) in
  List.iter
    (fun cm ->
      let vm = Pipeline.run_once ~cost_model:cm ~seed:4 t in
      let est = Pipeline.estimate_oracle ~cost_model:cm t vm in
      check (cfl 1e-6) "exact"
        (float_of_int (Interp.cycles vm))
        (Interproc.program_time est))
    [ S89_vm.Cost_model.optimized; S89_vm.Cost_model.unoptimized ]

(* ---------------- TIME properties ---------------- *)

let time_scales_with_cost () =
  let t = Pipeline.of_source (S89_workloads.Demos.branchy ()) in
  let vm = Pipeline.run_once t in
  let est1 = Pipeline.estimate_oracle t vm in
  let est2 =
    Pipeline.estimate_oracle ~cost_override:(fun _ _ -> 10.0) t vm
  in
  let est3 =
    Pipeline.estimate_oracle ~cost_override:(fun _ _ -> 20.0) t vm
  in
  ignore est1;
  check (cfl 1e-6) "doubling all costs doubles TIME"
    (2.0 *. Interproc.program_time est2)
    (Interproc.program_time est3)

(* ---------------- variance ---------------- *)

let variance_zero_for_straight_line () =
  let t =
    Pipeline.of_source
      "      PROGRAM T\n      X = 1.0\n      Y = X + 2.0\n      Z = X * Y\n      END\n"
  in
  let vm = Pipeline.run_once t in
  let est = Pipeline.estimate_oracle t vm in
  check cf "no branches, no variance" 0.0 (Interproc.program_var est)

(* a single Bernoulli branch: VAR = p(1-p)·ΔT² analytically *)
let variance_bernoulli () =
  let t = Pipeline.of_source (S89_workloads.Demos.fig1 ()) in
  let a = Hashtbl.find t.Pipeline.analyses "FIG1" in
  let ecfg = a.Analysis.ecfg in
  let start = Ecfg.start ecfg in
  let ph = Ecfg.preheader_of_header ecfg 3 in
  (* one "iteration": the loop runs once, IF(M) goes T with p=0.7 over many
     invocations: totals 70/30 of 100 invocations, loop entered once each *)
  let totals = Hashtbl.create 16 in
  List.iter
    (fun (k, v) -> Hashtbl.replace totals k v)
    [ ((start, Label.U), 100); ((ph, Label.U), 100); ((3, Label.T), 70);
      ((3, Label.F), 30); ((4, Label.T), 70); ((4, Label.F), 0); ((5, Label.T), 30);
      ((5, Label.F), 0) ];
  let foo_totals = Hashtbl.create 4 in
  let a2 = Hashtbl.find t.Pipeline.analyses "FOO" in
  Hashtbl.replace foo_totals (Ecfg.start a2.Analysis.ecfg, Label.U) 0;
  let cost_override name node =
    match (name, node) with
    | "FIG1", 4 -> 10.0 (* T path costs 10 *)
    | "FIG1", 5 -> 30.0 (* F path costs 30 *)
    | _ -> 0.0
  in
  let est =
    Pipeline.estimate_totals t
      ~totals:(function "FIG1" -> totals | _ -> foo_totals)
      ~cost_override
  in
  (* T_C at node 3: 0.7·10 + 0.3·30 = 16; E[T²] = 0.7·100 + 0.3·900 = 340;
     VAR = 340 − 256 = 84 = p(1−p)(30−10)² *)
  let pe = Interproc.proc_est est "FIG1" in
  check cf "bernoulli variance" 84.0 (Variance.var pe.Interproc.variance 3)

(* loop frequency variance models (Case 1's second and third terms) *)
let variance_loop_freq_models () =
  let t = Pipeline.of_source (S89_workloads.Demos.nested_random ()) in
  let vm = Pipeline.run_once ~seed:2 t in
  let sd freq_var =
    Interproc.program_std_dev (Pipeline.estimate_oracle ~freq_var t vm)
  in
  let zero = sd Interproc.Zero in
  let poisson = sd Interproc.Poisson in
  let uniform = sd Interproc.Uniform in
  let geometric = sd Interproc.Geometric in
  check cb "freq variance adds variance" true
    (zero <= poisson && poisson <= uniform && uniform <= geometric);
  check cb "geometric strictly larger" true (geometric > zero)

(* profiled E[F²]: exact value propagates *)
let variance_profiled_freq () =
  let t =
    Pipeline.of_source
      "      PROGRAM T\n      N = IRAND(5)\n      DO 10 I = 1, N\n      X = X + 1.0\n10    CONTINUE\n      END\n"
  in
  let profile = Pipeline.profile_smart ~runs:40 ~seed:1 t in
  let est = Pipeline.estimate_profiled t profile in
  let est0 = Pipeline.estimate_profiled ~use_second_moments:false t profile in
  (* with trip-count randomness, profiled second moments must add variance *)
  check cb "profiled E[F²] adds variance" true
    (Interproc.program_std_dev est > Interproc.program_std_dev est0)

(* iteration models: paper's F² vs Wald; for F iid iterations the paper
   formula is exactly F times the Wald variance when VAR(F)=0 *)
let variance_iteration_models () =
  let t = Pipeline.of_source (S89_workloads.Demos.branchy ()) in
  let vm = Pipeline.run_once ~seed:6 t in
  let v_paper =
    Interproc.program_var
      (Pipeline.estimate_oracle ~iteration_model:Variance.Paper_correlated t vm)
  in
  let v_indep =
    Interproc.program_var
      (Pipeline.estimate_oracle ~iteration_model:Variance.Independent t vm)
  in
  check cb "paper >= independent" true (v_paper >= v_indep);
  check cb "both positive" true (v_indep > 0.0)

(* ---------------- interprocedural ---------------- *)

let interproc_chain () =
  let t =
    Pipeline.of_source
      "      PROGRAM M\n      CALL A\n      CALL A\n      END\n\n      SUBROUTINE A\n      CALL B\n      END\n\n      SUBROUTINE B\n      X = 1.0\n      END\n"
  in
  let vm = Pipeline.run_once t in
  let est = Pipeline.estimate_oracle t vm in
  let time name =
    let pe = Interproc.proc_est est name in
    Time_est.total_time pe.Interproc.time pe.Interproc.analysis
  in
  (* rule 2 composition: M costs its own linkage plus 2·TIME(A) *)
  check cb "A > B" true (time "A" > time "B");
  check cb "M > 2·A" true (time "M" >= 2.0 *. time "A");
  check (cfl 1e-6) "exact" (float_of_int (Interp.cycles vm)) (time "M")

let interproc_call_variance () =
  let src =
    "      PROGRAM M\n      DO 10 I = 1, 50\n      CALL A\n10    CONTINUE\n      END\n\n      SUBROUTINE A\n      IF (RAND() .GT. 0.5) THEN\n      X = SQRT(2.0)\n      ENDIF\n      END\n"
  in
  let t = Pipeline.of_source src in
  let vm = Pipeline.run_once t in
  let est0 = Pipeline.estimate_oracle ~call_variance:false t vm in
  let est1 = Pipeline.estimate_oracle ~call_variance:true t vm in
  (* the caller's own loop accounts for some variance either way; the
     callee's branch variance is only included when propagation is on *)
  check cb "propagation adds variance" true
    (Interproc.program_var est1 > Interproc.program_var est0);
  (* the callee's own per-invocation variance is positive too *)
  let pa = Interproc.proc_est est1 "A" in
  check cb "callee variance positive" true
    (Variance.total_var pa.Interproc.variance pa.Interproc.analysis > 0.0)

let interproc_recursion_reject () =
  let t = Pipeline.of_source (S89_workloads.Demos.recursive ()) in
  let vm = Pipeline.run_once t in
  match Pipeline.estimate_oracle t vm with
  | exception Interproc.Recursion_unsupported names ->
      check cb "names EVEN/ODD" true
        (List.mem "EVEN" names && List.mem "ODD" names)
  | _ -> Alcotest.fail "expected Recursion_unsupported"

let interproc_recursion_fixpoint () =
  let t = Pipeline.of_source (S89_workloads.Demos.recursive ~n:12 ()) in
  let vm = Pipeline.run_once t in
  let est =
    Pipeline.estimate_oracle
      ~recursion:(Interproc.Fixpoint { tol = 1e-9; max_iter = 500 })
      t vm
  in
  (* the fixpoint solves the per-invocation averages; the whole-program
     estimate from them must still equal the measured cycles *)
  check (cfl 1e-3) "fixpoint reproduces measured cycles"
    (float_of_int (Interp.cycles vm))
    (Interproc.program_time est)

let suite =
  [
    Alcotest.test_case "golden: TIME 920 / SD 300" `Quick golden_headline;
    Alcotest.test_case "golden: Figure 3 node tuples" `Quick golden_node_tuples;
    Alcotest.test_case "golden: report rendering" `Quick golden_report;
    Alcotest.test_case "exactness: demos" `Slow exactness_demos;
    QCheck_alcotest.to_alcotest exactness_random_prop;
    Alcotest.test_case "exactness: both cost models" `Quick exactness_cost_models;
    Alcotest.test_case "time scales with cost" `Quick time_scales_with_cost;
    Alcotest.test_case "variance: straight line = 0" `Quick variance_zero_for_straight_line;
    Alcotest.test_case "variance: bernoulli analytic" `Quick variance_bernoulli;
    Alcotest.test_case "variance: loop freq models" `Quick variance_loop_freq_models;
    Alcotest.test_case "variance: profiled E[F²]" `Quick variance_profiled_freq;
    Alcotest.test_case "variance: iteration models" `Quick variance_iteration_models;
    Alcotest.test_case "interproc: call chain" `Quick interproc_chain;
    Alcotest.test_case "interproc: call variance" `Quick interproc_call_variance;
    Alcotest.test_case "interproc: recursion rejected" `Quick interproc_recursion_reject;
    Alcotest.test_case "interproc: recursion fixpoint" `Quick interproc_recursion_fixpoint;
  ]

(* ---------------- compile-time frequency analysis (X5) ---------------- *)

let static_freq_exact_cases () =
  (* constant-bound DO loops and compile-time conditions: exact *)
  let src =
    "      PROGRAM T\n      DO 10 I = 1, 25\n      X = X + 1.0\n10    CONTINUE\n      IF (1 .GT. 2) THEN\n      Y = SQRT(2.0)\n      ENDIF\n      END\n"
  in
  let t = Pipeline.of_source src in
  let est_static =
    Pipeline.estimate_totals t
      ~totals:(Static_freq.program_totals t.Pipeline.analyses)
  in
  let vm = Pipeline.run_once t in
  let est_oracle = Pipeline.estimate_oracle t vm in
  (* everything in this program is statically analyzable *)
  check (cfl 1e-3) "static = profiled on analyzable code"
    (Interproc.program_time est_oracle)
    (Interproc.program_time est_static)

let static_freq_heuristics () =
  (* data-dependent branch: heuristic probability, sane scale *)
  let t = Pipeline.of_source (S89_workloads.Demos.branchy ()) in
  let est =
    Pipeline.estimate_totals t
      ~totals:(Static_freq.program_totals t.Pipeline.analyses)
  in
  check cb "positive" true (Interproc.program_time est > 0.0);
  (* custom heuristics shift the estimate *)
  let est_long_loops =
    Pipeline.estimate_totals t
      ~totals:
        (Static_freq.program_totals
           ~heuristics:{ Static_freq.default_heuristics with loop_freq = 100.0 }
           t.Pipeline.analyses)
  in
  check cb "longer assumed loops, larger TIME" true
    (Interproc.program_time est_long_loops > Interproc.program_time est)

let optimizer_refines_static_trips () =
  (* a constant bound reaching the DO through an assignment becomes a
     static trip after global constant propagation *)
  let src =
    "      PROGRAM T\n      N = 37\n      DO 5 I = 1, 10\n      X = X + 1.0\n5     CONTINUE\n      DO 10 J = 1, N\n      Y = Y + 1.0\n10    CONTINUE\n      END\n"
  in
  let prog = S89_frontend.Program.of_source src in
  let trips prog =
    let p = S89_frontend.Program.main_proc prog in
    let acc = ref [] in
    S89_cfg.Cfg.iter_nodes
      (fun n ->
        match (S89_cfg.Cfg.info p.S89_frontend.Program.cfg n).S89_frontend.Ir.ir with
        | S89_frontend.Ir.Do_test m -> acc := m.S89_frontend.Ir.static_trip :: !acc
        | _ -> ())
      p.S89_frontend.Program.cfg;
    List.sort compare !acc
  in
  check cb "before: one unknown trip" true (List.mem None (trips prog));
  let opt = S89_vm.Optimize.program prog in
  check cb "after: both trips static" true
    (trips opt = [ Some 10; Some 37 ] || trips opt = [ Some 37; Some 10 ]);
  (* and the static estimate becomes exact *)
  let t = Pipeline.create opt in
  let est_static =
    Pipeline.estimate_totals t ~totals:(Static_freq.program_totals t.Pipeline.analyses)
  in
  let vm = Pipeline.run_once t in
  let est_oracle = Pipeline.estimate_oracle t vm in
  check (cfl 1e-3) "static exact after optimization"
    (Interproc.program_time est_oracle)
    (Interproc.program_time est_static)

let static_suite_extra =
  [
    Alcotest.test_case "static freq: exact cases" `Quick static_freq_exact_cases;
    Alcotest.test_case "static freq: heuristics" `Quick static_freq_heuristics;
    Alcotest.test_case "optimizer refines static trips" `Quick
      optimizer_refines_static_trips;
  ]

let suite = suite @ static_suite_extra

(* ---------------- flat profile & CSV export ---------------- *)

let report_flat_profile () =
  let t = Pipeline.of_source (S89_workloads.Demos.fig1 ()) in
  let vm = Pipeline.run_once t in
  let est = Pipeline.estimate_oracle t vm in
  let s = Fmt.str "%a" Report.flat_profile est in
  check cb "has header row" true (contains s "TIME/call");
  check cb "lists FIG1" true (contains s "FIG1");
  check cb "lists FOO" true (contains s "FOO");
  check cb "main is 100%" true (contains s "100.0%")

let report_csv () =
  let t = Pipeline.of_source (S89_workloads.Demos.fig1 ()) in
  let vm = Pipeline.run_once t in
  let est = Pipeline.estimate_oracle t vm in
  let s = Report.csv est in
  let lines = String.split_on_char '\n' (String.trim s) in
  check cb "header" true
    (List.hd lines = "procedure,node,kind,cost,time,e_t2,var,std_dev,node_freq");
  (* one row per FCDG node of each procedure *)
  let expected =
    Hashtbl.fold
      (fun _ (a : Analysis.t) acc ->
        acc + Array.length (S89_cdg.Fcdg.topological a.Analysis.fcdg))
      t.Pipeline.analyses 0
  in
  check Alcotest.int "row count" expected (List.length lines - 1);
  (* every row has 9 comma-separated fields (kind is comma-sanitized) *)
  List.iter
    (fun l ->
      check Alcotest.int "fields" 9 (List.length (String.split_on_char ',' l)))
    (List.tl lines)

let suite =
  suite
  @ [
      Alcotest.test_case "report: flat profile" `Quick report_flat_profile;
      Alcotest.test_case "report: csv export" `Quick report_csv;
    ]

let report_hotspots () =
  let t = Pipeline.of_source (S89_workloads.Demos.branchy ()) in
  let vm = Pipeline.run_once t in
  let est = Pipeline.estimate_oracle t vm in
  let hs = Report.hotspots ~top:5 est in
  check Alcotest.int "top 5" 5 (List.length hs);
  (* sorted descending, shares within [0,100] *)
  let rec sorted = function
    | (_, _, _, a, _) :: ((_, _, _, b, _) :: _ as rest) -> a >= b && sorted rest
    | _ -> true
  in
  check cb "descending" true (sorted hs);
  List.iter (fun (_, _, _, _, share) -> check cb "share sane" true (share >= 0.0 && share <= 100.0)) hs;
  (* a call site is marked as including callees *)
  let t2 = Pipeline.of_source (S89_workloads.Demos.fig1 ()) in
  let vm2 = Pipeline.run_once t2 in
  let est2 = Pipeline.estimate_oracle t2 vm2 in
  check cb "call marked" true
    (List.exists (fun (_, _, d, _, _) -> contains d "[incl. callees]")
       (Report.hotspots ~top:20 est2))

let suite = suite @ [ Alcotest.test_case "report: hotspots" `Quick report_hotspots ]
