(* Tests for s89_cfg: Label, Node_type, Cfg, Intervals, Ecfg. *)

open S89_cfg
module Digraph = S89_graph.Digraph

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cil = Alcotest.(list int)

(* ---------------- Label / Node_type ---------------- *)

let label_strings () =
  check Alcotest.string "T" "T" (Label.to_string Label.T);
  check Alcotest.string "F" "F" (Label.to_string Label.F);
  check Alcotest.string "U" "U" (Label.to_string Label.U);
  check Alcotest.string "case" "C3" (Label.to_string (Label.Case 3));
  check Alcotest.string "pseudo" "Z2" (Label.to_string (Label.Pseudo 2));
  check cb "pseudo flag" true (Label.is_pseudo (Label.Pseudo 1));
  check cb "not pseudo" false (Label.is_pseudo Label.T);
  check cb "equal" true (Label.equal (Label.Case 2) (Label.Case 2));
  check cb "not equal" false (Label.equal (Label.Case 2) (Label.Case 3));
  check cb "compare" true (Label.compare Label.T Label.F <> 0)

let node_type_strings () =
  List.iter
    (fun (t, s) -> check Alcotest.string s s (Node_type.to_string t))
    [ (Node_type.Start, "START"); (Node_type.Stop, "STOP");
      (Node_type.Header, "HEADER"); (Node_type.Preheader, "PREHEADER");
      (Node_type.Postexit, "POSTEXIT"); (Node_type.Other, "OTHER") ]

(* ---------------- Cfg ---------------- *)

(* the paper's Figure 1 graph, hand-built with string payloads *)
let fig1_cfg () =
  let cfg = Cfg.create ~dummy:"" in
  let entry = Cfg.add_node cfg "ENTRY" in
  let if_m = Cfg.add_node cfg "10 IF(M.GE.0)" in
  let if_nlt = Cfg.add_node cfg "IF(N.LT.0)" in
  let if_nge = Cfg.add_node cfg "IF(N.GE.0)" in
  let call = Cfg.add_node cfg "CALL FOO" in
  let cont = Cfg.add_node cfg "20 CONTINUE" in
  Cfg.add_edge cfg ~src:entry ~dst:if_m ~label:Label.U;
  Cfg.add_edge cfg ~src:if_m ~dst:if_nlt ~label:Label.T;
  Cfg.add_edge cfg ~src:if_m ~dst:if_nge ~label:Label.F;
  Cfg.add_edge cfg ~src:if_nlt ~dst:cont ~label:Label.T;
  Cfg.add_edge cfg ~src:if_nlt ~dst:call ~label:Label.F;
  Cfg.add_edge cfg ~src:if_nge ~dst:cont ~label:Label.T;
  Cfg.add_edge cfg ~src:if_nge ~dst:call ~label:Label.F;
  Cfg.add_edge cfg ~src:call ~dst:if_m ~label:Label.U;
  Cfg.set_entry cfg entry;
  Cfg.set_exits cfg [ cont ];
  (cfg, (entry, if_m, if_nlt, if_nge, call, cont))

let cfg_basics () =
  let cfg, (entry, if_m, _, _, _, cont) = fig1_cfg () in
  check ci "nodes" 6 (Cfg.num_nodes cfg);
  check ci "entry" entry (Cfg.entry cfg);
  check cil "exits" [ cont ] (Cfg.exits cfg);
  check Alcotest.string "payload" "ENTRY" (Cfg.info cfg entry);
  Cfg.set_info cfg entry "E2";
  check Alcotest.string "set payload" "E2" (Cfg.info cfg entry);
  check cb "type default" true (Node_type.equal (Cfg.node_type cfg if_m) Node_type.Other);
  Cfg.set_node_type cfg if_m Node_type.Header;
  check cb "set type" true (Node_type.equal (Cfg.node_type cfg if_m) Node_type.Header);
  check cb "validate ok" true (Cfg.validate cfg = Ok ())

let cfg_out_labels () =
  let cfg, (_, if_m, _, _, call, _) = fig1_cfg () in
  check cb "branch labels" true (Cfg.out_labels cfg if_m = [ Label.T; Label.F ]);
  check cb "uncond labels" true (Cfg.out_labels cfg call = [ Label.U ])

let cfg_validate_errors () =
  let cfg = Cfg.create ~dummy:() in
  check cb "no entry" true (Cfg.validate cfg = Error Cfg.No_entry);
  let a = Cfg.add_node cfg () in
  Cfg.set_entry cfg a;
  check cb "no exit" true (Cfg.validate cfg = Error Cfg.No_exit);
  Cfg.set_exits cfg [ 9 ];
  check cb "dangling exit" true (Cfg.validate cfg = Error (Cfg.Dangling_exit 9));
  let b = Cfg.add_node cfg () in
  Cfg.set_exits cfg [ b ];
  (match Cfg.validate cfg with
  | Error (Cfg.Unreachable [ n ]) -> check ci "unreachable b" b n
  | _ -> Alcotest.fail "expected Unreachable");
  Cfg.add_edge cfg ~src:a ~dst:b ~label:Label.U;
  check cb "now valid" true (Cfg.validate cfg = Ok ());
  Cfg.add_edge cfg ~src:b ~dst:a ~label:Label.U;
  check cb "exit with successor" true
    (Cfg.validate cfg = Error (Cfg.Exit_has_successor b))

let cfg_normalize_entry () =
  let cfg = Cfg.create ~dummy:"x" in
  let a = Cfg.add_node cfg "a" in
  let b = Cfg.add_node cfg "b" in
  Cfg.add_edge cfg ~src:a ~dst:b ~label:Label.U;
  Cfg.add_edge cfg ~src:b ~dst:a ~label:Label.U;
  Cfg.set_entry cfg a;
  let e = Cfg.normalize_entry cfg in
  check cb "fresh entry" true (e <> a);
  check ci "entry updated" e (Cfg.entry cfg);
  check ci "no preds" 0 (List.length (Cfg.pred_edges cfg e));
  (* idempotent *)
  check ci "idempotent" e (Cfg.normalize_entry cfg)

(* ---------------- Intervals ---------------- *)

let intervals_fig1 () =
  let cfg, (entry, if_m, if_nlt, if_nge, call, cont) = fig1_cfg () in
  let iv = Intervals.compute cfg in
  check ci "root is entry" entry (Intervals.root iv);
  check cil "one header" [ if_m ] (Intervals.headers iv);
  check cb "is_header" true (Intervals.is_header iv if_m);
  check cb "entry not header" false (Intervals.is_header iv entry);
  check ci "hdr of body" if_m (Intervals.hdr iv call);
  check ci "hdr of header" if_m (Intervals.hdr iv if_m);
  check ci "hdr outside" entry (Intervals.hdr iv cont);
  check cb "hdr_parent of loop = root" true
    (Intervals.hdr_parent iv if_m = Some entry);
  check cb "hdr_parent of root" true (Intervals.hdr_parent iv entry = None);
  check ci "hdr_lca" entry (Intervals.hdr_lca iv if_m entry);
  check ci "depth" 1 (Intervals.interval_depth iv if_m);
  check cb "encloses root->loop" true (Intervals.encloses iv entry if_m);
  check cb "not encloses loop->root" false (Intervals.encloses iv if_m entry);
  let members = Intervals.members iv if_m in
  check cb "members" true
    (Intervals.IS.equal members (Intervals.IS.of_list [ if_m; if_nlt; if_nge; call ]));
  check cil "back edge sources" [ call ] (Intervals.back_edge_sources iv if_m);
  check ci "exit edges" 2 (List.length (Intervals.exit_edges iv cfg if_m))

let intervals_nested () =
  (* entry -> h1 -> h2 -> b -> h2(back) ; b -> l1 -> h1(back); l1 -> exit *)
  let cfg = Cfg.create ~dummy:() in
  let e = Cfg.add_node cfg () in
  let h1 = Cfg.add_node cfg () in
  let h2 = Cfg.add_node cfg () in
  let b = Cfg.add_node cfg () in
  let l1 = Cfg.add_node cfg () in
  let x = Cfg.add_node cfg () in
  List.iter
    (fun (u, v, l) -> Cfg.add_edge cfg ~src:u ~dst:v ~label:l)
    [ (e, h1, Label.U); (h1, h2, Label.U); (h2, b, Label.U); (b, h2, Label.T);
      (b, l1, Label.F); (l1, h1, Label.T); (l1, x, Label.F) ];
  Cfg.set_entry cfg e;
  Cfg.set_exits cfg [ x ];
  let iv = Intervals.compute cfg in
  check cil "headers outermost first" [ h1; h2 ] (Intervals.headers iv);
  check ci "hdr b innermost" h2 (Intervals.hdr iv b);
  check ci "hdr l1" h1 (Intervals.hdr iv l1);
  check cb "parent h2 = h1" true (Intervals.hdr_parent iv h2 = Some h1);
  check ci "lca h2 h1" h1 (Intervals.hdr_lca iv h2 h1);
  check ci "depth h2" 2 (Intervals.interval_depth iv h2);
  check cb "h1 encloses h2" true (Intervals.encloses iv h1 h2);
  check cb "h2 members subset h1" true
    (Intervals.IS.subset (Intervals.members iv h2) (Intervals.members iv h1))

let intervals_entry_preds () =
  let cfg = Cfg.create ~dummy:() in
  let a = Cfg.add_node cfg () in
  let b = Cfg.add_node cfg () in
  Cfg.add_edge cfg ~src:a ~dst:b ~label:Label.U;
  Cfg.add_edge cfg ~src:b ~dst:a ~label:Label.U;
  Cfg.set_entry cfg a;
  Cfg.set_exits cfg [ b ];
  (try
     ignore (Intervals.compute cfg);
     Alcotest.fail "expected Entry_has_preds"
   with Intervals.Entry_has_preds n -> check ci "offender" a n)

let intervals_irreducible () =
  let cfg = Cfg.create ~dummy:() in
  let e = Cfg.add_node cfg () in
  let a = Cfg.add_node cfg () in
  let b = Cfg.add_node cfg () in
  List.iter
    (fun (u, v, l) -> Cfg.add_edge cfg ~src:u ~dst:v ~label:l)
    [ (e, a, Label.T); (e, b, Label.F); (a, b, Label.U); (b, a, Label.U) ];
  Cfg.set_entry cfg e;
  Cfg.set_exits cfg [];
  (try
     ignore (Intervals.compute cfg);
     Alcotest.fail "expected Irreducible"
   with Intervals.Irreducible w -> check cb "witness nonempty" true (w <> []))

let cfg_make_reducible () =
  let cfg = Cfg.create ~dummy:"n" in
  let e = Cfg.add_node cfg "e" in
  let a = Cfg.add_node cfg "a" in
  let b = Cfg.add_node cfg "b" in
  let x = Cfg.add_node cfg "x" in
  List.iter
    (fun (u, v, l) -> Cfg.add_edge cfg ~src:u ~dst:v ~label:l)
    [ (e, a, Label.T); (e, b, Label.F); (a, b, Label.T); (b, a, Label.T);
      (a, x, Label.F); (b, x, Label.F) ];
  Cfg.set_entry cfg e;
  Cfg.set_exits cfg [ x ];
  let splits = Cfg.make_reducible cfg in
  check cb "splits happened" true (splits <> []);
  List.iter
    (fun (orig, copy) ->
      check Alcotest.string "payload copied" (Cfg.info cfg orig) (Cfg.info cfg copy))
    splits;
  ignore (Intervals.compute cfg) (* must not raise now *)

(* ---------------- Ecfg ---------------- *)

let ecfg_fig1 () =
  let cfg, (entry, if_m, if_nlt, if_nge, call, cont) = fig1_cfg () in
  let e = Ecfg.extend ~empty:"." cfg in
  let ext = Ecfg.cfg e in
  let start = Ecfg.start e and stop = Ecfg.stop e in
  check ci "orig preserved" 6 (Ecfg.orig_count e);
  check cb "original flag" true (Ecfg.is_original e call);
  check cb "start synthetic" false (Ecfg.is_original e start);
  (* node types *)
  check cb "start type" true (Node_type.equal (Cfg.node_type ext start) Node_type.Start);
  check cb "stop type" true (Node_type.equal (Cfg.node_type ext stop) Node_type.Stop);
  check cb "header type" true (Node_type.equal (Cfg.node_type ext if_m) Node_type.Header);
  let ph = Ecfg.preheader_of_header e if_m in
  check cb "preheader type" true
    (Node_type.equal (Cfg.node_type ext ph) Node_type.Preheader);
  check ci "header_of_preheader" if_m (Ecfg.header_of_preheader e ph);
  check cb "is_preheader" true (Ecfg.is_preheader e ph);
  (* entry edge redirected to the preheader *)
  check cb "entry->ph" true
    (List.exists (fun (ed : Label.t Digraph.edge) -> ed.dst = ph)
       (Cfg.succ_edges ext entry));
  check cb "entry not direct to header" false
    (List.exists (fun (ed : Label.t Digraph.edge) -> ed.dst = if_m)
       (Cfg.succ_edges ext entry));
  (* back edge unredirected *)
  check cb "latch kept" true
    (List.exists (fun (ed : Label.t Digraph.edge) -> ed.dst = if_m)
       (Cfg.succ_edges ext call));
  check ci "latch edges" 1 (List.length (Ecfg.latch_edges e if_m));
  (* two postexits, one per exit edge, pseudo edges from the preheader *)
  let pes = Ecfg.postexits_of_header e if_m in
  check ci "two postexits" 2 (List.length pes);
  List.iter
    (fun pe ->
      check cb "postexit flagged" true (Ecfg.is_postexit e pe);
      check ci "exited interval" if_m (Ecfg.exited_interval e pe);
      check cb "pseudo from preheader" true
        (List.exists
           (fun (ed : Label.t Digraph.edge) ->
             ed.src = ph && Label.is_pseudo ed.label)
           (Cfg.pred_edges ext pe));
      check cb "forwards to cont" true
        (List.exists (fun (ed : Label.t Digraph.edge) -> ed.dst = cont)
           (Cfg.succ_edges ext pe)))
    pes;
  (* START -> entry, exit -> STOP, pseudo START -> STOP *)
  check cb "start->entry" true
    (List.exists (fun (ed : Label.t Digraph.edge) -> ed.dst = entry)
       (Cfg.succ_edges ext start));
  check cb "start->stop pseudo" true
    (List.exists
       (fun (ed : Label.t Digraph.edge) -> ed.dst = stop && Label.is_pseudo ed.label)
       (Cfg.succ_edges ext start));
  check cb "cont->stop" true
    (List.exists (fun (ed : Label.t Digraph.edge) -> ed.dst = stop)
       (Cfg.succ_edges ext cont));
  (* intervals of nodes *)
  check ci "interval of call" if_m (Ecfg.interval_of e call);
  check ci "interval of ph = root" entry (Ecfg.interval_of e ph);
  check ci "interval of if_nlt" if_m (Ecfg.interval_of e if_nlt);
  check ci "interval of if_nge" if_m (Ecfg.interval_of e if_nge)

(* exits that leave two nested intervals at once must cascade: one postexit
   per level, each with a pseudo edge from that level's preheader *)
let ecfg_cascade () =
  let cfg = Cfg.create ~dummy:() in
  let e = Cfg.add_node cfg () in
  let h1 = Cfg.add_node cfg () in
  let h2 = Cfg.add_node cfg () in
  let b = Cfg.add_node cfg () in
  let l1 = Cfg.add_node cfg () in
  let x = Cfg.add_node cfg () in
  List.iter
    (fun (u, v, l) -> Cfg.add_edge cfg ~src:u ~dst:v ~label:l)
    [ (e, h1, Label.U); (h1, h2, Label.U); (h2, b, Label.U); (b, h2, Label.T);
      (b, x, Label.Case 1) (* two-level exit! *); (b, l1, Label.F);
      (l1, h1, Label.T); (l1, x, Label.F) ];
  Cfg.set_entry cfg e;
  Cfg.set_exits cfg [ x ];
  let ec = Ecfg.extend ~empty:() cfg in
  let pes_inner = Ecfg.postexits_of_header ec h2 in
  let pes_outer = Ecfg.postexits_of_header ec h1 in
  (* inner level: the Case-1 two-level exit AND the normal F exit to l1;
     outer level: the Case-1 cascade plus l1's own F exit *)
  check ci "inner postexits" 2 (List.length pes_inner);
  check ci "outer postexits" 2 (List.length pes_outer);
  let ext = Ecfg.cfg ec in
  (* the two-level exit cascades: b -> pe_inner -> pe_outer -> x *)
  check cb "cascade chains through both levels" true
    (List.exists
       (fun pe_i ->
         match Cfg.succ_edges ext pe_i with
         | [ ed ] -> List.mem ed.dst pes_outer
         | _ -> false)
       pes_inner);
  ignore b

let ecfg_nonterminating () =
  let cfg = Cfg.create ~dummy:() in
  let e = Cfg.add_node cfg () in
  let h = Cfg.add_node cfg () in
  let x = Cfg.add_node cfg () in
  List.iter
    (fun (u, v, l) -> Cfg.add_edge cfg ~src:u ~dst:v ~label:l)
    [ (e, h, Label.T); (e, x, Label.F); (h, h, Label.U) ];
  Cfg.set_entry cfg e;
  Cfg.set_exits cfg [ x ];
  (try
     ignore (Ecfg.extend ~empty:() cfg);
     Alcotest.fail "expected Nonterminating_interval"
   with Ecfg.Nonterminating_interval n -> check ci "offending header" h n)

(* structural invariants on every demo program *)
let ecfg_invariants () =
  List.iter
    (fun src ->
      let prog = S89_frontend.Program.of_source src in
      List.iter
        (fun (p : S89_frontend.Program.proc) ->
          let ec = Ecfg.extend p.S89_frontend.Program.cfg in
          let ext = Ecfg.cfg ec in
          (* unique entry START with no preds; unique exit STOP with no succs *)
          check ci "start no preds" 0 (List.length (Cfg.pred_edges ext (Ecfg.start ec)));
          check ci "stop no succs" 0 (List.length (Cfg.succ_edges ext (Ecfg.stop ec)));
          check cb "valid" true (Cfg.validate ext = Ok ());
          (* every header has exactly one preheader edge *)
          List.iter
            (fun h ->
              let ph = Ecfg.preheader_of_header ec h in
              check cb "ph -> h" true
                (List.exists
                   (fun (ed : Label.t Digraph.edge) ->
                     ed.src = ph && Label.equal ed.label Ecfg.body_label)
                   (Cfg.pred_edges ext h));
              check cb "header has postexits" true
                (Ecfg.postexits_of_header ec h <> []))
            (Ecfg.headers ec);
          (* pseudo edges originate only at START or preheaders *)
          Cfg.iter_edges
            (fun ed ->
              if Label.is_pseudo ed.label then
                check cb "pseudo source" true
                  (ed.src = Ecfg.start ec || Ecfg.is_preheader ec ed.src))
            ext)
        (S89_frontend.Program.procs prog))
    [ S89_workloads.Demos.fig1 (); S89_workloads.Demos.branchy ();
      S89_workloads.Demos.chunky (); S89_workloads.Demos.nested_random ();
      S89_workloads.Demos.computed_goto (); S89_workloads.Demos.irreducible () ]

let suite =
  [
    Alcotest.test_case "label strings" `Quick label_strings;
    Alcotest.test_case "node type strings" `Quick node_type_strings;
    Alcotest.test_case "cfg basics" `Quick cfg_basics;
    Alcotest.test_case "cfg out_labels" `Quick cfg_out_labels;
    Alcotest.test_case "cfg validate errors" `Quick cfg_validate_errors;
    Alcotest.test_case "cfg normalize entry" `Quick cfg_normalize_entry;
    Alcotest.test_case "intervals: fig1" `Quick intervals_fig1;
    Alcotest.test_case "intervals: nested" `Quick intervals_nested;
    Alcotest.test_case "intervals: entry preds" `Quick intervals_entry_preds;
    Alcotest.test_case "intervals: irreducible" `Quick intervals_irreducible;
    Alcotest.test_case "cfg make_reducible" `Quick cfg_make_reducible;
    Alcotest.test_case "ecfg: fig1 structure" `Quick ecfg_fig1;
    Alcotest.test_case "ecfg: multi-level exit cascade" `Quick ecfg_cascade;
    Alcotest.test_case "ecfg: nonterminating interval" `Quick ecfg_nonterminating;
    Alcotest.test_case "ecfg: invariants on demos" `Quick ecfg_invariants;
  ]

(* ECFG structural invariants on randomly generated programs *)
let ecfg_invariants_random_prop =
  QCheck.Test.make ~count:50 ~name:"ECFG invariants (random programs)"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let prog = Gen_prog.gen_program seed in
      List.for_all
        (fun (p : S89_frontend.Program.proc) ->
          let ec = Ecfg.extend p.S89_frontend.Program.cfg in
          let ext = Ecfg.cfg ec in
          (* valid, START source-only, STOP sink-only *)
          Cfg.validate ext = Ok ()
          && Cfg.pred_edges ext (Ecfg.start ec) = []
          && Cfg.succ_edges ext (Ecfg.stop ec) = []
          (* every header: exactly one preheader edge, >=1 postexit, >=1 latch *)
          && List.for_all
               (fun h ->
                 let ph = Ecfg.preheader_of_header ec h in
                 List.length
                   (List.filter
                      (fun (e : Label.t S89_graph.Digraph.edge) -> e.src = ph)
                      (Cfg.pred_edges ext h))
                 = 1
                 && Ecfg.postexits_of_header ec h <> []
                 && Ecfg.latch_edges ec h <> [])
               (Ecfg.headers ec)
          (* after the exit cascade no edge jumps between sibling
             intervals: the endpoints' intervals are always tree-related,
             and exits step out exactly one level at a time *)
          && (let iv = Ecfg.intervals ec in
              let ok = ref true in
              Cfg.iter_edges
                (fun e ->
                  let a = Ecfg.interval_of ec e.src
                  and b = Ecfg.interval_of ec e.dst in
                  if not (Intervals.encloses iv a b || Intervals.encloses iv b a)
                  then ok := false;
                  (* an outward edge (exit) may only climb one level *)
                  if
                    Intervals.encloses iv b a && a <> b
                    && Intervals.interval_depth iv a
                       - Intervals.interval_depth iv b
                       > 1
                  then ok := false)
                ext;
              !ok))
        (S89_frontend.Program.procs prog))

let suite =
  suite @ [ QCheck_alcotest.to_alcotest ecfg_invariants_random_prop ]
