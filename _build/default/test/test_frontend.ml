(* Tests for s89_frontend: Lexer, Parser, Sema, Lower, Program. *)

open S89_frontend
module Cfg = S89_cfg.Cfg
module Label = S89_cfg.Label

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

let toks src = List.map (fun t -> t.Lexer.tok) (Lexer.tokenize src)

(* ---------------- Lexer ---------------- *)

let lexer_basics () =
  check cb "ids + ops" true
    (toks "X = Y + 2 * Z\n"
    = [ Lexer.ID "X"; EQUALS; ID "Y"; PLUS; INT 2; STAR; ID "Z"; NEWLINE; EOF ]);
  check cb "case folding" true (toks "foo\n" = [ Lexer.ID "FOO"; NEWLINE; EOF ]);
  check cb "power vs star" true
    (toks "A ** B * C\n"
    = [ Lexer.ID "A"; POW; ID "B"; STAR; ID "C"; NEWLINE; EOF ])

let lexer_numbers () =
  check cb "int" true (toks "42\n" = [ Lexer.INT 42; NEWLINE; EOF ]);
  check cb "real" true (toks "3.25\n" = [ Lexer.REALLIT 3.25; NEWLINE; EOF ]);
  check cb "real exp" true (toks "1.5E2\n" = [ Lexer.REALLIT 150.0; NEWLINE; EOF ]);
  check cb "d exponent" true (toks "1D1\n" = [ Lexer.REALLIT 10.0; NEWLINE; EOF ]);
  check cb "leading dot" true (toks ".5\n" = [ Lexer.REALLIT 0.5; NEWLINE; EOF ]);
  check cb "trailing dot" true (toks "2.\n" = [ Lexer.REALLIT 2.0; NEWLINE; EOF ])

let lexer_dotted () =
  check cb "relational" true
    (toks "A .LT. B\n" = [ Lexer.ID "A"; DOTOP "LT"; ID "B"; NEWLINE; EOF ]);
  check cb "logical constants" true
    (toks ".TRUE. .FALSE.\n" = [ Lexer.DOTOP "TRUE"; DOTOP "FALSE"; NEWLINE; EOF ]);
  (* the classic ambiguity: 1.AND. must not eat the dot into the number *)
  check cb "1.AND." true
    (toks "1 .EQ. 1.AND.X\n"
    = [ Lexer.INT 1; DOTOP "EQ"; INT 1; DOTOP "AND"; ID "X"; NEWLINE; EOF ])

let lexer_comments_continuation () =
  check cb "comment" true (toks "X = 1 ! set x\nY = 2\n"
    = [ Lexer.ID "X"; EQUALS; INT 1; NEWLINE; ID "Y"; EQUALS; INT 2; NEWLINE; EOF ]);
  (* trailing-& and leading-& continuations *)
  check cb "trailing continuation" true
    (toks "X = 1 + &\n 2\n" = [ Lexer.ID "X"; EQUALS; INT 1; PLUS; INT 2; NEWLINE; EOF ]);
  check cb "leading continuation" true
    (toks "X = 1 +\n     & 2\n"
    = [ Lexer.ID "X"; EQUALS; INT 1; PLUS; INT 2; NEWLINE; EOF ]);
  check cb "blank lines collapse" true (toks "\n\n\nX = 1\n\n\n"
    = [ Lexer.ID "X"; EQUALS; INT 1; NEWLINE; EOF ])

let lexer_errors () =
  (try
     ignore (Lexer.tokenize "X = #\n");
     Alcotest.fail "expected lexer error"
   with Lexer.Error (_, line) -> check ci "error line" 1 line);
  (try
     ignore (Lexer.tokenize "X = .\n");
     Alcotest.fail "expected stray dot error"
   with Lexer.Error (_, _) -> ())

(* ---------------- Parser ---------------- *)

let parse1 src =
  match Parser.parse_program src with
  | [ u ] -> u
  | _ -> Alcotest.fail "expected one unit"

let wrap stmts = Printf.sprintf "      PROGRAM T\n%s      END\n" stmts

let parser_statements () =
  let u = parse1 (wrap "      X = 1\n      CALL FOO(X, 2)\n      RETURN\n") in
  check ci "three statements" 3 (List.length u.Ast.body);
  check cs "program name" "T" u.Ast.name;
  (match (List.hd u.Ast.body).Ast.stmt with
  | Ast.Assign (Ast.Lvar "X", Ast.Int 1) -> ()
  | _ -> Alcotest.fail "bad assign");
  match (List.nth u.Ast.body 1).Ast.stmt with
  | Ast.Call_stmt ("FOO", [ Ast.Var "X"; Ast.Int 2 ]) -> ()
  | _ -> Alcotest.fail "bad call"

let parser_expressions () =
  let u = parse1 (wrap "      X = A + B * C ** 2 ** N\n") in
  (match (List.hd u.Ast.body).Ast.stmt with
  | Ast.Assign
      ( _,
        Ast.Binop
          ( Ast.Add,
            Ast.Var "A",
            Ast.Binop
              ( Ast.Mul,
                Ast.Var "B",
                Ast.Binop (Ast.Pow, Ast.Var "C", Ast.Binop (Ast.Pow, Ast.Int 2, Ast.Var "N"))
              ) ) ) ->
      () (* ** is right-associative and binds tighter than * *)
  | _ -> Alcotest.fail "precedence wrong");
  let u = parse1 (wrap "      L = A .LT. B .AND. .NOT. C .GT. D\n") in
  match (List.hd u.Ast.body).Ast.stmt with
  | Ast.Assign
      ( _,
        Ast.Binop
          ( Ast.And,
            Ast.Binop (Ast.Lt, _, _),
            Ast.Unop (Ast.Not, Ast.Binop (Ast.Gt, _, _)) ) ) ->
      ()
  | _ -> Alcotest.fail "logical precedence wrong"

let parser_unary_minus () =
  let u = parse1 (wrap "      X = -A ** 2\n      Y = A ** -2\n") in
  (* Fortran: -A**2 = -(A**2) *)
  (match (List.hd u.Ast.body).Ast.stmt with
  | Ast.Assign (_, Ast.Unop (Ast.Neg, Ast.Binop (Ast.Pow, _, _))) -> ()
  | _ -> Alcotest.fail "-A**2 parsed wrong");
  match (List.nth u.Ast.body 1).Ast.stmt with
  | Ast.Assign (_, Ast.Binop (Ast.Pow, _, Ast.Unop (Ast.Neg, Ast.Int 2))) -> ()
  | _ -> Alcotest.fail "A**-2 parsed wrong"

let parser_if_forms () =
  let u =
    parse1
      (wrap
         "      IF (A .GT. 0) GOTO 10\n\
          \      IF (A .GT. 1) THEN\n\
          \        X = 1\n\
          \      ELSE IF (A .GT. 2) THEN\n\
          \        X = 2\n\
          \      ELSEIF (A .GT. 3) THEN\n\
          \        X = 3\n\
          \      ELSE\n\
          \        X = 4\n\
          \      END IF\n\
          10    CONTINUE\n")
  in
  (match (List.hd u.Ast.body).Ast.stmt with
  | Ast.If_logical (_, Ast.Goto 10) -> ()
  | _ -> Alcotest.fail "logical IF");
  match (List.nth u.Ast.body 1).Ast.stmt with
  | Ast.If_block (arms, Some [ _ ]) -> check ci "three arms" 3 (List.length arms)
  | _ -> Alcotest.fail "block IF"

let parser_do_forms () =
  let u =
    parse1
      (wrap
         "      DO I = 1, 10\n\
          \        X = X + 1\n\
          \      END DO\n\
          \      DO 20 J = 1, 5, 2\n\
          \        Y = Y + 1\n\
          20    CONTINUE\n")
  in
  (match (List.hd u.Ast.body).Ast.stmt with
  | Ast.Do { do_var = "I"; do_step = None; do_body = [ _ ]; _ } -> ()
  | _ -> Alcotest.fail "ENDDO form");
  match (List.nth u.Ast.body 1).Ast.stmt with
  | Ast.Do { do_var = "J"; do_step = Some (Ast.Int 2); do_body; _ } ->
      check ci "body incl terminator" 2 (List.length do_body)
  | _ -> Alcotest.fail "labeled form"

let parser_shared_do_terminator () =
  let u =
    parse1
      (wrap
         "      DO 10 I = 1, 3\n\
          \      DO 10 J = 1, 3\n\
          \        X = X + 1\n\
          10    CONTINUE\n\
          \      Y = 1\n")
  in
  check ci "two top-level statements" 2 (List.length u.Ast.body);
  match (List.hd u.Ast.body).Ast.stmt with
  | Ast.Do { do_body = [ { Ast.stmt = Ast.Do { do_body = inner; _ }; _ } ]; _ } ->
      check ci "inner body has terminator" 2 (List.length inner)
  | _ -> Alcotest.fail "shared terminator structure"

let parser_computed_goto () =
  let u = parse1 (wrap "      GO TO (10, 20, 30), K\n10    CONTINUE\n20    CONTINUE\n30    CONTINUE\n") in
  match (List.hd u.Ast.body).Ast.stmt with
  | Ast.Cgoto ([ 10; 20; 30 ], Ast.Var "K") -> ()
  | _ -> Alcotest.fail "computed goto"

let parser_units () =
  let p =
    Parser.parse_program
      "      PROGRAM M\n      CALL S\n      END\n\n      SUBROUTINE S\n      RETURN\n      END\n\n      REAL FUNCTION F(X)\n      F = X\n      END\n\n      FUNCTION G(Y)\n      G = Y\n      END\n"
  in
  check ci "four units" 4 (List.length p);
  (match (List.nth p 2).Ast.kind with
  | Ast.Function (Some Ast.Treal) -> ()
  | _ -> Alcotest.fail "typed function");
  match (List.nth p 3).Ast.kind with
  | Ast.Function None -> ()
  | _ -> Alcotest.fail "untyped function"

let parser_decls () =
  let u =
    parse1
      "      PROGRAM T\n      INTEGER A, B(10), C(4, 5)\n      REAL X(*)\n      PARAMETER (N = 100, M = N + 1)\n      A = 1\n      END\n"
  in
  check ci "three decls" 3 (List.length u.Ast.decls);
  match u.Ast.decls with
  | [ Ast.Dvar (Ast.Tint, [ ("A", []); ("B", [ 10 ]); ("C", [ 4; 5 ]) ]);
      Ast.Dvar (Ast.Treal, [ ("X", [ -1 ]) ]); Ast.Dparam [ ("N", _); ("M", _) ] ] ->
      ()
  | _ -> Alcotest.fail "decl shapes"

let parser_errors () =
  let expect_error src =
    match Parser.parse_program src with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" src
  in
  expect_error "      PROGRAM T\n      IF (X .GT. 0) THEN\n      X = 1\n      END\n";
  expect_error "      PROGRAM T\n      DO I = 1, 10\n      X = 1\n      END\n";
  expect_error "      PROGRAM T\n      DO 10 I = 1, 10\n      X = 1\n      END\n";
  expect_error "      PROGRAM T\n      X = \n      END\n";
  expect_error "      X = 1\n"

(* round-trip: parse (to_source ast) = ast, on random programs *)
let parser_roundtrip_prop =
  QCheck.Test.make ~count:120 ~name:"parse(print(ast)) = ast"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let ast = Gen_prog.gen_ast seed in
      let src = Ast.to_source ast in
      Parser.parse_program src = ast)

(* ---------------- Sema ---------------- *)

let sema_errors () =
  let expect_error src =
    match Sema.parse_and_analyze src with
    | exception Sema.Error _ -> ()
    | _ -> Alcotest.failf "expected sema error for %S" src
  in
  expect_error (wrap "      X = NOSUCH(1)\n"); (* unknown function *)
  expect_error (wrap "      CALL NOSUCH\n");
  expect_error "      PROGRAM T\n      INTEGER A(5)\n      X = A(1, 2)\n      END\n";
  expect_error "      PROGRAM T\n      RETURN\n      END\n"; (* RETURN in program *)
  expect_error "      PROGRAM T\n      GOTO 99\n      END\n"; (* unknown label *)
  expect_error "      PROGRAM T\n10    X = 1\n10    Y = 2\n      END\n"; (* dup label *)
  expect_error (wrap "      IF (X) Y = 1\n"); (* non-logical condition *)
  expect_error (wrap "      DO X = 1, 5\n      ENDDO\n"); (* real DO var *)
  expect_error "      PROGRAM T\n      PARAMETER (N = 3)\n      N = 4\n      END\n";
  expect_error "      PROGRAM T\n      END\n      PROGRAM U\n      END\n";
  expect_error "      SUBROUTINE ONLY\n      END\n" (* no PROGRAM *)

let sema_rewrites () =
  let env =
    Sema.parse_and_analyze
      "      PROGRAM T\n      REAL A(5)\n      PARAMETER (N = 3)\n      A(N) = SQRT(2.0)\n      K = N + 1\n      END\n"
  in
  let u = (Hashtbl.find env.Sema.by_name "T").Sema.unit_ in
  (match (List.hd u.Ast.body).Ast.stmt with
  | Ast.Assign (Ast.Larr ("A", [ Ast.Int 3 ]), Ast.Call ("SQRT", _)) ->
      () (* Call -> Larr resolved; PARAMETER substituted *)
  | _ -> Alcotest.fail "array/parameter rewrite");
  match (List.nth u.Ast.body 1).Ast.stmt with
  | Ast.Assign (Ast.Lvar "K", Ast.Int 4) -> () (* constant-folded *)
  | _ -> Alcotest.fail "constant folding of N + 1"

let sema_types () =
  let env =
    Sema.parse_and_analyze
      "      PROGRAM T\n      INTEGER X\n      LOGICAL FLAG\n      X = 1\n      FLAG = .TRUE.\n      Y = 1.0\n      END\n"
  in
  let vars = (Hashtbl.find env.Sema.by_name "T").Sema.vars in
  (match Hashtbl.find vars "X" with
  | Sema.Scalar Ast.Tint -> ()
  | _ -> Alcotest.fail "declared int");
  match Hashtbl.find_opt vars "Y" with
  | None -> () (* implicit: not in the table, typed on demand *)
  | Some (Sema.Scalar Ast.Treal) -> ()
  | _ -> Alcotest.fail "Y type"

(* ---------------- Lower ---------------- *)

let lower_fig1_shape () =
  let prog = Program.of_source (S89_workloads.Demos.fig1 ()) in
  let p = Program.find prog "FIG1" in
  let cfg = p.Program.cfg in
  (* ENTRY, M=, N=, IF(M), IF(NLT), IF(NGE), CALL, CONT, STOP *)
  check ci "node count" 9 (Cfg.num_nodes cfg);
  (match (Cfg.info cfg 3).Ir.ir with
  | Ir.Branch _ -> ()
  | _ -> Alcotest.fail "node 3 is the loop IF");
  check cb "labels of IF" true (Cfg.out_labels cfg 3 = [ Label.T; Label.F ]);
  (* GOTO 10 is an edge, not a node *)
  check cb "call loops back" true
    (List.exists (fun (e : Label.t S89_graph.Digraph.edge) -> e.dst = 3)
       (Cfg.succ_edges cfg 6));
  check cb "src_label kept" true ((Cfg.info cfg 3).Ir.src_label = Some 10)

let lower_do_structure () =
  let prog =
    Program.of_source
      "      PROGRAM T\n      DO 10 I = 1, 10\n        X = X + 1.0\n10    CONTINUE\n      END\n"
  in
  let p = Program.find prog "T" in
  let cfg = p.Program.cfg in
  let header = ref (-1) in
  Cfg.iter_nodes
    (fun n ->
      match (Cfg.info cfg n).Ir.ir with
      | Ir.Do_test meta ->
          header := n;
          check cb "static trip" true (meta.Ir.static_trip = Some 10);
          check cs "do var" "I" meta.Ir.do_var
      | _ -> ())
    cfg;
  check cb "header found" true (!header >= 0);
  check cb "T and F out" true (Cfg.out_labels cfg !header = [ Label.T; Label.F ])

let lower_dynamic_trip () =
  let prog =
    Program.of_source
      "      PROGRAM T\n      N = IRAND(5)\n      DO I = 1, N\n        X = X + 1.0\n      ENDDO\n      END\n"
  in
  let p = Program.find prog "T" in
  Cfg.iter_nodes
    (fun n ->
      match (Cfg.info p.Program.cfg n).Ir.ir with
      | Ir.Do_test meta -> check cb "dynamic trip" true (meta.Ir.static_trip = None)
      | _ -> ())
    p.Program.cfg

let lower_prunes_unreachable () =
  let prog =
    Program.of_source
      "      PROGRAM T\n      GOTO 10\n      X = 1\n      Y = 2\n10    CONTINUE\n      END\n"
  in
  let p = Program.find prog "T" in
  (* ENTRY, CONT, STOP: the two dead assigns pruned *)
  check ci "pruned nodes" 3 (Cfg.num_nodes p.Program.cfg)

let lower_irreducible_split () =
  let prog = Program.of_source (S89_workloads.Demos.irreducible ()) in
  let p = Program.main_proc prog in
  (* reducible after node splitting, so the full pipeline works *)
  check cb "valid" true (Cfg.validate p.Program.cfg = Ok ());
  ignore (S89_cfg.Intervals.compute p.Program.cfg);
  ignore (S89_profiling.Analysis.of_proc p)

let lower_multiple_exits () =
  let prog =
    Program.of_source
      "      SUBROUTINE S(X)\n      IF (X .GT. 0.0) RETURN\n      X = -X\n      RETURN\n      END\n\n      PROGRAM T\n      CALL S(Y)\n      END\n"
  in
  let p = Program.find prog "S" in
  check ci "two exits" 2 (List.length (Cfg.exits p.Program.cfg))

(* ---------------- Program ---------------- *)

let program_call_graph () =
  let prog =
    Program.of_source
      "      PROGRAM M\n      CALL A\n      X = F(1.0)\n      END\n\n      SUBROUTINE A\n      CALL B\n      END\n\n      SUBROUTINE B\n      RETURN\n      END\n\n      REAL FUNCTION F(Y)\n      F = Y + G(Y)\n      END\n\n      REAL FUNCTION G(Y)\n      G = Y\n      END\n"
  in
  check cs "main" "M" prog.Program.main;
  check cb "not recursive" false (Program.is_recursive prog);
  let callees p = List.sort compare (Program.callees prog (Program.find prog p)) in
  check (Alcotest.list cs) "M calls" [ "A"; "F" ] (callees "M");
  check (Alcotest.list cs) "A calls" [ "B" ] (callees "A");
  check (Alcotest.list cs) "F calls" [ "G" ] (callees "F");
  (* bottom-up: callees before callers *)
  let order = List.map (fun (p : Program.proc) -> p.Program.name) (Program.bottom_up prog) in
  let pos x = Option.get (List.find_index (String.equal x) order) in
  check cb "B before A" true (pos "B" < pos "A");
  check cb "A before M" true (pos "A" < pos "M");
  check cb "G before F" true (pos "G" < pos "F")

let program_recursion_detect () =
  let prog = Program.of_source (S89_workloads.Demos.recursive ()) in
  check cb "recursive" true (Program.is_recursive prog)

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick lexer_basics;
    Alcotest.test_case "lexer numbers" `Quick lexer_numbers;
    Alcotest.test_case "lexer dotted ops" `Quick lexer_dotted;
    Alcotest.test_case "lexer comments/continuation" `Quick lexer_comments_continuation;
    Alcotest.test_case "lexer errors" `Quick lexer_errors;
    Alcotest.test_case "parser statements" `Quick parser_statements;
    Alcotest.test_case "parser expressions" `Quick parser_expressions;
    Alcotest.test_case "parser unary minus" `Quick parser_unary_minus;
    Alcotest.test_case "parser IF forms" `Quick parser_if_forms;
    Alcotest.test_case "parser DO forms" `Quick parser_do_forms;
    Alcotest.test_case "parser shared DO terminator" `Quick parser_shared_do_terminator;
    Alcotest.test_case "parser computed goto" `Quick parser_computed_goto;
    Alcotest.test_case "parser program units" `Quick parser_units;
    Alcotest.test_case "parser declarations" `Quick parser_decls;
    Alcotest.test_case "parser errors" `Quick parser_errors;
    QCheck_alcotest.to_alcotest parser_roundtrip_prop;
    Alcotest.test_case "sema errors" `Quick sema_errors;
    Alcotest.test_case "sema rewrites" `Quick sema_rewrites;
    Alcotest.test_case "sema types" `Quick sema_types;
    Alcotest.test_case "lower fig1 shape" `Quick lower_fig1_shape;
    Alcotest.test_case "lower DO structure" `Quick lower_do_structure;
    Alcotest.test_case "lower dynamic trip" `Quick lower_dynamic_trip;
    Alcotest.test_case "lower prunes unreachable" `Quick lower_prunes_unreachable;
    Alcotest.test_case "lower splits irreducible" `Quick lower_irreducible_split;
    Alcotest.test_case "lower multiple exits" `Quick lower_multiple_exits;
    Alcotest.test_case "program call graph" `Quick program_call_graph;
    Alcotest.test_case "program recursion" `Quick program_recursion_detect;
  ]

(* ---------------- intrinsics registry & IR helpers ---------------- *)

let intrinsics_registry () =
  check cb "SQRT known" true (Intrinsics.is_intrinsic "SQRT");
  check cb "unknown" false (Intrinsics.is_intrinsic "FROBNICATE");
  (match Intrinsics.lookup "MIN" with
  | Some info ->
      check ci "min arity" 2 info.Intrinsics.min_arity;
      check cb "variadic" true (info.Intrinsics.max_arity = max_int)
  | None -> Alcotest.fail "MIN missing");
  (match Intrinsics.lookup "SQRT" with
  | Some info -> check cb "expensive" true (info.Intrinsics.cost = Intrinsics.Expensive)
  | None -> Alcotest.fail "SQRT missing");
  check cb "IABS result int" true
    (Intrinsics.result_type "IABS" [ Ast.Treal ] = Ast.Tint);
  check cb "ABS generic" true
    (Intrinsics.result_type "ABS" [ Ast.Treal ] = Ast.Treal
    && Intrinsics.result_type "ABS" [ Ast.Tint ] = Ast.Tint)

let ir_exprs_of () =
  let e1 = Ast.Var "X" and e2 = Ast.Int 3 in
  check ci "assign lvar" 1 (List.length (Ir.exprs_of (Ir.Assign (Ast.Lvar "Y", e1))));
  check ci "assign larr" 2
    (List.length (Ir.exprs_of (Ir.Assign (Ast.Larr ("A", [ e2 ]), e1))));
  check ci "branch" 1 (List.length (Ir.exprs_of (Ir.Branch e1)));
  check ci "entry none" 0 (List.length (Ir.exprs_of Ir.Entry));
  check ci "return none" 0 (List.length (Ir.exprs_of Ir.Return));
  check ci "call args" 2
    (List.length (Ir.exprs_of (Ir.Call ("F", [ e1; e2 ]))));
  (* Do_test reads its trip var implicitly; no expression surfaces *)
  check ci "do_test none" 0
    (List.length
       (Ir.exprs_of
          (Ir.Do_test { Ir.trip_var = "%TRIP1"; static_trip = None; do_var = "I" })))

let sema_whole_array_args () =
  (* regression for the whole-array-by-reference fix *)
  let prog =
    Program.of_source
      "      PROGRAM T\n      REAL A(4)\n      CALL FILL(A)\n      PRINT *, A(2)\n      END\n\n      SUBROUTINE FILL(X)\n      REAL X(*)\n      X(2) = 7.0\n      END\n"
  in
  ignore prog;
  (* and it must still reject whole arrays in ordinary expressions *)
  match
    Sema.parse_and_analyze
      "      PROGRAM T\n      REAL A(4)\n      X = A + 1.0\n      END\n"
  with
  | exception Sema.Error _ -> ()
  | _ -> Alcotest.fail "whole array in arithmetic should be rejected"

let suite =
  suite
  @ [
      Alcotest.test_case "intrinsics registry" `Quick intrinsics_registry;
      Alcotest.test_case "ir exprs_of" `Quick ir_exprs_of;
      Alcotest.test_case "sema whole-array args" `Quick sema_whole_array_args;
    ]
