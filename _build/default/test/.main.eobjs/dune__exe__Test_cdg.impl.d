test/test_cdg.ml: Alcotest Array Cfg Control_dep Ecfg Fcdg Gen_prog Hashtbl Label List QCheck QCheck_alcotest S89_cdg S89_cfg S89_frontend S89_graph S89_profiling S89_vm S89_workloads
