test/test_vm.ml: Alcotest Array Gen_prog List QCheck QCheck_alcotest S89_cfg S89_frontend S89_util S89_vm S89_workloads String
