test/test_cfg.ml: Alcotest Cfg Ecfg Gen_prog Intervals Label List Node_type QCheck QCheck_alcotest S89_cfg S89_frontend S89_graph S89_workloads
