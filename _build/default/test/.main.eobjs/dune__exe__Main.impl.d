test/main.ml: Alcotest Test_cdg Test_cfg Test_core Test_frontend Test_graph Test_profiling Test_sched Test_util Test_vm Test_workloads
