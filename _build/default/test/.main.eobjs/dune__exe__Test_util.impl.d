test/test_util.ml: Alcotest Float Gen List Prng QCheck QCheck_alcotest S89_graph S89_util Stats
