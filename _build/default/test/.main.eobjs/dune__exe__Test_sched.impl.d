test/test_sched.ml: Alcotest Array Chunk Dist Float List Parsim S89_sched S89_util
