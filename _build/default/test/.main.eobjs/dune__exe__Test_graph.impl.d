test/test_graph.ml: Alcotest Array Dfs Digraph Dominator Dot Hashtbl Interval_deriv Lca List Node_split Postdom Printf QCheck QCheck_alcotest Reducibility S89_graph S89_util String Topo
