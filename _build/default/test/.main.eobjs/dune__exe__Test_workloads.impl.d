test/test_workloads.ml: Alcotest Fmt List Printexc Printf S89_cfg S89_frontend S89_profiling S89_vm S89_workloads
