test/gen_prog.ml: List S89_frontend S89_util
