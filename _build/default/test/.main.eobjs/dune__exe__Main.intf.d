test/main.mli:
