(* Tests for s89_graph: Digraph, Dfs, Dominator, Postdom, Lca, Topo,
   Reducibility, Node_split, Dot. *)

open S89_graph

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cil = Alcotest.(list int)

(* a small random graph generator for properties *)
let random_graph seed ~nodes ~edges =
  let rng = S89_util.Prng.create ~seed in
  let g = Digraph.create () in
  ignore (Digraph.add_nodes g nodes);
  for _ = 1 to edges do
    let u = S89_util.Prng.int rng nodes and v = S89_util.Prng.int rng nodes in
    ignore (Digraph.add_edge g ~src:u ~dst:v ~label:())
  done;
  g

(* brute-force reachability avoiding a removed node *)
let reaches_avoiding g ~src ~dst ~avoid =
  if src = avoid then dst = src
  else begin
    let n = Digraph.num_nodes g in
    let seen = Array.make n false in
    let rec go u =
      if u = dst then true
      else
        List.exists
          (fun v -> v <> avoid && (not seen.(v)) && (seen.(v) <- true; go v))
          (Digraph.succs g u)
    in
    seen.(src) <- true;
    src = dst || go src
  end

(* ---------------- Digraph ---------------- *)

let digraph_basics () =
  let g = Digraph.create () in
  let a = Digraph.add_node g in
  let b = Digraph.add_node g in
  let c = Digraph.add_node g in
  check ci "ids dense" 2 c;
  ignore (Digraph.add_edge g ~src:a ~dst:b ~label:"x");
  ignore (Digraph.add_edge g ~src:a ~dst:c ~label:"y");
  ignore (Digraph.add_edge g ~src:b ~dst:c ~label:"z");
  check ci "num_nodes" 3 (Digraph.num_nodes g);
  check ci "num_edges" 3 (Digraph.num_edges g);
  check cil "succs order" [ b; c ] (Digraph.succs g a);
  check cil "preds" [ a; b ] (Digraph.preds g c);
  check ci "out_degree" 2 (Digraph.out_degree g a);
  check ci "in_degree" 2 (Digraph.in_degree g c);
  check cb "has_edge" true (Digraph.has_edge g ~src:a ~dst:b);
  check cb "no edge" false (Digraph.has_edge g ~src:c ~dst:a)

let digraph_multi_edges () =
  let g = Digraph.create () in
  let a = Digraph.add_node g and b = Digraph.add_node g in
  ignore (Digraph.add_edge g ~src:a ~dst:b ~label:1);
  ignore (Digraph.add_edge g ~src:a ~dst:b ~label:2);
  ignore (Digraph.add_edge g ~src:a ~dst:b ~label:1);
  check ci "parallel edges kept" 3 (List.length (Digraph.find_edges g ~src:a ~dst:b));
  Digraph.remove_edge g { Digraph.src = a; dst = b; label = 1 };
  check ci "one occurrence removed" 2 (List.length (Digraph.find_edges g ~src:a ~dst:b));
  Alcotest.check_raises "remove absent" Not_found (fun () ->
      Digraph.remove_edge g { Digraph.src = b; dst = a; label = 1 })

let digraph_reverse_copy () =
  let g = random_graph 3 ~nodes:8 ~edges:15 in
  let r = Digraph.reverse g in
  Digraph.iter_edges
    (fun e ->
      if not (Digraph.has_edge r ~src:e.Digraph.dst ~dst:e.src) then
        Alcotest.fail "reverse missing edge")
    g;
  check ci "reverse edge count" (Digraph.num_edges g) (Digraph.num_edges r);
  let c = Digraph.copy g in
  check ci "copy edges" (Digraph.num_edges g) (Digraph.num_edges c);
  let m = Digraph.map_labels (fun e -> e.Digraph.src * 100) g in
  Digraph.iter_edges
    (fun e -> check ci "mapped label" (e.Digraph.src * 100) e.label)
    m

let digraph_invalid () =
  let g = Digraph.create () in
  ignore (Digraph.add_node g);
  Alcotest.check_raises "bad src" (Invalid_argument "Digraph: unknown node 5")
    (fun () -> ignore (Digraph.add_edge g ~src:5 ~dst:0 ~label:()))

(* ---------------- Dfs ---------------- *)

(* diamond with a back edge: 0->1,0->2,1->3,2->3,3->0 *)
let diamond_loop () =
  let g = Digraph.create () in
  ignore (Digraph.add_nodes g 4);
  List.iter
    (fun (u, v) -> ignore (Digraph.add_edge g ~src:u ~dst:v ~label:()))
    [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 0) ];
  g

let dfs_numbering () =
  let g = diamond_loop () in
  let num = Dfs.number g ~root:0 in
  check ci "all reachable" 4 num.Dfs.count;
  check cb "root reachable" true (Dfs.reachable num 0);
  check ci "root preorder" 0 num.Dfs.pre.(0);
  check cb "ancestor refl" true (Dfs.is_ancestor num 0 0);
  check cb "root ancestor of all" true (Dfs.is_ancestor num 0 3)

let dfs_back_edges () =
  let g = diamond_loop () in
  let bes = Dfs.back_edges g ~root:0 in
  check ci "one back edge" 1 (List.length bes);
  let e = List.hd bes in
  check ci "back src" 3 e.Digraph.src;
  check ci "back dst" 0 e.Digraph.dst

let dfs_unreachable () =
  let g = Digraph.create () in
  ignore (Digraph.add_nodes g 3);
  ignore (Digraph.add_edge g ~src:0 ~dst:1 ~label:());
  let num = Dfs.number g ~root:0 in
  check cb "2 unreachable" false (Dfs.reachable num 2);
  check ci "count" 2 num.Dfs.count

let rpo_prop =
  QCheck.Test.make ~count:100 ~name:"rpo: non-back edges go forward"
    QCheck.(int_range 0 10000)
    (fun seed ->
      let g = random_graph seed ~nodes:10 ~edges:18 in
      let num = Dfs.number g ~root:0 in
      let rpo = Dfs.rpo_index g ~root:0 in
      Digraph.fold_edges
        (fun ok e ->
          ok
          &&
          if Dfs.reachable num e.Digraph.src && Dfs.reachable num e.dst then
            match Dfs.classify num e with
            | Dfs.Back -> true
            | _ -> rpo.(e.src) < rpo.(e.dst)
          else true)
        true g)

(* ---------------- Dominator / Postdom ---------------- *)

let dominator_diamond () =
  let g = diamond_loop () in
  let d = Dominator.compute g ~root:0 in
  check (Alcotest.option ci) "idom 1" (Some 0) (Dominator.idom d 1);
  check (Alcotest.option ci) "idom 2" (Some 0) (Dominator.idom d 2);
  check (Alcotest.option ci) "idom 3" (Some 0) (Dominator.idom d 3);
  check (Alcotest.option ci) "idom root" None (Dominator.idom d 0);
  check cb "0 dom 3" true (Dominator.dominates d 0 3);
  check cb "1 not dom 3" false (Dominator.dominates d 1 3);
  check cb "refl" true (Dominator.dominates d 3 3);
  check cb "strict not refl" false (Dominator.strictly_dominates d 3 3);
  check cil "dominators of 3" [ 0; 3 ] (Dominator.dominators d 3);
  check ci "depth" 1 (Dominator.depth d 3)

let dominator_chain () =
  let g = Digraph.create () in
  ignore (Digraph.add_nodes g 4);
  List.iter
    (fun (u, v) -> ignore (Digraph.add_edge g ~src:u ~dst:v ~label:()))
    [ (0, 1); (1, 2); (2, 3) ];
  let d = Dominator.compute g ~root:0 in
  check cb "chain dominance" true (Dominator.dominates d 1 3);
  check ci "depth 3" 3 (Dominator.depth d 3);
  check cil "children of 1" [ 2 ] (Dominator.children d 1)

(* oracle: u strictly-dominates v iff v unreachable when u removed *)
let dominator_oracle_prop =
  QCheck.Test.make ~count:60 ~name:"dominator = cut-vertex oracle"
    QCheck.(int_range 0 10000)
    (fun seed ->
      let g = random_graph seed ~nodes:9 ~edges:14 in
      let d = Dominator.compute g ~root:0 in
      let num = Dfs.number g ~root:0 in
      let ok = ref true in
      for u = 0 to 8 do
        for v = 0 to 8 do
          if u <> v && u <> 0 && Dfs.reachable num u && Dfs.reachable num v then begin
            let dom = Dominator.strictly_dominates d u v in
            let cut = not (reaches_avoiding g ~src:0 ~dst:v ~avoid:u) in
            if dom <> cut then ok := false
          end
        done
      done;
      !ok)

let postdom_basics () =
  (* 0->1(T)/2(F); 1->3; 2->3; 3 = exit *)
  let g = Digraph.create () in
  ignore (Digraph.add_nodes g 4);
  List.iter
    (fun (u, v) -> ignore (Digraph.add_edge g ~src:u ~dst:v ~label:()))
    [ (0, 1); (0, 2); (1, 3); (2, 3) ];
  let pd = Postdom.compute g ~exit_:3 in
  check cb "3 pdom 0" true (Postdom.postdominates pd 3 0);
  check cb "1 not pdom 0" false (Postdom.postdominates pd 1 0);
  check (Alcotest.option ci) "ipdom 0" (Some 3) (Postdom.ipostdom pd 0);
  check cil "postdominators of 0" [ 3; 0 ] (Postdom.postdominators pd 0);
  check cb "refl" true (Postdom.postdominates pd 1 1)

(* ---------------- Lca ---------------- *)

let lca_tree () =
  (*      0
          |
          1
         / \
        2   3
        |
        4       and a second root 5 *)
  let parent = [| -1; 0; 1; 1; 2; -1 |] in
  let l = Lca.of_parents parent in
  check ci "depth root" 0 (Lca.depth l 0);
  check ci "depth 4" 3 (Lca.depth l 4);
  check ci "lca siblings" 1 (Lca.lca l 2 3);
  check ci "lca ancestor" 1 (Lca.lca l 1 4);
  check ci "lca self" 4 (Lca.lca l 4 4);
  check ci "lca deep" 1 (Lca.lca l 4 3);
  check (Alcotest.option ci) "parent" (Some 2) (Lca.parent l 4);
  check (Alcotest.option ci) "parent root" None (Lca.parent l 0);
  check cb "ancestor" true (Lca.is_ancestor l 0 4);
  check cb "not ancestor" false (Lca.is_ancestor l 3 4);
  check cb "refl ancestor" true (Lca.is_ancestor l 4 4);
  Alcotest.check_raises "different trees" Not_found (fun () -> ignore (Lca.lca l 4 5));
  check (Alcotest.option ci) "lca_opt none" None (Lca.lca_opt l 4 5)

(* ---------------- Topo ---------------- *)

let topo_dag () =
  let g = Digraph.create () in
  ignore (Digraph.add_nodes g 5);
  List.iter
    (fun (u, v) -> ignore (Digraph.add_edge g ~src:u ~dst:v ~label:()))
    [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ];
  let order = Topo.sort g in
  let pos = Array.make 5 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  Digraph.iter_edges
    (fun e -> if pos.(e.Digraph.src) >= pos.(e.dst) then Alcotest.fail "order violated")
    g;
  check cb "acyclic" true (Topo.is_acyclic g)

let topo_cycle () =
  let g = diamond_loop () in
  check cb "cyclic" false (Topo.is_acyclic g);
  check cb "sort_opt none" true (Topo.sort_opt g = None);
  (try
     ignore (Topo.sort g);
     Alcotest.fail "expected Cycle"
   with Topo.Cycle nodes -> check cb "cycle nonempty" true (nodes <> []))

let topo_sort_prop =
  QCheck.Test.make ~count:100 ~name:"topo: forward edges in random DAGs"
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = S89_util.Prng.create ~seed in
      let g = Digraph.create () in
      let n = 12 in
      ignore (Digraph.add_nodes g n);
      for _ = 1 to 20 do
        let u = S89_util.Prng.int rng n and v = S89_util.Prng.int rng n in
        (* force a DAG: edges from smaller to larger id only *)
        if u < v then ignore (Digraph.add_edge g ~src:u ~dst:v ~label:())
      done;
      let order = Topo.sort g in
      let pos = Array.make n 0 in
      Array.iteri (fun i v -> pos.(v) <- i) order;
      Digraph.fold_edges (fun ok e -> ok && pos.(e.Digraph.src) < pos.(e.dst)) true g)

let scc_known () =
  (* two cycles {0,1} and {2,3}, with 1 -> 2, plus isolated 4 *)
  let g = Digraph.create () in
  ignore (Digraph.add_nodes g 5);
  List.iter
    (fun (u, v) -> ignore (Digraph.add_edge g ~src:u ~dst:v ~label:()))
    [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2) ];
  let comps = Topo.scc g in
  check ci "three components... plus isolated" 3 (List.length comps);
  let sorted = List.map (List.sort compare) comps in
  check cb "has {0,1}" true (List.mem [ 0; 1 ] sorted);
  check cb "has {2,3}" true (List.mem [ 2; 3 ] sorted);
  check cb "has {4}" true (List.mem [ 4 ] sorted);
  (* callees first: {2,3} (sink) must come before {0,1} *)
  let pos_23 = ref (-1) and pos_01 = ref (-1) in
  List.iteri
    (fun i c ->
      let c = List.sort compare c in
      if c = [ 2; 3 ] then pos_23 := i;
      if c = [ 0; 1 ] then pos_01 := i)
    comps;
  check cb "sink scc first" true (!pos_23 < !pos_01);
  let _, id = Topo.scc_map g in
  check cb "same comp" true (id.(2) = id.(3));
  check cb "diff comp" true (id.(0) <> id.(2))

(* ---------------- Reducibility / Node_split ---------------- *)

let irreducible_triangle () =
  (* 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 1 : the classic irreducible loop *)
  let g = Digraph.create () in
  ignore (Digraph.add_nodes g 3);
  List.iter
    (fun (u, v) -> ignore (Digraph.add_edge g ~src:u ~dst:v ~label:()))
    [ (0, 1); (0, 2); (1, 2); (2, 1) ];
  g

let reducibility_structured () =
  let g = diamond_loop () in
  check cb "diamond+loop reducible" true (Reducibility.is_reducible g ~root:0);
  check ci "one natural back edge" 1
    (List.length (Reducibility.natural_back_edges g ~root:0));
  match Reducibility.back_edges_if_reducible g ~root:0 with
  | Some [ e ] -> check ci "back edge dst" 0 e.Digraph.dst
  | _ -> Alcotest.fail "expected one back edge"

let reducibility_irreducible () =
  let g = irreducible_triangle () in
  check cb "triangle irreducible" false (Reducibility.is_reducible g ~root:0);
  check cb "no natural back edges" true
    (Reducibility.natural_back_edges g ~root:0 = []);
  check cb "back_edges_if_reducible none" true
    (Reducibility.back_edges_if_reducible g ~root:0 = None)

let node_split_triangle () =
  let g = irreducible_triangle () in
  let copies = ref [] in
  let splits =
    Node_split.make_reducible g ~root:0 ~on_copy:(fun ~orig ~copy ->
        copies := (orig, copy) :: !copies)
  in
  check cb "split happened" true (splits <> []);
  check cb "now reducible" true (Reducibility.is_reducible g ~root:0);
  check ci "on_copy per split" (List.length splits) (List.length !copies)

let node_split_noop () =
  let g = diamond_loop () in
  let splits = Node_split.make_reducible g ~root:0 ~on_copy:(fun ~orig:_ ~copy:_ -> ()) in
  check cb "no splits on reducible" true (splits = [])

let node_split_prop =
  QCheck.Test.make ~count:60 ~name:"node splitting reaches reducibility"
    QCheck.(int_range 0 10000)
    (fun seed ->
      let g = random_graph seed ~nodes:8 ~edges:14 in
      ignore (Node_split.make_reducible g ~root:0 ~on_copy:(fun ~orig:_ ~copy:_ -> ()));
      Reducibility.is_reducible g ~root:0)

(* ---------------- Dot ---------------- *)

let dot_output () =
  let g = Digraph.create () in
  let a = Digraph.add_node g and b = Digraph.add_node g in
  ignore (Digraph.add_edge g ~src:a ~dst:b ~label:"T");
  let s =
    Dot.to_string ~name:"test"
      ~node_attrs:(fun v -> [ ("label", Printf.sprintf "n\"%d\"" v) ])
      ~edge_attrs:(fun e -> [ ("label", e.Digraph.label) ])
      g
  in
  check cb "has digraph" true
    (String.length s > 0 && String.sub s 0 12 = "digraph test");
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check cb "edge present" true (contains "n0 -> n1" s);
  check cb "quote escaped" true (contains "\\\"0\\\"" s);
  let skipped = Dot.to_string ~skip_node:(fun v -> v = 1) g in
  check cb "skipped node absent" false (contains "n1" skipped)

let suite =
  [
    Alcotest.test_case "digraph basics" `Quick digraph_basics;
    Alcotest.test_case "digraph multi-edges" `Quick digraph_multi_edges;
    Alcotest.test_case "digraph reverse/copy/map" `Quick digraph_reverse_copy;
    Alcotest.test_case "digraph invalid nodes" `Quick digraph_invalid;
    Alcotest.test_case "dfs numbering" `Quick dfs_numbering;
    Alcotest.test_case "dfs back edges" `Quick dfs_back_edges;
    Alcotest.test_case "dfs unreachable" `Quick dfs_unreachable;
    QCheck_alcotest.to_alcotest rpo_prop;
    Alcotest.test_case "dominators: diamond+loop" `Quick dominator_diamond;
    Alcotest.test_case "dominators: chain" `Quick dominator_chain;
    QCheck_alcotest.to_alcotest dominator_oracle_prop;
    Alcotest.test_case "postdominators" `Quick postdom_basics;
    Alcotest.test_case "lca forest" `Quick lca_tree;
    Alcotest.test_case "topo sort DAG" `Quick topo_dag;
    Alcotest.test_case "topo cycle detection" `Quick topo_cycle;
    QCheck_alcotest.to_alcotest topo_sort_prop;
    Alcotest.test_case "tarjan scc" `Quick scc_known;
    Alcotest.test_case "reducible structured" `Quick reducibility_structured;
    Alcotest.test_case "irreducible triangle" `Quick reducibility_irreducible;
    Alcotest.test_case "node split triangle" `Quick node_split_triangle;
    Alcotest.test_case "node split noop" `Quick node_split_noop;
    QCheck_alcotest.to_alcotest node_split_prop;
    Alcotest.test_case "dot output" `Quick dot_output;
  ]

(* postdominators are dominators of the reverse graph: check the duality
   directly on random graphs with a designated exit *)
let postdom_duality_prop =
  QCheck.Test.make ~count:60 ~name:"postdom g = dom (reverse g)"
    QCheck.(int_range 0 10000)
    (fun seed ->
      let g = random_graph seed ~nodes:9 ~edges:14 in
      let exit_ = Digraph.add_node g in
      Digraph.iter_nodes
        (fun v ->
          if v <> exit_ && Digraph.out_degree g v = 0 then
            ignore (Digraph.add_edge g ~src:v ~dst:exit_ ~label:()))
        g;
      ignore (Digraph.add_edge g ~src:0 ~dst:exit_ ~label:());
      let pd = Postdom.compute g ~exit_ in
      let dr = Dominator.compute (Digraph.reverse g) ~root:exit_ in
      let ok = ref true in
      let n = Digraph.num_nodes g in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Postdom.postdominates pd u v <> Dominator.dominates dr u v then ok := false
        done
      done;
      !ok)

let suite = suite @ [ QCheck_alcotest.to_alcotest postdom_duality_prop ]

(* ---------------- Allen-Cocke interval derivation ---------------- *)

let interval_deriv_diamond () =
  let g = diamond_loop () in
  let part = Interval_deriv.first_order g ~root:0 in
  (* single-entry region headed at 0 absorbs everything: one interval *)
  check cil "one interval" [ 0 ] part.Interval_deriv.headers;
  check ci "all assigned" 0
    (Array.fold_left (fun acc h -> if h = -1 then acc + 1 else acc) 0
       part.Interval_deriv.interval_of);
  check cb "derived-seq reducible" true (Interval_deriv.is_reducible g ~root:0)

let interval_deriv_two_regions () =
  (* 0 -> 1 -> 2 -> 1 (a loop not headed at the root) *)
  let g = Digraph.create () in
  ignore (Digraph.add_nodes g 3);
  List.iter
    (fun (u, v) -> ignore (Digraph.add_edge g ~src:u ~dst:v ~label:()))
    [ (0, 1); (1, 2); (2, 1) ];
  let part = Interval_deriv.first_order g ~root:0 in
  (* 1 is re-entered by the back edge, so it heads its own interval *)
  check cil "two intervals" [ 0; 1 ] part.Interval_deriv.headers;
  check cb "2 joins 1's interval" true (part.Interval_deriv.interval_of.(2) = 1);
  let seq = Interval_deriv.derived_sequence g ~root:0 in
  check cb "sequence shrinks to one node" true
    (match List.rev seq with
    | last :: _ -> Digraph.num_nodes last.Interval_deriv.graph = 1
    | [] -> false)

let interval_deriv_irreducible_limit () =
  let g = irreducible_triangle () in
  check cb "derived-seq says irreducible" false (Interval_deriv.is_reducible g ~root:0)

(* the classic theorem: derived-sequence reducibility = dominator-based
   reducibility, on random graphs *)
let interval_deriv_equiv_prop =
  QCheck.Test.make ~count:100 ~name:"derived-sequence = dominator reducibility"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let g = random_graph seed ~nodes:8 ~edges:13 in
      Interval_deriv.is_reducible g ~root:0 = Reducibility.is_reducible g ~root:0)

(* every natural-loop header is an interval header at some level *)
let interval_deriv_headers_prop =
  QCheck.Test.make ~count:60 ~name:"loop headers appear as interval headers"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let g = random_graph seed ~nodes:8 ~edges:12 in
      if not (Reducibility.is_reducible g ~root:0) then true
      else begin
        let loop_headers =
          List.map (fun (e : _ Digraph.edge) -> e.dst)
            (Reducibility.natural_back_edges g ~root:0)
          |> List.sort_uniq compare
        in
        let seq = Interval_deriv.derived_sequence g ~root:0 in
        (* collect, per level, the original node each interval header stands
           for (the head of its represents list) *)
        let header_originals =
          List.concat_map
            (fun (lvl : Interval_deriv.level) ->
              let part =
                Interval_deriv.first_order lvl.Interval_deriv.graph
                  ~root:lvl.Interval_deriv.root
              in
              List.map
                (fun h -> List.hd lvl.Interval_deriv.represents.(h))
                part.Interval_deriv.headers)
            seq
        in
        List.for_all (fun h -> List.mem h header_originals) loop_headers
      end)

(* partition sanity on random graphs *)
let interval_partition_prop =
  QCheck.Test.make ~count:100 ~name:"first-order intervals partition the graph"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let g = random_graph seed ~nodes:9 ~edges:14 in
      let part = Interval_deriv.first_order g ~root:0 in
      let num = Dfs.number g ~root:0 in
      let ok = ref true in
      (* reachable nodes all assigned; membership lists consistent *)
      Digraph.iter_nodes
        (fun v ->
          if Dfs.reachable num v then begin
            let h = part.Interval_deriv.interval_of.(v) in
            if h = -1 then ok := false
            else if not (List.mem v (Hashtbl.find part.Interval_deriv.members h)) then
              ok := false
          end
          else if part.Interval_deriv.interval_of.(v) <> -1 then ok := false)
        g;
      (* each interval is single-entry: only its header has preds outside *)
      List.iter
        (fun h ->
          List.iter
            (fun m ->
              if m <> h then
                List.iter
                  (fun p ->
                    if
                      Dfs.reachable num p
                      && part.Interval_deriv.interval_of.(p)
                         <> part.Interval_deriv.interval_of.(m)
                    then ok := false)
                  (Digraph.preds g m))
            (Hashtbl.find part.Interval_deriv.members h))
        part.Interval_deriv.headers;
      !ok)

let suite =
  suite
  @ [
      Alcotest.test_case "interval-deriv: diamond" `Quick interval_deriv_diamond;
      Alcotest.test_case "interval-deriv: loop region" `Quick interval_deriv_two_regions;
      Alcotest.test_case "interval-deriv: irreducible" `Quick
        interval_deriv_irreducible_limit;
      QCheck_alcotest.to_alcotest interval_deriv_equiv_prop;
      QCheck_alcotest.to_alcotest interval_deriv_headers_prop;
      QCheck_alcotest.to_alcotest interval_partition_prop;
    ]
