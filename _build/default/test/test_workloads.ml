(* Tests for the workload suite: every benchmark program must parse,
   lower, validate, analyze and run to completion deterministically. *)

module Program = S89_frontend.Program
module Interp = S89_vm.Interp
module Cfg = S89_cfg.Cfg

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let all_sources =
  [ ("fig1", S89_workloads.Demos.fig1 ());
    ("branchy", S89_workloads.Demos.branchy ());
    ("chunky", S89_workloads.Demos.chunky ());
    ("nested", S89_workloads.Demos.nested_random ());
    ("recursive", S89_workloads.Demos.recursive ());
    ("irreducible", S89_workloads.Demos.irreducible ());
    ("cgoto", S89_workloads.Demos.computed_goto ());
    ("sort", S89_workloads.Demos.sort ());
    ("sieve", S89_workloads.Demos.sieve ());
    ("linpack", S89_workloads.Linpack_like.source ());
    ("loops", S89_workloads.Livermore.source);
    ("simple-small", S89_workloads.Simple_code.source ~n:12 ~cycles:2 ()) ]

let workloads_build_and_run () =
  List.iter
    (fun (name, src) ->
      let prog =
        try Program.of_source src
        with e -> Alcotest.failf "%s failed to build: %s" name (Printexc.to_string e)
      in
      List.iter
        (fun (p : Program.proc) ->
          match Cfg.validate p.Program.cfg with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "%s/%s invalid: %s" name p.Program.name
                (Fmt.str "%a" Cfg.pp_error e))
        (Program.procs prog);
      let vm = Interp.create prog in
      (match Interp.run vm with
      | Interp.Normal_stop | Interp.Fell_off_end -> ()
      | exception e -> Alcotest.failf "%s crashed: %s" name (Printexc.to_string e));
      check cb (name ^ " does real work") true (Interp.cycles vm > 0))
    all_sources

let workloads_analyze () =
  List.iter
    (fun (name, src) ->
      let prog = Program.of_source src in
      try ignore (S89_profiling.Analysis.of_program prog)
      with e -> Alcotest.failf "%s analysis failed: %s" name (Printexc.to_string e))
    all_sources

let workloads_deterministic () =
  List.iter
    (fun (name, src) ->
      let prog = Program.of_source src in
      let cycles seed =
        let vm = Interp.create ~config:{ Interp.default_config with seed } prog in
        ignore (Interp.run vm);
        Interp.cycles vm
      in
      check ci (name ^ " deterministic") (cycles 5) (cycles 5))
    all_sources

let loops_has_24_kernels () =
  let prog = Program.of_source S89_workloads.Livermore.source in
  check ci "24 kernels + main" 25 (List.length (Program.procs prog));
  let vm = Interp.create prog in
  ignore (Interp.run vm);
  for k = 1 to 24 do
    check ci (Printf.sprintf "K%d runs once" k) 1
      (Interp.invocations vm (Printf.sprintf "K%d" k))
  done

let simple_scales () =
  let cycles n =
    let prog = Program.of_source (S89_workloads.Simple_code.source ~n ~cycles:2 ()) in
    let vm = Interp.create prog in
    ignore (Interp.run vm);
    Interp.cycles vm
  in
  (* quadratic-ish growth in the mesh size *)
  check cb "bigger mesh, more work" true (cycles 24 > 3 * cycles 12)

let suite =
  [
    Alcotest.test_case "all workloads build and run" `Slow workloads_build_and_run;
    Alcotest.test_case "all workloads analyze" `Slow workloads_analyze;
    Alcotest.test_case "runs are deterministic" `Slow workloads_deterministic;
    Alcotest.test_case "LOOPS has 24 kernels" `Slow loops_has_24_kernels;
    Alcotest.test_case "SIMPLE scales with mesh" `Slow simple_scales;
  ]
