lib/sched/chunk.mli:
