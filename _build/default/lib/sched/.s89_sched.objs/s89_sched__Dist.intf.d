lib/sched/dist.mli: Format S89_util
