lib/sched/chunk.ml: Float Printf
