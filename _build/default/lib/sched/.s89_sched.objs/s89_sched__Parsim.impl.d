lib/sched/parsim.ml: Array Chunk Dist Float S89_util
