lib/sched/dist.ml: Float Fmt S89_util
