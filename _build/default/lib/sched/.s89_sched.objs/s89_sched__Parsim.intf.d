lib/sched/parsim.mli: Chunk Dist S89_util
