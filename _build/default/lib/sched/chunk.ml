(* Chunk-size selection for parallel loops (§5's motivating application,
   after Kruskal & Weiss 1985).

   With N iid iterations of mean μ and std-dev σ on P processors and a
   per-chunk dispatch overhead h, chunked self-scheduling with chunk size
   k has expected makespan approximately

       T(k) ≈ N·μ/P + N·h/(k·P) + σ·√(2·k·ln P)

   (work term, overhead term, imbalance term).  Minimizing over k gives

       k_opt = ( √2 · N · h / (σ · P · √(ln P)) )^(2/3)

   When σ = 0 the imbalance term vanishes and k = ⌈N/P⌉ (one chunk per
   processor) is optimal — exactly the paper's intuition: "when the
   variance is large, we have to move to smaller chunk sizes to get better
   load balancing, at the cost of increased overhead". *)

type strategy =
  | Static_split (* k = ceil(N/P): one chunk per processor *)
  | Self_sched (* k = 1: classic self-scheduling *)
  | Fixed of int
  | Kruskal_weiss (* k from the formula above *)
  | Guided (* k = ceil(remaining / P), recomputed per dispatch *)

let clamp ~lo ~hi x = max lo (min hi x)

let static_chunk ~n ~p = (n + p - 1) / p

let kw_chunk ~n ~p ~h ~sigma =
  if p <= 1 then n
  else if sigma <= 0.0 then static_chunk ~n ~p
  else begin
    let nf = float_of_int n and pf = float_of_int p in
    let lnp = log pf in
    if lnp <= 0.0 then n
    else begin
      let k =
        (sqrt 2.0 *. nf *. h /. (sigma *. pf *. sqrt lnp)) ** (2.0 /. 3.0)
      in
      clamp ~lo:1 ~hi:(static_chunk ~n ~p) (int_of_float (Float.round k))
    end
  end

(* the analytic makespan model behind the formula *)
let expected_makespan ~n ~p ~h ~mu ~sigma ~k =
  let nf = float_of_int n and pf = float_of_int p and kf = float_of_int k in
  (nf *. mu /. pf)
  +. (nf *. h /. (kf *. pf))
  +. (sigma *. sqrt (2.0 *. kf *. log pf))

(* chunk size chosen by a strategy before execution; Guided returns its
   initial chunk (the simulator recomputes per dispatch) *)
let initial_chunk strategy ~n ~p ~h ~sigma =
  match strategy with
  | Static_split -> static_chunk ~n ~p
  | Self_sched -> 1
  | Fixed k -> clamp ~lo:1 ~hi:n k
  | Kruskal_weiss -> kw_chunk ~n ~p ~h ~sigma
  | Guided -> static_chunk ~n ~p

let strategy_name = function
  | Static_split -> "static-N/P"
  | Self_sched -> "self-sched-1"
  | Fixed k -> Printf.sprintf "fixed-%d" k
  | Kruskal_weiss -> "kruskal-weiss"
  | Guided -> "guided"

(* Bridge from the paper's estimator: TIME and VAR of one loop-body
   execution determine μ and σ for the chunking decision — this is the
   §5 use case ("allowing the compiler to choose smaller chunk sizes only
   when it is really necessary"). *)
let from_estimate ~time:_ ~var ~n ~p ~h =
  kw_chunk ~n ~p ~h ~sigma:(sqrt (Float.max 0.0 var))
