(** Chunk-size selection for parallel loops (§5's application, after
    Kruskal & Weiss 1985): minimize
    [T(k) ≈ N·μ/P + N·h/(k·P) + σ·√(2·k·ln P)] over the chunk size [k]. *)

type strategy =
  | Static_split  (** k = ⌈N/P⌉: one chunk per processor *)
  | Self_sched  (** k = 1: classic self-scheduling *)
  | Fixed of int
  | Kruskal_weiss  (** k from the closed form below *)
  | Guided  (** k = ⌈remaining/P⌉, recomputed per dispatch *)

val static_chunk : n:int -> p:int -> int

(** [k_opt = (√2·N·h / (σ·P·√(ln P)))^(2/3)], clamped to [1, ⌈N/P⌉];
    ⌈N/P⌉ when σ = 0 (zero variance: perfect split, minimal overhead). *)
val kw_chunk : n:int -> p:int -> h:float -> sigma:float -> int

(** The analytic makespan model behind the formula. *)
val expected_makespan : n:int -> p:int -> h:float -> mu:float -> sigma:float -> k:int -> float

(** Chunk size chosen by a strategy before execution (Guided returns its
    first chunk). *)
val initial_chunk : strategy -> n:int -> p:int -> h:float -> sigma:float -> int

val strategy_name : strategy -> string

(** Bridge from the paper's estimator: TIME/VAR of one loop-body
    execution determine μ and σ for the chunking decision. *)
val from_estimate : time:float -> var:float -> n:int -> p:int -> h:float -> int
