(* Iteration-time distributions for the parallel-loop simulator.

   The estimator hands us a mean (TIME) and a variance (VAR) for one loop
   iteration; the simulator needs whole distributions.  Each constructor
   documents its mean/variance so tests can check the moments; [of_moments]
   builds a distribution matching a given (mean, variance) pair, which is
   how estimator output is turned into simulator input. *)

module Prng = S89_util.Prng

type t =
  | Const of float
  | Uniform of { lo : float; hi : float }
  | Normal of { mu : float; sigma : float } (* truncated at 0 *)
  | Exponential of { mean : float }
  | Bimodal of { fast : float; slow : float; p_slow : float }
      (* a branchy loop body: fast path, slow path with probability p *)
  | Shifted_exp of { base : float; extra_mean : float }
      (* base cost plus an exponential tail *)

let mean = function
  | Const c -> c
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Normal { mu; _ } -> mu (* truncation bias ignored; tests use sigma << mu *)
  | Exponential { mean } -> mean
  | Bimodal { fast; slow; p_slow } -> (fast *. (1.0 -. p_slow)) +. (slow *. p_slow)
  | Shifted_exp { base; extra_mean } -> base +. extra_mean

let variance = function
  | Const _ -> 0.0
  | Uniform { lo; hi } ->
      let d = hi -. lo in
      d *. d /. 12.0
  | Normal { sigma; _ } -> sigma *. sigma
  | Exponential { mean } -> mean *. mean
  | Bimodal { fast; slow; p_slow } ->
      let m = (fast *. (1.0 -. p_slow)) +. (slow *. p_slow) in
      ((fast -. m) ** 2.0 *. (1.0 -. p_slow)) +. ((slow -. m) ** 2.0 *. p_slow)
  | Shifted_exp { extra_mean; _ } -> extra_mean *. extra_mean

let std_dev d = sqrt (variance d)

let sample rng = function
  | Const c -> c
  | Uniform { lo; hi } -> Prng.uniform rng ~lo ~hi
  | Normal { mu; sigma } -> Float.max 0.0 (mu +. (sigma *. Prng.normal rng))
  | Exponential { mean } -> Prng.exponential rng ~mean
  | Bimodal { fast; slow; p_slow } ->
      if Prng.float rng < p_slow then slow else fast
  | Shifted_exp { base; extra_mean } ->
      if extra_mean <= 0.0 then base else base +. Prng.exponential rng ~mean:extra_mean

(* A distribution with the requested mean and variance: constant when the
   variance is (near) zero, otherwise a base + exponential tail when the
   coefficient of variation allows it, else a bimodal mix. *)
let of_moments ~mean:m ~variance:v =
  if v <= 1e-12 then Const m
  else
    let sd = sqrt v in
    if sd <= m then Shifted_exp { base = m -. sd; extra_mean = sd }
    else begin
      (* heavy spread: bimodal with a zero fast path *)
      (* fast=0, slow=s, p: mean = p·s, var = p(1-p)s²  ⇒ s = (v + m²)/m *)
      let s = (v +. (m *. m)) /. m in
      Bimodal { fast = 0.0; slow = s; p_slow = m /. s }
    end

let pp fmt = function
  | Const c -> Fmt.pf fmt "const(%g)" c
  | Uniform { lo; hi } -> Fmt.pf fmt "uniform[%g,%g]" lo hi
  | Normal { mu; sigma } -> Fmt.pf fmt "normal(%g,%g)" mu sigma
  | Exponential { mean } -> Fmt.pf fmt "exp(%g)" mean
  | Bimodal { fast; slow; p_slow } -> Fmt.pf fmt "bimodal(%g,%g,p=%g)" fast slow p_slow
  | Shifted_exp { base; extra_mean } -> Fmt.pf fmt "shifted-exp(%g+%g)" base extra_mean
