(** Discrete-event simulator for a parallel loop on P processors: workers
    grab chunks from a shared dispenser (overhead [h] per grab) and run
    iterations drawn from the iteration-time distribution.  The makespan
    is the quantity the §5 chunk-size choice trades off. *)

module Stats = S89_util.Stats

type result = {
  makespan : float;  (** max worker finish time *)
  total_work : float;  (** sum of iteration times *)
  total_overhead : float;  (** chunks × h *)
  chunks_dispatched : int;
  worker_busy : float array;  (** per-worker busy time incl. overhead *)
}

(** Simulate one run.  Raises [Invalid_argument] for negative [n] or
    non-positive [p]. *)
val run : ?seed:int -> n:int -> p:int -> h:float -> dist:Dist.t -> Chunk.strategy -> result

(** Makespan statistics over several seeded runs. *)
val run_avg : ?seeds:int -> n:int -> p:int -> h:float -> dist:Dist.t -> Chunk.strategy -> Stats.t
