(** Iteration-time distributions for the parallel-loop simulator, with
    analytic moments so the estimator's (TIME, VAR) pairs can be turned
    into samplable distributions. *)

module Prng = S89_util.Prng

type t =
  | Const of float
  | Uniform of { lo : float; hi : float }
  | Normal of { mu : float; sigma : float }  (** truncated at 0 *)
  | Exponential of { mean : float }
  | Bimodal of { fast : float; slow : float; p_slow : float }
      (** a branchy loop body: fast path, slow path with probability p *)
  | Shifted_exp of { base : float; extra_mean : float }
      (** base cost plus an exponential tail *)

val mean : t -> float
val variance : t -> float
val std_dev : t -> float

(** Draw one sample (never negative). *)
val sample : Prng.t -> t -> float

(** A distribution with exactly the requested mean and variance:
    constant, base+exponential, or a bimodal mix depending on the
    coefficient of variation. *)
val of_moments : mean:float -> variance:float -> t

val pp : Format.formatter -> t -> unit
