(* Semantic analysis for MF77.

   Responsibilities:
   - build the per-unit symbol table (declared/implicit types, array dims,
     PARAMETER constants);
   - rewrite parsed [Call(name, args)] nodes into [Index] when [name] is an
     array, substitute PARAMETER constants, fold them where trivial;
   - check labels (GOTO targets exist, no duplicates), DO variables are
     integer scalars, called units exist with plausible arity;
   - light type checking: conditions must be logical, assignment targets
     must not be constants.

   The result feeds both the lowering pass and the VM. *)

open Ast

type var_kind =
  | Scalar of typ
  | Array of typ * int list (* dims; -1 = assumed-size *)
  | Const of expr (* PARAMETER: a literal after folding *)

type env = {
  unit_ : program_unit; (* body rewritten *)
  vars : (string, var_kind) Hashtbl.t;
  result_var : string option; (* for FUNCTIONs: the unit name *)
  labels : (int, unit) Hashtbl.t;
}

type program_env = {
  units : env list;
  by_name : (string, env) Hashtbl.t;
  main : string;
}

exception Error of string

let err fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)

let const_fold_binop op a b =
  match (op, a, b) with
  | Add, Int x, Int y -> Some (Int (x + y))
  | Sub, Int x, Int y -> Some (Int (x - y))
  | Mul, Int x, Int y -> Some (Int (x * y))
  | Div, Int x, Int y when y <> 0 -> Some (Int (x / y))
  | Add, Real x, Real y -> Some (Real (x +. y))
  | Sub, Real x, Real y -> Some (Real (x -. y))
  | Mul, Real x, Real y -> Some (Real (x *. y))
  | Div, Real x, Real y when y <> 0.0 -> Some (Real (x /. y))
  | _ -> None

(* minimal constant evaluation for PARAMETER right-hand sides *)
let rec const_eval params e =
  match e with
  | Int _ | Real _ | Bool _ -> e
  | Var v -> (
      match List.assoc_opt v params with
      | Some c -> c
      | None -> err "PARAMETER expression references non-constant %s" v)
  | Unop (Neg, e) -> (
      match const_eval params e with
      | Int i -> Int (-i)
      | Real r -> Real (-.r)
      | _ -> err "bad PARAMETER expression")
  | Binop (op, a, b) -> (
      match const_fold_binop op (const_eval params a) (const_eval params b) with
      | Some c -> c
      | None -> err "bad PARAMETER expression")
  | _ -> err "bad PARAMETER expression"

(* ------------------------------------------------------------------ *)

type ctx = {
  cvars : (string, var_kind) Hashtbl.t;
  all_units : (string, program_unit) Hashtbl.t;
  cunit : program_unit;
}

let var_type ctx name =
  match Hashtbl.find_opt ctx.cvars name with
  | Some (Scalar t) | Some (Array (t, _)) -> t
  | Some (Const (Int _)) -> Tint
  | Some (Const (Real _)) -> Treal
  | Some (Const (Bool _)) -> Tlogical
  | Some (Const _) -> Treal
  | None -> implicit_type name

let rec expr_type ctx = function
  | Int _ -> Tint
  | Real _ -> Treal
  | Bool _ -> Tlogical
  | Var v -> var_type ctx v
  | Index (a, _) -> var_type ctx a
  | Call (f, args) -> (
      match Hashtbl.find_opt ctx.all_units f with
      | Some { kind = Function (Some t); _ } -> t
      | Some { kind = Function None; _ } -> implicit_type f
      | Some _ -> err "%s: subroutine %s used as a function" ctx.cunit.name f
      | None -> Intrinsics.result_type f (List.map (expr_type ctx) args))
  | Unop (Neg, e) -> expr_type ctx e
  | Unop (Not, _) -> Tlogical
  | Binop ((Add | Sub | Mul | Div | Pow), a, b) ->
      if expr_type ctx a = Treal || expr_type ctx b = Treal then Treal else Tint
  | Binop ((Lt | Le | Gt | Ge | Eq | Ne | And | Or), _, _) -> Tlogical

(* rewrite Call->Index / substitute constants, checking as we go *)
let rec rw_expr ctx e =
  match e with
  | Int _ | Real _ | Bool _ -> e
  | Var v -> (
      match Hashtbl.find_opt ctx.cvars v with
      | Some (Const c) -> c
      | Some (Array _) -> err "%s: array %s used without subscripts" ctx.cunit.name v
      | _ -> e)
  | Index (a, idx) -> Index (a, List.map (rw_expr ctx) idx)
  | Call (name, args) -> (
      match Hashtbl.find_opt ctx.cvars name with
      | Some (Array (_, dims)) ->
          let args = List.map (rw_expr ctx) args in
          let rank = List.length dims in
          if rank <> List.length args && dims <> [ -1 ] then
            err "%s: array %s has rank %d, used with %d subscripts" ctx.cunit.name
              name rank (List.length args);
          List.iter
            (fun ix ->
              if expr_type ctx ix <> Tint then
                err "%s: non-integer subscript of %s" ctx.cunit.name name)
            args;
          Index (name, args)
      | Some (Const _) | Some (Scalar _) ->
          err "%s: %s is not an array or function" ctx.cunit.name name
      | None -> (
          match Hashtbl.find_opt ctx.all_units name with
          | Some { kind = Function _; params; _ } ->
              if List.length params <> List.length args then
                err "%s: function %s expects %d arguments, got %d" ctx.cunit.name
                  name (List.length params) (List.length args);
              (* user-call arguments may be whole arrays (by reference) *)
              Call (name, List.map (rw_arg ctx) args)
          | Some _ -> err "%s: CALL required to invoke subroutine %s" ctx.cunit.name name
          | None -> (
              match Intrinsics.lookup name with
              | Some info ->
                  let args = List.map (rw_expr ctx) args in
                  let n = List.length args in
                  if n < info.min_arity || n > info.max_arity then
                    err "%s: intrinsic %s: bad arity %d" ctx.cunit.name name n;
                  Call (name, args)
              | None -> err "%s: unknown function or array %s" ctx.cunit.name name)))
  | Unop (op, e) -> Unop (op, rw_expr ctx e)
  | Binop (op, a, b) -> (
      let a = rw_expr ctx a and b = rw_expr ctx b in
      match const_fold_binop op a b with Some c -> c | None -> Binop (op, a, b))

(* arguments of user calls may be whole arrays (passed by reference) *)
and rw_arg ctx e =
  match e with
  | Var v -> (
      match Hashtbl.find_opt ctx.cvars v with
      | Some (Array _) -> e (* whole-array argument *)
      | _ -> rw_expr ctx e)
  | _ -> rw_expr ctx e

let rw_lvalue ctx = function
  | Lvar v -> (
      match Hashtbl.find_opt ctx.cvars v with
      | Some (Const _) -> err "%s: assignment to PARAMETER %s" ctx.cunit.name v
      | Some (Array _) -> err "%s: assignment to whole array %s" ctx.cunit.name v
      | _ -> Lvar v)
  | Larr (a, idx) -> (
      match Hashtbl.find_opt ctx.cvars a with
      | Some (Array _) -> Larr (a, List.map (rw_expr ctx) idx)
      | _ -> err "%s: %s is not an array" ctx.cunit.name a)

let check_logical ctx e what =
  if expr_type ctx e <> Tlogical then
    err "%s: %s condition is not LOGICAL" ctx.cunit.name what

let rec rw_stmt ctx s =
  match s with
  | Assign (lv, e) -> Assign (rw_lvalue ctx lv, rw_expr ctx e)
  | Goto _ -> s
  | Cgoto (ls, e) ->
      let e = rw_expr ctx e in
      if expr_type ctx e <> Tint then
        err "%s: computed GOTO selector is not INTEGER" ctx.cunit.name;
      Cgoto (ls, e)
  | If_logical (c, s) ->
      let c = rw_expr ctx c in
      check_logical ctx c "IF";
      (match s with
      | If_logical _ | If_block _ | Do _ ->
          err "%s: illegal statement in logical IF" ctx.cunit.name
      | _ -> ());
      If_logical (c, rw_stmt ctx s)
  | If_block (arms, else_) ->
      If_block
        ( List.map
            (fun (c, blk) ->
              let c = rw_expr ctx c in
              check_logical ctx c "IF";
              (c, rw_block ctx blk))
            arms,
          Option.map (rw_block ctx) else_ )
  | Do d ->
      (match Hashtbl.find_opt ctx.cvars d.do_var with
      | Some (Scalar Tint) -> ()
      | None when implicit_type d.do_var = Tint -> ()
      | None -> err "%s: DO variable %s is not INTEGER" ctx.cunit.name d.do_var
      | Some _ -> err "%s: DO variable %s is not an INTEGER scalar" ctx.cunit.name d.do_var);
      let lo = rw_expr ctx d.do_lo and hi = rw_expr ctx d.do_hi in
      let step = Option.map (rw_expr ctx) d.do_step in
      List.iter
        (fun e ->
          if expr_type ctx e <> Tint then
            err "%s: DO bounds of %s must be INTEGER" ctx.cunit.name d.do_var)
        (lo :: hi :: Option.to_list step);
      Do { d with do_lo = lo; do_hi = hi; do_step = step; do_body = rw_block ctx d.do_body }
  | Call_stmt (name, args) -> (
      let args = List.map (rw_arg ctx) args in
      match Hashtbl.find_opt ctx.all_units name with
      | Some { kind = Subroutine; params; _ } ->
          if List.length params <> List.length args then
            err "%s: subroutine %s expects %d arguments, got %d" ctx.cunit.name name
              (List.length params) (List.length args);
          Call_stmt (name, args)
      | Some _ -> err "%s: CALL of non-subroutine %s" ctx.cunit.name name
      | None -> err "%s: unknown subroutine %s" ctx.cunit.name name)
  | Return ->
      if ctx.cunit.kind = Program then
        err "%s: RETURN in main program" ctx.cunit.name
      else s
  | Stop | Continue -> s
  | Print es -> Print (List.map (rw_expr ctx) es)

and rw_block ctx blk = List.map (fun ls -> { ls with stmt = rw_stmt ctx ls.stmt }) blk

(* labels: collect & check uniqueness, then check GOTO targets *)
let rec stmt_labels acc ls =
  let acc = match ls.label with Some l -> l :: acc | None -> acc in
  match ls.stmt with
  | If_block (arms, else_) ->
      let acc = List.fold_left (fun a (_, b) -> block_labels a b) acc arms in
      (match else_ with Some b -> block_labels acc b | None -> acc)
  | Do d -> block_labels acc d.do_body
  | If_logical (_, s) -> stmt_labels acc { label = None; stmt = s }
  | _ -> acc

and block_labels acc blk = List.fold_left stmt_labels acc blk

let rec stmt_goto_targets acc s =
  match s with
  | Goto l -> l :: acc
  | Cgoto (ls, _) -> ls @ acc
  | If_logical (_, s) -> stmt_goto_targets acc s
  | If_block (arms, else_) ->
      let acc =
        List.fold_left (fun a (_, b) -> block_goto_targets a b) acc arms
      in
      (match else_ with Some b -> block_goto_targets acc b | None -> acc)
  | Do d -> block_goto_targets acc d.do_body
  | _ -> acc

and block_goto_targets acc blk =
  List.fold_left (fun a ls -> stmt_goto_targets a ls.stmt) acc blk

(* ------------------------------------------------------------------ *)

let analyze_unit all_units (u : program_unit) : env =
  let vars = Hashtbl.create 16 in
  (* PARAMETERs first (they may be referenced by later PARAMETERs) *)
  let params = ref [] in
  List.iter
    (function
      | Dparam ps ->
          List.iter
            (fun (n, e) ->
              let c = const_eval !params e in
              params := (n, c) :: !params;
              if Hashtbl.mem vars n then err "%s: duplicate declaration of %s" u.name n;
              Hashtbl.replace vars n (Const c))
            ps
      | Dvar _ -> ())
    u.decls;
  List.iter
    (function
      | Dvar (ty, names) ->
          List.iter
            (fun (n, dims) ->
              if Hashtbl.mem vars n then err "%s: duplicate declaration of %s" u.name n;
              List.iter
                (fun d ->
                  if d = 0 || d < -1 then err "%s: bad dimension for %s" u.name n)
                dims;
              if dims = [] then Hashtbl.replace vars n (Scalar ty)
              else Hashtbl.replace vars n (Array (ty, dims)))
            names
      | Dparam _ -> ())
    u.decls;
  (* parameters of the unit: give undeclared ones their implicit scalar type *)
  List.iter
    (fun p ->
      match Hashtbl.find_opt vars p with
      | Some (Const _) -> err "%s: dummy argument %s is a PARAMETER" u.name p
      | Some _ -> ()
      | None -> Hashtbl.replace vars p (Scalar (implicit_type p)))
    u.params;
  let result_var =
    match u.kind with
    | Function ty ->
        let t = match ty with Some t -> t | None -> implicit_type u.name in
        if Hashtbl.mem vars u.name then
          err "%s: function name also declared as variable" u.name;
        Hashtbl.replace vars u.name (Scalar t);
        Some u.name
    | _ -> None
  in
  let ctx = { cvars = vars; all_units; cunit = u } in
  let body = rw_block ctx u.body in
  (* labels *)
  let ls = block_labels [] body in
  let labels = Hashtbl.create 16 in
  List.iter
    (fun l ->
      if Hashtbl.mem labels l then err "%s: duplicate label %d" u.name l;
      Hashtbl.replace labels l ())
    ls;
  List.iter
    (fun l ->
      if not (Hashtbl.mem labels l) then err "%s: GOTO to unknown label %d" u.name l)
    (block_goto_targets [] body);
  { unit_ = { u with body }; vars; result_var; labels }

let analyze (p : program) : program_env =
  let all_units = Hashtbl.create 8 in
  List.iter
    (fun u ->
      if Hashtbl.mem all_units u.name then err "duplicate program unit %s" u.name;
      if Intrinsics.is_intrinsic u.name then
        err "program unit %s shadows an intrinsic" u.name;
      Hashtbl.replace all_units u.name u)
    p;
  let mains = List.filter (fun u -> u.kind = Program) p in
  let main =
    match mains with
    | [ m ] -> m.name
    | [] -> err "no PROGRAM unit"
    | _ -> err "multiple PROGRAM units"
  in
  let units = List.map (analyze_unit all_units) p in
  let by_name = Hashtbl.create 8 in
  List.iter (fun e -> Hashtbl.replace by_name e.unit_.name e) units;
  { units; by_name; main }

(* Parse + analyze in one step. *)
let parse_and_analyze src = analyze (Parser.parse_program src)
