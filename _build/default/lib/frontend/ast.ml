(* Abstract syntax of MF77, the Fortran-77-flavoured language this
   reproduction profiles (the paper's experiments ran Fortran through the
   IBM VS Fortran compiler; MF77 plays that role here).

   The language deliberately includes unstructured control flow — GOTO,
   computed GOTO, conditional loop exits — because the whole point of the
   paper's framework is to handle unstructured programs via control
   dependence rather than lexical nesting. *)

type typ = Tint | Treal | Tlogical

let pp_typ fmt = function
  | Tint -> Fmt.string fmt "INTEGER"
  | Treal -> Fmt.string fmt "REAL"
  | Tlogical -> Fmt.string fmt "LOGICAL"

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Pow
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type expr =
  | Int of int
  | Real of float
  | Bool of bool
  | Var of string
  | Index of string * expr list (* array element, 1-based, column-major *)
  | Call of string * expr list (* intrinsic or user FUNCTION *)
  | Unop of unop * expr
  | Binop of binop * expr * expr

type lvalue = Lvar of string | Larr of string * expr list

(* Statements carry optional numeric labels (GOTO targets / DO terminators). *)
type stmt =
  | Assign of lvalue * expr
  | Goto of int
  | Cgoto of int list * expr (* computed GOTO (l1,...,ln), e *)
  | If_logical of expr * stmt (* logical IF: IF (e) simple-stmt *)
  | If_block of (expr * block) list * block option
      (* IF/ELSE IF.../ELSE/ENDIF chain *)
  | Do of do_loop
  | Call_stmt of string * expr list
  | Return
  | Stop
  | Continue (* no-op, usually a label target *)
  | Print of expr list

and do_loop = {
  do_var : string;
  do_lo : expr;
  do_hi : expr;
  do_step : expr option; (* default 1 *)
  do_body : block;
}

and lstmt = { label : int option; stmt : stmt }
and block = lstmt list

type decl =
  | Dvar of typ * (string * int list) list
      (* INTEGER A, B(10), C(10,20): name with dimensions ([] = scalar) *)
  | Dparam of (string * expr) list (* PARAMETER (N = 100, ...) *)

type unit_kind = Program | Subroutine | Function of typ option

type program_unit = {
  kind : unit_kind;
  name : string;
  params : string list;
  decls : decl list;
  body : block;
}

type program = program_unit list

(* ------------------------------------------------------------------ *)
(* Pretty printing (round-trip-ability is tested)                      *)
(* ------------------------------------------------------------------ *)

(* separator without a break hint: statements must stay on one line even
   inside the enclosing vertical box *)
let csep = Fmt.any ", "

let unop_str = function Neg -> "-" | Not -> ".NOT."

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Pow -> "**"
  | Lt -> ".LT." | Le -> ".LE." | Gt -> ".GT." | Ge -> ".GE."
  | Eq -> ".EQ." | Ne -> ".NE." | And -> ".AND." | Or -> ".OR."

(* precedence: Or < And < Not < rel < add < mul < pow < unary-neg *)
let binop_prec = function
  | Or -> 1 | And -> 2
  | Lt | Le | Gt | Ge | Eq | Ne -> 4
  | Add | Sub -> 5
  | Mul | Div -> 6
  | Pow -> 7

let rec pp_expr_prec prec fmt e =
  let paren p body =
    if p < prec then Fmt.pf fmt "(%t)" body else body fmt
  in
  match e with
  | Int i -> Fmt.int fmt i
  | Real r ->
      let s = Printf.sprintf "%.17g" r in
      if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
      then Fmt.string fmt s
      else Fmt.pf fmt "%s.0" s
  | Bool true -> Fmt.string fmt ".TRUE."
  | Bool false -> Fmt.string fmt ".FALSE."
  | Var v -> Fmt.string fmt v
  | Index (a, idx) | Call (a, idx) ->
      Fmt.pf fmt "%s(%a)" a Fmt.(list ~sep:csep (pp_expr_prec 0)) idx
  | Unop (Neg, e) -> paren 8 (fun fmt -> Fmt.pf fmt "-%a" (pp_expr_prec 8) e)
  | Unop (Not, e) -> paren 3 (fun fmt -> Fmt.pf fmt ".NOT.%a" (pp_expr_prec 3) e)
  | Binop (op, a, b) ->
      let p = binop_prec op in
      paren p (fun fmt ->
          Fmt.pf fmt "%a %s %a" (pp_expr_prec p) a (binop_str op)
            (pp_expr_prec (p + 1)) b)

let pp_expr fmt e = pp_expr_prec 0 fmt e

let pp_lvalue fmt = function
  | Lvar v -> Fmt.string fmt v
  | Larr (a, idx) -> Fmt.pf fmt "%s(%a)" a Fmt.(list ~sep:csep pp_expr) idx

let rec pp_stmt fmt = function
  | Assign (lv, e) -> Fmt.pf fmt "%a = %a" pp_lvalue lv pp_expr e
  | Goto l -> Fmt.pf fmt "GOTO %d" l
  | Cgoto (ls, e) ->
      Fmt.pf fmt "GOTO (%a), %a" Fmt.(list ~sep:csep int) ls pp_expr e
  | If_logical (c, s) -> Fmt.pf fmt "IF (%a) %a" pp_expr c pp_stmt s
  | If_block (arms, else_) ->
      List.iteri
        (fun i (c, blk) ->
          if i = 0 then Fmt.pf fmt "@[<v>IF (%a) THEN" pp_expr c
          else Fmt.pf fmt "@,ELSE IF (%a) THEN" pp_expr c;
          pp_block fmt blk)
        arms;
      (match else_ with
      | Some blk ->
          Fmt.pf fmt "@,ELSE";
          pp_block fmt blk
      | None -> ());
      Fmt.pf fmt "@,ENDIF@]"
  | Do d ->
      Fmt.pf fmt "@[<v>DO %s = %a, %a%a" d.do_var pp_expr d.do_lo pp_expr d.do_hi
        (Fmt.option (fun fmt e -> Fmt.pf fmt ", %a" pp_expr e))
        d.do_step;
      pp_block fmt d.do_body;
      Fmt.pf fmt "@,ENDDO@]"
  | Call_stmt (n, []) -> Fmt.pf fmt "CALL %s" n
  | Call_stmt (n, args) ->
      Fmt.pf fmt "CALL %s(%a)" n Fmt.(list ~sep:csep pp_expr) args
  | Return -> Fmt.string fmt "RETURN"
  | Stop -> Fmt.string fmt "STOP"
  | Continue -> Fmt.string fmt "CONTINUE"
  | Print es -> Fmt.pf fmt "PRINT *, %a" Fmt.(list ~sep:csep pp_expr) es

and pp_lstmt fmt { label; stmt } =
  (match label with
  | Some l -> Fmt.pf fmt "%-5d " l
  | None -> Fmt.string fmt "      ");
  pp_stmt fmt stmt

and pp_block fmt blk = List.iter (fun ls -> Fmt.pf fmt "@,  %a" pp_lstmt ls) blk

let pp_decl fmt = function
  | Dvar (ty, names) ->
      Fmt.pf fmt "%a %a" pp_typ ty
        Fmt.(
          list ~sep:csep (fun fmt (n, dims) ->
              match dims with
              | [] -> string fmt n
              | _ -> pf fmt "%s(%a)" n (list ~sep:csep int) dims))
        names
  | Dparam ps ->
      Fmt.pf fmt "PARAMETER (%a)"
        Fmt.(list ~sep:csep (fun fmt (n, e) -> pf fmt "%s = %a" n pp_expr e))
        ps

let pp_unit fmt (u : program_unit) =
  (match u.kind with
  | Program -> Fmt.pf fmt "@[<v>PROGRAM %s" u.name
  | Subroutine ->
      Fmt.pf fmt "@[<v>SUBROUTINE %s(%a)" u.name Fmt.(list ~sep:csep string) u.params
  | Function ty ->
      Fmt.pf fmt "@[<v>%aFUNCTION %s(%a)"
        (Fmt.option (fun fmt t -> Fmt.pf fmt "%a " pp_typ t))
        ty u.name
        Fmt.(list ~sep:csep string)
        u.params);
  List.iter (fun d -> Fmt.pf fmt "@,  %a" pp_decl d) u.decls;
  pp_block fmt u.body;
  Fmt.pf fmt "@,END@]"

let pp_program fmt (p : program) =
  Fmt.pf fmt "@[<v>%a@]" (Fmt.list ~sep:(Fmt.any "@,@,") pp_unit) p

(* Render as reparsable source: statements are newline-terminated, so the
   margin is made effectively infinite to keep each on one line. *)
let to_source (p : program) : string =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Format.pp_set_geometry fmt ~max_indent:999_998 ~margin:999_999;
  pp_program fmt p;
  Format.pp_print_newline fmt ();
  Buffer.contents buf

(* Default Fortran implicit typing: names starting with I..N are INTEGER,
   the rest REAL. *)
let implicit_type name =
  match name.[0] with
  | 'I' .. 'N' | 'i' .. 'n' -> Tint
  | _ -> Treal
