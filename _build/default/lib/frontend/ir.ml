(* Statement-level CFG node payloads.

   The paper permits CFG nodes to be "basic blocks, statements, operations
   or instructions"; we lower MF77 to one node per simple statement, which
   matches the statement-level CFG of the paper's Figure 1.  Basic blocks
   are recovered from this graph when the naive profiling scheme needs them
   (see s89_profiling.Blocks). *)

type do_meta = {
  trip_var : string; (* compiler temp holding the remaining trip count *)
  static_trip : int option; (* trip count if lo/hi/step were constants *)
  do_var : string; (* the user's DO variable (for reporting) *)
}

type node =
  | Entry (* procedure entry marker; never has predecessors *)
  | Nop of string (* CONTINUE or a materialized GOTO; text for display *)
  | Assign of Ast.lvalue * Ast.expr
  | Branch of Ast.expr (* out-edges T / F *)
  | Do_test of do_meta (* header of a DO loop: T = body, F = exit;
                          semantically tests trip_var > 0 *)
  | Select of Ast.expr * int (* computed GOTO with n arms: Case 1..n, F = fallthrough *)
  | Call of string * Ast.expr list
  | Return
  | Stop
  | Print of Ast.expr list

type info = {
  ir : node;
  src_label : int option; (* the statement's numeric label, if any *)
}

let pp_node fmt = function
  | Entry -> Fmt.string fmt "ENTRY"
  | Nop s -> Fmt.string fmt s
  | Assign (lv, e) -> Fmt.pf fmt "%a = %a" Ast.pp_lvalue lv Ast.pp_expr e
  | Branch e -> Fmt.pf fmt "IF (%a)" Ast.pp_expr e
  | Do_test d -> Fmt.pf fmt "DO-TEST %s [%s > 0]" d.do_var d.trip_var
  | Select (e, n) -> Fmt.pf fmt "GOTO(%d-way), %a" n Ast.pp_expr e
  | Call (s, []) -> Fmt.pf fmt "CALL %s" s
  | Call (s, args) -> Fmt.pf fmt "CALL %s(%a)" s Fmt.(list ~sep:comma Ast.pp_expr) args
  | Return -> Fmt.string fmt "RETURN"
  | Stop -> Fmt.string fmt "STOP"
  | Print es -> Fmt.pf fmt "PRINT *, %a" Fmt.(list ~sep:comma Ast.pp_expr) es

let pp_info fmt { ir; src_label } =
  (match src_label with Some l -> Fmt.pf fmt "%d " l | None -> ());
  pp_node fmt ir

(* Expressions evaluated when this node executes (used by the cost model
   and by the interprocedural scan for function calls). *)
let exprs_of = function
  | Entry | Nop _ | Return | Stop -> []
  | Assign (Lvar _, e) -> [ e ]
  | Assign (Larr (_, idx), e) -> idx @ [ e ]
  | Branch e -> [ e ]
  | Do_test _ -> [] (* the trip test is charged as a branch by the cost model *)
  | Select (e, _) -> [ e ]
  | Call (_, args) -> args
  | Print es -> es
