(** Intrinsic function registry shared by semantic analysis (names and
    arities), the VM (implementations in {!S89_vm.Builtins}) and the cost
    model (cost classes). *)

type cost_class =
  | Cheap  (** ABS/MOD/MIN/MAX/conversions *)
  | Moderate  (** SIGN, RAND, ... *)
  | Expensive  (** SQRT/EXP/LOG/trig — many machine cycles *)

type info = {
  min_arity : int;
  max_arity : int;  (** [max_int] for the variadic MIN/MAX families *)
  cost : cost_class;
}

val table : (string * info) list
val lookup : string -> info option
val is_intrinsic : string -> bool

(** Result type under loose Fortran generic rules. *)
val result_type : string -> Ast.typ list -> Ast.typ
