(* Intrinsic functions shared between semantic analysis (names/arities),
   the VM (implementations live in s89_vm) and the cost model (cost
   classes).  The selection covers what the Livermore-style kernels and the
   SIMPLE-style code need. *)

type cost_class = Cheap | Moderate | Expensive
(* Cheap: ABS/MOD/MIN/MAX/conversions; Moderate: SIGN etc.;
   Expensive: SQRT/EXP/LOG/trig (many machine cycles on an IBM 3090 too) *)

type info = {
  min_arity : int;
  max_arity : int; (* max_int for variadic MIN/MAX *)
  cost : cost_class;
}

let table : (string * info) list =
  let f min_arity max_arity cost = { min_arity; max_arity; cost } in
  [
    ("ABS", f 1 1 Cheap);
    ("IABS", f 1 1 Cheap);
    ("SQRT", f 1 1 Expensive);
    ("EXP", f 1 1 Expensive);
    ("LOG", f 1 1 Expensive);
    ("ALOG", f 1 1 Expensive);
    ("SIN", f 1 1 Expensive);
    ("COS", f 1 1 Expensive);
    ("TAN", f 1 1 Expensive);
    ("ATAN", f 1 1 Expensive);
    ("MOD", f 2 2 Moderate);
    ("AMOD", f 2 2 Moderate);
    ("MIN", f 2 max_int Cheap);
    ("MAX", f 2 max_int Cheap);
    ("MIN0", f 2 max_int Cheap);
    ("MAX0", f 2 max_int Cheap);
    ("AMIN1", f 2 max_int Cheap);
    ("AMAX1", f 2 max_int Cheap);
    ("INT", f 1 1 Cheap);
    ("REAL", f 1 1 Cheap);
    ("FLOAT", f 1 1 Cheap);
    ("IFIX", f 1 1 Cheap);
    ("SIGN", f 2 2 Moderate);
    ("ISIGN", f 2 2 Moderate);
    (* pseudo-random intrinsics: the workload generators use these to vary
       branch outcomes and loop trip counts between profiled runs *)
    ("RAND", f 0 0 Moderate); (* uniform real in [0,1) *)
    ("IRAND", f 1 1 Moderate); (* uniform integer in [1,n] *)
  ]

let lookup name = List.assoc_opt name table

let is_intrinsic name = lookup name <> None

(* Result type, given the argument types (loose Fortran rules). *)
let result_type name (args : Ast.typ list) : Ast.typ =
  match name with
  | "IABS" | "MIN0" | "MAX0" | "INT" | "IFIX" | "MOD" | "ISIGN" | "IRAND" -> Ast.Tint
  | "SQRT" | "EXP" | "LOG" | "ALOG" | "SIN" | "COS" | "TAN" | "ATAN" | "AMOD"
  | "AMIN1" | "AMAX1" | "REAL" | "FLOAT" | "SIGN" | "RAND" ->
      Ast.Treal
  | "ABS" | "MIN" | "MAX" ->
      if List.exists (fun t -> t = Ast.Treal) args then Ast.Treal else Ast.Tint
  | _ -> Ast.Treal
