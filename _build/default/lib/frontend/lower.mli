(** Lowering: analyzed MF77 units → statement-level CFGs with T/F/U/Case
    edge labels (the paper's Figure 1 form).

    DO loops lower to trip-count form — the Fortran-77 semantics, and
    what makes the paper's third profiling optimization possible: the
    remaining trip count lives in a compiler temp fully computed before
    the header is first entered (see {!Ir.do_meta}).  Unreachable
    statements are pruned and irreducible flow is made reducible by node
    splitting, so every result satisfies {!S89_cfg.Cfg.validate} and the
    paper's reducibility assumption. *)

exception Error of string

(** Placeholder payload for synthetic nodes. *)
val dummy_info : Ir.info

(** Lower one analyzed unit. *)
val lower_unit : Sema.env -> Ir.info S89_cfg.Cfg.t
