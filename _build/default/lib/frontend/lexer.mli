(** Hand-written lexer for MF77: case-insensitive identifiers
    (canonicalized to upper case), dotted operators (.LT., .AND., ...),
    '!' comments, newline-terminated statements, '&' continuations
    (both at end of line and Fortran-style at start of the next). *)

type token =
  | ID of string  (** upper-cased identifier or keyword *)
  | INT of int
  | REALLIT of float
  | DOTOP of string  (** LT LE GT GE EQ NE AND OR NOT TRUE FALSE *)
  | LPAREN
  | RPAREN
  | COMMA
  | EQUALS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | POW  (** ** *)
  | NEWLINE
  | EOF

(** A token with its source line. *)
type t = { tok : token; line : int }

(** Lexical error: message and line. *)
exception Error of string * int

(** Render a token for error messages. *)
val token_str : token -> string

(** Tokenize a whole source file.  Always ends with [EOF]; blank lines
    collapse; a trailing [NEWLINE] is guaranteed before [EOF] when the
    input has any tokens. *)
val tokenize : string -> t list
