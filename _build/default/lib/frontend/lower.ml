(* Lowering: MF77 AST -> statement-level CFG (one node per simple
   statement, labels T/F/U/Case as in the paper's Figure 1).

   DO loops are lowered to trip-count form, the actual Fortran-77
   semantics, which is also what makes the paper's third profiling
   optimization possible: the remaining trip count lives in a compiler
   temp that is fully computed before the loop header is first entered, so
   a preheader probe can read it.

       I = lo
       [%STPk = step]                     (only when step is not a literal)
       %TRIPk = MAX0((hi - I + step)/step, 0)
   H:  DO-TEST (%TRIPk > 0)   --T--> body ... latch --U--> H
                              --F--> exit
       latch:  I = I + step ; %TRIPk = %TRIPk - 1

   Unreachable statements (e.g. after GOTO) are pruned, so Cfg.validate
   holds on the result. *)

open Ast
open S89_cfg

exception Error of string

let err fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type st = {
  cfg : Ir.info Cfg.t;
  label_node : (int, int) Hashtbl.t; (* statement label -> first node *)
  mutable pending : (int * Label.t * int) list; (* src, label, target stmt label *)
  mutable exits : int list; (* RETURN / STOP nodes *)
  mutable temp : int;
}

(* [pend]: out-edges of the code lowered so far, waiting for their target *)
type pend = (int * Label.t) list

let dummy_info = { Ir.ir = Ir.Nop "?"; src_label = None }

let new_node st ?src_label ir =
  Cfg.add_node st.cfg { Ir.ir; src_label }

let join st (incoming : pend) target =
  List.iter (fun (src, label) -> Cfg.add_edge st.cfg ~src ~dst:target ~label) incoming

let fresh_temp st prefix =
  st.temp <- st.temp + 1;
  Printf.sprintf "%%%s%d" prefix st.temp

let register_label st label node =
  match label with
  | None -> ()
  | Some l ->
      if Hashtbl.mem st.label_node l then err "duplicate label %d" l;
      Hashtbl.replace st.label_node l node

(* returns the out-pend of the statement *)
let rec lower_lstmt st (incoming : pend) (ls : lstmt) : pend =
  match ls.stmt with
  | Assign (lv, e) ->
      let n = new_node st ?src_label:ls.label (Ir.Assign (lv, e)) in
      register_label st ls.label n;
      join st incoming n;
      [ (n, Label.U) ]
  | Continue ->
      let n = new_node st ?src_label:ls.label (Ir.Nop "CONTINUE") in
      register_label st ls.label n;
      join st incoming n;
      [ (n, Label.U) ]
  | Print es ->
      let n = new_node st ?src_label:ls.label (Ir.Print es) in
      register_label st ls.label n;
      join st incoming n;
      [ (n, Label.U) ]
  | Call_stmt (name, args) ->
      let n = new_node st ?src_label:ls.label (Ir.Call (name, args)) in
      register_label st ls.label n;
      join st incoming n;
      [ (n, Label.U) ]
  | Return ->
      let n = new_node st ?src_label:ls.label Ir.Return in
      register_label st ls.label n;
      join st incoming n;
      st.exits <- n :: st.exits;
      []
  | Stop ->
      let n = new_node st ?src_label:ls.label Ir.Stop in
      register_label st ls.label n;
      join st incoming n;
      st.exits <- n :: st.exits;
      []
  | Goto target ->
      if ls.label = None then begin
        (* no node materialized: incoming edges go straight to the target,
           as in the paper's Figure 1 where "GOTO 10" is just an edge *)
        List.iter
          (fun (src, label) -> st.pending <- (src, label, target) :: st.pending)
          incoming;
        []
      end
      else begin
        let n = new_node st ?src_label:ls.label (Ir.Nop (Printf.sprintf "GOTO %d" target)) in
        register_label st ls.label n;
        join st incoming n;
        st.pending <- (n, Label.U, target) :: st.pending;
        []
      end
  | Cgoto (targets, e) ->
      let n = new_node st ?src_label:ls.label (Ir.Select (e, List.length targets)) in
      register_label st ls.label n;
      join st incoming n;
      List.iteri
        (fun i target -> st.pending <- (n, Label.Case (i + 1), target) :: st.pending)
        targets;
      (* out of range: fall through on F *)
      [ (n, Label.F) ]
  | If_logical (c, s) ->
      let b = new_node st ?src_label:ls.label (Ir.Branch c) in
      register_label st ls.label b;
      join st incoming b;
      let then_out = lower_lstmt st [ (b, Label.T) ] { label = None; stmt = s } in
      then_out @ [ (b, Label.F) ]
  | If_block (arms, else_) ->
      let rec chain incoming arms =
        match arms with
        | [] -> (
            match else_ with
            | Some blk -> lower_block st incoming blk
            | None -> incoming)
        | (c, blk) :: rest ->
            let b = new_node st (Ir.Branch c) in
            join st incoming b;
            let arm_out = lower_block st [ (b, Label.T) ] blk in
            let rest_out = chain [ (b, Label.F) ] rest in
            arm_out @ rest_out
      in
      (match arms with
      | [] -> err "empty IF block"
      | (c, blk) :: rest ->
          let b = new_node st ?src_label:ls.label (Ir.Branch c) in
          register_label st ls.label b;
          join st incoming b;
          let arm_out = lower_block st [ (b, Label.T) ] blk in
          let rest_out = chain [ (b, Label.F) ] rest in
          arm_out @ rest_out)
  | Do d ->
      let step = match d.do_step with Some s -> s | None -> Int 1 in
      let init = new_node st ?src_label:ls.label (Ir.Assign (Lvar d.do_var, d.do_lo)) in
      register_label st ls.label init;
      join st incoming init;
      (* step temp only when the step is not a literal *)
      let step_expr, step_out =
        match step with
        | Int _ | Real _ -> (step, [ (init, Label.U) ])
        | _ ->
            let stp = fresh_temp st "STP" in
            let n = new_node st (Ir.Assign (Lvar stp, step)) in
            join st [ (init, Label.U) ] n;
            (Var stp, [ (n, Label.U) ])
      in
      let trip_var = fresh_temp st "TRIP" in
      let trip_expr =
        Call
          ( "MAX0",
            [
              Binop
                ( Div,
                  Binop (Add, Binop (Sub, d.do_hi, Var d.do_var), step_expr),
                  step_expr );
              Int 0;
            ] )
      in
      let static_trip =
        match (d.do_lo, d.do_hi, step) with
        | Int lo, Int hi, Int s when s <> 0 -> Some (max ((hi - lo + s) / s) 0)
        | _ -> None
      in
      let tinit = new_node st (Ir.Assign (Lvar trip_var, trip_expr)) in
      join st step_out tinit;
      let header =
        new_node st (Ir.Do_test { trip_var; static_trip; do_var = d.do_var })
      in
      join st [ (tinit, Label.U) ] header;
      let body_out = lower_block st [ (header, Label.T) ] d.do_body in
      (* latch: increment, decrement trip, back to header *)
      if body_out <> [] then begin
        let inc =
          new_node st (Ir.Assign (Lvar d.do_var, Binop (Add, Var d.do_var, step_expr)))
        in
        join st body_out inc;
        let dec =
          new_node st (Ir.Assign (Lvar trip_var, Binop (Sub, Var trip_var, Int 1)))
        in
        join st [ (inc, Label.U) ] dec;
        join st [ (dec, Label.U) ] header
      end;
      [ (header, Label.F) ]

and lower_block st (incoming : pend) (blk : block) : pend =
  List.fold_left (fun inc ls -> lower_lstmt st inc ls) incoming blk

(* Rebuild the CFG keeping only nodes reachable from the entry. *)
let prune (cfg : Ir.info Cfg.t) : Ir.info Cfg.t =
  let open S89_graph in
  let g = Cfg.graph cfg in
  let num = Dfs.number g ~root:(Cfg.entry cfg) in
  let remap = Array.make (Cfg.num_nodes cfg) (-1) in
  let out = Cfg.create ~dummy:dummy_info in
  Cfg.iter_nodes
    (fun n ->
      if Dfs.reachable num n then
        remap.(n) <- Cfg.add_node ~ty:(Cfg.node_type cfg n) out (Cfg.info cfg n))
    cfg;
  Cfg.iter_edges
    (fun e ->
      if remap.(e.src) >= 0 && remap.(e.dst) >= 0 then
        Cfg.add_edge out ~src:remap.(e.src) ~dst:remap.(e.dst) ~label:e.label)
    cfg;
  Cfg.set_entry out remap.(Cfg.entry cfg);
  Cfg.set_exits out
    (List.filter_map
       (fun x -> if remap.(x) >= 0 then Some remap.(x) else None)
       (Cfg.exits cfg));
  out

let lower_unit (env : Sema.env) : Ir.info Cfg.t =
  let u = env.Sema.unit_ in
  let st =
    {
      cfg = Cfg.create ~dummy:dummy_info;
      label_node = Hashtbl.create 16;
      pending = [];
      exits = [];
      temp = 0;
    }
  in
  let entry = new_node st Ir.Entry in
  Cfg.set_entry st.cfg entry;
  let out = lower_block st [ (entry, Label.U) ] u.body in
  (* falling off END: STOP for a program, RETURN otherwise *)
  if out <> [] then begin
    let n =
      new_node st (match u.kind with Program -> Ir.Stop | _ -> Ir.Return)
    in
    join st out n;
    st.exits <- n :: st.exits
  end;
  (* resolve forward/backward GOTOs *)
  List.iter
    (fun (src, label, target) ->
      match Hashtbl.find_opt st.label_node target with
      | Some dst -> Cfg.add_edge st.cfg ~src ~dst ~label
      | None -> err "%s: GOTO to unknown label %d" u.name target)
    st.pending;
  Cfg.set_exits st.cfg (List.rev st.exits);
  let cfg = prune st.cfg in
  if Cfg.exits cfg = [] then err "%s: no reachable RETURN/STOP" u.name;
  (* unstructured GOTOs can produce irreducible flow; split nodes so that
     every proc CFG satisfies the paper's reducibility assumption *)
  (match Cfg.make_reducible cfg with
  | [] -> ()
  | _splits ->
      (* copies of RETURN/STOP nodes are additional exits *)
      let exits = ref [] in
      Cfg.iter_nodes
        (fun n ->
          match (Cfg.info cfg n).Ir.ir with
          | Ir.Return | Ir.Stop -> exits := n :: !exits
          | _ -> ())
        cfg;
      Cfg.set_exits cfg (List.rev !exits));
  (match Cfg.validate cfg with
  | Ok () -> ()
  | Error e -> err "%s: lowering produced an invalid CFG: %a" u.name Cfg.pp_error e);
  cfg
