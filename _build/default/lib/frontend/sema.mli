(** Semantic analysis for MF77: symbol tables (declared/implicit types,
    array dims, PARAMETER constants), resolution of parsed [Call] nodes
    into array references, PARAMETER substitution and folding, label and
    arity checking, light type checking. *)

type var_kind =
  | Scalar of Ast.typ
  | Array of Ast.typ * int list  (** dims; [-1] = assumed-size *)
  | Const of Ast.expr  (** PARAMETER: a literal after folding *)

(** One analyzed unit: the rewritten body plus its symbol table. *)
type env = {
  unit_ : Ast.program_unit;
  vars : (string, var_kind) Hashtbl.t;
      (** declared names only; undeclared names type implicitly *)
  result_var : string option;  (** for FUNCTIONs: the unit name *)
  labels : (int, unit) Hashtbl.t;
}

type program_env = {
  units : env list;
  by_name : (string, env) Hashtbl.t;
  main : string;  (** the unique PROGRAM unit *)
}

exception Error of string

(** Analyze a parsed program.
    @raise Error on any semantic violation *)
val analyze : Ast.program -> program_env

(** Parse + analyze in one step. *)
val parse_and_analyze : string -> program_env
