lib/frontend/program.mli: Ast Digraph Hashtbl Ir S89_cfg S89_graph Sema
