lib/frontend/lower.mli: Ir S89_cfg Sema
