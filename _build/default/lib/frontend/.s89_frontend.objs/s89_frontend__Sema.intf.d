lib/frontend/sema.mli: Ast Hashtbl
