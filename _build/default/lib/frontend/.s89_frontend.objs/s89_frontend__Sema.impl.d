lib/frontend/sema.ml: Ast Fmt Hashtbl Intrinsics List Option Parser
