lib/frontend/intrinsics.mli: Ast
