lib/frontend/ir.ml: Ast Fmt
