lib/frontend/lower.ml: Array Ast Cfg Dfs Fmt Hashtbl Ir Label List Printf S89_cfg S89_graph Sema
