lib/frontend/ast.mli: Format
