lib/frontend/intrinsics.ml: Ast List
