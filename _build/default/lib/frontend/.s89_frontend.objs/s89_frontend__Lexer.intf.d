lib/frontend/lexer.mli:
