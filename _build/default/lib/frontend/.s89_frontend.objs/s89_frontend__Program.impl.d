lib/frontend/program.ml: Array Ast Cfg Digraph Hashtbl Ir List Lower Printf S89_cfg S89_graph Sema Topo
