lib/frontend/lexer.ml: List Printf String
