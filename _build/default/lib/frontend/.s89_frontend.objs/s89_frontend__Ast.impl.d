lib/frontend/ast.ml: Buffer Fmt Format List Printf String
