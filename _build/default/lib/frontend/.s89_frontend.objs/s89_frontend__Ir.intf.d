lib/frontend/ir.mli: Ast Format
