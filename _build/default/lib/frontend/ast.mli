(** Abstract syntax of MF77, the Fortran-77-flavoured language this
    reproduction profiles.  The language deliberately includes
    unstructured control flow — GOTO, computed GOTO, conditional loop
    exits — because the paper's framework targets unstructured programs
    via control dependence rather than lexical nesting. *)

type typ = Tint | Treal | Tlogical

val pp_typ : Format.formatter -> typ -> unit

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Pow
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type expr =
  | Int of int
  | Real of float
  | Bool of bool
  | Var of string
  | Index of string * expr list
      (** array element, 1-based, column-major (resolved by Sema) *)
  | Call of string * expr list  (** intrinsic, user FUNCTION, or — before
      Sema — an unresolved array reference *)
  | Unop of unop * expr
  | Binop of binop * expr * expr

type lvalue = Lvar of string | Larr of string * expr list

(** Statements carry optional numeric labels (GOTO targets / DO
    terminators). *)
type stmt =
  | Assign of lvalue * expr
  | Goto of int
  | Cgoto of int list * expr  (** computed GOTO [(l1,...,ln), e] *)
  | If_logical of expr * stmt  (** logical IF: [IF (e) simple-stmt] *)
  | If_block of (expr * block) list * block option
      (** IF / ELSE IF ... / ELSE / ENDIF chain *)
  | Do of do_loop
  | Call_stmt of string * expr list
  | Return
  | Stop
  | Continue  (** no-op, usually a label target *)
  | Print of expr list

and do_loop = {
  do_var : string;
  do_lo : expr;
  do_hi : expr;
  do_step : expr option;  (** default 1 *)
  do_body : block;
}

and lstmt = { label : int option; stmt : stmt }
and block = lstmt list

type decl =
  | Dvar of typ * (string * int list) list
      (** [INTEGER A, B(10), C(10,20)]: names with dimensions ([[]] =
          scalar, [-1] = assumed-size [*]) *)
  | Dparam of (string * expr) list  (** [PARAMETER (N = 100, ...)] *)

type unit_kind = Program | Subroutine | Function of typ option

type program_unit = {
  kind : unit_kind;
  name : string;
  params : string list;
  decls : decl list;
  body : block;
}

type program = program_unit list

val unop_str : unop -> string
val binop_str : binop -> string

(** Operator precedence (used by the printer's parenthesization). *)
val binop_prec : binop -> int

val pp_expr : Format.formatter -> expr -> unit
val pp_lvalue : Format.formatter -> lvalue -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_lstmt : Format.formatter -> lstmt -> unit
val pp_decl : Format.formatter -> decl -> unit
val pp_unit : Format.formatter -> program_unit -> unit
val pp_program : Format.formatter -> program -> unit

(** Render as reparsable source (statements stay on one line):
    [Parser.parse_program (to_source p) = p] is property-tested. *)
val to_source : program -> string

(** Default Fortran implicit typing: I..N are INTEGER, the rest REAL. *)
val implicit_type : string -> typ
