(** Statement-level CFG node payloads: one node per simple statement, as
    in the paper's Figure 1 (the paper allows nodes to be "basic blocks,
    statements, operations or instructions"). *)

(** Metadata of a lowered DO loop, attached to its header ({!Do_test}). *)
type do_meta = {
  trip_var : string;  (** compiler temp holding the remaining trip count *)
  static_trip : int option;  (** trips when lo/hi/step were constants *)
  do_var : string;  (** the user's DO variable (for reporting) *)
}

type node =
  | Entry  (** procedure entry marker; never has predecessors *)
  | Nop of string  (** CONTINUE or a materialized GOTO; text for display *)
  | Assign of Ast.lvalue * Ast.expr
  | Branch of Ast.expr  (** out-edges T / F *)
  | Do_test of do_meta  (** DO header: T = body, F = exit; tests trip > 0 *)
  | Select of Ast.expr * int  (** computed GOTO, n arms: Case 1..n, F = fallthrough *)
  | Call of string * Ast.expr list
  | Return
  | Stop
  | Print of Ast.expr list

type info = {
  ir : node;
  src_label : int option;  (** the statement's numeric label, if any *)
}

val pp_node : Format.formatter -> node -> unit
val pp_info : Format.formatter -> info -> unit

(** Expressions evaluated when the node executes (cost model and
    interprocedural call scan). *)
val exprs_of : node -> Ast.expr list
