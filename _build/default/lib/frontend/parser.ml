(* Hand-written recursive-descent parser for MF77 (menhir is not available
   in this environment, and the grammar is line-oriented anyway).

   Notable Fortran-isms handled here:
   - statement labels: a leading integer on a line;
   - labeled DO loops ("DO 10 I = 1, N ... 10 CONTINUE"), including several
     DO loops sharing one terminator, threaded through the parser state via
     [consumed_label];
   - logical IF vs. block IF disambiguated by the token after the closing
     parenthesis;
   - computed GOTO "GOTO (10, 20, 30), I". *)

open Ast

exception Parse_error of string * int

type state = {
  toks : Lexer.t array;
  mutable pos : int;
  mutable consumed_label : int option;
      (* label of the most recently consumed labeled-DO terminator, so an
         enclosing DO sharing the label can terminate too *)
}

let keywords =
  [ "IF"; "THEN"; "ELSE"; "ELSEIF"; "ENDIF"; "DO"; "ENDDO"; "GOTO"; "GO";
    "CALL"; "RETURN"; "STOP"; "CONTINUE"; "PRINT"; "PROGRAM"; "SUBROUTINE";
    "FUNCTION"; "END"; "INTEGER"; "REAL"; "LOGICAL"; "PARAMETER" ]

let is_keyword s = List.mem s keywords

let peek st = st.toks.(st.pos).Lexer.tok
let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).Lexer.tok
  else Lexer.EOF

let line st = st.toks.(st.pos).Lexer.line
let advance st = st.pos <- st.pos + 1

let fail st msg = raise (Parse_error (msg, line st))

let expect st tok =
  if peek st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s, found %s" (Lexer.token_str tok)
         (Lexer.token_str (peek st)))

let expect_id st =
  match peek st with
  | Lexer.ID s -> advance st; s
  | t -> fail st (Printf.sprintf "expected identifier, found %s" (Lexer.token_str t))

let expect_int st =
  match peek st with
  | Lexer.INT i -> advance st; i
  | t -> fail st (Printf.sprintf "expected integer, found %s" (Lexer.token_str t))

let expect_kw st kw =
  match peek st with
  | Lexer.ID s when s = kw -> advance st
  | t -> fail st (Printf.sprintf "expected %s, found %s" kw (Lexer.token_str t))

let at_kw st kw = match peek st with Lexer.ID s -> s = kw | _ -> false

let skip_newlines st =
  while peek st = Lexer.NEWLINE do
    advance st
  done

let end_of_stmt st =
  match peek st with
  | Lexer.NEWLINE -> advance st
  | Lexer.EOF -> ()
  | t -> fail st (Printf.sprintf "trailing tokens: %s" (Lexer.token_str t))

(* ---------------- expressions ---------------- *)

(* precedence climbing; levels match Ast.binop_prec *)
let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while peek st = Lexer.DOTOP "OR" do
    advance st;
    let rhs = parse_and st in
    lhs := Binop (Or, !lhs, rhs)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_not st) in
  while peek st = Lexer.DOTOP "AND" do
    advance st;
    let rhs = parse_not st in
    lhs := Binop (And, !lhs, rhs)
  done;
  !lhs

and parse_not st =
  if peek st = Lexer.DOTOP "NOT" then begin
    advance st;
    Unop (Not, parse_not st)
  end
  else parse_rel st

and parse_rel st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | Lexer.DOTOP "LT" -> Some Lt
    | Lexer.DOTOP "LE" -> Some Le
    | Lexer.DOTOP "GT" -> Some Gt
    | Lexer.DOTOP "GE" -> Some Ge
    | Lexer.DOTOP "EQ" -> Some Eq
    | Lexer.DOTOP "NE" -> Some Ne
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      let rhs = parse_add st in
      Binop (op, lhs, rhs)

and parse_add st =
  (* unary +/- bind at additive level, looser than ** (Fortran rule) *)
  let first =
    match peek st with
    | Lexer.MINUS ->
        advance st;
        Unop (Neg, parse_mul st)
    | Lexer.PLUS ->
        advance st;
        parse_mul st
    | _ -> parse_mul st
  in
  let lhs = ref first in
  let rec loop () =
    match peek st with
    | Lexer.PLUS ->
        advance st;
        lhs := Binop (Add, !lhs, parse_mul st);
        loop ()
    | Lexer.MINUS ->
        advance st;
        lhs := Binop (Sub, !lhs, parse_mul st);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_mul st =
  let lhs = ref (parse_pow st) in
  let rec loop () =
    match peek st with
    | Lexer.STAR ->
        advance st;
        lhs := Binop (Mul, !lhs, parse_pow st);
        loop ()
    | Lexer.SLASH ->
        advance st;
        lhs := Binop (Div, !lhs, parse_pow st);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_pow st =
  let base = parse_primary st in
  if peek st = Lexer.POW then begin
    advance st;
    (* right-associative; exponent may be signed: X ** -2 *)
    let exp =
      match peek st with
      | Lexer.MINUS ->
          advance st;
          Unop (Neg, parse_pow st)
      | _ -> parse_pow st
    in
    Binop (Pow, base, exp)
  end
  else base

and parse_primary st =
  match peek st with
  | Lexer.INT i -> advance st; Int i
  | Lexer.REALLIT r -> advance st; Real r
  | Lexer.DOTOP "TRUE" -> advance st; Bool true
  | Lexer.DOTOP "FALSE" -> advance st; Bool false
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      e
  | Lexer.ID name ->
      advance st;
      if peek st = Lexer.LPAREN then begin
        advance st;
        let args =
          if peek st = Lexer.RPAREN then [] (* zero-argument call, e.g. RAND() *)
          else parse_expr_list st
        in
        expect st Lexer.RPAREN;
        (* array reference or function call: resolved by Sema *)
        Call (name, args)
      end
      else Var name
  | t -> fail st (Printf.sprintf "expected expression, found %s" (Lexer.token_str t))

and parse_expr_list st =
  let e = parse_expr st in
  if peek st = Lexer.COMMA then begin
    advance st;
    e :: parse_expr_list st
  end
  else [ e ]

(* ---------------- statements ---------------- *)

(* GOTO or GO TO, positioned after it *)
let try_goto st =
  if at_kw st "GOTO" then begin
    advance st;
    true
  end
  else if at_kw st "GO" && peek2 st = Lexer.ID "TO" then begin
    advance st;
    advance st;
    true
  end
  else false

let rec parse_simple_stmt st : stmt =
  (* statements legal as the body of a logical IF *)
  if try_goto st then parse_goto_tail st
  else if at_kw st "CALL" then parse_call st
  else if at_kw st "RETURN" then (advance st; Return)
  else if at_kw st "STOP" then (advance st; Stop)
  else if at_kw st "CONTINUE" then (advance st; Continue)
  else if at_kw st "PRINT" then parse_print st
  else begin
    match peek st with
    | Lexer.ID name when not (is_keyword name) ->
        advance st;
        let lhs =
          if peek st = Lexer.LPAREN then begin
            advance st;
            let idx = parse_expr_list st in
            expect st Lexer.RPAREN;
            Larr (name, idx)
          end
          else Lvar name
        in
        expect st Lexer.EQUALS;
        let rhs = parse_expr st in
        Assign (lhs, rhs)
    | t -> fail st (Printf.sprintf "expected statement, found %s" (Lexer.token_str t))
  end

and parse_goto_tail st : stmt =
  match peek st with
  | Lexer.INT _ -> Goto (expect_int st)
  | Lexer.LPAREN ->
      advance st;
      let rec labels () =
        let l = expect_int st in
        if peek st = Lexer.COMMA then begin
          advance st;
          l :: labels ()
        end
        else [ l ]
      in
      let ls = labels () in
      expect st Lexer.RPAREN;
      if peek st = Lexer.COMMA then advance st;
      let e = parse_expr st in
      Cgoto (ls, e)
  | t -> fail st (Printf.sprintf "expected label after GOTO, found %s" (Lexer.token_str t))

and parse_call st : stmt =
  expect_kw st "CALL";
  let name = expect_id st in
  if peek st = Lexer.LPAREN then begin
    advance st;
    if peek st = Lexer.RPAREN then begin
      advance st;
      Call_stmt (name, [])
    end
    else begin
      let args = parse_expr_list st in
      expect st Lexer.RPAREN;
      Call_stmt (name, args)
    end
  end
  else Call_stmt (name, [])

and parse_print st : stmt =
  expect_kw st "PRINT";
  expect st Lexer.STAR;
  if peek st = Lexer.COMMA then begin
    advance st;
    Print (parse_expr_list st)
  end
  else Print []

(* Is the upcoming line "END" / "ENDIF" / "ELSE" / "ENDDO" / "END IF" ... ?
   Used as a block terminator test; tolerates a leading label (F77 allows
   labels on END etc., though we only use them on real statements). *)
let rec at_block_end st =
  match peek st with
  | Lexer.ID ("ENDIF" | "ENDDO" | "ELSE" | "ELSEIF" | "END") -> true
  | Lexer.INT _ -> (
      match peek2 st with
      | Lexer.ID ("ENDIF" | "ENDDO" | "ELSE" | "ELSEIF" | "END") -> true
      | _ -> false)
  | Lexer.EOF -> true
  | _ -> false

(* Parse one (possibly labeled) statement. *)
and parse_lstmt st : lstmt =
  let label =
    match peek st with
    | Lexer.INT l when peek2 st <> Lexer.EQUALS ->
        advance st;
        Some l
    | _ -> None
  in
  let stmt = parse_stmt st in
  { label; stmt }

and parse_stmt st : stmt =
  if at_kw st "IF" then begin
    advance st;
    expect st Lexer.LPAREN;
    let cond = parse_expr st in
    expect st Lexer.RPAREN;
    if at_kw st "THEN" then begin
      advance st;
      end_of_stmt st;
      parse_if_block st [ (cond, parse_block st) ]
    end
    else begin
      let s = parse_simple_stmt st in
      end_of_stmt st;
      If_logical (cond, s)
    end
  end
  else if at_kw st "DO" then parse_do st
  else begin
    let s = parse_simple_stmt st in
    end_of_stmt st;
    s
  end

(* after "IF (c) THEN <NL> block", positioned at ELSE/ELSEIF/ENDIF *)
and parse_if_block st arms : stmt =
  skip_newlines st;
  if at_kw st "ELSEIF" || (at_kw st "ELSE" && peek2 st = Lexer.ID "IF") then begin
    if at_kw st "ELSEIF" then advance st
    else begin
      advance st;
      advance st
    end;
    expect st Lexer.LPAREN;
    let cond = parse_expr st in
    expect st Lexer.RPAREN;
    expect_kw st "THEN";
    end_of_stmt st;
    parse_if_block st ((cond, parse_block st) :: arms)
  end
  else if at_kw st "ELSE" then begin
    advance st;
    end_of_stmt st;
    let blk = parse_block st in
    skip_newlines st;
    parse_endif st;
    If_block (List.rev arms, Some blk)
  end
  else begin
    parse_endif st;
    If_block (List.rev arms, None)
  end

and parse_endif st =
  if at_kw st "ENDIF" then advance st
  else if at_kw st "END" && peek2 st = Lexer.ID "IF" then begin
    advance st;
    advance st
  end
  else fail st "expected ENDIF";
  end_of_stmt st

and parse_do st : stmt =
  expect_kw st "DO";
  let term_label =
    match peek st with Lexer.INT _ -> Some (expect_int st) | _ -> None
  in
  let var = expect_id st in
  expect st Lexer.EQUALS;
  let lo = parse_expr st in
  expect st Lexer.COMMA;
  let hi = parse_expr st in
  let step =
    if peek st = Lexer.COMMA then begin
      advance st;
      Some (parse_expr st)
    end
    else None
  in
  end_of_stmt st;
  let body =
    match term_label with
    | None ->
        let blk = parse_block st in
        skip_newlines st;
        if at_kw st "ENDDO" then advance st
        else if at_kw st "END" && peek2 st = Lexer.ID "DO" then begin
          advance st;
          advance st
        end
        else fail st "expected ENDDO";
        end_of_stmt st;
        blk
    | Some target -> parse_labeled_do_body st target
  in
  Do { do_var = var; do_lo = lo; do_hi = hi; do_step = step; do_body = body }

(* Body of "DO <label> ..." — statements up to and including the statement
   labeled <label>.  A nested DO sharing the terminator consumes it and
   signals through [consumed_label]. *)
and parse_labeled_do_body st target : block =
  skip_newlines st;
  if peek st = Lexer.EOF then fail st (Printf.sprintf "missing DO terminator %d" target)
  else begin
    let ls = parse_lstmt st in
    let terminated_here = ls.label = Some target in
    let terminated_inner = st.consumed_label = Some target in
    if terminated_here then begin
      st.consumed_label <- Some target;
      [ ls ]
    end
    else if terminated_inner then [ ls ] (* nested DO consumed our terminator *)
    else ls :: parse_labeled_do_body st target
  end

and parse_block st : block =
  skip_newlines st;
  if at_block_end st then []
  else begin
    let ls = parse_lstmt st in
    ls :: parse_block st
  end

(* ---------------- declarations & program units ---------------- *)

let parse_typ st =
  if at_kw st "INTEGER" then (advance st; Tint)
  else if at_kw st "REAL" then (advance st; Treal)
  else if at_kw st "LOGICAL" then (advance st; Tlogical)
  else fail st "expected type"

let at_typ st = at_kw st "INTEGER" || at_kw st "REAL" || at_kw st "LOGICAL"

let parse_dims st =
  if peek st = Lexer.LPAREN then begin
    advance st;
    let rec dims () =
      let d =
        match peek st with
        | Lexer.STAR ->
            advance st;
            -1 (* assumed-size *)
        | _ -> expect_int st
      in
      if peek st = Lexer.COMMA then begin
        advance st;
        d :: dims ()
      end
      else [ d ]
    in
    let ds = dims () in
    expect st Lexer.RPAREN;
    ds
  end
  else []

let parse_decl st : decl option =
  if at_typ st && peek2 st <> Lexer.ID "FUNCTION" then begin
    let ty = parse_typ st in
    let rec names () =
      let n = expect_id st in
      let dims = parse_dims st in
      if peek st = Lexer.COMMA then begin
        advance st;
        (n, dims) :: names ()
      end
      else [ (n, dims) ]
    in
    let ns = names () in
    end_of_stmt st;
    Some (Dvar (ty, ns))
  end
  else if at_kw st "PARAMETER" then begin
    advance st;
    expect st Lexer.LPAREN;
    let rec pairs () =
      let n = expect_id st in
      expect st Lexer.EQUALS;
      let e = parse_expr st in
      if peek st = Lexer.COMMA then begin
        advance st;
        (n, e) :: pairs ()
      end
      else [ (n, e) ]
    in
    let ps = pairs () in
    expect st Lexer.RPAREN;
    end_of_stmt st;
    Some (Dparam ps)
  end
  else None

let parse_params st =
  if peek st = Lexer.LPAREN then begin
    advance st;
    if peek st = Lexer.RPAREN then begin
      advance st;
      []
    end
    else begin
      let rec ps () =
        let p = expect_id st in
        if peek st = Lexer.COMMA then begin
          advance st;
          p :: ps ()
        end
        else [ p ]
      in
      let ps = ps () in
      expect st Lexer.RPAREN;
      ps
    end
  end
  else []

let parse_unit st : program_unit =
  skip_newlines st;
  let kind, name, params =
    if at_kw st "PROGRAM" then begin
      advance st;
      let n = expect_id st in
      end_of_stmt st;
      (Program, n, [])
    end
    else if at_kw st "SUBROUTINE" then begin
      advance st;
      let n = expect_id st in
      let ps = parse_params st in
      end_of_stmt st;
      (Subroutine, n, ps)
    end
    else if at_kw st "FUNCTION" then begin
      advance st;
      let n = expect_id st in
      let ps = parse_params st in
      end_of_stmt st;
      (Function None, n, ps)
    end
    else if at_typ st && peek2 st = Lexer.ID "FUNCTION" then begin
      let ty = parse_typ st in
      expect_kw st "FUNCTION";
      let n = expect_id st in
      let ps = parse_params st in
      end_of_stmt st;
      (Function (Some ty), n, ps)
    end
    else fail st "expected PROGRAM, SUBROUTINE or FUNCTION"
  in
  skip_newlines st;
  let decls = ref [] in
  let rec decl_loop () =
    skip_newlines st;
    match parse_decl st with
    | Some d ->
        decls := d :: !decls;
        decl_loop ()
    | None -> ()
  in
  decl_loop ();
  let body = parse_block st in
  skip_newlines st;
  (* plain END (not ENDIF/ENDDO, which at_block_end also accepts) *)
  if at_kw st "END" && peek2 st <> Lexer.ID "IF" && peek2 st <> Lexer.ID "DO" then begin
    advance st;
    end_of_stmt st
  end
  else fail st "expected END";
  { kind; name; params; decls = List.rev !decls; body }

let parse_program (src : string) : program =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0; consumed_label = None } in
  let units = ref [] in
  skip_newlines st;
  while peek st <> Lexer.EOF do
    units := parse_unit st :: !units;
    skip_newlines st
  done;
  List.rev !units
