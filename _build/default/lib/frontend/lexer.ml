(* Hand-written lexer for MF77.

   Free-format tokens with Fortran flavour: case-insensitive identifiers
   (canonicalized to upper case), dotted operators (.LT., .AND., ...),
   '!' comments, newline-terminated statements, '&' continuation at end of
   line.  The classic "1.AND.2" ambiguity is resolved by looking ahead for
   a known dotted word before committing the '.' to a numeric literal. *)

type token =
  | ID of string
  | INT of int
  | REALLIT of float
  | DOTOP of string (* LT LE GT GE EQ NE AND OR NOT TRUE FALSE *)
  | LPAREN
  | RPAREN
  | COMMA
  | EQUALS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | POW (* ** *)
  | NEWLINE
  | EOF

type t = { tok : token; line : int }

exception Error of string * int (* message, line *)

let dotted_words =
  [ "LT"; "LE"; "GT"; "GE"; "EQ"; "NE"; "AND"; "OR"; "NOT"; "TRUE"; "FALSE" ]

let token_str = function
  | ID s -> s
  | INT i -> string_of_int i
  | REALLIT r -> string_of_float r
  | DOTOP s -> "." ^ s ^ "."
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | EQUALS -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | POW -> "**"
  | NEWLINE -> "<newline>"
  | EOF -> "<eof>"

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident_char c = is_alpha c || is_digit c || c = '_' || c = '%'

(* Does a known dotted word start at position [i] (just past a '.')? *)
let dotted_word_at s i =
  let n = String.length s in
  let j = ref i in
  while !j < n && is_alpha s.[!j] do
    incr j
  done;
  if !j < n && s.[!j] = '.' && !j > i then begin
    let w = String.uppercase_ascii (String.sub s i (!j - i)) in
    if List.mem w dotted_words then Some (w, !j + 1) else None
  end
  else None

let tokenize (src : string) : t list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let push tok = toks := { tok; line = !line } :: !toks in
  let last_tok () = match !toks with [] -> None | t :: _ -> Some t.tok in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '!' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '\n' then begin
      (* '&' just before the newline means continuation: drop both *)
      (match last_tok () with
      | Some NEWLINE | None -> () (* collapse blank lines *)
      | Some _ -> push NEWLINE);
      incr line;
      incr i
    end
    else if c = '&' then begin
      (* continuation marker: either at end of line (skip it and the
         newline), or at start of a line (retract the previous NEWLINE) *)
      incr i;
      let j = ref !i in
      while !j < n && (src.[!j] = ' ' || src.[!j] = '\t' || src.[!j] = '\r') do
        incr j
      done;
      if !j < n && src.[!j] = '\n' then begin
        incr line;
        i := !j + 1
      end
      else
        match !toks with
        | { tok = NEWLINE; _ } :: rest -> toks := rest
        | _ -> raise (Error ("misplaced '&'", !line))
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      (* numeric literal; watch for dotted-op lookahead *)
      let start = !i in
      let is_real = ref false in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      (if !i < n && src.[!i] = '.' then
         match dotted_word_at src (!i + 1) with
         | Some _ -> () (* "1.AND." : stop the number before the dot *)
         | None ->
             is_real := true;
             incr i;
             while !i < n && is_digit src.[!i] do
               incr i
             done);
      (if !i < n && (src.[!i] = 'e' || src.[!i] = 'E' || src.[!i] = 'd' || src.[!i] = 'D')
       then
         let j = ref (!i + 1) in
         if !j < n && (src.[!j] = '+' || src.[!j] = '-') then incr j;
         if !j < n && is_digit src.[!j] then begin
           is_real := true;
           incr j;
           while !j < n && is_digit src.[!j] do
             incr j
           done;
           i := !j
         end);
      let text = String.sub src start (!i - start) in
      let text = String.map (function 'd' | 'D' -> 'e' | ch -> ch) text in
      if !is_real then push (REALLIT (float_of_string text))
      else push (INT (int_of_string text))
    end
    else if c = '.' then begin
      match dotted_word_at src (!i + 1) with
      | Some (w, next) ->
          push (DOTOP w);
          i := next
      | None -> raise (Error ("stray '.'", !line))
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      push (ID (String.uppercase_ascii (String.sub src start (!i - start))))
    end
    else begin
      match c with
      | '(' -> push LPAREN; incr i
      | ')' -> push RPAREN; incr i
      | ',' -> push COMMA; incr i
      | '=' -> push EQUALS; incr i
      | '+' -> push PLUS; incr i
      | '-' -> push MINUS; incr i
      | '*' ->
          if !i + 1 < n && src.[!i + 1] = '*' then begin
            push POW;
            i := !i + 2
          end
          else begin
            push STAR;
            incr i
          end
      | '/' -> push SLASH; incr i
      | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, !line))
    end
  done;
  (match last_tok () with
  | Some NEWLINE | None -> ()
  | Some _ -> push NEWLINE);
  push EOF;
  List.rev !toks
