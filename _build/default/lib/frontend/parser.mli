(** Hand-written recursive-descent parser for MF77.

    Handles statement labels, labeled DO loops (including several DO
    loops sharing one terminator), logical vs. block IF, ELSE IF chains,
    computed GOTO, GO TO spelling, END IF / END DO spellings, and
    declarations (typed, dimensioned, PARAMETER).  Array references in
    expressions parse as [Ast.Call] and are resolved by {!Sema}. *)

(** Parse error: message and source line. *)
exception Parse_error of string * int

(** Parse a whole source file (one or more program units).
    @raise Parse_error on syntax errors
    @raise Lexer.Error on lexical errors *)
val parse_program : string -> Ast.program
