(** Streaming statistics (Welford): numerically stable mean/variance
    accumulation, used to compare estimated TIME/VAR against empirical
    moments over many VM runs. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int

(** Mean ([nan] when empty). *)
val mean : t -> float

(** Population variance [E(X²) − E(X)²] — the paper's definition. *)
val variance : t -> float

(** Unbiased sample variance ([nan] below 2 samples). *)
val variance_sample : t -> float

val std_dev : t -> float
val min : t -> float
val max : t -> float
val of_list : float list -> t
val pp : Format.formatter -> t -> unit

(** [rel_err a b = |a−b| / max(|b|, eps)]. *)
val rel_err : ?eps:float -> float -> float -> float
