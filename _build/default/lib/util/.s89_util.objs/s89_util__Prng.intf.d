lib/util/prng.mli:
