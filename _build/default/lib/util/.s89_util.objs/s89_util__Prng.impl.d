lib/util/prng.ml: Float Int64
