lib/util/stats.ml: Float Fmt List Stdlib
