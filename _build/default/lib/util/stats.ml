(* Streaming statistics (Welford's algorithm): numerically stable mean and
   variance accumulation.  Used to compare the paper's estimated
   TIME/VAR against empirical means/variances over many VM runs, and by
   the parallel-loop simulator. *)

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n
let mean t = if t.n = 0 then nan else t.mean

(* population variance: E[X^2] - E[X]^2, matching the paper's definition *)
let variance t = if t.n = 0 then nan else t.m2 /. float_of_int t.n

(* unbiased sample variance *)
let variance_sample t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)
let std_dev t = sqrt (variance t)
let min t = t.min
let max t = t.max

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let pp fmt t =
  Fmt.pf fmt "n=%d mean=%.4g std=%.4g min=%.4g max=%.4g" t.n (mean t) (std_dev t)
    t.min t.max

(* relative error |a-b| / max(|b|, eps) *)
let rel_err ?(eps = 1e-12) a b = Float.abs (a -. b) /. Stdlib.max (Float.abs b) eps
