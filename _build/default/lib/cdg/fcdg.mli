(** Forward control dependence graph: the CDG with loop-carried (back)
    edges removed — a DAG rooted at START (paper §2). *)

open S89_graph
open S89_cfg

(** Raised when back-edge removal does not leave a rooted DAG. *)
exception Malformed of string

type t

(** Build the FCDG from a precomputed CDG. *)
val of_cdg : Control_dep.t -> 'a Ecfg.t -> t

(** Compute CDG and FCDG in one step. *)
val compute : 'a Ecfg.t -> t

(** The acyclic graph; edge [(u,v,l)] makes [v] a child of condition [(u,l)]. *)
val graph : t -> Label.t Digraph.t

val start : t -> int
val stop : t -> int

(** The CDG back edges that were removed. *)
val removed_back_edges : t -> Label.t Digraph.edge list

(** All nodes in topological order (START first) — the top-down pass order. *)
val topological : t -> int array

(** All nodes in reverse topological order — the bottom-up pass order. *)
val bottom_up : t -> int array

val out_edges : t -> int -> Label.t Digraph.edge list
val in_edges : t -> int -> Label.t Digraph.edge list

(** [L(u)]: distinct labels leaving [u], in first-appearance order. *)
val labels : t -> int -> Label.t list

(** [C(u,l)]: children of [u] under label [l]. *)
val children : t -> int -> Label.t -> int list

(** Children grouped by label. *)
val children_by_label : t -> int -> (Label.t * int list) list

(** The control conditions [{(u,l)}] of §3, deterministically ordered. *)
val control_conditions : t -> (int * Label.t) list

val pp : Format.formatter -> t -> unit
