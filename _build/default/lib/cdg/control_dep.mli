(** Control dependence graphs (Definition 2, after
    Ferrante–Ottenstein–Warren), computed from an ECFG via its
    postdominator tree. *)

open S89_graph
open S89_cfg

(** Raised when some node has no path to STOP (the paper assumes normal
    termination); carries the stuck nodes. *)
exception Cannot_reach_stop of int list

type t

(** Compute the (possibly cyclic) control dependence graph of an ECFG.
    Edge [(x, y, l)] means: [y] is control dependent on condition [(x,l)]. *)
val compute : 'a Ecfg.t -> t

(** The CDG as a labelled multigraph (same node ids as the ECFG). *)
val graph : t -> Label.t Digraph.t

(** The postdominator tree of the ECFG used in the construction. *)
val postdom : t -> Postdom.t

(** Definitional membership check (independent of the tree walk; used as a
    testing oracle): [y] is CD on [(x,l)] iff some edge [(x,s,l)] has
    [y] postdominating [s] but not [x]. *)
val is_control_dependent : t -> 'a Ecfg.t -> on:int * Label.t -> int -> bool
