lib/cdg/fcdg.ml: Array Cfg Control_dep Dfs Digraph Ecfg Fmt Label List S89_cfg S89_graph Topo
