lib/cdg/control_dep.mli: Digraph Ecfg Label Postdom S89_cfg S89_graph
