lib/cdg/fcdg.mli: Control_dep Digraph Ecfg Format Label S89_cfg S89_graph
