lib/cdg/control_dep.ml: Cfg Digraph Ecfg Hashtbl Label List Postdom S89_cfg S89_graph
