(* Forward control dependence graph (paper §2, after Hsieh / CHH89):
   "an acyclic form of the control dependence graph obtained by ignoring
   all back edges in CDG."

   A CDG edge is loop-carried (a back edge) exactly when its witnessing
   control-flow path crosses a CFG back edge, which for a reducible ECFG is
   equivalent to the target not coming strictly later in reverse postorder
   of the ECFG.  We therefore drop CDG edges (u,v) with rpo(v) <= rpo(u)
   and check the result is a rooted DAG; if the check ever failed we would
   fall back to removing retreating edges of a DFS of the CDG itself. *)

open S89_graph
open S89_cfg

exception Malformed of string

type t = {
  g : Label.t Digraph.t; (* acyclic; edge (u,v,l): v is a child of condition (u,l) *)
  start : int;
  stop : int;
  topo : int array; (* all nodes, topological order (START first) *)
  back : Label.t Digraph.edge list; (* the removed CDG back edges *)
}

let prune_by_rpo ~rpo cdg =
  let g = Digraph.create () in
  ignore (Digraph.add_nodes g (Digraph.num_nodes cdg));
  let back = ref [] in
  Digraph.iter_edges
    (fun (e : Label.t Digraph.edge) ->
      if rpo.(e.dst) > rpo.(e.src) then
        ignore (Digraph.add_edge g ~src:e.src ~dst:e.dst ~label:e.label)
      else back := e :: !back)
    cdg;
  (g, List.rev !back)

let prune_by_dfs ~start cdg =
  let num = Dfs.number cdg ~root:start in
  let g = Digraph.create () in
  ignore (Digraph.add_nodes g (Digraph.num_nodes cdg));
  let back = ref [] in
  Digraph.iter_edges
    (fun (e : Label.t Digraph.edge) ->
      if
        Dfs.reachable num e.Digraph.src
        && Dfs.reachable num e.dst
        && Dfs.classify num e = Dfs.Back
      then back := e :: !back
      else ignore (Digraph.add_edge g ~src:e.src ~dst:e.dst ~label:e.label))
    cdg;
  (g, List.rev !back)

(* Well-formedness from §2: the FCDG "is rooted and connected" — every node
   except STOP hangs under START — and acyclic. *)
let well_formed ~start ~stop g =
  match Topo.sort_opt g with
  | None -> false
  | Some _ ->
      let num = Dfs.number g ~root:start in
      let ok = ref true in
      Digraph.iter_nodes
        (fun v -> if v <> stop && not (Dfs.reachable num v) then ok := false)
        g;
      !ok

let of_cdg (cd : Control_dep.t) (ecfg : 'a Ecfg.t) =
  let start = Ecfg.start ecfg and stop = Ecfg.stop ecfg in
  let ecfg_graph = Cfg.graph (Ecfg.cfg ecfg) in
  let rpo = Dfs.rpo_index ecfg_graph ~root:start in
  let cdg = Control_dep.graph cd in
  let g, back = prune_by_rpo ~rpo cdg in
  let g, back =
    if well_formed ~start ~stop g then (g, back)
    else begin
      let g', back' = prune_by_dfs ~start cdg in
      if well_formed ~start ~stop g' then (g', back')
      else
        raise
          (Malformed
             "FCDG is not a rooted DAG after back-edge removal; input CFG is \
              not in the form the paper assumes")
    end
  in
  let topo = Topo.sort g in
  { g; start; stop; topo; back }

let compute ecfg = of_cdg (Control_dep.compute ecfg) ecfg

let graph t = t.g
let start t = t.start
let stop t = t.stop
let removed_back_edges t = t.back

(* Topological order over all nodes: visit for the top-down FREQ pass. *)
let topological t = t.topo

(* Bottom-up order for the TIME/VAR passes. *)
let bottom_up t =
  let n = Array.length t.topo in
  Array.init n (fun i -> t.topo.(n - 1 - i))

let out_edges t u = Digraph.succ_edges t.g u
let in_edges t u = Digraph.pred_edges t.g u

(* L(u): the distinct labels leaving u in FCDG, in first-appearance order. *)
let labels t u =
  List.fold_left
    (fun acc (e : Label.t Digraph.edge) ->
      if List.exists (Label.equal e.label) acc then acc else e.label :: acc)
    [] (out_edges t u)
  |> List.rev

(* C(u,l): children of u under label l. *)
let children t u l =
  List.filter_map
    (fun (e : Label.t Digraph.edge) ->
      if Label.equal e.label l then Some e.dst else None)
    (out_edges t u)

(* Children grouped by label: [(l, C(u,l)); ...]. *)
let children_by_label t u =
  List.map (fun l -> (l, children t u l)) (labels t u)

(* The control conditions {(u,l) | (u,v,l) in E_f} of §3, in a
   deterministic order (by source node, then label first-appearance). *)
let control_conditions t =
  let acc = ref [] in
  Digraph.iter_nodes
    (fun u -> List.iter (fun l -> acc := (u, l) :: !acc) (labels t u))
    t.g;
  List.rev !acc

let pp fmt t =
  Fmt.pf fmt "@[<v>FCDG (START=%d, STOP=%d):" t.start t.stop;
  Digraph.iter_nodes
    (fun u ->
      let es = out_edges t u in
      if es <> [] then begin
        Fmt.pf fmt "@,  %d:" u;
        List.iter
          (fun (e : Label.t Digraph.edge) ->
            Fmt.pf fmt " -%s-> %d" (Label.to_string e.label) e.dst)
          es
      end)
    t.g;
  Fmt.pf fmt "@]"
