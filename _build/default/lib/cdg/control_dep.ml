(* Control dependence (Definition 2, after Ferrante–Ottenstein–Warren).

   y is control dependent on x with label l iff
     1. y does not postdominate x,
     2. there is a path from x to y whose intermediate nodes are all
        postdominated by y,
     3. an edge labelled l leaves x towards the second node of that path.

   Equivalently (FOW87): for every ECFG edge (x,s,l) where s's
   postdominators do not include x's, the control dependent nodes are the
   postdominator-tree ancestors of s (inclusive) strictly below ipdom(x).
   We compute exactly that tree walk. *)

open S89_graph
open S89_cfg

exception Cannot_reach_stop of int list
(* nodes with no path to STOP; the paper assumes normal termination *)

type t = {
  g : Label.t Digraph.t; (* CDG edges (x, y, l): y is CD on condition (x,l) *)
  pdom : Postdom.t;
}

let compute (ecfg : 'a Ecfg.t) =
  let cfg = Ecfg.cfg ecfg in
  let graph = Cfg.graph cfg in
  let stop = Ecfg.stop ecfg in
  let pdom = Postdom.compute graph ~exit_:stop in
  let stuck = ref [] in
  for v = Digraph.num_nodes graph - 1 downto 0 do
    if not (Postdom.reachable pdom v) then stuck := v :: !stuck
  done;
  if !stuck <> [] then raise (Cannot_reach_stop !stuck);
  let cdg = Digraph.create () in
  ignore (Digraph.add_nodes cdg (Digraph.num_nodes graph));
  (* dedupe (x, y, l) triples arising from parallel edges *)
  let seen = Hashtbl.create 64 in
  Digraph.iter_edges
    (fun (e : Label.t Digraph.edge) ->
      let x = e.src and s = e.dst in
      if not (Postdom.strictly_postdominates pdom s x) then begin
        let limit = Postdom.ipostdom pdom x in
        let rec walk t =
          if Some t <> limit then begin
            if not (Hashtbl.mem seen (x, t, e.label)) then begin
              Hashtbl.replace seen (x, t, e.label) ();
              ignore (Digraph.add_edge cdg ~src:x ~dst:t ~label:e.label)
            end;
            match Postdom.ipostdom pdom t with
            | Some t' -> walk t'
            | None -> ()
            (* reached STOP; limit must have been above it *)
          end
        in
        walk s
      end)
    graph;
  { g = cdg; pdom }

let graph t = t.g
let postdom t = t.pdom

(* Definitional check used as an independent oracle in tests:
   y is CD on (x,l) iff some edge (x,s,l) has y postdominating s but not
   strictly postdominating x.  Condition 1 of Definition 2 reads "y does
   not post-dominate x" with FOW87's strict postdominance, which admits
   the self-dependence of a single-node loop (y = x); the tree walk above
   produces exactly that set. *)
let is_control_dependent t (ecfg : 'a Ecfg.t) ~on:(x, l) y =
  let cfg = Ecfg.cfg ecfg in
  List.exists
    (fun (e : Label.t Digraph.edge) ->
      Label.equal e.label l
      && Postdom.postdominates t.pdom y e.dst
      && not (Postdom.strictly_postdominates t.pdom y x))
    (Cfg.succ_edges cfg x)
