(* Execution time variance (§5): one bottom-up pass over the FCDG.

   Case 1 — u is a preheader.  With F = FREQ(u,l) the loop frequency and
   S = Σ TIME(v), V = Σ VAR(v) over the body children:

       VAR(u) = F²·V + VAR(F)·S² + VAR(F)·V

   (the three-term expansion of VAR(A×B)).  VAR(F) comes from a pluggable
   model: zero (the paper's simplification in the worked example), a
   profiled second moment E[F²], or an assumed distribution of the number
   of iterations.

   Case 2 — otherwise.  With mutually exclusive branch labels:

       E[T_C²] = Σ_l FREQ(u,l) × (Σ_{v∈C(u,l)} VAR(v) + (Σ_{v∈C(u,l)} TIME(v))²)
       VAR(u)  = E[T_C²] − T_C² + VAR(COST(u))

   VAR(COST(u)) is 0 (the paper's assumption) unless call-variance
   propagation is enabled, in which case each call site contributes its
   callee's VAR(START). *)

module Analysis = S89_profiling.Analysis
module Freq = S89_profiling.Freq
open S89_cfg
open S89_cdg

(* Model for VAR(FREQ(ph, l)) — the variance of the number of header
   executions per interval execution. *)
type freq_var_model =
  | Zero  (** the paper's default: deterministic trip counts *)
  | Profiled of (int -> float option)
      (** header -> E[F²] per interval execution (e.g. from the bulk
          second-moment counters); [None] falls back to Zero *)
  | Geometric
      (** F ~ geometric: VAR = F² − F (memoryless exit with P = 1/F) *)
  | Poisson  (** VAR = F *)
  | Uniform  (** F ~ uniform on [0, 2F]: VAR = F²/3 *)

let var_of_freq model ~header ~f =
  match model with
  | Zero -> 0.0
  | Profiled lookup -> (
      match lookup header with
      | Some ef2 -> Float.max 0.0 (ef2 -. (f *. f))
      | None -> 0.0)
  | Geometric -> Float.max 0.0 ((f *. f) -. f)
  | Poisson -> f
  | Uniform -> f *. f /. 3.0

(* How iterations of one loop relate to each other.

   The paper's Case 1 multiplies the body variance by FREQ² — algebraically
   that treats the body time as ONE random variable scaled by the iteration
   count, i.e. iterations are perfectly correlated; it is the conservative
   upper bound (and what PTRAN computed).  When iteration times are closer
   to independent draws, Wald's identity for random sums gives
   VAR = E[F]·VAR(body) + VAR(F)·TIME(body)², typically √F smaller.  We
   implement both; benches compare them against measured variance. *)
type iteration_model = Paper_correlated | Independent

type t = {
  var : float array;
  e2 : float array; (* E[TIME²] = VAR + TIME² (the Fig. 3 tuple value) *)
}

let compute ?(freq_var = Zero) ?(iteration_model = Paper_correlated)
    ?(cost_var : float array option) (analysis : Analysis.t) (freq : Freq.t)
    (time : Time_est.t) : t =
  let fcdg = analysis.Analysis.fcdg in
  let ecfg = analysis.Analysis.ecfg in
  let n = S89_graph.Digraph.num_nodes (Fcdg.graph fcdg) in
  let var = Array.make n 0.0 in
  Array.iter
    (fun u ->
      let v =
        if Ecfg.is_preheader ecfg u then begin
          (* Case 1: loop preheader *)
          let header = Ecfg.header_of_preheader ecfg u in
          let l = Ecfg.body_label in
          let f = Freq.freq freq (u, l) in
          let children = Fcdg.children fcdg u l in
          let s = List.fold_left (fun acc v -> acc +. Time_est.time time v) 0.0 children in
          let vv = List.fold_left (fun acc v -> acc +. var.(v)) 0.0 children in
          let vf = var_of_freq freq_var ~header ~f in
          (match iteration_model with
          | Paper_correlated -> (f *. f *. vv) +. (vf *. s *. s) +. (vf *. vv)
          | Independent -> (f *. vv) +. (vf *. s *. s))
        end
        else begin
          (* Case 2: branch probabilities, VAR(FREQ)=0 *)
          let tc = ref 0.0 and e2c = ref 0.0 in
          List.iter
            (fun l ->
              let f = Freq.freq freq (u, l) in
              if f > 0.0 then begin
                let children = Fcdg.children fcdg u l in
                let s =
                  List.fold_left (fun acc v -> acc +. Time_est.time time v) 0.0 children
                in
                let vv = List.fold_left (fun acc v -> acc +. var.(v)) 0.0 children in
                tc := !tc +. (f *. s);
                e2c := !e2c +. (f *. (vv +. (s *. s)))
              end)
            (Fcdg.labels fcdg u);
          let base = Float.max 0.0 (!e2c -. (!tc *. !tc)) in
          base +. (match cost_var with Some cv -> cv.(u) | None -> 0.0)
        end
      in
      var.(u) <- v)
    (Fcdg.bottom_up fcdg);
  let e2 =
    Array.init n (fun u ->
        let t = Time_est.time time u in
        var.(u) +. (t *. t))
  in
  { var; e2 }

let var t u = t.var.(u)
let e2 t u = t.e2.(u)
let std_dev t u = sqrt t.var.(u)

let total_var t analysis = t.var.(Fcdg.start analysis.Analysis.fcdg)
let total_std_dev t analysis = sqrt (total_var t analysis)
