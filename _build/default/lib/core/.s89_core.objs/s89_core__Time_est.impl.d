lib/core/time_est.ml: Array Fcdg List S89_cdg S89_cfg S89_graph S89_profiling
