lib/core/report.mli: Format Interproc S89_frontend S89_profiling
