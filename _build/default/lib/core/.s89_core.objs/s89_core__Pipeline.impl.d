lib/core/pipeline.ml: Array Hashtbl Interproc List Logs S89_frontend S89_profiling S89_vm Variance
