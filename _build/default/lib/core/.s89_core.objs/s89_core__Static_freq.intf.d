lib/core/static_freq.mli: Hashtbl S89_profiling
