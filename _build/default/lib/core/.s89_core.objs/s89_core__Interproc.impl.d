lib/core/interproc.ml: Array Cost Float Hashtbl List Printf S89_cfg S89_frontend S89_profiling S89_vm Time_est Variance
