lib/core/static_freq.ml: Array Cfg Ecfg Fcdg Float Hashtbl Label List S89_cdg S89_cfg S89_frontend S89_graph S89_profiling S89_vm
