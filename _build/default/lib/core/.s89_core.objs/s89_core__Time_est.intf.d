lib/core/time_est.mli: S89_profiling
