lib/core/variance.ml: Array Ecfg Fcdg Float List S89_cdg S89_cfg S89_graph S89_profiling Time_est
