lib/core/variance.mli: S89_profiling Time_est
