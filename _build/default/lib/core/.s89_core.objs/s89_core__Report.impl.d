lib/core/report.ml: Array Buffer Cfg Cost Ecfg Fcdg Float Fmt Hashtbl Interproc Label List Node_type Printf S89_cdg S89_cfg S89_frontend S89_graph S89_profiling String Time_est Variance
