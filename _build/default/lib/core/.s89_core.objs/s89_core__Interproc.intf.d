lib/core/interproc.mli: Hashtbl S89_frontend S89_profiling S89_vm Time_est Variance
