lib/core/cost.ml: Array Cfg Ecfg Hashtbl List S89_cfg S89_frontend S89_profiling S89_vm
