lib/core/cost.mli: Hashtbl S89_frontend S89_profiling S89_vm
