lib/core/pipeline.mli: Hashtbl Interproc S89_frontend S89_profiling S89_vm Variance
