(* COST(u): the local execution time of each ECFG node (§4).

   "For the purpose of this work, it is assumed that the (average) local
   execution time of each node u ... has already been estimated, and is
   stored as COST(u)."  We estimate it from the architectural cost model
   (instruction counting), exactly mirroring what the VM charges, so that
   estimates are directly comparable to measured cycles.  Synthetic ECFG
   nodes (START, STOP, PREHEADER, POSTEXIT) cost 0, as in the paper's
   worked example.

   User-function calls inside the node are NOT included here — rule 2 of
   §4 adds TIME(START_callee) per call site, interprocedurally. *)

module Ir = S89_frontend.Ir
module Ast = S89_frontend.Ast
module Program = S89_frontend.Program
module Cost_model = S89_vm.Cost_model
module Analysis = S89_profiling.Analysis
open S89_cfg

(* names of user procedures invoked by this node, with multiplicity *)
let call_sites (by_name : (string, 'p) Hashtbl.t) (info : Ir.info) : string list =
  let rec expr acc (e : Ast.expr) =
    match e with
    | Ast.Int _ | Real _ | Bool _ | Var _ -> acc
    | Index (_, idx) -> List.fold_left expr acc idx
    | Call (f, args) ->
        let acc = List.fold_left expr acc args in
        if Hashtbl.mem by_name f then f :: acc else acc
    | Unop (_, e) -> expr acc e
    | Binop (_, a, b) -> expr (expr acc a) b
  in
  let acc =
    match info.Ir.ir with
    | Ir.Call (name, _) when Hashtbl.mem by_name name -> [ name ]
    | _ -> []
  in
  List.fold_left expr acc (Ir.exprs_of info.Ir.ir)

(* Local cost of every ECFG node of a procedure.  [override], when given,
   replaces the model-derived cost of original nodes (used to reproduce
   the paper's worked example, which posits its own COST values). *)
let local_costs ?override (cm : Cost_model.t) (analysis : Analysis.t) : float array =
  let ecfg = analysis.Analysis.ecfg in
  let cfg = Ecfg.cfg ecfg in
  let n = Cfg.num_nodes cfg in
  Array.init n (fun u ->
      if not (Ecfg.is_original ecfg u) then 0.0
      else
        match override with
        | Some f -> f u
        | None ->
            float_of_int (Cost_model.node_cost cm (Cfg.info cfg u).Ir.ir))
