(** COST(u): local execution time of each ECFG node (§4), from the
    architectural cost model — exactly what the VM charges, so estimates
    are directly comparable to measured cycles. *)

module Ir = S89_frontend.Ir
module Cost_model = S89_vm.Cost_model
module Analysis = S89_profiling.Analysis

(** User procedures invoked by a node (subroutine call and/or function
    references in its expressions), with multiplicity. *)
val call_sites : (string, 'p) Hashtbl.t -> Ir.info -> string list

(** Local cost of every ECFG node.  Synthetic nodes (START, STOP,
    PREHEADER, POSTEXIT) cost 0.  [override], when given, replaces the
    model-derived cost of original nodes.  Callee bodies are NOT included
    (rule 2 adds them interprocedurally). *)
val local_costs : ?override:(int -> float) -> Cost_model.t -> Analysis.t -> float array
