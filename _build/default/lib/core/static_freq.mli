(** Compile-time frequency analysis — §3's "program analysis" companion
    to profiling.  The two restricted cases the paper names are solved
    exactly (constant-bound DO loops; branch conditions that fold to a
    constant); everything else uses declared heuristics.  Produces a
    synthetic [TOTAL_FREQ] table that plugs into the same estimation
    machinery as a real profile. *)

module Analysis = S89_profiling.Analysis

type heuristics = {
  loop_freq : float;  (** assumed header executions per entry (default 10) *)
  branch_taken : float;  (** probability of a T label (default 0.5) *)
  exit_taken : float;  (** probability of a loop-exit label (default 0.1) *)
}

val default_heuristics : heuristics

(** The synthetic invocation count the totals are scaled to. *)
val scale : int

(** Synthetic totals for one procedure (no execution involved). *)
val totals : ?heuristics:heuristics -> Analysis.t -> (Analysis.cond, int) Hashtbl.t

(** Totals for every procedure, memoized — pass to
    {!Pipeline.estimate_totals}. *)
val program_totals :
  ?heuristics:heuristics ->
  (string, Analysis.t) Hashtbl.t ->
  string ->
  (Analysis.cond, int) Hashtbl.t
