(** Average execution times (§4): one bottom-up pass over the FCDG
    computing [TIME(u) = COST(u) + Σ FREQ(u,l)·TIME(v)]. *)

module Analysis = S89_profiling.Analysis
module Freq = S89_profiling.Freq

type t

(** Bottom-up TIME pass.  [cost] is indexed by ECFG node and must already
    include callee contributions for call nodes (rule 2); see
    {!Interproc.estimate} for the interprocedural driver. *)
val compute : Analysis.t -> Freq.t -> cost:float array -> t

(** [TIME(START)] — the whole procedure's average execution time per
    invocation. *)
val total_time : t -> Analysis.t -> float

(** [TIME(u)] for an ECFG node. *)
val time : t -> int -> float

(** [COST(u)] as used by the pass. *)
val cost : t -> int -> float
