(* Average execution times (§4): one bottom-up pass over the FCDG.

     TIME(u) = COST(u) + Σ_{(u,v,l) ∈ E_f} FREQ(u,l) × TIME(v)

   Rule 1's assumption: a node's execution time is independent of which
   conditional branch caused it to execute, so one average TIME(v) serves
   all FCDG parents of v.  Rule 2 (calls) is handled by the caller passing
   [callee_time]; COST(u) here already includes the callee contributions
   when computed by Interproc. *)

module Analysis = S89_profiling.Analysis
module Freq = S89_profiling.Freq
open S89_cdg

type t = {
  time : float array; (* indexed by ECFG node *)
  cost : float array;
}

let total_time t analysis = t.time.(Fcdg.start analysis.Analysis.fcdg)

let compute (analysis : Analysis.t) (freq : Freq.t) ~(cost : float array) : t =
  let fcdg = analysis.Analysis.fcdg in
  let n = Array.length cost in
  let time = Array.make n 0.0 in
  Array.iter
    (fun u ->
      let acc = ref cost.(u) in
      List.iter
        (fun (e : S89_cfg.Label.t S89_graph.Digraph.edge) ->
          acc := !acc +. (Freq.freq freq (u, e.label) *. time.(e.dst)))
        (Fcdg.out_edges fcdg u);
      time.(u) <- !acc)
    (Fcdg.bottom_up fcdg);
  { time; cost }

let time t u = t.time.(u)
let cost t u = t.cost.(u)
