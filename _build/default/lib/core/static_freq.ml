(* Compile-time frequency analysis (§3):

   "These frequency values may be determined by program analysis, or may
   be obtained from an execution profile of the input program.  We
   believe that program analysis is feasible for only a few restricted
   cases (e.g. a Fortran DO loop with constant bounds and no conditional
   loop exits, an IF condition that can be computed at compile-time,
   etc.), and should be complemented by execution profile information
   wherever compile-time analysis is unsuccessful."

   This module implements exactly that: the two restricted cases are
   solved exactly (constant-trip DO loops; branch conditions that fold to
   a constant), everything else falls back to declared heuristics.  The
   result is a synthetic TOTAL_FREQ table at a large invocation scale, so
   it plugs into the same Freq/TIME/VAR machinery as a real profile —
   letting benches compare "no profile at all" against profiled
   estimates. *)

module Ir = S89_frontend.Ir
module Ast = S89_frontend.Ast
module Analysis = S89_profiling.Analysis
open S89_cfg
open S89_cdg

type heuristics = {
  loop_freq : float;
      (* assumed header executions per entry for non-analyzable loops *)
  branch_taken : float; (* probability of a two-way branch's T label *)
  exit_taken : float;
      (* probability of a branch label that exits a loop (per execution) *)
}

let default_heuristics = { loop_freq = 10.0; branch_taken = 0.5; exit_taken = 0.1 }

let scale = 1_000_000 (* synthetic invocation count: keeps rounding error tiny *)

(* a label whose FCDG children include a postexit: taking it leaves a loop *)
let is_exit_label (a : Analysis.t) u l =
  List.exists (fun v -> Ecfg.is_postexit a.Analysis.ecfg v)
    (Fcdg.children a.Analysis.fcdg u l)

(* does the branch condition fold to a compile-time constant? *)
let constant_condition (a : Analysis.t) u =
  match (Cfg.info (Ecfg.cfg a.Analysis.ecfg) u).Ir.ir with
  | Ir.Branch e -> (
      match S89_vm.Optimize.fold None e with Ast.Bool b -> Some b | _ -> None)
  | _ -> None

(* per-label probabilities (preheaders return the loop frequency instead) *)
let label_freqs (h : heuristics) (a : Analysis.t) u : (Label.t * float) list =
  let ecfg = a.Analysis.ecfg in
  let fcdg = a.Analysis.fcdg in
  let labels = Fcdg.labels fcdg u in
  if Ecfg.is_preheader ecfg u then
    List.map
      (fun l ->
        if Label.is_pseudo l then (l, 0.0)
        else begin
          (* the body condition: loop frequency *)
          let header = Ecfg.header_of_preheader ecfg u in
          let f =
            match Analysis.do_meta a header with
            | Some { Ir.static_trip = Some k; _ } ->
                float_of_int (k + 1) (* exact: constant-bound DO loop *)
            | _ -> h.loop_freq
          in
          (l, f)
        end)
      labels
  else
    match (Cfg.info (Ecfg.cfg ecfg) u).Ir.ir with
    | Ir.Do_test meta ->
        let trips =
          match meta.Ir.static_trip with
          | Some k -> float_of_int k
          | None -> h.loop_freq -. 1.0
        in
        let p_body = trips /. (trips +. 1.0) in
        List.map
          (fun l ->
            if Label.equal l Label.T then (l, p_body)
            else if Label.equal l Label.F then (l, 1.0 -. p_body)
            else (l, 0.0))
          labels
    | Ir.Branch _ -> (
        match constant_condition a u with
        | Some b ->
            (* exact: a condition computable at compile time *)
            List.map
              (fun l ->
                if Label.equal l Label.T then (l, if b then 1.0 else 0.0)
                else if Label.equal l Label.F then (l, if b then 0.0 else 1.0)
                else (l, 0.0))
              labels
        | None ->
            (* heuristic; loop-exit labels get the rarer probability *)
            List.map
              (fun l ->
                let p =
                  if is_exit_label a u l then h.exit_taken
                  else if Label.equal l Label.T then h.branch_taken
                  else 1.0 -. h.branch_taken
                in
                (l, p))
              labels)
    | Ir.Select (_, narms) ->
        (* computed GOTO: uniform over arms and the fallthrough *)
        let p = 1.0 /. float_of_int (narms + 1) in
        List.map (fun l -> (l, p)) labels
    | _ ->
        (* unconditional flow: everything proceeds *)
        List.map (fun l -> (l, if Label.is_pseudo l then 0.0 else 1.0)) labels

(* Synthetic TOTAL_FREQ table: a top-down pass assigning
   TOTAL(u,l) = round(p_l × NODE_TOTAL(u)) at [scale] invocations. *)
let totals ?(heuristics = default_heuristics) (a : Analysis.t) :
    (Analysis.cond, int) Hashtbl.t =
  let fcdg = a.Analysis.fcdg in
  let start = Fcdg.start fcdg in
  let n = S89_graph.Digraph.num_nodes (Fcdg.graph fcdg) in
  let node_total = Array.make n 0.0 in
  node_total.(start) <- float_of_int scale;
  let out = Hashtbl.create 64 in
  Array.iter
    (fun u ->
      List.iter
        (fun (l, p) ->
          let tf = p *. node_total.(u) in
          Hashtbl.replace out (u, l) (int_of_float (Float.round tf));
          List.iter
            (fun v -> node_total.(v) <- node_total.(v) +. tf)
            (Fcdg.children fcdg u l))
        (label_freqs heuristics a u))
    (Fcdg.topological fcdg);
  out

(* Totals for every procedure of a program: ready for
   {!Pipeline.estimate_totals}, no execution required. *)
let program_totals ?heuristics (analyses : (string, Analysis.t) Hashtbl.t) :
    string -> (Analysis.cond, int) Hashtbl.t =
  let cache = Hashtbl.create 8 in
  fun name ->
    match Hashtbl.find_opt cache name with
    | Some t -> t
    | None ->
        let t =
          match Hashtbl.find_opt analyses name with
          | Some a -> totals ?heuristics a
          | None -> Hashtbl.create 1
        in
        Hashtbl.replace cache name t;
        t
