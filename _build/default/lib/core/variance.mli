(** Execution time variance (§5): one bottom-up pass over the FCDG with
    the paper's two cases (preheader vs. other nodes). *)

module Analysis = S89_profiling.Analysis
module Freq = S89_profiling.Freq

(** Model for [VAR(FREQ(ph,l))], the variance of the number of header
    executions per interval execution (§5 Case 1). *)
type freq_var_model =
  | Zero  (** the paper's default: deterministic trip counts *)
  | Profiled of (int -> float option)
      (** header → E[F²] per interval execution (e.g. from the bulk
          second-moment counters); [None] falls back to [Zero] *)
  | Geometric  (** memoryless exit: VAR = F² − F *)
  | Poisson  (** VAR = F *)
  | Uniform  (** F uniform on [0, 2F]: VAR = F²/3 *)

(** [VAR(F)] under a model, given the loop frequency [f]. *)
val var_of_freq : freq_var_model -> header:int -> f:float -> float

(** How iterations of one loop relate to each other.

    The paper's Case 1 multiplies the body variance by FREQ² — treating
    the body time as one random variable scaled by the iteration count
    (iterations perfectly correlated), the conservative upper bound.
    [Independent] is the Wald-identity alternative for iid iterations:
    [VAR = E(F)·VAR(body) + VAR(F)·TIME(body)²], typically √F smaller and
    much closer to empirical deviations (see EXPERIMENTS.md X3). *)
type iteration_model = Paper_correlated | Independent

type t

(** Bottom-up VAR pass.  [cost_var], when given, adds a per-node local
    cost variance (used for callee-variance propagation); the paper
    assumes it is zero. *)
val compute :
  ?freq_var:freq_var_model ->
  ?iteration_model:iteration_model ->
  ?cost_var:float array ->
  Analysis.t ->
  Freq.t ->
  Time_est.t ->
  t

(** [VAR(u)]. *)
val var : t -> int -> float

(** [E(TIME(u)²)] — the Figure-3 tuple value [VAR + TIME²]. *)
val e2 : t -> int -> float

(** [STD_DEV(u) = √VAR(u)]. *)
val std_dev : t -> int -> float

(** [VAR(START)] of the procedure. *)
val total_var : t -> Analysis.t -> float

(** [STD_DEV(START)] of the procedure. *)
val total_std_dev : t -> Analysis.t -> float
