(** Node splitting: make an irreducible flowgraph reducible by duplicating
    nodes (ASU §10.4), preserving the language of node sequences. *)

(** Raised when the fuel bound is exhausted (pathological inputs only);
    carries the node count at the time of giving up. *)
exception Gave_up of int

(** [make_reducible g ~root ~on_copy] splits nodes in place until [g] is
    reducible.  [on_copy ~orig ~copy] is called for every duplication so the
    caller can clone node payloads.  Returns the list of [(orig, copy)]
    pairs in the order the splits were performed ([[]] when the graph was
    already reducible). *)
val make_reducible :
  'l Digraph.t -> root:int -> on_copy:(orig:int -> copy:int -> unit) -> (int * int) list
