(* Topological sorting and strongly connected components.

   Topological order drives the top-down FREQ pass and the bottom-up
   TIME/VAR passes over the (acyclic) FCDG; Tarjan SCCs detect recursion in
   the call graph. *)

exception Cycle of int list

(* Kahn's algorithm over the whole node set.  Nodes are emitted smallest-id
   first among the ready set, which keeps the order deterministic. *)
let sort g =
  let n = Digraph.num_nodes g in
  let indeg = Array.init n (fun v -> Digraph.in_degree g v) in
  let module IS = Set.Make (Int) in
  let ready = ref IS.empty in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then ready := IS.add v !ready
  done;
  let out = ref [] and emitted = ref 0 in
  while not (IS.is_empty !ready) do
    let v = IS.min_elt !ready in
    ready := IS.remove v !ready;
    out := v :: !out;
    incr emitted;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then ready := IS.add w !ready)
      (Digraph.succs g v)
  done;
  if !emitted < n then begin
    let stuck = ref [] in
    for v = n - 1 downto 0 do
      if indeg.(v) > 0 then stuck := v :: !stuck
    done;
    raise (Cycle !stuck)
  end;
  Array.of_list (List.rev !out)

let sort_opt g = try Some (sort g) with Cycle _ -> None

let is_acyclic g = sort_opt g <> None

(* Tarjan's SCC algorithm, iterative.  Components are returned in reverse
   topological order of the condensation (callees before callers when run on
   a call graph), which is exactly the order the interprocedural estimator
   wants. *)
let scc g =
  let n = Digraph.num_nodes g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let comps = ref [] in
  for root = 0 to n - 1 do
    if index.(root) = -1 then begin
      (* work item: (node, remaining successors) *)
      let work = ref [] in
      let start v =
        index.(v) <- !next_index;
        lowlink.(v) <- !next_index;
        incr next_index;
        stack := v :: !stack;
        on_stack.(v) <- true;
        work := (v, Digraph.succs g v) :: !work
      in
      start root;
      while !work <> [] do
        match !work with
        | [] -> assert false
        | (v, ss) :: rest -> (
            match ss with
            | w :: ss' ->
                work := (v, ss') :: rest;
                if index.(w) = -1 then start w
                else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
            | [] ->
                work := rest;
                (match rest with
                | (p, _) :: _ -> lowlink.(p) <- min lowlink.(p) lowlink.(v)
                | [] -> ());
                if lowlink.(v) = index.(v) then begin
                  let rec popc acc =
                    match !stack with
                    | [] -> assert false
                    | w :: tl ->
                        stack := tl;
                        on_stack.(w) <- false;
                        if w = v then w :: acc else popc (w :: acc)
                  in
                  comps := popc [] :: !comps
                end)
      done
    end
  done;
  List.rev !comps

let scc_map g =
  let comps = scc g in
  let id = Array.make (Digraph.num_nodes g) (-1) in
  List.iteri (fun i comp -> List.iter (fun v -> id.(v) <- i) comp) comps;
  (Array.of_list comps, id)
