(* Allen–Cocke interval analysis: first-order intervals and the derived
   sequence of flowgraphs (Burke 1987; Schwartz–Sharir 1979 — the works
   the paper cites for "interval structure").

   An interval I(h) is the maximal single-entry region headed by h: start
   from {h} and repeatedly add nodes all of whose predecessors are already
   inside.  The first-order intervals partition the reachable nodes; the
   derived graph collapses each interval to one node; iterating yields the
   derived sequence, whose limit is a single node exactly when the graph
   is reducible (the classic characterization — property-tested against
   the dominator-based test in Reducibility).

   The paper's HDR structure is realized in Intervals via the equivalent
   natural-loop forest; this module exists to validate that equivalence
   (every natural-loop header appears as an interval header with a back
   edge at some derivation level) and for clients that want the classic
   region partition itself. *)

type partition = {
  headers : int list; (* interval headers, in discovery order *)
  interval_of : int array; (* node -> its interval's header (-1 unreachable) *)
  members : (int, int list) Hashtbl.t; (* header -> members, head first *)
}

(* first-order interval partition of the nodes reachable from [root] *)
let first_order g ~root =
  let n = Digraph.num_nodes g in
  let num = Dfs.number g ~root in
  let interval_of = Array.make n (-1) in
  let members = Hashtbl.create 8 in
  let headers = ref [] in
  (* candidate headers, processed in discovery order *)
  let work = Queue.create () in
  Queue.add root work;
  let enqueued = Array.make n false in
  enqueued.(root) <- true;
  while not (Queue.is_empty work) do
    let h = Queue.pop work in
    if interval_of.(h) = -1 then begin
      headers := h :: !headers;
      interval_of.(h) <- h;
      let ms = ref [ h ] in
      (* grow: add any node, all of whose predecessors lie in I(h) *)
      let changed = ref true in
      while !changed do
        changed := false;
        for v = 0 to n - 1 do
          if
            Dfs.reachable num v && interval_of.(v) = -1 && v <> root
            && List.exists (fun p -> Dfs.reachable num p) (Digraph.preds g v)
            && List.for_all
                 (fun p -> (not (Dfs.reachable num p)) || interval_of.(p) = h)
                 (Digraph.preds g v)
          then begin
            interval_of.(v) <- h;
            ms := v :: !ms;
            changed := true
          end
        done
      done;
      Hashtbl.replace members h (List.rev !ms);
      (* any node with a predecessor inside I(h) but not itself inside
         becomes a candidate header *)
      List.iter
        (fun m ->
          List.iter
            (fun s ->
              if interval_of.(s) = -1 && not enqueued.(s) then begin
                enqueued.(s) <- true;
                Queue.add s work
              end)
            (Digraph.succs g m))
        (Hashtbl.find members h)
    end
  done;
  { headers = List.rev !headers; interval_of; members }

(* one step of the derived sequence: collapse each interval to a node.
   Returns the derived graph, its root, and the header each derived node
   stands for. *)
let derive g ~root =
  let part = first_order g ~root in
  let index = Hashtbl.create 8 in
  List.iteri (fun i h -> Hashtbl.replace index h i) part.headers;
  let d = Digraph.create () in
  ignore (Digraph.add_nodes d (List.length part.headers));
  (* one derived edge per distinct (interval, target-interval) pair of
     crossing edges (self loops for back edges into the header) *)
  let seen = Hashtbl.create 16 in
  Digraph.iter_edges
    (fun (e : _ Digraph.edge) ->
      let iu = part.interval_of.(e.src) and iv = part.interval_of.(e.dst) in
      if iu >= 0 && iv >= 0 && iu <> iv then begin
        let du = Hashtbl.find index iu and dv = Hashtbl.find index iv in
        if not (Hashtbl.mem seen (du, dv)) then begin
          Hashtbl.replace seen (du, dv) ();
          ignore (Digraph.add_edge d ~src:du ~dst:dv ~label:())
        end
      end)
    g;
  (d, Hashtbl.find index part.interval_of.(root), Array.of_list part.headers)

(* The derived sequence down to its limit.  Each element is the graph at
   that order together with, for every node, the set of ORIGINAL nodes it
   represents. *)
type level = {
  graph : unit Digraph.t;
  root : int;
  represents : int list array; (* derived node -> original nodes *)
}

let derived_sequence ?(max_levels = 64) g ~root =
  let erase =
    let d = Digraph.create () in
    ignore (Digraph.add_nodes d (Digraph.num_nodes g));
    Digraph.iter_edges
      (fun e -> ignore (Digraph.add_edge d ~src:e.src ~dst:e.dst ~label:()))
      g;
    d
  in
  let level0 =
    {
      graph = erase;
      root;
      represents = Array.init (Digraph.num_nodes g) (fun i -> [ i ]);
    }
  in
  let rec go acc level fuel =
    if fuel = 0 then List.rev acc
    else begin
      let d, droot, headers = derive level.graph ~root:level.root in
      if Digraph.num_nodes d = Digraph.num_nodes level.graph then
        (* no progress: the limit graph (single node iff reducible) *)
        List.rev acc
      else begin
        let part = first_order level.graph ~root:level.root in
        let represents =
          Array.mapi
            (fun _ h ->
              List.concat_map
                (fun m -> level.represents.(m))
                (Hashtbl.find part.members h))
            headers
        in
        let next = { graph = d; root = droot; represents } in
        go (next :: acc) next (fuel - 1)
      end
    end
  in
  level0 :: go [] level0 max_levels

(* reducible iff the derived sequence bottoms out in a single node *)
let is_reducible g ~root =
  match List.rev (derived_sequence g ~root) with
  | last :: _ ->
      (* count reachable nodes of the limit graph *)
      let num = Dfs.number last.graph ~root:last.root in
      num.Dfs.count = 1
      ||
      (* a single further derivation may still make progress when the last
         level happened to hit the fuel bound *)
      let d, droot, _ = derive last.graph ~root:last.root in
      let num' = Dfs.number d ~root:droot in
      num'.Dfs.count = 1
  | [] -> true
