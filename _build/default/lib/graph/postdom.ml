(* Postdominators: dominators of the reversed graph rooted at the exit.

   The control-dependence construction (Definition 2 of the paper) is stated
   in terms of postdominance in the ECFG, whose unique exit is the STOP
   node. *)

type t = { dom : Dominator.t }

let compute g ~exit_ = { dom = Dominator.compute (Digraph.reverse g) ~root:exit_ }

let ipostdom t n = Dominator.idom t.dom n

let reachable t n = Dominator.reachable t.dom n

let depth t n = Dominator.depth t.dom n

let children t n = Dominator.children t.dom n

let postdominates t u v = Dominator.dominates t.dom u v

let strictly_postdominates t u v = Dominator.strictly_dominates t.dom u v

let postdominators t v = Dominator.dominators t.dom v
