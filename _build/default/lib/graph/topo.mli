(** Topological sorting and strongly connected components. *)

(** Raised by {!sort} with the nodes still involved in cycles. *)
exception Cycle of int list

(** Deterministic topological order of all nodes (smallest id first among
    ready nodes).  Raises {!Cycle} if the graph is cyclic. *)
val sort : 'l Digraph.t -> int array

val sort_opt : 'l Digraph.t -> int array option

val is_acyclic : 'l Digraph.t -> bool

(** Tarjan SCCs in reverse topological order of the condensation
    (components with no outgoing inter-component edges come first). *)
val scc : 'l Digraph.t -> int list list

(** SCCs plus a node→component-index map. *)
val scc_map : 'l Digraph.t -> int list array * int array
