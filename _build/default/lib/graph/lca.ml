(* Least common ancestors in a rooted forest given as a parent array.

   Used for HDR_LCA over the interval-header tree (paper §2).  Trees there
   are tiny (one node per loop header), so a depth-balanced walk is simpler
   and plenty fast; no need for binary lifting. *)

type t = {
  parent : int array; (* -1 for roots *)
  depth : int array;
}

let of_parents parent =
  let n = Array.length parent in
  let depth = Array.make n (-1) in
  let rec depth_of v =
    if depth.(v) >= 0 then depth.(v)
    else begin
      let d = if parent.(v) < 0 then 0 else 1 + depth_of parent.(v) in
      depth.(v) <- d;
      d
    end
  in
  for v = 0 to n - 1 do
    ignore (depth_of v)
  done;
  { parent; depth }

let depth t v = t.depth.(v)

let parent t v = if t.parent.(v) < 0 then None else Some t.parent.(v)

let lca t u v =
  let rec lift x d = if t.depth.(x) > d then lift t.parent.(x) d else x in
  let u = lift u t.depth.(v) and v = lift v t.depth.(u) in
  let rec meet u v =
    if u = v then u
    else if t.parent.(u) < 0 || t.parent.(v) < 0 then raise Not_found
    else meet t.parent.(u) t.parent.(v)
  in
  meet u v

let lca_opt t u v = try Some (lca t u v) with Not_found -> None

let is_ancestor t u v =
  let rec lift x =
    if t.depth.(x) < t.depth.(u) then false
    else if x = u then true
    else if t.parent.(x) < 0 then false
    else lift t.parent.(x)
  in
  lift v
