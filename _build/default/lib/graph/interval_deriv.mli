(** Allen–Cocke interval analysis: first-order intervals and the derived
    sequence of flowgraphs (the paper's [Bur87, SS79] citations for
    "interval structure").  {!Intervals} realizes the paper's HDR maps via
    the equivalent natural-loop forest; this module provides the classic
    region partition and the derived-sequence reducibility test, and the
    test suite checks their agreement. *)

(** A first-order interval partition. *)
type partition = {
  headers : int list;  (** interval headers, in discovery order *)
  interval_of : int array;  (** node → its interval's header; -1 unreachable *)
  members : (int, int list) Hashtbl.t;  (** header → members, head first *)
}

(** First-order intervals of the nodes reachable from [root]. *)
val first_order : 'l Digraph.t -> root:int -> partition

(** One derivation step: collapse each interval to a node.  Returns the
    derived graph, its root, and per derived node the header it stands
    for. *)
val derive : 'l Digraph.t -> root:int -> unit Digraph.t * int * int array

(** One element of the derived sequence. *)
type level = {
  graph : unit Digraph.t;
  root : int;
  represents : int list array;  (** derived node → original nodes *)
}

(** The derived sequence, level 0 (the graph itself) down to the limit
    (where derivation stops making progress). *)
val derived_sequence : ?max_levels:int -> 'l Digraph.t -> root:int -> level list

(** Reducible iff the limit flowgraph is a single node — the classic
    characterization, equivalent to {!Reducibility.is_reducible}. *)
val is_reducible : 'l Digraph.t -> root:int -> bool
