(** Depth-first traversal, numbering and edge classification. *)

(** DFS numbering of the nodes reachable from a root. *)
type numbering = {
  order : int array;  (** nodes in preorder (indices [0..count-1] valid) *)
  visited : bool array;  (** reachability from the root *)
  pre : int array;  (** preorder index, [-1] if unreachable *)
  post : int array;  (** postorder index, [-1] if unreachable *)
  entry : int array;  (** DFS interval entry time *)
  exit_ : int array;  (** DFS interval exit time *)
  parent : int array;  (** DFS tree parent, [-1] for root/unreachable *)
  count : int;  (** number of reachable nodes *)
}

type edge_kind = Tree | Back | Forward | Cross

(** Run an iterative DFS from [root] (successors in adjacency order). *)
val number : 'l Digraph.t -> root:int -> numbering

(** Is the node reachable from the DFS root? *)
val reachable : numbering -> int -> bool

(** [is_ancestor num u v] — [u] is a (reflexive) DFS-tree ancestor of [v]. *)
val is_ancestor : numbering -> int -> int -> bool

(** Classify an edge between reachable nodes.
    Raises [Invalid_argument] on unreachable endpoints. *)
val classify : numbering -> 'l Digraph.edge -> edge_kind

(** Reachable nodes in postorder. *)
val postorder : 'l Digraph.t -> root:int -> int array

(** Reachable nodes in reverse postorder (root first). *)
val rev_postorder : 'l Digraph.t -> root:int -> int array

(** Reverse-postorder index per node; [max_int] for unreachable nodes. *)
val rpo_index : 'l Digraph.t -> root:int -> int array

(** All DFS back edges (target is a DFS-tree ancestor of the source). *)
val back_edges : 'l Digraph.t -> root:int -> 'l Digraph.edge list
