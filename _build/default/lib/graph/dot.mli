(** Graphviz DOT emission for {!Digraph}. *)

(** DOT attribute list, e.g. [["label", "x"; "style", "dashed"]]. *)
type attrs = (string * string) list

(** Emit a digraph in DOT syntax.  [node_attrs]/[edge_attrs] decorate nodes
    and edges; [skip_node] suppresses nodes (and their incident edges). *)
val emit :
  ?name:string ->
  ?node_attrs:(int -> attrs) ->
  ?edge_attrs:('l Digraph.edge -> attrs) ->
  ?skip_node:(int -> bool) ->
  Format.formatter ->
  'l Digraph.t ->
  unit

(** {!emit} to a string. *)
val to_string :
  ?name:string ->
  ?node_attrs:(int -> attrs) ->
  ?edge_attrs:('l Digraph.edge -> attrs) ->
  ?skip_node:(int -> bool) ->
  'l Digraph.t ->
  string
