(** Least common ancestors in a rooted forest given as a parent array. *)

type t

(** [of_parents parent] builds the structure; [parent.(v) = -1] marks roots.
    The array must describe a forest (no cycles). *)
val of_parents : int array -> t

(** Depth of a node (roots have depth 0). *)
val depth : t -> int -> int

(** Parent of a node, [None] for roots. *)
val parent : t -> int -> int option

(** Least common ancestor.  Raises [Not_found] if the nodes are in
    different trees of the forest. *)
val lca : t -> int -> int -> int

val lca_opt : t -> int -> int -> int option

(** [is_ancestor t u v] — [u] is a (reflexive) ancestor of [v]. *)
val is_ancestor : t -> int -> int -> bool
