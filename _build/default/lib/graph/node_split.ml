(* Node splitting: transform an irreducible flowgraph into an equivalent
   reducible one by duplicating nodes ("a standard approach", ASU §10.4,
   cited by the paper when it assumes reducibility).

   Method: an irreducible core is a nontrivial SCC of the graph with
   natural back edges removed (Reducibility.forward_part).  Take its
   closure under all cycles (the enclosing SCC of the full graph) as the
   region, find the region's entry nodes (entered from outside; the root
   counts as externally entered), keep the first entry with the original
   region, and give every other entry its own complete copy of the region:
   outside edges into entry e_j are redirected to e_j's copy, internal
   edges stay within each copy, edges leaving the region are duplicated
   unchanged.  Every copy is then a single-entry region, so its entry
   dominates it and the back edges to the entry become natural; any
   remaining irreducible core lies strictly inside a copy minus its entry,
   which is strictly smaller — hence termination, by induction on core
   size (with the textbook exponential worst case, guarded by fuel). *)

exception Gave_up of int (* nodes at the time we stopped *)

let make_reducible g ~root ~on_copy =
  let fuel = ref (10 * Digraph.num_nodes g + 100) in
  let splits = ref [] in
  let rec go () =
    let fwd = Reducibility.forward_part g ~root in
    let cores = List.filter (fun comp -> List.length comp > 1) (Topo.scc fwd) in
    match cores with
    | [] -> () (* every remaining cycle is a natural loop: reducible *)
    | core :: _ ->
        decr fuel;
        if !fuel <= 0 then raise (Gave_up (Digraph.num_nodes g));
        (* Close the core under all cycles of g: natural sub-loops woven
           through it must be duplicated along with it.  If the closure has
           a single entry, that entry dominates it and the irreducibility
           is strictly inside: shrink the region by dropping the entry and
           re-closing around the core, until at least two entries remain
           (the bare core always has two or more). *)
        let witness = List.hd core in
        let entries_of region =
          let in_region = Hashtbl.create 16 in
          List.iter (fun n -> Hashtbl.replace in_region n ()) region;
          ( in_region,
            List.filter
              (fun v ->
                v = root
                || List.exists
                     (fun p -> not (Hashtbl.mem in_region p))
                     (Digraph.preds g v))
              region )
        in
        (* SCC containing [witness] in the subgraph induced on [nodes] *)
        let induced_scc nodes =
          let keep = Hashtbl.create 16 in
          List.iter (fun n -> Hashtbl.replace keep n ()) nodes;
          let sub = Digraph.create () in
          ignore (Digraph.add_nodes sub (Digraph.num_nodes g));
          Digraph.iter_edges
            (fun e ->
              if Hashtbl.mem keep e.src && Hashtbl.mem keep e.dst then
                ignore (Digraph.add_edge sub ~src:e.src ~dst:e.dst ~label:()))
            g;
          match List.find_opt (List.mem witness) (Topo.scc sub) with
          | Some comp -> comp
          | None -> [ witness ]
        in
        let rec narrow region =
          match entries_of region with
          | _, ([] | [ _ ]) when List.length region > List.length core ->
              (* zero/one entry: drop the entries and re-close inward *)
              let _, es = entries_of region in
              let region' =
                induced_scc (List.filter (fun v -> not (List.mem v es)) region)
              in
              if List.length region' < List.length region then narrow region'
              else raise (Gave_up (Digraph.num_nodes g))
          | in_region, entries -> (in_region, entries, region)
        in
        let all_nodes =
          match List.find_opt (List.mem witness) (Topo.scc g) with
          | Some comp -> comp
          | None -> core
        in
        let in_region, entries, region = narrow all_nodes in
        (match entries with
        | [] | [ _ ] ->
            (* cannot happen for a genuine irreducible core; bail out
               rather than loop *)
            raise (Gave_up (Digraph.num_nodes g))
        | _keep :: dup_entries ->
            List.iter
              (fun entry ->
                (* a full copy of the region for this entry *)
                let clone = Hashtbl.create 16 in
                List.iter
                  (fun r ->
                    let r' = Digraph.add_node g in
                    on_copy ~orig:r ~copy:r';
                    splits := (r, r') :: !splits;
                    Hashtbl.replace clone r r')
                  region;
                List.iter
                  (fun r ->
                    let r' = Hashtbl.find clone r in
                    List.iter
                      (fun (e : _ Digraph.edge) ->
                        let dst =
                          match Hashtbl.find_opt clone e.dst with
                          | Some d' -> d'
                          | None -> e.dst
                        in
                        ignore (Digraph.add_edge g ~src:r' ~dst ~label:e.label))
                      (Digraph.succ_edges g r))
                  region;
                (* outside edges entering at this entry now enter the copy *)
                let entry' = Hashtbl.find clone entry in
                List.iter
                  (fun (e : _ Digraph.edge) ->
                    if not (Hashtbl.mem in_region e.src) then begin
                      Digraph.remove_edge g e;
                      ignore (Digraph.add_edge g ~src:e.src ~dst:entry' ~label:e.label)
                    end)
                  (Digraph.pred_edges g entry))
              dup_entries);
        go ()
  in
  go ();
  List.rev !splits
