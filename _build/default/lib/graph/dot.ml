(* Graphviz DOT emission for any Digraph, used by the CLI to dump CFG /
   ECFG / FCDG renderings comparable to the paper's Figures 1–3. *)

type attrs = (string * string) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_attrs fmt (attrs : attrs) =
  match attrs with
  | [] -> ()
  | _ ->
      Fmt.pf fmt " [%a]"
        (Fmt.list ~sep:(Fmt.any ", ") (fun fmt (k, v) ->
             Fmt.pf fmt "%s=\"%s\"" k (escape v)))
        attrs

let emit ?(name = "g") ?(node_attrs = fun _ -> []) ?(edge_attrs = fun _ -> [])
    ?(skip_node = fun _ -> false) fmt g =
  Fmt.pf fmt "@[<v>digraph %s {@," name;
  Fmt.pf fmt "  node [shape=box, fontname=\"monospace\"];@,";
  Digraph.iter_nodes
    (fun v ->
      if not (skip_node v) then Fmt.pf fmt "  n%d%a;@," v pp_attrs (node_attrs v))
    g;
  Digraph.iter_edges
    (fun e ->
      if not (skip_node e.Digraph.src || skip_node e.dst) then
        Fmt.pf fmt "  n%d -> n%d%a;@," e.src e.dst pp_attrs (edge_attrs e))
    g;
  Fmt.pf fmt "}@]@."

let to_string ?name ?node_attrs ?edge_attrs ?skip_node g =
  Fmt.str "%a" (fun fmt g -> emit ?name ?node_attrs ?edge_attrs ?skip_node fmt g) g
