(* Dominator trees via the Cooper–Harvey–Kennedy iterative algorithm
   ("A Simple, Fast Dominance Algorithm", 2001).

   Runs on arbitrary flowgraphs (not just reducible ones) and is fast enough
   at CFG scale.  Postdominators reuse this module on the reversed graph
   (see Postdom). *)

type t = {
  root : int;
  idom : int array; (* immediate dominator; root maps to itself; -1 unreachable *)
  depth : int array; (* depth in the dominator tree, root = 0, -1 unreachable *)
  children : int list array; (* dominator tree children *)
  rpo : int array; (* reachable nodes in reverse postorder *)
}

let compute g ~root =
  let n = Digraph.num_nodes g in
  let rpo = Dfs.rev_postorder g ~root in
  let rpo_idx = Array.make n max_int in
  Array.iteri (fun i v -> rpo_idx.(v) <- i) rpo;
  let idom = Array.make n (-1) in
  idom.(root) <- root;
  (* Walk the two candidates up the (partially built) dominator tree until
     they meet; comparisons use RPO indices. *)
  let rec intersect u v =
    if u = v then u
    else if rpo_idx.(u) > rpo_idx.(v) then intersect idom.(u) v
    else intersect u idom.(v)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> root then begin
          let new_idom =
            List.fold_left
              (fun acc p ->
                if idom.(p) = -1 then acc
                else match acc with None -> Some p | Some a -> Some (intersect a p))
              None (Digraph.preds g b)
          in
          match new_idom with
          | None -> () (* no processed predecessor yet *)
          | Some d ->
              if idom.(b) <> d then begin
                idom.(b) <- d;
                changed := true
              end
        end)
      rpo
  done;
  let depth = Array.make n (-1) in
  let children = Array.make n [] in
  Array.iter
    (fun v ->
      if v = root then depth.(v) <- 0
      else begin
        depth.(v) <- depth.(idom.(v)) + 1;
        children.(idom.(v)) <- v :: children.(idom.(v))
      end)
    rpo;
  Array.iteri (fun i c -> children.(i) <- List.rev c) children;
  { root; idom; depth; children; rpo }

let idom t n = if n = t.root then None else if t.idom.(n) = -1 then None else Some t.idom.(n)

let reachable t n = n = t.root || t.idom.(n) <> -1

let depth t n = t.depth.(n)

let children t n = t.children.(n)

(* Reflexive dominance: walk the shallower node's ancestor chain is wrong —
   instead lift the deeper node up to the depth of [u] and compare. *)
let dominates t u v =
  if not (reachable t u && reachable t v) then false
  else begin
    let x = ref v in
    while t.depth.(!x) > t.depth.(u) do
      x := t.idom.(!x)
    done;
    !x = u
  end

let strictly_dominates t u v = u <> v && dominates t u v

let dominators t v =
  if not (reachable t v) then []
  else begin
    let rec go x acc = if x = t.root then t.root :: acc else go t.idom.(x) (x :: acc) in
    go v []
  end
