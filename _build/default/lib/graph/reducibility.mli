(** Reducibility testing (Hecht–Ullman / ASU §10.4 characterization). *)

(** Edges whose target dominates their source (natural-loop back edges),
    among nodes reachable from [root]. *)
val natural_back_edges : 'l Digraph.t -> root:int -> 'l Digraph.edge list

(** Copy of the reachable subgraph with natural back edges removed and
    labels erased.  Acyclic iff the graph is reducible. *)
val forward_part : 'l Digraph.t -> root:int -> unit Digraph.t

(** A flowgraph is reducible iff {!forward_part} is acyclic. *)
val is_reducible : 'l Digraph.t -> root:int -> bool

(** Retreating edges of a DFS that are not natural back edges — witnesses of
    irreducibility.  May be empty for an irreducible graph under an unlucky
    DFS order. *)
val offending_edges : 'l Digraph.t -> root:int -> 'l Digraph.edge list

(** [Some back_edges] when reducible, [None] otherwise. *)
val back_edges_if_reducible : 'l Digraph.t -> root:int -> 'l Digraph.edge list option
