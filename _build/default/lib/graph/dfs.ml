(* Depth-first traversal, numbering and edge classification.

   Reverse postorder drives the dominator fixpoint and the FCDG back-edge
   test; the entry/exit interval numbering gives O(1) ancestor queries for
   the reducibility test and back-edge classification. *)

type numbering = {
  order : int array; (* nodes in DFS preorder (only the visited prefix) *)
  visited : bool array;
  pre : int array; (* preorder index, -1 if unreachable *)
  post : int array; (* postorder index, -1 if unreachable *)
  entry : int array; (* DFS interval entry time *)
  exit_ : int array; (* DFS interval exit time *)
  parent : int array; (* DFS tree parent, -1 for root/unreachable *)
  count : int; (* number of reachable nodes *)
}

type edge_kind = Tree | Back | Forward | Cross

(* Iterative DFS (explicit stack) so that deep CFGs cannot blow the OCaml
   stack.  Successors are visited in adjacency order. *)
let number g ~root =
  let n = Digraph.num_nodes g in
  let visited = Array.make n false in
  let pre = Array.make n (-1) in
  let post = Array.make n (-1) in
  let entry = Array.make n (-1) in
  let exit_ = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let order = Array.make n (-1) in
  let pre_ctr = ref 0 and post_ctr = ref 0 and clock = ref 0 in
  (* stack holds (node, remaining successor list) *)
  let stack = ref [] in
  let enter u p =
    visited.(u) <- true;
    parent.(u) <- p;
    pre.(u) <- !pre_ctr;
    order.(!pre_ctr) <- u;
    incr pre_ctr;
    entry.(u) <- !clock;
    incr clock;
    stack := (u, Digraph.succs g u) :: !stack
  in
  enter root (-1);
  while !stack <> [] do
    match !stack with
    | [] -> assert false
    | (u, ss) :: rest -> (
        match ss with
        | [] ->
            post.(u) <- !post_ctr;
            incr post_ctr;
            exit_.(u) <- !clock;
            incr clock;
            stack := rest
        | v :: ss' ->
            stack := (u, ss') :: rest;
            if not visited.(v) then enter v u)
  done;
  { order; visited; pre; post; entry; exit_; parent; count = !pre_ctr }

let reachable num n = num.visited.(n)

(* [is_ancestor num u v]: u is an ancestor of v in the DFS tree (reflexive). *)
let is_ancestor num u v =
  num.visited.(u) && num.visited.(v)
  && num.entry.(u) <= num.entry.(v)
  && num.exit_.(v) <= num.exit_.(u)

let classify num (e : 'l Digraph.edge) =
  let u = e.src and v = e.dst in
  if (not num.visited.(u)) || not num.visited.(v) then
    invalid_arg "Dfs.classify: edge touches unreachable node";
  (* Self loops and ancestors are Back; among descendant edges, parallel
     copies of the tree edge also report Tree (the distinction is irrelevant
     to every client, which only cares about Back). *)
  if is_ancestor num v u then Back
  else if is_ancestor num u v then if num.parent.(v) = u then Tree else Forward
  else Cross

let postorder g ~root =
  let num = number g ~root in
  let out = Array.make num.count (-1) in
  for i = 0 to Digraph.num_nodes g - 1 do
    if num.visited.(i) then out.(num.post.(i)) <- i
  done;
  out

let rev_postorder g ~root =
  let po = postorder g ~root in
  let n = Array.length po in
  Array.init n (fun i -> po.(n - 1 - i))

(* Reverse-postorder index per node; unreachable nodes get max_int so they
   sort last and never look like ancestors. *)
let rpo_index g ~root =
  let rpo = rev_postorder g ~root in
  let idx = Array.make (Digraph.num_nodes g) max_int in
  Array.iteri (fun i n -> idx.(n) <- i) rpo;
  idx

let back_edges g ~root =
  let num = number g ~root in
  Digraph.fold_edges
    (fun acc e ->
      if num.visited.(e.Digraph.src) && num.visited.(e.dst) && classify num e = Back
      then e :: acc
      else acc)
    [] g
  |> List.rev
