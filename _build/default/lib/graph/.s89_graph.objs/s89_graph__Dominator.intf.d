lib/graph/dominator.mli: Digraph
