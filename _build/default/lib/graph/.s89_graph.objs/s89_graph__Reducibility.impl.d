lib/graph/reducibility.ml: Dfs Digraph Dominator List Topo
