lib/graph/node_split.mli: Digraph
