lib/graph/dot.ml: Buffer Digraph Fmt String
