lib/graph/dfs.mli: Digraph
