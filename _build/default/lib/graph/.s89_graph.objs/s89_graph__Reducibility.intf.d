lib/graph/reducibility.mli: Digraph
