lib/graph/postdom.ml: Digraph Dominator
