lib/graph/topo.ml: Array Digraph Int List Set
