lib/graph/dominator.ml: Array Dfs Digraph List
