lib/graph/digraph.ml: Fmt List Printf Vec
