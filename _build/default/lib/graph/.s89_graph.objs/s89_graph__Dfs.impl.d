lib/graph/dfs.ml: Array Digraph List
