lib/graph/postdom.mli: Digraph
