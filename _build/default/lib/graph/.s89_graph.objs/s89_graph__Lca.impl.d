lib/graph/lca.ml: Array
