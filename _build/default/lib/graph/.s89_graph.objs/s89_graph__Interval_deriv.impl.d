lib/graph/interval_deriv.ml: Array Dfs Digraph Hashtbl List Queue
