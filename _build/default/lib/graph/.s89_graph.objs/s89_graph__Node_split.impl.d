lib/graph/node_split.ml: Digraph Hashtbl List Reducibility Topo
