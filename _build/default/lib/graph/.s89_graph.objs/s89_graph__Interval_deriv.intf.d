lib/graph/interval_deriv.mli: Digraph Hashtbl
