lib/graph/lca.mli:
