lib/graph/vec.mli:
