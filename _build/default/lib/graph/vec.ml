(* Growable arrays.

   OCaml 5.1 predates [Dynarray] (added in 5.2), so we carry a small,
   dependency-free resizable vector.  It is used pervasively by the graph
   structures, which grow node by node during CFG construction. *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a; (* placeholder stored in unused slots *)
}

let create ~dummy = { data = Array.make 8 dummy; len = 0; dummy }

let make n x ~dummy =
  let data = Array.make (max n 8) dummy in
  Array.fill data 0 n x;
  { data; len = n; dummy }

let length t = t.len

let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- x

let ensure_capacity t n =
  if n > Array.length t.data then begin
    let cap = ref (Array.length t.data) in
    while !cap < n do
      cap := !cap * 2
    done;
    let data = Array.make !cap t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure_capacity t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop: empty";
  t.len <- t.len - 1;
  let x = t.data.(t.len) in
  t.data.(t.len) <- t.dummy;
  x

let top t =
  if t.len = 0 then invalid_arg "Vec.top: empty";
  t.data.(t.len - 1)

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i) :: acc) in
  go (t.len - 1) []

let to_array t = Array.sub t.data 0 t.len

let of_list xs ~dummy =
  let t = create ~dummy in
  List.iter (push t) xs;
  t

let map f t ~dummy =
  let r = create ~dummy in
  iter (fun x -> push r (f x)) t;
  r

let filter p t =
  let r = create ~dummy:t.dummy in
  iter (fun x -> if p x then push r x) t;
  r
