(** Growable arrays (OCaml 5.1 has no [Dynarray]). *)

type 'a t

(** [create ~dummy] is a fresh empty vector.  [dummy] fills unused slots. *)
val create : dummy:'a -> 'a t

(** [make n x ~dummy] is a vector of [n] copies of [x]. *)
val make : int -> 'a -> dummy:'a -> 'a t

(** Number of elements. *)
val length : 'a t -> int

val is_empty : 'a t -> bool

(** [get t i] is the [i]th element; raises [Invalid_argument] out of bounds. *)
val get : 'a t -> int -> 'a

(** [set t i x] replaces the [i]th element. *)
val set : 'a t -> int -> 'a -> unit

(** Append one element at the end. *)
val push : 'a t -> 'a -> unit

(** Remove and return the last element. *)
val pop : 'a t -> 'a

(** Last element without removing it. *)
val top : 'a t -> 'a

(** Remove all elements. *)
val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : 'a list -> dummy:'a -> 'a t
val map : ('a -> 'b) -> 'a t -> dummy:'b -> 'b t

(** [filter p t] is a fresh vector of the elements satisfying [p]. *)
val filter : ('a -> bool) -> 'a t -> 'a t
