(** Directed labelled multigraphs over dense integer node ids.

    Nodes are integers [0 .. num_nodes-1] allocated by {!add_node}.  Parallel
    edges are permitted, as required by Definition 1 of the paper ("CFG is in
    general a multi-graph"). *)

(** A labelled edge.  Edges are plain data and compare structurally. *)
type 'l edge = { src : int; dst : int; label : 'l }

(** A mutable directed multigraph with edge labels of type ['l]. *)
type 'l t

(** A fresh empty graph. *)
val create : unit -> 'l t

(** Number of allocated nodes. *)
val num_nodes : 'l t -> int

(** Allocate a fresh node and return its id. *)
val add_node : 'l t -> int

(** [add_nodes g n] allocates [n] fresh nodes and returns their ids in order. *)
val add_nodes : 'l t -> int -> int list

(** [mem_node g n] is true when [n] is a valid node id of [g]. *)
val mem_node : 'l t -> int -> bool

(** Insert an edge and return it.  Raises [Invalid_argument] on unknown ids. *)
val add_edge : 'l t -> src:int -> dst:int -> label:'l -> 'l edge

(** Remove one occurrence of a structurally equal edge.
    Raises [Not_found] if absent. *)
val remove_edge : 'l t -> 'l edge -> unit

(** Out-edges of a node, in insertion order. *)
val succ_edges : 'l t -> int -> 'l edge list

(** In-edges of a node, in insertion order. *)
val pred_edges : 'l t -> int -> 'l edge list

(** Successor node ids (with multiplicity), in insertion order. *)
val succs : 'l t -> int -> int list

(** Predecessor node ids (with multiplicity), in insertion order. *)
val preds : 'l t -> int -> int list

val out_degree : 'l t -> int -> int
val in_degree : 'l t -> int -> int
val iter_nodes : (int -> unit) -> 'l t -> unit
val iter_edges : ('l edge -> unit) -> 'l t -> unit
val fold_edges : ('acc -> 'l edge -> 'acc) -> 'acc -> 'l t -> 'acc

(** All edges, grouped by source node in insertion order. *)
val edges : 'l t -> 'l edge list

val num_edges : 'l t -> int

(** All edges from [src] to [dst]. *)
val find_edges : 'l t -> src:int -> dst:int -> 'l edge list

val has_edge : 'l t -> src:int -> dst:int -> bool

(** Reversed copy: every edge [(u,v,l)] becomes [(v,u,l)]. *)
val reverse : 'l t -> 'l t

(** Structure-preserving copy. *)
val copy : 'l t -> 'l t

(** Copy with labels recomputed from each edge. *)
val map_labels : ('l edge -> 'm) -> 'l t -> 'm t

(** Debug printer. *)
val pp : ?pp_label:(Format.formatter -> 'l -> unit) -> Format.formatter -> 'l t -> unit
