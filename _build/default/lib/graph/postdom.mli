(** Postdominator trees: dominators of the reversed graph rooted at the exit. *)

type t

(** Postdominator tree of the nodes that can reach [exit_]. *)
val compute : 'l Digraph.t -> exit_:int -> t

(** Immediate postdominator; [None] for the exit and nodes that cannot reach it. *)
val ipostdom : t -> int -> int option

(** Can the node reach the exit? *)
val reachable : t -> int -> bool

(** Depth in the postdominator tree (exit = 0); [-1] if it cannot reach the exit. *)
val depth : t -> int -> int

(** Postdominator-tree children. *)
val children : t -> int -> int list

(** [postdominates t u v] — reflexive postdominance of [v] by [u]. *)
val postdominates : t -> int -> int -> bool

val strictly_postdominates : t -> int -> int -> bool

(** Postdominators of [v], exit first, down to [v] itself. *)
val postdominators : t -> int -> int list
