(* Directed labelled multigraphs over dense integer node ids.

   This is the common substrate for every analysis in the library: control
   flow graphs, control dependence graphs, call graphs.  Nodes are integers
   [0 .. num_nodes-1] allocated by [add_node]; parallel edges with distinct
   (or even equal) labels are permitted, as required by Definition 1 of the
   paper (a CFG "is in general a multi-graph"). *)

type 'l edge = { src : int; dst : int; label : 'l }

type 'l t = {
  succs : 'l edge list Vec.t; (* out-edges, most recently added first *)
  preds : 'l edge list Vec.t; (* in-edges *)
}

let create () = { succs = Vec.create ~dummy:[]; preds = Vec.create ~dummy:[] }

let num_nodes g = Vec.length g.succs

let add_node g =
  let id = Vec.length g.succs in
  Vec.push g.succs [];
  Vec.push g.preds [];
  id

let add_nodes g n = List.init n (fun _ -> add_node g)

let mem_node g n = n >= 0 && n < num_nodes g

let check_node g n =
  if not (mem_node g n) then
    invalid_arg (Printf.sprintf "Digraph: unknown node %d" n)

let add_edge g ~src ~dst ~label =
  check_node g src;
  check_node g dst;
  let e = { src; dst; label } in
  Vec.set g.succs src (e :: Vec.get g.succs src);
  Vec.set g.preds dst (e :: Vec.get g.preds dst);
  e

(* Edges are compared structurally; removing deletes one occurrence from each
   adjacency list. *)
let remove_edge g (e : 'l edge) =
  let rec remove_one = function
    | [] -> raise Not_found
    | x :: rest -> if x = e then rest else x :: remove_one rest
  in
  Vec.set g.succs e.src (remove_one (Vec.get g.succs e.src));
  Vec.set g.preds e.dst (remove_one (Vec.get g.preds e.dst))

let succ_edges g n =
  check_node g n;
  List.rev (Vec.get g.succs n)

let pred_edges g n =
  check_node g n;
  List.rev (Vec.get g.preds n)

let succs g n = List.map (fun e -> e.dst) (succ_edges g n)
let preds g n = List.map (fun e -> e.src) (pred_edges g n)

let out_degree g n = List.length (Vec.get g.succs n)
let in_degree g n = List.length (Vec.get g.preds n)

let iter_nodes f g =
  for n = 0 to num_nodes g - 1 do
    f n
  done

let iter_edges f g = iter_nodes (fun n -> List.iter f (succ_edges g n)) g

let fold_edges f init g =
  let acc = ref init in
  iter_edges (fun e -> acc := f !acc e) g;
  !acc

let edges g = List.rev (fold_edges (fun acc e -> e :: acc) [] g)

let num_edges g = fold_edges (fun acc _ -> acc + 1) 0 g

let find_edges g ~src ~dst =
  List.filter (fun e -> e.dst = dst) (succ_edges g src)

let has_edge g ~src ~dst = find_edges g ~src ~dst <> []

(* A reversed copy: every edge (u,v,l) becomes (v,u,l).  Postdominators are
   dominators of the reverse graph, so this is the workhorse of Postdom. *)
let reverse g =
  let r = create () in
  ignore (add_nodes r (num_nodes g));
  iter_edges (fun e -> ignore (add_edge r ~src:e.dst ~dst:e.src ~label:e.label)) g;
  r

let copy g =
  let r = create () in
  ignore (add_nodes r (num_nodes g));
  iter_edges (fun e -> ignore (add_edge r ~src:e.src ~dst:e.dst ~label:e.label)) g;
  r

let map_labels f g =
  let r = create () in
  ignore (add_nodes r (num_nodes g));
  iter_edges (fun e -> ignore (add_edge r ~src:e.src ~dst:e.dst ~label:(f e))) g;
  r

let pp ?(pp_label = fun fmt _ -> Fmt.string fmt "") fmt g =
  Fmt.pf fmt "@[<v>digraph with %d nodes, %d edges" (num_nodes g) (num_edges g);
  iter_edges
    (fun e -> Fmt.pf fmt "@,  %d -> %d %a" e.src e.dst pp_label e.label)
    g;
  Fmt.pf fmt "@]"
