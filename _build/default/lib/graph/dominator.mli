(** Dominator trees (Cooper–Harvey–Kennedy iterative algorithm).

    Works on arbitrary flowgraphs.  Nodes unreachable from the root are
    reported unreachable and dominate nothing. *)

type t

(** Compute the dominator tree of the nodes reachable from [root]. *)
val compute : 'l Digraph.t -> root:int -> t

(** Immediate dominator; [None] for the root and unreachable nodes. *)
val idom : t -> int -> int option

(** Is the node reachable from the root? *)
val reachable : t -> int -> bool

(** Depth in the dominator tree (root = 0); [-1] if unreachable. *)
val depth : t -> int -> int

(** Dominator-tree children. *)
val children : t -> int -> int list

(** [dominates t u v] — reflexive dominance of [v] by [u]. *)
val dominates : t -> int -> int -> bool

val strictly_dominates : t -> int -> int -> bool

(** Dominators of [v] from the root down to [v] itself ([] if unreachable). *)
val dominators : t -> int -> int list
