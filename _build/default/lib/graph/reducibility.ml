(* Reducibility testing.

   A flowgraph is reducible iff deleting every edge whose target dominates
   its source (the natural-loop back edges) leaves an acyclic graph
   (Aho–Sethi–Ullman §10.4, Hecht–Ullman).  The paper assumes reducible
   CFGs and points at node splitting (see Node_split) for the rest. *)

(* Edges whose target dominates their source, among reachable nodes. *)
let natural_back_edges g ~root =
  let dom = Dominator.compute g ~root in
  Digraph.fold_edges
    (fun acc e ->
      if
        Dominator.reachable dom e.Digraph.src
        && Dominator.dominates dom e.dst e.src
      then e :: acc
      else acc)
    [] g
  |> List.rev

(* The graph with natural back edges removed (labels erased). *)
let forward_part g ~root =
  let dom = Dominator.compute g ~root in
  let fwd = Digraph.create () in
  ignore (Digraph.add_nodes fwd (Digraph.num_nodes g));
  Digraph.iter_edges
    (fun e ->
      if
        Dominator.reachable dom e.Digraph.src
        && Dominator.reachable dom e.dst
        && not (Dominator.dominates dom e.dst e.src)
      then ignore (Digraph.add_edge fwd ~src:e.src ~dst:e.dst ~label:()))
    g;
  fwd

let is_reducible g ~root = Topo.is_acyclic (forward_part g ~root)

(* Retreating edges of some DFS that are not natural back edges — the
   witnesses of irreducibility that Node_split removes.  May be empty even
   for an irreducible graph under an unlucky DFS order, in which case the
   caller should consult [forward_part] cycles instead. *)
let offending_edges g ~root =
  let dom = Dominator.compute g ~root in
  let num = Dfs.number g ~root in
  Digraph.fold_edges
    (fun acc e ->
      if
        Dfs.reachable num e.Digraph.src
        && Dfs.reachable num e.dst
        && Dfs.classify num e = Dfs.Back
        && not (Dominator.dominates dom e.dst e.src)
      then e :: acc
      else acc)
    [] g
  |> List.rev

let back_edges_if_reducible g ~root =
  if is_reducible g ~root then Some (natural_back_edges g ~root) else None
