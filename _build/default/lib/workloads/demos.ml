(* Small demonstration programs used by examples, tests and benches. *)

(* The paper's Figure 1 code fragment, embedded in a runnable program.
   M and N are chosen so that the loop body executes a few times and
   terminates through the IF (N .LT. 0) branch. *)
let fig1 ?(m = 3) ?(n = 7) () =
  Printf.sprintf
    {|
      PROGRAM FIG1
      INTEGER M, N
      M = %d
      N = %d
10    IF (M .GE. 0) THEN
        IF (N .LT. 0) GOTO 20
      ELSE
        IF (N .GE. 0) GOTO 20
      ENDIF
      CALL FOO(M,N)
      GOTO 10
20    CONTINUE
      END

      SUBROUTINE FOO(M,N)
      M = M - 1
      IF (M .EQ. 1) N = -N
      END
|}
    m n

(* A branchy numeric program whose execution time genuinely varies from
   run to run: used for estimator-accuracy experiments (estimated TIME
   vs. mean measured cycles, estimated STD_DEV vs. empirical). *)
let branchy ?(n = 200) () =
  Printf.sprintf
    {|
      PROGRAM BRANCHY
      REAL X(%d)
      INTEGER N, I
      N = %d
      S = 0.0
      DO 10 I = 1, N
        X(I) = RAND()
10    CONTINUE
      DO 20 I = 1, N
        IF (X(I) .GT. 0.5) THEN
          S = S + SQRT(X(I)) * FN(X(I))
        ELSE
          S = S - X(I)
        ENDIF
        IF (X(I) .GT. 0.9) THEN
          S = S + EXP(X(I))
        ENDIF
20    CONTINUE
      END

      REAL FUNCTION FN(Y)
      IF (Y .GT. 0.75) THEN
        FN = Y * Y
      ELSE
        FN = Y + 1.0
      ENDIF
      END
|}
    n n

(* A loop whose body time depends on data through a heavy conditional
   path — the §5 chunking scenario: the estimator's VAR of the body picks
   the chunk size. [p_heavy] is the probability (in percent) of the slow
   path. *)
let chunky ?(iters = 500) ?(p_heavy = 20) () =
  Printf.sprintf
    {|
      PROGRAM CHUNKY
      REAL W(%d)
      INTEGER N, I, K
      N = %d
      DO 10 I = 1, N
        W(I) = RAND()
10    CONTINUE
      S = 0.0
      DO 20 I = 1, N
        IF (W(I) .LT. %f) THEN
          DO 15 K = 1, 40
            S = S + SQRT(W(I) + REAL(K))
15        CONTINUE
        ELSE
          S = S + W(I)
        ENDIF
20    CONTINUE
      END
|}
    iters iters
    (float_of_int p_heavy /. 100.0)

(* Nested loops with data-dependent trip counts: exercises loop-frequency
   variance (profiled second moments vs. assumed distributions). *)
let nested_random ?(outer = 50) ?(max_inner = 30) () =
  Printf.sprintf
    {|
      PROGRAM NESTED
      INTEGER N, I, J, M
      N = %d
      S = 0.0
      DO 20 I = 1, N
        M = IRAND(%d)
        DO 10 J = 1, M
          S = S + REAL(J)*0.5
10      CONTINUE
20    CONTINUE
      END
|}
    outer max_inner

(* Mutual recursion (an extension the paper defers): EVEN/ODD on a counter.
   Used to exercise the fixpoint recursion policy. *)
let recursive ?(n = 12) () =
  Printf.sprintf
    {|
      PROGRAM RECUR
      INTEGER N, R
      N = %d
      R = 0
      CALL EVEN(N, R)
      END

      SUBROUTINE EVEN(N, R)
      INTEGER N, R
      IF (N .LE. 0) THEN
        R = 1
      ELSE
        CALL ODD(N - 1, R)
      ENDIF
      END

      SUBROUTINE ODD(N, R)
      INTEGER N, R
      IF (N .LE. 0) THEN
        R = 0
      ELSE
        CALL EVEN(N - 1, R)
      ENDIF
      END
|}
    n

(* Unstructured GOTO mess that is still reducible, plus a variant that is
   genuinely irreducible (two-entry loop) to exercise node splitting. *)
let irreducible () =
  {|
      PROGRAM IRRED
      INTEGER I, K
      I = 0
      K = 10
      IF (K .GT. 5) GOTO 20
10    I = I + 1
      GOTO 30
20    I = I + 2
30    K = K - 1
      IF (K .GT. 7) GOTO 10
      IF (K .GT. 0) GOTO 20
      END
|}

(* computed GOTO dispatcher *)
let computed_goto ?(n = 30) () =
  Printf.sprintf
    {|
      PROGRAM CGOTO
      INTEGER N, I, K, C1, C2, C3
      N = %d
      C1 = 0
      C2 = 0
      C3 = 0
      DO 50 I = 1, N
        K = IRAND(4)
        GOTO (10, 20, 30), K
        C3 = C3 - 1
        GOTO 40
10      C1 = C1 + 1
        GOTO 40
20      C2 = C2 + 1
        GOTO 40
30      C3 = C3 + 1
40      CONTINUE
50    CONTINUE
      END
|}
    n

(* Bubble sort with data-dependent swaps: the classic example of a branch
   whose probability drifts as the data gets sorted — a stress test for
   the estimator's independent-branch assumption. *)
let sort ?(n = 60) ?(passes = 0) () =
  let passes = if passes = 0 then n - 1 else passes in
  Printf.sprintf
    {|
      PROGRAM SORT
      REAL A(%d)
      INTEGER N, I, J, NSWAP
      N = %d
      DO 10 I = 1, N
        A(I) = RAND()
10    CONTINUE
      NSWAP = 0
      DO 30 I = 1, %d
        DO 20 J = 1, N - 1
          IF (A(J) .GT. A(J+1)) THEN
            T = A(J)
            A(J) = A(J+1)
            A(J+1) = T
            NSWAP = NSWAP + 1
          ENDIF
20      CONTINUE
30    CONTINUE
      END
|}
    n n passes

(* Sieve of Eratosthenes: integer-heavy with a data-dependent inner loop
   entry (only primes trigger the marking loop). *)
let sieve ?(n = 300) () =
  Printf.sprintf
    {|
      PROGRAM SIEVE
      INTEGER FLAGS(%d)
      INTEGER N, I, K, COUNT
      N = %d
      DO 10 I = 1, N
        FLAGS(I) = 1
10    CONTINUE
      COUNT = 0
      DO 30 I = 2, N
        IF (FLAGS(I) .EQ. 1) THEN
          COUNT = COUNT + 1
          K = I + I
20        IF (K .GT. N) GOTO 30
          FLAGS(K) = 0
          K = K + I
          GOTO 20
        ENDIF
30    CONTINUE
      END
|}
    n n
