(* SIMPLE: an MF77 stand-in for the Lawrence Livermore SIMPLE benchmark
   (Crowley–Hendrickson–Rudy 1978), the paper's second Table 1 program —
   2-D Lagrangian hydrodynamics with heat flow on an N×N mesh, NCYCLES
   time steps.

   The reproduction keeps the benchmark's computational character:
   per-cycle sweeps over the mesh with 5-point stencils (heat diffusion),
   velocity/position updates, an equation-of-state pass with a data-
   dependent branch (the "Courant" style limiter), boundary-condition
   passes over the mesh edges, and a global reduction deciding the time
   step.  Default size matches the paper: 100×100, NCYCLES = 10. *)

let default_n = 100
let default_cycles = 10

let source ?(n = default_n) ?(cycles = default_cycles) () =
  Printf.sprintf
    {|
      PROGRAM SIMPLE
      REAL R(%d,%d), Z(%d,%d), RU(%d,%d), ZU(%d,%d)
      REAL P(%d,%d), Q(%d,%d), E(%d,%d), T(%d,%d)
      INTEGER N, NC, I, J, ICYC
      N = %d
      NC = %d
!     --- mesh and state initialization ---
      DO 10 I = 1, N
        DO 10 J = 1, N
          R(I,J) = REAL(I) + 0.25*RAND()
          Z(I,J) = REAL(J) + 0.25*RAND()
          RU(I,J) = 0.0
          ZU(I,J) = 0.0
          P(I,J) = 1.0 + 0.1*RAND()
          Q(I,J) = 0.0
          E(I,J) = 2.5
          T(I,J) = 1.0 + 0.01*RAND()
10    CONTINUE
      DT = 0.001
      C0 = 1.4
!     --- time step loop ---
      DO 100 ICYC = 1, NC
!       hydro phase: velocity update from pressure gradients
        DO 20 I = 2, N-1
          DO 20 J = 2, N-1
            DPR = P(I+1,J) - P(I-1,J) + Q(I+1,J) - Q(I-1,J)
            DPZ = P(I,J+1) - P(I,J-1) + Q(I,J+1) - Q(I,J-1)
            RU(I,J) = RU(I,J) - DT*DPR*0.5
            ZU(I,J) = ZU(I,J) - DT*DPZ*0.5
20      CONTINUE
!       position update
        DO 30 I = 2, N-1
          DO 30 J = 2, N-1
            R(I,J) = R(I,J) + DT*RU(I,J)
            Z(I,J) = Z(I,J) + DT*ZU(I,J)
30      CONTINUE
!       artificial viscosity: only on compressing zones (branchy)
        DO 40 I = 2, N-1
          DO 40 J = 2, N-1
            DV = RU(I+1,J) - RU(I-1,J) + ZU(I,J+1) - ZU(I,J-1)
            IF (DV .LT. 0.0) THEN
              Q(I,J) = 2.0*DV*DV
            ELSE
              Q(I,J) = 0.0
            ENDIF
40      CONTINUE
!       equation of state with energy floor (data-dependent branch)
        DO 50 I = 2, N-1
          DO 50 J = 2, N-1
            E(I,J) = E(I,J) - DT*(P(I,J) + Q(I,J))*0.1
            IF (E(I,J) .LT. 0.1) E(I,J) = 0.1
            P(I,J) = (C0 - 1.0)*E(I,J)
50      CONTINUE
!       heat conduction: 5-point stencil sweep
        DO 60 I = 2, N-1
          DO 60 J = 2, N-1
            T(I,J) = T(I,J) + 0.05*(T(I+1,J) + T(I-1,J) + T(I,J+1)
     & + T(I,J-1) - 4.0*T(I,J))
60      CONTINUE
!       boundary conditions on the four mesh edges
        DO 70 I = 1, N
          T(I,1) = T(I,2)
          T(I,N) = T(I,N-1)
          RU(I,1) = 0.0
          RU(I,N) = 0.0
70      CONTINUE
        DO 80 J = 1, N
          T(1,J) = T(2,J)
          T(N,J) = T(N-1,J)
          ZU(1,J) = 0.0
          ZU(N,J) = 0.0
80      CONTINUE
!       new time step from a stability reduction (conditional update)
        VMAX = 0.0
        DO 90 I = 2, N-1
          DO 90 J = 2, N-1
            V = ABS(RU(I,J)) + ABS(ZU(I,J))
            IF (V .GT. VMAX) VMAX = V
90      CONTINUE
        DT = 0.001
        IF (VMAX .GT. 1.0) DT = 0.001/VMAX
100   CONTINUE
      END
|}
    n n n n n n n n n n n n n n n n n cycles
