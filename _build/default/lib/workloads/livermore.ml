(* LOOPS: an MF77 rendition of the 24 Livermore Fortran Kernels (McMahon
   1986), the paper's first Table 1 benchmark.

   These are structural stand-ins, not bit-exact ports: each kernel keeps
   the control-flow and access-pattern character of its original (DO
   nests, recurrences, strided and indirect access, the famously branchy
   kernels 15/16/17/24 with GOTOs and conditional loop exits), at a size
   that an interpreter handles comfortably.  Every kernel initializes its
   own locals (partly with RAND(), so profiled branch frequencies vary
   across seeded runs, as real input data would). *)

let n = 400 (* 1-D kernel length *)
let rep = 3 (* inner repetition count *)

let source =
  Printf.sprintf
    {|
      PROGRAM LOOPS
      CALL K1
      CALL K2
      CALL K3
      CALL K4
      CALL K5
      CALL K6
      CALL K7
      CALL K8
      CALL K9
      CALL K10
      CALL K11
      CALL K12
      CALL K13
      CALL K14
      CALL K15
      CALL K16
      CALL K17
      CALL K18
      CALL K19
      CALL K20
      CALL K21
      CALL K22
      CALL K23
      CALL K24
      END

!     kernel 1: hydro fragment
      SUBROUTINE K1
      REAL X(%d), Y(%d), Z(%d)
      INTEGER N, L, K
      N = %d
      DO 5 K = 1, N
        Y(K) = RAND()
        Z(K) = RAND()
5     CONTINUE
      Q = 0.5
      R = 0.1
      T = 0.01
      DO 10 L = 1, %d
        DO 10 K = 1, N - 11
          X(K) = Q + Y(K)*(R*Z(K+10) + T*Z(K+11))
10    CONTINUE
      END

!     kernel 2: ICCG-like halving recursion (strided sweep)
      SUBROUTINE K2
      REAL X(%d)
      INTEGER N, K, IPNT, IPNTP, II, I
      N = %d
      DO 5 K = 1, N
        X(K) = RAND()
5     CONTINUE
      II = N/2
      IPNTP = 0
20    IPNT = IPNTP
      IPNTP = IPNTP + II
      II = II/2
      I = IPNTP + 1
      DO 30 K = IPNT+2, IPNTP, 2
        I = I + 1
        X(I) = X(K) - X(K-1)*X(K+1)
30    CONTINUE
      IF (II .GT. 1) GOTO 20
      END

!     kernel 3: inner product
      SUBROUTINE K3
      REAL X(%d), Z(%d)
      INTEGER N, L, K
      N = %d
      DO 5 K = 1, N
        X(K) = RAND()
        Z(K) = RAND()
5     CONTINUE
      Q = 0.0
      DO 10 L = 1, %d
        DO 10 K = 1, N
          Q = Q + Z(K)*X(K)
10    CONTINUE
      END

!     kernel 4: banded linear equations
      SUBROUTINE K4
      REAL X(%d), Y(%d)
      INTEGER N, L, K, M, J
      N = %d
      DO 5 K = 1, N
        X(K) = 1.0
        Y(K) = 0.001
5     CONTINUE
      M = (N - 7)/2
      DO 10 L = 1, %d
        DO 10 K = 7, N, M
          Q = 0.0
          DO 15 J = 1, 4
            Q = Q + Y(J)*X(K-J)
15        CONTINUE
          X(K) = X(K) - Q*0.1
10    CONTINUE
      END

!     kernel 5: tri-diagonal elimination, below diagonal
      SUBROUTINE K5
      REAL X(%d), Y(%d), Z(%d)
      INTEGER N, L, I
      N = %d
      DO 5 I = 1, N
        X(I) = 0.0
        Y(I) = RAND()
        Z(I) = RAND()
5     CONTINUE
      DO 10 L = 1, %d
        DO 10 I = 2, N
          X(I) = Z(I)*(Y(I) - X(I-1))
10    CONTINUE
      END

!     kernel 6: general linear recurrence equations
      SUBROUTINE K6
      REAL W(%d), B(60,60)
      INTEGER N, L, I, K
      N = 50
      DO 5 I = 1, N
        W(I) = 0.01
        DO 5 K = 1, N
          B(K,I) = 0.001
5     CONTINUE
      DO 10 L = 1, %d
        DO 10 I = 2, N
          W(I) = 0.01
          DO 10 K = 1, I-1
            W(I) = W(I) + B(I,K)*W(I-K)
10    CONTINUE
      END

!     kernel 7: equation of state fragment
      SUBROUTINE K7
      REAL X(%d), Y(%d), Z(%d), U(%d)
      INTEGER N, L, K
      N = %d
      DO 5 K = 1, N
        Y(K) = RAND()
        Z(K) = RAND()
        U(K) = RAND()
5     CONTINUE
      Q = 0.5
      R = 0.1
      T = 0.01
      DO 10 L = 1, %d
        DO 10 K = 1, N - 6
          X(K) = U(K) + R*(Z(K) + R*Y(K)) +
     & T*(U(K+3) + R*(U(K+2) + R*U(K+1)) + T*(U(K+6) + Q*(U(K+5) + Q*U(K+4))))
10    CONTINUE
      END

!     kernel 8: ADI integration fragment
      SUBROUTINE K8
      REAL U1(5,105), U2(5,105), U3(5,105)
      INTEGER NL, KX, KY, L
      NL = 100
      DO 5 KX = 1, 5
        DO 5 KY = 1, NL + 3
          U1(KX,KY) = RAND()
          U2(KX,KY) = RAND()
          U3(KX,KY) = RAND()
5     CONTINUE
      A11 = 0.1
      A12 = 0.2
      DO 10 L = 1, %d
        DO 10 KX = 2, 4
          DO 10 KY = 2, NL
            U1(KX,KY) = U1(KX,KY) + A11*(U2(KX,KY+1) - U2(KX,KY-1))
     & + A12*(U3(KX,KY+1) - U3(KX,KY-1))
10    CONTINUE
      END

!     kernel 9: integrate predictors
      SUBROUTINE K9
      REAL PX(13,%d)
      INTEGER N, L, I, J
      N = 100
      DO 5 J = 1, 13
        DO 5 I = 1, N
          PX(J,I) = RAND()
5     CONTINUE
      DO 10 L = 1, %d
        DO 10 I = 1, N
          PX(1,I) = 0.1*PX(3,I) + 0.2*PX(4,I) + 0.3*PX(5,I)
     & + 0.4*PX(6,I) + 0.5*PX(7,I) + 0.6*PX(8,I)
10    CONTINUE
      END

!     kernel 10: difference predictors
      SUBROUTINE K10
      REAL CX(13,%d)
      INTEGER N, L, I
      N = 100
      DO 5 I = 1, N
        CX(5,I) = RAND()
        CX(6,I) = 0.0
        CX(7,I) = 0.0
5     CONTINUE
      DO 10 L = 1, %d
        DO 10 I = 1, N
          AR = CX(5,I)
          BR = AR - CX(6,I)
          CX(6,I) = AR
          CR = BR - CX(7,I)
          CX(7,I) = BR
          CX(8,I) = CR
10    CONTINUE
      END

!     kernel 11: first sum (prefix sum)
      SUBROUTINE K11
      REAL X(%d), Y(%d)
      INTEGER N, L, K
      N = %d
      DO 5 K = 1, N
        Y(K) = RAND()
5     CONTINUE
      DO 10 L = 1, %d
        X(1) = Y(1)
        DO 10 K = 2, N
          X(K) = X(K-1) + Y(K)
10    CONTINUE
      END

!     kernel 12: first difference
      SUBROUTINE K12
      REAL X(%d), Y(%d)
      INTEGER N, L, K
      N = %d
      DO 5 K = 1, N + 1
        Y(K) = RAND()
5     CONTINUE
      DO 10 L = 1, %d
        DO 10 K = 1, N
          X(K) = Y(K+1) - Y(K)
10    CONTINUE
      END

!     kernel 13: 2-D particle in cell (indirect addressing)
      SUBROUTINE K13
      REAL P(4,130), B(8,8), C(8,8), Y(%d), Z(%d), H(8,8)
      INTEGER NP, L, IP, I1, J1, I2, J2
      NP = 100
      DO 5 IP = 1, NP
        P(1,IP) = 1.0 + 6.0*RAND()
        P(2,IP) = 1.0 + 6.0*RAND()
        P(3,IP) = RAND()
        P(4,IP) = RAND()
5     CONTINUE
      DO 6 I1 = 1, 8
        DO 6 J1 = 1, 8
          B(I1,J1) = RAND()
          C(I1,J1) = RAND()
          H(I1,J1) = 0.0
6     CONTINUE
      DO 10 L = 1, %d
        DO 10 IP = 1, NP
          I1 = INT(P(1,IP))
          J1 = INT(P(2,IP))
          P(3,IP) = P(3,IP) + B(I1,J1)
          P(1,IP) = P(1,IP) + P(3,IP)*0.01
          I2 = INT(P(1,IP))
          J2 = INT(P(2,IP))
          IF (I2 .LT. 1) I2 = 1
          IF (I2 .GT. 8) I2 = 8
          P(1,IP) = P(1,IP) + C(I2,J2)
          IF (P(1,IP) .LT. 1.0) P(1,IP) = P(1,IP) + 6.0
          IF (P(1,IP) .GT. 7.0) P(1,IP) = P(1,IP) - 6.0
          H(I2,J2) = H(I2,J2) + 1.0
10    CONTINUE
      END

!     kernel 14: 1-D particle in cell
      SUBROUTINE K14
      REAL VX(%d), XX(%d), GR(%d), EX(%d), XI(%d)
      INTEGER N, L, K, IX
      N = 150
      DO 5 K = 1, N
        VX(K) = 0.0
        XX(K) = 1.0 + 62.0*RAND()
        EX(K) = RAND()
        GR(K) = RAND()
5     CONTINUE
      DO 10 L = 1, %d
        DO 10 K = 1, N
          IX = INT(XX(K))
          IF (IX .LT. 1) IX = 1
          IF (IX .GT. 64) IX = 64
          XI(K) = REAL(IX)
          VX(K) = VX(K) + EX(IX) + (XX(K) - XI(K))*GR(IX)
          XX(K) = XX(K) + VX(K)*0.0001
          IF (XX(K) .LT. 1.0) XX(K) = XX(K) + 60.0
          IF (XX(K) .GT. 63.0) XX(K) = XX(K) - 60.0
10    CONTINUE
      END

!     kernel 15: casual Fortran, development version (very branchy)
      SUBROUTINE K15
      REAL VY(30,30), VS(30,30), VF(30,30), VG(30,30), VH(30,30)
      INTEGER NG, NZ, L, J, K
      NG = 20
      NZ = 20
      DO 5 J = 1, NG
        DO 5 K = 1, NZ
          VY(J,K) = RAND() - 0.3
          VS(J,K) = RAND() - 0.4
          VF(J,K) = RAND()
          VG(J,K) = RAND()
          VH(J,K) = RAND()
5     CONTINUE
      DO 45 L = 1, %d
      DO 40 J = 2, NG
        DO 40 K = 2, NZ
          IF (J .LT. NG) GOTO 31
          VY(J,K) = 0.0
          GOTO 45
31        IF (VH(J,K+1) .GE. VH(J,K)) THEN
            T = 0.001
          ELSE
            T = 0.002
          ENDIF
          IF (VF(J,K) .GE. VF(J-1,K)) THEN
            R = VG(J-1,K)
          ELSE
            R = VG(J,K)
          ENDIF
          VY(J,K) = SQRT(VS(J,K)*VS(J,K) + R*R)*T/ABS(VS(J,K) + R + 0.01)
40    CONTINUE
45    CONTINUE
      END

!     kernel 16: Monte Carlo search loop (GOTO spaghetti)
      SUBROUTINE K16
      REAL PLAN(300), ZONE(300)
      INTEGER II, LB, K2, K3, L, I, J, IND, K, M
      II = 100
      LB = II + II
      K3 = 0
      K2 = 0
      DO 5 I = 1, 300
        PLAN(I) = RAND()*3.0
        ZONE(I) = 0.5 + RAND()
5     CONTINUE
      DO 485 L = 1, %d
        M = 1
        J = 2
        IND = 0
405     K = M + J
        K2 = K2 + 1
        IF (K .GT. 290) GOTO 475
        IF (PLAN(K) .EQ. ZONE(K)) GOTO 450
        IF (PLAN(K) .GT. ZONE(K)) GOTO 460
420     IF (IND .GT. 10) GOTO 475
        IND = IND + 1
        J = J + 1
        GOTO 405
450     K3 = K3 + 1
        GOTO 475
460     M = M + J
        IF (M .GT. 280) GOTO 475
        IND = 0
        J = 2
        GOTO 405
475     CONTINUE
485   CONTINUE
      END

!     kernel 17: implicit, conditional computation (GOTO loop)
      SUBROUTINE K17
      REAL VXNE(%d), VXND(%d), VE3(%d)
      INTEGER N, L, I, K
      N = 100
      DO 5 I = 1, N
        VXNE(I) = RAND()
        VXND(I) = RAND()
5     CONTINUE
      DO 62 L = 1, %d
        K = N
        XNM = 0.0033
        E6 = 0.1
60      VE3(K) = E6
        E6 = (VXNE(K) + VXND(K))*0.5 + XNM*E6
        XNM = E6*0.01
        K = K - 1
        IF (K .GT. 1) GOTO 60
        VE3(1) = E6
62    CONTINUE
      END

!     kernel 18: 2-D explicit hydrodynamics fragment
      SUBROUTINE K18
      REAL ZA(30,30), ZB(30,30), ZP(30,30), ZQ(30,30), ZR(30,30), ZU(30,30)
      INTEGER KN, JN, L, K, J
      KN = 25
      JN = 25
      DO 5 K = 1, 30
        DO 5 J = 1, 30
          ZP(K,J) = RAND()
          ZQ(K,J) = RAND()
          ZR(K,J) = RAND()
          ZU(K,J) = RAND()
5     CONTINUE
      DO 10 L = 1, %d
        DO 10 K = 2, KN
          DO 10 J = 2, JN
            ZA(K,J) = (ZP(K+1,J-1) + ZQ(K+1,J-1) - ZP(K,J-1) - ZQ(K,J-1))
     & *(ZR(K,J) + ZR(K,J-1))/(ZU(K,J-1) + ZU(K+1,J-1) + 0.5)
            ZB(K,J) = (ZP(K,J-1) + ZQ(K,J-1) - ZP(K,J) - ZQ(K,J))
     & *(ZR(K,J) + ZR(K-1,J))/(ZU(K,J) + ZU(K,J-1) + 0.5)
10    CONTINUE
      END

!     kernel 19: general linear recurrence equations (forward+backward)
      SUBROUTINE K19
      REAL B5(%d), SA(%d), SB(%d)
      INTEGER N, L, K, KB
      N = 100
      DO 5 K = 1, N
        SA(K) = RAND()
        SB(K) = RAND()*0.1
5     CONTINUE
      STB5 = 0.1
      DO 10 L = 1, %d
        DO 6 K = 1, N
          B5(K) = SA(K) + STB5*SB(K)
          STB5 = B5(K) - STB5
6       CONTINUE
        DO 8 KB = 1, N
          K = N - KB + 1
          B5(K) = SA(K) + STB5*SB(K)
          STB5 = B5(K) - STB5
8       CONTINUE
10    CONTINUE
      END

!     kernel 20: discrete ordinates transport
      SUBROUTINE K20
      REAL G(%d), VXX(%d), XLL(%d), XLR(%d), VSP(%d), VST(%d)
      INTEGER N, L, K
      N = 100
      DO 5 K = 1, N
        G(K) = RAND()
        VXX(K) = 0.01
        XLL(K) = RAND()
        XLR(K) = RAND()
        VSP(K) = RAND()*0.5
        VST(K) = RAND()*0.5 + 0.5
5     CONTINUE
      DO 10 L = 1, %d
        DO 10 K = 1, N
          DI = XLR(K) - XLL(K)*VXX(K)
          DN = 0.2
          IF (DI .NE. 0.0) THEN
            DN = G(K)/DI
            IF (DN .LT. 0.2) DN = 0.2
            IF (DN .GT. 2.0) DN = 2.0
          ENDIF
          VXX(K) = (XLL(K) + VSP(K)*DN)/(VST(K) + DN + 0.01)
10    CONTINUE
      END

!     kernel 21: matrix * matrix product
      SUBROUTINE K21
      REAL PX(25,25), VY(25,25), CX(25,25)
      INTEGER L, I, J, K
      DO 5 I = 1, 25
        DO 5 J = 1, 25
          VY(I,J) = RAND()
          CX(I,J) = RAND()
          PX(I,J) = 0.0
5     CONTINUE
      DO 10 L = 1, %d
        DO 10 K = 1, 25
          DO 10 I = 1, 25
            DO 10 J = 1, 25
              PX(I,J) = PX(I,J) + VY(I,K)*CX(K,J)
10    CONTINUE
      END

!     kernel 22: Planck distribution
      SUBROUTINE K22
      REAL Y(%d), U(%d), V(%d), W(%d), X(%d)
      INTEGER N, L, K
      N = 100
      DO 5 K = 1, N
        U(K) = 0.5 + RAND()
        V(K) = 0.5 + RAND()
        Y(K) = 0.0
        X(K) = 0.0
5     CONTINUE
      EXPMAX = 20.0
      DO 10 L = 1, %d
        DO 10 K = 1, N
          Y(K) = U(K)/V(K)
          IF (Y(K) .GT. EXPMAX) Y(K) = EXPMAX
          W(K) = X(K)/(EXP(Y(K)) - 1.0 + 0.001)
10    CONTINUE
      END

!     kernel 23: 2-D implicit hydrodynamics fragment
      SUBROUTINE K23
      REAL ZA(30,30), ZB(30,30), ZR(30,30), ZU(30,30), ZV(30,30), ZZ(30,30)
      INTEGER L, J, K
      DO 5 J = 1, 30
        DO 5 K = 1, 30
          ZA(J,K) = RAND()
          ZB(J,K) = RAND()
          ZR(J,K) = RAND()
          ZU(J,K) = RAND()
          ZV(J,K) = RAND()
          ZZ(J,K) = RAND()
5     CONTINUE
      DO 10 L = 1, %d
        DO 10 J = 2, 25
          DO 10 K = 2, 25
            QA = ZA(J+1,K)*ZR(J,K) + ZA(J-1,K)*ZB(J,K)
     & + ZA(J,K+1)*ZU(J,K) + ZA(J,K-1)*ZV(J,K) + ZZ(J,K)
            ZA(J,K) = ZA(J,K) + 0.175*(QA - ZA(J,K))
10    CONTINUE
      END

!     kernel 24: find location of first minimum in array (branchy)
      SUBROUTINE K24
      REAL X(%d)
      INTEGER N, L, K, M
      N = %d
      DO 5 K = 1, N
        X(K) = RAND()
5     CONTINUE
      DO 10 L = 1, %d
        M = 1
        DO 8 K = 2, N
          IF (X(K) .LT. X(M)) M = K
8       CONTINUE
        X(M) = X(M) + 1.0
10    CONTINUE
      END
|}
    (* K1 *) (n + 1) (n + 1) (n + 1) n rep
    (* K2 *) (n + 1) n
    (* K3 *) (n + 1) (n + 1) n rep
    (* K4 *) (n + 1) (n + 1) n rep
    (* K5 *) (n + 1) (n + 1) (n + 1) n rep
    (* K6 *) (n + 1) rep
    (* K7 *) (n + 1) (n + 1) (n + 1) (n + 1) n rep
    (* K8 *) rep
    (* K9 *) 105 rep
    (* K10 *) 105 rep
    (* K11 *) (n + 1) (n + 1) n rep
    (* K12 *) (n + 2) (n + 2) n rep
    (* K13 *) (n + 1) (n + 1) rep
    (* K14 *) 155 155 155 155 155 rep
    (* K15 *) rep
    (* K16 *) (rep * 40)
    (* K17 *) 105 105 105 rep
    (* K18 *) rep
    (* K19 *) 105 105 105 rep
    (* K20 *) 105 105 105 105 105 105 rep
    (* K21 *) rep
    (* K22 *) 105 105 105 105 105 rep
    (* K23 *) rep
    (* K24 *) (n + 1) n rep
