(** SIMPLE: an MF77 stand-in for the Lawrence Livermore SIMPLE benchmark
    (Crowley–Hendrickson–Rudy 1978), the paper's second Table 1 program —
    2-D Lagrangian hydrodynamics with heat flow on an N×N mesh. *)

(** Paper size: 100. *)
val default_n : int

(** Paper cycle count: 10. *)
val default_cycles : int

(** The benchmark program at the requested mesh size and cycle count. *)
val source : ?n:int -> ?cycles:int -> unit -> string
