(** LOOPS: an MF77 rendition of the 24 Livermore Fortran Kernels (McMahon
    1986), the paper's first Table 1 benchmark.  Structural stand-ins:
    each kernel keeps its original's control-flow and access-pattern
    character (DO nests, recurrences, strided/indirect access, the
    branchy kernels 15/16/17/24 with GOTOs) at interpreter scale. *)

(** 1-D kernel length. *)
val n : int

(** Inner repetition count. *)
val rep : int

(** The whole 24-kernel benchmark program (PROGRAM LOOPS + K1..K24). *)
val source : string
