(** LINPACK-style LU factorization + solve (DGEFA/DGESL shape): whole
    arrays by reference, a data-dependent pivot branch, and triangular
    loop nests with per-iteration trip counts. *)

val default_n : int

(** The benchmark at matrix order [n] with [nrhs] right-hand sides. *)
val source : ?n:int -> ?nrhs:int -> unit -> string
