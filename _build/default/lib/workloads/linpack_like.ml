(* LINPACK-style LU factorization and solve (DGEFA/DGESL shape): the
   classic numeric benchmark companion to the Livermore loops.

   Profiling-wise it contributes what LOOPS lacks: whole arrays passed by
   reference between procedures, a data-dependent pivot-selection branch
   (taken ~ln(n)/n of the time), a data-dependent row-swap branch, and
   triangular (non-rectangular) loop nests whose inner trip counts vary
   per outer iteration — loop-frequency variance that profiled second
   moments can pick up. *)

let default_n = 24

let source ?(n = default_n) ?(nrhs = 3) () =
  Printf.sprintf
    {|
      PROGRAM LINPAK
      REAL A(%d, %d), B(%d)
      INTEGER IPVT(%d)
      INTEGER N, I, J, R
      N = %d
!     --- a random system; partial pivoting supplies the stability, and
!     the pivot/swap branches stay genuinely data dependent ---
      DO 10 I = 1, N
        DO 5 J = 1, N
          A(I, J) = RAND() - 0.5
5       CONTINUE
        A(I, I) = A(I, I) + SIGN(0.25, A(I, I))
10    CONTINUE
      CALL GEFA(A, N, IPVT)
      DO 30 R = 1, %d
        DO 20 I = 1, N
          B(I) = RAND()
20      CONTINUE
        CALL GESL(A, N, IPVT, B)
30    CONTINUE
      END

!     LU factorization with partial pivoting (DGEFA shape)
      SUBROUTINE GEFA(A, N, IPVT)
      REAL A(%d, %d)
      INTEGER IPVT(%d)
      INTEGER N, K, I, J, L
      DO 60 K = 1, N - 1
!       pivot search down column K
        L = K
        DO 40 I = K + 1, N
          IF (ABS(A(I, K)) .GT. ABS(A(L, K))) L = I
40      CONTINUE
        IPVT(K) = L
!       row swap when a better pivot was found (data dependent)
        IF (L .NE. K) THEN
          DO 45 J = K, N
            T = A(L, J)
            A(L, J) = A(K, J)
            A(K, J) = T
45        CONTINUE
        ENDIF
!       compute multipliers and eliminate below the diagonal
        DO 55 I = K + 1, N
          A(I, K) = A(I, K) / A(K, K)
          DO 50 J = K + 1, N
            A(I, J) = A(I, J) - A(I, K) * A(K, J)
50        CONTINUE
55      CONTINUE
60    CONTINUE
      IPVT(N) = N
      END

!     triangular solve using the stored factors (DGESL shape)
      SUBROUTINE GESL(A, N, IPVT, B)
      REAL A(%d, %d), B(%d)
      INTEGER IPVT(%d)
      INTEGER N, K, I, L
!     forward elimination with the recorded pivots
      DO 80 K = 1, N - 1
        L = IPVT(K)
        IF (L .NE. K) THEN
          T = B(L)
          B(L) = B(K)
          B(K) = T
        ENDIF
        DO 70 I = K + 1, N
          B(I) = B(I) - A(I, K) * B(K)
70      CONTINUE
80    CONTINUE
!     back substitution
      DO 100 K = N, 1, -1
        B(K) = B(K) / A(K, K)
        DO 90 I = 1, K - 1
          B(I) = B(I) - A(I, K) * B(K)
90      CONTINUE
100   CONTINUE
      END
|}
    n n n n n nrhs n n n n n n n
