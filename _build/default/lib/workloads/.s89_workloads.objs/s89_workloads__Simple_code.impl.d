lib/workloads/simple_code.ml: Printf
