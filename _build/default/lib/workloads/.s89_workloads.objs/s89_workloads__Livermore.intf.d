lib/workloads/livermore.mli:
