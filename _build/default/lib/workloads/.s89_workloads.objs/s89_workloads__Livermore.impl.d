lib/workloads/livermore.ml: Printf
