lib/workloads/linpack_like.ml: Printf
