lib/workloads/demos.ml: Printf
