lib/workloads/linpack_like.mli:
