lib/workloads/demos.mli:
