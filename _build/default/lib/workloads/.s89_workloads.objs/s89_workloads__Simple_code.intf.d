lib/workloads/simple_code.mli:
