(** Small demonstration programs used by examples, tests and benches. *)

(** The paper's Figure 1 fragment in a runnable program ([m]/[n] choose
    the initial values; defaults terminate through IF (N.LT.0)). *)
val fig1 : ?m:int -> ?n:int -> unit -> string

(** A branchy numeric program whose execution time varies run to run
    (estimator-accuracy experiments). *)
val branchy : ?n:int -> unit -> string

(** A loop whose body time is bimodal through a heavy conditional path —
    the §5 chunking scenario.  [p_heavy] is the slow-path probability in
    percent. *)
val chunky : ?iters:int -> ?p_heavy:int -> unit -> string

(** Nested loops with data-dependent trip counts (loop-frequency
    variance). *)
val nested_random : ?outer:int -> ?max_inner:int -> unit -> string

(** Mutual recursion (EVEN/ODD) — exercises the fixpoint recursion
    policy. *)
val recursive : ?n:int -> unit -> string

(** A genuinely irreducible two-entry loop — exercises node splitting. *)
val irreducible : unit -> string

(** A computed-GOTO dispatcher. *)
val computed_goto : ?n:int -> unit -> string

(** Bubble sort: swap-branch probability drifts as data sorts — a stress
    test for the independent-branch assumption.  [passes] defaults to
    [n-1] (full sort). *)
val sort : ?n:int -> ?passes:int -> unit -> string

(** Sieve of Eratosthenes: integer-heavy, with a GOTO marking loop entered
    only for primes. *)
val sieve : ?n:int -> unit -> string
