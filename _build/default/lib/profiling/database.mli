(** Program database (the PTRAN-style store): accumulates [TOTAL_FREQ]
    sums over multiple executions — frequencies only ever enter the
    estimator as ratios, so sums work directly (§3). *)

type cond = Analysis.cond

type t = {
  mutable runs : int;
  sums : (string * cond, int) Hashtbl.t;
}

val create : unit -> t

(** Number of accumulated runs. *)
val runs : t -> int

(** Fold one run's (or one reconstruction's) per-procedure totals in. *)
val accumulate : t -> (string, (cond, int) Hashtbl.t) Hashtbl.t -> unit

(** Accumulated totals of one procedure, ready for {!Freq.compute}. *)
val proc_totals : t -> string -> (cond, int) Hashtbl.t

(** Add [b]'s runs and sums into [a]. *)
val merge : into:t -> t -> unit

(** Write the line-oriented text format ([run-count N] header, then one
    [total <proc> <node> <label> <sum>] line per condition). *)
val save : t -> string -> unit

(** Load a database written by {!save}.  Raises [Failure] on bad input. *)
val load : string -> t
