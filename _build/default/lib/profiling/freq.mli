(** Relative frequencies from total frequencies (§3): the single top-down
    FCDG pass computing [FREQ(u,l)] and [NODE_FREQ(u)], with footnote 2's
    division-by-zero rule. *)

type t

(** Raised when a condition has a positive total but its node never
    executes — an impossible profile. *)
exception Inconsistent of string

(** Run the top-down pass over the given [TOTAL_FREQ] table (missing
    entries count as 0). *)
val compute : Analysis.t -> (Analysis.cond, int) Hashtbl.t -> t

(** Frequencies straight from an uninstrumented run's oracle counts. *)
val of_oracle : Analysis.t -> S89_vm.Interp.t -> t

(** [TOTAL_FREQ(u,l)] as used by the pass. *)
val total : t -> Analysis.cond -> int

(** [FREQ(u,l)] — branch probability, or loop frequency for preheaders. *)
val freq : t -> Analysis.cond -> float

(** [NODE_FREQ(u)] — average executions of [u] per procedure invocation. *)
val node_freq : t -> int -> float

(** [TOTAL_FREQ(START, U)] — number of procedure invocations profiled. *)
val invocations : t -> int

val pp : Format.formatter -> t -> unit
