(** Basic blocks recovered from a statement-level CFG (a node leads a
    block iff it is the entry, has in-degree ≠ 1, or its unique
    predecessor branches).  Used by the naive profiling baseline. *)

type t

val compute : 'a S89_cfg.Cfg.t -> t

(** Number of blocks. *)
val num_blocks : t -> int

(** The block's first node. *)
val leader : t -> int -> int

(** The block containing a node. *)
val block_of : t -> int -> int

(** The block's nodes, in chain order (leader first). *)
val members : t -> int -> int list
