(* Smart counter placement (§3): decide which control conditions get a
   physical counter, which are derived from conservation laws, and how the
   counters are realized as VM probes.

   Optimization 1 is structural: counters are per control condition
   [(u,l)] of the FCDG, so identically control dependent basic blocks
   already share one counter.

   Optimization 2 drops counters using the paper's linear relations, where
   NODE_TOTAL(x) = Σ TOTAL over FCDG in-conditions of x (the execution
   count equation of control dependence):
   - node balance:   Σ_l TOTAL(u,l) = NODE_TOTAL(u)  when every branch
     label of u appears as a control condition;
   - exit balance:   Σ interval exit conditions = NODE_TOTAL(preheader);
   - latch balance:  Σ back-edge totals = TOTAL(ph,U) − NODE_TOTAL(ph),
     usable in both directions: to drop one latch condition, or — usually
     far more profitable — to drop the per-iteration header counter
     TOTAL(ph,U) itself when every latch total is expressible (a condition,
     or the node total of an unconditional latch node).

   Optimization 3 handles exit-free DO loops: the header-execution counter
   is realized as one bulk add of (trip+1) per loop entry, or eliminated
   entirely when the trip count is a compile-time constant.

   Dropping is greedy with an exit-label-first victim preference; a
   symbolic solvability fixpoint then re-adds counters one at a time if a
   combination of drops turned out circular, so the final plan is always
   reconstructible (Reconstruct replays the same derivations numerically). *)

module Ir = S89_frontend.Ir
module Ast = S89_frontend.Ast
module Program = S89_frontend.Program
module Probe = S89_vm.Probe
open S89_cfg
open S89_cdg

type cond = Analysis.cond

(* a quantity known to the reconstruction system *)
type term =
  | Tcond of cond (* TOTAL_FREQ of a control condition *)
  | Tnode_total of int (* NODE_TOTAL of an FCDG node *)

type derivation =
  | Node_balance of { node : int; others : cond list }
      (* c = NODE_TOTAL(node) − Σ others *)
  | Exit_balance of { ph : int; others : cond list }
      (* c = NODE_TOTAL(ph) − Σ others *)
  | Latch_balance of { ph : int; header_cond : cond; others : term list }
      (* c = TOTAL(header_cond) − NODE_TOTAL(ph) − Σ others *)
  | Header_from_latches of { ph : int; latches : term list }
      (* c = NODE_TOTAL(ph) + Σ latches *)
  | Static_trip of { ph : int; trip : int }
      (* c = (trip+1) × NODE_TOTAL(ph): header executions of a constant-trip
         exit-free DO loop *)
  | Static_body of { ph : int; trip : int }
      (* c = trip × NODE_TOTAL(ph): body executions of the same *)

type realization =
  | Incr_edge of int * Label.t (* counter += 1 on an original CFG edge *)
  | Incr_node of int (* counter += 1 when an original node executes *)
  | Bulk_entries of int * Ast.expr (* counter += expr on each entry edge of header *)

type proc_plan = {
  analysis : Analysis.t;
  measured : (cond * int * realization) list;
  derived : (cond * derivation) list;
  second_moment : (int * int * int option) list;
      (* header, counter id for Σ(trip+1)² over entries, static trip *)
}

type t = {
  probes : Probe.t;
  n_counters : int;
  plans : (string, proc_plan) Hashtbl.t;
}

let pp_cond fmt ((u, l) : cond) = Fmt.pf fmt "(%d,%s)" u (Label.to_string l)

let log_src = Logs.Src.create "s89.placement" ~doc:"counter placement decisions"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* ---------------- per-procedure planning ---------------- *)

let real_parent_conds analysis node =
  let fcdg = analysis.Analysis.fcdg in
  List.filter_map
    (fun (e : Label.t S89_graph.Digraph.edge) ->
      if Label.is_pseudo e.label then None else Some (e.src, e.label))
    (Fcdg.in_edges fcdg node)
  |> List.sort_uniq compare

(* Is the label's FCDG condition one whose children include a postexit?
   Used as the "cold exit label" victim preference. *)
let is_exit_label analysis (u, l) =
  let fcdg = analysis.Analysis.fcdg in
  List.exists (fun v -> Ecfg.is_postexit analysis.Analysis.ecfg v) (Fcdg.children fcdg u l)

type plan_state = {
  a : Analysis.t;
  real_conds : cond list;
  mutable drops : (cond * derivation) list; (* in drop order *)
  dropped : (cond, derivation) Hashtbl.t;
  mutable bulk : (cond * Ast.expr) list;
}

let is_cond ps c = List.mem c ps.real_conds

let is_free ps c =
  is_cond ps c && (not (Hashtbl.mem ps.dropped c)) && not (List.mem_assoc c ps.bulk)

let try_drop ps c deriv =
  if is_free ps c then begin
    Log.debug (fun m ->
        m "%s: drop %a" ps.a.Analysis.proc.Program.name pp_cond c);
    Hashtbl.replace ps.dropped c deriv;
    ps.drops <- ps.drops @ [ (c, deriv) ];
    true
  end
  else false

(* express a latch edge (u,l) as a term, if possible *)
let latch_term ps ((u, l) as c) =
  if is_cond ps c then Some (Tcond c)
  else if
    (* unconditional latch: its total is the node's execution count *)
    Label.equal l Label.U
    && List.length (Cfg.succ_edges (Ecfg.cfg ps.a.Analysis.ecfg) u) = 1
  then Some (Tnode_total u)
  else None

let plan_proc ~opt2 ~opt3 (a : Analysis.t) : plan_state =
  let ecfg = a.Analysis.ecfg in
  let cfg = a.Analysis.proc.Program.cfg in
  let real_conds =
    List.filter
      (fun c -> Analysis.site_of_condition a c <> Analysis.Never)
      a.Analysis.conditions
  in
  let ps = { a; real_conds; drops = []; dropped = Hashtbl.create 16; bulk = [] } in
  let exit_free = if opt3 then Analysis.exit_free_do_headers a else [] in
  (* --- optimization 3: exit-free DO loops ---
     Both loop conditions are covered: the header-execution condition
     (ph, U) and the body condition (h, T).  Constant trips need no
     counter at all; otherwise one bulk add per loop entry. *)
  List.iter
    (fun h ->
      match Analysis.do_meta a h with
      | None -> ()
      | Some meta -> (
          let ph = Ecfg.preheader_of_header ecfg h in
          let c_hdr = (ph, Ecfg.body_label) in
          let c_body = (h, Label.T) in
          match meta.Ir.static_trip with
          | Some k ->
              ignore (try_drop ps c_hdr (Static_trip { ph; trip = k }));
              ignore (try_drop ps c_body (Static_body { ph; trip = k }))
          | None ->
              if is_free ps c_body then
                ps.bulk <- (c_body, Ast.Var meta.Ir.trip_var) :: ps.bulk;
              (* the header total is cheaper still as NODE_TOTAL(ph) plus the
                 latch totals (observation 2) when optimization 2 is on;
                 otherwise realize it as a bulk add of trip+1 per entry *)
              if (not opt2) && is_free ps c_hdr then
                ps.bulk <-
                  (c_hdr, Ast.Binop (Ast.Add, Ast.Var meta.Ir.trip_var, Ast.Int 1))
                  :: ps.bulk))
    exit_free;
  if opt2 then begin
    (* --- header counters derived from latches (observation 2, solved for
       the header's total) --- *)
    List.iter
      (fun h ->
        let ph = Ecfg.preheader_of_header ecfg h in
        let c = (ph, Ecfg.body_label) in
        if is_free ps c then begin
          let latch_edges =
            List.map
              (fun (e : Label.t S89_graph.Digraph.edge) -> (e.src, e.label))
              (Ecfg.latch_edges ecfg h)
            |> List.sort_uniq compare
          in
          let terms = List.map (latch_term ps) latch_edges in
          if List.for_all Option.is_some terms then
            ignore
              (try_drop ps c
                 (Header_from_latches { ph; latches = List.map Option.get terms }))
        end)
      (Ecfg.headers ecfg);
    (* --- node balances --- *)
    S89_graph.Digraph.iter_nodes
      (fun u ->
        if Ecfg.is_original ecfg u then begin
          let labels = Cfg.out_labels cfg u in
          if
            List.length labels >= 2
            && List.for_all (fun l -> is_cond ps (u, l)) labels
          then begin
            (* victim preference: a cold exit label first, else the last *)
            let candidates =
              List.filter (fun l -> is_free ps (u, l)) labels
              |> List.stable_sort (fun l1 l2 ->
                     compare
                       (not (is_exit_label a (u, l2)))
                       (not (is_exit_label a (u, l1))))
            in
            match candidates with
            | victim :: _ ->
                let others =
                  List.filter_map
                    (fun l -> if Label.equal l victim then None else Some (u, l))
                    labels
                in
                ignore (try_drop ps (u, victim) (Node_balance { node = u; others }))
            | [] -> ()
          end
        end)
      (Fcdg.graph a.Analysis.fcdg);
    (* --- exit balances --- *)
    List.iter
      (fun h ->
        let ph = Ecfg.preheader_of_header ecfg h in
        let exits =
          List.concat_map (real_parent_conds a) (Ecfg.postexits_of_header ecfg h)
          |> List.sort_uniq compare
        in
        match List.find_opt (is_free ps) exits with
        | Some victim ->
            let others = List.filter (fun c -> c <> victim) exits in
            ignore (try_drop ps victim (Exit_balance { ph; others }))
        | None -> ())
      (Ecfg.headers ecfg);
    (* --- latch balances (drop one latch condition) --- *)
    List.iter
      (fun h ->
        let ph = Ecfg.preheader_of_header ecfg h in
        let header_cond = (ph, Ecfg.body_label) in
        (* pointless if the header itself is derived from the latches *)
        if not (Hashtbl.mem ps.dropped header_cond) then begin
          let latch_edges =
            List.map
              (fun (e : Label.t S89_graph.Digraph.edge) -> (e.src, e.label))
              (Ecfg.latch_edges ecfg h)
            |> List.sort_uniq compare
          in
          match List.find_opt (is_free ps) latch_edges with
          | Some victim -> (
              let other_edges = List.filter (fun c -> c <> victim) latch_edges in
              let terms = List.map (latch_term ps) other_edges in
              if List.for_all Option.is_some terms then
                ignore
                  (try_drop ps victim
                     (Latch_balance
                        { ph; header_cond; others = List.map Option.get terms })))
          | None -> ()
        end)
      (Ecfg.headers ecfg)
  end;
  (* --- solvability: re-measure circular drops one at a time --- *)
  let solvable drops =
    let known = Hashtbl.create 64 in
    List.iter
      (fun c ->
        if not (List.exists (fun (d, _) -> d = c) drops) then
          Hashtbl.replace known c ())
      a.Analysis.conditions;
    let node_total_known x =
      List.for_all (fun c -> Hashtbl.mem known c) (real_parent_conds a x)
    in
    let term_known = function
      | Tcond c -> Hashtbl.mem known c
      | Tnode_total x -> node_total_known x
    in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (c, deriv) ->
          if not (Hashtbl.mem known c) then
            let ok =
              match deriv with
              | Node_balance { node; others } ->
                  node_total_known node
                  && List.for_all (fun c -> Hashtbl.mem known c) others
              | Exit_balance { ph; others } ->
                  node_total_known ph
                  && List.for_all (fun c -> Hashtbl.mem known c) others
              | Latch_balance { ph; header_cond; others } ->
                  Hashtbl.mem known header_cond && node_total_known ph
                  && List.for_all term_known others
              | Header_from_latches { ph; latches } ->
                  node_total_known ph && List.for_all term_known latches
              | Static_trip { ph; _ } | Static_body { ph; _ } -> node_total_known ph
            in
            if ok then begin
              Hashtbl.replace known c ();
              changed := true
            end)
        drops
    done;
    List.filter (fun (c, _) -> not (Hashtbl.mem known c)) drops
  in
  (* Re-measurement cost heuristic for breaking derivation cycles: exit
     conditions fire once per loop entry (cheap to measure); everything
     else fires up to once per iteration at its nesting depth. *)
  let remeasure_cost ((u, l) as c) =
    if is_exit_label a c then 0
    else
      let iv = Ecfg.intervals ecfg in
      let interval =
        if Ecfg.is_preheader ecfg u then Ecfg.header_of_preheader ecfg u
        else Ecfg.interval_of ecfg u
      in
      ignore l;
      1 + Intervals.interval_depth iv interval
  in
  let rec settle () =
    match solvable ps.drops with
    | [] -> ()
    | unsolved ->
        (* re-measure the cheapest unsolved drop (latest on ties) and retry *)
        let c, _ =
          List.fold_left
            (fun best cand ->
              if remeasure_cost (fst cand) <= remeasure_cost (fst best) then cand
              else best)
            (List.hd unsolved) (List.tl unsolved)
        in
        Log.debug (fun m ->
            m "%s: circular derivation, re-measuring %a"
              ps.a.Analysis.proc.Program.name pp_cond c);
        ps.drops <- List.filter (fun (d, _) -> d <> c) ps.drops;
        Hashtbl.remove ps.dropped c;
        settle ()
  in
  settle ();
  ps

(* ---------------- probe realization ---------------- *)

let realize (a : Analysis.t) probes ~counter c bulk_exprs : realization =
  let proc = a.Analysis.proc in
  let cfg = proc.Program.cfg in
  let name = proc.Program.name in
  let num_nodes = Cfg.num_nodes cfg in
  match List.assoc_opt c bulk_exprs with
  | Some expr ->
      (* the loop header: the condition is either the preheader's (ph,U) or
         the header's own body condition (h,T) *)
      let h =
        let u, _ = c in
        let ecfg = a.Analysis.ecfg in
        if Ecfg.is_preheader ecfg u then Ecfg.header_of_preheader ecfg u else u
      in
      List.iter
        (fun (e : Label.t S89_graph.Digraph.edge) ->
          Probe.add_edge_action probes ~proc:name ~num_nodes ~node:e.src ~label:e.label
            (Probe.Bulk_add (counter, expr)))
        (Analysis.entry_edges a h);
      Bulk_entries (h, expr)
  | None -> (
      match Analysis.site_of_condition a c with
      | Analysis.Edge_site (u, l) ->
          Probe.add_edge_action probes ~proc:name ~num_nodes ~node:u ~label:l
            (Probe.Incr counter);
          Incr_edge (u, l)
      | Analysis.Node_site u ->
          Probe.add_node_action probes ~proc:name ~num_nodes ~node:u
            (Probe.Incr counter);
          Incr_node u
      | Analysis.Invocation_site ->
          Probe.add_node_action probes ~proc:name ~num_nodes ~node:(Cfg.entry cfg)
            (Probe.Incr counter);
          Incr_node (Cfg.entry cfg)
      | Analysis.Never -> assert false)

(* ---------------- whole-program plan ---------------- *)

let plan ?(opt2 = true) ?(opt3 = true) ?(second_moments = false)
    (analyses : (string, Analysis.t) Hashtbl.t) : t =
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) analyses [] |> List.sort compare in
  let next_counter = ref 0 in
  let fresh () =
    let c = !next_counter in
    incr next_counter;
    c
  in
  let probes = Probe.make ~n_counters:0 in
  let plans = Hashtbl.create 8 in
  List.iter
    (fun name ->
      let a = Hashtbl.find analyses name in
      let ps = plan_proc ~opt2 ~opt3 a in
      let dropped_conds = List.map fst ps.drops in
      let measured =
        List.filter (fun c -> not (List.mem c dropped_conds)) ps.real_conds
        |> List.map (fun c ->
               let id = fresh () in
               let r = realize a probes ~counter:id c ps.bulk in
               (c, id, r))
      in
      let second_moment =
        if not second_moments then []
        else
          List.filter_map
            (fun h ->
              match Analysis.do_meta a h with
              | None -> None
              | Some meta -> (
                  match meta.Ir.static_trip with
                  | Some k -> Some (h, -1, Some k)
                  | None ->
                      let id = fresh () in
                      let tp1 =
                        Ast.Binop (Ast.Add, Ast.Var meta.Ir.trip_var, Ast.Int 1)
                      in
                      let expr = Ast.Binop (Ast.Mul, tp1, tp1) in
                      List.iter
                        (fun (e : Label.t S89_graph.Digraph.edge) ->
                          Probe.add_edge_action probes ~proc:name
                            ~num_nodes:(Cfg.num_nodes a.Analysis.proc.Program.cfg)
                            ~node:e.src ~label:e.label
                            (Probe.Bulk_add (id, expr)))
                        (Analysis.entry_edges a h);
                      Some (h, id, None)))
            (Analysis.exit_free_do_headers a)
      in
      Hashtbl.replace plans name
        { analysis = a; measured; derived = ps.drops; second_moment })
    names;
  {
    probes = { probes with Probe.n_counters = !next_counter };
    n_counters = !next_counter;
    plans;
  }

let n_counters t = t.n_counters
let probes t = t.probes
let proc_plan t name = Hashtbl.find t.plans name
let proc_names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.plans [] |> List.sort compare

(* dynamic number of counter updates a run executes, from oracle counts *)
let dynamic_updates (t : t) (vm : S89_vm.Interp.t) : int =
  Hashtbl.fold
    (fun name (pp : proc_plan) acc ->
      let a = pp.analysis in
      List.fold_left
        (fun acc (_, _, r) ->
          acc
          +
          match r with
          | Incr_edge (u, l) -> S89_vm.Interp.edge_count vm name u l
          | Incr_node u -> S89_vm.Interp.node_execs vm name u
          | Bulk_entries (h, _) ->
              List.fold_left
                (fun acc (e : Label.t S89_graph.Digraph.edge) ->
                  acc + S89_vm.Interp.edge_count vm name e.src e.label)
                0
                (Analysis.entry_edges a h))
        acc pp.measured)
    t.plans 0

let pp fmt (t : t) =
  Fmt.pf fmt "@[<v>smart placement: %d counters" t.n_counters;
  List.iter
    (fun name ->
      let pp_ = Hashtbl.find t.plans name in
      Fmt.pf fmt "@,  %s: %d measured, %d derived" name (List.length pp_.measured)
        (List.length pp_.derived);
      List.iter (fun (c, _, _) -> Fmt.pf fmt "@,    measure %a" pp_cond c) pp_.measured;
      List.iter (fun (c, _) -> Fmt.pf fmt "@,    derive  %a" pp_cond c) pp_.derived)
    (proc_names t);
  Fmt.pf fmt "@]"
