(* Basic-block structure recovered from a statement-level CFG.

   The paper's naive profiling baseline maintains "one counter per basic
   block"; our CFGs are statement-level, so blocks are maximal chains:
   a node starts a block iff it is the entry, has in-degree ≠ 1, or its
   unique predecessor branches. *)

open S89_cfg

type t = {
  leader : int array; (* block leaders, in node order *)
  block_of : int array; (* node -> index into leader *)
  members : int list array; (* block -> nodes, in chain order *)
}

let compute (cfg : 'a Cfg.t) : t =
  let g = Cfg.graph cfg in
  let n = Cfg.num_nodes cfg in
  let is_leader v =
    v = Cfg.entry cfg
    || S89_graph.Digraph.in_degree g v <> 1
    ||
    match S89_graph.Digraph.preds g v with
    | [ p ] -> S89_graph.Digraph.out_degree g p <> 1
    | _ -> true
  in
  let leaders = ref [] in
  for v = n - 1 downto 0 do
    if is_leader v then leaders := v :: !leaders
  done;
  let leader = Array.of_list !leaders in
  let block_of = Array.make n (-1) in
  let members = Array.make (Array.length leader) [] in
  Array.iteri
    (fun b l ->
      (* follow the chain until the next leader *)
      let rec follow v acc =
        block_of.(v) <- b;
        let acc = v :: acc in
        match S89_graph.Digraph.succs g v with
        | [ s ] when not (is_leader s) -> follow s acc
        | _ -> List.rev acc
      in
      members.(b) <- follow l [])
    leader;
  { leader; block_of; members }

let num_blocks t = Array.length t.leader
let leader t b = t.leader.(b)
let block_of t v = t.block_of.(v)
let members t b = t.members.(b)
