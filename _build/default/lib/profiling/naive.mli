(** Naive counter placement — Table 1's baseline: one counter per basic
    block, with the DO-loop bulk-add optimization applied only to
    straight-line loop bodies (no interval structure available). *)

module Probe = S89_vm.Probe
module Program = S89_frontend.Program

type block_counter =
  | Per_execution of int  (** counter id, incremented at the block leader *)
  | Bulk_at_entry of int  (** counter id, += trip count at loop entry *)
  | Static of int  (** compile-time-constant trips: no counter *)

type proc_plan = {
  blocks : Blocks.t;
  counters : block_counter array;  (** per block *)
}

type t

val plan : Program.t -> t
val probes : t -> Probe.t
val n_counters : t -> int
val proc_plan : t -> string -> proc_plan

(** Dynamic counter updates a run executes, from oracle counts. *)
val dynamic_updates : t -> Program.t -> S89_vm.Interp.t -> int
