(* Relative frequencies from total frequencies (§3):

     NODE_FREQ(START) = 1
     FREQ(u,l)       = TOTAL_FREQ(u,l) / (TOTAL_FREQ(START,U) × NODE_FREQ(u))
     NODE_FREQ(v)    = Σ_{(u,v,l) ∈ E_f} NODE_FREQ(u) × FREQ(u,l)

   computed in a single top-down (topological) pass over the FCDG.
   Footnote 2's division-by-zero rule is implemented literally: whenever
   the denominator vanishes, the numerator must also be zero and FREQ is
   defined as 0. *)

open S89_cfg
open S89_cdg

type t = {
  analysis : Analysis.t;
  totals : (Analysis.cond, int) Hashtbl.t;
  invocations : int; (* TOTAL_FREQ(START, U) *)
  freq : (Analysis.cond, float) Hashtbl.t;
  node_freq : float array; (* indexed by ECFG node *)
}

exception Inconsistent of string

let total t c = match Hashtbl.find_opt t.totals c with Some n -> n | None -> 0

let freq t c = match Hashtbl.find_opt t.freq c with Some f -> f | None -> 0.0

let node_freq t u = t.node_freq.(u)

let invocations t = t.invocations

let compute (analysis : Analysis.t) (totals : (Analysis.cond, int) Hashtbl.t) : t =
  let fcdg = analysis.Analysis.fcdg in
  let start = Fcdg.start fcdg in
  let n = S89_graph.Digraph.num_nodes (Fcdg.graph fcdg) in
  let node_freq = Array.make n 0.0 in
  let freq = Hashtbl.create 32 in
  let start_total =
    match Hashtbl.find_opt totals (start, Label.U) with Some v -> v | None -> 0
  in
  node_freq.(start) <- 1.0;
  let get_total c = match Hashtbl.find_opt totals c with Some v -> v | None -> 0 in
  Array.iter
    (fun u ->
      List.iter
        (fun l ->
          let tf = get_total (u, l) in
          let denom = float_of_int start_total *. node_freq.(u) in
          let f =
            if denom = 0.0 then begin
              if tf <> 0 then
                raise
                  (Inconsistent
                     (Printf.sprintf
                        "condition (%d,%s) has TOTAL_FREQ %d but its node never \
                         executes"
                        u (Label.to_string l) tf));
              0.0
            end
            else float_of_int tf /. denom
          in
          Hashtbl.replace freq (u, l) f;
          List.iter
            (fun v -> node_freq.(v) <- node_freq.(v) +. (node_freq.(u) *. f))
            (Fcdg.children fcdg u l))
        (Fcdg.labels fcdg u))
    (Fcdg.topological fcdg);
  { analysis; totals; invocations = start_total; freq; node_freq }

(* straight from an uninstrumented VM run's oracle counts *)
let of_oracle analysis vm = compute analysis (Analysis.oracle_totals analysis vm)

let pp fmt t =
  let fcdg = t.analysis.Analysis.fcdg in
  Fmt.pf fmt "@[<v>frequencies (invocations=%d):" t.invocations;
  List.iter
    (fun ((u, l) as c) ->
      Fmt.pf fmt "@,  (%d,%s): total=%d freq=%.4g" u (Label.to_string l) (total t c)
        (freq t c))
    (Fcdg.control_conditions fcdg);
  Fmt.pf fmt "@]"
