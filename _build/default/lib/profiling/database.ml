(* Program database (the PTRAN-style store of §1/§3): accumulates
   TOTAL_FREQ values over multiple executions — "it is a good idea to
   accumulate the TOTAL_FREQ values (as a sum ...) from different program
   executions in the program database, so as to get a more representative
   set of frequency values."

   On-disk format: a line-oriented text file,
       run-count N
       total <proc> <node> <label> <sum>
   which keeps the database human-inspectable and trivially mergeable. *)

open S89_cfg

type cond = Analysis.cond

type t = {
  mutable runs : int;
  sums : (string * cond, int) Hashtbl.t;
}

let create () = { runs = 0; sums = Hashtbl.create 64 }

let runs t = t.runs

(* fold one run's per-procedure totals into the database *)
let accumulate t (per_proc : (string, (cond, int) Hashtbl.t) Hashtbl.t) =
  t.runs <- t.runs + 1;
  Hashtbl.iter
    (fun proc tbl ->
      Hashtbl.iter
        (fun cond v ->
          let key = (proc, cond) in
          let prev = match Hashtbl.find_opt t.sums key with Some p -> p | None -> 0 in
          Hashtbl.replace t.sums key (prev + v))
        tbl)
    per_proc

(* accumulated totals of one procedure, for feeding Freq.compute; since
   FREQ only uses ratios, sums over runs work directly (§3) *)
let proc_totals t proc : (cond, int) Hashtbl.t =
  let out = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (p, cond) v -> if p = proc then Hashtbl.replace out cond v)
    t.sums;
  out

let merge ~into:(a : t) (b : t) =
  a.runs <- a.runs + b.runs;
  Hashtbl.iter
    (fun key v ->
      let prev = match Hashtbl.find_opt a.sums key with Some p -> p | None -> 0 in
      Hashtbl.replace a.sums key (prev + v))
    b.sums

(* ---------------- (de)serialization ---------------- *)

let label_to_db = Label.to_string

let label_of_db s =
  match s with
  | "T" -> Label.T
  | "F" -> Label.F
  | "U" -> Label.U
  | _ ->
      if String.length s >= 2 && s.[0] = 'C' then
        Label.Case (int_of_string (String.sub s 1 (String.length s - 1)))
      else if String.length s >= 2 && s.[0] = 'Z' then
        Label.Pseudo (int_of_string (String.sub s 1 (String.length s - 1)))
      else failwith ("Database: bad label " ^ s)

let save t path =
  let oc = open_out path in
  Printf.fprintf oc "run-count %d\n" t.runs;
  let entries =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.sums [] |> List.sort compare
  in
  List.iter
    (fun ((proc, (node, label)), v) ->
      Printf.fprintf oc "total %s %d %s %d\n" proc node (label_to_db label) v)
    entries;
  close_out oc

let load path =
  let ic = open_in path in
  let t = create () in
  (try
     while true do
       let line = input_line ic in
       match String.split_on_char ' ' (String.trim line) with
       | [ "run-count"; n ] -> t.runs <- int_of_string n
       | [ "total"; proc; node; label; v ] ->
           Hashtbl.replace t.sums
             (proc, (int_of_string node, label_of_db label))
             (int_of_string v)
       | [] | [ "" ] -> ()
       | _ -> failwith ("Database: bad line: " ^ line)
     done
   with End_of_file -> ());
  close_in ic;
  t
