(** Smart counter placement (§3): one counter per control condition
    (optimization 1), counters dropped via conservation laws
    (optimization 2), and DO-loop bulk adds (optimization 3), with a
    solvability check guaranteeing reconstructibility. *)

module Ast = S89_frontend.Ast
module Probe = S89_vm.Probe
open S89_cfg

type cond = Analysis.cond

(** A quantity the reconstruction system can evaluate. *)
type term =
  | Tcond of cond  (** a condition's TOTAL_FREQ *)
  | Tnode_total of int  (** NODE_TOTAL of an FCDG node (Σ of in-conditions) *)

(** How a dropped condition's total is recovered. *)
type derivation =
  | Node_balance of { node : int; others : cond list }
      (** [c = NODE_TOTAL(node) − Σ others] (all labels present) *)
  | Exit_balance of { ph : int; others : cond list }
      (** [c = NODE_TOTAL(ph) − Σ other interval exits] *)
  | Latch_balance of { ph : int; header_cond : cond; others : term list }
      (** [c = TOTAL(ph,U) − NODE_TOTAL(ph) − Σ other latches] *)
  | Header_from_latches of { ph : int; latches : term list }
      (** [c = NODE_TOTAL(ph) + Σ latches] — observation 2 solved for the
          header, eliminating the per-iteration header counter *)
  | Static_trip of { ph : int; trip : int }
      (** constant-trip exit-free DO: header total = (trip+1)·entries *)
  | Static_body of { ph : int; trip : int }
      (** its body total = trip·entries *)

(** How a measured condition is physically counted. *)
type realization =
  | Incr_edge of int * Label.t  (** +1 on an original CFG edge *)
  | Incr_node of int  (** +1 when an original node executes *)
  | Bulk_entries of int * Ast.expr
      (** += expr on each entry edge of the given header (opt. 3) *)

type proc_plan = {
  analysis : Analysis.t;
  measured : (cond * int * realization) list;  (** condition, counter id, how *)
  derived : (cond * derivation) list;
  second_moment : (int * int * int option) list;
      (** header, counter id for Σ(trips+1)² per entry, static trip *)
}

type t

(** Plan counters for a whole program.  [opt2]/[opt3] toggle the paper's
    optimizations (both default true; opt1 is structural).
    [second_moments] adds Σ(trips+1)² bulk counters per exit-free DO loop
    for loop-frequency variance (§5). *)
val plan :
  ?opt2:bool ->
  ?opt3:bool ->
  ?second_moments:bool ->
  (string, Analysis.t) Hashtbl.t ->
  t

(** Number of counter variables allocated. *)
val n_counters : t -> int

(** The probes to attach to the VM ({!S89_vm.Interp.config}). *)
val probes : t -> Probe.t

val proc_plan : t -> string -> proc_plan
val proc_names : t -> string list

(** Dynamic counter updates a run executes, from a VM's oracle counts
    (the overhead quantity of Table 1 / X1). *)
val dynamic_updates : t -> S89_vm.Interp.t -> int

val pp_cond : Format.formatter -> cond -> unit
val pp : Format.formatter -> t -> unit
