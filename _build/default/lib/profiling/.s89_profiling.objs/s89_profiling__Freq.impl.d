lib/profiling/freq.ml: Analysis Array Fcdg Fmt Hashtbl Label List Printf S89_cdg S89_cfg S89_graph
