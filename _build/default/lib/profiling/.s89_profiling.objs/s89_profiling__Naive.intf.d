lib/profiling/naive.mli: Blocks S89_frontend S89_vm
