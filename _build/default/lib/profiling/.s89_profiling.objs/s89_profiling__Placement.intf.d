lib/profiling/placement.mli: Analysis Format Hashtbl Label S89_cfg S89_frontend S89_vm
