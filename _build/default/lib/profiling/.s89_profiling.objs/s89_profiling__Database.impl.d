lib/profiling/database.ml: Analysis Hashtbl Label List Printf S89_cfg String
