lib/profiling/placement.ml: Analysis Cfg Ecfg Fcdg Fmt Hashtbl Intervals Label List Logs Option S89_cdg S89_cfg S89_frontend S89_graph S89_vm
