lib/profiling/database.mli: Analysis Hashtbl
