lib/profiling/freq.mli: Analysis Format Hashtbl S89_vm
