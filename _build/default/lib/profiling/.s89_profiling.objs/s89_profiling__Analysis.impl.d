lib/profiling/analysis.ml: Cfg Control_dep Ecfg Fcdg Hashtbl Intervals Label List S89_cdg S89_cfg S89_frontend S89_graph S89_vm
