lib/profiling/blocks.mli: S89_cfg
