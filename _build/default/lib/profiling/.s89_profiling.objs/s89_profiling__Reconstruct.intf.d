lib/profiling/reconstruct.mli: Analysis Hashtbl Placement
