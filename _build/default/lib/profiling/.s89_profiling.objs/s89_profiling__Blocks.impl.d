lib/profiling/blocks.ml: Array Cfg List S89_cfg S89_graph
