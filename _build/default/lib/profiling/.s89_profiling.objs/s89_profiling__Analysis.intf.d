lib/profiling/analysis.mli: Control_dep Ecfg Fcdg Hashtbl Label S89_cdg S89_cfg S89_frontend S89_graph S89_vm
