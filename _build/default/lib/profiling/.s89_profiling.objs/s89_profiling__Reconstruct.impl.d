lib/profiling/reconstruct.ml: Analysis Array Fcdg Hashtbl List Placement S89_cdg S89_cfg S89_graph
