lib/profiling/naive.ml: Array Blocks Cfg Hashtbl Label List S89_cfg S89_frontend S89_graph S89_vm
