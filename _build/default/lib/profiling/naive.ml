(* Naive counter placement — the baseline of Table 1: one counter per
   basic block, "with the DO loop optimization applied only when the body
   consists of straight-line code" (no interval structure available, so
   only the syntactically obvious case is optimized). *)

module Ir = S89_frontend.Ir
module Ast = S89_frontend.Ast
module Program = S89_frontend.Program
module Probe = S89_vm.Probe
open S89_cfg

type block_counter =
  | Per_execution of int (* counter id; increment at the block leader *)
  | Bulk_at_entry of int (* counter id; add the trip count at loop entry *)
  | Static of int (* trip count known at compile time: no counter *)

type proc_plan = {
  blocks : Blocks.t;
  counters : block_counter array; (* per block *)
}

type t = {
  probes : Probe.t;
  n_counters : int;
  plans : (string, proc_plan) Hashtbl.t;
}

(* A DO loop with a straight-line body, recognized without interval
   information: the header's T successor starts a chain of non-branching,
   non-exiting nodes that ends in the latch back to the header. *)
let straight_line_do_body (cfg : Ir.info Cfg.t) (blocks : Blocks.t) h :
    int option (* body block *) =
  match (Cfg.info cfg h).Ir.ir with
  | Ir.Do_test _ -> (
      let t_succ =
        List.find_map
          (fun (e : Label.t S89_graph.Digraph.edge) ->
            if Label.equal e.label Label.T then Some e.dst else None)
          (Cfg.succ_edges cfg h)
      in
      match t_succ with
      | None -> None
      | Some b ->
          let blk = Blocks.block_of blocks b in
          let members = Blocks.members blocks blk in
          let last = List.nth members (List.length members - 1) in
          (* the block must start at the T successor and flow straight back
             to the header *)
          if
            Blocks.leader blocks blk = b
            && (match Cfg.succ_edges cfg last with
               | [ e ] -> e.dst = h && Label.equal e.label Label.U
               | _ -> false)
            (* and nothing else may jump into the middle of it *)
            && List.for_all
                 (fun n ->
                   n = b || List.length (Cfg.pred_edges cfg n) = 1)
                 members
          then Some blk
          else None)
  | _ -> None

let plan (prog : Program.t) : t =
  let next = ref 0 in
  let fresh () =
    let c = !next in
    incr next;
    c
  in
  let probes = Probe.make ~n_counters:0 in
  let plans = Hashtbl.create 8 in
  List.iter
    (fun (p : Program.proc) ->
      let cfg = p.Program.cfg in
      let name = p.Program.name in
      let num_nodes = Cfg.num_nodes cfg in
      let blocks = Blocks.compute cfg in
      let nb = Blocks.num_blocks blocks in
      let counters = Array.make nb (Per_execution (-1)) in
      (* find optimizable DO bodies first *)
      let do_bodies = Hashtbl.create 8 in
      Cfg.iter_nodes
        (fun h ->
          match (Cfg.info cfg h).Ir.ir with
          | Ir.Do_test meta -> (
              match straight_line_do_body cfg blocks h with
              | Some blk -> Hashtbl.replace do_bodies blk (h, meta)
              | None -> ())
          | _ -> ())
        cfg;
      for b = 0 to nb - 1 do
        match Hashtbl.find_opt do_bodies b with
        | Some (h, meta) -> (
            match meta.Ir.static_trip with
            | Some k -> counters.(b) <- Static k
            | None ->
                let id = fresh () in
                (* the body executes trip_var times per entry; add it on the
                   loop entry edge (the only non-latch in-edge of the header) *)
                List.iter
                  (fun (e : Label.t S89_graph.Digraph.edge) ->
                    (* entry edges: source outside the loop = source is not
                       the latch; the latch is the body block's last node *)
                    let last =
                      let ms = Blocks.members blocks b in
                      List.nth ms (List.length ms - 1)
                    in
                    if e.src <> last then
                      Probe.add_edge_action probes ~proc:name ~num_nodes ~node:e.src
                        ~label:e.label
                        (Probe.Bulk_add (id, Ast.Var meta.Ir.trip_var)))
                  (Cfg.pred_edges cfg h);
                counters.(b) <- Bulk_at_entry id)
        | None ->
            let id = fresh () in
            Probe.add_node_action probes ~proc:name ~num_nodes
              ~node:(Blocks.leader blocks b) (Probe.Incr id);
            counters.(b) <- Per_execution id
      done;
      Hashtbl.replace plans name { blocks; counters })
    (Program.procs prog);
  { probes = { probes with Probe.n_counters = !next }; n_counters = !next; plans }

let probes t = t.probes
let n_counters t = t.n_counters
let proc_plan t name = Hashtbl.find t.plans name

(* dynamic number of counter updates a run executes, from oracle counts *)
let dynamic_updates (t : t) (prog : Program.t) (vm : S89_vm.Interp.t) : int =
  Hashtbl.fold
    (fun name (pp : proc_plan) acc ->
      let p = Program.find prog name in
      let cfg = p.Program.cfg in
      let total = ref acc in
      Array.iteri
        (fun b c ->
          match c with
          | Per_execution _ ->
              total :=
                !total + S89_vm.Interp.node_execs vm name (Blocks.leader pp.blocks b)
          | Bulk_at_entry _ ->
              (* one update per loop entry *)
              let h =
                match Cfg.pred_edges cfg (Blocks.leader pp.blocks b) with
                | (e : Label.t S89_graph.Digraph.edge) :: _ -> e.src
                | [] -> -1
              in
              if h >= 0 then begin
                let last =
                  let ms = Blocks.members pp.blocks b in
                  List.nth ms (List.length ms - 1)
                in
                List.iter
                  (fun (e : Label.t S89_graph.Digraph.edge) ->
                    if e.src <> last then
                      total := !total + S89_vm.Interp.edge_count vm name e.src e.label)
                  (Cfg.pred_edges cfg h)
              end
          | Static _ -> ())
        pp.counters;
      !total)
    t.plans 0
