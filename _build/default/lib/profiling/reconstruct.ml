(* Reconstruction: recover TOTAL_FREQ for every control condition from the
   reduced counter set of a smart placement, by replaying the plan's
   derivations numerically (the same conservation laws, now with numbers).

   The key correctness property — tested extensively — is
       reconstruct (smart counters) = oracle totals,
   i.e. the optimized profile loses no information. *)

open S89_cdg

type cond = Analysis.cond

exception Unsolvable of string * cond list

(* NODE_TOTAL(x): sum of the totals of x's real FCDG parent conditions;
   START is executed once per invocation, i.e. its own (START,U) total. *)
let node_total (a : Analysis.t) (values : (cond, int) Hashtbl.t) x =
  let fcdg = a.Analysis.fcdg in
  if x = Fcdg.start fcdg then Hashtbl.find_opt values (x, S89_cfg.Label.U)
  else
    let parents =
      List.filter_map
        (fun (e : S89_cfg.Label.t S89_graph.Digraph.edge) ->
          if S89_cfg.Label.is_pseudo e.label then None else Some (e.src, e.label))
        (Fcdg.in_edges fcdg x)
      |> List.sort_uniq compare
    in
    List.fold_left
      (fun acc c ->
        match (acc, Hashtbl.find_opt values c) with
        | Some s, Some v -> Some (s + v)
        | _ -> None)
      (Some 0) parents

let term_value a values = function
  | Placement.Tcond c -> Hashtbl.find_opt values c
  | Placement.Tnode_total x -> node_total a values x

let sum_opt xs =
  List.fold_left
    (fun acc x -> match (acc, x) with Some s, Some v -> Some (s + v) | _ -> None)
    (Some 0) xs

let proc_totals (plan : Placement.t) ~counters (name : string) : (cond, int) Hashtbl.t =
  let pp = Placement.proc_plan plan name in
  let a = pp.Placement.analysis in
  let values = Hashtbl.create 64 in
  (* pseudo conditions never fire *)
  List.iter
    (fun c ->
      if Analysis.site_of_condition a c = Analysis.Never then Hashtbl.replace values c 0)
    a.Analysis.conditions;
  List.iter
    (fun (c, id, _) -> Hashtbl.replace values c counters.(id))
    pp.Placement.measured;
  let try_solve (c, deriv) =
    if Hashtbl.mem values c then true
    else begin
      let v =
        match deriv with
        | Placement.Node_balance { node; others } -> (
            match
              ( node_total a values node,
                sum_opt (List.map (fun c -> Hashtbl.find_opt values c) others) )
            with
            | Some nt, Some os -> Some (nt - os)
            | _ -> None)
        | Placement.Exit_balance { ph; others } -> (
            match
              ( node_total a values ph,
                sum_opt (List.map (fun c -> Hashtbl.find_opt values c) others) )
            with
            | Some nt, Some os -> Some (nt - os)
            | _ -> None)
        | Placement.Latch_balance { ph; header_cond; others } -> (
            match
              ( Hashtbl.find_opt values header_cond,
                node_total a values ph,
                sum_opt (List.map (term_value a values) others) )
            with
            | Some h, Some nt, Some os -> Some (h - nt - os)
            | _ -> None)
        | Placement.Header_from_latches { ph; latches } -> (
            match
              (node_total a values ph, sum_opt (List.map (term_value a values) latches))
            with
            | Some nt, Some ls -> Some (nt + ls)
            | _ -> None)
        | Placement.Static_trip { ph; trip } -> (
            match node_total a values ph with
            | Some nt -> Some ((trip + 1) * nt)
            | _ -> None)
        | Placement.Static_body { ph; trip } -> (
            match node_total a values ph with
            | Some nt -> Some (trip * nt)
            | _ -> None)
      in
      match v with
      | Some v ->
          Hashtbl.replace values c v;
          true
      | None -> false
    end
  in
  let remaining = ref pp.Placement.derived in
  let progress = ref true in
  while !remaining <> [] && !progress do
    progress := false;
    remaining :=
      List.filter
        (fun d ->
          if try_solve d then begin
            progress := true;
            false
          end
          else true)
        !remaining
  done;
  if !remaining <> [] then
    raise (Unsolvable (name, List.map fst !remaining));
  values

(* totals for every procedure *)
let totals (plan : Placement.t) ~counters : (string, (cond, int) Hashtbl.t) Hashtbl.t =
  let out = Hashtbl.create 8 in
  List.iter
    (fun name -> Hashtbl.replace out name (proc_totals plan ~counters name))
    (Placement.proc_names plan);
  out

(* E[F²] of the loop frequency per loop entry, for the loops the plan
   tracked second moments for (exit-free DO loops).  Returns
   (header, E[F²]) pairs; loops entered zero times are omitted. *)
let loop_second_moments (plan : Placement.t) ~counters (name : string)
    (proc_totals : (cond, int) Hashtbl.t) : (int * float) list =
  let pp = Placement.proc_plan plan name in
  let a = pp.Placement.analysis in
  List.filter_map
    (fun (h, id, static) ->
      let ph = S89_cfg.Ecfg.preheader_of_header a.Analysis.ecfg h in
      match node_total a proc_totals ph with
      | Some entries when entries > 0 ->
          let sum_sq =
            match static with
            | Some k -> (k + 1) * (k + 1) * entries
            | None -> counters.(id)
          in
          Some (h, float_of_int sum_sq /. float_of_int entries)
      | _ -> None)
    pp.Placement.second_moment
