(** Reconstruction: recover [TOTAL_FREQ] for every control condition from
    the reduced counter set by replaying the plan's derivations.  The
    tested invariant: [reconstruct (smart counters) = oracle counts]. *)

type cond = Analysis.cond

(** Raised if derivations cannot be solved (would indicate a planner bug;
    plans are solvability-checked at construction). *)
exception Unsolvable of string * cond list

(** [NODE_TOTAL(x)]: sum of the totals of [x]'s real FCDG parent
    conditions ([None] while some are unknown). *)
val node_total : Analysis.t -> (cond, int) Hashtbl.t -> int -> int option

(** Totals for one procedure from the counter array. *)
val proc_totals : Placement.t -> counters:int array -> string -> (cond, int) Hashtbl.t

(** Totals for every procedure. *)
val totals : Placement.t -> counters:int array -> (string, (cond, int) Hashtbl.t) Hashtbl.t

(** Per-loop E[F²] of the loop frequency (header executions per entry)
    for the loops the plan tracked second moments for.  Loops never
    entered are omitted. *)
val loop_second_moments :
  Placement.t -> counters:int array -> string -> (cond, int) Hashtbl.t -> (int * float) list
