(** Edge labels of the control flow graph (the set [L] of Definition 1). *)

type t =
  | T  (** true branch of a conditional *)
  | F  (** false branch of a conditional *)
  | U  (** unconditional transfer *)
  | Case of int  (** one arm of a multiway branch *)
  | Pseudo of int  (** never-taken pseudo edge inserted by the ECFG
                       construction (printed Z1, Z2, ... as in the paper) *)

val equal : t -> t -> bool
val compare : t -> t -> int

(** True exactly for [Pseudo _] labels. *)
val is_pseudo : t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit
