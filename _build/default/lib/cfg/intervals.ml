(* Interval structure of a reducible CFG (paper §2).

   "A reducible control flow graph has a unique depth-first spanning tree
   and hence a unique interval structure ...  The intervals identify the
   loops in the program."

   We realize the interval structure as the natural-loop forest: every
   back-edge target is a header; the interval of header [h] is the union of
   the natural loops of all back edges into [h]; the whole procedure body is
   the outermost interval, headed by the entry node (the paper's
   HDR_PARENT(h) = 0 case).  The entry must have no predecessors
   (Cfg.normalize_entry) so it can never itself be a loop header. *)

open S89_graph

exception Irreducible of (int * int) list
exception Entry_has_preds of int

module IS = Set.Make (Int)

type loop_info = {
  header : int;
  members : IS.t; (* includes the header and all nested loops' nodes *)
  back_srcs : int list; (* sources of back edges into the header *)
}

type t = {
  root : int; (* entry node; id of the outermost interval *)
  hdr : int array; (* innermost interval header per node *)
  parent : int array; (* per header: enclosing interval header; -1 for root *)
  depth_lca : Lca.t;
  loops : (int, loop_info) Hashtbl.t; (* real loops, keyed by header *)
  header_list : int list; (* real headers, outermost-first *)
  n : int;
}

let compute (type a) (cfg : a Cfg.t) =
  let g = Cfg.graph cfg in
  let entry = Cfg.entry cfg in
  if Digraph.in_degree g entry > 0 then raise (Entry_has_preds entry);
  (match Reducibility.back_edges_if_reducible g ~root:entry with
  | None ->
      let off =
        List.map
          (fun (e : Label.t Digraph.edge) -> (e.src, e.dst))
          (Reducibility.offending_edges g ~root:entry)
      in
      raise (Irreducible off)
  | Some _ -> ());
  let back = Reducibility.natural_back_edges g ~root:entry in
  let n = Digraph.num_nodes g in
  (* group back edges by header *)
  let by_hdr = Hashtbl.create 8 in
  List.iter
    (fun (e : Label.t Digraph.edge) ->
      Hashtbl.replace by_hdr e.dst (e.src :: (try Hashtbl.find by_hdr e.dst with Not_found -> [])))
    back;
  (* natural loop membership: backwards closure from back-edge sources,
     stopping at the header *)
  let loop_of header srcs =
    let members = ref (IS.singleton header) in
    let stack = ref [] in
    List.iter
      (fun s ->
        if not (IS.mem s !members) then begin
          members := IS.add s !members;
          stack := s :: !stack
        end)
      srcs;
    while !stack <> [] do
      match !stack with
      | [] -> assert false
      | v :: rest ->
          stack := rest;
          List.iter
            (fun p ->
              if not (IS.mem p !members) then begin
                members := IS.add p !members;
                stack := p :: !stack
              end)
            (Digraph.preds g v)
    done;
    { header; members = !members; back_srcs = List.rev srcs }
  in
  let loops = Hashtbl.create 8 in
  Hashtbl.iter (fun h srcs -> Hashtbl.replace loops h (loop_of h srcs)) by_hdr;
  (* innermost header per node: smallest containing loop *)
  let loop_list =
    Hashtbl.fold (fun _ l acc -> l :: acc) loops []
    |> List.sort (fun a b ->
           compare (IS.cardinal a.members, a.header) (IS.cardinal b.members, b.header))
  in
  let hdr = Array.make n entry in
  for v = 0 to n - 1 do
    match List.find_opt (fun l -> IS.mem v l.members) loop_list with
    | Some l -> hdr.(v) <- l.header
    | None -> hdr.(v) <- entry
  done;
  (* parent of each real header: smallest loop properly containing it *)
  let parent = Array.make n (-1) in
  List.iter
    (fun l ->
      let h = l.header in
      match
        List.find_opt (fun l' -> l'.header <> h && IS.mem h l'.members) loop_list
      with
      | Some l' -> parent.(h) <- l'.header
      | None -> parent.(h) <- entry)
    loop_list;
  parent.(entry) <- -1;
  let depth_lca = Lca.of_parents parent in
  let header_list =
    List.sort
      (fun a b -> compare (Lca.depth depth_lca a, a) (Lca.depth depth_lca b, b))
      (List.map (fun l -> l.header) loop_list)
  in
  { root = entry; hdr = Array.copy hdr; parent; depth_lca; loops; header_list; n }

let root t = t.root

let headers t = t.header_list

let is_header t h = Hashtbl.mem t.loops h

let hdr t v = t.hdr.(v)

(* HDR_PARENT: None encodes the paper's "0" (outermost interval). *)
let hdr_parent t h =
  if h = t.root then None
  else if not (is_header t h) then
    invalid_arg (Printf.sprintf "Intervals.hdr_parent: %d is not a header" h)
  else Some t.parent.(h)

let hdr_lca t h1 h2 = Lca.lca t.depth_lca h1 h2

let interval_depth t h = Lca.depth t.depth_lca h

(* [encloses t a b]: interval headed by [a] contains (reflexively) the
   interval headed by [b] in the header tree. *)
let encloses t a b = Lca.is_ancestor t.depth_lca a b

let members t h =
  if h = t.root then
    List.init t.n Fun.id |> IS.of_list
  else
    match Hashtbl.find_opt t.loops h with
    | Some l -> l.members
    | None -> invalid_arg (Printf.sprintf "Intervals.members: %d is not a header" h)

let back_edge_sources t h =
  match Hashtbl.find_opt t.loops h with
  | Some l -> l.back_srcs
  | None -> invalid_arg (Printf.sprintf "Intervals.back_edge_sources: %d is not a header" h)

(* Exit edges of a real loop: edges from a member to a non-member. *)
let exit_edges (type a) t (cfg : a Cfg.t) h =
  let ms = members t h in
  IS.fold
    (fun u acc ->
      List.fold_left
        (fun acc (e : Label.t Digraph.edge) ->
          if not (IS.mem e.dst ms) then e :: acc else acc)
        acc (Cfg.succ_edges cfg u))
    ms []
  |> List.rev

let pp fmt t =
  Fmt.pf fmt "@[<v>intervals: root=%d" t.root;
  List.iter
    (fun h ->
      let l = Hashtbl.find t.loops h in
      Fmt.pf fmt "@,  header %d (parent %d, depth %d): {%a}" h t.parent.(h)
        (interval_depth t h)
        Fmt.(list ~sep:comma int)
        (IS.elements l.members))
    t.header_list;
  Fmt.pf fmt "@]"
