(** Extended control flow graph (paper §2, the six-step construction):
    preheaders, postexits, START/STOP and never-taken pseudo edges, built
    from a reducible CFG and its interval structure. *)

open S89_graph

(** Raised when a loop has no exit edges (the paper assumes all executions
    terminate normally); carries the loop header. *)
exception Nonterminating_interval of int

type 'a t

(** The label connecting a preheader to its header node ([U]); Definition 3
    reads the loop frequency off this control condition. *)
val body_label : Label.t

(** Build the ECFG.  Original node ids are preserved; synthetic nodes get
    payload [empty] (default: the entry node's payload).
    @raise Intervals.Irreducible on irreducible input
    @raise Nonterminating_interval on an exitless loop
    @raise Invalid_argument if {!Cfg.validate} fails. *)
val extend : ?empty:'a -> 'a Cfg.t -> 'a t

(** The extended graph.  Entry is START, the only exit is STOP. *)
val cfg : 'a t -> 'a Cfg.t

val start : 'a t -> int
val stop : 'a t -> int

(** Interval structure of the {e original} CFG. *)
val intervals : 'a t -> Intervals.t

(** Ids below this count are original CFG nodes. *)
val orig_count : 'a t -> int

val is_original : 'a t -> int -> bool

(** Interval (header id, or the root) containing an extended node. *)
val interval_of : 'a t -> int -> int

val preheader_of_header : 'a t -> int -> int
val header_of_preheader : 'a t -> int -> int
val is_preheader : 'a t -> int -> bool
val is_postexit : 'a t -> int -> bool

(** Header of the interval a postexit node exits. *)
val exited_interval : 'a t -> int -> int

(** All postexit nodes, in creation order. *)
val postexits : 'a t -> int list

(** Real loop headers (of the original CFG), outermost-first. *)
val headers : 'a t -> int list

(** In-edges of a header other than its preheader's edge — the branches
    that "transfer control back to the loop header" (§3, optimization 2). *)
val latch_edges : 'a t -> int -> Label.t Digraph.edge list

(** Postexit nodes exiting the interval headed by [h]. *)
val postexits_of_header : 'a t -> int -> int list

val pp : ?pp_info:(Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
