(** Node types (the mapping [T_c] of Definition 1). *)

type t = Start | Stop | Header | Preheader | Postexit | Other

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
