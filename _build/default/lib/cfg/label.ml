(* Edge labels of the control flow graph (the set L of Definition 1).

   [T]/[F] mark the branches of a two-way conditional, [U] an unconditional
   transfer, [Case k] one arm of a computed/multiway branch, and [Pseudo k]
   the never-taken pseudo edges that the ECFG construction inserts (the
   paper prints them as Z1, Z2, ...). *)

type t = T | F | U | Case of int | Pseudo of int

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

let is_pseudo = function Pseudo _ -> true | _ -> false

let to_string = function
  | T -> "T"
  | F -> "F"
  | U -> "U"
  | Case k -> Printf.sprintf "C%d" k
  | Pseudo k -> Printf.sprintf "Z%d" k

let pp fmt l = Fmt.string fmt (to_string l)
