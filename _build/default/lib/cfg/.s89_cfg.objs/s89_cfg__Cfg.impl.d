lib/cfg/cfg.ml: Dfs Digraph Fmt Label List Node_split Node_type S89_graph Vec
