lib/cfg/intervals.ml: Array Cfg Digraph Fmt Fun Hashtbl Int Label Lca List Printf Reducibility S89_graph Set
