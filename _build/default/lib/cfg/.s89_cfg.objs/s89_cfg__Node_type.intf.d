lib/cfg/node_type.mli: Format
