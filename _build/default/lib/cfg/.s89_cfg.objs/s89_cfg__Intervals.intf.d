lib/cfg/intervals.mli: Cfg Digraph Format Label S89_graph Set
