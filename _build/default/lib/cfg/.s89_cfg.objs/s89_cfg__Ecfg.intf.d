lib/cfg/ecfg.mli: Cfg Digraph Format Intervals Label S89_graph
