lib/cfg/label.ml: Fmt Printf Stdlib
