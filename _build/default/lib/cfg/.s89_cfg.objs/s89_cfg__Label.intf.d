lib/cfg/label.mli: Format
