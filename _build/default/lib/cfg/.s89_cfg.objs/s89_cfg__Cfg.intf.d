lib/cfg/cfg.mli: Digraph Format Label Node_type S89_graph
