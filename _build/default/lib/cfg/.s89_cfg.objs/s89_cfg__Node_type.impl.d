lib/cfg/node_type.ml: Fmt
