lib/cfg/ecfg.ml: Cfg Digraph Fmt Hashtbl Intervals Label List Node_type Printf S89_graph Vec
