(** Control flow graphs per Definition 1: a labelled multigraph with a
    node-type mapping, a unique first node and one or more last nodes.

    Node payloads of type ['a] carry client data (the MF77 frontend stores
    basic-block contents; tests use strings or unit). *)

open S89_graph

type 'a t

(** Fresh empty CFG.  [dummy] is a placeholder payload for internal
    storage; it is never observable. *)
val create : dummy:'a -> 'a t

(** The underlying labelled multigraph (shared, not a copy). *)
val graph : 'a t -> Label.t Digraph.t

val num_nodes : 'a t -> int

(** Allocate a node with a payload; [ty] defaults to [Other]. *)
val add_node : ?ty:Node_type.t -> 'a t -> 'a -> int

val node_type : 'a t -> int -> Node_type.t
val set_node_type : 'a t -> int -> Node_type.t -> unit
val info : 'a t -> int -> 'a
val set_info : 'a t -> int -> 'a -> unit
val add_edge : 'a t -> src:int -> dst:int -> label:Label.t -> unit

(** The unique first node.  Raises [Invalid_argument] if unset. *)
val entry : 'a t -> int

val set_entry : 'a t -> int -> unit

(** The last nodes (the paper allows several, e.g. RETURNs). *)
val exits : 'a t -> int list

val set_exits : 'a t -> int list -> unit
val succ_edges : 'a t -> int -> Label.t Digraph.edge list
val pred_edges : 'a t -> int -> Label.t Digraph.edge list
val iter_nodes : (int -> unit) -> 'a t -> unit
val iter_edges : (Label.t Digraph.edge -> unit) -> 'a t -> unit

(** Distinct outgoing labels of a node, in first-appearance order. *)
val out_labels : 'a t -> int -> Label.t list

(** Ensure the entry node has no predecessors, inserting a fresh entry block
    (payload [dummy], label [U]) when needed; returns the (possibly new)
    entry.  Interval analysis requires this normal form. *)
val normalize_entry : 'a t -> int

(** Split nodes until the CFG is reducible (payloads and node types are
    duplicated along); returns the [(orig, copy)] pairs, [[]] if the graph
    was already reducible.  See {!S89_graph.Node_split}. *)
val make_reducible : 'a t -> (int * int) list

type error =
  | No_entry
  | No_exit
  | Dangling_exit of int
  | Unreachable of int list
  | Exit_has_successor of int

val pp_error : Format.formatter -> error -> unit

(** Structural sanity checks ahead of the interval/ECFG pipeline. *)
val validate : 'a t -> (unit, error) result

val pp : ?pp_info:(Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
