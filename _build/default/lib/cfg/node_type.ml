(* Node types (the mapping T_c of Definition 1).

   "The classification into node types ... is only used to help identify
   the interval structure in the forward control dependence graph computed
   later.  The node type mapping does not change the semantics of the
   control flow graph in any way."  All nodes of an original CFG are
   [Other]; the ECFG construction introduces the rest. *)

type t = Start | Stop | Header | Preheader | Postexit | Other

let equal (a : t) (b : t) = a = b

let to_string = function
  | Start -> "START"
  | Stop -> "STOP"
  | Header -> "HEADER"
  | Preheader -> "PREHEADER"
  | Postexit -> "POSTEXIT"
  | Other -> "OTHER"

let pp fmt t = Fmt.string fmt (to_string t)
