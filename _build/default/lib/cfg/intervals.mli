(** Interval structure of a reducible CFG (paper §2): the natural-loop
    forest plus the paper's [HDR] / [HDR_PARENT] / [HDR_LCA] mappings.

    The whole procedure body is the outermost interval, headed by the entry
    node.  The entry must have no predecessors ({!Cfg.normalize_entry}). *)

open S89_graph

(** The CFG is irreducible; carries witness retreating edges [(src, dst)]. *)
exception Irreducible of (int * int) list

(** The entry node has predecessors; normalize first. *)
exception Entry_has_preds of int

module IS : Set.S with type elt = int

type t

(** Compute the interval structure.
    @raise Irreducible if the CFG is not reducible.
    @raise Entry_has_preds if the entry node has in-edges. *)
val compute : 'a Cfg.t -> t

(** Entry node = id of the outermost interval. *)
val root : t -> int

(** Real loop headers, outermost-first (the root interval is not listed). *)
val headers : t -> int list

(** Is the node a real loop header? *)
val is_header : t -> int -> bool

(** [hdr t v] — the paper's [HDR(v)]: header of the innermost interval
    containing [v] ({!root} for loop-free nodes). *)
val hdr : t -> int -> int

(** [hdr_parent t h] — the paper's [HDR_PARENT(h)]; [None] encodes the
    paper's "0" (outermost interval).  Raises [Invalid_argument] if [h] is
    neither a header nor the root. *)
val hdr_parent : t -> int -> int option

(** [hdr_lca t h1 h2] — the paper's [HDR_LCA]: least common ancestor in the
    header tree.  Arguments must be headers or the root. *)
val hdr_lca : t -> int -> int -> int

(** Depth in the header tree (root = 0). *)
val interval_depth : t -> int -> int

(** [encloses t a b] — interval [a] (reflexively) contains interval [b]. *)
val encloses : t -> int -> int -> bool

(** Nodes of the interval headed by [h], including nested loops; for the
    root this is every node. *)
val members : t -> int -> IS.t

(** Sources of the back edges into a real header. *)
val back_edge_sources : t -> int -> int list

(** Exit edges of a real loop: edges from a member to a non-member. *)
val exit_edges : t -> 'a Cfg.t -> int -> Label.t Digraph.edge list

val pp : Format.formatter -> t -> unit
