(* Extended control flow graph (paper §2, the six-step construction).

   Starting from a reducible CFG and its interval structure we build ECFG:

   1. copy the CFG;
   2. give every interval a fresh PREHEADER node and redirect interval
      entries to it (the paper's step 2(b)i prints "(ph,u,l)", an obvious
      typo for (u,ph,l));
   3. split every interval exit (u,v,l) into (u,pe,l), (pe,v,U) through a
      fresh POSTEXIT node, and add a never-taken pseudo edge from the
      exited interval's preheader to pe;
   4-5. add START/STOP nodes wired to the first/last nodes;
   6. add the pseudo edge START -> STOP.

   The pseudo edges guarantee that in the control dependence graph computed
   next, every node of an interval hangs (directly or transitively) under
   that interval's preheader, and everything hangs under START.

   Deviations from the letter of the paper, both recorded in DESIGN.md:
   - exits that leave several nested intervals at once are cascaded, one
     POSTEXIT per level, so that each level's exit frequency is attributed
     to that level's preheader;
   - START/STOP are added before the exit splitting so that a RETURN inside
     a loop is also treated as an interval exit. *)

open S89_graph

exception Nonterminating_interval of int
(* a loop with no exit edges cannot reach STOP; the paper assumes all
   executions terminate normally *)

type 'a t = {
  ext : 'a Cfg.t; (* the extended graph; original ids are preserved *)
  start : int;
  stop : int;
  orig_count : int; (* ids < orig_count are original CFG nodes *)
  intervals : Intervals.t; (* interval structure of the ORIGINAL cfg *)
  ivl : int Vec.t; (* per extended node: its interval (header id or root) *)
  preheader : (int, int) Hashtbl.t; (* header -> preheader *)
  header_of : (int, int) Hashtbl.t; (* preheader -> header *)
  exits_of_pe : (int, int) Hashtbl.t; (* postexit -> header of exited interval *)
  mutable postexits : int list; (* in creation order *)
}

let body_label = Label.U
(* the label connecting a preheader to its header node (Definition 3 case 1) *)

let extend ?(empty : 'a option) (cfg : 'a Cfg.t) : 'a t =
  (match Cfg.validate cfg with
  | Ok () -> ()
  | Error e -> invalid_arg (Fmt.str "Ecfg.extend: invalid CFG: %a" Cfg.pp_error e));
  let intervals = Intervals.compute cfg in
  (* every interval must have a way out *)
  List.iter
    (fun h ->
      if Intervals.exit_edges intervals cfg h = [] then
        raise (Nonterminating_interval h))
    (Intervals.headers intervals);
  let orig_count = Cfg.num_nodes cfg in
  let empty = match empty with Some e -> e | None -> Cfg.info cfg (Cfg.entry cfg) in
  let ext = Cfg.create ~dummy:empty in
  Cfg.iter_nodes
    (fun n -> ignore (Cfg.add_node ~ty:(Cfg.node_type cfg n) ext (Cfg.info cfg n)))
    cfg;
  Cfg.iter_edges (fun e -> Cfg.add_edge ext ~src:e.src ~dst:e.dst ~label:e.label) cfg;
  let ivl = Vec.create ~dummy:(-1) in
  for n = 0 to orig_count - 1 do
    Vec.push ivl (Intervals.hdr intervals n)
  done;
  let root = Intervals.root intervals in
  let parent_of i =
    if i = root then root
    else match Intervals.hdr_parent intervals i with Some p -> p | None -> root
  in
  let pseudo_ctr = ref 0 in
  let fresh_pseudo () =
    incr pseudo_ctr;
    Label.Pseudo !pseudo_ctr
  in
  let preheader = Hashtbl.create 8 and header_of = Hashtbl.create 8 in
  let exits_of_pe = Hashtbl.create 8 in
  let postexits = ref [] in
  (* --- step 2: preheaders, outermost intervals first --- *)
  List.iter
    (fun h ->
      let ph = Cfg.add_node ~ty:Node_type.Preheader ext empty in
      Vec.push ivl (parent_of h);
      Hashtbl.replace preheader h ph;
      Hashtbl.replace header_of ph h;
      Cfg.set_node_type ext h Node_type.Header;
      let entering =
        List.filter
          (fun (e : Label.t Digraph.edge) ->
            (* interval entry: HDR_LCA(HDR(u), h) <> h *)
            not (Intervals.encloses intervals h (Vec.get ivl e.src)))
          (Cfg.pred_edges ext h)
      in
      List.iter
        (fun (e : Label.t Digraph.edge) ->
          Digraph.remove_edge (Cfg.graph ext) e;
          Cfg.add_edge ext ~src:e.src ~dst:ph ~label:e.label)
        entering;
      Cfg.add_edge ext ~src:ph ~dst:h ~label:body_label)
    (Intervals.headers intervals);
  (* --- steps 4-6: START / STOP / pseudo START->STOP --- *)
  let start = Cfg.add_node ~ty:Node_type.Start ext empty in
  Vec.push ivl root;
  let stop = Cfg.add_node ~ty:Node_type.Stop ext empty in
  Vec.push ivl root;
  Cfg.add_edge ext ~src:start ~dst:(Cfg.entry cfg) ~label:Label.U;
  List.iter (fun x -> Cfg.add_edge ext ~src:x ~dst:stop ~label:Label.U) (Cfg.exits cfg);
  Cfg.add_edge ext ~src:start ~dst:stop ~label:(fresh_pseudo ());
  Cfg.set_entry ext start;
  Cfg.set_exits ext [ stop ];
  (* --- step 3: interval exits, cascaded one level at a time --- *)
  let worklist = ref [] in
  Cfg.iter_edges (fun e -> worklist := e :: !worklist) ext;
  while !worklist <> [] do
    match !worklist with
    | [] -> assert false
    | e :: rest ->
        worklist := rest;
        let iu = Vec.get ivl e.src and iv = Vec.get ivl e.dst in
        (* interval exit: HDR_LCA(HDR(u), HDR(v)) <> HDR(u) *)
        if not (Intervals.encloses intervals iu iv) then begin
          let pe = Cfg.add_node ~ty:Node_type.Postexit ext empty in
          Vec.push ivl (parent_of iu);
          Hashtbl.replace exits_of_pe pe iu;
          postexits := pe :: !postexits;
          Digraph.remove_edge (Cfg.graph ext) e;
          Cfg.add_edge ext ~src:e.src ~dst:pe ~label:e.label;
          Cfg.add_edge ext ~src:pe ~dst:e.dst ~label:Label.U;
          let ph = Hashtbl.find preheader iu in
          Cfg.add_edge ext ~src:ph ~dst:pe ~label:(fresh_pseudo ());
          (* only the outgoing half may still cross interval levels *)
          List.iter
            (fun (e' : Label.t Digraph.edge) -> worklist := e' :: !worklist)
            (Cfg.succ_edges ext pe)
        end
  done;
  {
    ext;
    start;
    stop;
    orig_count;
    intervals;
    ivl;
    preheader;
    header_of;
    exits_of_pe;
    postexits = List.rev !postexits;
  }

let cfg t = t.ext
let start t = t.start
let stop t = t.stop
let intervals t = t.intervals
let orig_count t = t.orig_count
let is_original t n = n < t.orig_count
let interval_of t n = Vec.get t.ivl n

let preheader_of_header t h =
  match Hashtbl.find_opt t.preheader h with
  | Some ph -> ph
  | None -> invalid_arg (Printf.sprintf "Ecfg.preheader_of_header: %d" h)

let header_of_preheader t ph =
  match Hashtbl.find_opt t.header_of ph with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "Ecfg.header_of_preheader: %d" ph)

let is_preheader t n = Hashtbl.mem t.header_of n
let is_postexit t n = Hashtbl.mem t.exits_of_pe n

let exited_interval t pe =
  match Hashtbl.find_opt t.exits_of_pe pe with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "Ecfg.exited_interval: %d" pe)

let postexits t = t.postexits
let headers t = Intervals.headers t.intervals

(* Back-edge conditions of a header in the extended graph: in-edges of [h]
   other than the preheader's — exactly the branches that "transfer control
   back to the loop header" in §3's second optimization. *)
let latch_edges t h =
  let ph = preheader_of_header t h in
  List.filter
    (fun (e : Label.t Digraph.edge) -> e.src <> ph)
    (Cfg.pred_edges t.ext h)

(* Postexit nodes of a given interval (the loop's exits in FCDG). *)
let postexits_of_header t h =
  List.filter (fun pe -> Hashtbl.find t.exits_of_pe pe = h) t.postexits

let pp ?pp_info fmt t =
  Fmt.pf fmt "@[<v>ECFG (START=%d, STOP=%d):@," t.start t.stop;
  Cfg.pp ?pp_info fmt t.ext;
  Fmt.pf fmt "@]"
