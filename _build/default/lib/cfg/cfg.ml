(* Control flow graphs per Definition 1 of the paper:
   CFG = (N_c, E_c, T_c), a labelled multigraph with a node-type mapping.

   Node payloads of type ['a] carry whatever the client attaches — the MF77
   frontend stores basic-block contents there; tests use strings or unit.
   The graph also records the unique first node [entry] and the last nodes
   [exits] (§2 allows several, e.g. RETURN statements). *)

open S89_graph

type 'a t = {
  g : Label.t Digraph.t;
  types : Node_type.t Vec.t;
  info : 'a Vec.t;
  mutable entry : int;
  mutable exits : int list;
  dummy : 'a;
}

let create ~dummy =
  {
    g = Digraph.create ();
    types = Vec.create ~dummy:Node_type.Other;
    info = Vec.create ~dummy;
    entry = -1;
    exits = [];
    dummy;
  }

let graph t = t.g

let num_nodes t = Digraph.num_nodes t.g

let add_node ?(ty = Node_type.Other) t info =
  let n = Digraph.add_node t.g in
  Vec.push t.types ty;
  Vec.push t.info info;
  n

let node_type t n = Vec.get t.types n
let set_node_type t n ty = Vec.set t.types n ty
let info t n = Vec.get t.info n
let set_info t n x = Vec.set t.info n x

let add_edge t ~src ~dst ~label = ignore (Digraph.add_edge t.g ~src ~dst ~label)

let entry t =
  if t.entry < 0 then invalid_arg "Cfg.entry: entry not set";
  t.entry

let set_entry t n = t.entry <- n
let exits t = t.exits
let set_exits t ns = t.exits <- ns

let succ_edges t n = Digraph.succ_edges t.g n
let pred_edges t n = Digraph.pred_edges t.g n

let iter_nodes f t = Digraph.iter_nodes f t.g
let iter_edges f t = Digraph.iter_edges f t.g

(* Distinct outgoing labels of a node, in first-appearance order.  These are
   "the branch labels from node u" of §3's second optimization. *)
let out_labels t n =
  List.fold_left
    (fun acc (e : Label.t Digraph.edge) ->
      if List.exists (Label.equal e.label) acc then acc else e.label :: acc)
    [] (succ_edges t n)
  |> List.rev

(* The interval analysis requires the entry node to have no predecessors
   (otherwise the entry could be a loop header and the "outermost interval"
   of the paper would collide with that loop).  Insert a fresh entry block
   when needed. *)
let normalize_entry t =
  let e = entry t in
  if Digraph.in_degree t.g e = 0 then e
  else begin
    let fresh = add_node t t.dummy in
    add_edge t ~src:fresh ~dst:e ~label:Label.U;
    t.entry <- fresh;
    fresh
  end

(* Node splitting at the CFG level: keeps the payload/type vectors in sync
   with the nodes Node_split adds.  Returns the (orig, copy) pairs. *)
let make_reducible t =
  Node_split.make_reducible (graph t) ~root:(entry t) ~on_copy:(fun ~orig ~copy:_ ->
      Vec.push t.types (node_type t orig);
      Vec.push t.info (info t orig))

type error =
  | No_entry
  | No_exit
  | Dangling_exit of int
  | Unreachable of int list
  | Exit_has_successor of int

let pp_error fmt = function
  | No_entry -> Fmt.string fmt "no entry node set"
  | No_exit -> Fmt.string fmt "no exit node set"
  | Dangling_exit n -> Fmt.pf fmt "exit node %d is not a graph node" n
  | Unreachable ns ->
      Fmt.pf fmt "nodes unreachable from entry: %a" Fmt.(list ~sep:comma int) ns
  | Exit_has_successor n ->
      Fmt.pf fmt "exit node %d has outgoing control flow" n

(* Structural sanity checks ahead of the interval/ECFG pipeline. *)
let validate t =
  if t.entry < 0 then Error No_entry
  else if t.exits = [] then Error No_exit
  else
    match List.find_opt (fun n -> not (Digraph.mem_node t.g n)) t.exits with
    | Some n -> Error (Dangling_exit n)
    | None -> (
        match
          List.find_opt (fun n -> Digraph.out_degree t.g n > 0) t.exits
        with
        | Some n -> Error (Exit_has_successor n)
        | None ->
            let num = Dfs.number t.g ~root:t.entry in
            let unreachable = ref [] in
            for n = num_nodes t - 1 downto 0 do
              if not (Dfs.reachable num n) then unreachable := n :: !unreachable
            done;
            if !unreachable <> [] then Error (Unreachable !unreachable) else Ok ())

let pp ?(pp_info = fun _ _ -> ()) fmt t =
  Fmt.pf fmt "@[<v>CFG: %d nodes, entry=%d, exits=[%a]" (num_nodes t)
    t.entry
    Fmt.(list ~sep:comma int)
    t.exits;
  iter_nodes
    (fun n ->
      Fmt.pf fmt "@,  %d [%a]%a:" n Node_type.pp (node_type t n)
        (fun fmt n -> pp_info fmt (info t n))
        n;
      List.iter
        (fun (e : Label.t Digraph.edge) ->
          Fmt.pf fmt " -%s-> %d" (Label.to_string e.label) e.dst)
        (succ_edges t n))
    t;
  Fmt.pf fmt "@]"
