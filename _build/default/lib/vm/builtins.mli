(** Implementations of the MF77 intrinsics (ABS, SQRT, MOD, MIN/MAX
    families, conversions, SIGN, and the profiling-workload PRNG hooks
    RAND/IRAND). *)

module Prng = S89_util.Prng

(** [apply rng name args].  Raises {!Value.Runtime_error} on bad
    arguments or domain errors (e.g. [SQRT] of a negative). *)
val apply : Prng.t -> string -> Value.t list -> Value.t
