lib/vm/optimize.mli: S89_cfg S89_frontend
