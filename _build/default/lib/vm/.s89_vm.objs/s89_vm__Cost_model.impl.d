lib/vm/cost_model.ml: List S89_frontend
