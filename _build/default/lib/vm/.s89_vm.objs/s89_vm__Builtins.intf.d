lib/vm/builtins.mli: S89_util Value
