lib/vm/value.mli: Format S89_frontend
