lib/vm/probe.ml: Array Hashtbl List S89_cfg S89_frontend
