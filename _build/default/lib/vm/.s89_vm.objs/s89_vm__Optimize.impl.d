lib/vm/optimize.ml: Array Builtins Cfg Hashtbl Label List Map Option S89_cfg S89_frontend S89_graph S89_util String Value
