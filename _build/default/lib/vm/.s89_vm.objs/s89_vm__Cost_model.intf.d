lib/vm/cost_model.mli: S89_frontend
