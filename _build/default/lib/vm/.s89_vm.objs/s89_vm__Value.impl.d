lib/vm/value.ml: Float Fmt S89_frontend
