lib/vm/interp.mli: Cost_model Label Probe S89_cfg S89_frontend
