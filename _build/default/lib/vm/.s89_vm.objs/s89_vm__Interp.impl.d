lib/vm/interp.ml: Array Buffer Builtins Cfg Cost_model Fmt Hashtbl Label List Printf Probe S89_cfg S89_frontend S89_graph S89_util Value
