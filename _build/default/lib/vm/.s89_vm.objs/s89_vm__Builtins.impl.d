lib/vm/builtins.ml: Float List S89_util Value
