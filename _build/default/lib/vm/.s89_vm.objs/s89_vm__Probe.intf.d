lib/vm/probe.mli: Hashtbl S89_cfg S89_frontend
