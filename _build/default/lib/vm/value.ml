(* Runtime values and Fortran-flavoured arithmetic for the MF77 VM.

   Semantics choices that matter to the reproduction:
   - INTEGER division truncates toward zero (Fortran rule) — the DO-loop
     trip count formula in Lower relies on it;
   - mixed INTEGER/REAL arithmetic promotes to REAL;
   - [i ** j] with non-negative integer exponents stays INTEGER. *)

module Ast = S89_frontend.Ast

type t = Int of int | Real of float | Bool of bool

exception Runtime_error of string

let err fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

let zero_of (ty : Ast.typ) =
  match ty with Ast.Tint -> Int 0 | Ast.Treal -> Real 0.0 | Ast.Tlogical -> Bool false

let to_float = function
  | Int i -> float_of_int i
  | Real r -> r
  | Bool _ -> err "LOGICAL used in arithmetic"

let to_int = function
  | Int i -> i
  | Real r -> int_of_float r (* truncation, as Fortran INT() *)
  | Bool _ -> err "LOGICAL used as INTEGER"

let to_bool = function
  | Bool b -> b
  | v -> err "arithmetic value %s used as LOGICAL" (match v with Int _ -> "INTEGER" | _ -> "REAL")

let pp fmt = function
  | Int i -> Fmt.int fmt i
  | Real r -> Fmt.pf fmt "%.6g" r
  | Bool true -> Fmt.string fmt ".TRUE."
  | Bool false -> Fmt.string fmt ".FALSE."

(* coerce a value for storage into a variable of declared type *)
let coerce (ty : Ast.typ) v =
  match (ty, v) with
  | Ast.Tint, Int _ | Ast.Treal, Real _ | Ast.Tlogical, Bool _ -> v
  | Ast.Tint, Real r -> Int (int_of_float r)
  | Ast.Treal, Int i -> Real (float_of_int i)
  | Ast.Tlogical, _ -> err "cannot store arithmetic value in LOGICAL"
  | _, Bool _ -> err "cannot store LOGICAL in arithmetic variable"

let arith name fint freal a b =
  match (a, b) with
  | Int x, Int y -> Int (fint x y)
  | (Int _ | Real _), (Int _ | Real _) -> Real (freal (to_float a) (to_float b))
  | _ -> err "LOGICAL operand of %s" name

let add = arith "+" ( + ) ( +. )
let sub = arith "-" ( - ) ( -. )
let mul = arith "*" ( * ) ( *. )

let div a b =
  match (a, b) with
  | Int _, Int 0 -> err "INTEGER division by zero"
  | Int x, Int y ->
      (* OCaml's / truncates toward zero, matching Fortran *)
      Int (x / y)
  | (Int _ | Real _), (Int _ | Real _) ->
      let d = to_float b in
      if d = 0.0 then err "REAL division by zero" else Real (to_float a /. d)
  | _ -> err "LOGICAL operand of /"

let rec int_pow base exp = if exp = 0 then 1 else base * int_pow base (exp - 1)

let pow a b =
  match (a, b) with
  | Int x, Int y -> if y >= 0 then Int (int_pow x y) else err "negative INTEGER exponent"
  | Real x, Int y ->
      if y >= 0 then Real (Float.pow x (float_of_int y))
      else Real (1.0 /. Float.pow x (float_of_int (-y)))
  | (Int _ | Real _), Real _ -> Real (Float.pow (to_float a) (to_float b))
  | _ -> err "LOGICAL operand of **"

let neg = function
  | Int i -> Int (-i)
  | Real r -> Real (-.r)
  | Bool _ -> err "LOGICAL operand of unary -"

let compare_num a b =
  match (a, b) with
  | Int x, Int y -> compare x y
  | (Int _ | Real _), (Int _ | Real _) -> compare (to_float a) (to_float b)
  | Bool x, Bool y -> compare x y
  | _ -> err "comparison between LOGICAL and arithmetic"

let rel op a b =
  let c = compare_num a b in
  Bool
    (match op with
    | Ast.Lt -> c < 0
    | Ast.Le -> c <= 0
    | Ast.Gt -> c > 0
    | Ast.Ge -> c >= 0
    | Ast.Eq -> c = 0
    | Ast.Ne -> c <> 0
    | _ -> err "rel: not a relational operator")

let logic op a b =
  match op with
  | Ast.And -> Bool (to_bool a && to_bool b)
  | Ast.Or -> Bool (to_bool a || to_bool b)
  | _ -> err "logic: not a logical operator"
