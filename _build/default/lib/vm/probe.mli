(** Profiling instrumentation: counter-update actions attached to CFG
    nodes and edges, fired by the VM at [c_counter] cycles per action. *)

module Ast = S89_frontend.Ast

type action =
  | Incr of int  (** counter id += 1 *)
  | Bulk_add of int * Ast.expr
      (** counter id += expr evaluated in the current frame — the DO-loop
          optimization's "add the number of iterations once" (§3) *)

type proc_instr = {
  on_node : action list array;  (** fired when the node executes *)
  on_edge : (S89_cfg.Label.t * action list) list array;
      (** fired when the labelled edge is traversed, by source node *)
}

type t = {
  n_counters : int;
  by_proc : (string, proc_instr) Hashtbl.t;
}

(** No instrumentation. *)
val empty : t

val make : n_counters:int -> t
val ensure_proc : t -> string -> num_nodes:int -> proc_instr
val add_node_action : t -> proc:string -> num_nodes:int -> node:int -> action -> unit

val add_edge_action :
  t -> proc:string -> num_nodes:int -> node:int -> label:S89_cfg.Label.t -> action -> unit

val find_proc : t -> string -> proc_instr option

(** Static number of attached actions (for reporting). *)
val num_actions : t -> int
