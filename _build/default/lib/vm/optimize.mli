(** Scalar optimizer over statement-level CFGs: constant folding and
    algebraic simplification, local constant propagation (conservative
    around calls and parameter aliasing), dead scalar-assignment
    elimination and no-op elision.  Together with the two
    {!Cost_model} presets it models Table 1's "compiler optimization
    ON/OFF" axis.  RAND/IRAND are treated as side-effecting so profiled
    frequencies stay comparable across optimization levels. *)

module Program = S89_frontend.Program
module Ir = S89_frontend.Ir

(** Whether an expression may have effects (user calls, RAND/IRAND). *)
val expr_impure : Program.t option -> S89_frontend.Ast.expr -> bool

(** Fold one expression. *)
val fold : Program.t option -> S89_frontend.Ast.expr -> S89_frontend.Ast.expr

(** Optimize one procedure's CFG (mutates payloads; returns a rebuilt
    graph).  Prefer {!program}, which copies first. *)
val optimize_cfg : ?program:Program.t -> Program.proc -> Ir.info S89_cfg.Cfg.t

(** Whole-program optimization; the input program is left untouched. *)
val program : Program.t -> Program.t
