(** Runtime values with Fortran-flavoured arithmetic: INTEGER division
    truncates toward zero, mixed INTEGER/REAL promotes to REAL, and
    [i ** j] with non-negative integer exponents stays INTEGER. *)

module Ast = S89_frontend.Ast

type t = Int of int | Real of float | Bool of bool

exception Runtime_error of string

(** Raise {!Runtime_error} with a formatted message. *)
val err : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** The zero/false value of a declared type. *)
val zero_of : Ast.typ -> t

val to_float : t -> float

(** Truncating conversion (Fortran INT()). *)
val to_int : t -> int

val to_bool : t -> bool
val pp : Format.formatter -> t -> unit

(** Coerce for storage into a variable of the given declared type. *)
val coerce : Ast.typ -> t -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Raises {!Runtime_error} on division by zero. *)
val div : t -> t -> t

(** Raises {!Runtime_error} on negative INTEGER exponents. *)
val pow : t -> t -> t

val neg : t -> t
val compare_num : t -> t -> int

(** Relational operators ([Lt] .. [Ne]). *)
val rel : Ast.binop -> t -> t -> t

(** Logical operators ([And], [Or]). *)
val logic : Ast.binop -> t -> t -> t
