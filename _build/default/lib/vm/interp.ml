(* The MF77 virtual machine: a cycle-accounting interpreter over the
   statement-level CFGs produced by lowering.

   This is the stand-in for the paper's IBM 3090 testbed.  It provides:
   - execution of a whole Program.t with Fortran calling conventions
     (scalars and array elements by reference);
   - cycle accounting driven by a Cost_model (the paper's COST(u) values
     are charged per node execution, so the estimator's prediction is
     exactly comparable to the measured cycle count);
   - "oracle" counts: every node execution and edge traversal is counted
     for free — these are ground truth for the profiling tests;
   - profiling instrumentation: probe actions fire on node/edge events and
     charge [c_counter] cycles each, which is what Table 1 measures;
   - a simulated PC-sampling profiler (a sample every N cycles), used to
     reproduce §3's argument that sampling is too coarse for
     statement-level frequencies. *)

module Ast = S89_frontend.Ast
module Ir = S89_frontend.Ir
module Intrinsics = S89_frontend.Intrinsics
module Sema = S89_frontend.Sema
module Program = S89_frontend.Program
module Prng = S89_util.Prng
open S89_cfg

exception Out_of_fuel
exception Call_depth_exceeded of int
exception Stopped (* internal: STOP statement unwinding *)

type array_obj = { data : Value.t array; dims : int array; elt : Ast.typ }

type binding =
  | Cell of { mutable v : Value.t; ty : Ast.typ }
  | Arr of array_obj
  | Elem of array_obj * int

type frame = { fproc : Program.proc; vars : (string, binding) Hashtbl.t }

(* ---- compiled procedures: per-node cost, successor table, probes ---- *)

type cnode = {
  ir : Ir.node;
  cost : int;
  succ : (Label.t * int) array;
  edge_counts : int array; (* oracle: traversals, parallel to succ *)
  mutable execs : int; (* oracle: node executions *)
  node_probes : Probe.action list;
  edge_probes : (Label.t * Probe.action list) list;
  mutable samples : int; (* PC-sampling hits *)
}

type cproc = {
  cp_proc : Program.proc;
  code : cnode array;
  centry : int;
  mutable invocations : int;
}

type config = {
  cost_model : Cost_model.t;
  instr : Probe.t;
  seed : int;
  max_steps : int;
  max_call_depth : int; (* guards runaway recursion from blowing the stack *)
  sample_interval : int option;
}

let default_config =
  {
    cost_model = Cost_model.optimized;
    instr = Probe.empty;
    seed = 42;
    max_steps = 200_000_000;
    max_call_depth = 10_000;
    sample_interval = None;
  }

type t = {
  config : config;
  prog : Program.t;
  cprocs : (string, cproc) Hashtbl.t;
  counters : int array;
  mutable cycles : int;
  mutable steps : int;
  mutable next_sample : int;
  rng : Prng.t;
  out : Buffer.t;
  mutable call_depth : int;
}

let compile_proc config (p : Program.proc) : cproc =
  let cfg = p.Program.cfg in
  let n = Cfg.num_nodes cfg in
  let pi = Probe.find_proc config.instr p.Program.name in
  let code =
    Array.init n (fun i ->
        let info = Cfg.info cfg i in
        let succ =
          Array.of_list
            (List.map
               (fun (e : Label.t S89_graph.Digraph.edge) -> (e.label, e.dst))
               (Cfg.succ_edges cfg i))
        in
        {
          ir = info.Ir.ir;
          cost = Cost_model.node_cost config.cost_model info.Ir.ir;
          succ;
          edge_counts = Array.make (Array.length succ) 0;
          execs = 0;
          node_probes = (match pi with Some pi -> pi.Probe.on_node.(i) | None -> []);
          edge_probes = (match pi with Some pi -> pi.Probe.on_edge.(i) | None -> []);
          samples = 0;
        })
  in
  { cp_proc = p; code; centry = Cfg.entry cfg; invocations = 0 }

let create ?(config = default_config) (prog : Program.t) : t =
  let cprocs = Hashtbl.create 8 in
  List.iter
    (fun p -> Hashtbl.replace cprocs p.Program.name (compile_proc config p))
    (Program.procs prog);
  {
    config;
    prog;
    cprocs;
    counters = Array.make (max config.instr.Probe.n_counters 1) 0;
    cycles = 0;
    steps = 0;
    next_sample = (match config.sample_interval with Some s -> s | None -> max_int);
    rng = Prng.create ~seed:config.seed;
    out = Buffer.create 256;
    call_depth = 0;
  }

(* ---- frames and bindings ---- *)

let alloc_array (elt : Ast.typ) (dims : int list) =
  let size = List.fold_left ( * ) 1 dims in
  { data = Array.make size (Value.zero_of elt); dims = Array.of_list dims; elt }

let binding_of_kind name (k : Sema.var_kind) =
  match k with
  | Sema.Scalar ty -> Cell { v = Value.zero_of ty; ty }
  | Sema.Const c ->
      let v =
        match c with
        | Ast.Int i -> Value.Int i
        | Ast.Real r -> Value.Real r
        | Ast.Bool b -> Value.Bool b
        | _ -> Value.err "PARAMETER %s is not a literal" name
      in
      Cell { v; ty = (match v with Value.Int _ -> Ast.Tint | Value.Real _ -> Ast.Treal | _ -> Ast.Tlogical) }
  | Sema.Array (elt, dims) ->
      if List.mem (-1) dims then
        Value.err "assumed-size array %s must be a dummy argument" name
      else Arr (alloc_array elt dims)

let lookup frame name =
  match Hashtbl.find_opt frame.vars name with
  | Some b -> b
  | None ->
      let env = frame.fproc.Program.env in
      let kind =
        match Hashtbl.find_opt env.Sema.vars name with
        | Some k -> k
        | None -> Sema.Scalar (Ast.implicit_type name)
      in
      let b = binding_of_kind name kind in
      Hashtbl.replace frame.vars name b;
      b

let read_scalar frame name =
  match lookup frame name with
  | Cell c -> c.v
  | Elem (a, off) -> a.data.(off)
  | Arr _ -> Value.err "array %s used as a scalar" name

let write_scalar frame name v =
  match lookup frame name with
  | Cell c -> c.v <- Value.coerce c.ty v
  | Elem (a, off) -> a.data.(off) <- Value.coerce a.elt v
  | Arr _ -> Value.err "assignment to whole array %s" name

let offset name (a : array_obj) (idx : int list) =
  (* column-major, 1-based; assumed-size arrays check the flat bound only *)
  if Array.length a.dims = 1 && a.dims.(0) = -1 then begin
    match idx with
    | [ i ] ->
        if i < 1 || i > Array.length a.data then
          Value.err "%s(%d): out of bounds (size %d)" name i (Array.length a.data)
        else i - 1
    | _ -> Value.err "%s: assumed-size arrays are 1-dimensional" name
  end
  else begin
    if List.length idx <> Array.length a.dims then
      Value.err "%s: rank mismatch" name;
    let off = ref 0 and stride = ref 1 in
    List.iteri
      (fun k i ->
        let d = a.dims.(k) in
        if i < 1 || i > d then
          Value.err "%s: subscript %d of dimension %d out of bounds [1,%d]" name i
            (k + 1) d;
        off := !off + ((i - 1) * !stride);
        stride := !stride * d)
      idx;
    !off
  end

let get_array frame name =
  match lookup frame name with
  | Arr a -> a
  | _ -> Value.err "%s is not an array" name

(* ---- execution ---- *)

let charge st c =
  st.cycles <- st.cycles + c

let rec eval st frame (e : Ast.expr) : Value.t =
  match e with
  | Ast.Int i -> Value.Int i
  | Real r -> Value.Real r
  | Bool b -> Value.Bool b
  | Var v -> read_scalar frame v
  | Index (name, idx) ->
      let a = get_array frame name in
      let idx = List.map (fun i -> Value.to_int (eval st frame i)) idx in
      a.data.(offset name a idx)
  | Call (f, args) -> (
      match Hashtbl.find_opt st.prog.Program.by_name f with
      | Some callee -> (
          let bindings = List.map (arg_binding st frame) args in
          match call_proc st callee bindings with
          | Some v -> v
          | None -> Value.err "subroutine %s used as a function" f)
      | None ->
          let vs = List.map (eval st frame) args in
          Builtins.apply st.rng f vs)
  | Unop (Ast.Neg, e) -> Value.neg (eval st frame e)
  | Unop (Ast.Not, e) -> Value.Bool (not (Value.to_bool (eval st frame e)))
  | Binop (op, a, b) -> (
      let va = eval st frame a in
      let vb = eval st frame b in
      match op with
      | Ast.Add -> Value.add va vb
      | Sub -> Value.sub va vb
      | Mul -> Value.mul va vb
      | Div -> Value.div va vb
      | Pow -> Value.pow va vb
      | Lt | Le | Gt | Ge | Eq | Ne -> Value.rel op va vb
      | And | Or -> Value.logic op va vb)

(* argument passing: variables and array elements by reference, arrays by
   reference, general expressions by copy-in *)
and arg_binding st frame (e : Ast.expr) : binding =
  match e with
  | Ast.Var v -> lookup frame v
  | Ast.Index (name, idx) ->
      let a = get_array frame name in
      let idx = List.map (fun i -> Value.to_int (eval st frame i)) idx in
      Elem (a, offset name a idx)
  | _ ->
      let v = eval st frame e in
      Cell
        {
          v;
          ty = (match v with Value.Int _ -> Ast.Tint | Value.Real _ -> Ast.Treal | _ -> Ast.Tlogical);
        }

and call_proc st (callee : Program.proc) (args : binding list) : Value.t option =
  let cp =
    match Hashtbl.find_opt st.cprocs callee.Program.name with
    | Some cp -> cp
    | None -> Value.err "uncompiled procedure %s" callee.Program.name
  in
  cp.invocations <- cp.invocations + 1;
  st.call_depth <- st.call_depth + 1;
  if st.call_depth > st.config.max_call_depth then
    raise (Call_depth_exceeded st.call_depth);
  let frame = { fproc = callee; vars = Hashtbl.create 16 } in
  (try
     List.iter2
       (fun p b ->
         (* coerce copy-in scalars to the declared parameter type *)
         let b =
           match (b, Hashtbl.find_opt callee.Program.env.Sema.vars p) with
           | Cell c, Some (Sema.Scalar ty) when c.ty <> ty ->
               Cell { v = Value.coerce ty c.v; ty }
           | _ -> b
         in
         Hashtbl.replace frame.vars p b)
       callee.Program.params args
   with Invalid_argument _ ->
     Value.err "arity mismatch calling %s" callee.Program.name);
  (try run_frame st cp frame
   with e ->
     st.call_depth <- st.call_depth - 1;
     raise e);
  st.call_depth <- st.call_depth - 1;
  match callee.Program.env.Sema.result_var with
  | Some rv -> Some (read_scalar frame rv)
  | None -> None

and run_frame st (cp : cproc) frame : unit =
  let pc = ref cp.centry in
  let running = ref true in
  while !running do
    let n = cp.code.(!pc) in
    st.steps <- st.steps + 1;
    if st.steps > st.config.max_steps then raise Out_of_fuel;
    charge st n.cost;
    n.execs <- n.execs + 1;
    (* PC sampling: attribute a sample to the node that was executing when
       the cycle counter crossed the sampling boundary *)
    while st.cycles >= st.next_sample do
      n.samples <- n.samples + 1;
      st.next_sample <-
        st.next_sample
        + (match st.config.sample_interval with Some s -> s | None -> max_int)
    done;
    fire_actions st frame n.node_probes;
    let out_label =
      match n.ir with
      | Ir.Entry | Ir.Nop _ -> Some Label.U
      | Ir.Assign (Ast.Lvar v, e) ->
          write_scalar frame v (eval st frame e);
          Some Label.U
      | Ir.Assign (Ast.Larr (name, idx), e) ->
          let a = get_array frame name in
          let idx = List.map (fun i -> Value.to_int (eval st frame i)) idx in
          let off = offset name a idx in
          a.data.(off) <- Value.coerce a.elt (eval st frame e);
          Some Label.U
      | Ir.Branch e ->
          if Value.to_bool (eval st frame e) then Some Label.T else Some Label.F
      | Ir.Do_test d ->
          if Value.to_int (read_scalar frame d.Ir.trip_var) > 0 then Some Label.T
          else Some Label.F
      | Ir.Select (e, narms) ->
          let i = Value.to_int (eval st frame e) in
          if i >= 1 && i <= narms then Some (Label.Case i) else Some Label.F
      | Ir.Call (name, args) -> (
          match Hashtbl.find_opt st.prog.Program.by_name name with
          | Some callee ->
              let bindings = List.map (arg_binding st frame) args in
              ignore (call_proc st callee bindings);
              Some Label.U
          | None -> Value.err "CALL of unknown subroutine %s" name)
      | Ir.Print es ->
          List.iter
            (fun e ->
              Buffer.add_string st.out (Fmt.str "%a " Value.pp (eval st frame e)))
            es;
          Buffer.add_char st.out '\n';
          Some Label.U
      | Ir.Return -> None
      | Ir.Stop -> raise Stopped
    in
    match out_label with
    | None -> running := false
    | Some l -> (
        let found = ref (-1) in
        Array.iteri (fun k (lbl, _) -> if !found < 0 && Label.equal lbl l then found := k) n.succ;
        if !found < 0 then
          Value.err "no %s successor at node %d of %s" (Label.to_string l) !pc
            cp.cp_proc.Program.name;
        n.edge_counts.(!found) <- n.edge_counts.(!found) + 1;
        (match List.find_opt (fun (lbl, _) -> Label.equal lbl l) n.edge_probes with
        | Some (_, acts) -> fire_actions st frame acts
        | None -> ());
        let _, dst = n.succ.(!found) in
        pc := dst)
  done

and fire_actions st frame (acts : Probe.action list) =
  List.iter
    (fun (a : Probe.action) ->
      match a with
      | Probe.Incr c ->
          charge st st.config.cost_model.Cost_model.c_counter;
          st.counters.(c) <- st.counters.(c) + 1
      | Probe.Bulk_add (c, e) ->
          charge st
            (st.config.cost_model.Cost_model.c_counter
            + Cost_model.expr_cost st.config.cost_model e);
          st.counters.(c) <- st.counters.(c) + Value.to_int (eval st frame e))
    acts

(* ---- entry points and results ---- *)

type outcome = Normal_stop | Fell_off_end

let run (st : t) : outcome =
  let main = Program.main_proc st.prog in
  match call_proc st main [] with
  | exception Stopped -> Normal_stop
  | _ -> Fell_off_end

let cycles st = st.cycles
let steps st = st.steps
let output st = Buffer.contents st.out
let counters st = Array.copy st.counters

let cproc st name =
  match Hashtbl.find_opt st.cprocs name with
  | Some cp -> cp
  | None -> invalid_arg (Printf.sprintf "Interp.cproc: unknown procedure %s" name)

let invocations st name = (cproc st name).invocations

(* oracle: executions of a node *)
let node_execs st name node = (cproc st name).code.(node).execs

(* oracle: traversals of the CFG edge (node, label) *)
let edge_count st name node label =
  let cn = (cproc st name).code.(node) in
  let total = ref 0 in
  Array.iteri
    (fun k (l, _) -> if Label.equal l label then total := !total + cn.edge_counts.(k))
    cn.succ;
  !total

(* PC-sampling hits of a node *)
let node_samples st name node = (cproc st name).code.(node).samples
