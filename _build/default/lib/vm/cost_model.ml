(* Architectural cost model.

   §4: "the (average) local execution time of each node u ... has already
   been estimated, and is stored as COST(u).  A simple approach is to
   simply count the number of instructions required to implement a
   primitive operation."  That is what we do, in abstract cycles.

   Two presets stand in for the paper's "compiler optimization ON/OFF" on
   the IBM 3090 + VS Fortran: with optimization on, scalars live in
   registers and subscript arithmetic is strength-reduced (cheap); with
   optimization off, every scalar access is a memory reference and every
   subscript a multiply-add chain.  The instrumented-run overhead of one
   counter update ([c_counter]) is the same in both, as in the real
   system: the profiling code is ordinary compiled code. *)

module Ast = S89_frontend.Ast
module Intrinsics = S89_frontend.Intrinsics
module Ir = S89_frontend.Ir

type t = {
  name : string;
  c_const : int; (* literal operand *)
  c_var : int; (* scalar access *)
  c_assign : int; (* scalar store *)
  c_index : int; (* per-dimension subscript arithmetic *)
  c_elem : int; (* array element load/store *)
  c_add : int;
  c_mul : int;
  c_div : int;
  c_pow : int;
  c_rel : int;
  c_logic : int;
  c_neg : int;
  c_branch : int; (* conditional branch *)
  c_goto : int; (* unconditional jump *)
  c_call : int; (* call/return linkage per invocation *)
  c_intrinsic_cheap : int;
  c_intrinsic_moderate : int;
  c_intrinsic_expensive : int;
  c_print : int;
  c_counter : int; (* one profiling counter update: load+add+store *)
}

(* "Compiler optimization ON": registers + strength reduction. *)
let optimized =
  {
    name = "opt-on";
    c_const = 0;
    c_var = 1;
    c_assign = 1;
    c_index = 1;
    c_elem = 2;
    c_add = 1;
    c_mul = 3;
    c_div = 8;
    c_pow = 12;
    c_rel = 1;
    c_logic = 1;
    c_neg = 1;
    c_branch = 2;
    c_goto = 1;
    c_call = 20;
    c_intrinsic_cheap = 3;
    c_intrinsic_moderate = 8;
    c_intrinsic_expensive = 40;
    c_print = 50;
    c_counter = 3;
  }

(* "Compiler optimization OFF": every scalar access is a memory reference,
   subscripts are recomputed with multiplies. *)
let unoptimized =
  {
    name = "opt-off";
    c_const = 1;
    c_var = 4;
    c_assign = 5;
    c_index = 6;
    c_elem = 5;
    c_add = 2;
    c_mul = 6;
    c_div = 12;
    c_pow = 18;
    c_rel = 2;
    c_logic = 2;
    c_neg = 2;
    c_branch = 4;
    c_goto = 2;
    c_call = 35;
    c_intrinsic_cheap = 6;
    c_intrinsic_moderate = 14;
    c_intrinsic_expensive = 60;
    c_print = 60;
    c_counter = 3;
  }

let intrinsic_cost t name =
  match Intrinsics.lookup name with
  | Some { cost = Intrinsics.Cheap; _ } -> t.c_intrinsic_cheap
  | Some { cost = Intrinsics.Moderate; _ } -> t.c_intrinsic_moderate
  | Some { cost = Intrinsics.Expensive; _ } -> t.c_intrinsic_expensive
  | None -> 0 (* user function: linkage charged separately, body dynamic *)

(* Static cost of evaluating an expression, excluding user-function bodies
   (charged dynamically by the VM and interprocedurally by the estimator).
   MF77 has no short-circuit evaluation, so this is exact. *)
let rec expr_cost ?(user_call = fun _ -> 0) t (e : Ast.expr) =
  let rec_ e = expr_cost ~user_call t e in
  match e with
  | Ast.Int _ | Real _ | Bool _ -> t.c_const
  | Var _ -> t.c_var
  | Index (_, idx) ->
      List.fold_left (fun acc i -> acc + rec_ i) 0 idx
      + (t.c_index * List.length idx)
      + t.c_elem
  | Call (f, args) ->
      let argc = List.fold_left (fun acc a -> acc + rec_ a) 0 args in
      if Intrinsics.is_intrinsic f then argc + intrinsic_cost t f
      else argc + t.c_call + user_call f
  | Unop (Ast.Neg, e) -> t.c_neg + rec_ e
  | Unop (Ast.Not, e) -> t.c_logic + rec_ e
  | Binop (op, a, b) ->
      let c =
        match op with
        | Ast.Add | Sub -> t.c_add
        | Mul -> t.c_mul
        | Div -> t.c_div
        | Pow -> t.c_pow
        | Lt | Le | Gt | Ge | Eq | Ne -> t.c_rel
        | And | Or -> t.c_logic
      in
      c + rec_ a + rec_ b

let lvalue_cost t = function
  | Ast.Lvar _ -> t.c_assign
  | Ast.Larr (_, idx) ->
      List.fold_left (fun acc i -> acc + expr_cost t i) 0 idx
      + (t.c_index * List.length idx)
      + t.c_elem

(* Local cost of one execution of a CFG node — the paper's COST(u), except
   that user-function bodies referenced from expressions are not included
   (rule 2 of §4 adds them). *)
let node_cost ?user_call t (ir : Ir.node) =
  match ir with
  | Ir.Entry -> 0
  | Nop _ -> t.c_goto
  | Assign (lv, e) -> lvalue_cost t lv + expr_cost ?user_call t e
  | Branch e -> t.c_branch + expr_cost ?user_call t e
  | Do_test _ -> t.c_branch + t.c_var + t.c_rel (* trip > 0 *)
  | Select (e, _) -> t.c_branch + t.c_goto + expr_cost ?user_call t e
  | Call (_, args) ->
      t.c_call + List.fold_left (fun acc a -> acc + expr_cost ?user_call t a) 0 args
  | Return -> t.c_goto
  | Stop -> 0
  | Print es -> t.c_print + List.fold_left (fun acc e -> acc + expr_cost ?user_call t e) 0 es
