(* Profiling instrumentation: counters attached to CFG nodes and edges.

   The VM fires these while executing and charges [c_counter] cycles per
   action (plus the cost of evaluating a bulk expression), which is how the
   Table 1 profiling overheads are measured.

   Action kinds mirror the paper's §3:
   - [Incr c]            — the ordinary "increment a counter" update;
   - [Bulk_add (c, e)]   — the DO-loop optimization: add a computed trip
                           count to the counter once at loop entry. *)

module Ast = S89_frontend.Ast

type action = Incr of int | Bulk_add of int * Ast.expr

type proc_instr = {
  on_node : action list array; (* indexed by CFG node id *)
  on_edge : (S89_cfg.Label.t * action list) list array; (* by source node id *)
}

type t = {
  n_counters : int;
  by_proc : (string, proc_instr) Hashtbl.t;
}

let empty = { n_counters = 0; by_proc = Hashtbl.create 1 }

let make ~n_counters = { n_counters; by_proc = Hashtbl.create 8 }

let proc_instr_create n =
  { on_node = Array.make n []; on_edge = Array.make n [] }

let ensure_proc t name ~num_nodes =
  match Hashtbl.find_opt t.by_proc name with
  | Some pi -> pi
  | None ->
      let pi = proc_instr_create num_nodes in
      Hashtbl.replace t.by_proc name pi;
      pi

let add_node_action t ~proc ~num_nodes ~node action =
  let pi = ensure_proc t proc ~num_nodes in
  pi.on_node.(node) <- pi.on_node.(node) @ [ action ]

let add_edge_action t ~proc ~num_nodes ~node ~label action =
  let pi = ensure_proc t proc ~num_nodes in
  let rec insert = function
    | [] -> [ (label, [ action ]) ]
    | (l, acts) :: rest when S89_cfg.Label.equal l label -> (l, acts @ [ action ]) :: rest
    | x :: rest -> x :: insert rest
  in
  pi.on_edge.(node) <- insert pi.on_edge.(node)

let find_proc t name = Hashtbl.find_opt t.by_proc name

(* static counter-update count helpers for reporting *)
let num_actions t =
  Hashtbl.fold
    (fun _ pi acc ->
      let n = Array.fold_left (fun a l -> a + List.length l) 0 pi.on_node in
      let e =
        Array.fold_left
          (fun a ls -> a + List.fold_left (fun a (_, l) -> a + List.length l) 0 ls)
          0 pi.on_edge
      in
      acc + n + e)
    t.by_proc 0
