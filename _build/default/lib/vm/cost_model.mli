(** Architectural cost model: COST(u) by instruction counting (§4), in
    abstract cycles.  The {!optimized}/{!unoptimized} presets model the
    paper's "compiler optimization ON/OFF" axis (registers and
    strength-reduced subscripts vs. memory traffic everywhere). *)

module Ast = S89_frontend.Ast
module Ir = S89_frontend.Ir

type t = {
  name : string;
  c_const : int;  (** literal operand *)
  c_var : int;  (** scalar access *)
  c_assign : int;  (** scalar store *)
  c_index : int;  (** per-dimension subscript arithmetic *)
  c_elem : int;  (** array element load/store *)
  c_add : int;
  c_mul : int;
  c_div : int;
  c_pow : int;
  c_rel : int;
  c_logic : int;
  c_neg : int;
  c_branch : int;  (** conditional branch *)
  c_goto : int;  (** unconditional jump *)
  c_call : int;  (** call/return linkage per invocation *)
  c_intrinsic_cheap : int;
  c_intrinsic_moderate : int;
  c_intrinsic_expensive : int;
  c_print : int;
  c_counter : int;  (** one profiling counter update: load+add+store *)
}

(** "Compiler optimization ON". *)
val optimized : t

(** "Compiler optimization OFF". *)
val unoptimized : t

(** Cycles of an intrinsic by its cost class; 0 for user functions. *)
val intrinsic_cost : t -> string -> int

(** Static cost of evaluating an expression (exact: MF77 has no
    short-circuit evaluation).  [user_call] prices user-function bodies
    (default 0 — the VM charges them dynamically; the estimator passes
    TIME of the callee via rule 2). *)
val expr_cost : ?user_call:(string -> int) -> t -> Ast.expr -> int

(** Cost of the store side of an assignment target. *)
val lvalue_cost : t -> Ast.lvalue -> int

(** Local cost of one execution of a CFG node — the paper's COST(u),
    minus callee bodies. *)
val node_cost : ?user_call:(string -> int) -> t -> Ir.node -> int
