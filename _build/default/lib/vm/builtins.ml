(* Implementations of the MF77 intrinsics (names/arities are declared in
   s89_frontend.Intrinsics; the VM dispatches here). *)

module Prng = S89_util.Prng
open Value

let err name = Value.err "intrinsic %s: bad arguments" name

let fold1 name f = function [ v ] -> f v | _ -> err name

let minmax name pick vs =
  match vs with
  | [] | [ _ ] -> err name
  | v :: rest ->
      List.fold_left
        (fun acc v -> if pick (compare_num v acc) then v else acc)
        v rest

let promote_real = function Int i -> Real (float_of_int i) | v -> v

let apply (rng : Prng.t) name (vs : t list) : t =
  match (name, vs) with
  | "ABS", [ Int i ] -> Int (abs i)
  | "ABS", [ Real r ] -> Real (Float.abs r)
  | "IABS", [ v ] -> Int (abs (to_int v))
  | "SQRT", [ v ] ->
      let x = to_float v in
      if x < 0.0 then Value.err "SQRT of negative value %g" x else Real (sqrt x)
  | "EXP", [ v ] -> Real (exp (to_float v))
  | ("LOG" | "ALOG"), [ v ] ->
      let x = to_float v in
      if x <= 0.0 then Value.err "LOG of non-positive value %g" x else Real (log x)
  | "SIN", [ v ] -> Real (sin (to_float v))
  | "COS", [ v ] -> Real (cos (to_float v))
  | "TAN", [ v ] -> Real (tan (to_float v))
  | "ATAN", [ v ] -> Real (atan (to_float v))
  | "MOD", [ Int a; Int b ] ->
      if b = 0 then Value.err "MOD by zero" else Int (a mod b)
  | "MOD", ([ _; _ ] as vs) -> (
      match List.map to_float vs with
      | [ a; b ] when b <> 0.0 -> Real (Float.rem a b)
      | _ -> Value.err "MOD by zero")
  | "AMOD", [ a; b ] ->
      let b = to_float b in
      if b = 0.0 then Value.err "AMOD by zero" else Real (Float.rem (to_float a) b)
  | "MIN", vs -> minmax "MIN" (fun c -> c < 0) vs
  | "MAX", vs -> minmax "MAX" (fun c -> c > 0) vs
  | "MIN0", vs -> Int (to_int (minmax "MIN0" (fun c -> c < 0) vs))
  | "MAX0", vs -> Int (to_int (minmax "MAX0" (fun c -> c > 0) vs))
  | "AMIN1", vs -> promote_real (minmax "AMIN1" (fun c -> c < 0) vs)
  | "AMAX1", vs -> promote_real (minmax "AMAX1" (fun c -> c > 0) vs)
  | ("INT" | "IFIX"), vs -> fold1 name (fun v -> Int (to_int v)) vs
  | ("REAL" | "FLOAT"), vs -> fold1 name (fun v -> Real (to_float v)) vs
  | "SIGN", [ a; b ] -> (
      (* |a| with the sign of b *)
      match (a, b) with
      | Int x, Int y -> Int (if y >= 0 then abs x else -abs x)
      | _ ->
          let x = Float.abs (to_float a) in
          Real (if to_float b >= 0.0 then x else -.x))
  | "ISIGN", [ a; b ] ->
      let x = abs (to_int a) in
      Int (if to_int b >= 0 then x else -x)
  | "RAND", [] -> Real (Prng.float rng)
  | "IRAND", [ v ] ->
      let n = to_int v in
      if n <= 0 then Value.err "IRAND bound must be positive" else Int (1 + Prng.int rng n)
  | _ -> err name
