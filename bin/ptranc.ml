(* ptranc — the command-line driver for the reproduction, loosely named
   after PTRAN, the system the paper's framework was implemented in.

   Subcommands:
     parse       parse + analyze an MF77 file, pretty-print it back
     cfg         dump a procedure's statement-level CFG (text or DOT)
     ecfg        dump the extended CFG (Figure 2 style)
     fcdg        dump the forward control dependence graph
     plan        show the smart counter placement vs the naive baseline
     run         execute a program on the VM (optionally instrumented)
     profile     run N times with smart counters, write a profile database
     estimate    estimate TIME/VAR from a database or from fresh runs
     analyze     like estimate, memoizing per-procedure results in a store
     chunks      variance-driven chunk sizes for each loop
     pgo         close the PGO loop: profile, reoptimize, re-run, compare
     batch       checkpointed profiling batch over a crash-safe store
     serve       spool-directory daemon, or (--tcp) multi-tenant TCP service
     client      submit/query jobs against a --tcp server
     demo        print one of the built-in demo programs *)

open Cmdliner
module Program = S89_frontend.Program
module Interp = S89_vm.Interp
module CM = S89_vm.Cost_model
module Analysis = S89_profiling.Analysis
module Placement = S89_profiling.Placement
module Naive = S89_profiling.Naive
module Database = S89_profiling.Database
module Feedback = S89_profiling.Feedback
module Pipeline = S89_core.Pipeline
module Interproc = S89_core.Interproc
module Report = S89_core.Report
module Service = S89_core.Service
module Memo = S89_core.Memo
module Store = S89_store.Store
module Server = S89_net.Server
module Proto = S89_net.Proto

module Diag = S89_diag.Diag

(* Every failure leaves through here: one diagnostic line on stderr and
   an exit code determined by the diagnostic's code family (documented in
   docs/ERRORS.md): 2 usage/IO/database, 3 parse/sema, 4 analysis,
   5 runtime/fault. *)
let fail_diag ?path (d : Diag.t) : 'a =
  (match path with
  | Some p -> Fmt.epr "ptranc: %s: %a@." p Diag.pp d
  | None -> Fmt.epr "ptranc: %a@." Diag.pp d);
  exit (Diag.exit_code d)

(* Exceptions that may legitimately escape a subcommand, mapped to
   diagnostics; anything unlisted is a bug and keeps its backtrace. *)
let diag_of_exn : exn -> Diag.t option = function
  | Sys_error msg -> Some (Diag.error ~code:"IO001" msg)
  | Database.Load_error { line; msg } ->
      Some (Diag.error ?line:(if line > 0 then Some line else None) ~code:"DB001" msg)
  | Feedback.Load_error { line; msg } ->
      Some (Diag.error ?line:(if line > 0 then Some line else None) ~code:"DB001" msg)
  | Analysis.Unanalyzable { proc; reason } ->
      Some (Diag.error ~proc ~code:"ANA001" reason)
  | S89_cfg.Ecfg.Nonterminating_interval h ->
      Some (Diag.errorf ~code:"ANA002" "interval analysis did not terminate at header %d" h)
  | Interproc.Recursion_unsupported procs ->
      Some
        (Diag.errorf ~code:"EST001" ~hint:"the paper defers recursion"
           "recursive call graph: %s" (String.concat ", " procs))
  | Interproc.No_convergence procs ->
      Some
        (Diag.errorf ~code:"EST002" "fixpoint did not converge over: %s"
           (String.concat ", " procs))
  | S89_vm.Value.Runtime_error msg -> Some (Diag.error ~code:"RUN001" msg)
  | Interp.Out_of_fuel -> Some (Diag.error ~code:"RUN002" "out of fuel (max_steps exceeded)")
  | Interp.Out_of_cycles -> Some (Diag.error ~code:"RUN003" "cycle budget exhausted")
  | Interp.Call_depth_exceeded d ->
      Some (Diag.errorf ~code:"RUN004" "call depth exceeded %d" d)
  | S89_util.Fault.Injected msg ->
      Some (Diag.error ~code:"FLT001" ~hint:"injected by S89_FAULTS" msg)
  | Store.Corrupt msg ->
      Some
        (Diag.error ~code:"DB001" ~hint:"the store holds a foreign or damaged record"
           msg)
  | S89_exec.Supervise.Circuit_open key ->
      Some
        (Diag.errorf ~code:"SRV002" ~hint:"closes on the next success"
           "circuit breaker open for %s" key)
  | S89_util.Fault.Bad_spec msg ->
      Some (Diag.error ~code:"CLI001" ~hint:"fix the S89_FAULTS variable" msg)
  | Failure msg -> Some (Diag.error ~code:"CLI001" msg)
  | _ -> None

(* run a subcommand body under the exception-to-diagnostic net *)
let guard f =
  try f () with e -> (match diag_of_exn e with Some d -> fail_diag d | None -> raise e)

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error msg -> fail_diag (Diag.error ~code:"IO001" msg)

let load_program path =
  match Program.of_source_result (read_file path) with
  | Ok prog -> prog
  | Error d -> fail_diag ~path d

(* ---------------- common args ---------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MF77 source file")

let proc_arg =
  Arg.(
    value & opt (some string) None
    & info [ "p"; "proc" ] ~docv:"NAME"
        ~doc:"Procedure to operate on (default: the main program)")

let dot_arg = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of text")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed for the VM")

let runs_arg =
  Arg.(value & opt int 10 & info [ "runs" ] ~docv:"N" ~doc:"Number of profiled runs")

let opt_arg =
  Arg.(value & flag & info [ "O"; "optimize" ] ~doc:"Apply the scalar optimizer first")

(* Backend selection: --backend beats S89_BACKEND beats the library
   default.  Parsed by hand (not Arg.enum) so an unknown name leaves
   through the usual diagnostic path with a stable code (CLI002). *)
let backend_of_string s =
  match String.lowercase_ascii s with
  | "tree" -> Some Interp.Tree
  | "compiled" -> Some Interp.Compiled
  | "bytecode" -> Some Interp.Bytecode
  | _ -> None

let backend_name = function
  | Interp.Tree -> "tree"
  | Interp.Compiled -> "compiled"
  | Interp.Bytecode -> "bytecode"

let backend_arg =
  Arg.(
    value & opt (some string) None
    & info [ "backend" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine: tree, compiled or bytecode (default: compiled, \
           or the $(b,S89_BACKEND) environment variable when set)")

let resolve_backend arg =
  let parse ~source s =
    match backend_of_string s with
    | Some b -> b
    | None ->
        fail_diag
          (Diag.errorf ~code:"CLI002" ~hint:"valid backends: tree, compiled, bytecode"
             "unknown backend %S (from %s)" s source)
  in
  match arg with
  | Some s -> parse ~source:"--backend" s
  | None -> (
      match Sys.getenv_opt "S89_BACKEND" with
      | Some s -> parse ~source:"S89_BACKEND" s
      | None -> Interp.default_config.Interp.backend)

let cost_model_of_opt opt = if opt then CM.optimized else CM.unoptimized

let pick_proc prog = function
  | Some name -> Program.find prog name
  | None -> Program.main_proc prog

let maybe_optimize opt prog = if opt then S89_vm.Optimize.program prog else prog

(* ---------------- subcommands ---------------- *)

let parse_cmd =
  let run file =
    guard @@ fun () ->
    let prog = load_program file in
    Fmt.pr "%a@." S89_frontend.Ast.pp_program
      (List.map (fun (p : Program.proc) -> p.Program.env.S89_frontend.Sema.unit_)
         (Program.procs prog));
    Fmt.pr "@.main: %s;  call graph bottom-up: %a@." prog.Program.main
      Fmt.(list ~sep:comma string)
      (List.map (fun (p : Program.proc) -> p.Program.name) (Program.bottom_up prog))
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse and analyze a program, pretty-print it back")
    Term.(const run $ file_arg)

let cfg_cmd =
  let run file proc dot optimize =
    guard @@ fun () ->
    let prog = maybe_optimize optimize (load_program file) in
    let p = pick_proc prog proc in
    if dot then print_string (Report.cfg_dot p)
    else
      Fmt.pr "%a@."
        (S89_cfg.Cfg.pp ~pp_info:(fun fmt i ->
             Fmt.pf fmt " {%a}" S89_frontend.Ir.pp_info i))
        p.Program.cfg
  in
  Cmd.v (Cmd.info "cfg" ~doc:"Dump a procedure's control flow graph")
    Term.(const run $ file_arg $ proc_arg $ dot_arg $ opt_arg)

let ecfg_cmd =
  let run file proc dot =
    guard @@ fun () ->
    let prog = load_program file in
    let p = pick_proc prog proc in
    let a = Analysis.of_proc p in
    if dot then print_string (Report.ecfg_dot a)
    else
      Fmt.pr "%a@."
        (S89_cfg.Ecfg.pp ~pp_info:(fun fmt i ->
             Fmt.pf fmt " {%a}" S89_frontend.Ir.pp_info i))
        a.Analysis.ecfg
  in
  Cmd.v (Cmd.info "ecfg" ~doc:"Dump the extended CFG (preheaders/postexits/START/STOP)")
    Term.(const run $ file_arg $ proc_arg $ dot_arg)

let fcdg_cmd =
  let run file proc =
    guard @@ fun () ->
    let prog = load_program file in
    let p = pick_proc prog proc in
    let a = Analysis.of_proc p in
    Fmt.pr "%a@." S89_cdg.Fcdg.pp a.Analysis.fcdg;
    Fmt.pr "@.control conditions: %a@."
      Fmt.(
        list ~sep:comma (fun fmt (u, l) ->
            pf fmt "(%d,%s)" u (S89_cfg.Label.to_string l)))
      a.Analysis.conditions
  in
  Cmd.v (Cmd.info "fcdg" ~doc:"Dump the forward control dependence graph")
    Term.(const run $ file_arg $ proc_arg)

let plan_cmd =
  let run file =
    guard @@ fun () ->
    let prog = load_program file in
    let analyses = Analysis.of_program prog in
    let smart = Placement.plan analyses in
    let naive = Naive.plan prog in
    Fmt.pr "%a@." Placement.pp smart;
    Fmt.pr "@.naive baseline: %d counters (one per basic block, DO-loop@."
      (Naive.n_counters naive);
    Fmt.pr "bulk-add only for straight-line bodies)@."
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Show the optimized counter placement and the naive baseline")
    Term.(const run $ file_arg)

let run_cmd =
  let instr_arg =
    Arg.(
      value
      & opt (enum [ ("none", `None); ("smart", `Smart); ("naive", `Naive) ]) `None
      & info [ "instrument" ] ~docv:"KIND" ~doc:"Instrumentation: none, smart or naive")
  in
  let run file seed optimize instr backend =
    guard @@ fun () ->
    let backend = resolve_backend backend in
    let prog = maybe_optimize optimize (load_program file) in
    let cm = cost_model_of_opt optimize in
    let instr_probes, describe =
      match instr with
      | `None -> (S89_vm.Probe.empty, "uninstrumented")
      | `Smart ->
          let plan = Placement.plan (Analysis.of_program prog) in
          (Placement.probes plan, Fmt.str "smart (%d counters)" (Placement.n_counters plan))
      | `Naive ->
          let plan = Naive.plan prog in
          (Naive.probes plan, Fmt.str "naive (%d counters)" (Naive.n_counters plan))
    in
    let config =
      { Interp.default_config with cost_model = cm; seed; instr = instr_probes;
        backend }
    in
    let vm = Interp.create ~config prog in
    let outcome = Interp.run vm in
    print_string (Interp.output vm);
    Fmt.pr "[%s, %s, %s, %s] cycles=%d statements=%d@."
      (match outcome with Interp.Normal_stop -> "STOP" | Fell_off_end -> "END")
      cm.CM.name describe (backend_name backend) (Interp.cycles vm)
      (Interp.steps vm)
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a program on the cost-model VM")
    Term.(const run $ file_arg $ seed_arg $ opt_arg $ instr_arg $ backend_arg)

let db_arg =
  Arg.(
    value & opt string "profile.db"
    & info [ "db" ] ~docv:"PATH" ~doc:"Profile database path")

let profile_cmd =
  let run file runs seed db backend =
    guard @@ fun () ->
    let backend = resolve_backend backend in
    let prog = load_program file in
    let t = Pipeline.create prog in
    let profile = Pipeline.profile_smart ~runs ~seed ~backend t in
    Database.save profile.Pipeline.database db;
    Fmt.pr "profiled %d runs with %d counters; database written to %s@." runs
      (Placement.n_counters profile.Pipeline.plan)
      db;
    Fmt.pr "average instrumented cycles/run: %.0f@." profile.Pipeline.avg_cycles
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run N times with smart counters and write the accumulated database")
    Term.(const run $ file_arg $ runs_arg $ seed_arg $ db_arg $ backend_arg)

let estimate_cmd =
  let from_db_arg =
    Arg.(
      value & opt (some string) None
      & info [ "from-db" ] ~docv:"PATH" ~doc:"Use a saved profile database")
  in
  let flat_arg =
    Arg.(value & flag & info [ "flat" ] ~doc:"gprof-style flat profile only")
  in
  let hot_arg =
    Arg.(
      value & opt (some int) None
      & info [ "hot" ] ~docv:"K" ~doc:"Show only the top-K statement hotspots")
  in
  let csv_arg =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"PATH" ~doc:"Also write per-node estimates as CSV")
  in
  let run file runs seed optimize from_db flat hot csv backend =
    guard @@ fun () ->
    let backend = resolve_backend backend in
    let prog = maybe_optimize optimize (load_program file) in
    let cm = cost_model_of_opt optimize in
    let t = Pipeline.create prog in
    let est =
      match from_db with
      | Some path ->
          let db = Database.load path in
          Pipeline.estimate_totals ~cost_model:cm t ~totals:(Database.proc_totals db)
      | None ->
          let profile = Pipeline.profile_smart ~runs ~seed ~backend t in
          Pipeline.estimate_profiled ~cost_model:cm t profile
    in
    (match hot with
    | Some top -> Fmt.pr "%a@." (Report.pp_hotspots ~top) est
    | None ->
        if flat then Fmt.pr "%a@." Report.flat_profile est
        else Fmt.pr "%a@." Report.pp est);
    match csv with
    | Some path ->
        let oc = open_out path in
        output_string oc (Report.csv est);
        close_out oc;
        Fmt.pr "per-node CSV written to %s@." path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Estimate TIME and VAR for every node, Figure-3 style")
    Term.(
      const run $ file_arg $ runs_arg $ seed_arg $ opt_arg $ from_db_arg $ flat_arg
      $ hot_arg $ csv_arg $ backend_arg)

let static_cmd =
  let run file optimize =
    guard @@ fun () ->
    let prog = maybe_optimize optimize (load_program file) in
    let cm = cost_model_of_opt optimize in
    let t = Pipeline.create prog in
    let est =
      Pipeline.estimate_totals ~cost_model:cm t
        ~totals:(S89_core.Static_freq.program_totals t.Pipeline.analyses)
    in
    Fmt.pr "%a@." Report.pp est;
    Fmt.pr
      "@.note: no profile was used - constant-bound DO loops and foldable@.\
       conditions are exact, everything else is the declared heuristic@.\
       (loop frequency %.0f, branches %.0f/%.0f, loop exits %.0f%%).@."
      S89_core.Static_freq.default_heuristics.S89_core.Static_freq.loop_freq
      (100.0 *. S89_core.Static_freq.default_heuristics.S89_core.Static_freq.branch_taken)
      (100.0
      *. (1.0
         -. S89_core.Static_freq.default_heuristics.S89_core.Static_freq.branch_taken))
      (100.0 *. S89_core.Static_freq.default_heuristics.S89_core.Static_freq.exit_taken)
  in
  Cmd.v
    (Cmd.info "static"
       ~doc:"Estimate TIME/VAR from compile-time analysis alone (no profile)")
    Term.(const run $ file_arg $ opt_arg)

let chunks_cmd =
  let p_arg =
    Arg.(value & opt int 16 & info [ "P" ] ~docv:"N" ~doc:"Number of processors")
  in
  let h_arg =
    Arg.(
      value & opt float 50.0
      & info [ "h" ] ~docv:"CYCLES" ~doc:"Per-chunk dispatch overhead")
  in
  let n_arg =
    Arg.(
      value & opt int 10000 & info [ "N" ] ~docv:"ITERS" ~doc:"Loop iterations to schedule")
  in
  let run file runs seed p h n =
    guard @@ fun () ->
    let prog = load_program file in
    let t = Pipeline.create prog in
    let profile = Pipeline.profile_smart ~runs ~seed t in
    let est = Pipeline.estimate_profiled t profile in
    Hashtbl.iter
      (fun name (pe : Interproc.proc_est) ->
        let a = pe.Interproc.analysis in
        List.iter
          (fun hd ->
            let body = S89_cdg.Fcdg.children a.Analysis.fcdg hd S89_cfg.Label.T in
            let time =
              List.fold_left
                (fun acc v -> acc +. S89_core.Time_est.time pe.Interproc.time v)
                0.0 body
            in
            let var =
              List.fold_left
                (fun acc v -> acc +. S89_core.Variance.var pe.Interproc.variance v)
                0.0 body
            in
            if time > 0.0 then
              Fmt.pr
                "%s loop@%d: body TIME=%.1f STD=%.1f -> chunk %d of %d iterations on \
                 %d procs (N/P = %d)@."
                name hd time (sqrt var)
                (S89_sched.Chunk.from_estimate ~time ~var ~n ~p ~h)
                n p
                (S89_sched.Chunk.static_chunk ~n ~p))
          (S89_cfg.Ecfg.headers a.Analysis.ecfg))
      est.Interproc.per_proc
  in
  Cmd.v
    (Cmd.info "chunks"
       ~doc:"Variance-driven Kruskal-Weiss chunk sizes for every loop")
    Term.(const run $ file_arg $ runs_arg $ seed_arg $ p_arg $ h_arg $ n_arg)

let pgo_cmd =
  let budget_arg =
    Arg.(
      value
      & opt int S89_vm.Emit.default_plan.S89_vm.Emit.inline_budget
      & info [ "pgo-inline-budget" ] ~docv:"NODES"
          ~doc:"Largest callee CFG (in nodes) considered for inline splicing")
  in
  let hot_arg =
    Arg.(
      value & opt float 0.9
      & info [ "hot-fraction" ] ~docv:"F"
          ~doc:
            "Reoptimize the smallest set of procedures covering this fraction \
             of the profiled cycle weight at full effort")
  in
  let profile_out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "profile-out" ] ~docv:"PATH"
          ~doc:"Write the collected node frequencies as a feedback profile")
  in
  let profile_in_arg =
    Arg.(
      value & opt (some string) None
      & info [ "profile-in" ] ~docv:"PATH"
          ~doc:
            "Plan from a saved feedback profile instead of the collected one \
             (must fingerprint-match this exact source)")
  in
  let run file seed optimize budget hot_fraction profile_out profile_in =
    guard @@ fun () ->
    let source = read_file file in
    let prog =
      match Program.of_source_result source with
      | Ok prog -> prog
      | Error d -> fail_diag ~path:file d
    in
    let prog = maybe_optimize optimize prog in
    (* -O changes every CFG, so profiles are keyed on source + the flag *)
    let fkey = if optimize then source ^ "\n! -O\n" else source in
    let cm = cost_model_of_opt optimize in
    let t = Pipeline.create prog in
    let freq =
      match profile_in with
      | None -> None
      | Some path -> (
          let fb = Feedback.load path in
          match Feedback.check fb ~source:fkey with
          | Ok () -> Some fb.Feedback.freq
          | Error d -> fail_diag ~path d)
    in
    let r =
      Pipeline.pgo ~cost_model:cm ~seed ~inline_budget:budget ~hot_fraction ?freq
        t
    in
    (match profile_out with
    | None -> ()
    | Some path ->
        Feedback.save (Feedback.make ~source:fkey ~seed r.Pipeline.pgo_freq) path;
        Fmt.pr "feedback profile written to %s@." path);
    Fmt.pr "%a@." Report.pp_pgo r
  in
  Cmd.v
    (Cmd.info "pgo"
       ~doc:
         "Close the PGO loop: profile one run, reoptimize and re-lower from \
          the frequencies, re-run, and report predicted vs. measured cycles")
    Term.(
      const run $ file_arg $ seed_arg $ opt_arg $ budget_arg $ hot_arg
      $ profile_out_arg $ profile_in_arg)

(* ---------------- batch / serve ----------------

   Graceful shutdown: SIGINT/SIGTERM raise a flag the service polls
   between runs (and between spool scans).  Completed work is already
   durable in the WAL, so the handler only has to ask the loop to stop;
   the final flush happens on the normal return path. *)

let stop_requested = ref false

let install_signal_handlers () =
  let handler _ = stop_requested := true in
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle handler)
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]

let no_fsync_arg =
  Arg.(
    value & flag
    & info [ "no-fsync" ]
        ~doc:"Skip fsync on WAL appends (faster, loses crash durability)")

let analyze_cmd =
  let memo_dir_arg =
    Arg.(
      required & opt (some string) None
      & info [ "memo" ] ~docv:"DIR"
          ~doc:
            "Memo store directory (created if missing).  Per-procedure \
             analysis summaries persist here across invocations")
  in
  let run file runs seed optimize memo_dir no_fsync backend =
    guard @@ fun () ->
    let backend = resolve_backend backend in
    let prog = maybe_optimize optimize (load_program file) in
    let cm = cost_model_of_opt optimize in
    let store = Store.open_ ~fsync:(not no_fsync) ~dir:memo_dir () in
    List.iter (fun d -> Fmt.epr "ptranc: %a@." Diag.pp d) (Store.recovery_diags store);
    let memo = Memo.create () in
    List.iter
      (fun (fp, name, time, var) -> Memo.load_summary memo ~fp ~name ~time ~var)
      (Store.memos store);
    let t = Pipeline.create ~memo prog in
    let profile = Pipeline.profile_smart ~cost_model:cm ~runs ~seed ~backend t in
    let est =
      Pipeline.estimate_totals ~cost_model:cm ~memo t
        ~totals:(Database.proc_totals profile.Pipeline.database)
    in
    Fmt.pr "%a@." Report.pp est;
    (* persist whatever this run added or changed, then close cleanly *)
    List.iter
      (fun (fp, name, time, var) -> Store.append_memo store ~fp ~name ~time ~var)
      (Memo.drain_summaries memo);
    Store.close store;
    Fmt.epr "ptranc: %a@." Memo.pp_stats memo
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Estimate TIME/VAR with a persistent memo: unchanged procedures reuse \
          their cached analysis, only the dirty cone recomputes")
    Term.(
      const run $ file_arg $ runs_arg $ seed_arg $ opt_arg $ memo_dir_arg
      $ no_fsync_arg $ backend_arg)

let batch_cmd =
  let dir_arg =
    Arg.(
      required & opt (some string) None
      & info [ "dir" ] ~docv:"DIR" ~doc:"Store directory (snapshot + WAL)")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ] ~doc:"Continue an interrupted batch from its checkpoint")
  in
  let export_arg =
    Arg.(
      value & opt (some string) None
      & info [ "export" ] ~docv:"PATH"
          ~doc:"Also write the final database in the profile-db v2 format")
  in
  let memo_flag_arg =
    Arg.(
      value & flag
      & info [ "memo" ]
          ~doc:
            "Memoize per-procedure analysis; summaries persist as memo records \
             in the store and warm the next run of the same batch")
  in
  let run file runs seed optimize dir resume export no_fsync use_memo =
    guard @@ fun () ->
    install_signal_handlers ();
    let source = read_file file in
    let cm = cost_model_of_opt optimize in
    let memo = if use_memo then Some (Memo.create ()) else None in
    match
      Service.batch ~fsync:(not no_fsync) ~cost_model:cm
        ~should_stop:(fun () -> !stop_requested)
        ?export ?memo ~resume ~runs ~seed ~dir source
    with
    | Error d -> fail_diag ~path:file d
    | Ok (Service.Completed { runs; report }) ->
        print_string report;
        Fmt.pr "@.batch complete: %d runs accumulated in %s@." runs dir
    | Ok (Service.Interrupted { completed; total; _ }) ->
        (* graceful shutdown is still an incomplete batch: flag it with
           the SRV family exit code so scripts resume before consuming *)
        fail_diag
          (Diag.v ~severity:Diag.Info ~code:"SRV001"
             ~hint:"re-run with --resume to finish"
             (Fmt.str "interrupted after %d/%d runs; all completed runs are durable"
                completed total))
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Profile N runs into a crash-safe store, checkpointing each run")
    Term.(
      const run $ file_arg $ runs_arg $ seed_arg $ opt_arg $ dir_arg $ resume_arg
      $ export_arg $ no_fsync_arg $ memo_flag_arg)

let serve_cmd =
  let spool_arg =
    Arg.(
      value & opt (some string) None
      & info [ "spool" ] ~docv:"DIR"
          ~doc:"Spool directory watched for job files (spool mode)")
  in
  let tcp_arg =
    Arg.(
      value & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT"
          ~doc:
            "Serve the multi-tenant TCP protocol on PORT (0 = ephemeral) \
             instead of watching a spool directory")
  in
  let workers_arg =
    Arg.(
      value & opt int Server.default_config.Server.workers
      & info [ "workers" ] ~docv:"N" ~doc:"Worker domains (TCP mode)")
  in
  let capacity_arg =
    Arg.(
      value & opt int Server.default_config.Server.queue_capacity
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:"Max queued jobs per tenant before NET001 rejection (TCP mode)")
  in
  let weight_arg =
    Arg.(
      value & opt_all string []
      & info [ "tenant-weight" ] ~docv:"TENANT=W"
          ~doc:"Weighted-fair dequeue weight for a tenant; repeatable (TCP mode)")
  in
  let store_root_arg =
    Arg.(
      required & opt (some string) None
      & info [ "store-root" ] ~docv:"DIR"
          ~doc:"Root under which each job gets its store and report")
  in
  let rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "rate" ] ~docv:"PER-SEC"
          ~doc:
            "Per-tenant admission rate (token bucket refill); 0 disables \
             rate limiting (TCP mode)")
  in
  let burst_arg =
    Arg.(
      value & opt int 0
      & info [ "burst" ] ~docv:"N"
          ~doc:"Token bucket capacity (max instantaneous admissions per tenant)")
  in
  let max_tenant_bytes_arg =
    Arg.(
      value & opt int 0
      & info [ "max-tenant-bytes" ] ~docv:"BYTES"
          ~doc:"Per-tenant durable byte quota (NET004 above it); 0 = unlimited")
  in
  let max_tenant_jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "max-tenant-jobs" ] ~docv:"N"
          ~doc:"Per-tenant live job quota (NET004 above it); 0 = unlimited")
  in
  let max_conns_arg =
    Arg.(
      value & opt int Server.default_config.Server.max_connections
      & info [ "max-conns" ] ~docv:"N"
          ~doc:"Concurrent connection cap; 0 = unlimited (TCP mode)")
  in
  let retain_done_arg =
    Arg.(
      value & opt float Server.default_config.Server.retain_done
      & info [ "retain-done" ] ~docv:"SECONDS"
          ~doc:
            "GC finished jobs older than this; negative keeps them forever \
             (TCP mode)")
  in
  let max_store_bytes_arg =
    Arg.(
      value & opt int 0
      & info [ "max-store-bytes" ] ~docv:"BYTES"
          ~doc:
            "GC size bound on the store root: above it, finished jobs are \
             evicted oldest first; 0 = unbounded (TCP mode)")
  in
  let recv_timeout_arg =
    Arg.(
      value & opt float Server.default_config.Server.recv_timeout
      & info [ "recv-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Absolute per-frame read deadline — a client dripping bytes \
             slower than this is disconnected (TCP mode)")
  in
  let poll_arg =
    Arg.(
      value & opt float 0.2
      & info [ "poll-interval" ] ~docv:"SECONDS" ~doc:"Spool scan interval")
  in
  let max_jobs_arg =
    Arg.(
      value & opt (some int) None
      & info [ "max-jobs" ] ~docv:"N" ~doc:"Exit after processing N jobs")
  in
  let idle_exit_arg =
    Arg.(
      value & flag
      & info [ "idle-exit" ] ~doc:"Exit when the spool is empty instead of polling")
  in
  let parse_weights specs =
    List.map
      (fun spec ->
        match String.index_opt spec '=' with
        | Some i -> (
            let tenant = String.sub spec 0 i in
            let w = String.sub spec (i + 1) (String.length spec - i - 1) in
            match int_of_string_opt w with
            | Some w when w > 0 && Proto.name_ok tenant -> (tenant, w)
            | _ ->
                fail_diag
                  (Diag.errorf ~code:"CLI001" "bad --tenant-weight %S" spec))
        | None ->
            fail_diag (Diag.errorf ~code:"CLI001" "bad --tenant-weight %S" spec))
      specs
  in
  let run runs seed tcp workers capacity weights spool store_root poll max_jobs
      idle_exit no_fsync rate burst max_tenant_bytes max_tenant_jobs max_conns
      retain_done max_store_bytes recv_timeout =
    guard @@ fun () ->
    install_signal_handlers ();
    match tcp with
    | Some port ->
        let config =
          { Server.default_config with
            Server.port; workers; queue_capacity = capacity;
            tenant_weights = parse_weights weights; fsync = not no_fsync;
            quota =
              { S89_net.Quota.rate; burst; max_bytes = max_tenant_bytes;
                max_jobs = max_tenant_jobs };
            max_connections = max_conns; retain_done; max_store_bytes;
            recv_timeout }
        in
        (* S89_FAULTS_PULSE arms a runtime fault toggle for chaos soaks:
           SIGUSR1 activates the pulse spec (opening a disk-fault
           window), SIGUSR2 deactivates it.  Unlike S89_FAULTS — which
           is static for the process lifetime — this gives an external
           driver deterministic fault WINDOWS against a live server. *)
        (match Sys.getenv_opt "S89_FAULTS_PULSE" with
        | None | Some "" -> ()
        | Some spec_str ->
            let spec =
              match S89_util.Fault.parse spec_str with
              | Ok s -> s
              | Error msg -> fail_diag (Diag.errorf ~code:"CLI001" "%s" msg)
            in
            Sys.set_signal Sys.sigusr1
              (Sys.Signal_handle (fun _ -> S89_util.Fault.set (Some spec)));
            Sys.set_signal Sys.sigusr2
              (Sys.Signal_handle (fun _ -> S89_util.Fault.set None)));
        let srv = Server.start ~config ~store_root () in
        Fmt.pr "serving on 127.0.0.1:%d@." (Server.port srv);
        while not !stop_requested do
          try Unix.sleepf 0.1
          with Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done;
        Server.stop srv;
        print_string (Server.metrics_text srv);
        Fmt.epr "ptranc: %a@." Diag.pp
          (Diag.v ~severity:Diag.Info ~code:"SRV001"
             "shutdown requested; in-flight work is checkpointed")
    | None -> (
        match spool with
        | None ->
            fail_diag
              (Diag.error ~code:"CLI001"
                 ~hint:"pass --spool DIR for spool mode or --tcp PORT for TCP mode"
                 "serve needs either --spool or --tcp")
        | Some spool ->
            let stats =
              Service.serve ~fsync:(not no_fsync) ~poll_interval:poll ?max_jobs
                ~idle_exit
                ~should_stop:(fun () -> !stop_requested)
                ~runs ~seed ~spool ~store_root ()
            in
            Fmt.pr "serve: %d jobs completed, %d failed@." stats.Service.jobs_done
              stats.Service.jobs_failed;
            if !stop_requested then
              Fmt.epr "ptranc: %a@." Diag.pp
                (Diag.v ~severity:Diag.Info ~code:"SRV001"
                   "shutdown requested; in-flight work is checkpointed"))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run batches as jobs arrive: from a spool directory (--spool) or as \
          a multi-tenant TCP service (--tcp)")
    Term.(
      const run $ runs_arg $ seed_arg $ tcp_arg $ workers_arg $ capacity_arg
      $ weight_arg $ spool_arg $ store_root_arg $ poll_arg $ max_jobs_arg
      $ idle_exit_arg $ no_fsync_arg $ rate_arg $ burst_arg
      $ max_tenant_bytes_arg $ max_tenant_jobs_arg $ max_conns_arg
      $ retain_done_arg $ max_store_bytes_arg $ recv_timeout_arg)

let client_cmd =
  let action_arg =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("submit", `Submit); ("status", `Status); ("result", `Result);
                  ("metrics", `Metrics) ]))
          None
      & info [] ~docv:"ACTION" ~doc:"submit, status, result or metrics")
  in
  let connect_arg =
    Arg.(
      value & opt string "127.0.0.1:7089"
      & info [ "connect" ] ~docv:"HOST:PORT" ~doc:"Server address")
  in
  let tenant_arg =
    Arg.(
      value & opt string "default"
      & info [ "tenant" ] ~docv:"NAME" ~doc:"Tenant name")
  in
  let job_arg =
    Arg.(
      value & opt (some string) None
      & info [ "job" ] ~docv:"NAME" ~doc:"Job name (defaults to the file's basename)")
  in
  let file_arg =
    Arg.(
      value & opt (some string) None
      & info [ "file" ] ~docv:"FILE" ~doc:"MF77 source to submit")
  in
  let deadline_arg =
    Arg.(
      value & opt float 0.0
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Relative job deadline; 0 = none (SRV004 + partial results on expiry)")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry a rejected request up to N times with exponential backoff \
             and jitter, honoring the server's advised retry-after")
  in
  let run action connect tenant job file runs seed deadline retries =
    guard @@ fun () ->
    let host, port =
      match String.rindex_opt connect ':' with
      | Some i -> (
          let h = String.sub connect 0 i in
          let p = String.sub connect (i + 1) (String.length connect - i - 1) in
          match int_of_string_opt p with
          | Some p when p >= 0 -> ((if h = "" then "127.0.0.1" else h), p)
          | _ -> fail_diag (Diag.errorf ~code:"CLI001" "bad --connect %S" connect))
      | None -> fail_diag (Diag.errorf ~code:"CLI001" "bad --connect %S" connect)
    in
    let job_name file =
      match job with
      | Some j -> j
      | None -> Filename.remove_extension (Filename.basename file)
    in
    let req =
      match action with
      | `Submit -> (
          match file with
          | None ->
              fail_diag
                (Diag.error ~code:"CLI001" "client submit needs --file FILE")
          | Some f ->
              Proto.Submit
                { tenant; job = job_name f; runs; seed; deadline;
                  source = read_file f })
      | `Status | `Result -> (
          let mk j =
            if action = `Status then Proto.Status { tenant; job = j }
            else Proto.Result { tenant; job = j }
          in
          match (job, file) with
          | Some j, _ -> mk j
          | None, Some f -> mk (job_name f)
          | None, None ->
              fail_diag (Diag.error ~code:"CLI001" "client needs --job NAME"))
      | `Metrics -> Proto.Metrics
    in
    let attempt_rpc () =
      let fd =
        try Server.Client.connect ~host ~port ()
        with Unix.Unix_error (e, _, _) ->
          fail_diag
            (Diag.errorf ~code:"NET003" ~hint:"is the server running?"
               "cannot connect to %s:%d: %s" host port (Unix.error_message e))
      in
      Fun.protect ~finally:(fun () -> Server.Client.close fd) @@ fun () ->
      Server.Client.rpc fd req
    in
    (* a rejection reason leads with its error code (NET001/NET004/SRV007) *)
    let code_of_reason reason =
      match String.index_opt reason ' ' with
      | Some i when i = 6 -> String.sub reason 0 i
      | _ -> "NET001"
    in
    Random.self_init ();
    let rec go attempt =
      match attempt_rpc () with
      | Error msg ->
          fail_diag (Diag.errorf ~code:"NET002" "bad server response: %s" msg)
      | Ok (Proto.Rejected { retry_after; reason }) when attempt < retries ->
          (* exponential backoff over the server's advised floor, with
             jitter so retrying clients don't re-arrive in lockstep *)
          let delay =
            Server.Client.retry_delay ~attempt ~retry_after
              ~jitter:(Random.float 1.0)
          in
          Fmt.epr "ptranc: rejected (%s); retry %d/%d in %ss@." reason
            (attempt + 1) retries
            (Proto.pp_retry_after delay);
          Unix.sleepf delay;
          go (attempt + 1)
      | Ok (Proto.Rejected { retry_after; reason }) ->
          fail_diag
            (Diag.errorf
               ~code:(code_of_reason reason)
               ~hint:(Fmt.str "retry after %ss" (Proto.pp_retry_after retry_after))
               "%s" reason)
      | Ok (Proto.Accepted { job }) -> Fmt.pr "accepted %s@." job
      | Ok (Proto.Job_status { state; completed; total }) ->
          Fmt.pr "%s %d/%d@." state completed total
      | Ok (Proto.Job_result { state; body }) ->
          print_string body;
          if state <> "done" && state <> "expired" then
            fail_diag
              (Diag.errorf ~code:"SRV001" "job is %s; no final result" state)
      | Ok (Proto.Metrics_text text) -> print_string text
      | Ok (Proto.Error_resp { code; message }) ->
          fail_diag (Diag.error ~code message)
    in
    go 0
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Submit and query jobs against a ptranc serve --tcp server")
    Term.(
      const run $ action_arg $ connect_arg $ tenant_arg $ job_arg $ file_arg
      $ runs_arg $ seed_arg $ deadline_arg $ retries_arg)

let demo_cmd =
  let which =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("fig1", `Fig1); ("branchy", `Branchy); ("chunky", `Chunky);
                  ("nested", `Nested); ("recursive", `Recursive);
                  ("irreducible", `Irreducible); ("cgoto", `Cgoto);
                  ("loops", `Loops); ("simple", `Simple) ]))
          None
      & info [] ~docv:"NAME" ~doc:"Demo name")
  in
  let run which =
    let module W = S89_workloads.Demos in
    let src =
      match which with
      | `Fig1 -> W.fig1 ()
      | `Branchy -> W.branchy ()
      | `Chunky -> W.chunky ()
      | `Nested -> W.nested_random ()
      | `Recursive -> W.recursive ()
      | `Irreducible -> W.irreducible ()
      | `Cgoto -> W.computed_goto ()
      | `Loops -> S89_workloads.Livermore.source
      | `Simple -> S89_workloads.Simple_code.source ()
    in
    print_string src
  in
  Cmd.v (Cmd.info "demo" ~doc:"Print one of the built-in demo programs")
    Term.(const run $ which)

(* Debug logging on the s89.* sources is controlled by the environment:
   S89_LOG=debug|info|warning (default warning). *)
let setup_logs () =
  Logs.set_reporter (Logs_fmt.reporter ());
  let level =
    match Sys.getenv_opt "S89_LOG" with
    | Some "debug" -> Logs.Debug
    | Some "info" -> Logs.Info
    | _ -> Logs.Warning
  in
  Logs.set_level (Some level)

let () =
  setup_logs ();
  let doc = "average program execution times and their variance (PLDI'89 reproduction)" in
  let info = Cmd.info "ptranc" ~version:"1.0.0" ~doc in
  let code =
    Cmd.eval
      (Cmd.group info
         [ parse_cmd; cfg_cmd; ecfg_cmd; fcdg_cmd; plan_cmd; run_cmd; profile_cmd;
           estimate_cmd; analyze_cmd; static_cmd; chunks_cmd; pgo_cmd; batch_cmd;
           serve_cmd; client_cmd; demo_cmd ])
  in
  (* usage errors land in the same exit-code family as IO errors (2) *)
  exit (if code = Cmd.Exit.cli_error then 2 else code)
