(* fuzz — a crash-hunting harness over the whole pipeline.

   Three input classes per seed:
   - valid:     programs from the property-test generator (terminating,
                runnable by construction);
   - mutated:   valid programs with a few line-level mutations (dropped,
                duplicated, swapped, token-spliced, truncated lines) —
                mostly still lexable, often semantically broken;
   - corrupted: valid programs with random byte flips — garbage that must
                still be rejected gracefully.

   A fourth, input-free class per seed exercises the crash-safe store:
   - store-recovery: build a store (appends, events, compactions), then
                truncate/flip/garbage its on-disk files at seeded
                offsets; reopening must either succeed with no more
                runs than were appended and remain fully operational
                (append + compact + reopen), or reject with the
                structured [Store.Corrupt].

   A fifth class per seed exercises the incremental analysis memo:
   - memo-consistency: replay a seeded edit stream (constant tweaks on
                generated programs) against one persistent memo,
                rotating the VM backend per version; every memoized
                estimate must be byte-identical to a from-scratch
                analysis of the same version (report, diagnostics,
                program totals) and no MEMO002 determinism violation
                may fire.

   The invariants checked for every input:
   - no uncaught exception anywhere in parse → analyze → plan → profile →
     estimate: inputs are either accepted or rejected with a structured
     diagnostic;
   - the tree-walking and compiled backends agree exactly (cycles,
     statements, output — or the same diagnostic code on failure);
   - estimates from oracle counts reproduce the measured cycle count
     (reconstruction exactness) on programs that run to completion.

   Failures are triaged to reproducible artifacts: the offending source
   and a note with the seed, mode and repro command, written under
   --out (default fuzz-crashes/).  Exit code 1 if anything was found. *)

module Program = S89_frontend.Program
module Pipeline = S89_core.Pipeline
module Interproc = S89_core.Interproc
module Interp = S89_vm.Interp
module Diag = S89_diag.Diag
module Prng = S89_util.Prng
module Gen = S89_testgen.Gen_prog

type mode =
  | Valid
  | Mutated
  | Corrupted
  | Store_recovery
  | Memo_consistency
  | Net_proto

let mode_name = function
  | Valid -> "valid"
  | Mutated -> "mutated"
  | Corrupted -> "corrupted"
  | Store_recovery -> "store-recovery"
  | Memo_consistency -> "memo-consistency"
  | Net_proto -> "net-proto"

(* ---------------- input generation ---------------- *)

let splice_tokens =
  [| "DO 10 I = 1, 3"; "END"; "GOTO 999"; "IF ("; "CALL NOPE(X)"; ")"; "= +";
     "ELSE"; "CONTINUE"; "PROGRAM Q" |]

let mutate seed src =
  let rng = Prng.create ~seed:(seed lxor 0x5eed) in
  let lines = Array.of_list (String.split_on_char '\n' src) in
  let n = Array.length lines in
  let ops = 1 + Prng.int rng 3 in
  for _ = 1 to ops do
    let i = Prng.int rng n in
    match Prng.int rng 5 with
    | 0 -> lines.(i) <- "" (* drop a line *)
    | 1 -> lines.(i) <- lines.(Prng.int rng n) (* duplicate another line *)
    | 2 ->
        let j = Prng.int rng n in
        let tmp = lines.(i) in
        lines.(i) <- lines.(j);
        lines.(j) <- tmp
    | 3 ->
        lines.(i) <-
          lines.(i) ^ " " ^ splice_tokens.(Prng.int rng (Array.length splice_tokens))
    | _ ->
        let l = String.length lines.(i) in
        if l > 0 then lines.(i) <- String.sub lines.(i) 0 (Prng.int rng l)
  done;
  String.concat "\n" (Array.to_list lines)

let corrupt seed src =
  let rng = Prng.create ~seed:(seed lxor 0xbad) in
  let b = Bytes.of_string src in
  let n = Bytes.length b in
  let flips = 1 + Prng.int rng 8 in
  for _ = 1 to flips do
    Bytes.set b (Prng.int rng n) (Char.chr (Prng.int rng 256))
  done;
  Bytes.to_string b

let gen_input mode seed =
  let src = Gen.gen_source seed in
  match mode with
  | Valid -> src
  | Mutated -> mutate seed src
  | Corrupted -> corrupt seed src
  | Store_recovery -> invalid_arg "store-recovery takes no source input"
  | Memo_consistency -> invalid_arg "memo-consistency generates its own edit stream"
  | Net_proto -> invalid_arg "net-proto generates wire frames, not source"

(* ---------------- the oracle ---------------- *)

exception Fuzz_failure of string

let failf fmt = Printf.ksprintf (fun m -> raise (Fuzz_failure m)) fmt

(* mutated programs may loop forever or recurse; keep runs bounded *)
let bounded backend =
  { Interp.default_config with max_steps = 5_000_000; max_call_depth = 500; backend }

type verdict = Accepted | Rejected of string (* diagnostic code *)

(* runtime failures that MAY legitimately surface from deep layers
   (profiling, estimation) on semantically broken but parseable inputs *)
let runtime_reject : exn -> string option = function
  | S89_vm.Value.Runtime_error _ -> Some "RUN001"
  | Interp.Out_of_fuel -> Some "RUN002"
  | Interp.Out_of_cycles -> Some "RUN003"
  | Interp.Call_depth_exceeded _ -> Some "RUN004"
  | Interproc.Recursion_unsupported _ -> Some "EST001"
  | _ -> None

let check mode src : verdict =
  match Program.of_source_result src with
  | Error d -> Rejected d.Diag.code
  | Ok prog -> (
      let t = Pipeline.create prog in
      match Pipeline.diagnostics t with
      | d :: _ when mode = Valid ->
          failf "analysis diagnostic on a valid program: %s" d.Diag.code
      | d :: _ -> Rejected d.Diag.code
      | [] -> (
          (* all three backends, bounded: exact agreement or same
             rejection *)
          let run backend =
            let vm = Interp.create ~config:(bounded backend) prog in
            match Interp.run_result vm with
            | Ok _ -> Ok (Interp.cycles vm, Interp.steps vm, Interp.output vm)
            | Error d -> Error d.Diag.code
          in
          (match (run Interp.Compiled, run Interp.Bytecode) with
          | Ok (c1, s1, o1), Ok (c3, s3, o3) ->
              if c1 <> c3 || s1 <> s3 then
                failf
                  "backend divergence: compiled %d cycles/%d steps, bytecode %d/%d"
                  c1 s1 c3 s3;
              if o1 <> o3 then
                failf "backend divergence: bytecode PRINT output differs"
          | Error d1, Error d3 ->
              if d1 <> d3 then
                failf "backend divergence: compiled rejects %s, bytecode rejects %s"
                  d1 d3
          | Ok _, Error d ->
              failf "backend divergence: bytecode rejects %s, compiled runs" d
          | Error d, Ok _ ->
              failf "backend divergence: compiled rejects %s, bytecode runs" d);
          match (run Interp.Compiled, run Interp.Tree) with
          | Ok (c1, s1, o1), Ok (c2, s2, o2) ->
              if c1 <> c2 || s1 <> s2 then
                failf "backend divergence: compiled %d cycles/%d steps, tree %d/%d"
                  c1 s1 c2 s2;
              if o1 <> o2 then failf "backend divergence: PRINT output differs";
              (* reconstruction exactness from oracle counts, then smart
                 profiling + estimation; deep layers may legitimately
                 reject semantically broken (non-valid) inputs *)
              (match
                 let vm = Pipeline.run_once t in
                 let est = Pipeline.estimate_oracle t vm in
                 let measured = float_of_int (Interp.cycles vm) in
                 let predicted = Interproc.program_time est in
                 if Float.abs (measured -. predicted) > 1e-6 *. (1.0 +. measured)
                 then
                   failf "reconstruction inexact: measured %.3f, predicted %.3f"
                     measured predicted;
                 let profile = Pipeline.profile_smart ~runs:2 t in
                 ignore (Pipeline.estimate_profiled t profile);
                 (* the PGO leg: profile -> plan -> reoptimize.  The plan
                    is observationally invisible and reoptimization
                    preserves control flow, so all three backends must
                    agree on the PGO'd program, reproduce the original
                    output and step count, and never cost more cycles *)
                 let pr = Pipeline.pgo t in
                 let run_pgo backend =
                   let config =
                     { (bounded backend) with
                       Interp.emit_plan = Some pr.Pipeline.pgo_plan }
                   in
                   let vm = Interp.create ~config pr.Pipeline.pgo_prog in
                   match Interp.run_result vm with
                   | Ok _ -> Ok (Interp.cycles vm, Interp.steps vm, Interp.output vm)
                   | Error d -> Error d.Diag.code
                 in
                 match
                   (run_pgo Interp.Tree, run_pgo Interp.Compiled,
                    run_pgo Interp.Bytecode)
                 with
                 | Ok (ct, st, ot), Ok (cc, sc, oc), Ok (cb, sb, ob) ->
                     if ct <> cc || ct <> cb || st <> sc || st <> sb then
                       failf
                         "pgo divergence: tree %d/%d, compiled %d/%d, bytecode %d/%d"
                         ct st cc sc cb sb;
                     if ot <> oc || ot <> ob then
                       failf "pgo divergence: PRINT output differs";
                     if ot <> o1 then failf "pgo changed program output";
                     if st <> s1 then
                       failf "pgo changed step count: %d vs %d" st s1;
                     if ct > c1 then
                       failf "pgo increased cycles: %d vs %d" ct c1
                 | Error d1, Error d2, Error d3 ->
                     if d1 <> d2 || d1 <> d3 then
                       failf "pgo divergence: rejects %s / %s / %s" d1 d2 d3
                 | _ -> failf "pgo divergence: backends disagree on acceptance"
               with
              | () -> ()
              | exception e -> (
                  match runtime_reject e with
                  | Some code when mode <> Valid -> ignore code
                  | _ -> raise e));
              Accepted
          | Error d1, Error d2 ->
              if d1 <> d2 then
                failf "backend divergence: compiled rejects %s, tree rejects %s" d1 d2;
              Rejected d1
          | Ok _, Error d -> failf "backend divergence: tree rejects %s, compiled runs" d
          | Error d, Ok _ -> failf "backend divergence: compiled rejects %s, tree runs" d)
      )

(* ---------------- store recovery fuzzing ---------------- *)

module Wal = S89_store.Wal
module Store = S89_store.Store
module Label = S89_cfg.Label

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_tmp_dir f =
  let dir = Filename.temp_file "s89fuzz" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> try rm_rf dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let seeded_totals rng =
  let tbl = Hashtbl.create 4 in
  for node = 0 to Prng.int rng 4 do
    Hashtbl.replace tbl
      (node, if Prng.int rng 2 = 0 then S89_cfg.Label.T else Label.F)
      (Prng.int rng 100)
  done;
  let per_proc = Hashtbl.create 1 in
  Hashtbl.replace per_proc "P" tbl;
  per_proc

(* build a store, mangle its files at seeded offsets, reopen: recovery
   must never invent runs, never crash unstructured, and must leave the
   store fully operational (append + compact + clean reopen) *)
let check_store seed : verdict =
  let rng = Prng.create ~seed:(seed lxor 0x570e) in
  with_tmp_dir @@ fun dir ->
  let appended = ref 0 in
  let s =
    Store.open_ ~fsync:false ~compact_threshold:(2 + Prng.int rng 6) ~dir ()
  in
  Store.set_meta s [ ("fuzz-seed", string_of_int seed) ];
  let n = 1 + Prng.int rng 12 in
  for r = 0 to n - 1 do
    Store.append_run s ~seed:r (seeded_totals rng);
    incr appended;
    if Prng.int rng 5 = 0 then
      Store.append_event s (Printf.sprintf "ev %d" (Prng.int rng 3))
  done;
  Store.close s;
  let mangles = 1 + Prng.int rng 3 in
  for _ = 1 to mangles do
    let fs = Sys.readdir dir in
    if Array.length fs > 0 then begin
      let path = Filename.concat dir fs.(Prng.int rng (Array.length fs)) in
      let content = read_file path in
      let len = String.length content in
      match Prng.int rng 3 with
      | 0 -> write_file path (String.sub content 0 (Prng.int rng (len + 1)))
      | 1 when len > 0 ->
          let b = Bytes.of_string content in
          for _ = 0 to Prng.int rng 4 do
            Bytes.set b (Prng.int rng len) (Char.chr (Prng.int rng 256))
          done;
          write_file path (Bytes.to_string b)
      | _ ->
          write_file path
            (content
            ^ String.init (Prng.int rng 50) (fun _ -> Char.chr (Prng.int rng 256)))
    end
  done;
  match Store.open_ ~fsync:false ~dir () with
  | exception Store.Corrupt _ -> Rejected "DB001" (* structured rejection *)
  | s2 ->
      if Store.runs s2 > !appended then
        failf "recovery invented runs: %d recovered from %d appended"
          (Store.runs s2) !appended;
      Store.append_run s2 ~seed:(n + 1) (seeded_totals rng);
      Store.compact s2;
      let runs_now = Store.runs s2 in
      Store.close s2;
      let s3 = Store.open_ ~fsync:false ~dir () in
      if Store.runs s3 <> runs_now then
        failf "post-recovery reopen lost runs: %d then %d" runs_now (Store.runs s3);
      Store.close s3;
      Accepted

(* ---------------- memo consistency fuzzing ---------------- *)

module Memo = S89_core.Memo
module Report = S89_core.Report
module Database = S89_profiling.Database

(* a procedure-local edit that keeps the program valid: bump one numeric
   literal to the right of an '=' (assignment RHS or DO bound) — labels
   and keywords in the statement field are never touched *)
let tweak rng src =
  let lines = Array.of_list (String.split_on_char '\n' src) in
  let cands =
    Array.to_list lines
    |> List.mapi (fun i l -> (i, l))
    |> List.filter (fun (_, l) ->
           match String.index_opt l '=' with
           | Some k ->
               String.exists
                 (fun c -> c >= '0' && c <= '9')
                 (String.sub l (k + 1) (String.length l - k - 1))
           | None -> false)
  in
  match cands with
  | [] -> src
  | _ ->
      let i, l = List.nth cands (Prng.int rng (List.length cands)) in
      let k = Option.get (String.index_opt l '=') in
      let pos = ref (-1) in
      String.iteri (fun j c -> if j > k && c >= '0' && c <= '9' then pos := j) l;
      let b = Bytes.of_string l in
      Bytes.set b !pos (Char.chr (Char.code '1' + Prng.int rng 8));
      lines.(i) <- Bytes.to_string b;
      String.concat "\n" (Array.to_list lines)

let backend_name = function
  | Interp.Tree -> "tree"
  | Interp.Compiled -> "compiled"
  | Interp.Bytecode -> "bytecode"

(* one persistent memo over a seeded edit stream: every memoized
   analysis must be byte-identical to a from-scratch one *)
let check_memo_consistency seed : verdict =
  let rng = Prng.create ~seed:(seed lxor 0x3e30) in
  let memo_diag_codes = ref [] in
  let memo =
    Memo.create ~on_diag:(fun d -> memo_diag_codes := d.Diag.code :: !memo_diag_codes) ()
  in
  let backends = [| Interp.Tree; Interp.Compiled; Interp.Bytecode |] in
  let src = ref (Gen.gen_source seed) in
  let rejected = ref None in
  for v = 0 to 2 do
    if v > 0 then src := tweak rng !src;
    match Program.of_source_result !src with
    | Error d -> rejected := Some d.Diag.code (* a tweak broke the program *)
    | Ok _ -> (
        let backend = backends.((seed + v) mod 3) in
        try
          let fresh_t = Pipeline.of_source !src in
          let memo_t = Pipeline.of_source ~memo !src in
          let codes t = List.map (fun d -> d.Diag.code) (Pipeline.diagnostics t) in
          if codes fresh_t <> codes memo_t then
            failf "memo changed analysis diagnostics: [%s] vs [%s]"
              (String.concat ";" (codes fresh_t))
              (String.concat ";" (codes memo_t));
          if codes fresh_t = [] then begin
            let profile = Pipeline.profile_smart ~runs:1 ~backend fresh_t in
            let totals = Database.proc_totals profile.Pipeline.database in
            let fresh = Pipeline.estimate_totals fresh_t ~totals in
            let memod = Pipeline.estimate_totals ~memo memo_t ~totals in
            if Interproc.program_time fresh <> Interproc.program_time memod then
              failf "memoized TIME differs at version %d (%s backend)" v
                (backend_name backend);
            if Interproc.program_var fresh <> Interproc.program_var memod
            then
              failf "memoized VAR differs at version %d (%s backend)" v
                (backend_name backend);
            let rf = Fmt.str "%a" Report.pp fresh
            and rm = Fmt.str "%a" Report.pp memod in
            if rf <> rm then
              failf "memoized report not byte-identical at version %d (%s backend)"
                v (backend_name backend);
            match !memo_diag_codes with
            | [] -> ()
            | c :: _ -> failf "memo raised %s on a deterministic edit stream" c
          end
        with e -> (
          match runtime_reject e with
          | Some code -> rejected := Some code
          | None -> raise e))
  done;
  match !rejected with Some code -> Rejected code | None -> Accepted

(* ---------------- net-proto mode ---------------- *)

module Proto = S89_net.Proto

(* the wire codecs are documented total: arbitrary bytes must come back
   as [Error] (NET002 material), never as an exception; well-formed
   frames and requests must roundtrip exactly *)
let check_net_proto seed : verdict =
  let rng = Prng.create ~seed:(seed lxor 0x9e70) in
  let total what f =
    try ignore (f ()) with e -> failf "%s raised: %s" what (Printexc.to_string e)
  in
  (* 1. garbage in: total, no exceptions *)
  for _ = 1 to 8 do
    let len = Prng.int rng 256 in
    let s = String.init len (fun _ -> Char.chr (Prng.int rng 256)) in
    total "unframe" (fun () -> Proto.unframe s);
    total "decode_request" (fun () -> Proto.decode_request s);
    total "decode_response" (fun () -> Proto.decode_response s)
  done;
  (* 2. well-formed requests roundtrip through encode/frame exactly *)
  let name () =
    let alphabet = "abcwXYZ019_.-" in
    String.init
      (1 + Prng.int rng 12)
      (fun _ -> alphabet.[Prng.int rng (String.length alphabet)])
  in
  let request () =
    match Prng.int rng 4 with
    | 0 ->
        let source =
          String.concat "\n"
            (List.init
               (1 + Prng.int rng 5)
               (fun i -> Printf.sprintf "      X%d = %d" i (Prng.int rng 1000)))
        in
        Proto.Submit
          { tenant = name (); job = name (); runs = 1 + Prng.int rng 1000;
            seed = Prng.int rng 100_000;
            deadline = float_of_int (Prng.int rng 6400) /. 64.0; source }
    | 1 -> Proto.Status { tenant = name (); job = name () }
    | 2 -> Proto.Result { tenant = name (); job = name () }
    | _ -> Proto.Metrics
  in
  for _ = 1 to 8 do
    let req = request () in
    let payload = Proto.encode_request req in
    (match Proto.unframe (Proto.frame payload) with
    | Ok p when p = payload -> ()
    | Ok _ -> failf "frame/unframe changed the payload"
    | Error e -> failf "unframe rejected its own frame: %s" e);
    (match Proto.decode_request payload with
    | Ok r when r = req -> ()
    | Ok _ -> failf "request roundtrip changed the request"
    | Error e -> failf "decode_request rejected its own encoding: %s" e);
    (* 3. a flipped byte anywhere in the frame: Ok or Error, no raise *)
    let frame = Bytes.of_string (Proto.frame payload) in
    Bytes.set frame
      (Prng.int rng (Bytes.length frame))
      (Char.chr (Prng.int rng 256));
    total "unframe(corrupted)" (fun () -> Proto.unframe (Bytes.to_string frame))
  done;
  Accepted

(* ---------------- driver ---------------- *)

type failure = { mode : mode; seed : int; what : string; src : string }

let usage () =
  prerr_endline
    "usage: fuzz [--seeds N] [--start-seed N] [--budget SECS[s]] [--out DIR]";
  exit 2

let parse_budget s =
  let s =
    if String.length s > 0 && s.[String.length s - 1] = 's' then
      String.sub s 0 (String.length s - 1)
    else s
  in
  match float_of_string_opt s with Some b when b > 0.0 -> b | _ -> usage ()

let () =
  let seeds = ref 200
  and start = ref 1
  and budget = ref infinity
  and out_dir = ref "fuzz-crashes" in
  let rec parse = function
    | [] -> ()
    | "--seeds" :: v :: rest ->
        (match int_of_string_opt v with Some n when n > 0 -> seeds := n | _ -> usage ());
        parse rest
    | "--start-seed" :: v :: rest ->
        (match int_of_string_opt v with Some n -> start := n | _ -> usage ());
        parse rest
    | "--budget" :: v :: rest ->
        budget := parse_budget v;
        parse rest
    | "--out" :: v :: rest ->
        out_dir := v;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let t0 = Unix.gettimeofday () in
  let failures = ref [] in
  let completed = ref 0 in
  let accepted = ref 0 in
  let rejected = Hashtbl.create 16 in
  (try
     for seed = !start to !start + !seeds - 1 do
       if Unix.gettimeofday () -. t0 > !budget then raise Exit;
       List.iter
         (fun mode ->
           let src = gen_input mode seed in
           match check mode src with
           | Accepted -> incr accepted
           | Rejected code ->
               Hashtbl.replace rejected code
                 (1 + Option.value ~default:0 (Hashtbl.find_opt rejected code))
           | exception e ->
               let what =
                 match e with
                 | Fuzz_failure m -> m
                 | e -> "uncaught exception: " ^ Printexc.to_string e
               in
               failures := { mode; seed; what; src } :: !failures)
         [ Valid; Mutated; Corrupted ];
       (match check_store seed with
       | Accepted -> incr accepted
       | Rejected code ->
           Hashtbl.replace rejected code
             (1 + Option.value ~default:0 (Hashtbl.find_opt rejected code))
       | exception e ->
           let what =
             match e with
             | Fuzz_failure m -> m
             | e -> "uncaught exception: " ^ Printexc.to_string e
           in
           failures :=
             { mode = Store_recovery; seed; what; src = "(no source: store-recovery mangles on-disk store files)" }
             :: !failures);
       (match check_memo_consistency seed with
       | Accepted -> incr accepted
       | Rejected code ->
           Hashtbl.replace rejected code
             (1 + Option.value ~default:0 (Hashtbl.find_opt rejected code))
       | exception e ->
           let what =
             match e with
             | Fuzz_failure m -> m
             | e -> "uncaught exception: " ^ Printexc.to_string e
           in
           failures :=
             { mode = Memo_consistency; seed; what;
               src = Gen.gen_source seed (* the edit stream's base version *) }
             :: !failures);
       (match check_net_proto seed with
       | Accepted -> incr accepted
       | Rejected code ->
           Hashtbl.replace rejected code
             (1 + Option.value ~default:0 (Hashtbl.find_opt rejected code))
       | exception e ->
           let what =
             match e with
             | Fuzz_failure m -> m
             | e -> "uncaught exception: " ^ Printexc.to_string e
           in
           failures :=
             { mode = Net_proto; seed; what;
               src = "(no source: net-proto fuzzes wire frames)" }
             :: !failures);
       incr completed
     done
   with Exit -> ());
  let elapsed = Unix.gettimeofday () -. t0 in
  Printf.printf "fuzz: %d seeds x 6 modes in %.1fs — %d accepted, %d rejected, %d failures\n"
    !completed elapsed !accepted
    (Hashtbl.fold (fun _ n acc -> acc + n) rejected 0)
    (List.length !failures);
  let codes =
    Hashtbl.fold (fun c n acc -> (c, n) :: acc) rejected [] |> List.sort compare
  in
  List.iter (fun (c, n) -> Printf.printf "  rejected with %s: %d\n" c n) codes;
  if !failures <> [] then begin
    (try Unix.mkdir !out_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    List.iter
      (fun f ->
        let base = Printf.sprintf "%s/%s-%d" !out_dir (mode_name f.mode) f.seed in
        let write path s =
          let oc = open_out path in
          output_string oc s;
          close_out oc
        in
        write (base ^ ".f77") f.src;
        write (base ^ ".txt")
          (Printf.sprintf
             "mode: %s\nseed: %d\nfailure: %s\nreproduce: dune exec fuzz/fuzz.exe -- \
              --seeds 1 --start-seed %d\n"
             (mode_name f.mode) f.seed f.what f.seed);
        Printf.printf "FAILURE %s seed %d: %s\n  artifact: %s.f77\n" (mode_name f.mode)
          f.seed f.what base)
      (List.rev !failures);
    exit 1
  end
