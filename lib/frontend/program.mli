(** Whole-program view: one lowered CFG per program unit plus the call
    graph (callers → callees), which the interprocedural estimator walks
    bottom-up (§4 rule 2). *)

open S89_graph

(** One program unit, lowered. *)
type proc = {
  name : string;
  kind : Ast.unit_kind;
  params : string list;
  env : Sema.env;
  cfg : Ir.info S89_cfg.Cfg.t;  (** reducible by construction *)
}

type t = {
  procs : proc array;
  by_name : (string, proc) Hashtbl.t;
  index : (string, int) Hashtbl.t;
  main : string;
  call_graph : unit Digraph.t;  (** node i = procs.(i); edges caller → callee *)
}

(** User functions referenced inside an expression (with multiplicity),
    given the unit table. *)
val expr_calls : (string, 'p) Hashtbl.t -> string list -> Ast.expr -> string list

(** Build from analyzed units (lowers every unit). *)
val of_sema : Sema.program_env -> t

(** Parse, analyze and lower MF77 source. *)
val of_source : string -> t

(** Like {!of_source}, but every frontend failure (lexical, parse,
    semantic, lowering, node-splitting fuel) is returned as a structured
    diagnostic instead of an exception. *)
val of_source_result : string -> (t, S89_diag.Diag.t) result

(** Find a unit by name; raises [Invalid_argument] if unknown. *)
val find : t -> string -> proc

val main_proc : t -> proc
val procs : t -> proc list

(** Distinct callees of a procedure. *)
val callees : t -> proc -> string list

(** Call-graph SCCs, callees-first. *)
val sccs : t -> proc list list

(** Does any call-graph cycle (including self loops) exist? *)
val is_recursive : t -> bool

(** Procedures in bottom-up call-graph order (callees before callers). *)
val bottom_up : t -> proc list

(** Rebuild with transformed CFGs (used by the optimizer); the call graph
    is recomputed. *)
val map_cfgs : t -> (proc -> Ir.info S89_cfg.Cfg.t) -> t
