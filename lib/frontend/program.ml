(* Whole-program view: one lowered CFG per program unit, plus the call
   graph.  The interprocedural estimator (rule 2 of §4) visits procedures
   bottom-up over this call graph; recursion shows up as a non-singleton
   SCC. *)

open S89_graph
open S89_cfg

type proc = {
  name : string;
  kind : Ast.unit_kind;
  params : string list;
  env : Sema.env;
  cfg : Ir.info Cfg.t;
}

type t = {
  procs : proc array;
  by_name : (string, proc) Hashtbl.t;
  index : (string, int) Hashtbl.t;
  main : string;
  call_graph : unit Digraph.t; (* node i = procs.(i); edge caller -> callee *)
}

(* user-defined functions called inside an expression *)
let rec expr_calls by_name acc (e : Ast.expr) =
  match e with
  | Ast.Int _ | Real _ | Bool _ | Var _ -> acc
  | Index (_, idx) -> List.fold_left (expr_calls by_name) acc idx
  | Call (f, args) ->
      let acc = List.fold_left (expr_calls by_name) acc args in
      if Hashtbl.mem by_name f then f :: acc else acc
  | Unop (_, e) -> expr_calls by_name acc e
  | Binop (_, a, b) -> expr_calls by_name (expr_calls by_name acc a) b

(* all callees of a CFG node (subroutine call and/or functions in exprs) *)
let node_callees by_name (info : Ir.info) =
  let acc =
    match info.ir with
    | Ir.Call (name, _) when Hashtbl.mem by_name name -> [ name ]
    | _ -> []
  in
  List.fold_left (expr_calls by_name) acc (Ir.exprs_of info.ir)

let callees_of_proc by_name (p : proc) =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  Cfg.iter_nodes
    (fun n ->
      List.iter
        (fun c ->
          if not (Hashtbl.mem seen c) then begin
            Hashtbl.replace seen c ();
            acc := c :: !acc
          end)
        (node_callees by_name (Cfg.info p.cfg n)))
    p.cfg;
  List.rev !acc

let of_sema (penv : Sema.program_env) : t =
  let procs =
    List.map
      (fun (env : Sema.env) ->
        let u = env.Sema.unit_ in
        {
          name = u.name;
          kind = u.kind;
          params = u.params;
          env;
          cfg = Lower.lower_unit env;
        })
      penv.Sema.units
    |> Array.of_list
  in
  let by_name = Hashtbl.create 8 and index = Hashtbl.create 8 in
  Array.iteri
    (fun i p ->
      Hashtbl.replace by_name p.name p;
      Hashtbl.replace index p.name i)
    procs;
  let call_graph = Digraph.create () in
  ignore (Digraph.add_nodes call_graph (Array.length procs));
  Array.iteri
    (fun i p ->
      List.iter
        (fun callee ->
          let j = Hashtbl.find index callee in
          if not (Digraph.has_edge call_graph ~src:i ~dst:j) then
            ignore (Digraph.add_edge call_graph ~src:i ~dst:j ~label:()))
        (callees_of_proc by_name p))
    procs;
  { procs; by_name; index; main = penv.Sema.main; call_graph }

let of_source src = of_sema (Sema.parse_and_analyze src)

(* Diagnostic shim over [of_source]: every exception the frontend stack
   can raise on malformed input becomes a structured diagnostic.  The
   raising [of_source] stays as the thin compatibility API. *)
let of_source_result src : (t, S89_diag.Diag.t) result =
  let module D = S89_diag.Diag in
  match of_source src with
  | t -> Ok t
  | exception Lexer.Error (msg, line) -> Error (D.error ~line ~code:"LEX001" msg)
  | exception Parser.Parse_error (msg, line) -> Error (D.error ~line ~code:"PAR001" msg)
  | exception Sema.Error msg -> Error (D.error ~code:"SEM001" msg)
  | exception Lower.Error msg -> Error (D.error ~code:"LOW001" msg)
  | exception S89_graph.Node_split.Gave_up n ->
      Error
        (D.errorf ~code:"LOW002"
           ~hint:"the control flow is pathologically irreducible"
           "node splitting gave up with %d nodes" n)

let find t name =
  match Hashtbl.find_opt t.by_name name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Program.find: unknown unit %s" name)

let main_proc t = find t t.main

let procs t = Array.to_list t.procs

let callees t (p : proc) =
  let i = Hashtbl.find t.index p.name in
  List.map (fun j -> t.procs.(j).name) (Digraph.succs t.call_graph i)

(* SCCs of the call graph, callees-first; singletons without self loops are
   non-recursive. *)
let sccs t =
  List.map (fun comp -> List.map (fun i -> t.procs.(i)) comp) (Topo.scc t.call_graph)

let is_recursive t =
  List.exists
    (fun comp ->
      match comp with
      | [ i ] -> Digraph.has_edge t.call_graph ~src:i ~dst:i
      | _ -> true)
    (Topo.scc t.call_graph)

(* Procedures in bottom-up call-graph order (callees before callers).
   Recursive programs still get an order (SCC members in arbitrary relative
   order); the estimator decides how to handle them. *)
let bottom_up t = List.concat (sccs t)

(* Rebuild the program with transformed CFGs (used by the optimizer).
   The call graph is recomputed in case calls were removed. *)
let map_cfgs t f =
  let procs = Array.map (fun p -> { p with cfg = f p }) t.procs in
  let by_name = Hashtbl.create 8 and index = Hashtbl.create 8 in
  Array.iteri
    (fun i p ->
      Hashtbl.replace by_name p.name p;
      Hashtbl.replace index p.name i)
    procs;
  let call_graph = Digraph.create () in
  ignore (Digraph.add_nodes call_graph (Array.length procs));
  Array.iteri
    (fun i p ->
      List.iter
        (fun callee ->
          let j = Hashtbl.find index callee in
          if not (Digraph.has_edge call_graph ~src:i ~dst:j) then
            ignore (Digraph.add_edge call_graph ~src:i ~dst:j ~label:()))
        (callees_of_proc by_name p))
    procs;
  { procs; by_name; index; main = t.main; call_graph }
