(** Interprocedural estimation (§4, rule 2): procedures are visited
    bottom-up over the call graph and a call node's COST includes the
    callee's [TIME(START)]. *)

module Program = S89_frontend.Program
module Cost_model = S89_vm.Cost_model
module Analysis = S89_profiling.Analysis
module Freq = S89_profiling.Freq

(** Raised under the [Reject] policy when the call graph is recursive;
    carries the SCC's procedure names.  The paper defers recursion. *)
exception Recursion_unsupported of string list

(** The fixpoint iteration did not converge within [max_iter]. *)
exception No_convergence of string list

type recursion_policy =
  | Reject  (** the paper's stance *)
  | Fixpoint of { tol : float; max_iter : int }
      (** solve recursive TIME/VAR by fixed-point iteration over the SCC
          (the Sar87/Sar89 extension) *)

(** Loop-frequency variance source, per procedure (see
    {!Variance.freq_var_model}). *)
type freq_var_spec =
  | Zero
  | Geometric
  | Poisson
  | Uniform
  | Profiled of (string -> int -> float option)
      (** procedure → header → E[F²] per interval execution *)

(** Everything computed for one procedure. *)
type proc_est = {
  analysis : Analysis.t;
  freq : Freq.t;
  cost : float array;  (** COST(u) including callee times at call nodes *)
  time : Time_est.t;
  variance : Variance.t;
}

type t = {
  per_proc : (string, proc_est) Hashtbl.t;
  main : string;
}

(** How a memo layer (see {!Memo}, which sits above this module) plugs
    into the bottom-up traversal: fingerprint primitives plus the cache.
    A procedure's key is [fp_mix salt [fp_body p; fp_totals tot;
    callee-keys…]] with callees in first-appearance order, so a change
    invalidates exactly its callers' cone.  [fp_body] must not depend on
    the procedure's own name (renaming-only edits keep fingerprints).
    [fp_totals] also receives the procedure name so the implementation
    can cache by physical identity of the table (a memoized totals
    source returns the same value across re-analyses). *)
type memo_hooks = {
  fp_body : Program.proc -> int64;
  fp_totals : string -> (Analysis.cond, int) Hashtbl.t -> int64;
  fp_mix : string -> int64 list -> int64;
  find : int64 -> proc_est option;
  add : int64 -> proc_est -> unit;
}

(** Estimate every procedure of a program, callees first.

    @param cost_model architectural costs (default {!Cost_model.optimized})
    @param freq_var loop-frequency variance source (default [Zero])
    @param iteration_model paper's FREQ² vs. Wald (default paper)
    @param call_variance propagate callee VAR through rule 2 (default
      false — the paper's [VAR(COST(u)) = 0] assumption)
    @param recursion what to do on call-graph cycles (default [Reject])
    @param cost_override replace the model-derived local COST of original
      nodes ([proc name -> node -> cost]); used by the worked example
    @param memo demand-driven recomputation: each non-recursive procedure
      first consults the memo under its content fingerprint and commits
      the cached result on a hit — only the dirty cone of the call graph
      is recomputed.  Ignored (full recomputation) when [freq_var] is
      [Profiled] or [cost_override] is given, whose closures a
      fingerprint cannot see.  Recursive SCCs are always recomputed but
      still fingerprinted, so their callers memoize soundly.
    @param on_diag called with a warning for every procedure missing from
      [analyses] (skipped from the estimate, its calls treated as opaque
      zero-cost calls); defaults to logging
    @param totals per-procedure [TOTAL_FREQ] tables (from reconstruction,
      a database, or oracle counts) *)
val estimate :
  ?cost_model:Cost_model.t ->
  ?freq_var:freq_var_spec ->
  ?iteration_model:Variance.iteration_model ->
  ?call_variance:bool ->
  ?recursion:recursion_policy ->
  ?cost_override:(string -> int -> float) ->
  ?memo:memo_hooks ->
  ?on_diag:(S89_diag.Diag.t -> unit) ->
  Program.t ->
  (string, Analysis.t) Hashtbl.t ->
  totals:(string -> (Analysis.cond, int) Hashtbl.t) ->
  t

(** Per-procedure results.  Raises [Invalid_argument] on unknown names. *)
val proc_est : t -> string -> proc_est

(** The main program's estimate. *)
val main_est : t -> proc_est

(** Whole-program TIME: [TIME(START)] of the main program. *)
val program_time : t -> float

(** Whole-program VAR. *)
val program_var : t -> float

(** Whole-program STD_DEV. *)
val program_std_dev : t -> float
