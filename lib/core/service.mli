(** Checkpointed profiling batches over the crash-safe {!S89_store.Store}
    and a spool-directory daemon driving them.  The completed-run count
    in the store is the checkpoint: a killed batch restarted with
    [~resume:true] continues at seed [base + completed] and produces
    byte-identical estimates to an uninterrupted batch (run totals are
    integers; the conservation laws are linear). *)

module Supervise = S89_exec.Supervise
module Cost_model = S89_vm.Cost_model
module Diag = S89_diag.Diag

type progress = { completed : int; total : int }

type outcome =
  | Completed of { runs : int; report : string }
      (** all runs accumulated; [report] is the Figure-3 style estimate *)
  | Interrupted of { completed : int; total : int; partial : string option }
      (** [should_stop] fired; the WAL already holds every completed run.
          [partial] is the estimate over those runs (graceful degradation
          for deadline-expired jobs), [None] when no run completed *)

(** [batch ~resume ~runs ~seed ~dir source] profiles [source] [runs]
    times (seeds [seed..seed+runs-1]) into the store at [dir], appending
    each completed run to the WAL, then compacts and reports.

    Batch metadata ([source-fnv], [base-seed], [runs]) is persisted on
    first open and validated on resume: a non-empty store without
    [~resume:true] is refused ([DB005]); a resume whose program, seed or
    run count differs from the store's is refused ([DB004]).

    Per-procedure analysis runs under a {!Supervise} supervisor and is
    journaled to the store; a resumed batch pre-trips the circuit
    breaker for procedures journaled as failed so they degrade
    identically instead of being retried into a different result.

    [should_stop] is polled between runs — graceful shutdown returns
    [Interrupted] with everything already durable.

    [?memo] memoizes analysis and estimation (see {!Memo}): persisted
    [memo-%06d] summaries are loaded from the store on open (validating
    recomputations across restarts, [MEMO002] on mismatch) and fresh
    summaries are appended durably on completion.  Output is
    byte-identical with or without it.

    [?on_disk_fault] is forwarded to {!S89_store.Store.open_}: called
    once per degraded window when the store starts absorbing
    ENOSPC/EIO write failures into memory (an embedding service uses it
    to shed load while the batch keeps running). *)
val batch :
  ?policy:Supervise.policy ->
  ?on_event:(Supervise.event -> unit) ->
  ?fsync:bool ->
  ?compact_threshold:int ->
  ?cost_model:Cost_model.t ->
  ?should_stop:(unit -> bool) ->
  ?export:string ->
  ?memo:Memo.t ->
  ?on_disk_fault:(exn -> unit) ->
  resume:bool ->
  runs:int ->
  seed:int ->
  dir:string ->
  string ->
  (outcome, Diag.t) result

(** Default [on_event] for {!batch}: logs supervision events as SRV
    diagnostics (SRV002 breaker, SRV003 wedged, SRV006 restarts).
    Exposed so other service frontends (the TCP server) log through the
    same vocabulary. *)
val log_event : Supervise.event -> unit

type serve_stats = { jobs_done : int; jobs_failed : int }

(** [serve ~runs ~seed ~spool ~store_root ()] — spool-directory daemon:
    each non-hidden file in [spool] is one MF77 job, processed in name
    order with {!batch} (always [~resume:true], so a daemon killed
    mid-job finishes the job's batch on restart).  Completed jobs move
    to [spool/done/] with their report at [store_root/<job>.report];
    failed jobs move to [spool/failed/] with a [.err].  Polls every
    [poll_interval] seconds until [should_stop] fires, [max_jobs] jobs
    are processed, or — with [~idle_exit:true] (tests) — the spool is
    empty.

    One {!Memo.t} (created internally unless [?memo] is given) is shared
    across every job, so resubmitted or lightly-edited programs only
    recompute their dirty cone of the call graph.

    A failing spool scan (directory deleted, permissions revoked) is
    surfaced through [on_diag] as a one-shot [SRV005] warning — once per
    failure streak, re-armed by the next successful scan — instead of
    being silently swallowed.  [on_diag] defaults to logging. *)
val serve :
  ?policy:Supervise.policy ->
  ?fsync:bool ->
  ?cost_model:Cost_model.t ->
  ?poll_interval:float ->
  ?max_jobs:int ->
  ?idle_exit:bool ->
  ?should_stop:(unit -> bool) ->
  ?memo:Memo.t ->
  ?on_diag:(Diag.t -> unit) ->
  runs:int ->
  seed:int ->
  spool:string ->
  store_root:string ->
  unit ->
  serve_stats
