(** Memoized interprocedural analysis: per-procedure results keyed by
    content fingerprints (FNV-1a/64 of the lowered body chained with the
    ordered fingerprints of the callee summaries, the TOTAL_FREQ table
    and an option salt), so re-analysis of an edited program recomputes
    exactly the dirty cone of the call graph.  Thread-safe: the analysis
    layer may be probed from several pool domains. *)

module Program = S89_frontend.Program
module Analysis = S89_profiling.Analysis
module Diag = S89_diag.Diag

type t

type stats = {
  mutable hits : int;  (** full per-procedure results reused *)
  mutable misses : int;  (** dirty-cone recomputations *)
  mutable analysis_hits : int;  (** ECFG/CDG/FCDG builds skipped *)
  mutable analysis_misses : int;
  mutable warm_confirmed : int;
      (** recomputations that matched a persisted summary *)
  mutable warm_mismatches : int;  (** [MEMO002] determinism violations *)
}

(** [on_diag] receives [MEMO001] when two persisted stores disagree on
    one fingerprint and [MEMO002] when a recomputed result disagrees
    with a persisted summary (default: logs a warning). *)
val create : ?on_diag:(Diag.t -> unit) -> unit -> t

(** {1 Fingerprints} *)

(** FNV-1a/64 of the lowered body: unit kind, parameters and the
    marshaled CFG (lowering is deterministic, so equal sources give
    equal bytes).  Excludes the procedure's name — renaming-only edits
    keep fingerprints. *)
val body_fp : Program.proc -> int64

(** [body_fp] through a per-memo physical-identity cache: the second
    consumer of the same program version (the interprocedural pass,
    after {!Pipeline.create}) gets its fingerprints for free. *)
val body_fp_cached : t -> Program.proc -> int64

(** Fingerprint of a [TOTAL_FREQ] table (sorted; zero entries ignored). *)
val totals_fp : (Analysis.cond, int) Hashtbl.t -> int64

(** Chain a salt and an ordered fingerprint list into one key. *)
val mix : string -> int64 list -> int64

(** {1 Cache layers} *)

(** The full-result layer, as {!Interproc.estimate}'s [?memo] argument. *)
val hooks : t -> Interproc.memo_hooks

(** The analysis layer, keyed by {!body_fp} ({!Pipeline.create} uses it
    to skip the ECFG/CDG/FCDG build for unchanged bodies). *)
val find_analysis : t -> int64 -> Analysis.t option

val add_analysis : t -> int64 -> Analysis.t -> unit

(** Derived synthetic TOTAL_FREQ tables ({!Pipeline.static_totals} keys
    them by {!body_fp} mixed with a heuristics salt).  The cached table
    is returned as-is: consumers must treat it as read-only. *)
val find_static_totals : t -> int64 -> (Analysis.cond, int) Hashtbl.t option

val add_static_totals : t -> int64 -> (Analysis.cond, int) Hashtbl.t -> unit

(** {1 Persistence} *)

(** Install one persisted summary (from a store's memo records). *)
val load_summary : t -> fp:int64 -> name:string -> time:float -> var:float -> unit

(** Summaries created or changed since the last drain, oldest first, as
    [(fingerprint, name, TIME, VAR)] — what a service appends to its
    store. *)
val drain_summaries : t -> (int64 * string * float * float) list

(** Number of summaries currently held (persisted + fresh). *)
val summaries_loaded : t -> int

(** {1 Accounting} *)

val stats : t -> stats
val reset_stats : t -> unit
val pp_stats : Format.formatter -> t -> unit
