(* Interprocedural estimation (§4, rule 2):

   "If node u is a procedure or function call, then COST(u) =
   TIME(START) [of the callee] ... Rule 2 requires that the procedures be
   visited in a bottom-up traversal of the call graph."

   Recursion (which the paper defers) is either rejected or solved by
   fixed-point iteration over the call-graph SCC, following the remark
   that the Sar87/Sar89 treatment extends to this setting. *)

module Program = S89_frontend.Program
module Cost_model = S89_vm.Cost_model
module Analysis = S89_profiling.Analysis
module Freq = S89_profiling.Freq

exception Recursion_unsupported of string list
exception No_convergence of string list

module Diag = S89_diag.Diag

let log_src = Logs.Src.create "s89.interproc" ~doc:"interprocedural estimation"

module Log = (val Logs.src_log log_src : Logs.LOG)

type recursion_policy = Reject | Fixpoint of { tol : float; max_iter : int }

type freq_var_spec =
  | Zero
  | Geometric
  | Poisson
  | Uniform
  | Profiled of (string -> int -> float option) (* proc -> header -> E[F²] *)

type proc_est = {
  analysis : Analysis.t;
  freq : Freq.t;
  cost : float array;
  time : Time_est.t;
  variance : Variance.t;
}

type t = {
  per_proc : (string, proc_est) Hashtbl.t;
  main : string;
}

(* The memo layer (see [Memo]) is below this module in the dependency
   order, so it plugs in through a hook record: fingerprint primitives
   plus the cache itself.  [fp_body] must not depend on the procedure's
   name (renaming-only edits keep fingerprints); [fp_mix] folds a salt
   and an ordered fingerprint list into one key. *)
type memo_hooks = {
  fp_body : Program.proc -> int64;
  fp_totals : string -> (Analysis.cond, int) Hashtbl.t -> int64;
      (* the procedure name keys a physical-identity cache: a memoized
         totals source returns the same table value across re-analyses *)
  fp_mix : string -> int64 list -> int64;
  find : int64 -> proc_est option;
  add : int64 -> proc_est -> unit;
}

let freq_var_model (spec : freq_var_spec) (proc : string) : Variance.freq_var_model =
  match spec with
  | Zero -> Variance.Zero
  | Geometric -> Variance.Geometric
  | Poisson -> Variance.Poisson
  | Uniform -> Variance.Uniform
  | Profiled f -> Variance.Profiled (f proc)

(* everything a result depends on besides body/callees/totals, folded
   into the fingerprint salt so one memo serves mixed option sets *)
let options_salt cost_model freq_var iteration_model call_variance =
  let fv =
    match freq_var with
    | Zero -> "zero"
    | Geometric -> "geometric"
    | Poisson -> "poisson"
    | Uniform -> "uniform"
    | Profiled _ -> "profiled"
  in
  let im =
    match iteration_model with
    | Variance.Paper_correlated -> "corr"
    | Variance.Independent -> "indep"
  in
  let c = cost_model in
  Printf.sprintf "%s|%s|%b|%s:%d.%d.%d.%d.%d.%d.%d.%d.%d.%d.%d.%d.%d.%d.%d.%d.%d.%d.%d"
    fv im call_variance c.Cost_model.name c.Cost_model.c_const c.Cost_model.c_var
    c.Cost_model.c_assign c.Cost_model.c_index c.Cost_model.c_elem c.Cost_model.c_add
    c.Cost_model.c_mul c.Cost_model.c_div c.Cost_model.c_pow c.Cost_model.c_rel
    c.Cost_model.c_logic c.Cost_model.c_neg c.Cost_model.c_branch c.Cost_model.c_goto
    c.Cost_model.c_call c.Cost_model.c_intrinsic_cheap c.Cost_model.c_intrinsic_moderate
    c.Cost_model.c_intrinsic_expensive c.Cost_model.c_print

let estimate ?(cost_model = Cost_model.optimized) ?(freq_var = Zero)
    ?(iteration_model = Variance.Paper_correlated) ?(call_variance = false)
    ?(recursion = Reject) ?cost_override ?memo
    ?(on_diag = fun d -> Log.warn (fun m -> m "%a" Diag.pp d))
    (prog : Program.t) (analyses : (string, Analysis.t) Hashtbl.t)
    ~(totals : string -> (Analysis.cond, int) Hashtbl.t) : t =
  (* graceful degradation: a procedure with no analysis (skipped by
     [Pipeline.create] after an analysis failure) is left out of the
     estimate and its calls are treated as opaque, zero-cost calls —
     with a warning, not a crash *)
  let analyzed name = Hashtbl.mem analyses name in
  Array.iter
    (fun (p : Program.proc) ->
      if not (analyzed p.Program.name) then
        on_diag
          (Diag.warningf ~proc:p.Program.name ~code:"ANA003"
             ~hint:"its callers see an opaque call with TIME 0"
             "procedure has no analysis; excluded from the estimate"))
    prog.Program.procs;
  (* callees degrade to opaque calls, but the main program is the root
     of the estimate: without its analysis there is no program TIME at
     all, so that failure is structural, not degradable *)
  if not (analyzed prog.Program.main) then
    raise
      (Analysis.Unanalyzable
         { proc = prog.Program.main;
           reason = "main program has no analysis; nothing to estimate" });
  (* [totals] may compute (oracle reconstruction); the fingerprint and
     the frequency pass both consume it, so cache per procedure *)
  let totals_cache = Hashtbl.create 8 in
  let totals name =
    match Hashtbl.find_opt totals_cache name with
    | Some t -> t
    | None ->
        let t = totals name in
        Hashtbl.replace totals_cache name t;
        t
  in
  (* a [Profiled] freq-var spec and a cost override are closures the
     fingerprint cannot see, so those paths stay unmemoized *)
  let memo =
    match (memo, freq_var, cost_override) with
    | (Some _ as m), (Zero | Geometric | Poisson | Uniform), None -> m
    | _ -> None
  in
  let salt = options_salt cost_model freq_var iteration_model call_variance in
  let fp_of = Hashtbl.create 8 in
  (* an unanalyzed callee degrades to an opaque call; its sentinel
     fingerprint still keys callers, and flips when it becomes analyzable *)
  let callee_fp h name =
    match Hashtbl.find_opt fp_of name with
    | Some fp -> fp
    | None -> h.fp_mix ("opaque:" ^ name) []
  in
  let proc_key h (p : Program.proc) =
    let name = p.Program.name in
    let callees = List.map (callee_fp h) (Program.callees prog p) in
    h.fp_mix salt (h.fp_body p :: h.fp_totals name (totals name) :: callees)
  in
  let time_of = Hashtbl.create 8 and var_of = Hashtbl.create 8 in
  let callee_time name =
    match Hashtbl.find_opt time_of name with Some t -> t | None -> 0.0
  in
  let callee_var name =
    match Hashtbl.find_opt var_of name with Some v -> v | None -> 0.0
  in
  let per_proc = Hashtbl.create 8 in
  let freqs = Hashtbl.create 8 in
  let estimate_proc (p : Program.proc) : proc_est =
    let name = p.Program.name in
    let a = Hashtbl.find analyses name in
    let freq =
      match Hashtbl.find_opt freqs name with
      | Some f -> f
      | None ->
          let f = Freq.compute a (totals name) in
          Hashtbl.replace freqs name f;
          f
    in
    let override =
      match cost_override with Some f -> Some (f name) | None -> None
    in
    let base = Cost.local_costs ?override cost_model a in
    let ecfg = a.Analysis.ecfg in
    let cfg = S89_cfg.Ecfg.cfg ecfg in
    let n = S89_cfg.Cfg.num_nodes cfg in
    let cost = Array.copy base in
    let cost_var = if call_variance then Some (Array.make n 0.0) else None in
    for u = 0 to n - 1 do
      if S89_cfg.Ecfg.is_original ecfg u then begin
        let sites = Cost.call_sites prog.Program.by_name (S89_cfg.Cfg.info cfg u) in
        List.iter
          (fun callee ->
            cost.(u) <- cost.(u) +. callee_time callee;
            match cost_var with
            | Some cv -> cv.(u) <- cv.(u) +. callee_var callee
            | None -> ())
          sites
      end
    done;
    let time = Time_est.compute a freq ~cost in
    let variance =
      Variance.compute ~freq_var:(freq_var_model freq_var name) ~iteration_model
        ?cost_var a freq time
    in
    { analysis = a; freq; cost; time; variance }
  in
  let commit (p : Program.proc) est =
    Hashtbl.replace per_proc p.Program.name est;
    Hashtbl.replace time_of p.Program.name (Time_est.total_time est.time est.analysis);
    Hashtbl.replace var_of p.Program.name (Variance.total_var est.variance est.analysis)
  in
  List.iter
    (fun scc ->
      (* un-analyzed members are skipped; what remains of the SCC is
         estimated (an un-analyzed member breaks the recursive cycle, so
         the remainder is treated as recursive only if it still is) *)
      let scc = List.filter (fun p -> analyzed p.Program.name) scc in
      let recursive =
        match scc with
        | [] -> false
        | [ p ] -> List.mem p.Program.name (Program.callees prog p)
        | _ -> true
      in
      if not recursive then
        match scc with
        | [] -> ()
        | [ p ] -> (
            match memo with
            | None -> commit p (estimate_proc p)
            | Some h -> (
                let key = proc_key h p in
                Hashtbl.replace fp_of p.Program.name key;
                match h.find key with
                | Some est ->
                    (* re-bind the entry to this program's procedure:
                       fingerprints ignore names, so the hit may come
                       from a renamed (or identically-bodied) procedure,
                       and reports print [analysis.proc.name] *)
                    commit p
                      { est with analysis = { est.analysis with Analysis.proc = p } }
                | None ->
                    let est = estimate_proc p in
                    h.add key est;
                    commit p est))
        | _ -> assert false
      else begin
        (* recursive SCCs are estimated by fixpoint, never memoized, but
           their members still need fingerprints so callers above them
           can key their own entries: any change to any member body,
           member totals or external callee invalidates the whole cone *)
        (match memo with
        | None -> ()
        | Some h ->
            let parts =
              List.concat_map
                (fun (p : Program.proc) ->
                  [ h.fp_body p; h.fp_totals p.Program.name (totals p.Program.name) ])
                scc
            in
            let in_scc c = List.exists (fun (q : Program.proc) -> q.Program.name = c) scc in
            let ext =
              List.concat_map
                (fun p ->
                  List.filter_map
                    (fun c -> if in_scc c then None else Some (callee_fp h c))
                    (Program.callees prog p))
                scc
            in
            let scc_fp = h.fp_mix ("scc|" ^ salt) (parts @ ext) in
            List.iter
              (fun (p : Program.proc) ->
                Hashtbl.replace fp_of p.Program.name
                  (h.fp_mix "scc-member"
                     [ h.fp_body p; h.fp_totals p.Program.name (totals p.Program.name); scc_fp ]))
              scc);
        let names = List.map (fun p -> p.Program.name) scc in
        match recursion with
        | Reject -> raise (Recursion_unsupported names)
        | Fixpoint { tol; max_iter } ->
            List.iter
              (fun p ->
                Hashtbl.replace time_of p.Program.name 0.0;
                Hashtbl.replace var_of p.Program.name 0.0)
              scc;
            let rec iterate k =
              if k > max_iter then raise (No_convergence names);
              let delta = ref 0.0 in
              let ests =
                List.map
                  (fun p ->
                    let est = estimate_proc p in
                    let t = Time_est.total_time est.time est.analysis in
                    let prev = callee_time p.Program.name in
                    delta := Float.max !delta (Float.abs (t -. prev) /. Float.max 1.0 t);
                    (p, est))
                  scc
              in
              List.iter (fun (p, est) -> commit p est) ests;
              if !delta > tol then iterate (k + 1)
            in
            iterate 1
      end)
    (Program.sccs prog);
  { per_proc; main = prog.Program.main }

let proc_est t name =
  match Hashtbl.find_opt t.per_proc name with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Interproc.proc_est: unknown procedure %s" name)

let main_est t = proc_est t t.main

(* headline numbers: the whole program's average time and deviation *)
let program_time t =
  let e = main_est t in
  Time_est.total_time e.time e.analysis

let program_var t =
  let e = main_est t in
  Variance.total_var e.variance e.analysis

let program_std_dev t = sqrt (program_var t)
