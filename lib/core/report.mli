(** Figure-3-style reports: the FCDG annotated with [<FREQ, TOTAL_FREQ>]
    per edge and [[COST, TIME, E[T²], VAR, STD_DEV]] per node, as text or
    Graphviz DOT. *)

module Program = S89_frontend.Program
module Analysis = S89_profiling.Analysis

(** Human-readable node description (START/STOP/PREHEADER(h)/POSTEXIT(h)
    or the statement text). *)
val describe_node : Analysis.t -> int -> string

(** One procedure's annotated FCDG, in topological order. *)
val pp_proc : Format.formatter -> Interproc.proc_est -> unit

(** The whole program: headline TIME/STD_DEV plus every procedure. *)
val pp : Format.formatter -> Interproc.t -> unit

(** Annotated FCDG as DOT (Figure 3). *)
val fcdg_dot : Interproc.proc_est -> string

(** ECFG as DOT (Figure 2); pseudo edges render dashed. *)
val ecfg_dot : Analysis.t -> string

(** Original CFG as DOT (Figure 1). *)
val cfg_dot : Program.proc -> string

(** gprof-style flat profile (after [GKM82], which the paper cites):
    calls, TIME and STD_DEV per call, cumulative share per procedure. *)
val flat_profile : Format.formatter -> Interproc.t -> unit

(** Per-node estimates as CSV
    ([procedure,node,kind,cost,time,e_t2,var,std_dev,node_freq]). *)
val csv : Interproc.t -> string

(** PGO self-accuracy summary: cycles and FALLBACK escapes before/after,
    the predicted vs. measured cycle delta and the relative prediction
    error — the estimator predicting its own reoptimization speedup. *)
val pp_pgo : Format.formatter -> Pipeline.pgo_result -> unit

(** Statement-level hotspots: self time = COST × NODE_FREQ × relative
    invocations, per main-program run.  Returns the top-[top] rows
    [(procedure, node, description, self_time, share%)]. *)
val hotspots : ?top:int -> Interproc.t -> (string * int * string * float * float) list

val pp_hotspots : ?top:int -> Format.formatter -> Interproc.t -> unit
