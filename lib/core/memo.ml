(* Memoized interprocedural analysis: per-procedure results keyed by
   content fingerprints, so re-analyzing an edited program only
   recomputes the dirty cone of the call graph.

   A procedure's fingerprint is FNV-1a/64 of its body (the marshaled
   analyzed unit: kind, params, decls, sema-rewritten statements — the
   name is deliberately excluded, so renaming-only edits keep
   fingerprints) chained with the ordered fingerprints of its callee
   summaries, its TOTAL_FREQ table and an option salt.  A body edit
   therefore invalidates exactly the editing procedure and its callers'
   cone; everything else hits.

   Three cache layers:
   - [entries]: full {!Interproc.proc_est} results keyed by the full
     fingerprint — a hit skips frequency, cost, TIME and VAR computation
     outright ({!Interproc.estimate}'s [?memo] hooks);
   - [analyses]: {!S89_profiling.Analysis.t} keyed by the body
     fingerprint alone — a hit skips the ECFG/CDG/FCDG build
     ({!Pipeline.create}'s [?memo]), which dominates cold analysis;
   - [statics]: derived static-frequency TOTAL_FREQ tables keyed by the
     body fingerprint mixed with a heuristics salt
     ({!Pipeline.static_totals}).

   A third, persistence-facing layer holds (fingerprint, TIME, VAR)
   summaries loaded from a store's memo records: full results are not
   serializable (they hold graphs and closures), so a warm start does
   not skip work across processes — instead every recomputation is
   checked against the persisted summary (a mismatch is a determinism
   violation, [MEMO002]) and the summaries drive dirty-cone accounting
   in [ptranc analyze --memo].

   All operations take an internal mutex: [Pipeline.create ?pool] may
   probe the analysis layer from several domains. *)

module Program = S89_frontend.Program
module Ast = S89_frontend.Ast
module Sema = S89_frontend.Sema
module Analysis = S89_profiling.Analysis
module Database = S89_profiling.Database
module Diag = S89_diag.Diag

let fnv64 = Database.fnv64

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable analysis_hits : int;
  mutable analysis_misses : int;
  mutable warm_confirmed : int;
  mutable warm_mismatches : int;
}

type summary = { s_name : string; s_time : float; s_var : float }

type t = {
  entries : (int64, Interproc.proc_est) Hashtbl.t;
  analyses : (int64, Analysis.t) Hashtbl.t;
  summaries : (int64, summary) Hashtbl.t;
  mutable fresh : (int64 * summary) list; (* newest first; drained for persistence *)
  fp_cache : (string, Program.proc * int64) Hashtbl.t; (* see [body_fp_cached] *)
  tfp_cache : (string, (Analysis.cond, int) Hashtbl.t * int64) Hashtbl.t;
      (* totals fingerprints by physical identity of the table *)
  statics : (int64, (Analysis.cond, int) Hashtbl.t) Hashtbl.t;
      (* synthetic TOTAL_FREQ tables, keyed by body fp mixed with a
         heuristics salt (see {!Pipeline.static_totals}) *)
  on_diag : Diag.t -> unit;
  stats : stats;
  mu : Mutex.t;
}

let log_src = Logs.Src.create "s89.memo" ~doc:"memoized analysis"

module Log = (val Logs.src_log log_src : Logs.LOG)

let create ?(on_diag = fun d -> Log.warn (fun m -> m "%a" Diag.pp d)) () =
  {
    entries = Hashtbl.create 64;
    analyses = Hashtbl.create 64;
    summaries = Hashtbl.create 64;
    fresh = [];
    fp_cache = Hashtbl.create 64;
    tfp_cache = Hashtbl.create 64;
    statics = Hashtbl.create 64;
    on_diag;
    stats =
      {
        hits = 0;
        misses = 0;
        analysis_hits = 0;
        analysis_misses = 0;
        warm_confirmed = 0;
        warm_mismatches = 0;
      };
    mu = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* ---------------- fingerprints ---------------- *)

(* The body bytes: the marshaled analyzed unit (kind, parameters, decls
   and the sema-rewritten body -- PARAMETER substitution and call/array
   resolution already applied), with the unit name blanked out.  The
   analyzed unit fully determines the lowered CFG and lowering is
   deterministic, so equal bytes mean identical analysis inputs; it is
   also 2x smaller than the CFG (no duplicated edge lists), which
   matters because the fingerprint is on the warm path of every
   re-analysis.  The AST is pure data -- records, lists and variants,
   no closures or cycles -- so [Marshal] with [No_sharing] is safe and
   depends only on structure, not on physical sharing.  A FUNCTION's
   body references its own name as the result variable, so renaming a
   FUNCTION changes its fingerprint; SUBROUTINE/PROGRAM renames keep
   it. *)
let body_fp (p : Program.proc) : int64 =
  (* [Digest] first: MD5 runs at C speed, while [fnv64] is a per-byte
     OCaml loop over boxed [Int64]s — fine for 16 bytes, painful for a
     whole marshaled unit. *)
  fnv64
    (Digest.string
       (Marshal.to_string
          { p.Program.env.Sema.unit_ with Ast.name = "" }
          [ Marshal.No_sharing ]))

(* [body_fp] is pure but not free (it marshals the whole unit), and both
   {!Pipeline.create} and {!Interproc.estimate} need it for every
   procedure of the same program version.  A physical-identity cache
   keyed by procedure name makes the second pass free; a re-parsed
   program has fresh procedure values, so its entries simply overwrite
   the previous version's (the cache never holds more than one program's
   worth). *)
let body_fp_cached t (p : Program.proc) : int64 =
  locked t (fun () ->
      match Hashtbl.find_opt t.fp_cache p.Program.name with
      | Some (p', fp) when p' == p -> fp
      | _ ->
          let fp = body_fp p in
          Hashtbl.replace t.fp_cache p.Program.name (p, fp);
          fp)

let totals_fp (tbl : (Analysis.cond, int) Hashtbl.t) : int64 =
  let rows =
    Hashtbl.fold
      (fun (u, l) c acc ->
        if c = 0 then acc (* absent and explicit-zero entries are the same profile *)
        else Printf.sprintf "%d %s %d" u (S89_cfg.Label.to_string l) c :: acc)
      tbl []
  in
  (* Digest first, as in [body_fp]: the row dump is KBs for a hot
     procedure and this runs for every procedure on every re-analysis *)
  fnv64 (Digest.string (String.concat "\n" (List.sort compare rows)))

(* [totals_fp] through the same kind of physical-identity cache as
   [body_fp_cached]: when the totals come from the memoized
   {!Pipeline.static_totals} layer, an unchanged procedure sees the very
   same table value across re-analyses and skips the row dump. *)
let totals_fp_cached t name tbl =
  locked t (fun () ->
      match Hashtbl.find_opt t.tfp_cache name with
      | Some (tbl', fp) when tbl' == tbl -> fp
      | _ ->
          let fp = totals_fp tbl in
          Hashtbl.replace t.tfp_cache name (tbl, fp);
          fp)

let mix salt parts =
  let b = Buffer.create 64 in
  Buffer.add_string b salt;
  List.iter
    (fun fp ->
      Buffer.add_char b '|';
      Buffer.add_string b (Printf.sprintf "%016Lx" fp))
    parts;
  fnv64 (Buffer.contents b)

(* ---------------- the full-result layer ---------------- *)

let totals_of (est : Interproc.proc_est) =
  let a = est.Interproc.analysis in
  ( Time_est.total_time est.Interproc.time a,
    Variance.total_var est.Interproc.variance a )

(* summaries are compared after a text round-trip, so use the same
   lossless [%h] encoding the store records use *)
let same_float a b = Printf.sprintf "%h" a = Printf.sprintf "%h" b

let find t fp =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries fp with
      | Some e ->
          t.stats.hits <- t.stats.hits + 1;
          Some e
      | None ->
          t.stats.misses <- t.stats.misses + 1;
          None)

let add t fp (est : Interproc.proc_est) =
  locked t (fun () ->
      Hashtbl.replace t.entries fp est;
      let name = est.Interproc.analysis.Analysis.proc.Program.name in
      let time, var = totals_of est in
      let s = { s_name = name; s_time = time; s_var = var } in
      (match Hashtbl.find_opt t.summaries fp with
      | Some prev ->
          if same_float prev.s_time time && same_float prev.s_var var then
            t.stats.warm_confirmed <- t.stats.warm_confirmed + 1
          else begin
            t.stats.warm_mismatches <- t.stats.warm_mismatches + 1;
            t.on_diag
              (Diag.errorf ~proc:name ~code:"MEMO002"
                 ~hint:"the persisted memo summary is stale or the analysis is nondeterministic"
                 "recomputed result for fingerprint %016Lx disagrees with the \
                  persisted summary (TIME %g vs %g, VAR %g vs %g)"
                 fp time prev.s_time var prev.s_var);
            Hashtbl.replace t.summaries fp s;
            t.fresh <- (fp, s) :: t.fresh
          end
      | None ->
          Hashtbl.replace t.summaries fp s;
          t.fresh <- (fp, s) :: t.fresh))

let hooks t : Interproc.memo_hooks =
  {
    Interproc.fp_body = body_fp_cached t;
    fp_totals = totals_fp_cached t;
    fp_mix = mix;
    find = find t;
    add = add t;
  }

(* ---------------- the analysis layer ---------------- *)

let find_analysis t fp =
  locked t (fun () ->
      match Hashtbl.find_opt t.analyses fp with
      | Some a ->
          t.stats.analysis_hits <- t.stats.analysis_hits + 1;
          Some a
      | None ->
          t.stats.analysis_misses <- t.stats.analysis_misses + 1;
          None)

let add_analysis t fp a = locked t (fun () -> Hashtbl.replace t.analyses fp a)

(* derived static-frequency totals (the caller keys them by body fp
   mixed with a heuristics salt); a hit returns the cached table itself,
   which every consumer treats as read-only *)
let find_static_totals t fp = locked t (fun () -> Hashtbl.find_opt t.statics fp)

let add_static_totals t fp tbl =
  locked t (fun () -> Hashtbl.replace t.statics fp tbl)

(* ---------------- persistence glue ---------------- *)

let load_summary t ~fp ~name ~time ~var =
  locked t (fun () ->
      (* a shared memo (one daemon, many stores) can see two stores
         disagree on one fingerprint: flag it, keep the newer record.
         Names may differ legitimately — fingerprints ignore renames. *)
      (match Hashtbl.find_opt t.summaries fp with
      | Some prev when not (same_float prev.s_time time && same_float prev.s_var var)
        ->
          t.on_diag
            (Diag.warningf ~proc:name ~code:"MEMO001"
               ~hint:"two stores persisted different results for the same fingerprint"
               "conflicting persisted memo summaries for fingerprint %016Lx \
                (TIME %g vs %g, VAR %g vs %g); keeping the newer"
               fp time prev.s_time var prev.s_var)
      | _ -> ());
      Hashtbl.replace t.summaries fp { s_name = name; s_time = time; s_var = var })

let drain_summaries t =
  locked t (fun () ->
      let out = List.rev t.fresh in
      t.fresh <- [];
      List.map (fun (fp, s) -> (fp, s.s_name, s.s_time, s.s_var)) out)

let summaries_loaded t = locked t (fun () -> Hashtbl.length t.summaries)

(* ---------------- accounting ---------------- *)

let stats t = t.stats

let reset_stats t =
  locked t (fun () ->
      t.stats.hits <- 0;
      t.stats.misses <- 0;
      t.stats.analysis_hits <- 0;
      t.stats.analysis_misses <- 0;
      t.stats.warm_confirmed <- 0;
      t.stats.warm_mismatches <- 0)

let pp_stats fmt t =
  let s = t.stats in
  Fmt.pf fmt
    "memo: %d hits, %d misses (dirty cone), %d/%d analysis hits/misses, %d \
     warm-confirmed, %d mismatches"
    s.hits s.misses s.analysis_hits s.analysis_misses s.warm_confirmed
    s.warm_mismatches
