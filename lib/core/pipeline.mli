(** End-to-end convenience API: parse/lower → analyses → profile →
    reconstruct → FREQ → TIME/VAR, interprocedurally. *)

module Program = S89_frontend.Program
module Interp = S89_vm.Interp
module Cost_model = S89_vm.Cost_model
module Analysis = S89_profiling.Analysis
module Placement = S89_profiling.Placement
module Reconstruct = S89_profiling.Reconstruct
module Database = S89_profiling.Database

module Diag = S89_diag.Diag

type t = {
  prog : Program.t;
  analyses : (string, Analysis.t) Hashtbl.t;  (** ECFG/CDG/FCDG per procedure *)
  diags : Diag.t list;
      (** one diagnostic per procedure whose analysis failed (empty under
          [~strict:true], which fails fast instead) *)
}

(** Build the analyses for an already-lowered program.  [?pool] analyzes
    procedures on separate domains (same result as sequential).

    By default a procedure whose analysis fails is skipped and recorded
    in {!diags} — the remaining procedures are still analyzed and the
    estimator treats the skipped procedure's calls as opaque.
    [~strict:true] restores fail-fast behaviour: the first analysis
    failure propagates as its original exception.

    [?supervisor] wraps each procedure's analysis in
    {!S89_exec.Supervise.protect}: transient failures restart with
    deterministic backoff, and a procedure whose circuit is open
    (repeated failures, or pre-tripped from a resumed batch's journal)
    is suppressed with an [SRV002] diagnostic and degrades like any
    other analysis failure.  [?journal] is invoked once per procedure on
    the calling domain, in procedure order, with ["ana <proc> ok"] or
    ["ana <proc> failed <CODE>"]. *)
val create :
  ?strict:bool ->
  ?pool:S89_exec.Pool.t ->
  ?supervisor:S89_exec.Supervise.t ->
  ?journal:(string -> unit) ->
  Program.t ->
  t

(** The per-procedure diagnostics collected by {!create}. *)
val diagnostics : t -> Diag.t list

(** Parse, analyze, lower and build the analyses from MF77 source. *)
val of_source :
  ?strict:bool ->
  ?pool:S89_exec.Pool.t ->
  ?supervisor:S89_exec.Supervise.t ->
  ?journal:(string -> unit) ->
  string ->
  t

(** Like {!of_source} but frontend failures come back as a structured
    diagnostic instead of an exception (analysis failures still degrade
    per procedure unless [~strict:true]). *)
val of_source_result :
  ?strict:bool ->
  ?pool:S89_exec.Pool.t ->
  ?supervisor:S89_exec.Supervise.t ->
  ?journal:(string -> unit) ->
  string ->
  (t, Diag.t) result

(** One uninstrumented VM run (its oracle counts serve as exact totals).
    [backend] selects the execution engine (default {!Interp.Compiled});
    all backends are observationally identical, so results never depend
    on the choice. *)
val run_once :
  ?cost_model:Cost_model.t ->
  ?seed:int ->
  ?backend:Interp.backend ->
  t ->
  Interp.t

(** The result of profiling with optimized counters. *)
type profile = {
  plan : Placement.t;
  counters : int array;  (** summed element-wise over all runs (linearity) *)
  runs : int;
  totals : (string, (Analysis.cond, int) Hashtbl.t) Hashtbl.t;
      (** reconstructed TOTAL_FREQ per procedure *)
  database : Database.t;  (** the same totals, as a persistable database *)
  avg_cycles : float;  (** instrumented cycles per run *)
}

(** Run [runs] instrumented executions (seeds [seed], [seed+1], ...) with
    the §3-optimized counter placement, sum the counters, reconstruct.
    [second_moments] additionally tracks [Σ(trips+1)²] per exit-free DO
    loop for loop-frequency variance. *)
val profile_smart :
  ?cost_model:Cost_model.t ->
  ?runs:int ->
  ?seed:int ->
  ?second_moments:bool ->
  ?backend:Interp.backend ->
  t ->
  profile

(** One instrumented run against an existing [plan], reconstructed alone
    — the persistence unit of the batch service's WAL.  By linearity,
    accumulating per-run totals over seeds [s..s+n-1] equals
    [profile_smart ~runs:n ~seed:s]. *)
val profile_run :
  ?cost_model:Cost_model.t ->
  ?backend:Interp.backend ->
  plan:Placement.t ->
  seed:int ->
  t ->
  (string, (Analysis.cond, int) Hashtbl.t) Hashtbl.t

(** Estimate from a smart profile.  When [use_second_moments] (default
    true) the profiled E[F²] feeds [VAR(FREQ)] for the tracked loops. *)
val estimate_profiled :
  ?cost_model:Cost_model.t ->
  ?iteration_model:Variance.iteration_model ->
  ?call_variance:bool ->
  ?recursion:Interproc.recursion_policy ->
  ?use_second_moments:bool ->
  t ->
  profile ->
  Interproc.t

(** Estimate straight from an uninstrumented run's oracle counts
    (exactness: [program_time] then equals the measured cycles). *)
val estimate_oracle :
  ?cost_model:Cost_model.t ->
  ?freq_var:Interproc.freq_var_spec ->
  ?iteration_model:Variance.iteration_model ->
  ?call_variance:bool ->
  ?recursion:Interproc.recursion_policy ->
  ?cost_override:(string -> int -> float) ->
  t ->
  Interp.t ->
  Interproc.t

(** Estimate from explicit per-procedure totals (e.g. a loaded database
    or hand-written profiles like the paper's worked example). *)
val estimate_totals :
  ?cost_model:Cost_model.t ->
  ?freq_var:Interproc.freq_var_spec ->
  ?iteration_model:Variance.iteration_model ->
  ?call_variance:bool ->
  ?recursion:Interproc.recursion_policy ->
  ?cost_override:(string -> int -> float) ->
  t ->
  totals:(string -> (Analysis.cond, int) Hashtbl.t) ->
  Interproc.t
