(** End-to-end convenience API: parse/lower → analyses → profile →
    reconstruct → FREQ → TIME/VAR, interprocedurally. *)

module Program = S89_frontend.Program
module Interp = S89_vm.Interp
module Cost_model = S89_vm.Cost_model
module Analysis = S89_profiling.Analysis
module Placement = S89_profiling.Placement
module Reconstruct = S89_profiling.Reconstruct
module Database = S89_profiling.Database

module Diag = S89_diag.Diag

type t = {
  prog : Program.t;
  analyses : (string, Analysis.t) Hashtbl.t;  (** ECFG/CDG/FCDG per procedure *)
  diags : Diag.t list;
      (** one diagnostic per procedure whose analysis failed (empty under
          [~strict:true], which fails fast instead) *)
}

(** Build the analyses for an already-lowered program.  [?pool] analyzes
    procedures on separate domains (same result as sequential).

    By default a procedure whose analysis fails is skipped and recorded
    in {!diags} — the remaining procedures are still analyzed and the
    estimator treats the skipped procedure's calls as opaque.
    [~strict:true] restores fail-fast behaviour: the first analysis
    failure propagates as its original exception.

    [?supervisor] wraps each procedure's analysis in
    {!S89_exec.Supervise.protect}: transient failures restart with
    deterministic backoff, and a procedure whose circuit is open
    (repeated failures, or pre-tripped from a resumed batch's journal)
    is suppressed with an [SRV002] diagnostic and degrades like any
    other analysis failure.  [?journal] is invoked once per procedure on
    the calling domain, in procedure order, with ["ana <proc> ok"] or
    ["ana <proc> failed <CODE>"].

    [?memo] consults the memo's analysis layer under each procedure's
    body fingerprint: a hit reuses the cached ECFG/CDG/FCDG and only
    changed bodies are rebuilt.  Procedures whose circuit breaker is
    open skip the memo and degrade with [SRV002] as usual. *)
val create :
  ?strict:bool ->
  ?pool:S89_exec.Pool.t ->
  ?supervisor:S89_exec.Supervise.t ->
  ?journal:(string -> unit) ->
  ?memo:Memo.t ->
  Program.t ->
  t

(** The per-procedure diagnostics collected by {!create}. *)
val diagnostics : t -> Diag.t list

(** Parse, analyze, lower and build the analyses from MF77 source. *)
val of_source :
  ?strict:bool ->
  ?pool:S89_exec.Pool.t ->
  ?supervisor:S89_exec.Supervise.t ->
  ?journal:(string -> unit) ->
  ?memo:Memo.t ->
  string ->
  t

(** Like {!of_source} but frontend failures come back as a structured
    diagnostic instead of an exception (analysis failures still degrade
    per procedure unless [~strict:true]). *)
val of_source_result :
  ?strict:bool ->
  ?pool:S89_exec.Pool.t ->
  ?supervisor:S89_exec.Supervise.t ->
  ?journal:(string -> unit) ->
  ?memo:Memo.t ->
  string ->
  (t, Diag.t) result

(** One uninstrumented VM run (its oracle counts serve as exact totals).
    [backend] selects the execution engine (default {!Interp.Compiled});
    all backends are observationally identical, so results never depend
    on the choice. *)
val run_once :
  ?cost_model:Cost_model.t ->
  ?seed:int ->
  ?backend:Interp.backend ->
  t ->
  Interp.t

(** The result of profiling with optimized counters. *)
type profile = {
  plan : Placement.t;
  counters : int array;  (** summed element-wise over all runs (linearity) *)
  runs : int;
  totals : (string, (Analysis.cond, int) Hashtbl.t) Hashtbl.t;
      (** reconstructed TOTAL_FREQ per procedure *)
  database : Database.t;  (** the same totals, as a persistable database *)
  avg_cycles : float;  (** instrumented cycles per run *)
}

(** Run [runs] instrumented executions (seeds [seed], [seed+1], ...) with
    the §3-optimized counter placement, sum the counters, reconstruct.
    [second_moments] additionally tracks [Σ(trips+1)²] per exit-free DO
    loop for loop-frequency variance. *)
val profile_smart :
  ?cost_model:Cost_model.t ->
  ?runs:int ->
  ?seed:int ->
  ?second_moments:bool ->
  ?backend:Interp.backend ->
  t ->
  profile

(** One instrumented run against an existing [plan], reconstructed alone
    — the persistence unit of the batch service's WAL.  By linearity,
    accumulating per-run totals over seeds [s..s+n-1] equals
    [profile_smart ~runs:n ~seed:s]. *)
val profile_run :
  ?cost_model:Cost_model.t ->
  ?backend:Interp.backend ->
  plan:Placement.t ->
  seed:int ->
  t ->
  (string, (Analysis.cond, int) Hashtbl.t) Hashtbl.t

(** Estimate from a smart profile.  When [use_second_moments] (default
    true) the profiled E[F²] feeds [VAR(FREQ)] for the tracked loops. *)
val estimate_profiled :
  ?cost_model:Cost_model.t ->
  ?iteration_model:Variance.iteration_model ->
  ?call_variance:bool ->
  ?recursion:Interproc.recursion_policy ->
  ?use_second_moments:bool ->
  t ->
  profile ->
  Interproc.t

(** Estimate straight from an uninstrumented run's oracle counts
    (exactness: [program_time] then equals the measured cycles). *)
val estimate_oracle :
  ?cost_model:Cost_model.t ->
  ?freq_var:Interproc.freq_var_spec ->
  ?iteration_model:Variance.iteration_model ->
  ?call_variance:bool ->
  ?recursion:Interproc.recursion_policy ->
  ?cost_override:(string -> int -> float) ->
  t ->
  Interp.t ->
  Interproc.t

(** Static-frequency totals for {!estimate_totals}, no execution
    required.  With [?memo], each procedure's synthetic TOTAL_FREQ table
    is cached under its body fingerprint (salted with the heuristics):
    re-analysis recomputes tables only for changed bodies. *)
val static_totals :
  ?heuristics:Static_freq.heuristics ->
  ?memo:Memo.t ->
  t ->
  string ->
  (Analysis.cond, int) Hashtbl.t

(** Estimate from explicit per-procedure totals (e.g. a loaded database
    or hand-written profiles like the paper's worked example).  [?memo]
    makes the bottom-up traversal demand-driven: each procedure first
    consults the memo under its content fingerprint and only the dirty
    cone of the call graph is recomputed. *)
val estimate_totals :
  ?cost_model:Cost_model.t ->
  ?freq_var:Interproc.freq_var_spec ->
  ?iteration_model:Variance.iteration_model ->
  ?call_variance:bool ->
  ?recursion:Interproc.recursion_policy ->
  ?cost_override:(string -> int -> float) ->
  ?memo:Memo.t ->
  t ->
  totals:(string -> (Analysis.cond, int) Hashtbl.t) ->
  Interproc.t

(** {1 The PGO loop} *)

module Emit = S89_vm.Emit

(** Result of one {!pgo} round trip. *)
type pgo_result = {
  pgo_prog : Program.t;
      (** the reoptimized program (node-id-preserving: profiles of the
          input index it node-for-node) *)
  pgo_plan : Emit.plan;  (** frequency-derived emission plan *)
  pgo_freq : (string * int array) list;
      (** per-procedure node frequencies the plan was built from *)
  pgo_hot : string list;  (** hot procedures, heaviest first *)
  pgo_cycles_before : int;  (** simulated cycles of the baseline run *)
  pgo_cycles_after : int;  (** simulated cycles of the PGO'd run *)
  pgo_fallback_before : int;  (** bytecode FALLBACK escapes, baseline *)
  pgo_fallback_after : int;  (** bytecode FALLBACK escapes, PGO'd *)
  pgo_predicted_delta : int;
      (** estimator's closed-form prediction of the cycle delta:
          [sum execs(u) * (cost_old(u) - cost_new(u))] *)
  pgo_measured_delta : int;  (** [pgo_cycles_before - pgo_cycles_after] *)
}

(** Relative error of the prediction: [|predicted - measured| /
    |measured|] (0 when both are 0, 1 when only measured is). *)
val pgo_accuracy : pgo_result -> float

(** Derive an emission plan from per-procedure node frequencies: inline
    every executed user-CALL statement site (the emitter re-checks
    legality per site and falls back when it doesn't hold) and lay nodes
    out hottest-first.  Plans are observationally invisible — they change
    wall-clock speed only. *)
val plan_of_freq :
  ?inline_budget:int -> Program.t -> (string * int array) list -> Emit.plan

(** Close the loop: one uninstrumented bytecode run collects exact node
    frequencies, which feed the emission plan (hot leaf-call inlining +
    hot-first layout) and gate {!S89_vm.Optimize.reoptimize} on the
    procedures covering [hot_fraction] (default 0.9) of the cycle
    weight; the program is then re-run under the same seed.  Because
    reoptimization preserves node identity and frequencies, the
    estimator predicts its own cycle delta in closed form — the
    predicted/measured pair in the result is the reproduction's new
    self-accuracy metric.  [freq] substitutes loaded frequencies (a
    feedback file) for the collected ones when building the plan. *)
val pgo :
  ?cost_model:Cost_model.t ->
  ?seed:int ->
  ?inline_budget:int ->
  ?hot_fraction:float ->
  ?freq:(string * int array) list ->
  t ->
  pgo_result
