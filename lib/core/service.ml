(* Batch/daemon service layer: checkpointed profiling batches over the
   crash-safe store, and a spool-directory daemon driving them.

   A batch profiles one program [runs] times with seeds
   [seed .. seed+runs-1], appending each completed run's totals to the
   store's WAL as it finishes.  The completed-run count IS the
   checkpoint: a killed batch restarted with [~resume:true] picks up at
   seed [seed + Store.runs] and, because run totals are integers and all
   the conservation laws are linear, produces byte-identical estimates
   to an uninterrupted batch.

   Batch metadata ([source-fnv], [base-seed], [runs]) is persisted on
   the first open and validated on resume — resuming with a different
   program or seed would silently blend incompatible profiles (DB004).
   Resuming is explicit: opening a non-empty store without [~resume:true]
   is refused (DB005).

   Per-procedure analysis is wrapped in a {!S89_exec.Supervise}
   supervisor (restart-with-backoff + circuit breaker) and journaled to
   the store; a resumed batch pre-trips the breaker for procedures its
   journal recorded as failed, so they degrade to the opaque-callee path
   identically instead of being retried into a different result. *)

module Supervise = S89_exec.Supervise
module Store = S89_store.Store
module Database = S89_profiling.Database
module Placement = S89_profiling.Placement
module Cost_model = S89_vm.Cost_model
module Diag = S89_diag.Diag

let log_src = Logs.Src.create "s89.service" ~doc:"batch/daemon service"

module Log = (val Logs.src_log log_src : Logs.LOG)

type progress = { completed : int; total : int }

type outcome =
  | Completed of { runs : int; report : string }
  | Interrupted of { completed : int; total : int; partial : string option }

(* ---------------- batch ---------------- *)

let source_fnv source = Printf.sprintf "%016Lx" (Database.fnv64 source)

(* validate (or install) the batch metadata; [Error DB004/DB005] when the
   store belongs to a different batch or resume was not requested *)
let check_meta store ~resume ~source ~seed ~runs : (unit, Diag.t) result =
  let fresh = Store.runs store = 0 && Store.meta store = [] in
  if fresh then begin
    Store.set_meta store
      [ ("source-fnv", source_fnv source); ("base-seed", string_of_int seed);
        ("runs", string_of_int runs) ];
    Ok ()
  end
  else if not resume then
    Error
      (Diag.errorf ~code:"DB005"
         ~hint:"pass --resume to continue it, or use a fresh directory"
         "store already holds a batch (%d of %s runs done)" (Store.runs store)
         (Option.value ~default:"?" (Store.meta_find store "runs")))
  else
    let mismatch key actual =
      match Store.meta_find store key with
      | Some v when v <> actual -> Some (key, v, actual)
      | _ -> None
    in
    match
      List.filter_map Fun.id
        [ mismatch "source-fnv" (source_fnv source);
          mismatch "base-seed" (string_of_int seed);
          mismatch "runs" (string_of_int runs) ]
    with
    | [] -> Ok ()
    | (key, stored, given) :: _ ->
        Error
          (Diag.errorf ~code:"DB004"
             ~hint:"resume must use the original program, seed and run count"
             "batch mismatch on %s: store has %s, command line implies %s" key
             stored given)

(* procedures the journal recorded as failed in an earlier attempt *)
let journaled_failures store =
  List.filter_map
    (fun ev ->
      match String.split_on_char ' ' ev with
      | [ "ana"; proc; "failed"; _code ] -> Some proc
      | _ -> None)
    (Store.events store)

let log_event = function
  | Supervise.Restarted { key; attempt; delay; error } ->
      Log.warn (fun m ->
          m "[SRV006] restarting %s (attempt %d) in %.4fs after: %s" key attempt
            delay error)
  | Supervise.Tripped { key; failures } ->
      Log.warn (fun m ->
          m "[SRV002] circuit opened for %s after %d consecutive failures" key
            failures)
  | Supervise.Rejected_open { key } ->
      Log.info (fun m -> m "[SRV002] %s rejected: circuit open" key)
  | Supervise.Half_opened { key } ->
      Log.info (fun m -> m "[SRV002] %s half-open: admitting recovery probe" key)
  | Supervise.Closed { key } ->
      Log.info (fun m -> m "[SRV002] %s circuit closed: probe succeeded" key)
  | Supervise.Wedged { index; seconds } ->
      Log.warn (fun m ->
          m "[SRV003] item %d ran %.2fs past its heartbeat deadline" index seconds)

let render_report ?memo ~cost_model pipe db =
  let est =
    Pipeline.estimate_totals ?memo ~cost_model pipe
      ~totals:(Database.proc_totals db)
  in
  Fmt.str "%a" Report.pp est

(* durably record the memo's fresh summaries as memo-%06d records *)
let persist_memo store memo =
  List.iter
    (fun (fp, name, time, var) -> Store.append_memo store ~fp ~name ~time ~var)
    (Memo.drain_summaries memo)

let batch ?(policy = Supervise.default_policy) ?(on_event = log_event)
    ?(fsync = true) ?(compact_threshold = 64)
    ?(cost_model = Cost_model.optimized) ?(should_stop = fun () -> false)
    ?export ?memo ?on_disk_fault ~resume ~runs ~seed ~dir source :
    (outcome, Diag.t) result =
  if runs <= 0 then Error (Diag.error ~code:"CLI001" "runs must be positive")
  else
    let store = Store.open_ ~fsync ~compact_threshold ?on_disk_fault ~dir () in
    Fun.protect ~finally:(fun () -> Store.close store) @@ fun () ->
    List.iter (fun d -> Log.warn (fun m -> m "%a" Diag.pp d)) (Store.recovery_diags store);
    match check_meta store ~resume ~source ~seed ~runs with
    | Error d -> Error d
    | Ok () -> (
        (* a warm start: persisted memo summaries validate this batch's
           recomputations (MEMO002 on mismatch) and feed hit accounting *)
        Option.iter
          (fun m ->
            List.iter
              (fun (fp, name, time, var) ->
                Memo.load_summary m ~fp ~name ~time ~var)
              (Store.memos store))
          memo;
        let supervisor = Supervise.create ~policy ~on_event () in
        List.iter
          (fun proc -> Supervise.trip supervisor ~key:proc)
          (journaled_failures store);
        match
          Pipeline.of_source_result ~supervisor
            ~journal:(Store.append_event store) ?memo source
        with
        | Error d -> Error d
        | Ok pipe ->
            let plan = Placement.plan ~second_moments:true pipe.Pipeline.analyses in
            let stopped = ref false in
            (try
               for r = Store.runs store to runs - 1 do
                 if should_stop () then begin
                   stopped := true;
                   raise Exit
                 end;
                 let totals =
                   Pipeline.profile_run ~cost_model ~plan ~seed:(seed + r) pipe
                 in
                 Store.append_run store ~seed:(seed + r) totals
               done
             with Exit -> ());
            if !stopped then begin
              (* the WAL is already durable; report where we are, plus a
                 partial estimate over the runs that DID complete so a
                 deadline-expired job degrades gracefully instead of
                 discarding everything it computed *)
              Log.info (fun m ->
                  m "[SRV001] interrupted after %d/%d runs; WAL flushed"
                    (Store.runs store) runs);
              let partial =
                if Store.runs store > 0 then
                  Some
                    (render_report ?memo ~cost_model pipe (Store.database store))
                else None
              in
              Ok (Interrupted { completed = Store.runs store; total = runs; partial })
            end
            else begin
              Store.compact store;
              Option.iter (Store.export store) export;
              let report =
                render_report ?memo ~cost_model pipe (Store.database store)
              in
              Option.iter
                (fun m ->
                  persist_memo store m;
                  Log.info (fun m' -> m' "%a" Memo.pp_stats m))
                memo;
              Ok (Completed { runs = Store.runs store; report })
            end)

(* ---------------- serve ---------------- *)

(* One job = one MF77 source file dropped into the spool directory.  A
   processed job moves to [spool/done/] (or [spool/failed/] with a
   [.err] next to it); its report and store live under
   [store_root/<job>/].  Jobs always run with [~resume:true], so a
   daemon killed mid-job finishes that job's batch on restart. *)

type serve_stats = { jobs_done : int; jobs_failed : int }

let job_name file = Filename.remove_extension (Filename.basename file)

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let spool_jobs spool =
  match Sys.readdir spool with
  | exception Sys_error msg -> Error msg
  | files ->
      Ok
        (Array.to_list files
        |> List.filter (fun f ->
               String.length f > 0
               && f.[0] <> '.'
               (* a file may vanish between readdir and stat; skip it *)
               && (try not (Sys.is_directory (Filename.concat spool f))
                   with Sys_error _ -> false))
        |> List.sort compare)

let serve ?policy ?(fsync = true) ?(cost_model = Cost_model.optimized)
    ?(poll_interval = 0.2) ?max_jobs ?(idle_exit = false)
    ?(should_stop = fun () -> false) ?memo
    ?(on_diag = fun d -> Log.warn (fun m -> m "%a" Diag.pp d)) ~runs ~seed
    ~spool ~store_root () : serve_stats =
  (* one memo shared across every job the daemon processes: resubmitted
     or lightly-edited programs only recompute their dirty cone *)
  let memo = match memo with Some m -> m | None -> Memo.create () in
  mkdir_p spool;
  mkdir_p (Filename.concat spool "done");
  mkdir_p (Filename.concat spool "failed");
  mkdir_p store_root;
  let stats = ref { jobs_done = 0; jobs_failed = 0 } in
  let budget_left () =
    match max_jobs with
    | Some n -> !stats.jobs_done + !stats.jobs_failed < n
    | None -> true
  in
  let finish file ~ok =
    let dest = Filename.concat spool (if ok then "done" else "failed") in
    Sys.rename (Filename.concat spool file) (Filename.concat dest file)
  in
  let process file =
    let name = job_name file in
    let dir = Filename.concat store_root name in
    Log.info (fun m -> m "job %s: profiling %d runs into %s" name runs dir);
    match
      batch ?policy ~fsync ~cost_model ~should_stop ~memo ~resume:true ~runs
        ~seed ~dir
        (read_file (Filename.concat spool file))
    with
    | Ok (Completed { runs; report }) ->
        write_file (Filename.concat store_root (name ^ ".report")) report;
        finish file ~ok:true;
        stats := { !stats with jobs_done = !stats.jobs_done + 1 };
        Log.info (fun m -> m "job %s: completed (%d runs)" name runs)
    | Ok (Interrupted { completed; total; _ }) ->
        (* graceful shutdown mid-job: leave the job spooled; the next
           serve resumes it from the checkpoint *)
        Log.info (fun m ->
            m "[SRV001] job %s interrupted at %d/%d runs; will resume" name
              completed total)
    | Error d ->
        write_file
          (Filename.concat store_root (name ^ ".err"))
          (Diag.to_string d ^ "\n");
        finish file ~ok:false;
        stats := { !stats with jobs_failed = !stats.jobs_failed + 1 };
        Log.warn (fun m -> m "job %s: %a" name Diag.pp d)
    | exception e ->
        (* a crash in one job must not take the daemon down *)
        write_file
          (Filename.concat store_root (name ^ ".err"))
          (Printexc.to_string e ^ "\n");
        finish file ~ok:false;
        stats := { !stats with jobs_failed = !stats.jobs_failed + 1 };
        Log.err (fun m -> m "job %s: %s" name (Printexc.to_string e))
  in
  let running = ref true in
  (* one-shot: a failing spool scan warns once (SRV005), not once per
     poll tick; a successful scan re-arms the warning *)
  let spool_warned = ref false in
  let nap () =
    (* sleep in short slices so a signal is honoured promptly *)
    let slice = Float.min poll_interval 0.05 in
    let rec go left =
      if left > 0.0 && not (should_stop ()) then begin
        (try Unix.sleepf (Float.min slice left)
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go (left -. slice)
      end
    in
    go poll_interval
  in
  while !running do
    if should_stop () || not (budget_left ()) then running := false
    else
      match spool_jobs spool with
      | Error msg ->
          if not !spool_warned then begin
            spool_warned := true;
            on_diag
              (Diag.warningf ~code:"SRV005"
                 ~hint:"check that the spool directory exists and is readable"
                 "spool scan failed: %s" msg)
          end;
          if idle_exit then running := false else nap ()
      | Ok [] ->
          spool_warned := false;
          if idle_exit then running := false else nap ()
      | Ok jobs ->
          spool_warned := false;
          List.iter
            (fun file ->
              if (not (should_stop ())) && budget_left () then process file)
            jobs
  done;
  !stats
