(* End-to-end convenience API tying the whole reproduction together:

     source -> parse/lower -> analyses (ECFG/FCDG)
            -> profile (smart counters over N runs, or oracle counts)
            -> reconstruct TOTAL_FREQs -> FREQ
            -> COST/TIME/VAR bottom-up, interprocedurally.

   Because all the conservation laws are linear, counter arrays from
   several runs are summed element-wise and reconstructed once — this is
   exactly the paper's "accumulate the TOTAL_FREQ values (as a sum) from
   different program executions in the program database". *)

module Program = S89_frontend.Program
module Interp = S89_vm.Interp
module Cost_model = S89_vm.Cost_model
module Analysis = S89_profiling.Analysis
module Placement = S89_profiling.Placement
module Reconstruct = S89_profiling.Reconstruct
module Database = S89_profiling.Database

let log_src = Logs.Src.create "s89.pipeline" ~doc:"end-to-end pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Diag = S89_diag.Diag
module Fault = S89_util.Fault

type t = {
  prog : Program.t;
  analyses : (string, Analysis.t) Hashtbl.t;
  diags : Diag.t list;
}

(* per-procedure analysis failure -> structured diagnostic *)
let analysis_diag (name : string) : exn -> Diag.t = function
  | Fault.Injected msg ->
      Diag.error ~proc:name ~code:"FLT001" ~hint:"injected by S89_FAULTS" msg
  | S89_exec.Supervise.Circuit_open key ->
      Diag.errorf ~proc:name ~code:"SRV002"
        ~hint:"degraded to the opaque-callee path; closes on the next success"
        "analysis suppressed: circuit breaker open for %s" key
  | Analysis.Unanalyzable { proc; reason } -> Diag.error ~proc ~code:"ANA001" reason
  | S89_cfg.Ecfg.Nonterminating_interval h ->
      Diag.errorf ~proc:name ~code:"ANA002"
        ~hint:"the paper assumes all executions terminate"
        "interval with header %d has no exit edge" h
  | S89_graph.Node_split.Gave_up n ->
      Diag.errorf ~proc:name ~code:"ANA001" "node splitting gave up with %d nodes" n
  | e ->
      Diag.errorf ~proc:name ~code:"ANA001" "analysis failed: %s"
        (Printexc.to_string e)

(* Graceful degradation (default): a procedure whose analysis fails is
   recorded as a diagnostic and skipped — the rest of the program is
   still analyzed, and the estimator treats the skipped procedure's calls
   as opaque.  [~strict:true] restores fail-fast: the first failure
   propagates as its original exception. *)
(* [?supervisor] wraps each procedure's analysis in
   [Supervise.protect] — transient failures are restarted with
   deterministic backoff, and a procedure whose circuit breaker is open
   (repeated failures, or pre-tripped by a resumed batch's journal) is
   suppressed immediately and degrades to the ANA003 opaque-callee path.
   [?journal] is called once per procedure, on the calling domain and in
   procedure order (deterministic even under [?pool]), with
   ["ana <proc> ok"] or ["ana <proc> failed <CODE>"] — the batch
   checkpoint appends these to its WAL so a resumed batch knows which
   procedures already completed or failed. *)
(* [?memo] consults the memo's analysis layer under the body fingerprint
   before building anything: a hit reuses the cached ECFG/CDG/FCDG —
   re-bound to this program's procedure, since fingerprints ignore names
   — and only procedures with changed bodies are (re)built.  A procedure
   whose circuit breaker is open skips the memo so it degrades with
   [SRV002] exactly like an unmemoized run. *)
let create ?(strict = false) ?pool ?supervisor ?journal ?memo (prog : Program.t) :
    t =
  let procs = Array.of_list (Program.procs prog) in
  let memo_ok (p : Program.proc) =
    match supervisor with
    | Some s -> not (S89_exec.Supervise.breaker_open s ~key:p.Program.name)
    | None -> true
  in
  let fps =
    match memo with
    | None -> [||]
    | Some m -> Array.map (Memo.body_fp_cached m) procs
  in
  let attempt ((i, p) : int * Program.proc) : (Analysis.t, Diag.t) result =
    let cached =
      match memo with
      | Some m when memo_ok p -> Memo.find_analysis m fps.(i)
      | _ -> None
    in
    match cached with
    | Some a -> Ok { a with Analysis.proc = p }
    | None -> (
        let work () =
          match supervisor with
          | None -> Analysis.of_proc p
          | Some s ->
              S89_exec.Supervise.protect s ~key:p.Program.name (fun () ->
                  Analysis.of_proc p)
        in
        match work () with
        | a ->
            (match memo with
            | Some m when memo_ok p -> Memo.add_analysis m fps.(i) a
            | _ -> ());
            Ok a
        (* a malformed S89_FAULTS is a configuration error, not a
           per-procedure failure: degrading it would repeat the same
           message for every procedure and fake a partially-green run *)
        | exception (Fault.Bad_spec _ as e) -> raise e
        | exception e when not strict -> Error (analysis_diag p.Program.name e))
  in
  let indexed = Array.mapi (fun i p -> (i, p)) procs in
  let results =
    match pool with
    | Some pool -> S89_exec.Pool.map pool attempt indexed
    | None -> Array.map attempt indexed
  in
  let analyses = Hashtbl.create 8 in
  let diags = ref [] in
  Array.iteri
    (fun i r ->
      let name = procs.(i).Program.name in
      (match journal with
      | None -> ()
      | Some j -> (
          match r with
          | Ok _ -> j (Printf.sprintf "ana %s ok" name)
          | Error d -> j (Printf.sprintf "ana %s failed %s" name d.Diag.code)));
      match r with
      | Ok a -> Hashtbl.replace analyses name a
      | Error d ->
          Log.warn (fun m -> m "%a" Diag.pp d);
          diags := d :: !diags)
    results;
  { prog; analyses; diags = List.rev !diags }

let diagnostics t = t.diags

let of_source ?strict ?pool ?supervisor ?journal ?memo src =
  create ?strict ?pool ?supervisor ?journal ?memo (Program.of_source src)

(* frontend + analysis under one Result: a frontend failure is the single
   error; analysis failures degrade per procedure as in [create] *)
let of_source_result ?strict ?pool ?supervisor ?journal ?memo src :
    (t, Diag.t) result =
  match Program.of_source_result src with
  | Error d -> Error d
  | Ok prog -> (
      match create ?strict ?pool ?supervisor ?journal ?memo prog with
      | t -> Ok t
      | exception e ->
          (* only reachable under [~strict:true] *)
          Error (analysis_diag "" e))

(* ---------------- running ---------------- *)

(* one uninstrumented run; oracle counts serve as exact totals *)
let run_once ?(cost_model = Cost_model.optimized) ?(seed = 42)
    ?(backend = Interp.default_config.Interp.backend) t : Interp.t =
  let config = { Interp.default_config with cost_model; seed; backend } in
  let vm = Interp.create ~config t.prog in
  ignore (Interp.run vm);
  vm

type profile = {
  plan : Placement.t;
  counters : int array; (* summed over all runs *)
  runs : int;
  totals : (string, (Analysis.cond, int) Hashtbl.t) Hashtbl.t;
  database : Database.t;
  avg_cycles : float; (* instrumented cycles per run *)
}

(* profile with smart instrumentation over [runs] runs (seeds vary) *)
let profile_smart ?(cost_model = Cost_model.optimized) ?(runs = 1) ?(seed = 1)
    ?(second_moments = true) ?(backend = Interp.default_config.Interp.backend) t
    : profile =
  let plan = Placement.plan ~second_moments t.analyses in
  let sums = Array.make (Placement.n_counters plan) 0 in
  let cycles = ref 0 in
  for r = 0 to runs - 1 do
    let config =
      { Interp.default_config with cost_model; instr = Placement.probes plan;
        seed = seed + r; backend }
    in
    let vm = Interp.create ~config t.prog in
    ignore (Interp.run vm);
    cycles := !cycles + Interp.cycles vm;
    let cs = Interp.counters vm in
    (* the VM rounds its counter array up to length >= 1 even for an
       empty plan (a fully-degraded pipeline profiles nothing), so sum
       over the plan's counters, not the VM's *)
    for i = 0 to Array.length sums - 1 do
      sums.(i) <- sums.(i) + cs.(i)
    done
  done;
  Log.info (fun m ->
      m "profiled %d runs with %d counters (%.0f cycles/run)" runs
        (Placement.n_counters plan)
        (float_of_int !cycles /. float_of_int runs));
  let totals = Reconstruct.totals plan ~counters:sums in
  let database = Database.create () in
  Database.accumulate database totals;
  database.Database.runs <- runs;
  {
    plan;
    counters = sums;
    runs;
    totals;
    avg_cycles = float_of_int !cycles /. float_of_int runs;
    database;
  }

(* one instrumented run against an existing plan, reconstructed alone —
   the batch service journals each run's totals to its WAL, so the unit
   of persistence is a single run, not a whole profile.  Summing the
   per-run totals equals profiling all runs at once (linearity). *)
let profile_run ?(cost_model = Cost_model.optimized)
    ?(backend = Interp.default_config.Interp.backend) ~plan ~seed t :
    (string, (Analysis.cond, int) Hashtbl.t) Hashtbl.t =
  let config =
    { Interp.default_config with cost_model; instr = Placement.probes plan;
      seed; backend }
  in
  let vm = Interp.create ~config t.prog in
  ignore (Interp.run vm);
  let counters = Array.sub (Interp.counters vm) 0 (Placement.n_counters plan) in
  Reconstruct.totals plan ~counters

(* ---------------- estimation ---------------- *)

let totals_fn tbl name =
  match Hashtbl.find_opt tbl name with
  | Some t -> t
  | None -> Hashtbl.create 1

(* estimate from a smart profile (optionally with profiled loop-frequency
   variance from the second-moment counters) *)
let estimate_profiled ?(cost_model = Cost_model.optimized)
    ?(iteration_model = Variance.Paper_correlated) ?(call_variance = false)
    ?(recursion = Interproc.Reject) ?(use_second_moments = true) t (p : profile) :
    Interproc.t =
  let freq_var =
    if not use_second_moments then Interproc.Zero
    else
      Interproc.Profiled
        (fun proc header ->
          match Hashtbl.find_opt p.totals proc with
          | None -> None
          | Some tot ->
              List.assoc_opt header
                (Reconstruct.loop_second_moments p.plan ~counters:p.counters proc tot))
  in
  Interproc.estimate ~cost_model ~freq_var ~iteration_model ~call_variance ~recursion
    t.prog t.analyses ~totals:(totals_fn p.totals)

(* estimate straight from an uninstrumented run's oracle counts *)
let estimate_oracle ?(cost_model = Cost_model.optimized) ?(freq_var = Interproc.Zero)
    ?(iteration_model = Variance.Paper_correlated) ?(call_variance = false)
    ?(recursion = Interproc.Reject) ?cost_override t (vm : Interp.t) : Interproc.t =
  let totals name =
    let a = Hashtbl.find t.analyses name in
    Analysis.oracle_totals a vm
  in
  Interproc.estimate ~cost_model ~freq_var ~iteration_model ~call_variance ~recursion
    ?cost_override t.prog t.analyses ~totals

(* Static-frequency totals ready for [estimate_totals].  With [?memo],
   each procedure's synthetic TOTAL_FREQ table is cached under its body
   fingerprint (salted with the heuristics): on re-analysis only the
   procedures whose bodies changed recompute their tables.  Sound
   because [Static_freq.totals] is a deterministic function of the
   analysis, which the memo's analysis layer keys by the same
   fingerprint. *)
let static_totals ?heuristics ?memo t : string -> (Analysis.cond, int) Hashtbl.t =
  match memo with
  | None -> Static_freq.program_totals ?heuristics t.analyses
  | Some m ->
      let h =
        match heuristics with
        | None -> Static_freq.default_heuristics
        | Some h -> h
      in
      let salt =
        Printf.sprintf "static_totals %h %h %h" h.Static_freq.loop_freq
          h.Static_freq.branch_taken h.Static_freq.exit_taken
      in
      let keys = Hashtbl.create 8 in
      List.iter
        (fun (p : Program.proc) ->
          Hashtbl.replace keys p.Program.name
            (Memo.mix salt [ Memo.body_fp_cached m p ]))
        (Program.procs t.prog);
      fun name ->
        match (Hashtbl.find_opt t.analyses name, Hashtbl.find_opt keys name) with
        | Some a, Some key -> (
            match Memo.find_static_totals m key with
            | Some tbl -> tbl
            | None ->
                let tbl = Static_freq.totals ?heuristics a in
                Memo.add_static_totals m key tbl;
                tbl)
        | Some a, None -> Static_freq.totals ?heuristics a
        | None, _ -> Hashtbl.create 1

(* estimate from explicit per-procedure totals (e.g. a loaded database);
   [?memo] makes the bottom-up traversal demand-driven — only the dirty
   cone of the call graph is recomputed *)
let estimate_totals ?(cost_model = Cost_model.optimized) ?(freq_var = Interproc.Zero)
    ?(iteration_model = Variance.Paper_correlated) ?(call_variance = false)
    ?(recursion = Interproc.Reject) ?cost_override ?memo t ~totals : Interproc.t =
  let memo = Option.map Memo.hooks memo in
  Interproc.estimate ~cost_model ~freq_var ~iteration_model ~call_variance ~recursion
    ?cost_override ?memo t.prog t.analyses ~totals

(* ---------------- the PGO loop ---------------- *)

module Emit = S89_vm.Emit
module Optimize = S89_vm.Optimize
module Ir = S89_frontend.Ir
module Cfg = S89_cfg.Cfg

type pgo_result = {
  pgo_prog : Program.t;
  pgo_plan : Emit.plan;
  pgo_freq : (string * int array) list;
  pgo_hot : string list;
  pgo_cycles_before : int;
  pgo_cycles_after : int;
  pgo_fallback_before : int;
  pgo_fallback_after : int;
  pgo_predicted_delta : int;
  pgo_measured_delta : int;
}

let pgo_accuracy r =
  if r.pgo_measured_delta = 0 then
    if r.pgo_predicted_delta = 0 then 0.0 else 1.0
  else
    Float.abs
      (float_of_int (r.pgo_predicted_delta - r.pgo_measured_delta)
      /. float_of_int r.pgo_measured_delta)

(* Build the emission plan from per-procedure node frequencies:
   - inline every *executed* CALL-statement site whose callee is a user
     procedure (the emitter re-checks leaf/size/type legality per site
     and falls back when it doesn't hold);
   - lay each procedure's nodes out hottest-first (stable on ties), so
     hot bodies pack together and cold paths move out of line. *)
let plan_of_freq ?(inline_budget = Emit.default_plan.Emit.inline_budget)
    (prog : Program.t) (freq : (string * int array) list) : Emit.plan =
  let inline_sites = Hashtbl.create 8 and layout = Hashtbl.create 8 in
  List.iter
    (fun (name, execs) ->
      match Hashtbl.find_opt prog.Program.by_name name with
      | None -> ()
      | Some p ->
          let cfg = p.Program.cfg in
          let n = Cfg.num_nodes cfg in
          if Array.length execs = n then begin
            let sites = ref [] in
            for u = n - 1 downto 0 do
              match (Cfg.info cfg u).Ir.ir with
              | Ir.Call (f, _)
                when Hashtbl.mem prog.Program.by_name f && execs.(u) > 0 ->
                  sites := u :: !sites
              | _ -> ()
            done;
            if !sites <> [] then Hashtbl.replace inline_sites name !sites;
            let order = Array.init n (fun i -> i) in
            Array.stable_sort (fun a b -> compare execs.(b) execs.(a)) order;
            Hashtbl.replace layout name order
          end)
    freq;
  { Emit.native_intrinsics = true; inline_sites; layout; inline_budget }

(* Close the loop: profile -> plan -> reoptimize -> re-run -> compare.

   One uninstrumented bytecode run collects exact per-node frequencies
   (the oracle counts).  They feed (a) the emission plan (inline sites +
   hot-first layout — observationally invisible, pure wall-clock) and
   (b) {!Optimize.reoptimize} gated on the hottest procedures covering
   [hot_fraction] of the cycle weight.  Because reoptimization is
   node-id-preserving and frequency-preserving, the estimator predicts
   its cycle delta in closed form,

     predicted = sum_u execs0(u) * (cost_old(u) - cost_new(u)),

   and the re-run under the same seed measures it; the pair is the new
   self-accuracy metric (the estimator predicting its own speedup).
   [freq] overrides the collected frequencies (a profile loaded from a
   feedback file); the baseline run still happens — it anchors the
   measured delta. *)
let pgo ?(cost_model = Cost_model.optimized) ?(seed = 42) ?inline_budget
    ?(hot_fraction = 0.9) ?freq t : pgo_result =
  let prog = t.prog in
  let config =
    { Interp.default_config with cost_model; seed; backend = Interp.Bytecode }
  in
  let vm0 = Interp.create ~config prog in
  ignore (Interp.run vm0);
  let cycles_before = Interp.cycles vm0 in
  let fallback_before = Interp.fallback_execs vm0 in
  let collected =
    List.map
      (fun (p : Program.proc) ->
        let n = Cfg.num_nodes p.Program.cfg in
        ( p.Program.name,
          Array.init n (fun u -> Interp.node_execs vm0 p.Program.name u) ))
      (Program.procs prog)
  in
  let freq = match freq with Some f -> f | None -> collected in
  let plan = plan_of_freq ?inline_budget prog freq in
  (* hot = smallest set of heaviest procedures covering [hot_fraction]
     of the total cycle weight (weight = sum execs * COST) *)
  let weights =
    List.filter_map
      (fun (name, execs) ->
        match Hashtbl.find_opt prog.Program.by_name name with
        | None -> None
        | Some p when Array.length execs = Cfg.num_nodes p.Program.cfg ->
            let w = ref 0 in
            Array.iteri
              (fun u e ->
                w :=
                  !w
                  + e
                    * Cost_model.node_cost cost_model
                        (Cfg.info p.Program.cfg u).Ir.ir)
              execs;
            Some (name, !w)
        | Some _ -> None)
      freq
  in
  let total_w = List.fold_left (fun a (_, w) -> a + w) 0 weights in
  let ranked = List.sort (fun (_, a) (_, b) -> compare b a) weights in
  let hot_set = Hashtbl.create 8 in
  let acc = ref 0 in
  List.iter
    (fun (name, w) ->
      if w > 0 && float_of_int !acc < hot_fraction *. float_of_int total_w
      then begin
        Hashtbl.replace hot_set name ();
        acc := !acc + w
      end)
    ranked;
  let hot = List.filter (fun (n, _) -> Hashtbl.mem hot_set n) ranked in
  let pgo_prog = Optimize.reoptimize ~hot:(Hashtbl.mem hot_set) prog in
  (* closed-form prediction over the profiled frequencies *)
  let predicted = ref 0 in
  List.iter
    (fun (name, execs) ->
      match
        ( Hashtbl.find_opt prog.Program.by_name name,
          Hashtbl.find_opt pgo_prog.Program.by_name name )
      with
      | Some p0, Some p1
        when Array.length execs = Cfg.num_nodes p0.Program.cfg ->
          Array.iteri
            (fun u e ->
              if e > 0 then
                let co =
                  Cost_model.node_cost cost_model
                    (Cfg.info p0.Program.cfg u).Ir.ir
                and cn =
                  Cost_model.node_cost cost_model
                    (Cfg.info p1.Program.cfg u).Ir.ir
                in
                predicted := !predicted + (e * (co - cn)))
            execs
      | _ -> ())
    collected;
  let config' = { config with Interp.emit_plan = Some plan } in
  let vm1 = Interp.create ~config:config' pgo_prog in
  ignore (Interp.run vm1);
  let cycles_after = Interp.cycles vm1 in
  let fallback_after = Interp.fallback_execs vm1 in
  Log.info (fun m ->
      m "pgo: cycles %d -> %d (predicted delta %d, measured %d), fallbacks %d -> %d"
        cycles_before cycles_after !predicted (cycles_before - cycles_after)
        fallback_before fallback_after);
  {
    pgo_prog;
    pgo_plan = plan;
    pgo_freq = freq;
    pgo_hot = List.map fst hot;
    pgo_cycles_before = cycles_before;
    pgo_cycles_after = cycles_after;
    pgo_fallback_before = fallback_before;
    pgo_fallback_after = fallback_after;
    pgo_predicted_delta = !predicted;
    pgo_measured_delta = cycles_before - cycles_after;
  }
