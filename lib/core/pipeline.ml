(* End-to-end convenience API tying the whole reproduction together:

     source -> parse/lower -> analyses (ECFG/FCDG)
            -> profile (smart counters over N runs, or oracle counts)
            -> reconstruct TOTAL_FREQs -> FREQ
            -> COST/TIME/VAR bottom-up, interprocedurally.

   Because all the conservation laws are linear, counter arrays from
   several runs are summed element-wise and reconstructed once — this is
   exactly the paper's "accumulate the TOTAL_FREQ values (as a sum) from
   different program executions in the program database". *)

module Program = S89_frontend.Program
module Interp = S89_vm.Interp
module Cost_model = S89_vm.Cost_model
module Analysis = S89_profiling.Analysis
module Placement = S89_profiling.Placement
module Reconstruct = S89_profiling.Reconstruct
module Database = S89_profiling.Database

let log_src = Logs.Src.create "s89.pipeline" ~doc:"end-to-end pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Diag = S89_diag.Diag
module Fault = S89_util.Fault

type t = {
  prog : Program.t;
  analyses : (string, Analysis.t) Hashtbl.t;
  diags : Diag.t list;
}

(* per-procedure analysis failure -> structured diagnostic *)
let analysis_diag (name : string) : exn -> Diag.t = function
  | Fault.Injected msg ->
      Diag.error ~proc:name ~code:"FLT001" ~hint:"injected by S89_FAULTS" msg
  | S89_exec.Supervise.Circuit_open key ->
      Diag.errorf ~proc:name ~code:"SRV002"
        ~hint:"degraded to the opaque-callee path; closes on the next success"
        "analysis suppressed: circuit breaker open for %s" key
  | Analysis.Unanalyzable { proc; reason } -> Diag.error ~proc ~code:"ANA001" reason
  | S89_cfg.Ecfg.Nonterminating_interval h ->
      Diag.errorf ~proc:name ~code:"ANA002"
        ~hint:"the paper assumes all executions terminate"
        "interval with header %d has no exit edge" h
  | S89_graph.Node_split.Gave_up n ->
      Diag.errorf ~proc:name ~code:"ANA001" "node splitting gave up with %d nodes" n
  | e ->
      Diag.errorf ~proc:name ~code:"ANA001" "analysis failed: %s"
        (Printexc.to_string e)

(* Graceful degradation (default): a procedure whose analysis fails is
   recorded as a diagnostic and skipped — the rest of the program is
   still analyzed, and the estimator treats the skipped procedure's calls
   as opaque.  [~strict:true] restores fail-fast: the first failure
   propagates as its original exception. *)
(* [?supervisor] wraps each procedure's analysis in
   [Supervise.protect] — transient failures are restarted with
   deterministic backoff, and a procedure whose circuit breaker is open
   (repeated failures, or pre-tripped by a resumed batch's journal) is
   suppressed immediately and degrades to the ANA003 opaque-callee path.
   [?journal] is called once per procedure, on the calling domain and in
   procedure order (deterministic even under [?pool]), with
   ["ana <proc> ok"] or ["ana <proc> failed <CODE>"] — the batch
   checkpoint appends these to its WAL so a resumed batch knows which
   procedures already completed or failed. *)
let create ?(strict = false) ?pool ?supervisor ?journal (prog : Program.t) : t =
  let procs = Array.of_list (Program.procs prog) in
  let attempt (p : Program.proc) : (Analysis.t, Diag.t) result =
    let work () =
      match supervisor with
      | None -> Analysis.of_proc p
      | Some s ->
          S89_exec.Supervise.protect s ~key:p.Program.name (fun () ->
              Analysis.of_proc p)
    in
    match work () with
    | a -> Ok a
    (* a malformed S89_FAULTS is a configuration error, not a
       per-procedure failure: degrading it would repeat the same
       message for every procedure and fake a partially-green run *)
    | exception (Fault.Bad_spec _ as e) -> raise e
    | exception e when not strict -> Error (analysis_diag p.Program.name e)
  in
  let results =
    match pool with
    | Some pool -> S89_exec.Pool.map pool attempt procs
    | None -> Array.map attempt procs
  in
  let analyses = Hashtbl.create 8 in
  let diags = ref [] in
  Array.iteri
    (fun i r ->
      let name = procs.(i).Program.name in
      (match journal with
      | None -> ()
      | Some j -> (
          match r with
          | Ok _ -> j (Printf.sprintf "ana %s ok" name)
          | Error d -> j (Printf.sprintf "ana %s failed %s" name d.Diag.code)));
      match r with
      | Ok a -> Hashtbl.replace analyses name a
      | Error d ->
          Log.warn (fun m -> m "%a" Diag.pp d);
          diags := d :: !diags)
    results;
  { prog; analyses; diags = List.rev !diags }

let diagnostics t = t.diags

let of_source ?strict ?pool ?supervisor ?journal src =
  create ?strict ?pool ?supervisor ?journal (Program.of_source src)

(* frontend + analysis under one Result: a frontend failure is the single
   error; analysis failures degrade per procedure as in [create] *)
let of_source_result ?strict ?pool ?supervisor ?journal src : (t, Diag.t) result =
  match Program.of_source_result src with
  | Error d -> Error d
  | Ok prog -> (
      match create ?strict ?pool ?supervisor ?journal prog with
      | t -> Ok t
      | exception e ->
          (* only reachable under [~strict:true] *)
          Error (analysis_diag "" e))

(* ---------------- running ---------------- *)

(* one uninstrumented run; oracle counts serve as exact totals *)
let run_once ?(cost_model = Cost_model.optimized) ?(seed = 42)
    ?(backend = Interp.default_config.Interp.backend) t : Interp.t =
  let config = { Interp.default_config with cost_model; seed; backend } in
  let vm = Interp.create ~config t.prog in
  ignore (Interp.run vm);
  vm

type profile = {
  plan : Placement.t;
  counters : int array; (* summed over all runs *)
  runs : int;
  totals : (string, (Analysis.cond, int) Hashtbl.t) Hashtbl.t;
  database : Database.t;
  avg_cycles : float; (* instrumented cycles per run *)
}

(* profile with smart instrumentation over [runs] runs (seeds vary) *)
let profile_smart ?(cost_model = Cost_model.optimized) ?(runs = 1) ?(seed = 1)
    ?(second_moments = true) ?(backend = Interp.default_config.Interp.backend) t
    : profile =
  let plan = Placement.plan ~second_moments t.analyses in
  let sums = Array.make (Placement.n_counters plan) 0 in
  let cycles = ref 0 in
  for r = 0 to runs - 1 do
    let config =
      { Interp.default_config with cost_model; instr = Placement.probes plan;
        seed = seed + r; backend }
    in
    let vm = Interp.create ~config t.prog in
    ignore (Interp.run vm);
    cycles := !cycles + Interp.cycles vm;
    let cs = Interp.counters vm in
    (* the VM rounds its counter array up to length >= 1 even for an
       empty plan (a fully-degraded pipeline profiles nothing), so sum
       over the plan's counters, not the VM's *)
    for i = 0 to Array.length sums - 1 do
      sums.(i) <- sums.(i) + cs.(i)
    done
  done;
  Log.info (fun m ->
      m "profiled %d runs with %d counters (%.0f cycles/run)" runs
        (Placement.n_counters plan)
        (float_of_int !cycles /. float_of_int runs));
  let totals = Reconstruct.totals plan ~counters:sums in
  let database = Database.create () in
  Database.accumulate database totals;
  database.Database.runs <- runs;
  {
    plan;
    counters = sums;
    runs;
    totals;
    avg_cycles = float_of_int !cycles /. float_of_int runs;
    database;
  }

(* one instrumented run against an existing plan, reconstructed alone —
   the batch service journals each run's totals to its WAL, so the unit
   of persistence is a single run, not a whole profile.  Summing the
   per-run totals equals profiling all runs at once (linearity). *)
let profile_run ?(cost_model = Cost_model.optimized)
    ?(backend = Interp.default_config.Interp.backend) ~plan ~seed t :
    (string, (Analysis.cond, int) Hashtbl.t) Hashtbl.t =
  let config =
    { Interp.default_config with cost_model; instr = Placement.probes plan;
      seed; backend }
  in
  let vm = Interp.create ~config t.prog in
  ignore (Interp.run vm);
  let counters = Array.sub (Interp.counters vm) 0 (Placement.n_counters plan) in
  Reconstruct.totals plan ~counters

(* ---------------- estimation ---------------- *)

let totals_fn tbl name =
  match Hashtbl.find_opt tbl name with
  | Some t -> t
  | None -> Hashtbl.create 1

(* estimate from a smart profile (optionally with profiled loop-frequency
   variance from the second-moment counters) *)
let estimate_profiled ?(cost_model = Cost_model.optimized)
    ?(iteration_model = Variance.Paper_correlated) ?(call_variance = false)
    ?(recursion = Interproc.Reject) ?(use_second_moments = true) t (p : profile) :
    Interproc.t =
  let freq_var =
    if not use_second_moments then Interproc.Zero
    else
      Interproc.Profiled
        (fun proc header ->
          match Hashtbl.find_opt p.totals proc with
          | None -> None
          | Some tot ->
              List.assoc_opt header
                (Reconstruct.loop_second_moments p.plan ~counters:p.counters proc tot))
  in
  Interproc.estimate ~cost_model ~freq_var ~iteration_model ~call_variance ~recursion
    t.prog t.analyses ~totals:(totals_fn p.totals)

(* estimate straight from an uninstrumented run's oracle counts *)
let estimate_oracle ?(cost_model = Cost_model.optimized) ?(freq_var = Interproc.Zero)
    ?(iteration_model = Variance.Paper_correlated) ?(call_variance = false)
    ?(recursion = Interproc.Reject) ?cost_override t (vm : Interp.t) : Interproc.t =
  let totals name =
    let a = Hashtbl.find t.analyses name in
    Analysis.oracle_totals a vm
  in
  Interproc.estimate ~cost_model ~freq_var ~iteration_model ~call_variance ~recursion
    ?cost_override t.prog t.analyses ~totals

(* estimate from explicit per-procedure totals (e.g. a loaded database) *)
let estimate_totals ?(cost_model = Cost_model.optimized) ?(freq_var = Interproc.Zero)
    ?(iteration_model = Variance.Paper_correlated) ?(call_variance = false)
    ?(recursion = Interproc.Reject) ?cost_override t ~totals : Interproc.t =
  Interproc.estimate ~cost_model ~freq_var ~iteration_model ~call_variance ~recursion
    ?cost_override t.prog t.analyses ~totals
