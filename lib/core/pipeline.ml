(* End-to-end convenience API tying the whole reproduction together:

     source -> parse/lower -> analyses (ECFG/FCDG)
            -> profile (smart counters over N runs, or oracle counts)
            -> reconstruct TOTAL_FREQs -> FREQ
            -> COST/TIME/VAR bottom-up, interprocedurally.

   Because all the conservation laws are linear, counter arrays from
   several runs are summed element-wise and reconstructed once — this is
   exactly the paper's "accumulate the TOTAL_FREQ values (as a sum) from
   different program executions in the program database". *)

module Program = S89_frontend.Program
module Interp = S89_vm.Interp
module Cost_model = S89_vm.Cost_model
module Analysis = S89_profiling.Analysis
module Placement = S89_profiling.Placement
module Reconstruct = S89_profiling.Reconstruct
module Database = S89_profiling.Database

let log_src = Logs.Src.create "s89.pipeline" ~doc:"end-to-end pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  prog : Program.t;
  analyses : (string, Analysis.t) Hashtbl.t;
}

let create ?pool (prog : Program.t) : t =
  { prog; analyses = Analysis.of_program ?pool prog }

let of_source ?pool src = create ?pool (Program.of_source src)

(* ---------------- running ---------------- *)

(* one uninstrumented run; oracle counts serve as exact totals *)
let run_once ?(cost_model = Cost_model.optimized) ?(seed = 42) t : Interp.t =
  let config = { Interp.default_config with cost_model; seed } in
  let vm = Interp.create ~config t.prog in
  ignore (Interp.run vm);
  vm

type profile = {
  plan : Placement.t;
  counters : int array; (* summed over all runs *)
  runs : int;
  totals : (string, (Analysis.cond, int) Hashtbl.t) Hashtbl.t;
  database : Database.t;
  avg_cycles : float; (* instrumented cycles per run *)
}

(* profile with smart instrumentation over [runs] runs (seeds vary) *)
let profile_smart ?(cost_model = Cost_model.optimized) ?(runs = 1) ?(seed = 1)
    ?(second_moments = true) t : profile =
  let plan = Placement.plan ~second_moments t.analyses in
  let sums = Array.make (Placement.n_counters plan) 0 in
  let cycles = ref 0 in
  for r = 0 to runs - 1 do
    let config =
      { Interp.default_config with cost_model; instr = Placement.probes plan;
        seed = seed + r }
    in
    let vm = Interp.create ~config t.prog in
    ignore (Interp.run vm);
    cycles := !cycles + Interp.cycles vm;
    let cs = Interp.counters vm in
    Array.iteri (fun i c -> sums.(i) <- sums.(i) + c) cs
  done;
  Log.info (fun m ->
      m "profiled %d runs with %d counters (%.0f cycles/run)" runs
        (Placement.n_counters plan)
        (float_of_int !cycles /. float_of_int runs));
  let totals = Reconstruct.totals plan ~counters:sums in
  let database = Database.create () in
  Database.accumulate database totals;
  database.Database.runs <- runs;
  {
    plan;
    counters = sums;
    runs;
    totals;
    avg_cycles = float_of_int !cycles /. float_of_int runs;
    database;
  }

(* ---------------- estimation ---------------- *)

let totals_fn tbl name =
  match Hashtbl.find_opt tbl name with
  | Some t -> t
  | None -> Hashtbl.create 1

(* estimate from a smart profile (optionally with profiled loop-frequency
   variance from the second-moment counters) *)
let estimate_profiled ?(cost_model = Cost_model.optimized)
    ?(iteration_model = Variance.Paper_correlated) ?(call_variance = false)
    ?(recursion = Interproc.Reject) ?(use_second_moments = true) t (p : profile) :
    Interproc.t =
  let freq_var =
    if not use_second_moments then Interproc.Zero
    else
      Interproc.Profiled
        (fun proc header ->
          match Hashtbl.find_opt p.totals proc with
          | None -> None
          | Some tot ->
              List.assoc_opt header
                (Reconstruct.loop_second_moments p.plan ~counters:p.counters proc tot))
  in
  Interproc.estimate ~cost_model ~freq_var ~iteration_model ~call_variance ~recursion
    t.prog t.analyses ~totals:(totals_fn p.totals)

(* estimate straight from an uninstrumented run's oracle counts *)
let estimate_oracle ?(cost_model = Cost_model.optimized) ?(freq_var = Interproc.Zero)
    ?(iteration_model = Variance.Paper_correlated) ?(call_variance = false)
    ?(recursion = Interproc.Reject) ?cost_override t (vm : Interp.t) : Interproc.t =
  let totals name =
    let a = Hashtbl.find t.analyses name in
    Analysis.oracle_totals a vm
  in
  Interproc.estimate ~cost_model ~freq_var ~iteration_model ~call_variance ~recursion
    ?cost_override t.prog t.analyses ~totals

(* estimate from explicit per-procedure totals (e.g. a loaded database) *)
let estimate_totals ?(cost_model = Cost_model.optimized) ?(freq_var = Interproc.Zero)
    ?(iteration_model = Variance.Paper_correlated) ?(call_variance = false)
    ?(recursion = Interproc.Reject) ?cost_override t ~totals : Interproc.t =
  Interproc.estimate ~cost_model ~freq_var ~iteration_model ~call_variance ~recursion
    ?cost_override t.prog t.analyses ~totals
