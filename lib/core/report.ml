(* Figure-3-style reports: the FCDG annotated with <FREQ, TOTAL_FREQ> per
   edge and [COST, TIME, E[TIME²], VAR, STD_DEV] per node, as text or DOT. *)

module Ir = S89_frontend.Ir
module Program = S89_frontend.Program
module Analysis = S89_profiling.Analysis
module Freq = S89_profiling.Freq
open S89_cfg
open S89_cdg

let describe_node (a : Analysis.t) u =
  let ecfg = a.Analysis.ecfg in
  let cfg = Ecfg.cfg ecfg in
  if u = Ecfg.start ecfg then "START"
  else if u = Ecfg.stop ecfg then "STOP"
  else if Ecfg.is_preheader ecfg u then
    Printf.sprintf "PREHEADER(%d)" (Ecfg.header_of_preheader ecfg u)
  else if Ecfg.is_postexit ecfg u then
    Printf.sprintf "POSTEXIT(%d)" (Ecfg.exited_interval ecfg u)
  else Fmt.str "%a" Ir.pp_info (Cfg.info cfg u)

let pp_number fmt x =
  if Float.is_integer x && Float.abs x < 1e15 then Fmt.pf fmt "%.0f" x
  else Fmt.pf fmt "%.4g" x

let pp_proc fmt (est : Interproc.proc_est) =
  let a = est.Interproc.analysis in
  let fcdg = a.Analysis.fcdg in
  let freq = est.Interproc.freq in
  Fmt.pf fmt "@[<v>procedure %s: TIME(START)=%a STD_DEV(START)=%a"
    a.Analysis.proc.Program.name pp_number
    (Time_est.total_time est.Interproc.time a)
    pp_number
    (Variance.total_std_dev est.Interproc.variance a);
  Array.iter
    (fun u ->
      Fmt.pf fmt "@,  %3d %-34s [%a, %a, %a, %a, %a]" u (describe_node a u) pp_number
        (Time_est.cost est.Interproc.time u)
        pp_number
        (Time_est.time est.Interproc.time u)
        pp_number
        (Variance.e2 est.Interproc.variance u)
        pp_number
        (Variance.var est.Interproc.variance u)
        pp_number
        (Variance.std_dev est.Interproc.variance u);
      List.iter
        (fun (e : Label.t S89_graph.Digraph.edge) ->
          Fmt.pf fmt "@,        -%s-> %d  <%.4g, %d>" (Label.to_string e.label) e.dst
            (Freq.freq freq (u, e.label))
            (Freq.total freq (u, e.label)))
        (Fcdg.out_edges fcdg u))
    (Fcdg.topological fcdg);
  Fmt.pf fmt "@]"

let pp fmt (t : Interproc.t) =
  Fmt.pf fmt "@[<v>program estimate: TIME=%a STD_DEV=%a@,@," pp_number
    (Interproc.program_time t) pp_number
    (Interproc.program_std_dev t);
  let names =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.Interproc.per_proc [] |> List.sort compare
  in
  Fmt.(list ~sep:(any "@,@,") pp_proc) fmt (List.map (Interproc.proc_est t) names);
  Fmt.pf fmt "@]"

(* DOT rendering of the annotated FCDG (one procedure) *)
let fcdg_dot (est : Interproc.proc_est) : string =
  let a = est.Interproc.analysis in
  let fcdg = a.Analysis.fcdg in
  let freq = est.Interproc.freq in
  S89_graph.Dot.to_string ~name:"fcdg"
    ~node_attrs:(fun u ->
      [
        ( "label",
          Fmt.str "%s\n[%a, %a, %a]" (describe_node a u) pp_number
            (Time_est.cost est.Interproc.time u)
            pp_number
            (Time_est.time est.Interproc.time u)
            pp_number
            (Variance.var est.Interproc.variance u) );
      ])
    ~edge_attrs:(fun e ->
      let style = if Label.is_pseudo e.S89_graph.Digraph.label then "dashed" else "solid" in
      [
        ( "label",
          Fmt.str "%s <%.3g, %d>"
            (Label.to_string e.S89_graph.Digraph.label)
            (Freq.freq freq (e.src, e.label))
            (Freq.total freq (e.src, e.label)) );
        ("style", style);
      ])
    (Fcdg.graph fcdg)

(* DOT rendering of an ECFG (Figure 2 style) *)
let ecfg_dot (a : Analysis.t) : string =
  let ecfg = a.Analysis.ecfg in
  let cfg = Ecfg.cfg ecfg in
  S89_graph.Dot.to_string ~name:"ecfg"
    ~node_attrs:(fun u ->
      let shape =
        match Cfg.node_type cfg u with
        | Node_type.Start | Node_type.Stop -> "ellipse"
        | Node_type.Preheader | Node_type.Postexit -> "hexagon"
        | _ -> "box"
      in
      [ ("label", describe_node a u); ("shape", shape) ])
    ~edge_attrs:(fun e ->
      let style = if Label.is_pseudo e.S89_graph.Digraph.label then "dashed" else "solid" in
      [ ("label", Label.to_string e.S89_graph.Digraph.label); ("style", style) ])
    (Cfg.graph cfg)

(* DOT rendering of an original CFG (Figure 1 style) *)
let cfg_dot (p : Program.proc) : string =
  let cfg = p.Program.cfg in
  S89_graph.Dot.to_string ~name:"cfg"
    ~node_attrs:(fun u -> [ ("label", Fmt.str "%a" Ir.pp_info (Cfg.info cfg u)) ])
    ~edge_attrs:(fun e -> [ ("label", Label.to_string e.S89_graph.Digraph.label) ])
    (Cfg.graph cfg)

(* gprof-style flat profile (the paper cites Graham–Kessler–McKusick's
   gprof as the model for per-procedure reporting): per procedure the
   number of calls, average TIME and STD_DEV per call, and the cumulative
   share of the whole program (self + descendants, rule-2 style). *)
let flat_profile fmt (t : Interproc.t) =
  let total = Interproc.program_time t *. 1.0 in
  let rows =
    Hashtbl.fold
      (fun name (pe : Interproc.proc_est) acc ->
        let a = pe.Interproc.analysis in
        let calls = Freq.invocations pe.Interproc.freq in
        let time = Time_est.total_time pe.Interproc.time a in
        let sd = Variance.total_std_dev pe.Interproc.variance a in
        (name, calls, time, sd) :: acc)
      t.Interproc.per_proc []
    |> List.sort (fun (_, c1, t1, _) (_, c2, t2, _) ->
           compare (float_of_int c2 *. t2, c2) (float_of_int c1 *. t1, c1))
  in
  let main_calls =
    match List.find_opt (fun (n, _, _, _) -> n = t.Interproc.main) rows with
    | Some (_, c, _, _) -> max c 1
    | None -> 1
  in
  Fmt.pf fmt "@[<v>%-12s %10s %14s %14s %9s@," "procedure" "calls" "TIME/call"
    "STD_DEV/call" "cum.%";
  List.iter
    (fun (name, calls, time, sd) ->
      let cum =
        if total <= 0.0 then 0.0
        else
          100.0 *. (float_of_int calls /. float_of_int main_calls) *. time /. total
      in
      Fmt.pf fmt "%-12s %10d %14.1f %14.1f %8.1f%%@," name calls time sd cum)
    rows;
  Fmt.pf fmt "@]"

(* per-node estimates as CSV, for downstream tooling *)
let csv (t : Interproc.t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "procedure,node,kind,cost,time,e_t2,var,std_dev,node_freq\n";
  let names =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.Interproc.per_proc [] |> List.sort compare
  in
  List.iter
    (fun name ->
      let pe = Interproc.proc_est t name in
      let a = pe.Interproc.analysis in
      Array.iter
        (fun u ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%d,%s,%g,%g,%g,%g,%g,%g\n" name u
               (String.map (function ',' | '\n' -> ' ' | c -> c) (describe_node a u))
               (Time_est.cost pe.Interproc.time u)
               (Time_est.time pe.Interproc.time u)
               (Variance.e2 pe.Interproc.variance u)
               (Variance.var pe.Interproc.variance u)
               (Variance.std_dev pe.Interproc.variance u)
               (Freq.node_freq pe.Interproc.freq u)))
        (Fcdg.topological a.Analysis.fcdg))
    names;
  Buffer.contents buf

(* Statement-level hotspots: time attributed to a statement =
   COST(u) × NODE_FREQ(u) × invocations, per main-program run — the
   per-statement frequency listing that §6 traces back to Knuth's
   empirical Fortran study, computed from estimates.  For call sites,
   COST includes the callee's TIME (rule 2), so those rows are
   self-plus-descendants and are marked as such. *)
let hotspots ?(top = 10) (t : Interproc.t) =
  let rows = ref [] in
  (* membership test for user procedures (call-site marking) *)
  let t_by_name : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace t_by_name k ()) t.Interproc.per_proc;
  let main_calls =
    max 1 (Freq.invocations (Interproc.main_est t).Interproc.freq)
  in
  Hashtbl.iter
    (fun name (pe : Interproc.proc_est) ->
      let a = pe.Interproc.analysis in
      Array.iter
        (fun u ->
          if S89_cfg.Ecfg.is_original a.Analysis.ecfg u then begin
            let self =
              Time_est.cost pe.Interproc.time u
              *. Freq.node_freq pe.Interproc.freq u
              *. (float_of_int (Freq.invocations pe.Interproc.freq)
                 /. float_of_int main_calls)
            in
            if self > 0.0 then begin
              let d = describe_node a u in
              let d =
                if
                  Cost.call_sites t_by_name
                    (S89_cfg.Cfg.info (S89_cfg.Ecfg.cfg a.Analysis.ecfg) u)
                  <> []
                then d ^ " [incl. callees]"
                else d
              in
              rows := (name, u, d, self) :: !rows
            end
          end)
        (Fcdg.topological a.Analysis.fcdg))
    t.Interproc.per_proc;
  let total = Interproc.program_time t in
  let sorted =
    List.sort (fun (_, _, _, a) (_, _, _, b) -> compare b a) !rows
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  List.map
    (fun (name, u, d, self) ->
      (name, u, d, self, if total > 0.0 then 100.0 *. self /. total else 0.0))
    (take top sorted)

(* PGO self-accuracy: the estimator predicting the cycle delta of its
   own profile-guided reoptimization, against the measured re-run.  The
   predicted/measured pair is the PGO loop's accuracy metric, in the
   same spirit as Table 1's estimated-vs-measured TIME columns. *)
let pp_pgo fmt (r : Pipeline.pgo_result) =
  let reduction b a =
    if a = 0 then if b = 0 then 1.0 else Float.infinity
    else float_of_int b /. float_of_int a
  in
  Fmt.pf fmt "@[<v>PGO loop:@,";
  Fmt.pf fmt "  cycles            %12d -> %-12d@," r.Pipeline.pgo_cycles_before
    r.Pipeline.pgo_cycles_after;
  Fmt.pf fmt "  FALLBACK execs    %12d -> %-12d (%.1fx fewer)@,"
    r.Pipeline.pgo_fallback_before r.Pipeline.pgo_fallback_after
    (reduction r.Pipeline.pgo_fallback_before r.Pipeline.pgo_fallback_after);
  Fmt.pf fmt "  predicted delta   %12d@," r.Pipeline.pgo_predicted_delta;
  Fmt.pf fmt "  measured delta    %12d@," r.Pipeline.pgo_measured_delta;
  Fmt.pf fmt "  prediction error  %11.2f%%@," (100.0 *. Pipeline.pgo_accuracy r);
  Fmt.pf fmt "  hot procedures    %s@]"
    (match r.Pipeline.pgo_hot with
    | [] -> "(none)"
    | hs -> String.concat " " hs)

let pp_hotspots ?top fmt t =
  Fmt.pf fmt "@[<v>%-10s %5s  %-40s %14s %7s@," "procedure" "node" "statement"
    "self time" "share";
  List.iter
    (fun (name, u, d, self, share) ->
      let d = if String.length d > 40 then String.sub d 0 40 else d in
      let d = String.map (function '\n' -> ' ' | c -> c) d in
      Fmt.pf fmt "%-10s %5d  %-40s %14.1f %6.2f%%@," name u d self share)
    (hotspots ?top t);
  Fmt.pf fmt "@]"
