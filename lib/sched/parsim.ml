(* Discrete-event simulator for a parallel loop on P processors.

   Workers repeatedly grab the next chunk of iterations from a shared
   dispenser (paying overhead h per grab), execute the iterations with
   times drawn from the iteration-time distribution, and finish when the
   dispenser is empty.  The makespan (max worker finish time) is the
   quantity the chunk-size choice trades off: fewer chunks = less overhead
   but worse load balance when iteration times vary.

   This is the experimental substrate for the §5 application: it lets the
   benches show that the Kruskal–Weiss chunk computed from the estimator's
   TIME/VAR beats both N/P splitting (high variance) and size-1
   self-scheduling (high overhead). *)

module Prng = S89_util.Prng
module Stats = S89_util.Stats

type result = {
  makespan : float;
  total_work : float; (* sum of iteration times *)
  total_overhead : float; (* chunks × h *)
  chunks_dispatched : int;
  worker_busy : float array; (* per-worker busy time incl. overhead *)
}

let run ?(seed = 1) ~n ~p ~h ~(dist : Dist.t) (strategy : Chunk.strategy) : result =
  if n < 0 || p <= 0 then invalid_arg "Parsim.run";
  let rng = Prng.create ~seed in
  (* index-derived worker streams: stream i is a function of (seed, i)
     only, so the simulation is reproducible for a fixed seed whatever
     order the streams are created in *)
  let worker_rngs = Array.init p (Prng.split rng) in
  let remaining = ref n in
  let chunks = ref 0 in
  let sigma = Dist.std_dev dist in
  let next_chunk () =
    if !remaining = 0 then None
    else begin
      let k =
        match strategy with
        | Chunk.Guided -> max 1 ((!remaining + p - 1) / p)
        | s -> Chunk.initial_chunk s ~n ~p ~h ~sigma
      in
      let k = min k !remaining in
      remaining := !remaining - k;
      incr chunks;
      Some k
    end
  in
  (* event-driven: the idle worker with the smallest clock grabs next *)
  let clock = Array.make p 0.0 in
  let busy = Array.make p 0.0 in
  let total_work = ref 0.0 in
  let continue_ = ref true in
  while !continue_ do
    (* find earliest-free worker *)
    let w = ref 0 in
    for i = 1 to p - 1 do
      if clock.(i) < clock.(!w) then w := i
    done;
    match next_chunk () with
    | None -> continue_ := false
    | Some k ->
        let t = ref h in
        for _ = 1 to k do
          let it = Dist.sample worker_rngs.(!w) dist in
          t := !t +. it;
          total_work := !total_work +. it
        done;
        clock.(!w) <- clock.(!w) +. !t;
        busy.(!w) <- busy.(!w) +. !t
  done;
  let makespan = Array.fold_left Float.max 0.0 clock in
  {
    makespan;
    total_work = !total_work;
    total_overhead = float_of_int !chunks *. h;
    chunks_dispatched = !chunks;
    worker_busy = busy;
  }

(* Average makespan over several seeds.

   The returned statistics are a function of the seed list [1..seeds]
   ALONE, never of scheduling order: replication s is seeded with s and
   nothing else, and the makespans are folded into the accumulator in
   seed order below, after all replications finish.  Handing the
   replications to a parallel [map] (e.g. [S89_exec.Pool.map_list pool])
   therefore returns a [Stats.t] byte-equal to the sequential run's —
   tested in test/test_sched.ml. *)
let run_avg ?(seeds = 10) ?map ~n ~p ~h ~dist strategy : Stats.t =
  let one s = (run ~seed:s ~n ~p ~h ~dist strategy).makespan in
  let seed_list = List.init seeds (fun i -> i + 1) in
  let makespans =
    match map with None -> List.map one seed_list | Some m -> m one seed_list
  in
  let st = Stats.create () in
  List.iter (Stats.add st) makespans;
  st
