(** Discrete-event simulator for a parallel loop on P processors: workers
    grab chunks from a shared dispenser (overhead [h] per grab) and run
    iterations drawn from the iteration-time distribution.  The makespan
    is the quantity the §5 chunk-size choice trades off. *)

module Stats = S89_util.Stats

type result = {
  makespan : float;  (** max worker finish time *)
  total_work : float;  (** sum of iteration times *)
  total_overhead : float;  (** chunks × h *)
  chunks_dispatched : int;
  worker_busy : float array;  (** per-worker busy time incl. overhead *)
}

(** Simulate one run.  Raises [Invalid_argument] for negative [n] or
    non-positive [p]. *)
val run : ?seed:int -> n:int -> p:int -> h:float -> dist:Dist.t -> Chunk.strategy -> result

(** Makespan statistics over several seeded runs (seeds [1..seeds]).
    The result is determined by the seed list alone: each replication is
    independently seeded and the makespans are folded in seed order after
    all replications complete.  [?map] runs the replications — pass a
    parallel mapper (e.g. [S89_exec.Pool.map_list pool]) to distribute
    them over domains; the returned [Stats.t] is byte-equal to the
    sequential one, whatever the scheduling order. *)
val run_avg :
  ?seeds:int ->
  ?map:((int -> float) -> int list -> float list) ->
  n:int ->
  p:int ->
  h:float ->
  dist:Dist.t ->
  Chunk.strategy ->
  Stats.t
