(* Seeded fault injection (chaos testing for the analysis service).

   A fault spec is a comma-separated list of sites with probabilities,
   normally taken from the S89_FAULTS environment variable:

       S89_FAULTS="worker_raise:0.05,slow_item:0.02@0.005,db_truncate:0.5,seed:7"

   - worker_raise:P     pool/chunked items raise [Injected] with prob. P
   - slow_item:P[@SECS] pool/chunked items sleep SECS (default 1ms) with prob. P
   - analysis_raise:P   per-procedure analysis raises [Injected] with prob. P
   - db_truncate:P      Database.save writes a truncated file with prob. P
   - wal_torn:P         Wal.append writes a torn half-record, then dies
   - dir_fsync:P        a directory fsync (the durability point of the
                        store's atomic-rename and WAL-epoch commits)
                        raises [Injected] instead of syncing
   - enospc:P           a durable write (WAL append, snapshot commit,
                        durable-ack file) fails with ENOSPC before any
                        byte reaches disk
   - eio:P              same sites fail with EIO (media error)
   - seed:N             base seed of the decision stream (default 1)

   Decisions are PURE FUNCTIONS of (seed, site, key, attempt): whether
   item 17 of a pool map fails does not depend on scheduling, domain
   count, or wall time — so a fault-injected run is exactly reproducible
   from the spec string.  [attempt] lets retry loops re-ask: with P < 1 a
   retried item usually succeeds, with P = 1 it never does.

   This module only DECIDES; the injection points (Pool, Chunked,
   Analysis, Database) act on the decisions (sleep, raise, truncate), so
   the module stays dependency-free. *)

type site =
  | Worker_raise
  | Slow_item
  | Analysis_raise
  | Db_truncate
  | Wal_torn
  | Dir_fsync
  | Enospc
  | Eio
  | Backoff

exception Injected of string
exception Bad_spec of string

type spec = {
  seed : int;
  worker_raise : float;
  slow_item : float;
  slow_seconds : float;
  analysis_raise : float;
  db_truncate : float;
  wal_torn : float;
  dir_fsync : float;
  enospc : float;
  eio : float;
}

let default_slow_seconds = 0.001

let empty =
  { seed = 1; worker_raise = 0.0; slow_item = 0.0;
    slow_seconds = default_slow_seconds; analysis_raise = 0.0; db_truncate = 0.0;
    wal_torn = 0.0; dir_fsync = 0.0; enospc = 0.0; eio = 0.0 }

let with_seed seed = { empty with seed }
let seed spec = spec.seed

(* ---------------- parsing ---------------- *)

let parse s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  let rec go spec = function
    | [] -> Ok spec
    | part :: rest -> (
        match String.index_opt part ':' with
        | None -> err "S89_FAULTS: missing ':' in %S" part
        | Some i -> (
            let key = String.sub part 0 i in
            let v = String.sub part (i + 1) (String.length part - i - 1) in
            let prob_of v =
              match float_of_string_opt v with
              | Some p when p >= 0.0 && p <= 1.0 -> Ok p
              | _ -> Result.Error ()
            in
            match key with
            | "seed" -> (
                match int_of_string_opt v with
                | Some n -> go { spec with seed = n } rest
                | None -> err "S89_FAULTS: seed wants an integer, got %S" v)
            | "worker_raise" -> (
                match prob_of v with
                | Ok p -> go { spec with worker_raise = p } rest
                | Error () -> err "S89_FAULTS: bad probability %S for %s" v key)
            | "analysis_raise" -> (
                match prob_of v with
                | Ok p -> go { spec with analysis_raise = p } rest
                | Error () -> err "S89_FAULTS: bad probability %S for %s" v key)
            | "db_truncate" -> (
                match prob_of v with
                | Ok p -> go { spec with db_truncate = p } rest
                | Error () -> err "S89_FAULTS: bad probability %S for %s" v key)
            | "wal_torn" -> (
                match prob_of v with
                | Ok p -> go { spec with wal_torn = p } rest
                | Error () -> err "S89_FAULTS: bad probability %S for %s" v key)
            | "dir_fsync" -> (
                match prob_of v with
                | Ok p -> go { spec with dir_fsync = p } rest
                | Error () -> err "S89_FAULTS: bad probability %S for %s" v key)
            | "enospc" -> (
                match prob_of v with
                | Ok p -> go { spec with enospc = p } rest
                | Error () -> err "S89_FAULTS: bad probability %S for %s" v key)
            | "eio" -> (
                match prob_of v with
                | Ok p -> go { spec with eio = p } rest
                | Error () -> err "S89_FAULTS: bad probability %S for %s" v key)
            | "slow_item" -> (
                (* optional @SECS suffix: slow_item:0.1@0.02 *)
                let v, secs =
                  match String.index_opt v '@' with
                  | None -> (v, spec.slow_seconds)
                  | Some j ->
                      ( String.sub v 0 j,
                        match
                          float_of_string_opt
                            (String.sub v (j + 1) (String.length v - j - 1))
                        with
                        | Some s when s >= 0.0 -> s
                        | _ -> -1.0 )
                in
                if secs < 0.0 then err "S89_FAULTS: bad duration in %S" part
                else
                  match prob_of v with
                  | Ok p -> go { spec with slow_item = p; slow_seconds = secs } rest
                  | Error () -> err "S89_FAULTS: bad probability %S for %s" v key)
            | _ -> err "S89_FAULTS: unknown fault site %S" key))
  in
  go empty parts

(* ---------------- the active spec ----------------

   Parsed from S89_FAULTS on first use (a malformed value is a hard
   [Bad_spec]: silently ignoring a typo'd fault spec would fake green
   chaos runs — lazily, so the error surfaces inside a guarded caller
   rather than during module initialization), overridable from tests via
   [set]/[with_spec]. *)

let env_spec : spec option Lazy.t =
  lazy
    (match Sys.getenv_opt "S89_FAULTS" with
    | None | Some "" -> None
    | Some s -> (
        match parse s with
        | Ok spec -> Some spec
        | Error msg -> raise (Bad_spec msg)))

(* [None]: no override, fall back to the environment.  Atomic because
   the override can be flipped at runtime (tests, the serve signal
   toggle) while worker domains are consulting it. *)
let override : spec option option Atomic.t = Atomic.make None

let active () =
  match Atomic.get override with Some s -> s | None -> Lazy.force env_spec

let set spec = Atomic.set override (Some spec)

let with_spec spec f =
  let saved = Atomic.get override in
  Atomic.set override (Some spec);
  Fun.protect ~finally:(fun () -> Atomic.set override saved) f

(* ---------------- decisions ---------------- *)

(* splitmix64 finalizer: decorrelates (seed, site, key, attempt) into a
   uniform 64-bit hash; same mixer as S89_util.Prng *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let site_tag = function
  | Worker_raise -> 0x5741L
  | Slow_item -> 0x534cL
  | Analysis_raise -> 0x414eL
  | Db_truncate -> 0x4442L
  | Wal_torn -> 0x574cL
  | Dir_fsync -> 0x4446L
  | Enospc -> 0x4e53L
  | Eio -> 0x4549L
  | Backoff -> 0x424fL

let uniform spec site ~key ~attempt =
  let h = Int64.of_int spec.seed in
  let h = mix64 (Int64.add h (site_tag site)) in
  let h = mix64 (Int64.add h (Int64.of_int key)) in
  let h = mix64 (Int64.add h (Int64.of_int attempt)) in
  (* top 53 bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53

let prob spec = function
  | Worker_raise -> spec.worker_raise
  | Slow_item -> spec.slow_item
  | Analysis_raise -> spec.analysis_raise
  | Db_truncate -> spec.db_truncate
  | Wal_torn -> spec.wal_torn
  | Dir_fsync -> spec.dir_fsync
  | Enospc -> spec.enospc
  | Eio -> spec.eio
  (* [Backoff] never fires by itself: its decision stream is only sampled
     via [uniform] for deterministic backoff jitter *)
  | Backoff -> 0.0

let fires spec site ~key ~attempt =
  let p = prob spec site in
  p > 0.0 && uniform spec site ~key ~attempt < p

(* key for string-keyed sites (procedure names, database paths): FNV-1a *)
let string_key s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Int64.to_int (Int64.logand !h 0x3fffffffffffffffL)

let slow_seconds spec = spec.slow_seconds

(* retries granted to injection points that absorb [Injected] failures
   (the pool re-runs a faulted item up to this many extra times) *)
let max_retries = 3

let injected_msg site ~key =
  Printf.sprintf "injected fault (%s, key %d)"
    (match site with
    | Worker_raise -> "worker_raise"
    | Slow_item -> "slow_item"
    | Analysis_raise -> "analysis_raise"
    | Db_truncate -> "db_truncate"
    | Wal_torn -> "wal_torn"
    | Dir_fsync -> "dir_fsync"
    | Enospc -> "enospc"
    | Eio -> "eio"
    | Backoff -> "backoff")
    key

let is_injected = function Injected _ -> true | _ -> false
