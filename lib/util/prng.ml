(* Deterministic splitmix64 PRNG.

   Profiled runs, workload generators and the parallel-loop simulator all
   need reproducible randomness that is independent of OCaml's global
   [Random] state; splitmix64 is tiny, fast and statistically fine for
   simulation purposes. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

(* splitmix64 finalizer *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

(* uniform in [0, 2^62) as a non-negative OCaml int *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(* uniform integer in [0, n) *)
let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* rejection sampling to avoid modulo bias; [bits] is uniform on
     [0, 2^62) = [0, max_int], so reject above the largest multiple of n *)
  let limit = max_int / n * n in
  let rec go () =
    let b = bits t in
    if b < limit then b mod n else go ()
  in
  go ()

(* uniform float in [0, 1) *)
let float t =
  let b = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float b /. 9007199254740992.0 (* 2^53 *)

(* uniform float in [lo, hi) *)
let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* standard normal via Box-Muller *)
let normal t =
  let u1 = ref (float t) in
  while !u1 = 0.0 do
    u1 := float t
  done;
  let u2 = float t in
  sqrt (-2.0 *. log !u1) *. cos (2.0 *. Float.pi *. u2)

(* exponential with the given mean *)
let exponential t ~mean =
  let u = ref (float t) in
  while !u = 0.0 do
    u := float t
  done;
  -.mean *. log !u

(* geometric on {1, 2, ...} with success probability p *)
let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric";
  if p = 1.0 then 1
  else
    let u = ref (float t) in
    while !u = 0.0 do
      u := float t
    done;
    1 + int_of_float (log !u /. log (1.0 -. p))

(* Derive the [i]-th child stream.  The child state depends only on the
   parent's CURRENT state and the index — the parent is NOT advanced — so
   any parallel schedule that hands stream [i] to work item [i]
   reproduces the sequential stream assignment exactly.  Children are
   pairwise distinct: [mix] is a bijection and the pre-mix states
   [state + (i+1)·golden] are distinct (golden is odd).  The extra [mix]
   decorrelates each child from the parent's own output sequence (which
   is [mix] applied ONCE to the same arithmetic progression). *)
let split t i =
  if i < 0 then invalid_arg "Prng.split: negative index";
  { state = mix (Int64.add t.state (Int64.mul golden (Int64.of_int (i + 1)))) }
