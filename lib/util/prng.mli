(** Deterministic splitmix64 PRNG (independent of [Stdlib.Random]). *)

type t

val create : seed:int -> t
val copy : t -> t

(** Next raw 64-bit state update. *)
val next_int64 : t -> int64

(** Uniform non-negative int in [0, 2{^62}). *)
val bits : t -> int

(** Uniform integer in [0, n); rejection-sampled (no modulo bias). *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

val uniform : t -> lo:float -> hi:float -> float
val bool : t -> bool

(** Standard normal (Box–Muller). *)
val normal : t -> float

(** Exponential with the given mean. *)
val exponential : t -> mean:float -> float

(** Geometric on [{1, 2, ...}] with success probability [p]. *)
val geometric : t -> p:float -> int

(** [split t i] derives the [i]-th child stream from [t]'s current state
    without advancing [t]: child streams are reproducible functions of
    (parent state, index), pairwise distinct, and independent of the
    order in which they are created — so a parallel schedule reproduces
    the sequential stream assignment.  Raises [Invalid_argument] for a
    negative index. *)
val split : t -> int -> t
