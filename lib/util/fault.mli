(** Seeded fault injection.  A spec (normally from the [S89_FAULTS]
    environment variable, e.g.
    ["worker_raise:0.05,slow_item:0.02@0.005,seed:7"]) assigns
    probabilities to injection sites; decisions are pure functions of
    (seed, site, key, attempt) so fault-injected runs are exactly
    reproducible and independent of scheduling.  This module only
    decides — the injection points (Pool, Chunked, Analysis, Database)
    act. *)

type site =
  | Worker_raise  (** pool/chunked item raises {!Injected} *)
  | Slow_item  (** pool/chunked item sleeps {!slow_seconds} *)
  | Analysis_raise  (** per-procedure analysis raises {!Injected} *)
  | Db_truncate  (** [Database.save] writes a truncated file *)
  | Wal_torn  (** [Wal.append] writes a torn half-record, then dies *)
  | Dir_fsync
      (** a directory fsync — the durability point of the store's
          atomic-rename snapshot and WAL-epoch commits — raises
          {!Injected} instead of syncing *)
  | Enospc
      (** a durable write (WAL append, snapshot commit, durable-ack
          file) fails with [Unix.ENOSPC] before any byte reaches disk;
          the injection points raise a real [Unix.Unix_error] so
          absorbing layers treat injected and genuine disk-full
          identically *)
  | Eio  (** like {!Enospc} but [Unix.EIO] (media error) *)
  | Backoff
      (** never fires; its decision stream is sampled via {!uniform} for
          deterministic supervision backoff jitter *)

(** The exception injection points raise.  Recognizable (see
    {!is_injected}) so resilient layers can absorb it. *)
exception Injected of string

(** Raised (from {!active}) when [S89_FAULTS] is set but malformed.
    Deliberately NOT absorbed by the fault-tolerant layers: silently
    ignoring a typo'd fault spec would fake green chaos runs, so this
    must propagate to the top level as a configuration error. *)
exception Bad_spec of string

type spec

(** The no-faults spec (all probabilities 0); parse-result base. *)
val empty : spec

(** {!empty} with the given decision-stream seed — lets layers that only
    need the deterministic decision stream (e.g. supervision backoff
    jitter) build a spec without any fault probabilities. *)
val with_seed : int -> spec

(** The spec's decision-stream seed. *)
val seed : spec -> int

(** Parse an [S89_FAULTS] string. *)
val parse : string -> (spec, string) result

(** The process-wide active spec: parsed from [S89_FAULTS] on first use
    ({!Bad_spec} on a malformed value), [None] when unset.  {!set} and
    {!with_spec} override the environment; the override is atomic, so
    it may be flipped at runtime (tests, the serve [SIGUSR1]/[SIGUSR2]
    fault-pulse toggle) while worker domains consult it. *)
val active : unit -> spec option

val set : spec option -> unit

(** Run [f] with [spec] active, restoring the previous spec after. *)
val with_spec : spec option -> (unit -> 'a) -> 'a

(** Does [site] fire for [key] on retry [attempt]?  Deterministic. *)
val fires : spec -> site -> key:int -> attempt:int -> bool

(** The underlying uniform draw in [0, 1) behind {!fires} — a pure
    function of (seed, site, key, attempt).  Exposed so other
    deterministic schedules (supervision backoff jitter) can share the
    decision stream. *)
val uniform : spec -> site -> key:int -> attempt:int -> float

(** The configured probability of a site. *)
val prob : spec -> site -> float

(** Stable non-negative key for string-keyed sites (procedure names,
    paths). *)
val string_key : string -> int

(** Sleep duration for [Slow_item] (seconds). *)
val slow_seconds : spec -> float

(** Extra attempts a fault-absorbing layer grants before letting
    {!Injected} propagate. *)
val max_retries : int

val injected_msg : site -> key:int -> string
val is_injected : exn -> bool
