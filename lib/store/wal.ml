(* Write-ahead log: an append-only file of checksummed records.

   Framing (binary-safe, self-delimiting):

       rec <payload-bytes> <fnv64-hex-of-payload>\n
       <payload bytes>\n

   Appends are durable — each record is written in one [write] and, with
   [~fsync:true] (the default), fsync'd before [append] returns.  A
   writer can die at any byte: recovery scans records from the start and
   stops at the first framing violation, short payload, or checksum
   mismatch, keeping exactly the VALID PREFIX of records.  [open_]
   truncates the file to that prefix so later appends never land after a
   torn tail.

   The seeded fault injector ([S89_FAULTS=wal_torn:P]) simulates the
   mid-append crash: [append] writes half the record's bytes and raises
   [Fault.Injected], leaving the torn tail for recovery to drop.
   [enospc:P] / [eio:P] simulate the disk itself failing: [append]
   raises a real [Unix.Unix_error] before any byte lands, so the file
   stays a valid prefix and the caller decides whether to buffer, shed,
   or die. *)

module Fault = S89_util.Fault

let fnv64 (s : string) : int64 =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let frame payload =
  Printf.sprintf "rec %d %016Lx\n%s\n" (String.length payload) (fnv64 payload)
    payload

(* ---------------- recovery ---------------- *)

type recovery = {
  payloads : string list;  (* the valid prefix, in append order *)
  valid_bytes : int;  (* file offset just past the last valid record *)
  dropped_bytes : int;  (* torn/corrupt tail length *)
}

let recover_string (s : string) : recovery =
  let n = String.length s in
  let payloads = ref [] in
  let pos = ref 0 in
  let ok = ref true in
  while !ok do
    match String.index_from_opt s !pos '\n' with
    | None -> ok := false
    | Some nl -> (
        let header = String.sub s !pos (nl - !pos) in
        match String.split_on_char ' ' header with
        | [ "rec"; len; hex ] -> (
            match int_of_string_opt len with
            | Some len when len >= 0 && nl + 1 + len + 1 <= n ->
                let payload = String.sub s (nl + 1) len in
                if
                  s.[nl + 1 + len] = '\n'
                  && String.lowercase_ascii hex
                     = Printf.sprintf "%016Lx" (fnv64 payload)
                then begin
                  payloads := payload :: !payloads;
                  pos := nl + 1 + len + 1
                end
                else ok := false
            | _ -> ok := false)
        | _ -> ok := false)
  done;
  { payloads = List.rev !payloads; valid_bytes = !pos; dropped_bytes = n - !pos }

let read_whole path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      Some (really_input_string ic (in_channel_length ic))

let recover path =
  match read_whole path with
  | None -> { payloads = []; valid_bytes = 0; dropped_bytes = 0 }
  | Some s -> recover_string s

(* ---------------- appending ---------------- *)

(* Shared ENOSPC/EIO injection check for every durable-write site (WAL
   appends here; snapshot commits and durable-ack files in their own
   modules).  Raises a REAL [Unix.Unix_error] so absorbing layers treat
   injected and genuine disk faults identically.  [attempt] lets retry
   loops re-ask: with P < 1 a retried write usually succeeds. *)
let disk_fault ~key ~attempt ~fn path =
  match Fault.active () with
  | Some sp when Fault.fires sp Fault.Enospc ~key ~attempt ->
      raise (Unix.Unix_error (Unix.ENOSPC, fn, path))
  | Some sp when Fault.fires sp Fault.Eio ~key ~attempt ->
      raise (Unix.Unix_error (Unix.EIO, fn, path))
  | _ -> ()

let is_disk_fault = function
  | Unix.Unix_error ((Unix.ENOSPC | Unix.EIO), _, _) -> true
  | _ -> false

type t = {
  path : string;
  fd : Unix.file_descr;
  fsync : bool;
  mutable records : int; (* records in the file, recovered + appended *)
  mutable disk_attempts : int; (* failed tries of the current record *)
  mutable closed : bool;
}

let open_ ?(fsync = true) path =
  let r = recover path in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  (* drop the torn tail so appends continue the valid prefix *)
  Unix.ftruncate fd r.valid_bytes;
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  if fsync && r.dropped_bytes > 0 then Unix.fsync fd;
  ( { path; fd; fsync; records = List.length r.payloads; disk_attempts = 0;
      closed = false },
    r )

let write_all fd (s : string) =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let append t payload =
  if t.closed then invalid_arg "Wal.append: closed";
  let record = frame payload in
  (* fault injection: die mid-write, leaving a torn tail for recovery *)
  (match Fault.active () with
  | Some sp when Fault.fires sp Fault.Wal_torn ~key:t.records ~attempt:0 ->
      write_all t.fd (String.sub record 0 (String.length record / 2));
      if t.fsync then Unix.fsync t.fd;
      raise (Fault.Injected (Fault.injected_msg Fault.Wal_torn ~key:t.records))
  | _ -> ());
  (* injected ENOSPC/EIO: fail BEFORE any byte lands (the file stays a
     valid prefix); the per-record attempt counter advances so a caller
     retrying a buffered record can succeed when P < 1 *)
  (try disk_fault ~key:t.records ~attempt:t.disk_attempts ~fn:"write" t.path
   with e ->
     t.disk_attempts <- t.disk_attempts + 1;
     raise e);
  write_all t.fd record;
  if t.fsync then Unix.fsync t.fd;
  t.records <- t.records + 1;
  t.disk_attempts <- 0

let records t = t.records
let path t = t.path

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try if t.fsync then Unix.fsync t.fd with Unix.Unix_error _ -> ());
    Unix.close t.fd
  end
