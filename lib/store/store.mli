(** Crash-safe profile store: epoch'd {!S89_profiling.Database} v2
    snapshots plus a checksummed write-ahead log ({!Wal}).  Every
    completed append is durable before it returns; compaction commits by
    atomic rename; recovery replays the WAL's valid prefix on top of the
    newest valid snapshot — a kill at any byte loses at most the
    in-flight record and never corrupts or double-counts the database. *)

module Database = S89_profiling.Database
module Diag = S89_diag.Diag

type cond = Database.cond

(** A checksum-valid record whose contents do not parse (format
    mismatch, not a torn write — those are dropped by recovery). *)
exception Corrupt of string

type t

(** Open (creating the directory if needed) and recover.  Appends are
    fsync'd unless [~fsync:false] (tests, benchmarks).  A WAL that
    accumulates [compact_threshold] run records is compacted
    automatically.

    [?on_disk_fault] is called whenever an append or compaction hits a
    (real or injected) ENOSPC/EIO.  Such faults are ABSORBED, not
    raised: the record is buffered in memory, the merged view keeps
    serving, later appends retry the buffer, and a successful compaction
    drains it wholesale (the snapshot is written from memory).  The TCP
    server uses the callback to enter its SRV007 disk-pressure state. *)
val open_ :
  ?fsync:bool ->
  ?compact_threshold:int ->
  ?on_disk_fault:(exn -> unit) ->
  dir:string ->
  unit ->
  t

(** Is the store in weakened-durability mode (a disk fault left records
    buffered in memory)?  Cleared when a flush or compaction drains the
    buffer. *)
val degraded : t -> bool

(** Records currently buffered awaiting disk. *)
val pending_records : t -> int

(** Retry buffered records now; [true] when the buffer drained (also
    clears {!degraded}).  Never raises on ENOSPC/EIO. *)
val flush : t -> bool

(** [write_atomic ~fsync path content] — the shared tmp + fsync + rename
    + directory-fsync atomic write (also the snapshot commit path).
    Carries the [enospc]/[eio] injection site keyed by [path]: a firing
    decision raises [Unix.Unix_error] before the tmp file exists, so the
    previous state is untouched.  Exposed for the server's durable-ack
    files. *)
val write_atomic : fsync:bool -> string -> string -> unit

(** The merged view (snapshot + replayed WAL).  Shares structure with the
    store: do not mutate. *)
val database : t -> Database.t

(** Accumulated profiling runs (snapshot + WAL). *)
val runs : t -> int

(** Batch metadata, last write per key wins. *)
val meta : t -> (string * string) list

val meta_find : t -> string -> string option

(** Merge metadata keys (durable: appended as a WAL record). *)
val set_meta : t -> (string * string) list -> unit

(** Journal lines (e.g. per-procedure analysis completions), oldest
    first, deduplicated.  Carried across compactions. *)
val events : t -> string list

(** Append one journal line (durable; no-op if already present). *)
val append_event : t -> string -> unit

(** Memoized analysis summaries (the [memo-%06d] record family), oldest
    first, as [(fingerprint, proc, TIME, VAR)].  Last write per
    fingerprint wins; carried across compactions. *)
val memos : t -> (int64 * string * float * float) list

(** Append (or overwrite) one memo summary, durable before returning.
    A no-op when the fingerprint already holds identical values. *)
val append_memo : t -> fp:int64 -> name:string -> time:float -> var:float -> unit

(** What recovery had to report: [DB002] (torn WAL tail dropped),
    [DB003] (corrupt snapshot skipped). *)
val recovery_diags : t -> Diag.t list

val epoch : t -> int

(** Records in the current WAL (all kinds). *)
val wal_records : t -> int

(** Append one completed profiling run's per-procedure totals (durable
    before returning).  Triggers compaction at [compact_threshold]. *)
val append_run : t -> seed:int -> (string, (cond, int) Hashtbl.t) Hashtbl.t -> unit

(** Fold the WAL into a fresh snapshot (atomic) and start a new epoch,
    carrying metadata and journal forward. *)
val compact : t -> unit

(** Write the merged database to [path] atomically (Database v2 format). *)
val export : t -> string -> unit

val close : t -> unit
