(* Crash-safe profile store: epoch'd snapshots + a write-ahead log.

   Layout of a store directory:

       snapshot-<epoch>.db   the profile database folded up to the start
                             of the epoch, in the Database v2 text format
                             (checksummed, human-inspectable)
       wal-<epoch>.log       checksummed records appended since then

   Record payloads (one [Wal] record each):

       meta\n<key> <value>...      batch metadata (source digest, seed, runs)
       run <seed>\ntotal <proc> <node> <label> <v>...
                                   one completed profiling run's totals
       event <text>                a journal line (e.g. per-procedure
                                   analysis completions)
       memo-<id> <fp> <time> <var> <proc>
                                   one memoized per-procedure analysis
                                   summary: the content fingerprint and
                                   its TIME/VAR totals ([%h] floats, so
                                   the round-trip is lossless); ids are
                                   monotonic per store, last write per
                                   fingerprint wins

   Crash-safety invariants:

   - every completed [append_run]/[append_event]/[set_meta] is durable
     (fsync'd) before it returns; a kill mid-append leaves a torn tail
     that recovery drops, losing at most the in-flight record;
   - compaction commits by ATOMIC RENAME of the new snapshot: the new
     epoch's WAL (carrying the metadata and journal forward) is written
     BEFORE the rename, so whichever side of the commit point a crash
     lands on, recovery sees one consistent (snapshot, wal) pair and no
     run is ever replayed twice or lost;
   - recovery picks the highest-epoch snapshot that validates (a corrupt
     one is reported and skipped), replays its WAL's valid prefix on top,
     and deletes stale files from older epochs.

   Disk-fault degradation: an append that fails with ENOSPC/EIO (real or
   injected via [S89_FAULTS=enospc:P]/[eio:P]) is ABSORBED — the record
   is buffered in memory (in order) and the store keeps serving from its
   merged view; every later append first retries the buffer, and a
   successful compaction drains it wholesale (the snapshot is written
   from memory, so buffered records become durable with the epoch
   commit).  [degraded] reports the weakened-durability state and
   [?on_disk_fault] notifies the embedding service (the TCP server uses
   it to enter its SRV007 disk-pressure state).  Only ENOSPC/EIO are
   absorbed: other write errors still propagate.

   The merged in-memory view is a plain [Database.t]; estimates read it
   through [Database.proc_totals], which is iteration-order deterministic,
   so a resumed batch reproduces an uninterrupted run byte-for-byte. *)

module Database = S89_profiling.Database
module Diag = S89_diag.Diag
module Fault = S89_util.Fault

type cond = Database.cond

exception Corrupt of string

let corruptf fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

type memo_rec = { m_id : int; m_name : string; m_time : float; m_var : float }

type t = {
  dir : string;
  fsync : bool;
  compact_threshold : int;
  on_disk_fault : (exn -> unit) option;
  db : Database.t; (* merged view: snapshot + replayed WAL *)
  mutable epoch : int;
  mutable wal : Wal.t;
  mutable wal_runs : int; (* run records in the current WAL *)
  mutable meta : (string * string) list;
  mutable events : string list; (* journal, oldest first, deduplicated *)
  mutable memos : (int64, memo_rec) Hashtbl.t; (* fingerprint -> summary *)
  mutable memo_seq : int; (* next memo record id *)
  mutable diags : Diag.t list; (* recovery diagnostics, oldest first *)
  pending : string Queue.t; (* records awaiting disk, oldest first *)
  mutable degraded : bool; (* a disk fault left [pending] non-empty *)
}

let snapshot_path dir epoch = Filename.concat dir (Printf.sprintf "snapshot-%06d.db" epoch)
let wal_path dir epoch = Filename.concat dir (Printf.sprintf "wal-%06d.log" epoch)

(* ---------------- record payloads ---------------- *)

let run_payload ~seed (totals : (string, (cond, int) Hashtbl.t) Hashtbl.t) =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "run %d" seed;
  let rows =
    Hashtbl.fold
      (fun proc tbl acc ->
        Hashtbl.fold (fun cond v acc -> (proc, cond, v) :: acc) tbl acc)
      totals []
    |> List.sort compare
  in
  List.iter
    (fun (proc, (node, label), v) ->
      Printf.bprintf buf "\ntotal %s %d %s %d" proc node
        (S89_cfg.Label.to_string label) v)
    rows;
  Buffer.contents buf

let meta_payload kvs =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "meta";
  List.iter (fun (k, v) -> Printf.bprintf buf "\n%s %s" k v) kvs;
  Buffer.contents buf

let event_payload text = "event " ^ text

(* the memo-%06d record family: one numbered, checksummed (by the WAL
   framing) summary of a memoized per-procedure analysis — [%h] floats
   round-trip losslessly *)
let memo_payload ~id ~fp ~name ~time ~var =
  Printf.sprintf "memo-%06d %016Lx %h %h %s" id fp time var name

(* parse one checksum-valid record into the store state; a record that
   passes its checksum but does not parse indicates a format mismatch,
   which is a hard [Corrupt] (recovery already dropped torn tails) *)
let replay t payload =
  match String.split_on_char '\n' payload with
  | first :: rest when String.length first >= 4 && String.sub first 0 4 = "run " -> (
      match int_of_string_opt (String.sub first 4 (String.length first - 4)) with
      | None -> corruptf "bad run record header: %s" first
      | Some _seed ->
          let per_proc : (string, (cond, int) Hashtbl.t) Hashtbl.t =
            Hashtbl.create 8
          in
          List.iter
            (fun line ->
              match String.split_on_char ' ' line with
              | [ "total"; proc; node; label; v ] -> (
                  match
                    ( int_of_string_opt node,
                      Database.label_of_string label,
                      int_of_string_opt v )
                  with
                  | Some node, Some label, Some v ->
                      let tbl =
                        match Hashtbl.find_opt per_proc proc with
                        | Some tbl -> tbl
                        | None ->
                            let tbl = Hashtbl.create 16 in
                            Hashtbl.replace per_proc proc tbl;
                            tbl
                      in
                      Hashtbl.replace tbl (node, label) v
                  | _ -> corruptf "bad total row in run record: %s" line)
              | _ -> corruptf "unrecognized line in run record: %s" line)
            rest;
          Database.accumulate t.db per_proc;
          t.wal_runs <- t.wal_runs + 1)
  | [ "meta" ] -> ()
  | "meta" :: kvs ->
      List.iter
        (fun line ->
          match String.index_opt line ' ' with
          | Some i ->
              let k = String.sub line 0 i in
              let v = String.sub line (i + 1) (String.length line - i - 1) in
              t.meta <- (k, v) :: List.remove_assoc k t.meta
          | None -> corruptf "bad meta line: %s" line)
        kvs
  | [ line ] when String.length line >= 6 && String.sub line 0 6 = "event " ->
      let text = String.sub line 6 (String.length line - 6) in
      if not (List.mem text t.events) then t.events <- t.events @ [ text ]
  | [ line ] when String.length line >= 5 && String.sub line 0 5 = "memo-" -> (
      match String.split_on_char ' ' line with
      | [ header; fp; time; var; name ] -> (
          match
            ( int_of_string_opt (String.sub header 5 (String.length header - 5)),
              Int64.of_string_opt ("0x" ^ fp),
              float_of_string_opt time,
              float_of_string_opt var )
          with
          | Some id, Some fp, Some time, Some var ->
              Hashtbl.replace t.memos fp { m_id = id; m_name = name; m_time = time; m_var = var };
              t.memo_seq <- max t.memo_seq (id + 1)
          | _ -> corruptf "bad memo record: %s" line)
      | _ -> corruptf "bad memo record: %s" line)
  | _ -> corruptf "unrecognized record: %s" (String.escaped payload)

(* ---------------- opening / recovery ---------------- *)

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

(* (epoch, path) pairs for files matching prefix..suffix, newest first *)
let scan dir ~prefix ~suffix =
  let files = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.to_list files
  |> List.filter_map (fun f ->
         let pl = String.length prefix and sl = String.length suffix in
         if
           String.length f = pl + 6 + sl
           && String.sub f 0 pl = prefix
           && String.sub f (String.length f - sl) sl = suffix
         then
           Option.map
             (fun e -> (e, Filename.concat dir f))
             (int_of_string_opt (String.sub f pl 6))
         else None)
  |> List.sort (fun (a, _) (b, _) -> compare b a)

let open_ ?(fsync = true) ?(compact_threshold = 64) ?on_disk_fault ~dir () =
  mkdir_p dir;
  let snaps = scan dir ~prefix:"snapshot-" ~suffix:".db" in
  let wals = scan dir ~prefix:"wal-" ~suffix:".log" in
  let db = Database.create () in
  let diags = ref [] in
  (* highest-epoch snapshot that validates; corrupt ones are skipped
     (atomic rename makes them near-impossible, but a disk can bit-rot) *)
  let epoch =
    let rec pick = function
      | [] -> None
      | (e, path) :: rest -> (
          match Database.load path with
          | snap ->
              Database.merge ~into:db snap;
              Some e
          | exception Database.Load_error { line; msg } ->
              diags :=
                Diag.warningf ~code:"DB003" ~line
                  ~hint:"falling back to the previous snapshot" "corrupt snapshot %s: %s"
                  path msg
                :: !diags;
              pick rest)
    in
    match pick snaps with
    | Some e -> e
    | None -> (
        (* no committed snapshot: the OLDEST WAL is authoritative — a
           higher-epoch WAL without its snapshot is an uncommitted
           compaction (the crash window between writing the new WAL and
           the atomic rename) and must be discarded, not replayed *)
        match List.rev wals with
        | (e, _) :: _ -> e
        | [] -> 0)
  in
  let wal, recovery = Wal.open_ ~fsync (wal_path dir epoch) in
  if recovery.Wal.dropped_bytes > 0 then
    diags :=
      Diag.warningf ~code:"DB002"
        ~hint:"a writer died mid-append; completed records are intact"
        "dropped %d bytes of torn WAL tail (%d records recovered)"
        recovery.Wal.dropped_bytes
        (List.length recovery.Wal.payloads)
      :: !diags;
  let t =
    { dir; fsync; compact_threshold; on_disk_fault; db; epoch; wal;
      wal_runs = 0; meta = []; events = []; memos = Hashtbl.create 16;
      memo_seq = 0; diags = []; pending = Queue.create (); degraded = false }
  in
  List.iter (replay t) recovery.Wal.payloads;
  (* stale files from other epochs (interrupted compactions), plus any
     half-written snapshot temp files left by a crash before rename *)
  List.iter
    (fun (e, path) ->
      if e <> epoch then try Sys.remove path with Sys_error _ -> ())
    (snaps @ wals);
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".tmp" then
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  t.diags <- List.rev !diags;
  t

let database t = t.db
let runs t = Database.runs t.db
let meta t = t.meta
let meta_find t key = List.assoc_opt key t.meta
let events t = t.events
let recovery_diags t = t.diags
let epoch t = t.epoch
let wal_records t = Wal.records t.wal

(* memo summaries, oldest first (ascending record id) *)
let memos t =
  Hashtbl.fold (fun fp r acc -> (fp, r) :: acc) t.memos []
  |> List.sort (fun (_, a) (_, b) -> compare a.m_id b.m_id)
  |> List.map (fun (fp, r) -> (fp, r.m_name, r.m_time, r.m_var))

(* ---------------- appending ---------------- *)

let notify_disk_fault t e =
  t.degraded <- true;
  match t.on_disk_fault with Some f -> f e | None -> ()

(* Retry buffered records in order; true when the buffer drained.  Only
   ENOSPC/EIO keep a record buffered — anything else propagates. *)
let flush t =
  let rec go () =
    match Queue.peek_opt t.pending with
    | None -> true
    | Some p -> (
        match Wal.append t.wal p with
        | () ->
            ignore (Queue.pop t.pending : string);
            go ()
        | exception e when Wal.is_disk_fault e -> false)
  in
  let drained = go () in
  if drained then t.degraded <- false;
  drained

(* The durable-append with ENOSPC/EIO absorption: buffered records go
   first (WAL order = logical order), and a record that cannot reach the
   disk joins the buffer instead of failing the operation — the merged
   in-memory view stays authoritative, durability is restored by a later
   flush or by the next successful compaction. *)
let wal_append t payload =
  if flush t then (
    match Wal.append t.wal payload with
    | () -> ()
    | exception e when Wal.is_disk_fault e ->
        Queue.add payload t.pending;
        notify_disk_fault t e)
  else begin
    Queue.add payload t.pending;
    notify_disk_fault t (Unix.Unix_error (Unix.ENOSPC, "write", Wal.path t.wal))
  end

let degraded t = t.degraded
let pending_records t = Queue.length t.pending

let append_event t text =
  if String.contains text '\n' then invalid_arg "Store.append_event: newline";
  if not (List.mem text t.events) then begin
    wal_append t (event_payload text);
    t.events <- t.events @ [ text ]
  end

let set_meta t kvs =
  List.iter
    (fun (k, v) ->
      if String.contains k ' ' || String.contains k '\n' then
        invalid_arg "Store.set_meta: key with space/newline";
      if String.contains v '\n' then invalid_arg "Store.set_meta: value with newline")
    kvs;
  wal_append t (meta_payload kvs);
  List.iter (fun (k, v) -> t.meta <- (k, v) :: List.remove_assoc k t.meta) kvs

let append_memo t ~fp ~name ~time ~var =
  if String.contains name ' ' || String.contains name '\n' then
    invalid_arg "Store.append_memo: name with space/newline";
  let changed =
    match Hashtbl.find_opt t.memos fp with
    | Some r -> not (r.m_name = name && r.m_time = time && r.m_var = var)
    | None -> true
  in
  if changed then begin
    let id = t.memo_seq in
    t.memo_seq <- id + 1;
    wal_append t (memo_payload ~id ~fp ~name ~time ~var);
    Hashtbl.replace t.memos fp { m_id = id; m_name = name; m_time = time; m_var = var }
  end

(* ---------------- compaction ---------------- *)

(* Directory fsync: a rename (or file creation) is only durable across
   power loss once its DIRECTORY entry is synced — fsyncing the file
   alone pins the bytes, not the name.  This is the durability point of
   both the snapshot atomic-rename commit and the new-epoch WAL
   creation, so it carries its own fault site ([dir_fsync:P]) for chaos
   runs to prove a crash here never loses a committed record. *)
let fsync_dir ~fsync dir =
  if fsync then begin
    (match Fault.active () with
    | Some sp
      when Fault.fires sp Fault.Dir_fsync ~key:(Fault.string_key dir) ~attempt:0
      ->
        raise
          (Fault.Injected
             (Fault.injected_msg Fault.Dir_fsync ~key:(Fault.string_key dir)))
    | _ -> ());
    match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
    | exception Unix.Unix_error _ -> ()
    | dirfd ->
        (try Unix.fsync dirfd with Unix.Unix_error _ -> ());
        Unix.close dirfd
  end

(* Per-path attempt streams for the atomic-write injection point below:
   deterministic per path, advancing on every injected failure so a
   retried commit can succeed when P < 1 (mirrors [Wal.append]'s
   per-record attempt counter). *)
let atomic_attempts : (string, int) Hashtbl.t = Hashtbl.create 8
let atomic_mu = Mutex.create ()

let atomic_disk_fault path =
  let attempt =
    Mutex.lock atomic_mu;
    let a = Option.value ~default:0 (Hashtbl.find_opt atomic_attempts path) in
    Mutex.unlock atomic_mu;
    a
  in
  match Wal.disk_fault ~key:(Fault.string_key path) ~attempt ~fn:"write" path with
  | () ->
      Mutex.lock atomic_mu;
      Hashtbl.remove atomic_attempts path;
      Mutex.unlock atomic_mu
  | exception e ->
      Mutex.lock atomic_mu;
      Hashtbl.replace atomic_attempts path (attempt + 1);
      Mutex.unlock atomic_mu;
      raise e

let write_atomic ~fsync path content =
  (* injected ENOSPC/EIO: the commit fails before the tmp file exists,
     so a crash-free caller can simply keep the previous state *)
  atomic_disk_fault path;
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (try
     let b = Bytes.unsafe_of_string content in
     let n = Bytes.length b in
     let off = ref 0 in
     while !off < n do
       off := !off + Unix.write fd b !off (n - !off)
     done;
     if fsync then Unix.fsync fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.close fd;
  Sys.rename tmp path;
  (* the rename itself only becomes durable with the directory entry *)
  fsync_dir ~fsync (Filename.dirname path)

let compact t =
  let next = t.epoch + 1 in
  (* the new epoch's WAL first, carrying metadata + journal forward — if
     we crash before the rename below, recovery stays on the old epoch
     and deletes this file as stale *)
  (try Sys.remove (wal_path t.dir next) with Sys_error _ -> ());
  let new_wal, _ = Wal.open_ ~fsync:t.fsync (wal_path t.dir next) in
  match
    (* the new WAL's directory entry must be durable BEFORE the snapshot
       rename commits: a power cut after the commit but before this sync
       could otherwise surface the new snapshot without its WAL *)
    fsync_dir ~fsync:t.fsync t.dir;
    if t.meta <> [] then Wal.append new_wal (meta_payload t.meta);
    List.iter (fun ev -> Wal.append new_wal (event_payload ev)) t.events;
    (* the memo table rides compaction like the journal: re-appended to the
       new epoch's WAL in id order, keeping ids stable across epochs *)
    Hashtbl.fold (fun fp r acc -> (fp, r) :: acc) t.memos []
    |> List.sort (fun (_, a) (_, b) -> compare a.m_id b.m_id)
    |> List.iter (fun (fp, r) ->
           Wal.append new_wal
             (memo_payload ~id:r.m_id ~fp ~name:r.m_name ~time:r.m_time ~var:r.m_var));
    (* commit point: atomic rename of the snapshot *)
    write_atomic ~fsync:t.fsync (snapshot_path t.dir next) (Database.to_string t.db)
  with
  | () ->
      (* the old epoch's files are now stale *)
      Wal.close t.wal;
      (try Sys.remove (wal_path t.dir t.epoch) with Sys_error _ -> ());
      (try Sys.remove (snapshot_path t.dir t.epoch) with Sys_error _ -> ());
      t.wal <- new_wal;
      t.epoch <- next;
      t.wal_runs <- 0;
      (* the snapshot and carried-forward records were written from the
         in-memory state, which includes everything buffered — a
         successful compaction IS the flush *)
      Queue.clear t.pending;
      t.degraded <- false
  | exception e when Wal.is_disk_fault e ->
      (* disk failed mid-compaction: stay on the current epoch (it is
         untouched), drop the partial next epoch, and retry only after
         another [compact_threshold] runs instead of on every append *)
      Wal.close new_wal;
      (try Sys.remove (wal_path t.dir next) with Sys_error _ -> ());
      (try Sys.remove (snapshot_path t.dir next ^ ".tmp") with Sys_error _ -> ());
      t.wal_runs <- 0;
      notify_disk_fault t e

let append_run t ~seed totals =
  wal_append t (run_payload ~seed totals);
  Database.accumulate t.db totals;
  t.wal_runs <- t.wal_runs + 1;
  if t.wal_runs >= t.compact_threshold then compact t

let export t path = write_atomic ~fsync:t.fsync path (Database.to_string t.db)

let close t =
  (* best-effort final drain: buffered records get one more shot at the
     disk before the fd goes away (a still-failing disk leaves them to
     the snapshot-from-memory path of a future reopen's compaction —
     i.e. they are lost with the process, the documented degradation) *)
  if not (Queue.is_empty t.pending) then ignore (flush t : bool);
  Wal.close t.wal
