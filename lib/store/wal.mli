(** Append-only write-ahead log of checksummed records.  Each record is
    framed as [rec <bytes> <fnv64-hex>\n<payload>\n]; recovery keeps
    exactly the valid prefix of records, so a writer killed at any byte
    loses at most its in-flight record. *)

(** What recovery found in a log file. *)
type recovery = {
  payloads : string list;  (** the valid record payloads, in append order *)
  valid_bytes : int;  (** offset just past the last valid record *)
  dropped_bytes : int;  (** length of the torn/corrupt tail *)
}

(** Recover the valid prefix of a log image / file.  A missing file is an
    empty log.  Never raises on corrupt input. *)
val recover_string : string -> recovery

val recover : string -> recovery

(** The on-disk framing of one payload (exposed for tests). *)
val frame : string -> string

(** FNV-1a/64 as used by the record checksums. *)
val fnv64 : string -> int64

type t

(** Open for appending: recovers, truncates the file to the valid prefix
    (so appends never land after a torn tail), and positions at the end.
    [~fsync:false] trades durability for speed (tests, benchmarks). *)
val open_ : ?fsync:bool -> string -> t * recovery

(** Append one record; durable before returning when [fsync] is on.
    Under [S89_FAULTS=wal_torn:P] a firing decision (keyed by the record
    index) writes a torn half-record and raises [Fault.Injected],
    simulating a writer dying mid-append.  Under [enospc:P] / [eio:P] a
    firing decision raises [Unix.Unix_error (ENOSPC|EIO, _, _)] before
    any byte lands — the file stays a valid prefix and the caller
    decides whether to buffer, shed, or die; retrying the append re-asks
    the decision with an advanced attempt counter. *)
val append : t -> string -> unit

(** [disk_fault ~key ~attempt ~fn path] — the shared injected-ENOSPC/EIO
    decision point used by every durable-write site (WAL appends,
    snapshot commits, durable-ack files).  Raises a real
    [Unix.Unix_error (ENOSPC|EIO, fn, path)] when the [enospc]/[eio]
    site fires for [(key, attempt)]; a no-op otherwise. *)
val disk_fault : key:int -> attempt:int -> fn:string -> string -> unit

(** Is this exception a (real or injected) disk-space/media fault? *)
val is_disk_fault : exn -> bool

(** Records in the file (recovered + appended). *)
val records : t -> int

val path : t -> string
val close : t -> unit
