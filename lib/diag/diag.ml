(* Structured diagnostics: the one error currency of the whole system.

   Every layer (frontend, analyses, estimator, VM, profiling, CLI) still
   raises its historical exceptions for programmatic callers, but anything
   that crosses a service boundary — the CLI, the pipeline's graceful
   degradation, the fuzzer's triage — is converted into a [t]: a severity,
   a stable machine-readable code, an optional procedure/source location,
   a human message and an optional hint.

   Codes are stable identifiers (catalogued in docs/ERRORS.md); messages
   are free-form and may change.  The code's family determines the CLI
   exit code, so scripts can dispatch on either. *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;
  proc : string option; (* procedure the diagnostic concerns, if known *)
  line : int option; (* 1-based source line, if known *)
  message : string;
  hint : string option;
}

let v ?(severity = Error) ?proc ?line ?hint ~code message =
  { severity; code; proc; line; message; hint }

let error ?proc ?line ?hint ~code message =
  v ~severity:Error ?proc ?line ?hint ~code message

let warning ?proc ?line ?hint ~code message =
  v ~severity:Warning ?proc ?line ?hint ~code message

let info ?proc ?line ?hint ~code message =
  v ~severity:Info ?proc ?line ?hint ~code message

let errorf ?proc ?line ?hint ~code fmt =
  Format.kasprintf (error ?proc ?line ?hint ~code) fmt

let warningf ?proc ?line ?hint ~code fmt =
  Format.kasprintf (warning ?proc ?line ?hint ~code) fmt

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let is_error d = d.severity = Error

(* ---------------- exit codes ----------------

   The CLI contract (docs/ERRORS.md): 0 success, 2 usage/IO, 3
   parse/sema/lowering, 4 analysis/estimation, 5 runtime.  The family is
   the code's alphabetic prefix, so new codes inherit their family's exit
   code automatically. *)

let exit_io = 2
let exit_frontend = 3
let exit_analysis = 4
let exit_runtime = 5

let family d =
  let n = String.length d.code in
  let rec alpha i = if i < n && d.code.[i] >= 'A' && d.code.[i] <= 'Z' then alpha (i + 1) else i in
  String.sub d.code 0 (alpha 0)

let exit_code d =
  match family d with
  | "IO" | "DB" | "CLI" | "PGO" | "MEMO" -> exit_io
  | "LEX" | "PAR" | "SEM" | "LOW" -> exit_frontend
  | "ANA" | "EST" -> exit_analysis
  | "RUN" | "FLT" | "SRV" | "NET" -> exit_runtime
  | _ -> exit_io

(* ---------------- printing ---------------- *)

(* one line: `error[LEX001] PROC:12: message (hint)` — the format the CLI
   prints on stderr and the fuzzer records in crash artifacts *)
let pp fmt d =
  Fmt.pf fmt "%s[%s]" (severity_string d.severity) d.code;
  (match (d.proc, d.line) with
  | Some p, Some l -> Fmt.pf fmt " %s:%d:" p l
  | Some p, None -> Fmt.pf fmt " %s:" p
  | None, Some l -> Fmt.pf fmt " line %d:" l
  | None, None -> Fmt.pf fmt ":");
  Fmt.pf fmt " %s" d.message;
  match d.hint with None -> () | Some h -> Fmt.pf fmt " (hint: %s)" h

let to_string d = Fmt.str "%a" pp d

(* ---------------- result helpers ---------------- *)

type 'a r = ('a, t) result

let get_ok = function
  | Ok v -> v
  | Error d -> failwith (to_string d)

let errors ds = List.filter is_error ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds
