(** Structured diagnostics: severity, stable code, optional
    procedure/source location, message and hint — the error currency
    every layer converts its exceptions into at service boundaries.
    Codes (and the CLI exit-code families derived from them) are
    catalogued in docs/ERRORS.md. *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;  (** stable machine-readable code, e.g. ["LEX001"] *)
  proc : string option;  (** procedure concerned, if known *)
  line : int option;  (** 1-based source line, if known *)
  message : string;
  hint : string option;
}

val v :
  ?severity:severity -> ?proc:string -> ?line:int -> ?hint:string ->
  code:string -> string -> t

val error : ?proc:string -> ?line:int -> ?hint:string -> code:string -> string -> t
val warning : ?proc:string -> ?line:int -> ?hint:string -> code:string -> string -> t
val info : ?proc:string -> ?line:int -> ?hint:string -> code:string -> string -> t

(** [Format]-style constructors. *)
val errorf :
  ?proc:string -> ?line:int -> ?hint:string -> code:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val warningf :
  ?proc:string -> ?line:int -> ?hint:string -> code:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val severity_string : severity -> string
val is_error : t -> bool

(** CLI exit codes per code family: 2 usage/IO ([IO]/[DB]/[CLI]),
    3 parse/sema/lowering ([LEX]/[PAR]/[SEM]/[LOW]), 4 analysis/estimation
    ([ANA]/[EST]), 5 runtime/service ([RUN]/[FLT]/[SRV]). *)
val exit_code : t -> int

val exit_io : int
val exit_frontend : int
val exit_analysis : int
val exit_runtime : int

(** The code's alphabetic prefix ("LEX", "DB", ...). *)
val family : t -> string

(** One-line rendering: [error[LEX001] PROC:12: message (hint: ...)]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

type 'a r = ('a, t) result

(** [Ok v -> v]; [Error d -> failwith (to_string d)] — for callers that
    want the exception shim back. *)
val get_ok : 'a r -> 'a

val errors : t list -> t list
val warnings : t list -> t list
