(** Scalar optimizer over statement-level CFGs: constant folding and
    algebraic simplification, local constant propagation (conservative
    around calls and parameter aliasing), dead scalar-assignment
    elimination and no-op elision.  Together with the two
    {!Cost_model} presets it models Table 1's "compiler optimization
    ON/OFF" axis.  RAND/IRAND are treated as side-effecting so profiled
    frequencies stay comparable across optimization levels. *)

module Program = S89_frontend.Program
module Ir = S89_frontend.Ir

(** Whether an expression may have effects (user calls, RAND/IRAND). *)
val expr_impure : Program.t option -> S89_frontend.Ast.expr -> bool

(** Fold one expression. *)
val fold : Program.t option -> S89_frontend.Ast.expr -> S89_frontend.Ast.expr

(** Optimize one procedure's CFG (mutates payloads; returns a rebuilt
    graph).  Prefer {!program}, which copies first. *)
val optimize_cfg : ?program:Program.t -> Program.proc -> Ir.info S89_cfg.Cfg.t

(** Whole-program optimization; the input program is left untouched. *)
val program : Program.t -> Program.t

(** Node-id-preserving reoptimization for the PGO loop: same folding /
    propagation / dead-code passes as {!program} but no-op nodes are kept
    (as [Nop]) rather than elided and control flow is untouched, so a
    frequency profile of the input indexes the output node-for-node and
    the cycle delta is exactly [sum execs(u) * (cost_old(u) -
    cost_new(u))].  [hot] gates effort per procedure (default: every
    procedure is hot): hot procedures get the full 3-round pipeline,
    cold ones a single folding pass.  The input program is untouched. *)
val reoptimize : ?hot:(string -> bool) -> Program.t -> Program.t
