(* Scalar optimizer over statement-level CFGs.

   Together with the two Cost_model presets, this models the paper's
   "Compiler optimization ON/OFF" axis of Table 1.  Passes:

   1. constant folding + algebraic simplification + a little strength
      reduction (x**2 -> x*x for cheap operands);
   2. local constant propagation along straight-line chains, with
      conservative clobbering around calls (by-reference arguments and
      parameter aliasing);
   3. dead scalar-assignment elimination;
   4. elision of no-op nodes (CONTINUEs, materialized GOTOs, dead assigns).

   RAND/IRAND are treated as side-effecting so that optimization does not
   perturb the random stream: profiled frequencies stay comparable across
   optimization levels, as they would with a real compiler. *)

module Ast = S89_frontend.Ast
module Ir = S89_frontend.Ir
module Program = S89_frontend.Program
module Sema = S89_frontend.Sema
module Lower = S89_frontend.Lower
open S89_cfg

(* ---- purity / effects ---- *)

let rec expr_impure (prog : Program.t option) (e : Ast.expr) =
  match e with
  | Ast.Int _ | Real _ | Bool _ | Var _ -> false
  | Index (_, idx) -> List.exists (expr_impure prog) idx
  | Call (f, args) ->
      let user = match prog with Some p -> Hashtbl.mem p.Program.by_name f | None -> false in
      user
      || f = "RAND" || f = "IRAND"
      || List.exists (expr_impure prog) args
  | Unop (_, e) -> expr_impure prog e
  | Binop (_, a, b) -> expr_impure prog a || expr_impure prog b

(* ---- pass 1: folding ---- *)

let value_of_lit = function
  | Ast.Int i -> Some (Value.Int i)
  | Ast.Real r -> Some (Value.Real r)
  | Ast.Bool b -> Some (Value.Bool b)
  | _ -> None

let lit_of_value = function
  | Value.Int i -> Ast.Int i
  | Value.Real r -> Ast.Real r
  | Value.Bool b -> Ast.Bool b

let is_cheap = function Ast.Var _ | Ast.Int _ | Ast.Real _ -> true | _ -> false

let rec fold prog (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Int _ | Real _ | Bool _ | Var _ -> e
  | Index (a, idx) -> Index (a, List.map (fold prog) idx)
  | Call (f, args) -> (
      let args = List.map (fold prog) args in
      let e = Ast.Call (f, args) in
      if expr_impure prog e then e
      else
        match List.map value_of_lit args with
        | vs when List.for_all Option.is_some vs
                  && S89_frontend.Intrinsics.is_intrinsic f -> (
            let vs = List.map Option.get vs in
            (* constant intrinsic application; RAND/IRAND excluded above *)
            let rng = S89_util.Prng.create ~seed:0 in
            match Builtins.apply rng f vs with
            | v -> lit_of_value v
            | exception Value.Runtime_error _ -> e)
        | _ -> e)
  | Unop (op, a) -> (
      let a = fold prog a in
      match (op, a) with
      | Ast.Neg, Ast.Int i -> Ast.Int (-i)
      | Ast.Neg, Ast.Real r -> Ast.Real (-.r)
      | Ast.Neg, Ast.Unop (Ast.Neg, x) -> x
      | Ast.Not, Ast.Bool b -> Ast.Bool (not b)
      | Ast.Not, Ast.Unop (Ast.Not, x) -> x
      | _ -> Unop (op, a))
  | Binop (op, a, b) -> (
      let a = fold prog a and b = fold prog b in
      let e = Ast.Binop (op, a, b) in
      match (value_of_lit a, value_of_lit b) with
      | Some va, Some vb -> (
          let r =
            match op with
            | Ast.Add -> Some (Value.add va vb)
            | Sub -> Some (Value.sub va vb)
            | Mul -> Some (Value.mul va vb)
            | Div -> ( try Some (Value.div va vb) with Value.Runtime_error _ -> None)
            | Pow -> ( try Some (Value.pow va vb) with Value.Runtime_error _ -> None)
            | Lt | Le | Gt | Ge | Eq | Ne -> (
                try Some (Value.rel op va vb) with Value.Runtime_error _ -> None)
            | And | Or -> (
                try Some (Value.logic op va vb) with Value.Runtime_error _ -> None)
          in
          match r with Some v -> lit_of_value v | None -> e)
      | _ ->
          let pure x = not (expr_impure prog x) in
          (* algebraic identities (only on pure discarded operands) *)
          (match (op, a, b) with
          | Ast.Add, Ast.Int 0, x | Ast.Add, x, Ast.Int 0 -> x
          | Ast.Add, Ast.Real 0.0, x | Ast.Add, x, Ast.Real 0.0 -> x
          | Ast.Sub, x, Ast.Int 0 | Ast.Sub, x, Ast.Real 0.0 -> x
          | Ast.Mul, Ast.Int 1, x | Ast.Mul, x, Ast.Int 1 -> x
          | Ast.Mul, Ast.Real 1.0, x | Ast.Mul, x, Ast.Real 1.0 -> x
          | Ast.Mul, (Ast.Int 0 as z), x when pure x -> z
          | Ast.Mul, x, (Ast.Int 0 as z) when pure x -> z
          | Ast.Div, x, Ast.Int 1 | Ast.Div, x, Ast.Real 1.0 -> x
          | Ast.Pow, x, Ast.Int 1 -> x
          | Ast.Pow, x, Ast.Int 2 when is_cheap x -> Ast.Binop (Ast.Mul, x, x)
          | _ -> e))

let fold_node prog (ir : Ir.node) : Ir.node =
  match ir with
  | Ir.Assign (Ast.Larr (a, idx), e) ->
      Ir.Assign (Ast.Larr (a, List.map (fold prog) idx), fold prog e)
  | Ir.Assign (lv, e) -> Ir.Assign (lv, fold prog e)
  | Ir.Branch e -> Ir.Branch (fold prog e)
  | Ir.Select (e, n) -> Ir.Select (fold prog e, n)
  | Ir.Call (f, args) -> Ir.Call (f, List.map (fold prog) args)
  | Ir.Print es -> Ir.Print (List.map (fold prog) es)
  | Ir.Entry | Ir.Nop _ | Ir.Do_test _ | Ir.Return | Ir.Stop -> ir

(* ---- pass 2: global constant propagation ----

   Classic Kildall-style dataflow over the statement-level CFG.  The
   lattice per scalar variable is [Const lit] / bottom, with "absent from
   the map" meaning bottom; a node's OUT is [None] until first visited so
   the meet only ranges over computed predecessors.  Conservative
   clobbering: a scalar passed by reference to a user call (or read while
   a user function runs) loses its constant, and writing a by-reference
   parameter clobbers all parameters (they may alias). *)

module SM = Map.Make (String)

let rec subst env (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Var v -> ( match SM.find_opt v env with Some lit -> lit | None -> e)
  | Ast.Int _ | Real _ | Bool _ -> e
  | Index (a, idx) -> Index (a, List.map (subst env) idx)
  | Call (f, args) -> Call (f, List.map (subst env) args)
  | Unop (op, a) -> Unop (op, subst env a)
  | Binop (op, a, b) -> Binop (op, subst env a, subst env b)

(* scalars a node's execution may clobber beyond its own left-hand side:
   variables passed (by reference) to user calls *)
let clobbered_by_calls prog ir =
  let user f =
    match prog with Some p -> Hashtbl.mem p.Program.by_name f | None -> true
  in
  let acc = ref [] in
  let rec scan (e : Ast.expr) =
    match e with
    | Ast.Call (f, args) ->
        if user f then
          List.iter (function Ast.Var v -> acc := v :: !acc | a -> scan a) args
        else List.iter scan args
    | Ast.Index (_, idx) -> List.iter scan idx
    | Ast.Unop (_, a) -> scan a
    | Ast.Binop (_, a, b) -> scan a; scan b
    | _ -> ()
  in
  (match ir with
  | Ir.Call (f, args) ->
      if user f then
        List.iter (function Ast.Var v -> acc := v :: !acc | a -> scan a) args
      else List.iter scan args
  | _ -> List.iter scan (Ir.exprs_of ir));
  !acc

(* transfer function: OUT from IN, after the node executes *)
let transfer prog is_param ir env =
  let env = List.fold_left (fun env v -> SM.remove v env) env (clobbered_by_calls prog ir) in
  match ir with
  | Ir.Assign (Ast.Lvar v, rhs) -> (
      let env = SM.remove v env in
      let env =
        if is_param v then SM.filter (fun w _ -> not (is_param w)) env else env
      in
      match value_of_lit rhs with Some _ -> SM.add v rhs env | None -> env)
  | Ir.Do_test d -> SM.remove d.Ir.trip_var env
  | _ -> env

let meet a b =
  SM.merge
    (fun _ x y -> match (x, y) with Some x, Some y when x = y -> Some x | _ -> None)
    a b

let propagate prog (proc : Program.proc) (cfg : Ir.info Cfg.t) : Ir.info Cfg.t =
  let is_param v = List.mem v proc.Program.params in
  let n = Cfg.num_nodes cfg in
  let g = Cfg.graph cfg in
  let entry = Cfg.entry cfg in
  let out : Ast.expr SM.t option array = Array.make n None in
  let rpo = S89_graph.Dfs.rev_postorder g ~root:entry in
  let env_in = Array.make n SM.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun u ->
        let in_env =
          if u = entry then SM.empty
          else
            List.fold_left
              (fun acc p ->
                match out.(p) with
                | None -> acc
                | Some o -> ( match acc with None -> Some o | Some a -> Some (meet a o)))
              None (S89_graph.Digraph.preds g u)
            |> Option.value ~default:SM.empty
        in
        env_in.(u) <- in_env;
        (* transfer on the node as currently written, with IN substituted
           into the right-hand sides for evaluation *)
        let ir = (Cfg.info cfg u).Ir.ir in
        let ir_eval =
          match ir with
          | Ir.Assign (lv, e) -> Ir.Assign (lv, fold prog (subst in_env e))
          | other -> other
        in
        let new_out = transfer prog is_param ir_eval in_env in
        let same =
          match out.(u) with
          | Some o -> SM.equal ( = ) o new_out
          | None -> false
        in
        if not same then begin
          out.(u) <- Some new_out;
          changed := true
        end)
      rpo
  done;
  (* rewrite every node under its IN environment *)
  Array.iter
    (fun u ->
      let info = Cfg.info cfg u in
      let env = env_in.(u) in
      let ir =
        match info.Ir.ir with
        | Ir.Assign (Ast.Larr (a, idx), e) ->
            Ir.Assign (Ast.Larr (a, List.map (subst env) idx), subst env e)
        | Ir.Assign (lv, e) -> Ir.Assign (lv, subst env e)
        | Ir.Branch e -> Ir.Branch (subst env e)
        | Ir.Select (e, k) -> Ir.Select (subst env e, k)
        | Ir.Call (f, args) -> Ir.Call (f, List.map (subst env) args)
        | Ir.Print es -> Ir.Print (List.map (subst env) es)
        | ir -> ir
      in
      Cfg.set_info cfg u { info with Ir.ir = fold_node prog ir })
    rpo;
  cfg

(* ---- pass 3: dead scalar assignments ---- *)

let read_vars (proc : Program.proc) (cfg : Ir.info Cfg.t) =
  let reads = Hashtbl.create 32 in
  let rec scan (e : Ast.expr) =
    match e with
    | Ast.Var v -> Hashtbl.replace reads v ()
    | Ast.Int _ | Real _ | Bool _ -> ()
    | Index (a, idx) ->
        Hashtbl.replace reads a ();
        List.iter scan idx
    | Call (_, args) -> List.iter scan args
    | Unop (_, a) -> scan a
    | Binop (_, a, b) -> scan a; scan b
  in
  Cfg.iter_nodes
    (fun u ->
      let info = Cfg.info cfg u in
      List.iter scan (Ir.exprs_of info.Ir.ir);
      (match info.Ir.ir with
      | Ir.Do_test d -> Hashtbl.replace reads d.Ir.trip_var ()
      | Ir.Assign (Ast.Larr (a, _), _) -> Hashtbl.replace reads a ()
      | _ -> ()))
    cfg;
  List.iter (fun p -> Hashtbl.replace reads p ()) proc.Program.params;
  (match proc.Program.env.Sema.result_var with
  | Some rv -> Hashtbl.replace reads rv ()
  | None -> ());
  reads

let kill_dead_assigns prog (proc : Program.proc) (cfg : Ir.info Cfg.t) =
  let reads = read_vars proc cfg in
  Cfg.iter_nodes
    (fun u ->
      let info = Cfg.info cfg u in
      match info.Ir.ir with
      | Ir.Assign (Ast.Lvar v, rhs)
        when (not (Hashtbl.mem reads v)) && not (expr_impure prog rhs) ->
          Cfg.set_info cfg u { info with Ir.ir = Ir.Nop "DEAD" }
      | _ -> ())
    cfg;
  cfg

(* ---- pass 4: elide no-op nodes ---- *)

let elide (cfg : Ir.info Cfg.t) : Ir.info Cfg.t =
  let n = Cfg.num_nodes cfg in
  let elidable u =
    u <> Cfg.entry cfg
    && (match (Cfg.info cfg u).Ir.ir with Ir.Nop _ -> true | _ -> false)
    &&
    match Cfg.succ_edges cfg u with
    | [ e ] -> Label.equal e.label Label.U
    | _ -> false
  in
  (* resolve through chains of elidable nodes, stopping on cycles *)
  let target = Array.make n (-1) in
  let rec resolve u seen =
    if target.(u) >= 0 then target.(u)
    else if List.mem u seen then u (* nop cycle: keep *)
    else if not (elidable u) then begin
      target.(u) <- u;
      u
    end
    else begin
      let nxt = match Cfg.succ_edges cfg u with [ e ] -> e.dst | _ -> assert false in
      let t = resolve nxt (u :: seen) in
      target.(u) <- t;
      t
    end
  in
  for u = 0 to n - 1 do
    ignore (resolve u [])
  done;
  let keep u = target.(u) = u in
  let remap = Array.make n (-1) in
  let out = Cfg.create ~dummy:Lower.dummy_info in
  Cfg.iter_nodes
    (fun u ->
      if keep u then
        remap.(u) <- Cfg.add_node ~ty:(Cfg.node_type cfg u) out (Cfg.info cfg u))
    cfg;
  Cfg.iter_edges
    (fun e ->
      if keep e.src then
        Cfg.add_edge out ~src:remap.(e.src) ~dst:remap.(target.(e.dst)) ~label:e.label)
    cfg;
  Cfg.set_entry out remap.(target.(Cfg.entry cfg));
  Cfg.set_exits out
    (List.filter_map
       (fun x -> if keep x then Some remap.(x) else None)
       (Cfg.exits cfg));
  out

(* ---- pass 5: refine DO metadata ----
   Constant propagation can turn a trip-count initializer into a literal
   ("N = 200; DO I = 1, N" becomes %TRIP = 200).  Record it in the
   header's metadata: the static-trip cases of the profiling optimization
   3 and of compile-time frequency analysis then apply. *)

let refine_do_metadata (cfg : Ir.info Cfg.t) =
  (* constant init assignments per trip variable (the latch decrement is
     self-referencing and never a literal) *)
  let init_const = Hashtbl.create 8 in
  Cfg.iter_nodes
    (fun u ->
      match (Cfg.info cfg u).Ir.ir with
      | Ir.Assign (Ast.Lvar v, Ast.Int c)
        when String.length v > 5 && String.sub v 0 5 = "%TRIP" ->
          (* several constant writes to one temp cannot happen (one init
             per lowered loop), but stay safe *)
          if Hashtbl.mem init_const v then Hashtbl.replace init_const v None
          else Hashtbl.replace init_const v (Some c)
      | Ir.Assign (Ast.Lvar v, _)
        when String.length v > 5 && String.sub v 0 5 = "%TRIP" ->
          (* a non-literal write other than the decrement: give up *)
          (match (Cfg.info cfg u).Ir.ir with
          | Ir.Assign (_, Ast.Binop (Ast.Sub, Ast.Var v', Ast.Int 1)) when v' = v -> ()
          | _ -> Hashtbl.replace init_const v None)
      | _ -> ())
    cfg;
  Cfg.iter_nodes
    (fun u ->
      let info = Cfg.info cfg u in
      match info.Ir.ir with
      | Ir.Do_test meta when meta.Ir.static_trip = None -> (
          match Hashtbl.find_opt init_const meta.Ir.trip_var with
          | Some (Some c) ->
              Cfg.set_info cfg u
                { info with
                  Ir.ir = Ir.Do_test { meta with Ir.static_trip = Some (max c 0) } }
          | _ -> ())
      | _ -> ())
    cfg

(* ---- driver ---- *)

let optimize_cfg ?program (proc : Program.proc) : Ir.info Cfg.t =
  let cfg = ref proc.Program.cfg in
  for _round = 1 to 3 do
    Cfg.iter_nodes
      (fun u ->
        let info = Cfg.info !cfg u in
        Cfg.set_info !cfg u { info with Ir.ir = fold_node program info.Ir.ir })
      !cfg;
    cfg := propagate program proc !cfg;
    refine_do_metadata !cfg;
    cfg := kill_dead_assigns program proc !cfg;
    cfg := elide !cfg
  done;
  !cfg

(* passes mutate payloads in place, so whole-program drivers copy first *)
let copy_cfg (p : Program.proc) =
  let cfg = p.Program.cfg in
  let out = Cfg.create ~dummy:Lower.dummy_info in
  Cfg.iter_nodes
    (fun u -> ignore (Cfg.add_node ~ty:(Cfg.node_type cfg u) out (Cfg.info cfg u)))
    cfg;
  Cfg.iter_edges (fun e -> Cfg.add_edge out ~src:e.src ~dst:e.dst ~label:e.label) cfg;
  Cfg.set_entry out (Cfg.entry cfg);
  Cfg.set_exits out (Cfg.exits cfg);
  out

(* Whole-program optimization; CFGs are rebuilt, the original Program.t is
   untouched. *)
let program (prog : Program.t) : Program.t =
  let prog' = Program.map_cfgs prog copy_cfg in
  Program.map_cfgs prog' (fun p -> optimize_cfg ~program:prog p)

(* ---- profile-guided reoptimization ----

   Like {!program} but node-id-preserving: dead assignments are rewritten
   to [Nop "DEAD"] and never elided, and control flow is untouched, so a
   frequency profile collected on the input program indexes the output
   node-for-node.  The estimator can then predict the cycle delta of the
   pass exactly:

     delta = sum over (proc, node u) of execs(u) * (cost_old(u) - cost_new(u))

   Frequencies are invariant under the rewrite because RAND/IRAND are
   treated as impure (never folded: the random stream is undisturbed) and
   no edge is added or removed.  [hot] gates effort per procedure —
   profile-hot procedures get the full 3-round fold/propagate/dead-code
   pipeline, cold ones a single folding pass — which is where the PGO
   driver spends its frequency information. *)

let reoptimize ?(hot = fun _ -> true) (prog : Program.t) : Program.t =
  let prog' = Program.map_cfgs prog copy_cfg in
  Program.map_cfgs prog' (fun p ->
      let cfg = p.Program.cfg in
      let fold_pass () =
        Cfg.iter_nodes
          (fun u ->
            let info = Cfg.info cfg u in
            Cfg.set_info cfg u
              { info with Ir.ir = fold_node (Some prog') info.Ir.ir })
          cfg
      in
      if hot p.Program.name then
        for _round = 1 to 3 do
          fold_pass ();
          ignore (propagate (Some prog') p cfg);
          refine_do_metadata cfg;
          ignore (kill_dead_assigns (Some prog') p cfg)
        done
      else fold_pass ();
      cfg)
