(* Flat register-bytecode backend: the execution engine.

   Each procedure is compiled (by Emit) to one contiguous [int array] of
   int-coded instructions plus a float constant pool.  Execution is a
   single tail-recursive dispatch loop over the pre-resolved code array:
   no closure calls on the hot path, no Value boxing for statically-typed
   scalar traffic (promoted scalars live in unboxed int/float register
   files), fused compare-and-branch superinstructions, and dedicated
   probe opcodes that update an instrumentation counter with one array
   bump instead of a closure wrapper.

   Anything the emitter cannot prove statically falls back, per node, to
   the closure compiled by {!Compile.compile_node} (the [FALLBACK]
   opcode), so observational parity with the Tree and Compiled backends
   is preserved exactly: same evaluation order, same coercions, same
   runtime-error points and messages, same PRNG consumption, same cycle
   and step accounting, same probe charges and same guard-trip points.
   The differential tests in test/test_vm.ml and fuzz/fuzz.ml enforce
   this three ways. *)

module Ast = S89_frontend.Ast
module Program = S89_frontend.Program
open S89_cfg

(* Guard exceptions live here (the lowest layer that raises them); Interp
   re-exports them under the historical names. *)
exception Out_of_fuel
exception Out_of_cycles
exception Call_depth_exceeded of int
exception Stopped (* STOP statement unwinding *)

(* ---- shared run accounting ----

   One [acct] per VM instance, shared by every frame and every backend:
   cycle/step totals, the sampling clock, and the instrumentation
   counters with their saturation bookkeeping.  Keeping it a flat record
   of mutable ints lets the dispatch loop update it without indirection
   and lets nested procedure calls (including closure fallbacks that
   re-enter the VM) see a single consistent clock. *)

type acct = {
  mutable cycles : int;
  mutable steps : int;
  mutable next_sample : int;
  sample_interval : int; (* max_int = sampling off *)
  max_steps : int;
  max_cycles : int;
  c_counter : int; (* cycle charge per counter update *)
  counters : int array;
  mutable overflowed : int list; (* saturated counters (ascending, distinct) *)
  mutable depth : int; (* current call depth, shared by all backends *)
  max_depth : int;
}

let make_acct ~max_steps ~max_cycles ~max_call_depth ~sample_interval ~c_counter
    ~n_counters =
  let interval = match sample_interval with Some s -> s | None -> max_int in
  {
    cycles = 0;
    steps = 0;
    next_sample = interval;
    sample_interval = interval;
    max_steps;
    max_cycles;
    c_counter;
    counters = Array.make (max n_counters 1) 0;
    overflowed = [];
    depth = 0;
    max_depth = max_call_depth;
  }

(* a counter hit max_int: saturate and remember — never silent wraparound *)
let record_overflow a c =
  if not (List.mem c a.overflowed) then
    a.overflowed <- List.sort compare (c :: a.overflowed)

let counter_incr a c =
  let old = a.counters.(c) in
  if old = max_int then record_overflow a c else a.counters.(c) <- old + 1

let counter_add a c v =
  let old = a.counters.(c) in
  let s = old + v in
  if v > 0 && s < old then begin
    record_overflow a c;
    a.counters.(c) <- max_int
  end
  else a.counters.(c) <- s

(* ---- compiled procedure representation ---- *)

(* promoted-register <-> frame-cell transfer lists, split by register
   class; parallel arrays (slot, register) to avoid tuple loads *)
type sync = {
  si_slot : int array;
  si_reg : int array;
  sf_slot : int array;
  sf_reg : int array;
}

let empty_sync = { si_slot = [||]; si_reg = [||]; sf_slot = [||]; sf_reg = [||] }

(* a node the emitter could not lower: the Compile closure, plus the
   promoted slots it may touch and the edge-sequence pc per successor *)
type fallback = {
  fb_step : Env.slots -> int;
  fb_sync : sync;
  mutable fb_edges : int array; (* successor index -> pc of its EDGE op *)
}

(* a Bulk_add probe: charge, sync the expression's promoted reads, add *)
type bulk = {
  bk_counter : int;
  bk_charge : int; (* c_counter + precomputed expression cost *)
  bk_expr : Compile.cexpr;
  bk_sync : sync; (* sync-in only: bulk expressions never write locals *)
}

(* an edge-probe group entry: plain increment or bulk-table reference *)
type pact = PIncr of int | PBulk of int

(* An inlined-callee region: a leaf procedure's body spliced into this
   procedure's code by the PGO emitter.  The callee's oracle counts live
   in the host's [execs]/[samples]/[edge_counts] arrays at the region's
   base offsets, so inlining never loses a node execution or an edge
   traversal — the interpreter's read-side accessors sum them back into
   the callee's totals. *)
type region = {
  rg_callee : string;
  rg_node_base : int; (* offset of callee node 0 in host execs/samples *)
  rg_edge_base : int; (* offset of callee flat edge 0 in host edge_counts *)
  mutable rg_invocations : int;
}

type proc = {
  bp_proc : Program.proc;
  layout : Env.layout;
  code : int array;
  fpool : float array;
  entry_pc : int;
  n_iregs : int;
  n_fregs : int;
  all_promoted : sync; (* every promoted slot: frame init and RET sync *)
  names : string array; (* slot -> name, for runtime error messages *)
  rng : S89_util.Prng.t; (* RAND/IRAND opcodes draw from the VM's stream *)
  fallbacks : fallback array;
  bulks : bulk array;
  groups : pact array array; (* edge-probe groups *)
  regions : region array; (* inlined callee regions, in IENTER order *)
  (* oracle meta, indexed by CFG node id (execs/samples) or flat edge
     index (edge_base.(nid) + successor position); inlined regions extend
     both past the procedure's own nodes/edges *)
  execs : int array;
  samples : int array;
  edge_counts : int array;
  edge_base : int array;
  succ_labels : Label.t array array;
  mutable invocations : int;
  mutable fb_execs : int; (* FALLBACK escapes executed (perf telemetry) *)
}

(* ---- opcode map (operands follow the opcode word) ----

   The dispatch loop below matches on these literal values; keep the two
   in lockstep.  Documented in docs/../DESIGN.md (bytecode format). *)

let op_acct = 0 (* nid cost *)
(* 1 and 2 were standalone EDGE/EDGEP; every edge now uses the fused
   EDGEA/EDGEPA superinstructions below, so those slots are reserved *)
let op_jmp = 3 (* dst *)
let op_ret = 4
let op_stop = 5
let op_fallback = 6 (* fi *)
let op_probe = 7 (* counter *)
let op_probe_bulk = 8 (* bi *)
let op_ldki = 9 (* rd k *)
let op_movi = 10 (* rd ra *)
let op_iadd = 11 (* rd ra rb *)
let op_isub = 12 (* rd ra rb *)
let op_imul = 13 (* rd ra rb *)
let op_idiv = 14 (* rd ra rb *)
let op_ineg = 15 (* rd ra *)
let op_iaddk = 16 (* rd ra k *)
let op_imulk = 17 (* rd ra k *)
let op_irsubk = 18 (* rd ra k : rd <- k - ra *)
let op_ldkf = 19 (* fd k(pool) *)
let op_movf = 20 (* fd fa *)
let op_fadd = 21 (* fd fa fb *)
let op_fsub = 22 (* fd fa fb *)
let op_fmul = 23 (* fd fa fb *)
let op_fdiv = 24 (* fd fa fb *)
let op_fneg = 25 (* fd fa *)
let op_faddk = 26 (* fd fa k(pool) *)
let op_fsubk = 27 (* fd fa k(pool) *)
let op_fmulk = 28 (* fd fa k(pool) *)
let op_frsubk = 29 (* fd fa k(pool) : fd <- k - fa *)
let op_itof = 30 (* fd ra *)
let op_ftoi = 31 (* rd fa *)
let op_ldci = 32 (* rd slot *)
let op_ldcf = 33 (* fd slot *)
let op_stci = 34 (* slot ra *)
let op_stcf = 35 (* slot fa *)
(* array accesses carry a constant displacement per subscript register
   (A(I+1) folds to ka = 1), applied before the bounds check; int adds
   are exact, so this is identical to materializing the sum in a temp *)
let op_lda1i = 36 (* rd slot d0 ra ka *)
let op_lda1f = 37 (* fd slot d0 ra ka *)
let op_lda2i = 38 (* rd slot d0 d1 ra rb ka kb *)
let op_lda2f = 39 (* fd slot d0 d1 ra rb ka kb *)
let op_aoff1 = 40 (* rd slot d0 ra ka *)
let op_aoff2 = 41 (* rd slot d0 d1 ra rb ka kb *)
let op_stai = 42 (* slot ro ra *)
let op_staf = 43 (* slot ro fa *)

(* fused compare-and-branch superinstructions: ra rb pcT pcF (II/FF) or
   ra k pcT pcF (IK; k immediate) / fa k pcT pcF (FK; k is a pool index).
   Float forms follow [Float.compare] semantics (NaN below everything,
   NaN = NaN), exactly like the generic Value.rel path. *)
let op_jlt_ii = 44
let op_jle_ii = 45
let op_jgt_ii = 46
let op_jge_ii = 47
let op_jeq_ii = 48
let op_jne_ii = 49
let op_jlt_ik = 50
let op_jle_ik = 51
let op_jgt_ik = 52
let op_jge_ik = 53
let op_jeq_ik = 54
let op_jne_ik = 55
let op_jlt_ff = 56
let op_jle_ff = 57
let op_jgt_ff = 58
let op_jge_ff = 59
let op_jeq_ff = 60
let op_jne_ff = 61
let op_jlt_fk = 62
let op_jle_fk = 63
let op_jgt_fk = 64
let op_jge_fk = 65
let op_jeq_fk = 66
let op_jne_fk = 67
let op_jtrip = 68 (* fa pcT pcF : DO header, int_of_float fa > 0 *)
let op_select = 69 (* ra n pc1..pcn pcF *)

(* edge-accounting superinstructions: fuse the edge bump with the
   destination node's ACCT, since every traversal performs both
   back-to-back.  EDGEA/EDGEPA jump to the destination's probes+body;
   only the procedure entry still executes a standalone ACCT. *)
let op_edgea = 70 (* eidx nid cost dst *)
let op_edgepa = 71 (* eidx gid nid cost dst *)

(* native intrinsics: unary float transcendentals (error semantics match
   Builtins exactly), ABS/IABS/MOD, and the PRNG intrinsics (drawing from
   [proc.rng], the same stream Builtins.apply consumes).  These eliminate
   the FALLBACK escape for statically-typed expressions that call
   intrinsics — the dominant escape source on the Livermore kernels. *)
let op_fsqrt = 72 (* fd fa *)
let op_fexp = 73 (* fd fa *)
let op_flog = 74 (* fd fa *)
let op_fsin = 75 (* fd fa *)
let op_fcos = 76 (* fd fa *)
let op_ftan = 77 (* fd fa *)
let op_fatan = 78 (* fd fa *)
let op_fabs = 79 (* fd fa *)
let op_iabs = 80 (* rd ra *)
let op_rand = 81 (* fd *)
let op_irand = 82 (* rd ra *)
let op_imod = 83 (* rd ra rb *)

(* inlined-call bookkeeping: IENTER counts the region invocation and
   checks the depth guard (invocation is counted before the guard can
   trip, matching call_proc's enter order); IEXIT pops the depth *)
let op_ienter = 84 (* ri *)
let op_iexit = 85

let num_opcodes = 86

(* ---- runtime helpers (cold paths of the dispatch loop) ---- *)

let read_cell_int (names : string array) s (venv : Env.slots) =
  match venv.(s) with
  | Env.Cell c -> Value.to_int c.v
  | Env.Elem (a, off) -> Env.get_int a off
  | Env.Arr _ -> Value.err "array %s used as a scalar" names.(s)
  | Env.Poison m -> Value.err "%s" m

let read_cell_float (names : string array) s (venv : Env.slots) =
  match venv.(s) with
  | Env.Cell c -> Value.to_float c.v
  | Env.Elem (a, off) -> Env.get_float a off
  | Env.Arr _ -> Value.err "array %s used as a scalar" names.(s)
  | Env.Poison m -> Value.err "%s" m

let get_arr (names : string array) s (venv : Env.slots) =
  match venv.(s) with
  | Env.Arr a -> a
  | Env.Cell _ | Env.Elem _ -> Value.err "%s is not an array" names.(s)
  | Env.Poison m -> Value.err "%s" m

let check_dim name k d i =
  if i < 1 || i > d then
    Value.err "%s: subscript %d of dimension %d out of bounds [1,%d]" name i (k + 1) d

(* the generic scalar store (Compile.write_scalar), for STCI/STCF slots
   whose binding turned out not to be a plain Cell (e.g. Poison) *)
let write_scalar_generic (names : string array) s v (venv : Env.slots) =
  match venv.(s) with
  | Env.Cell c -> c.v <- Value.coerce c.ty v
  | Env.Elem (a, off) -> Env.set a off v
  | Env.Arr _ -> Value.err "assignment to whole array %s" names.(s)
  | Env.Poison m -> Value.err "%s" m

(* promoted registers -> frame cells (before running a closure that may
   read them, and at RET so the caller can read a FUNCTION result) *)
let store_regs (s : sync) (venv : Env.slots) (ireg : int array)
    (freg : float array) =
  let n = Array.length s.si_slot in
  for i = 0 to n - 1 do
    match venv.(s.si_slot.(i)) with
    | Env.Cell c -> c.v <- Value.Int ireg.(s.si_reg.(i))
    | _ -> () (* promoted slots are always Cells, by construction *)
  done;
  let n = Array.length s.sf_slot in
  for i = 0 to n - 1 do
    match venv.(s.sf_slot.(i)) with
    | Env.Cell c -> c.v <- Value.Real freg.(s.sf_reg.(i))
    | _ -> ()
  done

(* frame cells -> promoted registers (at frame entry and after a closure
   that may have written them) *)
let load_regs (s : sync) (venv : Env.slots) (ireg : int array)
    (freg : float array) =
  let n = Array.length s.si_slot in
  for i = 0 to n - 1 do
    match venv.(s.si_slot.(i)) with
    | Env.Cell c -> ireg.(s.si_reg.(i)) <- Value.to_int c.v
    | _ -> ()
  done;
  let n = Array.length s.sf_slot in
  for i = 0 to n - 1 do
    match venv.(s.sf_slot.(i)) with
    | Env.Cell c -> freg.(s.sf_reg.(i)) <- Value.to_float c.v
    | _ -> ()
  done

let take_samples (a : acct) (samples : int array) nid =
  while a.cycles >= a.next_sample do
    samples.(nid) <- samples.(nid) + 1;
    a.next_sample <- a.next_sample + a.sample_interval
  done

(* [Float.compare]-faithful three-way comparison with a native fast path:
   when either operand is NaN all three native tests fail and we defer to
   Float.compare (NaN = NaN, NaN < non-NaN) — bit-identical to the
   generic backend's Value.rel on REAL operands. *)
let[@inline] fcmp3 (x : float) (y : float) =
  if x < y then -1 else if x > y then 1 else if x = y then 0 else Float.compare x y

(* fire one probe-group entry (edge probes); bulk entries go through the
   shared bulk table *)
let fire_pact (a : acct) (p : proc) (venv : Env.slots) (ireg : int array)
    (freg : float array) = function
  | PIncr c ->
      a.cycles <- a.cycles + a.c_counter;
      counter_incr a c
  | PBulk bi ->
      let b = p.bulks.(bi) in
      a.cycles <- a.cycles + b.bk_charge;
      store_regs b.bk_sync venv ireg freg;
      counter_add a b.bk_counter (Value.to_int (b.bk_expr venv))

(* ---- the dispatch loop ---- *)

let exec (a : acct) (p : proc) (venv : Env.slots) : unit =
  let code = p.code in
  let fpool = p.fpool in
  let names = p.names in
  let ireg = Array.make (max p.n_iregs 1) 0 in
  let freg = Array.make (max p.n_fregs 1) 0.0 in
  load_regs p.all_promoted venv ireg freg;
  let max_steps = a.max_steps in
  let max_cycles = a.max_cycles in
  let execs = p.execs in
  let edge_counts = p.edge_counts in
  let counters = a.counters in
  let rec loop pc =
    match Array.unsafe_get code pc with
    | 0 (* ACCT nid cost *) ->
        let nid = Array.unsafe_get code (pc + 1) in
        let steps = a.steps + 1 in
        a.steps <- steps;
        let cycles = a.cycles + Array.unsafe_get code (pc + 2) in
        a.cycles <- cycles;
        (* both budget checks share one branch, as in the compiled
           backend: remaining budgets are both non-negative iff neither
           limit is exceeded *)
        if (max_steps - steps) lor (max_cycles - cycles) < 0 then
          if steps > max_steps then raise Out_of_fuel else raise Out_of_cycles;
        Array.unsafe_set execs nid (Array.unsafe_get execs nid + 1);
        if cycles >= a.next_sample then take_samples a p.samples nid;
        loop (pc + 3)
    | 3 (* JMP dst *) -> loop (Array.unsafe_get code (pc + 1))
    | 4 (* RET *) -> store_regs p.all_promoted venv ireg freg
    | 5 (* STOP *) -> raise Stopped
    | 6 (* FALLBACK fi *) ->
        p.fb_execs <- p.fb_execs + 1;
        let fb = p.fallbacks.(Array.unsafe_get code (pc + 1)) in
        store_regs fb.fb_sync venv ireg freg;
        let k = fb.fb_step venv in
        load_regs fb.fb_sync venv ireg freg;
        if k >= 0 then loop fb.fb_edges.(k)
        else if k = Compile.ret_code then store_regs p.all_promoted venv ireg freg
        else raise Stopped
    | 7 (* PROBE counter *) ->
        a.cycles <- a.cycles + a.c_counter;
        let c = Array.unsafe_get code (pc + 1) in
        let old = counters.(c) in
        if old = max_int then record_overflow a c
        else Array.unsafe_set counters c (old + 1);
        loop (pc + 2)
    | 8 (* PROBE_BULK bi *) ->
        let b = p.bulks.(Array.unsafe_get code (pc + 1)) in
        a.cycles <- a.cycles + b.bk_charge;
        store_regs b.bk_sync venv ireg freg;
        counter_add a b.bk_counter (Value.to_int (b.bk_expr venv));
        loop (pc + 2)
    | 9 (* LDKI rd k *) ->
        Array.unsafe_set ireg (Array.unsafe_get code (pc + 1))
          (Array.unsafe_get code (pc + 2));
        loop (pc + 3)
    | 10 (* MOVI rd ra *) ->
        Array.unsafe_set ireg (Array.unsafe_get code (pc + 1))
          (Array.unsafe_get ireg (Array.unsafe_get code (pc + 2)));
        loop (pc + 3)
    | 11 (* IADD rd ra rb *) ->
        let x = Array.unsafe_get ireg (Array.unsafe_get code (pc + 2)) in
        let y = Array.unsafe_get ireg (Array.unsafe_get code (pc + 3)) in
        Array.unsafe_set ireg (Array.unsafe_get code (pc + 1)) (x + y);
        loop (pc + 4)
    | 12 (* ISUB rd ra rb *) ->
        let x = Array.unsafe_get ireg (Array.unsafe_get code (pc + 2)) in
        let y = Array.unsafe_get ireg (Array.unsafe_get code (pc + 3)) in
        Array.unsafe_set ireg (Array.unsafe_get code (pc + 1)) (x - y);
        loop (pc + 4)
    | 13 (* IMUL rd ra rb *) ->
        let x = Array.unsafe_get ireg (Array.unsafe_get code (pc + 2)) in
        let y = Array.unsafe_get ireg (Array.unsafe_get code (pc + 3)) in
        Array.unsafe_set ireg (Array.unsafe_get code (pc + 1)) (x * y);
        loop (pc + 4)
    | 14 (* IDIV rd ra rb *) ->
        let x = Array.unsafe_get ireg (Array.unsafe_get code (pc + 2)) in
        let y = Array.unsafe_get ireg (Array.unsafe_get code (pc + 3)) in
        if y = 0 then Value.err "INTEGER division by zero";
        Array.unsafe_set ireg (Array.unsafe_get code (pc + 1)) (x / y);
        loop (pc + 4)
    | 15 (* INEG rd ra *) ->
        Array.unsafe_set ireg (Array.unsafe_get code (pc + 1))
          (-Array.unsafe_get ireg (Array.unsafe_get code (pc + 2)));
        loop (pc + 3)
    | 16 (* IADDK rd ra k *) ->
        let x = Array.unsafe_get ireg (Array.unsafe_get code (pc + 2)) in
        Array.unsafe_set ireg (Array.unsafe_get code (pc + 1))
          (x + Array.unsafe_get code (pc + 3));
        loop (pc + 4)
    | 17 (* IMULK rd ra k *) ->
        let x = Array.unsafe_get ireg (Array.unsafe_get code (pc + 2)) in
        Array.unsafe_set ireg (Array.unsafe_get code (pc + 1))
          (x * Array.unsafe_get code (pc + 3));
        loop (pc + 4)
    | 18 (* IRSUBK rd ra k *) ->
        let x = Array.unsafe_get ireg (Array.unsafe_get code (pc + 2)) in
        Array.unsafe_set ireg (Array.unsafe_get code (pc + 1))
          (Array.unsafe_get code (pc + 3) - x);
        loop (pc + 4)
    | 19 (* LDKF fd k *) ->
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1))
          (Array.unsafe_get fpool (Array.unsafe_get code (pc + 2)));
        loop (pc + 3)
    | 20 (* MOVF fd fa *) ->
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1))
          (Array.unsafe_get freg (Array.unsafe_get code (pc + 2)));
        loop (pc + 3)
    | 21 (* FADD fd fa fb *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 2)) in
        let y = Array.unsafe_get freg (Array.unsafe_get code (pc + 3)) in
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1)) (x +. y);
        loop (pc + 4)
    | 22 (* FSUB fd fa fb *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 2)) in
        let y = Array.unsafe_get freg (Array.unsafe_get code (pc + 3)) in
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1)) (x -. y);
        loop (pc + 4)
    | 23 (* FMUL fd fa fb *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 2)) in
        let y = Array.unsafe_get freg (Array.unsafe_get code (pc + 3)) in
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1)) (x *. y);
        loop (pc + 4)
    | 24 (* FDIV fd fa fb *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 2)) in
        let y = Array.unsafe_get freg (Array.unsafe_get code (pc + 3)) in
        if y = 0.0 then Value.err "REAL division by zero";
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1)) (x /. y);
        loop (pc + 4)
    | 25 (* FNEG fd fa *) ->
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1))
          (-.Array.unsafe_get freg (Array.unsafe_get code (pc + 2)));
        loop (pc + 3)
    | 26 (* FADDK fd fa k *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 2)) in
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1))
          (x +. Array.unsafe_get fpool (Array.unsafe_get code (pc + 3)));
        loop (pc + 4)
    | 27 (* FSUBK fd fa k *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 2)) in
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1))
          (x -. Array.unsafe_get fpool (Array.unsafe_get code (pc + 3)));
        loop (pc + 4)
    | 28 (* FMULK fd fa k *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 2)) in
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1))
          (x *. Array.unsafe_get fpool (Array.unsafe_get code (pc + 3)));
        loop (pc + 4)
    | 29 (* FRSUBK fd fa k *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 2)) in
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1))
          (Array.unsafe_get fpool (Array.unsafe_get code (pc + 3)) -. x);
        loop (pc + 4)
    | 30 (* ITOF fd ra *) ->
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1))
          (float_of_int (Array.unsafe_get ireg (Array.unsafe_get code (pc + 2))));
        loop (pc + 3)
    | 31 (* FTOI rd fa *) ->
        Array.unsafe_set ireg (Array.unsafe_get code (pc + 1))
          (int_of_float (Array.unsafe_get freg (Array.unsafe_get code (pc + 2))));
        loop (pc + 3)
    | 32 (* LDCI rd slot *) ->
        Array.unsafe_set ireg (Array.unsafe_get code (pc + 1))
          (read_cell_int names (Array.unsafe_get code (pc + 2)) venv);
        loop (pc + 3)
    | 33 (* LDCF fd slot *) ->
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1))
          (read_cell_float names (Array.unsafe_get code (pc + 2)) venv);
        loop (pc + 3)
    | 34 (* STCI slot ra *) ->
        let s = Array.unsafe_get code (pc + 1) in
        let x = Value.Int (Array.unsafe_get ireg (Array.unsafe_get code (pc + 2))) in
        (match venv.(s) with
        | Env.Cell c -> c.v <- x
        | _ -> write_scalar_generic names s x venv);
        loop (pc + 3)
    | 35 (* STCF slot fa *) ->
        let s = Array.unsafe_get code (pc + 1) in
        let x = Value.Real (Array.unsafe_get freg (Array.unsafe_get code (pc + 2))) in
        (match venv.(s) with
        | Env.Cell c -> c.v <- x
        | _ -> write_scalar_generic names s x venv);
        loop (pc + 3)
    | 36 (* LDA1I rd slot d0 ra ka *) ->
        let s = Array.unsafe_get code (pc + 2) in
        let arr = get_arr names s venv in
        let i =
          Array.unsafe_get ireg (Array.unsafe_get code (pc + 4))
          + Array.unsafe_get code (pc + 5)
        in
        check_dim (Array.unsafe_get names s) 0 (Array.unsafe_get code (pc + 3)) i;
        Array.unsafe_set ireg (Array.unsafe_get code (pc + 1))
          (match arr.Env.data with
          | Env.Ints d -> Array.unsafe_get d (i - 1)
          | _ -> Env.get_int arr (i - 1));
        loop (pc + 6)
    | 37 (* LDA1F fd slot d0 ra ka *) ->
        let s = Array.unsafe_get code (pc + 2) in
        let arr = get_arr names s venv in
        let i =
          Array.unsafe_get ireg (Array.unsafe_get code (pc + 4))
          + Array.unsafe_get code (pc + 5)
        in
        check_dim (Array.unsafe_get names s) 0 (Array.unsafe_get code (pc + 3)) i;
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1))
          (match arr.Env.data with
          | Env.Reals d -> Array.unsafe_get d (i - 1)
          | _ -> Env.get_float arr (i - 1));
        loop (pc + 6)
    | 38 (* LDA2I rd slot d0 d1 ra rb ka kb *) ->
        let s = Array.unsafe_get code (pc + 2) in
        let arr = get_arr names s venv in
        let d0 = Array.unsafe_get code (pc + 3) in
        let i0 =
          Array.unsafe_get ireg (Array.unsafe_get code (pc + 5))
          + Array.unsafe_get code (pc + 7)
        in
        let i1 =
          Array.unsafe_get ireg (Array.unsafe_get code (pc + 6))
          + Array.unsafe_get code (pc + 8)
        in
        let name = Array.unsafe_get names s in
        check_dim name 0 d0 i0;
        check_dim name 1 (Array.unsafe_get code (pc + 4)) i1;
        let off = i0 - 1 + ((i1 - 1) * d0) in
        Array.unsafe_set ireg (Array.unsafe_get code (pc + 1))
          (match arr.Env.data with
          | Env.Ints d -> Array.unsafe_get d off
          | _ -> Env.get_int arr off);
        loop (pc + 9)
    | 39 (* LDA2F fd slot d0 d1 ra rb ka kb *) ->
        let s = Array.unsafe_get code (pc + 2) in
        let arr = get_arr names s venv in
        let d0 = Array.unsafe_get code (pc + 3) in
        let i0 =
          Array.unsafe_get ireg (Array.unsafe_get code (pc + 5))
          + Array.unsafe_get code (pc + 7)
        in
        let i1 =
          Array.unsafe_get ireg (Array.unsafe_get code (pc + 6))
          + Array.unsafe_get code (pc + 8)
        in
        let name = Array.unsafe_get names s in
        check_dim name 0 d0 i0;
        check_dim name 1 (Array.unsafe_get code (pc + 4)) i1;
        let off = i0 - 1 + ((i1 - 1) * d0) in
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1))
          (match arr.Env.data with
          | Env.Reals d -> Array.unsafe_get d off
          | _ -> Env.get_float arr off);
        loop (pc + 9)
    | 40 (* AOFF1 rd slot d0 ra ka *) ->
        let s = Array.unsafe_get code (pc + 2) in
        let _arr = get_arr names s venv in
        let i =
          Array.unsafe_get ireg (Array.unsafe_get code (pc + 4))
          + Array.unsafe_get code (pc + 5)
        in
        check_dim (Array.unsafe_get names s) 0 (Array.unsafe_get code (pc + 3)) i;
        Array.unsafe_set ireg (Array.unsafe_get code (pc + 1)) (i - 1);
        loop (pc + 6)
    | 41 (* AOFF2 rd slot d0 d1 ra rb ka kb *) ->
        let s = Array.unsafe_get code (pc + 2) in
        let _arr = get_arr names s venv in
        let d0 = Array.unsafe_get code (pc + 3) in
        let i0 =
          Array.unsafe_get ireg (Array.unsafe_get code (pc + 5))
          + Array.unsafe_get code (pc + 7)
        in
        let i1 =
          Array.unsafe_get ireg (Array.unsafe_get code (pc + 6))
          + Array.unsafe_get code (pc + 8)
        in
        let name = Array.unsafe_get names s in
        check_dim name 0 d0 i0;
        check_dim name 1 (Array.unsafe_get code (pc + 4)) i1;
        Array.unsafe_set ireg (Array.unsafe_get code (pc + 1))
          (i0 - 1 + ((i1 - 1) * d0));
        loop (pc + 9)
    | 42 (* STAI slot ro ra *) ->
        let arr = get_arr names (Array.unsafe_get code (pc + 1)) venv in
        let off = Array.unsafe_get ireg (Array.unsafe_get code (pc + 2)) in
        let x = Array.unsafe_get ireg (Array.unsafe_get code (pc + 3)) in
        (match arr.Env.data with
        | Env.Ints d -> d.(off) <- x
        | _ -> Env.set arr off (Value.Int x));
        loop (pc + 4)
    | 43 (* STAF slot ro fa *) ->
        let arr = get_arr names (Array.unsafe_get code (pc + 1)) venv in
        let off = Array.unsafe_get ireg (Array.unsafe_get code (pc + 2)) in
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 3)) in
        (match arr.Env.data with
        | Env.Reals d -> d.(off) <- x
        | _ -> Env.set arr off (Value.Real x));
        loop (pc + 4)
    | 44 (* JLT_II ra rb pcT pcF *) ->
        let x = Array.unsafe_get ireg (Array.unsafe_get code (pc + 1)) in
        let y = Array.unsafe_get ireg (Array.unsafe_get code (pc + 2)) in
        loop (Array.unsafe_get code (if x < y then pc + 3 else pc + 4))
    | 45 (* JLE_II *) ->
        let x = Array.unsafe_get ireg (Array.unsafe_get code (pc + 1)) in
        let y = Array.unsafe_get ireg (Array.unsafe_get code (pc + 2)) in
        loop (Array.unsafe_get code (if x <= y then pc + 3 else pc + 4))
    | 46 (* JGT_II *) ->
        let x = Array.unsafe_get ireg (Array.unsafe_get code (pc + 1)) in
        let y = Array.unsafe_get ireg (Array.unsafe_get code (pc + 2)) in
        loop (Array.unsafe_get code (if x > y then pc + 3 else pc + 4))
    | 47 (* JGE_II *) ->
        let x = Array.unsafe_get ireg (Array.unsafe_get code (pc + 1)) in
        let y = Array.unsafe_get ireg (Array.unsafe_get code (pc + 2)) in
        loop (Array.unsafe_get code (if x >= y then pc + 3 else pc + 4))
    | 48 (* JEQ_II *) ->
        let x = Array.unsafe_get ireg (Array.unsafe_get code (pc + 1)) in
        let y = Array.unsafe_get ireg (Array.unsafe_get code (pc + 2)) in
        loop (Array.unsafe_get code (if x = y then pc + 3 else pc + 4))
    | 49 (* JNE_II *) ->
        let x = Array.unsafe_get ireg (Array.unsafe_get code (pc + 1)) in
        let y = Array.unsafe_get ireg (Array.unsafe_get code (pc + 2)) in
        loop (Array.unsafe_get code (if x <> y then pc + 3 else pc + 4))
    | 50 (* JLT_IK ra k pcT pcF *) ->
        let x = Array.unsafe_get ireg (Array.unsafe_get code (pc + 1)) in
        let k = Array.unsafe_get code (pc + 2) in
        loop (Array.unsafe_get code (if x < k then pc + 3 else pc + 4))
    | 51 (* JLE_IK *) ->
        let x = Array.unsafe_get ireg (Array.unsafe_get code (pc + 1)) in
        let k = Array.unsafe_get code (pc + 2) in
        loop (Array.unsafe_get code (if x <= k then pc + 3 else pc + 4))
    | 52 (* JGT_IK *) ->
        let x = Array.unsafe_get ireg (Array.unsafe_get code (pc + 1)) in
        let k = Array.unsafe_get code (pc + 2) in
        loop (Array.unsafe_get code (if x > k then pc + 3 else pc + 4))
    | 53 (* JGE_IK *) ->
        let x = Array.unsafe_get ireg (Array.unsafe_get code (pc + 1)) in
        let k = Array.unsafe_get code (pc + 2) in
        loop (Array.unsafe_get code (if x >= k then pc + 3 else pc + 4))
    | 54 (* JEQ_IK *) ->
        let x = Array.unsafe_get ireg (Array.unsafe_get code (pc + 1)) in
        let k = Array.unsafe_get code (pc + 2) in
        loop (Array.unsafe_get code (if x = k then pc + 3 else pc + 4))
    | 55 (* JNE_IK *) ->
        let x = Array.unsafe_get ireg (Array.unsafe_get code (pc + 1)) in
        let k = Array.unsafe_get code (pc + 2) in
        loop (Array.unsafe_get code (if x <> k then pc + 3 else pc + 4))
    | 56 (* JLT_FF fa fb pcT pcF *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 1)) in
        let y = Array.unsafe_get freg (Array.unsafe_get code (pc + 2)) in
        loop (Array.unsafe_get code (if fcmp3 x y < 0 then pc + 3 else pc + 4))
    | 57 (* JLE_FF *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 1)) in
        let y = Array.unsafe_get freg (Array.unsafe_get code (pc + 2)) in
        loop (Array.unsafe_get code (if fcmp3 x y <= 0 then pc + 3 else pc + 4))
    | 58 (* JGT_FF *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 1)) in
        let y = Array.unsafe_get freg (Array.unsafe_get code (pc + 2)) in
        loop (Array.unsafe_get code (if fcmp3 x y > 0 then pc + 3 else pc + 4))
    | 59 (* JGE_FF *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 1)) in
        let y = Array.unsafe_get freg (Array.unsafe_get code (pc + 2)) in
        loop (Array.unsafe_get code (if fcmp3 x y >= 0 then pc + 3 else pc + 4))
    | 60 (* JEQ_FF *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 1)) in
        let y = Array.unsafe_get freg (Array.unsafe_get code (pc + 2)) in
        loop (Array.unsafe_get code (if fcmp3 x y = 0 then pc + 3 else pc + 4))
    | 61 (* JNE_FF *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 1)) in
        let y = Array.unsafe_get freg (Array.unsafe_get code (pc + 2)) in
        loop (Array.unsafe_get code (if fcmp3 x y <> 0 then pc + 3 else pc + 4))
    | 62 (* JLT_FK fa k pcT pcF *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 1)) in
        let k = Array.unsafe_get fpool (Array.unsafe_get code (pc + 2)) in
        loop (Array.unsafe_get code (if fcmp3 x k < 0 then pc + 3 else pc + 4))
    | 63 (* JLE_FK *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 1)) in
        let k = Array.unsafe_get fpool (Array.unsafe_get code (pc + 2)) in
        loop (Array.unsafe_get code (if fcmp3 x k <= 0 then pc + 3 else pc + 4))
    | 64 (* JGT_FK *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 1)) in
        let k = Array.unsafe_get fpool (Array.unsafe_get code (pc + 2)) in
        loop (Array.unsafe_get code (if fcmp3 x k > 0 then pc + 3 else pc + 4))
    | 65 (* JGE_FK *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 1)) in
        let k = Array.unsafe_get fpool (Array.unsafe_get code (pc + 2)) in
        loop (Array.unsafe_get code (if fcmp3 x k >= 0 then pc + 3 else pc + 4))
    | 66 (* JEQ_FK *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 1)) in
        let k = Array.unsafe_get fpool (Array.unsafe_get code (pc + 2)) in
        loop (Array.unsafe_get code (if fcmp3 x k = 0 then pc + 3 else pc + 4))
    | 67 (* JNE_FK *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 1)) in
        let k = Array.unsafe_get fpool (Array.unsafe_get code (pc + 2)) in
        loop (Array.unsafe_get code (if fcmp3 x k <> 0 then pc + 3 else pc + 4))
    | 68 (* JTRIP fa pcT pcF *) ->
        let t = Array.unsafe_get freg (Array.unsafe_get code (pc + 1)) in
        loop (Array.unsafe_get code (if int_of_float t > 0 then pc + 2 else pc + 3))
    | 69 (* SELECT ra n pc1..pcn pcF *) ->
        let i = Array.unsafe_get ireg (Array.unsafe_get code (pc + 1)) in
        let n = Array.unsafe_get code (pc + 2) in
        if i >= 1 && i <= n then loop (Array.unsafe_get code (pc + 2 + i))
        else loop (Array.unsafe_get code (pc + 3 + n))
    | 70 (* EDGEA eidx nid cost dst *) ->
        let e = Array.unsafe_get code (pc + 1) in
        Array.unsafe_set edge_counts e (Array.unsafe_get edge_counts e + 1);
        let nid = Array.unsafe_get code (pc + 2) in
        let steps = a.steps + 1 in
        a.steps <- steps;
        let cycles = a.cycles + Array.unsafe_get code (pc + 3) in
        a.cycles <- cycles;
        if (max_steps - steps) lor (max_cycles - cycles) < 0 then
          if steps > max_steps then raise Out_of_fuel else raise Out_of_cycles;
        Array.unsafe_set execs nid (Array.unsafe_get execs nid + 1);
        if cycles >= a.next_sample then take_samples a p.samples nid;
        loop (Array.unsafe_get code (pc + 4))
    | 71 (* EDGEPA eidx gid nid cost dst *) ->
        let e = Array.unsafe_get code (pc + 1) in
        Array.unsafe_set edge_counts e (Array.unsafe_get edge_counts e + 1);
        let g = p.groups.(Array.unsafe_get code (pc + 2)) in
        for i = 0 to Array.length g - 1 do
          fire_pact a p venv ireg freg g.(i)
        done;
        let nid = Array.unsafe_get code (pc + 3) in
        let steps = a.steps + 1 in
        a.steps <- steps;
        let cycles = a.cycles + Array.unsafe_get code (pc + 4) in
        a.cycles <- cycles;
        if (max_steps - steps) lor (max_cycles - cycles) < 0 then
          if steps > max_steps then raise Out_of_fuel else raise Out_of_cycles;
        Array.unsafe_set execs nid (Array.unsafe_get execs nid + 1);
        if cycles >= a.next_sample then take_samples a p.samples nid;
        loop (Array.unsafe_get code (pc + 5))
    | 72 (* FSQRT fd fa *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 2)) in
        if x < 0.0 then Value.err "SQRT of negative value %g" x;
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1)) (sqrt x);
        loop (pc + 3)
    | 73 (* FEXP fd fa *) ->
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1))
          (exp (Array.unsafe_get freg (Array.unsafe_get code (pc + 2))));
        loop (pc + 3)
    | 74 (* FLOG fd fa *) ->
        let x = Array.unsafe_get freg (Array.unsafe_get code (pc + 2)) in
        if x <= 0.0 then Value.err "LOG of non-positive value %g" x;
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1)) (log x);
        loop (pc + 3)
    | 75 (* FSIN fd fa *) ->
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1))
          (sin (Array.unsafe_get freg (Array.unsafe_get code (pc + 2))));
        loop (pc + 3)
    | 76 (* FCOS fd fa *) ->
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1))
          (cos (Array.unsafe_get freg (Array.unsafe_get code (pc + 2))));
        loop (pc + 3)
    | 77 (* FTAN fd fa *) ->
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1))
          (tan (Array.unsafe_get freg (Array.unsafe_get code (pc + 2))));
        loop (pc + 3)
    | 78 (* FATAN fd fa *) ->
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1))
          (atan (Array.unsafe_get freg (Array.unsafe_get code (pc + 2))));
        loop (pc + 3)
    | 79 (* FABS fd fa *) ->
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1))
          (Float.abs (Array.unsafe_get freg (Array.unsafe_get code (pc + 2))));
        loop (pc + 3)
    | 80 (* IABS rd ra *) ->
        Array.unsafe_set ireg (Array.unsafe_get code (pc + 1))
          (abs (Array.unsafe_get ireg (Array.unsafe_get code (pc + 2))));
        loop (pc + 3)
    | 81 (* RAND fd *) ->
        Array.unsafe_set freg (Array.unsafe_get code (pc + 1))
          (S89_util.Prng.float p.rng);
        loop (pc + 2)
    | 82 (* IRAND rd ra *) ->
        let n = Array.unsafe_get ireg (Array.unsafe_get code (pc + 2)) in
        if n <= 0 then Value.err "IRAND bound must be positive";
        Array.unsafe_set ireg (Array.unsafe_get code (pc + 1))
          (1 + S89_util.Prng.int p.rng n);
        loop (pc + 3)
    | 83 (* IMOD rd ra rb *) ->
        let x = Array.unsafe_get ireg (Array.unsafe_get code (pc + 2)) in
        let y = Array.unsafe_get ireg (Array.unsafe_get code (pc + 3)) in
        if y = 0 then Value.err "MOD by zero";
        Array.unsafe_set ireg (Array.unsafe_get code (pc + 1)) (x mod y);
        loop (pc + 4)
    | 84 (* IENTER ri *) ->
        let r = p.regions.(Array.unsafe_get code (pc + 1)) in
        r.rg_invocations <- r.rg_invocations + 1;
        a.depth <- a.depth + 1;
        if a.depth > a.max_depth then raise (Call_depth_exceeded a.depth);
        loop (pc + 2)
    | 85 (* IEXIT *) ->
        a.depth <- a.depth - 1;
        loop (pc + 1)
    | op -> Value.err "corrupt bytecode: opcode %d at pc %d" op pc
  in
  loop p.entry_pc
