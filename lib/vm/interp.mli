(** The MF77 virtual machine: a cycle-accounting interpreter over the
    statement-level CFGs — the stand-in for the paper's IBM 3090 testbed.

    Alongside executing the program it maintains, for free, "oracle"
    counts of every node execution and edge traversal (ground truth for
    the profiling machinery), fires instrumentation probes (charging
    [c_counter] cycles each — the Table 1 overhead), and can simulate a
    PC-sampling profiler. *)

module Ast = S89_frontend.Ast
module Program = S89_frontend.Program
open S89_cfg

(** The step budget was exhausted (runaway program). *)
exception Out_of_fuel

(** The cycle budget ([max_cycles]) was exhausted. *)
exception Out_of_cycles

(** Recursion exceeded [max_call_depth] (runaway recursion). *)
exception Call_depth_exceeded of int

(** Execution backend.  [Compiled] (the default) runs closures compiled
    once per procedure over slot-resolved frames ({!Env}, {!Compile});
    [Bytecode] compiles each procedure further, to a flat register
    bytecode with a single dispatch loop ({!Bytecode}, {!Emit}) — the
    fastest engine; [Tree] is the original AST-walking evaluator over
    hashed frames, kept as the semantic reference for differential
    testing.  All backends share all accounting (cycles, oracle counts,
    probes, sampling) and must be observationally identical. *)
type backend = Tree | Compiled | Bytecode

type config = {
  cost_model : Cost_model.t;
  instr : Probe.t;  (** instrumentation ({!Probe.empty} = none) *)
  seed : int;  (** PRNG seed for RAND()/IRAND() *)
  max_steps : int;  (** fuel: statements executed before {!Out_of_fuel} *)
  max_cycles : int;  (** cycle fuel ([max_int] = unlimited, the default) *)
  max_call_depth : int;  (** recursion guard ({!Call_depth_exceeded}) *)
  sample_interval : int option;  (** simulated PC sampling every N cycles *)
  backend : backend;  (** execution engine (default [Compiled]) *)
  emit_plan : Emit.plan option;
      (** bytecode emission plan — profile-guided inlining/layout/
          intrinsic budgets ([None] = {!Emit.default_plan}).  Any plan
          is observationally invisible: cycles, counters and oracle
          counts are identical, only wall-clock speed changes. *)
}

val default_config : config

type t

(** Compile a program for execution under a configuration. *)
val create : ?config:config -> Program.t -> t

type outcome =
  | Normal_stop  (** a STOP statement executed *)
  | Fell_off_end  (** the main program returned *)

(** Execute the main program.
    @raise Out_of_fuel when [max_steps] is exceeded
    @raise S89_vm.Value.Runtime_error on runtime errors *)
val run : t -> outcome

(** Simulated cycles charged so far (including probe costs). *)
val cycles : t -> int

(** Statements executed so far. *)
val steps : t -> int

(** Accumulated PRINT output. *)
val output : t -> string

(** Snapshot of the instrumentation counters. *)
val counters : t -> int array

(** Number of invocations of a procedure. *)
val invocations : t -> string -> int

(** Oracle: executions of a CFG node. *)
val node_execs : t -> string -> int -> int

(** Oracle: traversals of the CFG edge [(node, label)]. *)
val edge_count : t -> string -> int -> Label.t -> int

(** PC-sampling hits attributed to a node (0 unless sampling is on). *)
val node_samples : t -> string -> int -> int

(** FALLBACK escapes executed across all bytecode procedures (0 under
    the closure backends).  Perf telemetry: each escape syncs promoted
    registers around a compiled-closure call, so the PGO pass targets
    the sites that dominate this count. *)
val fallback_execs : t -> int

(** Instrumentation counters that saturated at [max_int] during the run
    (ascending, no duplicates).  A saturated counter holds [max_int]
    rather than a silently wrapped value. *)
val counter_overflowed : t -> int list

(** Warnings accumulated during the run (one [RUN005] per saturated
    counter). *)
val diagnostics : t -> S89_diag.Diag.t list

(** Like {!run}, but guard trips and runtime errors come back as a
    structured diagnostic ([RUN001]..[RUN004], [FLT001]) instead of an
    exception. *)
val run_result : t -> (outcome, S89_diag.Diag.t) result
