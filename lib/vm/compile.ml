(* Closure compilation of MF77 expressions and IR nodes.

   Everything that can be decided from the program text is decided here,
   once: variable slots, intrinsic implementations, callee procedures,
   array strides and bounds of statically-dimensioned arrays, constant
   subexpressions, and successor indices of every control transfer.  The
   residual runtime work is a closure call per AST node with no string
   hashing, no association-list scans and no per-step allocation beyond
   the values themselves.

   Observational parity with the tree-walking evaluator is part of the
   contract (the differential property test in test/test_vm.ml enforces
   it): evaluation order, coercions, PRNG consumption and runtime error
   points are preserved exactly. *)

module Ast = S89_frontend.Ast
module Ir = S89_frontend.Ir
module Program = S89_frontend.Program
module Sema = S89_frontend.Sema
module Prng = S89_util.Prng
open S89_cfg

type rt = {
  rng : Prng.t;
  out : Buffer.t;
  mutable call : Program.proc -> Env.binding list -> Value.t option;
}

let make_rt ~rng ~out =
  { rng; out;
    call = (fun p _ -> Value.err "VM not initialized (call to %s)" p.Program.name) }

type cexpr = Env.slots -> Value.t

(* internal representation during compilation: constants stay symbolic so
   operator folding can happen bottom-up *)
type c = K of Value.t | D of cexpr

let force = function K v -> fun _ -> v | D f -> f

let ty_of_value = function
  | Value.Int _ -> Ast.Tint
  | Value.Real _ -> Ast.Treal
  | Value.Bool _ -> Ast.Tlogical

(* fold a pure operator over constants; if it raises (e.g. 1/0) the error
   must surface at run time, each time the expression executes *)
let fold1 f v =
  match f v with
  | r -> K r
  | exception Value.Runtime_error _ -> D (fun _ -> f v)

let fold2 f a b =
  match f a b with
  | r -> K r
  | exception Value.Runtime_error _ -> D (fun _ -> f a b)

let read_slot name s : cexpr =
 fun venv ->
  match venv.(s) with
  | Env.Cell c -> c.v
  | Env.Elem (a, off) -> Env.get a off
  | Env.Arr _ -> Value.err "array %s used as a scalar" name
  | Env.Poison m -> Value.err "%s" m

let get_arr name s venv =
  match venv.(s) with
  | Env.Arr a -> a
  | Env.Cell _ | Env.Elem _ -> Value.err "%s is not an array" name
  | Env.Poison m -> Value.err "%s" m

(* static dimensions usable for stride precomputation: a declared,
   non-dummy array (dummies adopt the caller's dimensions at run time) *)
let static_dims (lay : Env.layout) s =
  if s < lay.Env.n_params then None
  else
    match lay.Env.kinds.(s) with
    | S89_frontend.Sema.Array (_, dims) when not (List.mem (-1) dims) -> Some dims
    | _ -> None

let check_dim name k d i =
  if i < 1 || i > d then
    Value.err "%s: subscript %d of dimension %d out of bounds [1,%d]" name i (k + 1) d

(* ---- static typing facts, for the unboxed fast paths ----

   A slot's value type is static when its binding is fixed at frame
   creation (not a dummy argument — callers can bind those to anything)
   and every store coerces to the declared type.  Arithmetic over
   statically-typed operands runs on native ints/floats: no Value
   allocation per intermediate, no constructor dispatch per operation.
   This is what makes subscript evaluation and REAL expression kernels
   cheap; parity with the generic Value path is exact (int ops are the
   same machine ops; REAL subtrees are evaluated by the generic path in
   float arithmetic anyway, with Int operands promoted via to_float). *)

let static_scalar_ty (lay : Env.layout) s =
  if s < lay.Env.n_params then None
  else
    match lay.Env.kinds.(s) with
    | Sema.Scalar ty -> Some ty
    | Sema.Const (Ast.Int _) -> Some Ast.Tint
    | Sema.Const (Ast.Real _) -> Some Ast.Treal
    | Sema.Const (Ast.Bool _) -> Some Ast.Tlogical
    | _ -> None

let static_elt_ty (lay : Env.layout) s =
  if s < lay.Env.n_params then None
  else match lay.Env.kinds.(s) with Sema.Array (ty, _) -> Some ty | _ -> None

(* the numeric type the generic evaluation of [e] is guaranteed to
   yield (it raises exactly where the specialized code raises);
   None = unknown, LOGICAL, or involves calls/dummy arguments *)
let rec static_num (lay : Env.layout) (e : Ast.expr) : Ast.typ option =
  match e with
  | Ast.Int _ -> Some Ast.Tint
  | Ast.Real _ -> Some Ast.Treal
  | Ast.Var v -> (
      match static_scalar_ty lay (Env.slot lay v) with
      | Some (Ast.Tint | Ast.Treal) as t -> t
      | _ -> None)
  | Ast.Index (name, _) -> (
      match static_elt_ty lay (Env.slot lay name) with
      | Some (Ast.Tint | Ast.Treal) as t -> t
      | _ -> None)
  | Ast.Unop (Ast.Neg, e1) -> static_num lay e1
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div), a, b) -> (
      match (static_num lay a, static_num lay b) with
      | Some Ast.Tint, Some Ast.Tint -> Some Ast.Tint
      | Some (Ast.Tint | Ast.Treal), Some (Ast.Tint | Ast.Treal) -> Some Ast.Treal
      | _ -> None)
  | _ -> None

let static_int lay e =
  match static_num lay e with Some Ast.Tint -> true | _ -> false

let rec compile rt prog (lay : Env.layout) (e : Ast.expr) : c =
  match e with
  | Ast.Int i -> K (Value.Int i)
  | Ast.Real r -> K (Value.Real r)
  | Ast.Bool b -> K (Value.Bool b)
  | Ast.Var v -> D (read_slot v (Env.slot lay v))
  | Ast.Index (name, idx) ->
      D (compile_element rt prog lay name idx (fun _ a off -> Env.get a off))
  | Ast.Call (f, args) -> compile_call rt prog lay f args
  | Ast.Unop (Ast.Neg, e1) -> (
      match compile rt prog lay e1 with
      | K v -> fold1 Value.neg v
      | D f -> (
          match (static_num lay e, compile_num rt prog lay e) with
          | Some Ast.Tint, _ -> (
              match compile_int rt prog lay e with
              | Some fi -> D (fun venv -> Value.Int (fi venv))
              | None -> D (fun venv -> Value.neg (f venv)))
          | Some Ast.Treal, Some ff -> D (fun venv -> Value.Real (ff venv))
          | _ -> D (fun venv -> Value.neg (f venv))))
  | Ast.Unop (Ast.Not, e) -> (
      let nt v = Value.Bool (not (Value.to_bool v)) in
      match compile rt prog lay e with
      | K v -> fold1 nt v
      | D f -> D (fun venv -> nt (f venv)))
  | Ast.Binop (op, a, b) -> (
      let op_fn : Value.t -> Value.t -> Value.t =
        match op with
        | Ast.Add -> Value.add
        | Sub -> Value.sub
        | Mul -> Value.mul
        | Div -> Value.div
        | Pow -> Value.pow
        | Lt | Le | Gt | Ge | Eq | Ne -> Value.rel op
        | And | Or -> Value.logic op
      in
      match (compile rt prog lay a, compile rt prog lay b) with
      | K va, K vb -> fold2 op_fn va vb
      | ca, cb -> (
          (* unboxed arithmetic over statically-typed operands; the boxing
             happens once, at the expression boundary *)
          match static_num lay e with
          | Some Ast.Tint -> (
              match compile_int rt prog lay e with
              | Some fi -> D (fun venv -> Value.Int (fi venv))
              | None -> assert false)
          | Some Ast.Treal -> (
              match compile_float rt prog lay e with
              | Some ff -> D (fun venv -> Value.Real (ff venv))
              | None -> assert false)
          | _ ->
              let fa = force ca and fb = force cb in
              D
                (fun venv ->
                  let va = fa venv in
                  let vb = fb venv in
                  op_fn va vb)))

(* array element access, continuation-passing so loads, stores and
   by-reference Elem bindings share the stride/bounds machinery without
   allocating an (array, offset) pair per access *)
and compile_element :
    'r. rt -> Program.t -> Env.layout -> string -> Ast.expr list ->
    (Env.slots -> Env.array_obj -> int -> 'r) -> Env.slots -> 'r =
 fun rt prog lay name idx k ->
  let s = Env.slot lay name in
  let cidx = Array.of_list (List.map (compile_index rt prog lay) idx) in
  match (static_dims lay s, cidx) with
  | Some [ d0 ], [| c0 |] ->
      fun venv ->
        let a = get_arr name s venv in
        let i = c0 venv in
        check_dim name 0 d0 i;
        k venv a (i - 1)
  | Some [ d0; d1 ], [| c0; c1 |] ->
      fun venv ->
        let a = get_arr name s venv in
        let i0 = c0 venv in
        let i1 = c1 venv in
        check_dim name 0 d0 i0;
        check_dim name 1 d1 i1;
        k venv a (i0 - 1 + ((i1 - 1) * d0))
  | Some dims, _ when List.length dims = Array.length cidx ->
      (* general static rank: precomputed dims and strides *)
      let dims = Array.of_list dims in
      let n = Array.length dims in
      let strides = Array.make n 1 in
      for j = 1 to n - 1 do
        strides.(j) <- strides.(j - 1) * dims.(j - 1)
      done;
      fun venv ->
        let a = get_arr name s venv in
        let is = Array.make n 0 in
        for j = 0 to n - 1 do
          is.(j) <- cidx.(j) venv
        done;
        let off = ref 0 in
        for j = 0 to n - 1 do
          check_dim name j dims.(j) is.(j);
          off := !off + ((is.(j) - 1) * strides.(j))
        done;
        k venv a !off
  | _ ->
      (* dummy argument or rank mismatch: the caller's dimensions decide *)
      let n = Array.length cidx in
      fun venv ->
        let a = get_arr name s venv in
        let rec go i =
          if i = n then []
          else
            let v = cidx.(i) venv in
            v :: go (i + 1)
        in
        let is = go 0 in
        k venv a (Env.offset name a is)

(* an expression in integer position (the consumer applies Value.to_int):
   produce the int directly.  Vars, element loads and literals specialize
   unconditionally ([to_int] composed with the load); arithmetic
   specializes only over statically-INTEGER operands, where native int
   ops agree with the generic Value path bit for bit. *)
and compile_index rt prog lay (e : Ast.expr) : Env.slots -> int =
  match compile_int rt prog lay e with
  | Some f -> f
  | None ->
      let g = force (compile rt prog lay e) in
      fun venv -> Value.to_int (g venv)

and compile_int rt prog lay (e : Ast.expr) : (Env.slots -> int) option =
  match e with
  | Ast.Int i -> Some (fun _ -> i)
  | Ast.Real r ->
      let i = int_of_float r in
      Some (fun _ -> i)
  | Ast.Var v ->
      let s = Env.slot lay v in
      Some
        (fun venv ->
          match venv.(s) with
          | Env.Cell c -> Value.to_int c.v
          | Env.Elem (a, off) -> Env.get_int a off
          | Env.Arr _ -> Value.err "array %s used as a scalar" v
          | Env.Poison m -> Value.err "%s" m)
  | Ast.Index (name, idx) ->
      Some
        (compile_element rt prog lay name idx (fun _ a off ->
             Env.get_int a off))
  | Ast.Unop (Ast.Neg, e1) when static_int lay e1 -> (
      match compile_int rt prog lay e1 with
      | Some f -> Some (fun venv -> -f venv)
      | None -> None)
  | Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div) as op), a, b)
    when static_int lay a && static_int lay b -> (
      match (compile_int rt prog lay a, compile_int rt prog lay b) with
      | Some fa, Some fb ->
          Some
            (match op with
            | Ast.Add ->
                fun venv ->
                  let x = fa venv in
                  let y = fb venv in
                  x + y
            | Ast.Sub ->
                fun venv ->
                  let x = fa venv in
                  let y = fb venv in
                  x - y
            | Ast.Mul ->
                fun venv ->
                  let x = fa venv in
                  let y = fb venv in
                  x * y
            | _ ->
                fun venv ->
                  let x = fa venv in
                  let y = fb venv in
                  if y = 0 then Value.err "INTEGER division by zero" else x / y)
      | _ -> None)
  | _ -> None

(* a REAL-typed expression as a native float (defined when
   [static_num lay e = Some Treal]); Int subterms are promoted exactly
   where the generic arith would promote them *)
and compile_float rt prog lay (e : Ast.expr) : (Env.slots -> float) option =
  match e with
  | Ast.Real r -> Some (fun _ -> r)
  | Ast.Var v ->
      let s = Env.slot lay v in
      Some
        (fun venv ->
          match venv.(s) with
          | Env.Cell c -> Value.to_float c.v
          | Env.Elem (a, off) -> Env.get_float a off
          | Env.Arr _ -> Value.err "array %s used as a scalar" v
          | Env.Poison m -> Value.err "%s" m)
  | Ast.Index (name, idx) ->
      Some
        (compile_element rt prog lay name idx (fun _ a off ->
             Env.get_float a off))
  | Ast.Unop (Ast.Neg, e1) -> (
      match compile_num rt prog lay e1 with
      | Some f -> Some (fun venv -> -.f venv)
      | None -> None)
  | Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div) as op), a, b) -> (
      match (compile_num rt prog lay a, compile_num rt prog lay b) with
      | Some fa, Some fb ->
          Some
            (match op with
            | Ast.Add ->
                fun venv ->
                  let x = fa venv in
                  let y = fb venv in
                  x +. y
            | Ast.Sub ->
                fun venv ->
                  let x = fa venv in
                  let y = fb venv in
                  x -. y
            | Ast.Mul ->
                fun venv ->
                  let x = fa venv in
                  let y = fb venv in
                  x *. y
            | _ ->
                fun venv ->
                  let x = fa venv in
                  let y = fb venv in
                  if y = 0.0 then Value.err "REAL division by zero" else x /. y)
      | _ -> None)
  | _ -> None

(* a statically-typed numeric expression as a float, promoting Int
   results the way [Value.to_float] would *)
and compile_num rt prog lay (e : Ast.expr) : (Env.slots -> float) option =
  match static_num lay e with
  | Some Ast.Treal -> compile_float rt prog lay e
  | Some Ast.Tint -> (
      match compile_int rt prog lay e with
      | Some f -> Some (fun venv -> float_of_int (f venv))
      | None -> None)
  | _ -> None

(* a condition over statically-typed operands: native comparison, no
   Bool allocation.  compare_num on two Ints is exactly [compare]; on a
   Real operand it compares [to_float] of both, i.e. [Float.compare]
   (which is why the float arm uses it rather than native [<] — they
   differ on NaN). *)
and compile_cond rt prog lay (e : Ast.expr) : (Env.slots -> bool) option =
  match e with
  | Ast.Bool b -> Some (fun _ -> b)
  | Ast.Binop (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne) as op), a, b)
    -> (
      let int_test : (int -> int -> bool) option =
        match op with
        | Ast.Lt -> Some ( < )
        | Ast.Le -> Some ( <= )
        | Ast.Gt -> Some ( > )
        | Ast.Ge -> Some ( >= )
        | Ast.Eq -> Some ( = )
        | Ast.Ne -> Some ( <> )
        | _ -> None
      in
      let float_test : (float -> float -> bool) option =
        match op with
        | Ast.Lt -> Some (fun x y -> Float.compare x y < 0)
        | Ast.Le -> Some (fun x y -> Float.compare x y <= 0)
        | Ast.Gt -> Some (fun x y -> Float.compare x y > 0)
        | Ast.Ge -> Some (fun x y -> Float.compare x y >= 0)
        | Ast.Eq -> Some (fun x y -> Float.compare x y = 0)
        | Ast.Ne -> Some (fun x y -> Float.compare x y <> 0)
        | _ -> None
      in
      match (static_num lay a, static_num lay b) with
      | Some Ast.Tint, Some Ast.Tint -> (
          match (compile_int rt prog lay a, compile_int rt prog lay b, int_test)
          with
          | Some fa, Some fb, Some cmp ->
              Some
                (fun venv ->
                  let x = fa venv in
                  let y = fb venv in
                  cmp x y)
          | _ -> None)
      | Some _, Some _ -> (
          match (compile_num rt prog lay a, compile_num rt prog lay b, float_test)
          with
          | Some fa, Some fb, Some cmp ->
              Some
                (fun venv ->
                  let x = fa venv in
                  let y = fb venv in
                  cmp x y)
          | _ -> None)
      | _ -> None)
  | Ast.Unop (Ast.Not, e1) -> (
      match compile_cond rt prog lay e1 with
      | Some f -> Some (fun venv -> not (f venv))
      | None -> None)
  | Ast.Binop (((Ast.And | Ast.Or) as op), a, b) -> (
      (* Value.logic evaluates both operands (no short circuit) *)
      match (compile_cond rt prog lay a, compile_cond rt prog lay b) with
      | Some fa, Some fb ->
          Some
            (if op = Ast.And then fun venv ->
               let x = fa venv in
               let y = fb venv in
               x && y
             else fun venv ->
               let x = fa venv in
               let y = fb venv in
               x || y)
      | _ -> None)
  | _ -> None

and compile_call rt prog lay f args : c =
  match Hashtbl.find_opt prog.Program.by_name f with
  | Some callee ->
      let cargs = Array.of_list (List.map (compile_arg rt prog lay) args) in
      D
        (fun venv ->
          match rt.call callee (eval_bindings cargs venv) with
          | Some v -> v
          | None -> Value.err "subroutine %s used as a function" f)
  | None -> (
      (* intrinsic (or unknown: resolves to a raising implementation),
         with direct fast paths for the PRNG hooks *)
      match (f, args) with
      | "RAND", [] -> D (fun _ -> Value.Real (Prng.float rt.rng))
      | "IRAND", [ e ] ->
          let c0 = compile_index rt prog lay e in
          D
            (fun venv ->
              let n = c0 venv in
              if n <= 0 then Value.err "IRAND bound must be positive"
              else Value.Int (1 + Prng.int rt.rng n))
      | _ ->
          let fn = Builtins.resolve f in
          let cargs =
            Array.of_list (List.map (fun e -> force (compile rt prog lay e)) args)
          in
          let n = Array.length cargs in
          D
            (fun venv ->
              let rec go i =
                if i = n then []
                else
                  let v = cargs.(i) venv in
                  v :: go (i + 1)
              in
              fn rt.rng (go 0)))

(* Fortran argument passing: variables and array elements by reference,
   whole arrays by reference, general expressions by copy-in *)
and compile_arg rt prog lay (e : Ast.expr) : Env.slots -> Env.binding =
  match e with
  | Ast.Var v ->
      let s = Env.slot lay v in
      fun venv ->
        (match venv.(s) with
        | Env.Poison m -> Value.err "%s" m
        | b -> b)
  | Ast.Index (name, idx) ->
      compile_element rt prog lay name idx (fun _ a off -> Env.Elem (a, off))
  | _ ->
      let f = force (compile rt prog lay e) in
      fun venv ->
        let v = f venv in
        Env.Cell { v; ty = ty_of_value v }

and eval_bindings (cargs : (Env.slots -> Env.binding) array) venv =
  let n = Array.length cargs in
  let rec go i =
    if i = n then []
    else
      let b = cargs.(i) venv in
      b :: go (i + 1)
  in
  go 0

let compile_expr rt prog lay e = force (compile rt prog lay e)

(* ---- node steps ---- *)

let ret_code = -1
let stop_code = -2

let find_idx (succ : Label.t array) l =
  let n = Array.length succ in
  let rec go i = if i = n then -1 else if Label.equal succ.(i) l then i else go (i + 1) in
  go 0

let compile_node rt prog (lay : Env.layout) ~node_id ~(succ : Label.t array)
    (ir : Ir.node) : Env.slots -> int =
  let pname = lay.Env.lproc.Program.name in
  let no_succ l =
    Value.err "no %s successor at node %d of %s" (Label.to_string l) node_id pname
  in
  let take l i = if i >= 0 then i else no_succ l in
  let u = find_idx succ Label.U in
  let write_scalar name s v venv =
    match venv.(s) with
    | Env.Cell c -> c.v <- Value.coerce c.ty v
    | Env.Elem (a, off) -> Env.set a off v
    | Env.Arr _ -> Value.err "assignment to whole array %s" name
    | Env.Poison m -> Value.err "%s" m
  in
  (* RHS of an assignment into a destination of statically-known numeric
     type, pre-coerced: [coerce Tint (Real r) = Int (int_of_float r)] and
     [coerce Treal (Int i) = Real (float_of_int i)], so applying the
     conversion natively is exactly the generic store *)
  let typed_rhs (dst : Ast.typ option) (e : Ast.expr) :
      (Env.slots -> Value.t) option =
    match (dst, static_num lay e) with
    | Some Ast.Tint, Some Ast.Tint ->
        Option.map
          (fun f venv -> Value.Int (f venv))
          (compile_int rt prog lay e)
    | Some Ast.Tint, Some Ast.Treal ->
        Option.map
          (fun f venv -> Value.Int (int_of_float (f venv)))
          (compile_float rt prog lay e)
    | Some Ast.Treal, Some _ ->
        Option.map
          (fun f venv -> Value.Real (f venv))
          (compile_num rt prog lay e)
    | _ -> None
  in
  match ir with
  | Ir.Entry | Ir.Nop _ -> fun _ -> take Label.U u
  | Ir.Assign (Ast.Lvar v, e) -> (
      let s = Env.slot lay v in
      match typed_rhs (static_scalar_ty lay s) e with
      | Some f ->
          (* typed scalar := static numeric expression — the slot is a
             fixed non-dummy Cell whose ty matches, and [f] pre-coerces *)
          fun venv ->
            let x = f venv in
            (match venv.(s) with
            | Env.Cell c -> c.v <- x
            | _ -> write_scalar v s x venv);
            take Label.U u
      | None ->
          let f = compile_expr rt prog lay e in
          fun venv ->
            write_scalar v s (f venv) venv;
            take Label.U u)
  | Ir.Assign (Ast.Larr (name, idx), e) ->
      let store =
        match typed_rhs (static_elt_ty lay (Env.slot lay name)) e with
        | Some frhs ->
            (* indices are evaluated before the RHS, as in the generic
               path; the element ty matches [frhs]'s pre-coercion *)
            compile_element rt prog lay name idx (fun venv a off ->
                Env.set a off (frhs venv))
        | None ->
            let frhs = compile_expr rt prog lay e in
            compile_element rt prog lay name idx (fun venv a off ->
                Env.set a off (frhs venv))
      in
      fun venv ->
        store venv;
        take Label.U u
  | Ir.Branch e -> (
      let t_idx = find_idx succ Label.T and f_idx = find_idx succ Label.F in
      match compile_cond rt prog lay e with
      | Some f when t_idx >= 0 && f_idx >= 0 ->
          fun venv -> if f venv then t_idx else f_idx
      | Some f ->
          fun venv -> if f venv then take Label.T t_idx else take Label.F f_idx
      | None ->
          let f = compile_expr rt prog lay e in
          if t_idx >= 0 && f_idx >= 0 then
            fun venv -> if Value.to_bool (f venv) then t_idx else f_idx
          else fun venv ->
            if Value.to_bool (f venv) then take Label.T t_idx else take Label.F f_idx)
  | Ir.Do_test d ->
      let s = Env.slot lay d.Ir.trip_var in
      let rd = read_slot d.Ir.trip_var s in
      let t_idx = find_idx succ Label.T and f_idx = find_idx succ Label.F in
      if t_idx >= 0 && f_idx >= 0 then
        fun venv -> if Value.to_int (rd venv) > 0 then t_idx else f_idx
      else fun venv ->
        if Value.to_int (rd venv) > 0 then take Label.T t_idx else take Label.F f_idx
  | Ir.Select (e, narms) ->
      let f = compile_index rt prog lay e in
      let case_tbl = Array.init narms (fun k -> find_idx succ (Label.Case (k + 1))) in
      let f_idx = find_idx succ Label.F in
      fun venv ->
        let i = f venv in
        if i >= 1 && i <= narms then take (Label.Case i) case_tbl.(i - 1)
        else take Label.F f_idx
  | Ir.Call (name, args) -> (
      match Hashtbl.find_opt prog.Program.by_name name with
      | Some callee ->
          let cargs = Array.of_list (List.map (compile_arg rt prog lay) args) in
          fun venv ->
            ignore (rt.call callee (eval_bindings cargs venv));
            take Label.U u
      | None -> fun _ -> Value.err "CALL of unknown subroutine %s" name)
  | Ir.Print es ->
      let cs = Array.of_list (List.map (compile_expr rt prog lay) es) in
      fun venv ->
        Array.iter
          (fun c -> Buffer.add_string rt.out (Fmt.str "%a " Value.pp (c venv)))
          cs;
        Buffer.add_char rt.out '\n';
        take Label.U u
  | Ir.Return -> fun _ -> ret_code
  | Ir.Stop -> fun _ -> stop_code

(* ---- probe actions ---- *)

type caction =
  | CIncr of int
  | CBulk of int * int * cexpr

let compile_action rt prog lay (cm : Cost_model.t) (a : Probe.action) : caction =
  match a with
  | Probe.Incr c -> CIncr c
  | Probe.Bulk_add (c, e) ->
      CBulk (c, Cost_model.expr_cost cm e, compile_expr rt prog lay e)
