(* CFG -> register bytecode translation.

   One pass over the procedure's CFG emits a contiguous [int array] of
   {!Bytecode} instructions.  The translation is conservative: a node is
   lowered to native register ops only when every fact it depends on is
   static (slot types, array dimensions, successor edges); anything else
   becomes a [FALLBACK] op wrapping the closure from
   {!Compile.compile_node}, which is semantically exact by construction.
   The static-typing judgments are shared with compile.ml
   ([Compile.static_num] and friends) so both backends specialize — and
   therefore agree — on exactly the same expressions.

   Scalar promotion: every non-dummy slot of static INTEGER/REAL type
   that is never passed by reference to a user procedure lives in an
   unboxed int/float register for the whole activation.  Registers are
   synced with the frame cells at entry, at RET, and around each
   fallback (only the slots the fallback's node actually mentions), so
   closures and FUNCTION-result reads always see current values, while
   by-reference aliasing is impossible for promoted slots by
   construction.

   Parity fine print encoded here:
   - conditionals/selects never bump edge counts themselves; every
     traversal runs the successor's EDGE/EDGEP op, so fused jumps cannot
     double-count and probed edges fire after the bump (compiled order);
   - evaluation order inside expressions is left-to-right as in
     compile.ml; hoisting the array lookup of a statically-dimensioned
     array past index evaluation is unobservable (the binding is always
     [Arr], so the lookup cannot raise);
   - float const-op fusions keep the constant on the side it appears on
     (FADDK/FMULK only fold a right-hand constant; FRSUBK handles
     [k - x]) so NaN propagation is bit-identical to the generic path;
   - no emit-time constant folding: [1/0] must raise each time it
     executes, exactly like the closure backend. *)

module Ast = S89_frontend.Ast
module Ir = S89_frontend.Ir
module Sema = S89_frontend.Sema
module Program = S89_frontend.Program
module B = Bytecode
open S89_cfg

(* raised (emit-time only) when a node has no native lowering *)
exception Unsupported

let find_idx (succ : Label.t array) l =
  let n = Array.length succ in
  let rec go i =
    if i = n then -1 else if Label.equal succ.(i) l then i else go (i + 1)
  in
  go 0

(* scalar variable names an expression can read (array names excluded:
   arrays are never promoted) *)
let rec names_of acc (e : Ast.expr) =
  match e with
  | Ast.Int _ | Ast.Real _ | Ast.Bool _ -> acc
  | Ast.Var v -> v :: acc
  | Ast.Index (_, idx) -> List.fold_left names_of acc idx
  | Ast.Call (_, args) -> List.fold_left names_of acc args
  | Ast.Unop (_, e1) -> names_of acc e1
  | Ast.Binop (_, a, b) -> names_of (names_of acc a) b

(* scalars a node's generic execution can read or write *)
let node_names (ir : Ir.node) =
  let extra =
    match ir with
    | Ir.Assign (Ast.Lvar v, _) -> [ v ]
    | Ir.Do_test d -> [ d.Ir.trip_var ]
    | _ -> []
  in
  List.fold_left names_of extra (Ir.exprs_of ir)

let jop_ii = function
  | Ast.Lt -> B.op_jlt_ii
  | Ast.Le -> B.op_jle_ii
  | Ast.Gt -> B.op_jgt_ii
  | Ast.Ge -> B.op_jge_ii
  | Ast.Eq -> B.op_jeq_ii
  | Ast.Ne -> B.op_jne_ii
  | _ -> raise Unsupported

let jop_ik = function
  | Ast.Lt -> B.op_jlt_ik
  | Ast.Le -> B.op_jle_ik
  | Ast.Gt -> B.op_jgt_ik
  | Ast.Ge -> B.op_jge_ik
  | Ast.Eq -> B.op_jeq_ik
  | Ast.Ne -> B.op_jne_ik
  | _ -> raise Unsupported

let jop_ff = function
  | Ast.Lt -> B.op_jlt_ff
  | Ast.Le -> B.op_jle_ff
  | Ast.Gt -> B.op_jgt_ff
  | Ast.Ge -> B.op_jge_ff
  | Ast.Eq -> B.op_jeq_ff
  | Ast.Ne -> B.op_jne_ff
  | _ -> raise Unsupported

let jop_fk = function
  | Ast.Lt -> B.op_jlt_fk
  | Ast.Le -> B.op_jle_fk
  | Ast.Gt -> B.op_jgt_fk
  | Ast.Ge -> B.op_jge_fk
  | Ast.Eq -> B.op_jeq_fk
  | Ast.Ne -> B.op_jne_fk
  | _ -> raise Unsupported

(* [k rel x] rewritten as [x rel' k]; sound for both int comparison and
   Float.compare, which are total orders *)
let flip_rel = function
  | Ast.Lt -> Ast.Gt
  | Ast.Le -> Ast.Ge
  | Ast.Gt -> Ast.Lt
  | Ast.Ge -> Ast.Le
  | op -> op (* Eq/Ne symmetric *)

(* ---- emission plan (profile-guided) ----

   The plan steers code generation without changing semantics:
   - [native_intrinsics]: lower statically-typed intrinsic calls (SQRT,
     EXP, RAND, INT, ...) to dedicated opcodes instead of escaping the
     whole node to FALLBACK;
   - [inline_sites]: CALL statement nodes (per procedure) where a hot
     leaf callee should be spliced into the caller's frame — attempted,
     with full rollback to FALLBACK when any legality condition fails;
   - [layout]: per-procedure node emission order (hot-first), legal for
     any permutation because every control transfer carries an explicit
     destination pc;
   - [inline_budget]: maximum callee CFG size considered for splicing.

   All observable accounting (cycles, steps, oracle counts, probes, PRNG
   stream, error points) is preserved exactly under any plan; the
   differential suites enforce this. *)
type plan = {
  native_intrinsics : bool;
  inline_sites : (string, int list) Hashtbl.t;
  layout : (string, int array) Hashtbl.t;
  inline_budget : int;
}

let default_plan =
  {
    native_intrinsics = true;
    inline_sites = Hashtbl.create 1;
    layout = Hashtbl.create 1;
    inline_budget = 16;
  }

(* PR6-compatible plan: intrinsic calls escape to FALLBACK (used by the
   bench to measure what intrinsic lowering and inlining buy) *)
let conservative_plan = { default_plan with native_intrinsics = false }

let emit_proc ~(cost_model : Cost_model.t) ~(instr : Probe.t)
    ?(plan = default_plan) (rt : Compile.rt) (prog : Program.t)
    (p : Program.proc) : B.proc =
  let cfg = p.Program.cfg in
  let n = Cfg.num_nodes cfg in
  let pi = Probe.find_proc instr p.Program.name in
  let lay = Env.layout p in
  let nslots = Env.n_slots lay in
  let inline_sites =
    match Hashtbl.find_opt plan.inline_sites p.Program.name with
    | Some l -> l
    | None -> []
  in

  (* ---- promotion analysis ---- *)
  let by_ref = Array.make nslots false in
  let mark_by_ref = function
    | Ast.Var v -> by_ref.(Env.slot lay v) <- true
    | _ -> ()
  in
  (* bare-variable arguments of user-procedure calls are bound by
     reference (compile_arg / arg_binding): the callee can mutate them
     behind the frame's back, so those slots must stay in their cells *)
  let rec scan_refs (e : Ast.expr) =
    match e with
    | Ast.Int _ | Ast.Real _ | Ast.Bool _ | Ast.Var _ -> ()
    | Ast.Index (_, idx) -> List.iter scan_refs idx
    | Ast.Call (f, args) ->
        if Hashtbl.mem prog.Program.by_name f then List.iter mark_by_ref args;
        List.iter scan_refs args
    | Ast.Unop (_, e1) -> scan_refs e1
    | Ast.Binop (_, a, b) ->
        scan_refs a;
        scan_refs b
  in
  let scan_action = function
    | Probe.Incr _ -> ()
    | Probe.Bulk_add (_, e) -> scan_refs e
  in
  for i = 0 to n - 1 do
    let ir = (Cfg.info cfg i).Ir.ir in
    (match ir with
    | Ir.Call (f, args) when Hashtbl.mem prog.Program.by_name f ->
        (* at a planned inline site the bare-variable args bind to the
           caller's own registers (exact by-reference aliasing), so they
           may stay promoted; if the splice is rejected the node falls
           back and fb_sync covers those names anyway *)
        if not (List.mem i inline_sites) then List.iter mark_by_ref args
    | _ -> ());
    List.iter scan_refs (Ir.exprs_of ir)
  done;
  (match pi with
  | Some pi ->
      Array.iter (List.iter scan_action) pi.Probe.on_node;
      Array.iter
        (List.iter (fun (_, acts) -> List.iter scan_action acts))
        pi.Probe.on_edge
  | None -> ());

  let slot_ireg = Array.make nslots (-1) in
  let slot_freg = Array.make nslots (-1) in
  let n_pro_i = ref 0 and n_pro_f = ref 0 in
  for s = lay.Env.n_params to nslots - 1 do
    if not by_ref.(s) then
      match Compile.static_scalar_ty lay s with
      | Some Ast.Tint ->
          slot_ireg.(s) <- !n_pro_i;
          incr n_pro_i
      | Some Ast.Treal ->
          slot_freg.(s) <- !n_pro_f;
          incr n_pro_f
      | _ -> ()
  done;
  let sync_of_slots slots =
    let si = ref [] and sf = ref [] in
    List.iter
      (fun s ->
        if slot_ireg.(s) >= 0 then si := (s, slot_ireg.(s)) :: !si
        else if slot_freg.(s) >= 0 then sf := (s, slot_freg.(s)) :: !sf)
      slots;
    {
      B.si_slot = Array.of_list (List.map fst !si);
      si_reg = Array.of_list (List.map snd !si);
      sf_slot = Array.of_list (List.map fst !sf);
      sf_reg = Array.of_list (List.map snd !sf);
    }
  in
  let all_promoted =
    sync_of_slots (List.init nslots (fun s -> s))
  in
  let sync_of_names names =
    sync_of_slots
      (List.sort_uniq compare (List.map (Env.slot lay) names))
  in

  (* temp registers: above the promoted ones, reset per node, watermarked *)
  let ti_base = !n_pro_i and tf_base = !n_pro_f in
  let ti = ref ti_base and tf = ref tf_base in
  let max_ti = ref ti_base and max_tf = ref tf_base in
  let reset_temps () =
    ti := ti_base;
    tf := tf_base
  in
  let itemp () =
    let r = !ti in
    incr ti;
    if !ti > !max_ti then max_ti := !ti;
    r
  in
  let ftemp () =
    let r = !tf in
    incr tf;
    if !tf > !max_tf then max_tf := !tf;
    r
  in

  (* ---- code buffer ---- *)
  let buf = ref (Array.make 1024 0) in
  let len = ref 0 in
  let emit k =
    if !len = Array.length !buf then begin
      let nb = Array.make (2 * Array.length !buf) 0 in
      Array.blit !buf 0 nb 0 !len;
      buf := nb
    end;
    !buf.(!len) <- k;
    incr len
  in
  let pos () = !len in
  let patch i v = !buf.(i) <- v in
  let node_start = Array.make n (-1) in
  (* forward references to node starts: (operand position, node id) *)
  let fixups = ref [] in
  let emit_node_ref nid =
    emit 0;
    fixups := (pos () - 1, nid) :: !fixups
  in

  (* ---- float constant pool (deduplicated by bit pattern) ---- *)
  let fpool = ref [] and n_fpool = ref 0 in
  let fpool_tbl : (int64, int) Hashtbl.t = Hashtbl.create 16 in
  let fconst (x : float) =
    let bits = Int64.bits_of_float x in
    match Hashtbl.find_opt fpool_tbl bits with
    | Some k -> k
    | None ->
        let k = !n_fpool in
        incr n_fpool;
        fpool := x :: !fpool;
        Hashtbl.add fpool_tbl bits k;
        k
  in

  (* ---- shared tables ---- *)
  let bulks = ref [] and n_bulks = ref 0 in
  let add_bulk c e =
    let bi = !n_bulks in
    incr n_bulks;
    bulks :=
      {
        B.bk_counter = c;
        bk_charge =
          cost_model.Cost_model.c_counter + Cost_model.expr_cost cost_model e;
        bk_expr = Compile.compile_expr rt prog lay e;
        bk_sync = sync_of_names (names_of [] e);
      }
      :: !bulks;
    bi
  in
  let groups = ref [] and n_groups = ref 0 in
  let add_group acts =
    let gid = !n_groups in
    incr n_groups;
    groups :=
      Array.of_list
        (List.map
           (function
             | Probe.Incr c -> B.PIncr c
             | Probe.Bulk_add (c, e) -> B.PBulk (add_bulk c e))
           acts)
      :: !groups;
    gid
  in
  let fallbacks = ref [] and n_fallbacks = ref 0 in

  (* ---- edge bookkeeping: flat (node, successor index) -> counter ---- *)
  let succ_labels = Array.make n [||] in
  let succ_dst = Array.make n [||] in
  for i = 0 to n - 1 do
    let edges = Cfg.succ_edges cfg i in
    succ_labels.(i) <-
      Array.of_list
        (List.map (fun (e : Label.t S89_graph.Digraph.edge) -> e.label) edges);
    succ_dst.(i) <-
      Array.of_list
        (List.map (fun (e : Label.t S89_graph.Digraph.edge) -> e.dst) edges)
  done;
  let edge_base = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    edge_base.(i + 1) <- edge_base.(i) + Array.length succ_labels.(i)
  done;
  let node_cost =
    Array.init n (fun i -> Cost_model.node_cost cost_model (Cfg.info cfg i).Ir.ir)
  in

  (* inlined-callee regions extend the exec/sample and edge-count arrays
     past the caller's own nodes/edges; the tops track the next free
     index and size the arrays at the end *)
  let exec_top = ref n in
  let edge_top = ref edge_base.(n) in
  let regions = ref [] and n_regions = ref 0 in

  (* ---- expression context ----

     The emitters below resolve variables through these three functions
     so the same code serves the caller's frame (promoted slots, cell
     loads allowed) and an inlined callee body (virtual registers only).
     [cx_slots] gates every frame-cell/array access: inside a splice the
     callee has no frame, so anything unpromotable bails out. *)
  let caller_ty v =
    match Compile.static_scalar_ty lay (Env.slot lay v) with
    | Some (Ast.Tint | Ast.Treal) as t -> t
    | _ -> None
  in
  let caller_ireg v = slot_ireg.(Env.slot lay v) in
  let caller_freg v = slot_freg.(Env.slot lay v) in
  let cx_ty = ref caller_ty in
  let cx_ireg = ref caller_ireg in
  let cx_freg = ref caller_freg in
  let cx_slots = ref true in
  let reset_cx () =
    cx_ty := caller_ty;
    cx_ireg := caller_ireg;
    cx_freg := caller_freg;
    cx_slots := true
  in

  (* Static numeric typing: mirrors [Compile.static_num] case for case
     (same judgments => both backends specialize the same expressions),
     extended — when the plan enables it — with intrinsic calls whose
     native lowering below is exact.  A user procedure shadowing an
     intrinsic name keeps the dynamic path. *)
  let is_native_intrinsic f =
    plan.native_intrinsics && not (Hashtbl.mem prog.Program.by_name f)
  in
  let rec xstatic_num (e : Ast.expr) : Ast.typ option =
    match e with
    | Ast.Int _ -> Some Ast.Tint
    | Ast.Real _ -> Some Ast.Treal
    | Ast.Var v -> !cx_ty v
    | Ast.Index (name, _) ->
        if !cx_slots then
          match Compile.static_elt_ty lay (Env.slot lay name) with
          | Some (Ast.Tint | Ast.Treal) as t -> t
          | _ -> None
        else None
    | Ast.Unop (Ast.Neg, e1) -> xstatic_num e1
    | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div), a, b) -> (
        match (xstatic_num a, xstatic_num b) with
        | Some Ast.Tint, Some Ast.Tint -> Some Ast.Tint
        | Some (Ast.Tint | Ast.Treal), Some (Ast.Tint | Ast.Treal) ->
            Some Ast.Treal
        | _ -> None)
    | Ast.Call (f, args) when is_native_intrinsic f -> (
        let num1 t =
          match args with
          | [ a ] -> ( match xstatic_num a with Some _ -> Some t | None -> None)
          | _ -> None
        in
        match f with
        | "SQRT" | "EXP" | "LOG" | "ALOG" | "SIN" | "COS" | "TAN" | "ATAN"
        | "REAL" | "FLOAT" ->
            num1 Ast.Treal
        | "INT" | "IFIX" | "IABS" | "IRAND" -> num1 Ast.Tint
        | "ABS" -> ( match args with [ a ] -> xstatic_num a | _ -> None)
        | "MOD" -> (
            match args with
            | [ a; b ]
              when xstatic_num a = Some Ast.Tint && xstatic_num b = Some Ast.Tint
              ->
                Some Ast.Tint
            | _ -> None)
        | "RAND" -> ( match args with [] -> Some Ast.Treal | _ -> None)
        | _ -> None)
    | _ -> None
  in
  let xstatic_int e = xstatic_num e = Some Ast.Tint in

  (* array subscript: split off a constant displacement (A(I+1),
     A(I-2)) so it folds into the access opcode's ka/kb immediate.
     Int adds are exact, so evaluating [reg + k] at the access is
     observationally identical to materializing the sum in a temp; the
     static-int guard keeps non-integer subscripts on the fallback
     path, where a REAL subscript truncates after the addition. *)
  let index_parts (e : Ast.expr) : Ast.expr * int =
    match e with
    | Ast.Binop (Ast.Add, e1, Ast.Int k) when xstatic_int e1 -> (e1, k)
    | Ast.Binop (Ast.Add, Ast.Int k, e1) when xstatic_int e1 -> (e1, k)
    | Ast.Binop (Ast.Sub, e1, Ast.Int k) when xstatic_int e1 -> (e1, -k)
    | _ -> (e, 0)
  in

  (* expression emitters, mirroring compile_int/compile_float/
     compile_num case for case.  Results go to [dst] when given (safe:
     every op reads its sources before writing its destination), else
     to a fresh temp — or, for a promoted variable leaf, its own
     register. *)
  let rec emit_int ?dst (e : Ast.expr) : int =
    let into k =
      match dst with
      | Some d ->
          k d;
          d
      | None ->
          let d = itemp () in
          k d;
          d
    in
    match e with
    | Ast.Int i ->
        into (fun d ->
            emit B.op_ldki;
            emit d;
            emit i)
    | Ast.Real r ->
        let i = int_of_float r in
        into (fun d ->
            emit B.op_ldki;
            emit d;
            emit i)
    | Ast.Var v -> (
        let ri = !cx_ireg v in
        if ri >= 0 then
          match dst with
          | None -> ri
          | Some d ->
              if d <> ri then begin
                emit B.op_movi;
                emit d;
                emit ri
              end;
              d
        else
          let rf = !cx_freg v in
          if rf >= 0 then
            into (fun d ->
                emit B.op_ftoi;
                emit d;
                emit rf)
          else if !cx_slots then
            into (fun d ->
                emit B.op_ldci;
                emit d;
                emit (Env.slot lay v))
          else raise Unsupported)
    | Ast.Index (name, idx) -> (
        if not !cx_slots then raise Unsupported;
        let s = Env.slot lay name in
        match (Compile.static_dims lay s, idx) with
        | Some [ d0 ], [ e0 ] ->
            let e0, k0 = index_parts e0 in
            let r0 = emit_int e0 in
            into (fun d ->
                emit B.op_lda1i;
                emit d;
                emit s;
                emit d0;
                emit r0;
                emit k0)
        | Some [ d0; d1 ], [ e0; e1 ] ->
            let e0, k0 = index_parts e0 in
            let e1, k1 = index_parts e1 in
            let r0 = emit_int e0 in
            let r1 = emit_int e1 in
            into (fun d ->
                emit B.op_lda2i;
                emit d;
                emit s;
                emit d0;
                emit d1;
                emit r0;
                emit r1;
                emit k0;
                emit k1)
        | _ -> raise Unsupported)
    | Ast.Unop (Ast.Neg, e1) when xstatic_int e1 ->
        let r = emit_int e1 in
        into (fun d ->
            emit B.op_ineg;
            emit d;
            emit r)
    | Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div) as op), a, b)
      when xstatic_int a && xstatic_int b -> (
        match (op, a, b) with
        (* constant-fused forms; int ops are exact, so commuting a
           constant to the immediate slot is observationally identical *)
        | Ast.Add, _, Ast.Int k ->
            let r = emit_int a in
            into (fun d ->
                emit B.op_iaddk;
                emit d;
                emit r;
                emit k)
        | Ast.Add, Ast.Int k, _ ->
            let r = emit_int b in
            into (fun d ->
                emit B.op_iaddk;
                emit d;
                emit r;
                emit k)
        | Ast.Sub, _, Ast.Int k ->
            let r = emit_int a in
            into (fun d ->
                emit B.op_iaddk;
                emit d;
                emit r;
                emit (-k))
        | Ast.Sub, Ast.Int k, _ ->
            let r = emit_int b in
            into (fun d ->
                emit B.op_irsubk;
                emit d;
                emit r;
                emit k)
        | Ast.Mul, _, Ast.Int k ->
            let r = emit_int a in
            into (fun d ->
                emit B.op_imulk;
                emit d;
                emit r;
                emit k)
        | Ast.Mul, Ast.Int k, _ ->
            let r = emit_int b in
            into (fun d ->
                emit B.op_imulk;
                emit d;
                emit r;
                emit k)
        | _ ->
            let ra = emit_int a in
            let rb = emit_int b in
            let opc =
              match op with
              | Ast.Add -> B.op_iadd
              | Ast.Sub -> B.op_isub
              | Ast.Mul -> B.op_imul
              | _ -> B.op_idiv
            in
            into (fun d ->
                emit opc;
                emit d;
                emit ra;
                emit rb))
    | Ast.Call (f, args) when is_native_intrinsic f -> (
        (* exact counterparts of the Builtins closures: same coercions,
           same error points/messages, same PRNG draws *)
        match (f, args) with
        | ("INT" | "IFIX"), [ a ] -> (
            match xstatic_num a with
            | Some Ast.Tint -> emit_int ?dst a (* to_int on Int = identity *)
            | Some Ast.Treal ->
                let r = emit_float a in
                into (fun d ->
                    emit B.op_ftoi;
                    emit d;
                    emit r)
            | _ -> raise Unsupported)
        | "IABS", [ a ] ->
            let r = emit_as_int a in
            into (fun d ->
                emit B.op_iabs;
                emit d;
                emit r)
        | "ABS", [ a ] when xstatic_num a = Some Ast.Tint ->
            let r = emit_int a in
            into (fun d ->
                emit B.op_iabs;
                emit d;
                emit r)
        | "IRAND", [ a ] ->
            let r = emit_as_int a in
            into (fun d ->
                emit B.op_irand;
                emit d;
                emit r)
        | "MOD", [ a; b ]
          when xstatic_num a = Some Ast.Tint && xstatic_num b = Some Ast.Tint
          ->
            let ra = emit_int a in
            let rb = emit_int b in
            into (fun d ->
                emit B.op_imod;
                emit d;
                emit ra;
                emit rb)
        | _ -> raise Unsupported)
    | _ -> raise Unsupported
  and emit_float ?dst (e : Ast.expr) : int =
    let into k =
      match dst with
      | Some d ->
          k d;
          d
      | None ->
          let d = ftemp () in
          k d;
          d
    in
    let lit = function
      | Ast.Real r -> Some r
      | Ast.Int i -> Some (float_of_int i)
      | _ -> None
    in
    match e with
    | Ast.Real r ->
        let k = fconst r in
        into (fun d ->
            emit B.op_ldkf;
            emit d;
            emit k)
    | Ast.Var v -> (
        let rf = !cx_freg v in
        if rf >= 0 then
          match dst with
          | None -> rf
          | Some d ->
              if d <> rf then begin
                emit B.op_movf;
                emit d;
                emit rf
              end;
              d
        else
          let ri = !cx_ireg v in
          if ri >= 0 then
            into (fun d ->
                emit B.op_itof;
                emit d;
                emit ri)
          else if !cx_slots then
            into (fun d ->
                emit B.op_ldcf;
                emit d;
                emit (Env.slot lay v))
          else raise Unsupported)
    | Ast.Index (name, idx) -> (
        if not !cx_slots then raise Unsupported;
        let s = Env.slot lay name in
        match (Compile.static_dims lay s, idx) with
        | Some [ d0 ], [ e0 ] ->
            let e0, k0 = index_parts e0 in
            let r0 = emit_int e0 in
            into (fun d ->
                emit B.op_lda1f;
                emit d;
                emit s;
                emit d0;
                emit r0;
                emit k0)
        | Some [ d0; d1 ], [ e0; e1 ] ->
            let e0, k0 = index_parts e0 in
            let e1, k1 = index_parts e1 in
            let r0 = emit_int e0 in
            let r1 = emit_int e1 in
            into (fun d ->
                emit B.op_lda2f;
                emit d;
                emit s;
                emit d0;
                emit d1;
                emit r0;
                emit r1;
                emit k0;
                emit k1)
        | _ -> raise Unsupported)
    | Ast.Unop (Ast.Neg, e1) ->
        let r = emit_num e1 in
        into (fun d ->
            emit B.op_fneg;
            emit d;
            emit r)
    | Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div) as op), a, b) -> (
        match (op, lit a, lit b) with
        (* right-hand constants fuse; a left-hand constant only fuses
           for Sub (FRSUBK) — Add/Mul would swap NaN operand order *)
        | Ast.Add, _, Some k ->
            let r = emit_num a in
            let kk = fconst k in
            into (fun d ->
                emit B.op_faddk;
                emit d;
                emit r;
                emit kk)
        | Ast.Sub, _, Some k ->
            let r = emit_num a in
            let kk = fconst k in
            into (fun d ->
                emit B.op_fsubk;
                emit d;
                emit r;
                emit kk)
        | Ast.Mul, _, Some k ->
            let r = emit_num a in
            let kk = fconst k in
            into (fun d ->
                emit B.op_fmulk;
                emit d;
                emit r;
                emit kk)
        | Ast.Sub, Some k, _ ->
            let r = emit_num b in
            let kk = fconst k in
            into (fun d ->
                emit B.op_frsubk;
                emit d;
                emit r;
                emit kk)
        | _ ->
            let ra = emit_num a in
            let rb = emit_num b in
            let opc =
              match op with
              | Ast.Add -> B.op_fadd
              | Ast.Sub -> B.op_fsub
              | Ast.Mul -> B.op_fmul
              | _ -> B.op_fdiv
            in
            into (fun d ->
                emit opc;
                emit d;
                emit ra;
                emit rb))
    | Ast.Call (f, args) when is_native_intrinsic f -> (
        (* unary real intrinsics take to_float of their argument, which
           is exactly emit_num's promotion *)
        let un opc a =
          let r = emit_num a in
          into (fun d ->
              emit opc;
              emit d;
              emit r)
        in
        match (f, args) with
        | "SQRT", [ a ] -> un B.op_fsqrt a
        | "EXP", [ a ] -> un B.op_fexp a
        | ("LOG" | "ALOG"), [ a ] -> un B.op_flog a
        | "SIN", [ a ] -> un B.op_fsin a
        | "COS", [ a ] -> un B.op_fcos a
        | "TAN", [ a ] -> un B.op_ftan a
        | "ATAN", [ a ] -> un B.op_fatan a
        | "ABS", [ a ] when xstatic_num a = Some Ast.Treal ->
            let r = emit_float a in
            into (fun d ->
                emit B.op_fabs;
                emit d;
                emit r)
        | ("REAL" | "FLOAT"), [ a ] -> (
            match xstatic_num a with
            | Some Ast.Treal -> emit_float ?dst a (* to_float on Real = id *)
            | Some Ast.Tint ->
                let r = emit_int a in
                into (fun d ->
                    emit B.op_itof;
                    emit d;
                    emit r)
            | _ -> raise Unsupported)
        | "RAND", [] -> into (fun d -> emit B.op_rand; emit d)
        | _ -> raise Unsupported)
    | _ -> raise Unsupported
  and emit_num ?dst (e : Ast.expr) : int =
    match xstatic_num e with
    | Some Ast.Treal -> emit_float ?dst e
    | Some Ast.Tint -> (
        let r = emit_int e in
        match dst with
        | Some d ->
            emit B.op_itof;
            emit d;
            emit r;
            d
        | None ->
            let d = ftemp () in
            emit B.op_itof;
            emit d;
            emit r;
            d)
    | _ -> raise Unsupported
  and emit_as_int (e : Ast.expr) : int =
    (* Value.to_int of a statically-typed operand *)
    match xstatic_num e with
    | Some Ast.Tint -> emit_int e
    | Some Ast.Treal ->
        let r = emit_float e in
        let t = itemp () in
        emit B.op_ftoi;
        emit t;
        emit r;
        t
    | _ -> raise Unsupported
  in
  (* fused compare-and-branch; returns the (pcT, pcF) operand positions
     to patch once the edge sequences exist *)
  let rec emit_cond_jump ~neg (e : Ast.expr) : int * int =
    match e with
    | Ast.Unop (Ast.Not, e1) -> emit_cond_jump ~neg:(not neg) e1
    | Ast.Binop
        (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne) as op), a, b)
      -> (
        let finish () =
          let pt = pos () in
          emit 0;
          let pf = pos () in
          emit 0;
          if neg then (pf, pt) else (pt, pf)
        in
        match (xstatic_num a, xstatic_num b) with
        | Some Ast.Tint, Some Ast.Tint -> (
            match (a, b) with
            | _, Ast.Int k ->
                let ra = emit_int a in
                emit (jop_ik op);
                emit ra;
                emit k;
                finish ()
            | Ast.Int k, _ ->
                let rb = emit_int b in
                emit (jop_ik (flip_rel op));
                emit rb;
                emit k;
                finish ()
            | _ ->
                let ra = emit_int a in
                let rb = emit_int b in
                emit (jop_ii op);
                emit ra;
                emit rb;
                finish ())
        | Some _, Some _ -> (
            let lit = function
              | Ast.Real r -> Some r
              | Ast.Int i -> Some (float_of_int i)
              | _ -> None
            in
            match (lit a, lit b) with
            | _, Some k ->
                let ra = emit_num a in
                emit (jop_fk op);
                emit ra;
                emit (fconst k);
                finish ()
            | Some k, _ ->
                let rb = emit_num b in
                emit (jop_fk (flip_rel op));
                emit rb;
                emit (fconst k);
                finish ()
            | _ ->
                let ra = emit_num a in
                let rb = emit_num b in
                emit (jop_ff op);
                emit ra;
                emit rb;
                finish ())
        | _ -> raise Unsupported)
    | _ -> raise Unsupported
  in

  (* ---- hot leaf-call inlining ----

     Splices a straight-line leaf callee (Entry -> scalar assigns ->
     Return, no branches/arrays/calls/PRINT, <= inline_budget nodes)
     into the caller's frame.  All accounting is preserved exactly:
     the callee's nodes and flat edges get a fresh block of the host's
     exec/sample/edge-count arrays (a [region] records the bases and
     the per-site invocation count, bumped by IENTER together with the
     call-depth guard), every transition charges the same node costs
     through EDGEA/EDGEPA, and Incr probes fire in compiled order.
     Argument binding reproduces [Compile.eval_bindings]: a bare
     promoted variable of the declared type aliases the caller's own
     register (true by-reference semantics, including CALL FOO(M,M));
     a promoted variable of the other numeric type, or any statically
     typed expression, is copied into a fresh register with the exact
     [Value.coerce] conversion; anything else rejects the splice. *)
  let emit_inline f (args : Ast.expr list) =
    let callee =
      match Hashtbl.find_opt prog.Program.by_name f with
      | Some c -> c
      | None -> raise Unsupported
    in
    let ccfg = callee.Program.cfg in
    let cn = Cfg.num_nodes ccfg in
    if cn > plan.inline_budget then raise Unsupported;
    let clay = Env.layout callee in
    let cnp = clay.Env.n_params in
    if List.length args <> cnp then raise Unsupported;
    let cnslots = Env.n_slots clay in
    (* the callee must be a straight-line leaf chain ending in RETURN *)
    let chain = ref [] and steps = ref 0 in
    let rec walk u =
      incr steps;
      if !steps > cn then raise Unsupported;
      chain := u :: !chain;
      match (Cfg.info ccfg u).Ir.ir with
      | Ir.Return -> (
          match Cfg.succ_edges ccfg u with
          | [] -> ()
          | _ -> raise Unsupported)
      | Ir.Entry | Ir.Nop _ | Ir.Assign (Ast.Lvar _, _) -> (
          match Cfg.succ_edges ccfg u with
          | [ (e : Label.t S89_graph.Digraph.edge) ]
            when Label.equal e.label Label.U ->
              walk e.dst
          | _ -> raise Unsupported)
      | _ -> raise Unsupported
    in
    walk (Cfg.entry ccfg);
    let chain = List.rev !chain in
    let cpi = Probe.find_proc instr callee.Program.name in
    let cnode_probes u =
      match cpi with Some q -> q.Probe.on_node.(u) | None -> []
    in
    let cedge_probes u =
      match cpi with
      | Some q -> (
          match
            List.find_opt
              (fun (l, _) -> Label.equal l Label.U)
              q.Probe.on_edge.(u)
          with
          | Some (_, acts) -> acts
          | None -> [])
      | None -> []
    in
    (* flat edge indexing identical to the callee's standalone emission,
       so the interpreter can sum host and standalone counters *)
    let cedge_base = Array.make (cn + 1) 0 in
    for u = 0 to cn - 1 do
      cedge_base.(u + 1) <- cedge_base.(u) + List.length (Cfg.succ_edges ccfg u)
    done;
    let ccost u = Cost_model.node_cost cost_model (Cfg.info ccfg u).Ir.ir in
    let ri = !n_regions in
    incr n_regions;
    let rg =
      {
        B.rg_callee = callee.Program.name;
        rg_node_base = !exec_top;
        rg_edge_base = !edge_top;
        rg_invocations = 0;
      }
    in
    regions := rg :: !regions;
    exec_top := !exec_top + cn;
    edge_top := !edge_top + cedge_base.(cn);
    (* virtual callee registers, indexed by callee slot *)
    let creg_i = Array.make (max cnslots 1) (-1) in
    let creg_f = Array.make (max cnslots 1) (-1) in
    (* bind arguments left-to-right in the caller context (argument
       evaluation precedes the invocation count / depth guard, exactly
       like eval_bindings before enter_call) *)
    List.iteri
      (fun j arg ->
        let ty =
          match clay.Env.param_tys.(j) with
          | Some ((Ast.Tint | Ast.Treal) as t) -> t
          | _ -> raise Unsupported
        in
        match arg with
        | Ast.Var v -> (
            let ri0 = !cx_ireg v and rf0 = !cx_freg v in
            match ty with
            | Ast.Tint ->
                if ri0 >= 0 then creg_i.(j) <- ri0 (* by-ref alias *)
                else if rf0 >= 0 then begin
                  let t = itemp () in
                  emit B.op_ftoi;
                  emit t;
                  emit rf0;
                  creg_i.(j) <- t
                end
                else raise Unsupported
            | Ast.Treal ->
                if rf0 >= 0 then creg_f.(j) <- rf0 (* by-ref alias *)
                else if ri0 >= 0 then begin
                  let t = ftemp () in
                  emit B.op_itof;
                  emit t;
                  emit ri0;
                  creg_f.(j) <- t
                end
                else raise Unsupported
            | _ -> raise Unsupported)
        | Ast.Index _ ->
            (* array-element by-reference binding: not modeled *)
            raise Unsupported
        | e -> (
            match (ty, xstatic_num e) with
            | Ast.Tint, Some Ast.Tint ->
                let t = itemp () in
                ignore (emit_int ~dst:t e);
                creg_i.(j) <- t
            | Ast.Tint, Some Ast.Treal ->
                let r = emit_float e in
                let t = itemp () in
                emit B.op_ftoi;
                emit t;
                emit r;
                creg_i.(j) <- t
            | Ast.Treal, Some _ ->
                let t = ftemp () in
                ignore (emit_num ~dst:t e);
                creg_f.(j) <- t
            | _ -> raise Unsupported))
      args;
    (* count the invocation and check the call-depth guard *)
    emit B.op_ienter;
    emit ri;
    (* fresh locals per invocation, exactly as make_frame initializes
       them: scalars to zero, literal PARAMETERs to their value *)
    for s = cnp to cnslots - 1 do
      match Compile.static_scalar_ty clay s with
      | Some Ast.Tint ->
          let t = itemp () in
          creg_i.(s) <- t;
          let k =
            match clay.Env.kinds.(s) with
            | Sema.Const (Ast.Int k) -> k
            | _ -> 0
          in
          emit B.op_ldki;
          emit t;
          emit k
      | Some Ast.Treal ->
          let t = ftemp () in
          creg_f.(s) <- t;
          let r =
            match clay.Env.kinds.(s) with
            | Sema.Const (Ast.Real r) -> r
            | _ -> 0.0
          in
          emit B.op_ldkf;
          emit t;
          emit (fconst r)
      | _ -> () (* arrays/LOGICALs: any use below rejects the splice *)
    done;
    (* switch the expression context to the callee's virtual frame *)
    cx_ty :=
      (fun v ->
        let s = Env.slot clay v in
        if s < cnp then
          match clay.Env.param_tys.(s) with
          | Some ((Ast.Tint | Ast.Treal) as t) -> Some t
          | _ -> None
        else
          match Compile.static_scalar_ty clay s with
          | Some ((Ast.Tint | Ast.Treal) as t) -> Some t
          | _ -> None);
    cx_ireg := (fun v -> creg_i.(Env.slot clay v));
    cx_freg := (fun v -> creg_f.(Env.slot clay v));
    cx_slots := false;
    (* callee entry accounting, like the standalone proc prologue *)
    let centry = List.hd chain in
    emit B.op_acct;
    emit (rg.B.rg_node_base + centry);
    emit (ccost centry);
    List.iter
      (fun u ->
        let ir = (Cfg.info ccfg u).Ir.ir in
        (* node probes fire right after the node's accounting *)
        List.iter
          (function
            | Probe.Incr c ->
                emit B.op_probe;
                emit c
            | Probe.Bulk_add _ -> raise Unsupported)
          (cnode_probes u);
        (match ir with
        | Ir.Entry | Ir.Nop _ -> ()
        | Ir.Assign (Ast.Lvar v, e) -> (
            let s = Env.slot clay v in
            match (!cx_ty v, xstatic_num e) with
            | Some Ast.Tint, Some Ast.Tint ->
                ignore (emit_int ~dst:creg_i.(s) e)
            | Some Ast.Tint, Some Ast.Treal ->
                let r = emit_float e in
                emit B.op_ftoi;
                emit creg_i.(s);
                emit r
            | Some Ast.Treal, Some _ -> ignore (emit_num ~dst:creg_f.(s) e)
            | _ -> raise Unsupported)
        | Ir.Return -> emit B.op_iexit
        | _ -> raise Unsupported);
        match ir with
        | Ir.Return -> () (* falls through to the caller's edge sequence *)
        | _ -> (
            match Cfg.succ_edges ccfg u with
            | [ (e : Label.t S89_graph.Digraph.edge) ] -> (
                let d = e.dst in
                match cedge_probes u with
                | [] ->
                    emit B.op_edgea;
                    emit (rg.B.rg_edge_base + cedge_base.(u));
                    emit (rg.B.rg_node_base + d);
                    emit (ccost d);
                    emit (pos () + 1) (* next chain node follows *)
                | acts ->
                    List.iter
                      (function
                        | Probe.Incr _ -> ()
                        | Probe.Bulk_add _ -> raise Unsupported)
                      acts;
                    let gid = add_group acts in
                    emit B.op_edgepa;
                    emit (rg.B.rg_edge_base + cedge_base.(u));
                    emit gid;
                    emit (rg.B.rg_node_base + d);
                    emit (ccost d);
                    emit (pos () + 1))
            | _ -> raise Unsupported))
      chain;
    reset_cx ()
  in

  (* Node accounting is fused into the incoming edge (EDGEA/EDGEPA), so
     [node_start] points at a node's probes+body and only the procedure
     entry — which no edge reaches — needs a standalone ACCT prologue. *)
  let entry = Cfg.entry cfg in
  let entry_pc = pos () in
  emit B.op_acct;
  emit entry;
  emit node_cost.(entry);
  emit B.op_jmp;
  emit_node_ref entry;

  (* ---- per-node emission ----

     [order] is the emission (memory-layout) order; any permutation is
     legal because every control transfer goes through an explicit
     destination operand, so only instruction-cache locality changes.
     A malformed plan entry silently degrades to the natural order. *)
  let order =
    match Hashtbl.find_opt plan.layout p.Program.name with
    | Some o when Array.length o = n ->
        let seen = Array.make n false in
        let ok = ref true in
        Array.iter
          (fun i ->
            if i < 0 || i >= n || seen.(i) then ok := false
            else seen.(i) <- true)
          o;
        if !ok then o else Array.init n (fun i -> i)
    | _ -> Array.init n (fun i -> i)
  in
  for oi = 0 to n - 1 do
    let i = order.(oi) in
    node_start.(i) <- pos ();
    reset_temps ();
    let ir = (Cfg.info cfg i).Ir.ir in
    let succ = succ_labels.(i) in
    let nsucc = Array.length succ in
    let node_probes =
      match pi with Some pi -> pi.Probe.on_node.(i) | None -> []
    in
    let edge_probe_assoc =
      match pi with Some pi -> pi.Probe.on_edge.(i) | None -> []
    in
    let edge_probes k =
      match
        List.find_opt
          (fun (lbl, _) -> Label.equal lbl succ.(k))
          edge_probe_assoc
      with
      | Some (_, acts) -> acts
      | None -> []
    in
    (* node probes run right after the node's (edge-fused) accounting *)
    List.iter
      (function
        | Probe.Incr c ->
            emit B.op_probe;
            emit c
        | Probe.Bulk_add (c, e) ->
            emit B.op_probe_bulk;
            emit (add_bulk c e))
      node_probes;

    (* traversal of successor [k]: bump its flat counter, fire its edge
       probes, account the destination node, jump to its probes+body *)
    let emit_edge_seq k =
      let pc = pos () in
      let d = succ_dst.(i).(k) in
      (match edge_probes k with
      | [] ->
          emit B.op_edgea;
          emit (edge_base.(i) + k);
          emit d;
          emit node_cost.(d);
          emit_node_ref d
      | acts ->
          let gid = add_group acts in
          emit B.op_edgepa;
          emit (edge_base.(i) + k);
          emit gid;
          emit d;
          emit node_cost.(d);
          emit_node_ref d);
      pc
    in

    let u = find_idx succ Label.U in
    let t_idx = find_idx succ Label.T in
    let f_idx = find_idx succ Label.F in
    let require b = if not b then raise Unsupported in

    let emit_native () =
      match ir with
      | Ir.Entry | Ir.Nop _ ->
          require (u >= 0);
          ignore (emit_edge_seq u)
      | Ir.Assign (Ast.Lvar v, e) ->
          require (u >= 0);
          let s = Env.slot lay v in
          (match (Compile.static_scalar_ty lay s, xstatic_num e) with
          | Some Ast.Tint, Some Ast.Tint ->
              if slot_ireg.(s) >= 0 then ignore (emit_int ~dst:slot_ireg.(s) e)
              else begin
                let r = emit_int e in
                emit B.op_stci;
                emit s;
                emit r
              end
          | Some Ast.Tint, Some Ast.Treal ->
              (* coerce Tint (Real r) = Int (int_of_float r) *)
              let f = emit_float e in
              if slot_ireg.(s) >= 0 then begin
                emit B.op_ftoi;
                emit slot_ireg.(s);
                emit f
              end
              else begin
                let t = itemp () in
                emit B.op_ftoi;
                emit t;
                emit f;
                emit B.op_stci;
                emit s;
                emit t
              end
          | Some Ast.Treal, Some _ ->
              if slot_freg.(s) >= 0 then ignore (emit_num ~dst:slot_freg.(s) e)
              else begin
                let r = emit_num e in
                emit B.op_stcf;
                emit s;
                emit r
              end
          | _ -> raise Unsupported);
          ignore (emit_edge_seq u)
      | Ir.Assign (Ast.Larr (name, idx), e) ->
          require (u >= 0);
          let s = Env.slot lay name in
          (* indices (and their bounds checks) evaluate before the RHS,
             exactly like compile_element's wrapping of the store *)
          let off =
            match (Compile.static_dims lay s, idx) with
            | Some [ d0 ], [ e0 ] ->
                let e0, k0 = index_parts e0 in
                let r0 = emit_int e0 in
                let t = itemp () in
                emit B.op_aoff1;
                emit t;
                emit s;
                emit d0;
                emit r0;
                emit k0;
                t
            | Some [ d0; d1 ], [ e0; e1 ] ->
                let e0, k0 = index_parts e0 in
                let e1, k1 = index_parts e1 in
                let r0 = emit_int e0 in
                let r1 = emit_int e1 in
                let t = itemp () in
                emit B.op_aoff2;
                emit t;
                emit s;
                emit d0;
                emit d1;
                emit r0;
                emit r1;
                emit k0;
                emit k1;
                t
            | _ -> raise Unsupported
          in
          (match (Compile.static_elt_ty lay s, xstatic_num e) with
          | Some Ast.Tint, Some Ast.Tint ->
              let r = emit_int e in
              emit B.op_stai;
              emit s;
              emit off;
              emit r
          | Some Ast.Tint, Some Ast.Treal ->
              let f = emit_float e in
              let t = itemp () in
              emit B.op_ftoi;
              emit t;
              emit f;
              emit B.op_stai;
              emit s;
              emit off;
              emit t
          | Some Ast.Treal, Some _ ->
              let r = emit_num e in
              emit B.op_staf;
              emit s;
              emit off;
              emit r
          | _ -> raise Unsupported);
          ignore (emit_edge_seq u)
      | Ir.Branch e ->
          require (t_idx >= 0 && f_idx >= 0);
          let pt, pf = emit_cond_jump ~neg:false e in
          let pcT = emit_edge_seq t_idx in
          let pcF = emit_edge_seq f_idx in
          patch pt pcT;
          patch pf pcF
      | Ir.Do_test d ->
          require (t_idx >= 0 && f_idx >= 0);
          let s = Env.slot lay d.Ir.trip_var in
          let pt, pf =
            if slot_freg.(s) >= 0 then begin
              (* to_int of a REAL trip counter is int_of_float *)
              emit B.op_jtrip;
              emit slot_freg.(s);
              let pt = pos () in
              emit 0;
              let pf = pos () in
              emit 0;
              (pt, pf)
            end
            else begin
              let r =
                if slot_ireg.(s) >= 0 then slot_ireg.(s)
                else begin
                  let t = itemp () in
                  emit B.op_ldci;
                  emit t;
                  emit s;
                  t
                end
              in
              emit B.op_jgt_ik;
              emit r;
              emit 0;
              let pt = pos () in
              emit 0;
              let pf = pos () in
              emit 0;
              (pt, pf)
            end
          in
          let pcT = emit_edge_seq t_idx in
          let pcF = emit_edge_seq f_idx in
          patch pt pcT;
          patch pf pcF
      | Ir.Select (e, narms) ->
          let case_tbl =
            Array.init narms (fun k -> find_idx succ (Label.Case (k + 1)))
          in
          require (f_idx >= 0 && Array.for_all (fun k -> k >= 0) case_tbl);
          let r = emit_int e in
          emit B.op_select;
          emit r;
          emit narms;
          let tbl_pos = pos () in
          for _ = 0 to narms do
            emit 0
          done;
          let seq_pc = Hashtbl.create 8 in
          let get_seq k =
            match Hashtbl.find_opt seq_pc k with
            | Some pc -> pc
            | None ->
                let pc = emit_edge_seq k in
                Hashtbl.add seq_pc k pc;
                pc
          in
          Array.iteri (fun j k -> patch (tbl_pos + j) (get_seq k)) case_tbl;
          patch (tbl_pos + narms) (get_seq f_idx)
      | Ir.Return -> emit B.op_ret
      | Ir.Stop -> emit B.op_stop
      | Ir.Call (f, args) when List.mem i inline_sites ->
          require (u >= 0);
          emit_inline f args;
          ignore (emit_edge_seq u)
      | Ir.Call _ | Ir.Print _ -> raise Unsupported
    in

    let emit_fallback () =
      let fb =
        {
          B.fb_step =
            Compile.compile_node rt prog lay ~node_id:i ~succ ir;
          fb_sync = sync_of_names (node_names ir);
          fb_edges = Array.make (max nsucc 1) (-1);
        }
      in
      let fi = !n_fallbacks in
      incr n_fallbacks;
      fallbacks := fb :: !fallbacks;
      emit B.op_fallback;
      emit fi;
      for k = 0 to nsucc - 1 do
        fb.B.fb_edges.(k) <- emit_edge_seq k
      done
    in

    let mark = pos () and saved_fixups = !fixups in
    let saved_exec = !exec_top and saved_edge = !edge_top in
    let saved_regions = !regions and saved_nregions = !n_regions in
    try emit_native ()
    with Unsupported ->
      (* roll back everything a partial lowering (or aborted inline
         splice) may have touched, then take the exact fallback path *)
      len := mark;
      fixups := saved_fixups;
      exec_top := saved_exec;
      edge_top := saved_edge;
      regions := saved_regions;
      n_regions := saved_nregions;
      reset_cx ();
      reset_temps ();
      emit_fallback ()
  done;

  List.iter (fun (p, nid) -> patch p node_start.(nid)) !fixups;

  {
    B.bp_proc = p;
    layout = lay;
    code = Array.sub !buf 0 !len;
    fpool = Array.of_list (List.rev !fpool);
    entry_pc;
    n_iregs = !max_ti;
    n_fregs = !max_tf;
    all_promoted;
    names = lay.Env.names;
    rng = rt.Compile.rng;
    fallbacks = Array.of_list (List.rev !fallbacks);
    bulks = Array.of_list (List.rev !bulks);
    groups = Array.of_list (List.rev !groups);
    regions = Array.of_list (List.rev !regions);
    execs = Array.make (max !exec_top 1) 0;
    samples = Array.make (max !exec_top 1) 0;
    edge_counts = Array.make (max !edge_top 1) 0;
    edge_base;
    succ_labels;
    invocations = 0;
    fb_execs = 0;
  }
