(** Implementations of the MF77 intrinsics (ABS, SQRT, MOD, MIN/MAX
    families, conversions, SIGN, and the profiling-workload PRNG hooks
    RAND/IRAND). *)

module Prng = S89_util.Prng

(** One intrinsic implementation. *)
type impl = Prng.t -> Value.t list -> Value.t

(** Resolve a name to its implementation once (compile time); unknown
    names yield an implementation that raises {!Value.Runtime_error} when
    invoked — matching the dynamic behavior of {!apply}. *)
val resolve : string -> impl

(** [apply rng name args].  Raises {!Value.Runtime_error} on bad
    arguments or domain errors (e.g. [SQRT] of a negative). *)
val apply : Prng.t -> string -> Value.t list -> Value.t
