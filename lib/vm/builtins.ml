(* Implementations of the MF77 intrinsics (names/arities are declared in
   s89_frontend.Intrinsics; the VM dispatches here).

   Each intrinsic is its own closure, registered in a table so the
   compiling backend can resolve a name to an implementation once at
   compile time; [apply] keeps the dynamic name-based entry point for the
   tree-walking backend. *)

module Prng = S89_util.Prng
open Value

type impl = Prng.t -> t list -> t

let err name = Value.err "intrinsic %s: bad arguments" name

let fold1 name f : impl = fun _ vs -> match vs with [ v ] -> f v | _ -> err name

let minmax name pick : impl =
 fun _ vs ->
  match vs with
  | [] | [ _ ] -> err name
  | v :: rest ->
      List.fold_left
        (fun acc v -> if pick (compare_num v acc) then v else acc)
        v rest

let minmax_int name pick : impl =
  let mm = minmax name pick in
  fun rng vs -> Int (to_int (mm rng vs))

let promote_real = function Int i -> Real (float_of_int i) | v -> v

let minmax_real name pick : impl =
  let mm = minmax name pick in
  fun rng vs -> promote_real (mm rng vs)

let real_fun name f : impl =
  fold1 name (fun v -> Real (f (to_float v)))

let table : (string * impl) list =
  [
    ( "ABS",
      fold1 "ABS" (function
        | Int i -> Int (abs i)
        | Real r -> Real (Float.abs r)
        | _ -> err "ABS") );
    ("IABS", fold1 "IABS" (fun v -> Int (abs (to_int v))));
    ( "SQRT",
      fold1 "SQRT" (fun v ->
          let x = to_float v in
          if x < 0.0 then Value.err "SQRT of negative value %g" x else Real (sqrt x)) );
    ("EXP", real_fun "EXP" exp);
    ( "LOG",
      fold1 "LOG" (fun v ->
          let x = to_float v in
          if x <= 0.0 then Value.err "LOG of non-positive value %g" x else Real (log x)) );
    ( "ALOG",
      fold1 "ALOG" (fun v ->
          let x = to_float v in
          if x <= 0.0 then Value.err "LOG of non-positive value %g" x else Real (log x)) );
    ("SIN", real_fun "SIN" sin);
    ("COS", real_fun "COS" cos);
    ("TAN", real_fun "TAN" tan);
    ("ATAN", real_fun "ATAN" atan);
    ( "MOD",
      fun _ vs ->
        match vs with
        | [ Int a; Int b ] ->
            if b = 0 then Value.err "MOD by zero" else Int (a mod b)
        | [ _; _ ] -> (
            match List.map to_float vs with
            | [ a; b ] when b <> 0.0 -> Real (Float.rem a b)
            | _ -> Value.err "MOD by zero")
        | _ -> err "MOD" );
    ( "AMOD",
      fun _ vs ->
        match vs with
        | [ a; b ] ->
            let b = to_float b in
            if b = 0.0 then Value.err "AMOD by zero"
            else Real (Float.rem (to_float a) b)
        | _ -> err "AMOD" );
    ("MIN", minmax "MIN" (fun c -> c < 0));
    ("MAX", minmax "MAX" (fun c -> c > 0));
    ("MIN0", minmax_int "MIN0" (fun c -> c < 0));
    ("MAX0", minmax_int "MAX0" (fun c -> c > 0));
    ("AMIN1", minmax_real "AMIN1" (fun c -> c < 0));
    ("AMAX1", minmax_real "AMAX1" (fun c -> c > 0));
    ("INT", fold1 "INT" (fun v -> Int (to_int v)));
    ("IFIX", fold1 "IFIX" (fun v -> Int (to_int v)));
    ("REAL", fold1 "REAL" (fun v -> Real (to_float v)));
    ("FLOAT", fold1 "FLOAT" (fun v -> Real (to_float v)));
    ( "SIGN",
      fun _ vs ->
        match vs with
        | [ a; b ] -> (
            (* |a| with the sign of b *)
            match (a, b) with
            | Int x, Int y -> Int (if y >= 0 then abs x else -abs x)
            | _ ->
                let x = Float.abs (to_float a) in
                Real (if to_float b >= 0.0 then x else -.x))
        | _ -> err "SIGN" );
    ( "ISIGN",
      fun _ vs ->
        match vs with
        | [ a; b ] ->
            let x = abs (to_int a) in
            Int (if to_int b >= 0 then x else -x)
        | _ -> err "ISIGN" );
    ( "RAND",
      fun rng vs ->
        match vs with [] -> Real (Prng.float rng) | _ -> err "RAND" );
    ( "IRAND",
      fun rng vs ->
        match vs with
        | [ v ] ->
            let n = to_int v in
            if n <= 0 then Value.err "IRAND bound must be positive"
            else Int (1 + Prng.int rng n)
        | _ -> err "IRAND" );
  ]

let by_name : (string, impl) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (name, f) -> Hashtbl.replace tbl name f) table;
  tbl

let resolve name : impl =
  match Hashtbl.find_opt by_name name with
  | Some f -> f
  | None -> fun _ _ -> err name

let apply (rng : Prng.t) name (vs : t list) : t = (resolve name) rng vs
