(* The MF77 virtual machine: a cycle-accounting interpreter over the
   statement-level CFGs produced by lowering.

   This is the stand-in for the paper's IBM 3090 testbed.  It provides:
   - execution of a whole Program.t with Fortran calling conventions
     (scalars and array elements by reference);
   - cycle accounting driven by a Cost_model (the paper's COST(u) values
     are charged per node execution, so the estimator's prediction is
     exactly comparable to the measured cycle count);
   - "oracle" counts: every node execution and edge traversal is counted
     for free — these are ground truth for the profiling tests;
   - profiling instrumentation: probe actions fire on node/edge events and
     charge [c_counter] cycles each, which is what Table 1 measures;
   - a simulated PC-sampling profiler (a sample every N cycles), used to
     reproduce §3's argument that sampling is too coarse for
     statement-level frequencies.

   Two execution backends share all of the bookkeeping:
   - [Compiled] (default): expressions and nodes are compiled once into
     OCaml closures over slot-resolved frames (see Env and Compile) —
     no AST walking, no string hashing, O(1) successor dispatch;
   - [Tree]: the original tree-walking evaluator over per-frame hash
     tables, kept as the semantic reference for differential testing. *)

module Ast = S89_frontend.Ast
module Ir = S89_frontend.Ir
module Intrinsics = S89_frontend.Intrinsics
module Sema = S89_frontend.Sema
module Program = S89_frontend.Program
module Prng = S89_util.Prng
open S89_cfg

(* The guard exceptions are defined in Bytecode — the lowest layer that
   raises them — and re-exported here under their historical names. *)
exception Out_of_fuel = Bytecode.Out_of_fuel
exception Out_of_cycles = Bytecode.Out_of_cycles
exception Call_depth_exceeded = Bytecode.Call_depth_exceeded
exception Stopped = Bytecode.Stopped (* internal: STOP statement unwinding *)

type binding = Env.binding =
  | Cell of { mutable v : Value.t; ty : Ast.typ }
  | Arr of Env.array_obj
  | Elem of Env.array_obj * int
  | Poison of string

type frame = { fproc : Program.proc; vars : (string, binding) Hashtbl.t }

(* ---- compiled procedures: per-node cost, dispatch tables, probes ---- *)

(* O(1) successor lookup by edge label (first matching successor wins,
   like the linear scan it replaces); -1 = no such successor *)
type dispatch = { d_u : int; d_t : int; d_f : int; d_cases : int array }

let succ_index (d : dispatch) (l : Label.t) =
  match l with
  | Label.U -> d.d_u
  | Label.T -> d.d_t
  | Label.F -> d.d_f
  | Label.Case c -> if c >= 1 && c <= Array.length d.d_cases then d.d_cases.(c - 1) else -1
  | Label.Pseudo _ -> -1

type cnode = {
  ir : Ir.node;
  cost : int;
  succ_labels : Label.t array;
  succ_dst : int array; (* destination pc, parallel to succ_labels *)
  dispatch : dispatch;
  edge_counts : int array; (* oracle: traversals, parallel to succ_labels *)
  mutable execs : int; (* oracle: node executions *)
  node_probes : Probe.action list;
  edge_probes : Probe.action list array; (* parallel to succ_labels *)
  cnode_probes : Compile.caction array; (* compiled backend's node probes *)
  cedge_probes : Compile.caction array array; (* parallel to succ_labels *)
  step : Env.slots -> int; (* compiled step: successor index or sentinel *)
  mutable samples : int; (* PC-sampling hits *)
}

type cproc = {
  cp_proc : Program.proc;
  layout : Env.layout;
  code : cnode array;
  centry : int;
  mutable invocations : int;
}

type backend = Tree | Compiled | Bytecode

type config = {
  cost_model : Cost_model.t;
  instr : Probe.t;
  seed : int;
  max_steps : int;
  max_cycles : int; (* cycle fuel; max_int = unlimited *)
  max_call_depth : int; (* guards runaway recursion from blowing the stack *)
  sample_interval : int option;
  backend : backend;
  emit_plan : Emit.plan option;
      (* bytecode emission plan (PGO); None = Emit.default_plan *)
}

let default_config =
  {
    cost_model = Cost_model.optimized;
    instr = Probe.empty;
    seed = 42;
    max_steps = 200_000_000;
    max_cycles = max_int;
    max_call_depth = 10_000;
    sample_interval = None;
    backend = Compiled;
    emit_plan = None;
  }

type t = {
  config : config;
  prog : Program.t;
  cprocs : (string, cproc) Hashtbl.t; (* Tree/Compiled backends *)
  bprocs : (string, Bytecode.proc) Hashtbl.t; (* Bytecode backend *)
  acct : Bytecode.acct;
      (* cycles, steps, sampling clock and instrumentation counters,
         shared by all three backends *)
  rng : Prng.t;
  out : Buffer.t;
  rt : Compile.rt; (* hooks captured by the compiled closures *)
}

(* the call depth lives in the shared acct ([acct.depth]) so the IENTER/
   IEXIT opcodes of inlined bytecode regions and the closure backends
   guard the same counter *)

(* checked counter arithmetic: saturate at max_int with a diagnostic,
   never wrap around (the reconstruction laws assume exact sums) *)
let counter_incr st c = Bytecode.counter_incr st.acct c
let counter_add st c v = Bytecode.counter_add st.acct c v

let compile_proc config rt (prog : Program.t) (p : Program.proc) : cproc =
  let cfg = p.Program.cfg in
  let n = Cfg.num_nodes cfg in
  let pi = Probe.find_proc config.instr p.Program.name in
  let lay = Env.layout p in
  let code =
    Array.init n (fun i ->
        let info = Cfg.info cfg i in
        let edges = Cfg.succ_edges cfg i in
        let succ_labels =
          Array.of_list
            (List.map (fun (e : Label.t S89_graph.Digraph.edge) -> e.label) edges)
        in
        let succ_dst =
          Array.of_list
            (List.map (fun (e : Label.t S89_graph.Digraph.edge) -> e.dst) edges)
        in
        let d_u = ref (-1) and d_t = ref (-1) and d_f = ref (-1) in
        let max_case =
          Array.fold_left
            (fun m l -> match l with Label.Case c -> max m c | _ -> m)
            0 succ_labels
        in
        let d_cases = Array.make max_case (-1) in
        Array.iteri
          (fun k l ->
            match l with
            | Label.U -> if !d_u < 0 then d_u := k
            | Label.T -> if !d_t < 0 then d_t := k
            | Label.F -> if !d_f < 0 then d_f := k
            | Label.Case c -> if d_cases.(c - 1) < 0 then d_cases.(c - 1) <- k
            | Label.Pseudo _ -> ())
          succ_labels;
        let node_probes =
          match pi with Some pi -> pi.Probe.on_node.(i) | None -> []
        in
        let edge_probe_assoc =
          match pi with Some pi -> pi.Probe.on_edge.(i) | None -> []
        in
        let edge_probes =
          Array.map
            (fun l ->
              match
                List.find_opt (fun (lbl, _) -> Label.equal lbl l) edge_probe_assoc
              with
              | Some (_, acts) -> acts
              | None -> [])
            succ_labels
        in
        let caction = Compile.compile_action rt prog lay config.cost_model in
        {
          ir = info.Ir.ir;
          cost = Cost_model.node_cost config.cost_model info.Ir.ir;
          succ_labels;
          succ_dst;
          dispatch = { d_u = !d_u; d_t = !d_t; d_f = !d_f; d_cases };
          edge_counts = Array.make (Array.length succ_labels) 0;
          execs = 0;
          node_probes;
          edge_probes;
          cnode_probes = Array.of_list (List.map caction node_probes);
          cedge_probes = Array.map (fun acts -> Array.of_list (List.map caction acts)) edge_probes;
          step = Compile.compile_node rt prog lay ~node_id:i ~succ:succ_labels info.Ir.ir;
          samples = 0;
        })
  in
  { cp_proc = p; layout = lay; code; centry = Cfg.entry cfg; invocations = 0 }

(* ---- frames and bindings (tree backend) ---- *)

let binding_of_kind = Env.binding_of_kind

let lookup frame name =
  match Hashtbl.find_opt frame.vars name with
  | Some b -> b
  | None ->
      let env = frame.fproc.Program.env in
      let kind =
        match Hashtbl.find_opt env.Sema.vars name with
        | Some k -> k
        | None -> Sema.Scalar (Ast.implicit_type name)
      in
      let b = binding_of_kind name kind in
      Hashtbl.replace frame.vars name b;
      b

let read_scalar frame name =
  match lookup frame name with
  | Cell c -> c.v
  | Elem (a, off) -> Env.get a off
  | Arr _ -> Value.err "array %s used as a scalar" name
  | Poison m -> Value.err "%s" m

let write_scalar frame name v =
  match lookup frame name with
  | Cell c -> c.v <- Value.coerce c.ty v
  | Elem (a, off) -> Env.set a off v
  | Arr _ -> Value.err "assignment to whole array %s" name
  | Poison m -> Value.err "%s" m

let offset = Env.offset

let get_array frame name =
  match lookup frame name with
  | Arr a -> a
  | Cell _ | Elem _ -> Value.err "%s is not an array" name
  | Poison m -> Value.err "%s" m

(* ---- shared bookkeeping ---- *)

let charge st c =
  let a = st.acct in
  a.Bytecode.cycles <- a.Bytecode.cycles + c

let find_cproc st name =
  match Hashtbl.find_opt st.cprocs name with
  | Some cp -> cp
  | None -> Value.err "uncompiled procedure %s" name

let enter_call st (cp : cproc) =
  cp.invocations <- cp.invocations + 1;
  let a = st.acct in
  a.Bytecode.depth <- a.Bytecode.depth + 1;
  if a.Bytecode.depth > a.Bytecode.max_depth then
    raise (Call_depth_exceeded a.Bytecode.depth)

(* sampling slow path: attribute hits to the executing node (taken only
   when the cycle counter crossed the sampling boundary) *)
let take_samples st (n : cnode) =
  let a = st.acct in
  while a.Bytecode.cycles >= a.Bytecode.next_sample do
    n.samples <- n.samples + 1;
    a.Bytecode.next_sample <- a.Bytecode.next_sample + a.Bytecode.sample_interval
  done

(* charge node cost, count the execution, attribute PC samples *)
let account st (n : cnode) =
  let a = st.acct in
  a.Bytecode.steps <- a.Bytecode.steps + 1;
  charge st n.cost;
  (* charge before checking, and fuel before cycles, so every backend
     trips the same guard at the same (steps, cycles) point *)
  if a.Bytecode.steps > st.config.max_steps then raise Out_of_fuel;
  if a.Bytecode.cycles > st.config.max_cycles then raise Out_of_cycles;
  n.execs <- n.execs + 1;
  take_samples st n

(* ---- tree-walking backend (the semantic reference) ---- *)

let rec eval st frame (e : Ast.expr) : Value.t =
  match e with
  | Ast.Int i -> Value.Int i
  | Real r -> Value.Real r
  | Bool b -> Value.Bool b
  | Var v -> read_scalar frame v
  | Index (name, idx) ->
      let a = get_array frame name in
      let idx = List.map (fun i -> Value.to_int (eval st frame i)) idx in
      Env.get a (offset name a idx)
  | Call (f, args) -> (
      match Hashtbl.find_opt st.prog.Program.by_name f with
      | Some callee -> (
          let bindings = List.map (arg_binding st frame) args in
          match call_proc st callee bindings with
          | Some v -> v
          | None -> Value.err "subroutine %s used as a function" f)
      | None ->
          let vs = List.map (eval st frame) args in
          Builtins.apply st.rng f vs)
  | Unop (Ast.Neg, e) -> Value.neg (eval st frame e)
  | Unop (Ast.Not, e) -> Value.Bool (not (Value.to_bool (eval st frame e)))
  | Binop (op, a, b) -> (
      let va = eval st frame a in
      let vb = eval st frame b in
      match op with
      | Ast.Add -> Value.add va vb
      | Sub -> Value.sub va vb
      | Mul -> Value.mul va vb
      | Div -> Value.div va vb
      | Pow -> Value.pow va vb
      | Lt | Le | Gt | Ge | Eq | Ne -> Value.rel op va vb
      | And | Or -> Value.logic op va vb)

(* argument passing: variables and array elements by reference, arrays by
   reference, general expressions by copy-in *)
and arg_binding st frame (e : Ast.expr) : binding =
  match e with
  | Ast.Var v -> (
      match lookup frame v with
      | Poison m -> Value.err "%s" m
      | b -> b)
  | Ast.Index (name, idx) ->
      let a = get_array frame name in
      let idx = List.map (fun i -> Value.to_int (eval st frame i)) idx in
      Elem (a, offset name a idx)
  | _ ->
      let v = eval st frame e in
      Cell
        {
          v;
          ty = (match v with Value.Int _ -> Ast.Tint | Value.Real _ -> Ast.Treal | _ -> Ast.Tlogical);
        }

and call_proc st (callee : Program.proc) (args : binding list) : Value.t option =
  let cp = find_cproc st callee.Program.name in
  enter_call st cp;
  let frame = { fproc = callee; vars = Hashtbl.create 16 } in
  (try
     List.iter2
       (fun p b ->
         (* coerce copy-in scalars to the declared parameter type *)
         let b =
           match (b, Hashtbl.find_opt callee.Program.env.Sema.vars p) with
           | Cell c, Some (Sema.Scalar ty) when c.ty <> ty ->
               Cell { v = Value.coerce ty c.v; ty }
           | _ -> b
         in
         Hashtbl.replace frame.vars p b)
       callee.Program.params args
   with Invalid_argument _ ->
     Value.err "arity mismatch calling %s" callee.Program.name);
  (try run_frame st cp frame
   with e ->
     st.acct.Bytecode.depth <- st.acct.Bytecode.depth - 1;
     raise e);
  st.acct.Bytecode.depth <- st.acct.Bytecode.depth - 1;
  match callee.Program.env.Sema.result_var with
  | Some rv -> Some (read_scalar frame rv)
  | None -> None

and run_frame st (cp : cproc) frame : unit =
  let pc = ref cp.centry in
  let running = ref true in
  while !running do
    let n = cp.code.(!pc) in
    account st n;
    fire_actions st frame n.node_probes;
    let out_label =
      match n.ir with
      | Ir.Entry | Ir.Nop _ -> Some Label.U
      | Ir.Assign (Ast.Lvar v, e) ->
          write_scalar frame v (eval st frame e);
          Some Label.U
      | Ir.Assign (Ast.Larr (name, idx), e) ->
          let a = get_array frame name in
          let idx = List.map (fun i -> Value.to_int (eval st frame i)) idx in
          let off = offset name a idx in
          Env.set a off (eval st frame e);
          Some Label.U
      | Ir.Branch e ->
          if Value.to_bool (eval st frame e) then Some Label.T else Some Label.F
      | Ir.Do_test d ->
          if Value.to_int (read_scalar frame d.Ir.trip_var) > 0 then Some Label.T
          else Some Label.F
      | Ir.Select (e, narms) ->
          let i = Value.to_int (eval st frame e) in
          if i >= 1 && i <= narms then Some (Label.Case i) else Some Label.F
      | Ir.Call (name, args) -> (
          match Hashtbl.find_opt st.prog.Program.by_name name with
          | Some callee ->
              let bindings = List.map (arg_binding st frame) args in
              ignore (call_proc st callee bindings);
              Some Label.U
          | None -> Value.err "CALL of unknown subroutine %s" name)
      | Ir.Print es ->
          List.iter
            (fun e ->
              Buffer.add_string st.out (Fmt.str "%a " Value.pp (eval st frame e)))
            es;
          Buffer.add_char st.out '\n';
          Some Label.U
      | Ir.Return -> None
      | Ir.Stop -> raise Stopped
    in
    match out_label with
    | None -> running := false
    | Some l -> (
        let k = succ_index n.dispatch l in
        if k < 0 then
          Value.err "no %s successor at node %d of %s" (Label.to_string l) !pc
            cp.cp_proc.Program.name;
        n.edge_counts.(k) <- n.edge_counts.(k) + 1;
        (match n.edge_probes.(k) with
        | [] -> ()
        | acts -> fire_actions st frame acts);
        pc := n.succ_dst.(k))
  done

and fire_actions st frame (acts : Probe.action list) =
  List.iter
    (fun (a : Probe.action) ->
      match a with
      | Probe.Incr c ->
          charge st st.config.cost_model.Cost_model.c_counter;
          counter_incr st c
      | Probe.Bulk_add (c, e) ->
          charge st
            (st.config.cost_model.Cost_model.c_counter
            + Cost_model.expr_cost st.config.cost_model e);
          counter_add st c (Value.to_int (eval st frame e)))
    acts

(* ---- compiled backend ---- *)

let fire_cactions st venv (acts : Compile.caction array) =
  Array.iter
    (fun (a : Compile.caction) ->
      match a with
      | Compile.CIncr c ->
          charge st st.config.cost_model.Cost_model.c_counter;
          counter_incr st c
      | Compile.CBulk (c, xcost, f) ->
          charge st (st.config.cost_model.Cost_model.c_counter + xcost);
          counter_add st c (Value.to_int (f venv)))
    acts

let rec call_proc_compiled st (callee : Program.proc) (args : binding list) :
    Value.t option =
  let cp = find_cproc st callee.Program.name in
  enter_call st cp;
  let lay = cp.layout in
  let venv = Env.make_frame lay in
  (try
     let n_params = lay.Env.n_params in
     let rec bind i = function
       | [] -> if i <> n_params then raise (Invalid_argument "arity")
       | b :: rest ->
           if i >= n_params then raise (Invalid_argument "arity");
           let b =
             match (b, lay.Env.param_tys.(i)) with
             | Cell c, Some ty when c.ty <> ty -> Cell { v = Value.coerce ty c.v; ty }
             | _ -> b
           in
           venv.(i) <- b;
           bind (i + 1) rest
     in
     bind 0 args
   with Invalid_argument _ ->
     Value.err "arity mismatch calling %s" callee.Program.name);
  (try run_frame_compiled st cp venv
   with e ->
     st.acct.Bytecode.depth <- st.acct.Bytecode.depth - 1;
     raise e);
  st.acct.Bytecode.depth <- st.acct.Bytecode.depth - 1;
  match lay.Env.result_slot with
  | Some s -> (
      match venv.(s) with
      | Cell c -> Some c.v
      | Elem (a, off) -> Some (Env.get a off)
      | Arr _ -> Value.err "array %s used as a scalar" lay.Env.names.(s)
      | Poison m -> Value.err "%s" m)
  | None -> None

and run_frame_compiled st (cp : cproc) (venv : Env.slots) : unit =
  let code = cp.code in
  let a = st.acct in
  let max_steps = st.config.max_steps in
  let max_cycles = st.config.max_cycles in
  let pc = ref cp.centry in
  let running = ref true in
  while !running do
    let n = code.(!pc) in
    (* [account], open-coded: this is the per-node hot path.  Both budget
       checks share one branch: the remaining-budget differences are both
       non-negative iff neither limit is exceeded, so [lor]-ing them and
       testing the sign bit keeps the loop at a single guard branch *)
    let steps = a.Bytecode.steps + 1 in
    a.Bytecode.steps <- steps;
    let cycles = a.Bytecode.cycles + n.cost in
    a.Bytecode.cycles <- cycles;
    if (max_steps - steps) lor (max_cycles - cycles) < 0 then
      if steps > max_steps then raise Out_of_fuel else raise Out_of_cycles;
    n.execs <- n.execs + 1;
    if cycles >= a.Bytecode.next_sample then take_samples st n;
    if Array.length n.cnode_probes > 0 then fire_cactions st venv n.cnode_probes;
    let k = n.step venv in
    if k >= 0 then begin
      n.edge_counts.(k) <- n.edge_counts.(k) + 1;
      (match n.cedge_probes.(k) with
      | [||] -> ()
      | acts -> fire_cactions st venv acts);
      pc := n.succ_dst.(k)
    end
    else if k = Compile.ret_code then running := false
    else raise Stopped
  done

(* ---- bytecode backend ---- *)

let find_bproc st name =
  match Hashtbl.find_opt st.bprocs name with
  | Some bp -> bp
  | None -> Value.err "uncompiled procedure %s" name

(* mirrors [call_proc_compiled]: same invocation counting, depth guard,
   parameter binding and result read; only the frame execution differs *)
let call_proc_bytecode st (callee : Program.proc) (args : binding list) :
    Value.t option =
  let bp = find_bproc st callee.Program.name in
  bp.Bytecode.invocations <- bp.Bytecode.invocations + 1;
  let a = st.acct in
  a.Bytecode.depth <- a.Bytecode.depth + 1;
  if a.Bytecode.depth > a.Bytecode.max_depth then
    raise (Call_depth_exceeded a.Bytecode.depth);
  let lay = bp.Bytecode.layout in
  let venv = Env.make_frame lay in
  (try
     let n_params = lay.Env.n_params in
     let rec bind i = function
       | [] -> if i <> n_params then raise (Invalid_argument "arity")
       | b :: rest ->
           if i >= n_params then raise (Invalid_argument "arity");
           let b =
             match (b, lay.Env.param_tys.(i)) with
             | Cell c, Some ty when c.ty <> ty -> Cell { v = Value.coerce ty c.v; ty }
             | _ -> b
           in
           venv.(i) <- b;
           bind (i + 1) rest
     in
     bind 0 args
   with Invalid_argument _ ->
     Value.err "arity mismatch calling %s" callee.Program.name);
  (try Bytecode.exec st.acct bp venv
   with e ->
     st.acct.Bytecode.depth <- st.acct.Bytecode.depth - 1;
     raise e);
  st.acct.Bytecode.depth <- st.acct.Bytecode.depth - 1;
  match lay.Env.result_slot with
  | Some s -> (
      match venv.(s) with
      | Cell c -> Some c.v
      | Elem (a, off) -> Some (Env.get a off)
      | Arr _ -> Value.err "array %s used as a scalar" lay.Env.names.(s)
      | Poison m -> Value.err "%s" m)
  | None -> None

(* ---- construction ---- *)

let create ?(config = default_config) (prog : Program.t) : t =
  let rng = Prng.create ~seed:config.seed in
  let out = Buffer.create 256 in
  let rt = Compile.make_rt ~rng ~out in
  let cprocs = Hashtbl.create 8 in
  let bprocs = Hashtbl.create 8 in
  (match config.backend with
  | Bytecode ->
      List.iter
        (fun p ->
          Hashtbl.replace bprocs p.Program.name
            (Emit.emit_proc ~cost_model:config.cost_model ~instr:config.instr
               ?plan:config.emit_plan rt prog p))
        (Program.procs prog)
  | Tree | Compiled ->
      List.iter
        (fun p ->
          Hashtbl.replace cprocs p.Program.name (compile_proc config rt prog p))
        (Program.procs prog));
  let acct =
    Bytecode.make_acct ~max_steps:config.max_steps ~max_cycles:config.max_cycles
      ~max_call_depth:config.max_call_depth
      ~sample_interval:config.sample_interval
      ~c_counter:config.cost_model.Cost_model.c_counter
      ~n_counters:config.instr.Probe.n_counters
  in
  let st = { config; prog; cprocs; bprocs; acct; rng; out; rt } in
  (rt.Compile.call <-
     (match config.backend with
     | Bytecode -> fun callee args -> call_proc_bytecode st callee args
     | Tree | Compiled -> fun callee args -> call_proc_compiled st callee args));
  st

(* ---- entry points and results ---- *)

type outcome = Normal_stop | Fell_off_end

let run (st : t) : outcome =
  let main = Program.main_proc st.prog in
  let call =
    match st.config.backend with
    | Tree -> call_proc
    | Compiled -> call_proc_compiled
    | Bytecode -> call_proc_bytecode
  in
  match call st main [] with
  | exception Stopped -> Normal_stop
  | _ -> Fell_off_end

let cycles st = st.acct.Bytecode.cycles
let steps st = st.acct.Bytecode.steps
let output st = Buffer.contents st.out
let counters st = Array.copy st.acct.Bytecode.counters

let cproc st name =
  match Hashtbl.find_opt st.cprocs name with
  | Some cp -> cp
  | None -> invalid_arg (Printf.sprintf "Interp.cproc: unknown procedure %s" name)

let bproc st name =
  match Hashtbl.find_opt st.bprocs name with
  | Some bp -> bp
  | None -> invalid_arg (Printf.sprintf "Interp.bproc: unknown procedure %s" name)

(* Sum a per-region quantity over every inlined copy of [name] across
   all host procedures.  Inlined callees (Emit's leaf-call splicing)
   keep their counters in a dedicated block of the host's arrays, at
   the offsets recorded in the region; the oracle accessors below add
   those blocks to the callee's standalone counters so inlining is
   invisible to every reader (Analysis.oracle_totals in particular). *)
let region_sum st name (f : Bytecode.proc -> Bytecode.region -> int) =
  Hashtbl.fold
    (fun _ (host : Bytecode.proc) acc ->
      Array.fold_left
        (fun acc (r : Bytecode.region) ->
          if String.equal r.Bytecode.rg_callee name then acc + f host r else acc)
        acc host.Bytecode.regions)
    st.bprocs 0

let invocations st name =
  match st.config.backend with
  | Bytecode ->
      (bproc st name).Bytecode.invocations
      + region_sum st name (fun _ r -> r.Bytecode.rg_invocations)
  | Tree | Compiled -> (cproc st name).invocations

(* oracle: executions of a node *)
let node_execs st name node =
  match st.config.backend with
  | Bytecode ->
      (bproc st name).Bytecode.execs.(node)
      + region_sum st name (fun host r ->
            host.Bytecode.execs.(r.Bytecode.rg_node_base + node))
  | Tree | Compiled -> (cproc st name).code.(node).execs

(* oracle: traversals of the CFG edge (node, label) *)
let edge_count st name node label =
  match st.config.backend with
  | Bytecode ->
      let bp = bproc st name in
      let labels = bp.Bytecode.succ_labels.(node) in
      let base = bp.Bytecode.edge_base.(node) in
      let total = ref 0 in
      Array.iteri
        (fun k l ->
          if Label.equal l label then
            total :=
              !total
              + bp.Bytecode.edge_counts.(base + k)
              + region_sum st name (fun host r ->
                    host.Bytecode.edge_counts.(r.Bytecode.rg_edge_base + base + k)))
        labels;
      !total
  | Tree | Compiled ->
      let cn = (cproc st name).code.(node) in
      let total = ref 0 in
      Array.iteri
        (fun k l -> if Label.equal l label then total := !total + cn.edge_counts.(k))
        cn.succ_labels;
      !total

(* PC-sampling hits of a node *)
let node_samples st name node =
  match st.config.backend with
  | Bytecode ->
      (bproc st name).Bytecode.samples.(node)
      + region_sum st name (fun host r ->
            host.Bytecode.samples.(r.Bytecode.rg_node_base + node))
  | Tree | Compiled -> (cproc st name).code.(node).samples

(* FALLBACK escapes executed across all bytecode procs (perf telemetry;
   0 under the closure backends, which have no fallback path) *)
let fallback_execs st =
  Hashtbl.fold
    (fun _ (bp : Bytecode.proc) acc -> acc + bp.Bytecode.fb_execs)
    st.bprocs 0

(* ---- guarded execution: structured results ---- *)

let counter_overflowed st = st.acct.Bytecode.overflowed

module Diag = S89_diag.Diag

let diagnostics st =
  List.map
    (fun c ->
      Diag.warningf ~code:"RUN005"
        ~hint:"the reconstruction laws assume exact sums; rerun with fewer \
               iterations or split the profile across runs"
        "counter %d saturated at max_int" c)
    st.acct.Bytecode.overflowed

let run_result (st : t) : (outcome, Diag.t) result =
  match run st with
  | o -> Ok o
  | exception Value.Runtime_error msg -> Error (Diag.error ~code:"RUN001" msg)
  | exception Out_of_fuel ->
      Error
        (Diag.errorf ~code:"RUN002"
           ~hint:"raise [max_steps] if the program is expected to run this long"
           "out of fuel after %d statements" st.acct.Bytecode.steps)
  | exception Out_of_cycles ->
      Error
        (Diag.errorf ~code:"RUN003"
           ~hint:"raise [max_cycles] if the program is expected to run this long"
           "cycle budget exhausted after %d cycles" st.acct.Bytecode.cycles)
  | exception Call_depth_exceeded d ->
      Error
        (Diag.errorf ~code:"RUN004"
           ~hint:"raise [max_call_depth] for deeply recursive programs"
           "call depth exceeded %d" d)
  | exception S89_util.Fault.Injected msg ->
      Error (Diag.error ~code:"FLT001" ~hint:"injected by S89_FAULTS" msg)
