(** Compile-once, run-many backend: MF77 expressions and IR nodes are
    compiled to OCaml closures over integer slot indices.  Variable
    resolution, intrinsic dispatch, successor lookup, constant folding of
    literal operands and array stride/bounds precomputation all happen
    once, at compile time; the hot path is closure calls over a
    {!Env.slots} frame. *)

module Ast = S89_frontend.Ast
module Ir = S89_frontend.Ir
module Program = S89_frontend.Program
module Prng = S89_util.Prng
open S89_cfg

(** Runtime hooks shared by all compiled closures of one VM instance.
    [call] is tied to the interpreter's procedure-call machinery after
    compilation (breaking the compile/interp dependency cycle). *)
type rt = {
  rng : Prng.t;
  out : Buffer.t;
  mutable call : Program.proc -> Env.binding list -> Value.t option;
}

val make_rt : rng:Prng.t -> out:Buffer.t -> rt

(** A compiled expression: evaluate against a frame. *)
type cexpr = Env.slots -> Value.t

(** Static typing facts, shared with the bytecode emitter so both
    backends agree exactly on what is statically typed (and therefore on
    which unboxed fast paths are sound).  All return [None]/[false] for
    dummy arguments, whose bindings the caller controls. *)

val static_dims : Env.layout -> int -> int list option
(** Declared dimensions of a non-dummy array slot, when none is [-1]. *)

val static_scalar_ty : Env.layout -> int -> Ast.typ option
(** Value type of a non-dummy scalar or PARAMETER slot. *)

val static_elt_ty : Env.layout -> int -> Ast.typ option
(** Element type of a non-dummy array slot. *)

val static_num : Env.layout -> Ast.expr -> Ast.typ option
(** The numeric type generic evaluation of the expression is guaranteed
    to yield, or [None] when unknown/LOGICAL/call-dependent. *)

val static_int : Env.layout -> Ast.expr -> bool

val compile_expr : rt -> Program.t -> Env.layout -> Ast.expr -> cexpr

(** Compiled argument: Fortran calling conventions (variables and array
    elements by reference, other expressions by copy-in). *)
val compile_arg : rt -> Program.t -> Env.layout -> Ast.expr -> Env.slots -> Env.binding

(** Evaluate compiled arguments left to right. *)
val eval_bindings : (Env.slots -> Env.binding) array -> Env.slots -> Env.binding list

(** Sentinels returned by compiled node steps instead of a successor
    index. *)
val ret_code : int

val stop_code : int

(** [compile_node rt prog layout ~node_id ~succ ir] compiles one IR node
    to a step closure returning the successor {e index} (into [succ]) to
    take, or {!ret_code} / {!stop_code}.  Successor indices, case
    dispatch tables and probe-free fast paths are resolved at compile
    time. *)
val compile_node :
  rt ->
  Program.t ->
  Env.layout ->
  node_id:int ->
  succ:Label.t array ->
  Ir.node ->
  Env.slots ->
  int

(** A probe action with its cycle charge and bulk expression compiled. *)
type caction =
  | CIncr of int  (** counter id; charges [c_counter] *)
  | CBulk of int * int * cexpr
      (** counter id, precomputed expression cost, compiled expression *)

val compile_action :
  rt -> Program.t -> Env.layout -> Cost_model.t -> Probe.action -> caction
