(* Slot-resolved variable environments: compile-time name -> slot maps so
   frames are dense binding arrays instead of string hash tables. *)

module Ast = S89_frontend.Ast
module Ir = S89_frontend.Ir
module Sema = S89_frontend.Sema
module Program = S89_frontend.Program
open S89_cfg

(* Array storage is monomorphized by element type: INTEGER and REAL
   arrays hold unboxed machine values (OCaml specializes [float array]),
   so numeric element access never allocates.  Only LOGICAL arrays fall
   back to boxed values. *)
type adata =
  | Ints of int array
  | Reals of float array
  | Values of Value.t array

type array_obj = { data : adata; dims : int array; elt : Ast.typ }

type binding =
  | Cell of { mutable v : Value.t; ty : Ast.typ }
  | Arr of array_obj
  | Elem of array_obj * int
  | Poison of string

type slots = binding array

let alloc_array (elt : Ast.typ) (dims : int list) =
  let size = List.fold_left ( * ) 1 dims in
  let data =
    match elt with
    | Ast.Tint -> Ints (Array.make size 0)
    | Ast.Treal -> Reals (Array.make size 0.0)
    | Ast.Tlogical -> Values (Array.make size (Value.Bool false))
  in
  { data; dims = Array.of_list dims; elt }

let size (a : array_obj) =
  match a.data with
  | Ints d -> Array.length d
  | Reals d -> Array.length d
  | Values d -> Array.length d

(* element accessors, mirroring scalar semantics exactly: [get]/[set]
   behave like reading/[Value.coerce]-then-writing a boxed element *)
let get (a : array_obj) off =
  match a.data with
  | Ints d -> Value.Int d.(off)
  | Reals d -> Value.Real d.(off)
  | Values d -> d.(off)

let get_int (a : array_obj) off =
  match a.data with
  | Ints d -> d.(off)
  | Reals d -> int_of_float d.(off)
  | Values d -> Value.to_int d.(off)

let get_float (a : array_obj) off =
  match a.data with
  | Ints d -> float_of_int d.(off)
  | Reals d -> d.(off)
  | Values d -> Value.to_float d.(off)

let set (a : array_obj) off v =
  match a.data with
  | Ints d -> (
      match v with
      | Value.Int i -> d.(off) <- i
      | Value.Real r -> d.(off) <- int_of_float r
      | Value.Bool _ -> Value.err "cannot store LOGICAL in arithmetic variable")
  | Reals d -> (
      match v with
      | Value.Real r -> d.(off) <- r
      | Value.Int i -> d.(off) <- float_of_int i
      | Value.Bool _ -> Value.err "cannot store LOGICAL in arithmetic variable")
  | Values d -> d.(off) <- Value.coerce a.elt v

let binding_of_kind name (k : Sema.var_kind) =
  match k with
  | Sema.Scalar ty -> Cell { v = Value.zero_of ty; ty }
  | Sema.Const c -> (
      (* a bad PARAMETER must fail at first use, not at frame creation *)
      match c with
      | Ast.Int i -> Cell { v = Value.Int i; ty = Ast.Tint }
      | Ast.Real r -> Cell { v = Value.Real r; ty = Ast.Treal }
      | Ast.Bool b -> Cell { v = Value.Bool b; ty = Ast.Tlogical }
      | _ -> Poison (Fmt.str "PARAMETER %s is not a literal" name))
  | Sema.Array (elt, dims) ->
      if List.mem (-1) dims then
        Poison (Fmt.str "assumed-size array %s must be a dummy argument" name)
      else Arr (alloc_array elt dims)

let offset name (a : array_obj) (idx : int list) =
  (* column-major, 1-based; assumed-size arrays check the flat bound only *)
  if Array.length a.dims = 1 && a.dims.(0) = -1 then begin
    match idx with
    | [ i ] ->
        if i < 1 || i > size a then
          Value.err "%s(%d): out of bounds (size %d)" name i (size a)
        else i - 1
    | _ -> Value.err "%s: assumed-size arrays are 1-dimensional" name
  end
  else begin
    if List.length idx <> Array.length a.dims then
      Value.err "%s: rank mismatch" name;
    let off = ref 0 and stride = ref 1 in
    List.iteri
      (fun k i ->
        let d = a.dims.(k) in
        if i < 1 || i > d then
          Value.err "%s: subscript %d of dimension %d out of bounds [1,%d]" name i
            (k + 1) d;
        off := !off + ((i - 1) * !stride);
        stride := !stride * d)
      idx;
    !off
  end

(* ---- compile-time layouts ---- *)

type layout = {
  lproc : Program.proc;
  names : string array;
  kinds : Sema.var_kind array;
  param_tys : Ast.typ option array;
  n_params : int;
  result_slot : int option;
  index : (string, int) Hashtbl.t;  (* compile-time only *)
}

(* every variable name an expression can touch at runtime *)
let rec expr_names acc (e : Ast.expr) =
  match e with
  | Ast.Int _ | Ast.Real _ | Ast.Bool _ -> acc
  | Ast.Var v -> v :: acc
  | Ast.Index (name, idx) -> List.fold_left expr_names (name :: acc) idx
  | Ast.Call (_, args) -> List.fold_left expr_names acc args
  | Ast.Unop (_, e) -> expr_names acc e
  | Ast.Binop (_, a, b) -> expr_names (expr_names acc a) b

let node_names acc (n : Ir.node) =
  let acc = List.fold_left expr_names acc (Ir.exprs_of n) in
  match n with
  | Ir.Assign (Ast.Lvar v, _) -> v :: acc
  | Ir.Assign (Ast.Larr (name, _), _) -> name :: acc
  | Ir.Do_test d -> d.Ir.trip_var :: d.Ir.do_var :: acc
  | _ -> acc

let layout (p : Program.proc) : layout =
  let env = p.Program.env in
  let index = Hashtbl.create 32 in
  let rev_names = ref [] and n = ref 0 in
  let add name =
    if not (Hashtbl.mem index name) then begin
      Hashtbl.replace index name !n;
      rev_names := name :: !rev_names;
      incr n
    end
  in
  (* dummy arguments own slots 0 .. n_params-1 in order, even when a name
     repeats (the later occurrence wins name lookups, as with hash frames) *)
  List.iter
    (fun prm ->
      Hashtbl.replace index prm !n;
      rev_names := prm :: !rev_names;
      incr n)
    p.Program.params;
  let n_params = !n in
  Hashtbl.iter (fun name _ -> add name) env.Sema.vars;
  (match env.Sema.result_var with Some rv -> add rv | None -> ());
  let names_in_body = ref [] in
  Cfg.iter_nodes
    (fun i ->
      names_in_body := node_names !names_in_body (Cfg.info p.Program.cfg i).Ir.ir)
    p.Program.cfg;
  List.iter add (List.rev !names_in_body);
  let names = Array.of_list (List.rev !rev_names) in
  let kind_of name =
    match Hashtbl.find_opt env.Sema.vars name with
    | Some k -> k
    | None -> Sema.Scalar (Ast.implicit_type name)
  in
  let kinds = Array.map kind_of names in
  let param_tys =
    Array.init n_params (fun i ->
        match Hashtbl.find_opt env.Sema.vars names.(i) with
        | Some (Sema.Scalar ty) -> Some ty
        | _ -> None)
  in
  let result_slot =
    match env.Sema.result_var with
    | Some rv -> Hashtbl.find_opt index rv
    | None -> None
  in
  { lproc = p; names; kinds; param_tys; n_params; result_slot; index }

let slot (l : layout) name =
  match Hashtbl.find_opt l.index name with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "Env.slot: %s has no slot in %s" name l.lproc.Program.name)

let n_slots (l : layout) = Array.length l.names

let make_frame (l : layout) : slots =
  let n = Array.length l.names in
  Array.init n (fun i ->
      if i < l.n_params then Poison (Fmt.str "unbound dummy argument %s" l.names.(i))
      else binding_of_kind l.names.(i) l.kinds.(i))
