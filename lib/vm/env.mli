(** Slot-resolved variable environments for the VM.

    A procedure's variables are resolved to dense integer slots once, at
    compile time; a frame is then just a [binding array] and every
    variable access on the hot path is an array read — no string hashing.
    The binding/array types here are shared by both VM backends (the
    tree-walking reference evaluator keeps per-frame hash tables but
    passes the same [binding] values across calls). *)

module Ast = S89_frontend.Ast
module Sema = S89_frontend.Sema
module Program = S89_frontend.Program

(** Array storage, monomorphized by element type: INTEGER and REAL
    arrays hold unboxed machine values, so numeric element access never
    allocates; LOGICAL arrays fall back to boxed values. *)
type adata =
  | Ints of int array
  | Reals of float array
  | Values of Value.t array

type array_obj = { data : adata; dims : int array; elt : Ast.typ }

type binding =
  | Cell of { mutable v : Value.t; ty : Ast.typ }  (** scalar storage *)
  | Arr of array_obj  (** whole array (by reference) *)
  | Elem of array_obj * int  (** one element (by reference) *)
  | Poison of string
      (** unusable storage (assumed-size array that is not a dummy
          argument); raises the recorded message on first use *)

(** A compiled frame: one binding per slot of the procedure's layout. *)
type slots = binding array

(** Allocate a zero-initialized array; column-major, 1-based. *)
val alloc_array : Ast.typ -> int list -> array_obj

(** Number of elements. *)
val size : array_obj -> int

(** Read element [off] (0-based flat offset) as a boxed value. *)
val get : array_obj -> int -> Value.t

(** [get] composed with {!Value.to_int} / {!Value.to_float}, without the
    intermediate box. *)
val get_int : array_obj -> int -> int

val get_float : array_obj -> int -> float

(** Store at flat offset [off], coercing to the element type exactly as
    {!Value.coerce} would. *)
val set : array_obj -> int -> Value.t -> unit

(** Fresh local storage for a declared or implicitly-typed variable. *)
val binding_of_kind : string -> Sema.var_kind -> binding

(** Flat offset of a subscript list (bounds-checked).
    @raise Value.Runtime_error on rank mismatch or out-of-bounds *)
val offset : string -> array_obj -> int list -> int

(** Compile-time slot assignment for one procedure: dummy arguments first
    (slots [0 .. n_params-1], in order), then declared variables, then
    every other name the body mentions. *)
type layout = {
  lproc : Program.proc;
  names : string array;  (** slot -> variable name *)
  kinds : Sema.var_kind array;  (** slot -> kind, implicit typing resolved *)
  param_tys : Ast.typ option array;
      (** per dummy argument: declared scalar type (drives copy-in
          coercion), [None] when undeclared or non-scalar *)
  n_params : int;
  result_slot : int option;  (** for FUNCTIONs: slot of the result var *)
  index : (string, int) Hashtbl.t;  (** name -> slot; compile-time only *)
}

val layout : Program.proc -> layout

(** Slot of a name; total for every name the procedure can mention.
    @raise Invalid_argument for names absent from the layout (compiler bug) *)
val slot : layout -> string -> int

val n_slots : layout -> int

(** Fresh frame with local storage in every non-parameter slot; parameter
    slots hold [Poison] until the caller binds the arguments. *)
val make_frame : layout -> slots
