(* Multi-tenant TCP analysis service.

   One listener thread accepts connections; each connection gets a
   thread speaking the {!Proto} frame protocol.  Submitted jobs pass
   through a bounded per-tenant {!Admission} queue (overflow is refused
   immediately with NET001 + retry-after) and are executed by a pool of
   worker DOMAINS, each running one checkpointed {!S89_core.Service}
   batch at a time — threads own the blocking socket I/O, domains own
   the compute, and the admission queue is the hand-off point.

   DURABILITY.  A job is acked only after its [source.mf] and [job.meta]
   are atomically persisted under the store root, sharded by source
   fingerprint ([shard-%02x/] from the low byte of the source FNV-64);
   each job's runs then stream into its own WAL-backed store.  A server
   killed at any point therefore restarts into a consistent picture: the
   startup scan re-registers finished jobs (report on disk), failed ones
   ([job.err] on disk), and re-enqueues everything else, and resumed
   batches continue from their run-count checkpoint to byte-identical
   reports.  Completed runs are never lost or recomputed.

   DEADLINES.  A submit carries a relative deadline (seconds; 0 = none)
   made absolute at admission.  Queue wait counts against it: an expired
   job stops at the next run boundary via the batch's [should_stop]
   guard (the same mechanism as PR 4's fuel/wall guards), answers SRV004
   and keeps the PARTIAL estimate over the runs that did complete — the
   store already holds them, so degradation is graceful, not lossy.

   LOAD SHEDDING.  A {!S89_exec.Supervise} breaker is keyed by TENANT:
   a tenant whose jobs keep failing trips its own circuit and further
   submits from it are refused (NET001 with the remaining cooldown as
   retry-after) while other tenants continue unaffected.  After the
   cooldown one job runs as the half-open probe and a success closes the
   circuit.

   RESOURCE GOVERNANCE.  Admission also passes a per-tenant {!Quota}
   gate: a token bucket (rate/burst) plus byte/job ledgers, answered
   with NET004 and a retry-after derived from the bucket refill.  The
   ledgers are rebuilt by the startup scan, so quotas survive restarts.
   A background GC collects finished jobs past [retain_done] and — when
   the tracked store size exceeds [max_store_bytes] — evicts
   oldest-finished first.  Collection is tombstone-then-delete under the
   registry lock: once [job.tomb] is durable the job is dead to
   recovery, so a crash mid-delete leaves either a tombed dir (swept by
   the next scan) or an intact finished job — a GC racing a resume can
   never delete a live job.

   DISK PRESSURE.  Durable writes that fail with ENOSPC/EIO (real or
   injected via [S89_FAULTS=enospc:P]/[eio:P]) flip the server into a
   breaker-style disk-pressure state (SRV007): NEW admissions are shed
   with a retry-after, while accepted jobs keep finishing from memory
   (their stores buffer unwritable records and their reports are cached
   in the registry if the report file cannot land).  A cheap probe write
   under the store root — retried at most once per
   [disk_probe_interval], from the admission path and the GC thread —
   clears the state as soon as the disk recovers.

   CONNECTION DEFENCE.  Accepted connections are capped at
   [max_connections] (excess is answered with a best-effort NET004
   rejection and closed, so the accept loop never blocks), and every
   frame read carries an absolute deadline ({!Proto.read_frame}
   [?deadline]) so a slowloris client dripping bytes cannot pin a
   connection thread or fd past [recv_timeout].

   Metrics (jobs done/failed/expired/rejected, per-tenant queue depth,
   breaker state and quota ledgers, connection/fd budgets, disk-pressure
   state, GC counters, p50/p99 job latency from a fixed-bucket
   {!S89_exec.Histogram}) are served as a text document by the
   [metrics] request. *)

module Supervise = S89_exec.Supervise
module Histogram = S89_exec.Histogram
module Service = S89_core.Service
module Cost_model = S89_vm.Cost_model
module Database = S89_profiling.Database
module Diag = S89_diag.Diag
module Wal = S89_store.Wal

let log_src = Logs.Src.create "s89.net" ~doc:"multi-tenant TCP service"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  port : int;
  workers : int;
  queue_capacity : int;
  tenant_weights : (string * int) list;
  fsync : bool;
  policy : Supervise.policy;
  cost_model : Cost_model.t;
  recv_timeout : float;
  quota : Quota.limits; (* per-tenant rate/burst + byte/job quotas *)
  max_connections : int; (* concurrent connection cap; <= 0 = unlimited *)
  retain_done : float; (* keep finished jobs this long; < 0 = forever *)
  max_store_bytes : int; (* GC size bound on the store root; <= 0 = none *)
  gc_interval : float; (* maintenance thread period, seconds *)
  disk_probe_interval : float; (* min gap between disk-pressure probes *)
}

let default_config =
  { port = 0; workers = 2; queue_capacity = 64; tenant_weights = [];
    fsync = true;
    policy =
      { Supervise.default_policy with
        max_restarts = 0; breaker_threshold = 5; cooldown = 2.0 };
    cost_model = Cost_model.optimized; recv_timeout = 30.0;
    quota = Quota.unlimited; max_connections = 256; retain_done = -1.0;
    max_store_bytes = 0; gc_interval = 2.0; disk_probe_interval = 0.25 }

type job = {
  tenant : string;
  name : string;
  runs : int;
  seed : int;
  deadline : float; (* absolute wall-clock; 0 = none *)
  submitted : float;
  source : string;
  dir : string; (* job directory under its shard *)
}

type job_state =
  | Queued
  | Running
  | Done of { runs : int }
  | Expired of { completed : int }
  | Failed of { code : string }

type entry = {
  job : job;
  mutable state : job_state;
  mutable finished : float; (* wall time of Done/Expired/Failed; 0 = live *)
  mutable bytes : int; (* accounted on-disk bytes of the job dir *)
  mutable cached : string option; (* in-memory body when disk writes fail *)
}

type t = {
  config : config;
  store_root : string;
  sup : Supervise.t;
  adm : job Admission.t;
  quota : Quota.t;
  hist : Histogram.t;
  jmu : Mutex.t;
  jobs : (string * string, entry) Hashtbl.t; (* (tenant, name), under jmu *)
  tenants_seen : (string, unit) Hashtbl.t; (* under jmu *)
  stopping : bool Atomic.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  jobs_done : int Atomic.t;
  jobs_failed : int Atomic.t;
  jobs_expired : int Atomic.t;
  jobs_rejected : int Atomic.t;
  (* connection defence *)
  conns : int Atomic.t;
  conns_rejected : int Atomic.t;
  conns_timed_out : int Atomic.t;
  (* disk-pressure breaker (SRV007) *)
  disk_pressured : bool Atomic.t;
  disk_windows : int Atomic.t; (* pressure transitions, total *)
  disk_mu : Mutex.t; (* serializes probe scheduling *)
  mutable disk_last_probe : float; (* under disk_mu *)
  (* store GC *)
  store_bytes : int Atomic.t; (* tracked bytes across all job dirs *)
  gc_runs : int Atomic.t;
  gc_collected : int Atomic.t; (* jobs collected, total *)
  gc_reclaimed : int Atomic.t; (* bytes reclaimed, total *)
  mutable listener : Thread.t option;
  mutable gc_thread : Thread.t option;
  mutable domains : unit Domain.t list;
}

(* ---------------- small file helpers ---------------- *)

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

(* tmp + fsync + rename + dir fsync: the job files gate the durable-ack
   contract, so they share the store's atomic-commit primitive — and its
   enospc/eio injection site *)
let write_atomic = S89_store.Store.write_atomic

let dir_bytes path =
  let rec go path =
    match Sys.is_directory path with
    | true ->
        Array.fold_left
          (fun acc f -> acc + go (Filename.concat path f))
          0 (Sys.readdir path)
    | false -> ( try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0)
    | exception Sys_error _ -> 0
  in
  go path

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

(* ---------------- job layout ---------------- *)

let shard_of_source source =
  Printf.sprintf "shard-%02x"
    (Int64.to_int (Int64.logand (Database.fnv64 source) 0xFFL))

let job_dir t ~tenant ~name ~source =
  Filename.concat
    (Filename.concat t.store_root (shard_of_source source))
    (tenant ^ "__" ^ name)

let meta_of_job j =
  String.concat "\n"
    [ "tenant " ^ j.tenant; "job " ^ j.name; "runs " ^ string_of_int j.runs;
      "seed " ^ string_of_int j.seed;
      Printf.sprintf "deadline %.17g" j.deadline;
      Printf.sprintf "submitted %.17g" j.submitted ]
  ^ "\n"

let job_of_meta ~dir ~source meta =
  let kv =
    List.filter_map
      (fun line ->
        match String.index_opt line ' ' with
        | None -> None
        | Some i ->
            Some
              ( String.sub line 0 i,
                String.sub line (i + 1) (String.length line - i - 1) ))
      (String.split_on_char '\n' meta)
  in
  let find k = List.assoc_opt k kv in
  match (find "tenant", find "job", find "runs", find "seed") with
  | Some tenant, Some name, Some runs, Some seed -> (
      match (int_of_string_opt runs, int_of_string_opt seed) with
      | Some runs, Some seed ->
          let f k d =
            match find k with
            | Some v -> Option.value ~default:d (float_of_string_opt v)
            | None -> d
          in
          Some
            { tenant; name; runs; seed; deadline = f "deadline" 0.0;
              submitted = f "submitted" 0.0; source; dir }
      | _ -> None)
  | _ -> None

let store_dir job = Filename.concat job.dir "store"
let report_path job = Filename.concat job.dir "report"
let partial_path job = Filename.concat job.dir "report.partial"
let err_path job = Filename.concat job.dir "job.err"
let tomb_path job = Filename.concat job.dir "job.tomb"

(* ---------------- registry ---------------- *)

let locked t f =
  Mutex.lock t.jmu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.jmu) f

let find_entry t ~tenant ~name =
  locked t (fun () -> Hashtbl.find_opt t.jobs (tenant, name))

let register t job state =
  locked t (fun () ->
      Hashtbl.replace t.tenants_seen job.tenant ();
      match Hashtbl.find_opt t.jobs (job.tenant, job.name) with
      | Some e ->
          e.state <- state;
          e
      | None ->
          let e = { job; state; finished = 0.0; bytes = 0; cached = None } in
          Hashtbl.replace t.jobs (job.tenant, job.name) e;
          e)

let set_state t entry state = locked t (fun () -> entry.state <- state)

let state_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done _ -> "done"
  | Expired _ -> "expired"
  | Failed _ -> "failed"

let is_finished = function
  | Done _ | Expired _ | Failed _ -> true
  | Queued | Running -> false

(* ---------------- disk-pressure breaker (SRV007) ---------------- *)

let enter_disk_pressure t e =
  if not (Atomic.exchange t.disk_pressured true) then begin
    Atomic.incr t.disk_windows;
    let d =
      Diag.warningf ~code:"SRV007"
        ~hint:
          "shedding new admissions; accepted jobs finish from memory; \
           auto-recovers when a probe write succeeds"
        "disk pressure: durable write failed (%s)" (Printexc.to_string e)
    in
    Log.warn (fun m -> m "%a" Diag.pp d)
  end

(* a real (but injectable, so chaos windows persist) write under the
   store root: the half-open probe of the disk-pressure breaker *)
let disk_probe_write t =
  let probe = Filename.concat t.store_root ".disk-probe" in
  match write_atomic ~fsync:t.config.fsync probe "probe\n" with
  | () ->
      (try Sys.remove probe with Sys_error _ -> ());
      true
  | exception e when Wal.is_disk_fault e -> false

(* [true] = admissions may proceed.  Under pressure, at most one probe
   per [disk_probe_interval] is attempted (whoever wins the schedule);
   a successful probe closes the breaker immediately. *)
let disk_ok t =
  if not (Atomic.get t.disk_pressured) then true
  else begin
    let due =
      Mutex.lock t.disk_mu;
      let now = Unix.gettimeofday () in
      let due = now -. t.disk_last_probe >= t.config.disk_probe_interval in
      if due then t.disk_last_probe <- now;
      Mutex.unlock t.disk_mu;
      due
    in
    if due && disk_probe_write t then begin
      Atomic.set t.disk_pressured false;
      Log.info (fun m -> m "disk pressure cleared: probe write succeeded");
      true
    end
    else false
  end

(* ---------------- byte accounting ---------------- *)

(* re-measure a job dir and push the delta into the global gauge and the
   tenant's quota ledger *)
let account_job_bytes t entry =
  let measured = dir_bytes entry.job.dir in
  let delta = measured - entry.bytes in
  if delta <> 0 then begin
    entry.bytes <- measured;
    ignore (Atomic.fetch_and_add t.store_bytes delta : int);
    Quota.charge t.quota ~tenant:entry.job.tenant ~bytes:delta ~jobs:0
  end

(* ---------------- workers ---------------- *)

exception Job_error of Diag.t

(* A job-completion file write that must not kill the job when the disk
   is failing: ENOSPC/EIO flips the disk-pressure breaker and the body
   is cached on the registry entry instead, so [result] requests keep
   answering from memory (durability degrades; availability does not). *)
let write_body t entry path content =
  match write_atomic ~fsync:t.config.fsync path content with
  | () -> ()
  | exception e when Wal.is_disk_fault e ->
      enter_disk_pressure t e;
      entry.cached <- Some content

(* final bookkeeping shared by every terminal state *)
let finish t entry state =
  locked t (fun () ->
      entry.state <- state;
      entry.finished <- Unix.gettimeofday ());
  account_job_bytes t entry

let run_job t entry =
  let job = entry.job in
  let now () = Unix.gettimeofday () in
  let expired () = job.deadline > 0.0 && now () > job.deadline in
  let finish_expired ~completed ~partial =
    Option.iter (fun p -> write_body t entry (partial_path job) p) partial;
    let d =
      Diag.errorf ~code:"SRV004"
        ~hint:"partial estimate over the completed runs is in report.partial"
        "job %s/%s deadline expired after %d/%d runs" job.tenant job.name
        completed job.runs
    in
    (match write_atomic ~fsync:t.config.fsync (err_path job) (Diag.to_string d ^ "\n") with
    | () -> ()
    | exception e when Wal.is_disk_fault e -> enter_disk_pressure t e);
    finish t entry (Expired { completed });
    Atomic.incr t.jobs_expired;
    Histogram.observe t.hist (now () -. job.submitted);
    Log.warn (fun m -> m "%a" Diag.pp d)
  in
  let fail_with d code =
    write_body t entry (err_path job) (Diag.to_string d ^ "\n");
    finish t entry (Failed { code });
    Atomic.incr t.jobs_failed;
    Log.warn (fun m -> m "%a" Diag.pp d)
  in
  if expired () then
    (* expired while queued: don't burn a worker on a dead job *)
    finish_expired ~completed:0 ~partial:None
  else begin
    set_state t entry Running;
    let should_stop () = Atomic.get t.stopping || expired () in
    match
      Supervise.protect t.sup ~key:job.tenant (fun () ->
          match
            Service.batch ~fsync:t.config.fsync ~cost_model:t.config.cost_model
              ~should_stop
              ~on_disk_fault:(fun e -> enter_disk_pressure t e)
              ~resume:true ~runs:job.runs ~seed:job.seed ~dir:(store_dir job)
              job.source
          with
          | Ok o -> o
          | Error d -> raise (Job_error d))
    with
    | Service.Completed { runs; report } ->
        write_body t entry (report_path job) report;
        finish t entry (Done { runs });
        Atomic.incr t.jobs_done;
        Histogram.observe t.hist (now () -. job.submitted);
        Log.info (fun m -> m "job %s/%s: done (%d runs)" job.tenant job.name runs)
    | Service.Interrupted { completed; total = _; partial } ->
        if Atomic.get t.stopping && not (expired ()) then
          (* graceful shutdown: the WAL holds every completed run; the
             restart scan re-enqueues and the batch resumes byte-identically *)
          set_state t entry Queued
        else finish_expired ~completed ~partial
    | exception Job_error d -> fail_with d d.Diag.code
    | exception Supervise.Circuit_open _ ->
        let d =
          Diag.errorf ~code:"NET001"
            ~hint:"the tenant's circuit is open; resubmit after the cooldown"
            "job %s/%s shed: tenant breaker open" job.tenant job.name
        in
        fail_with d "NET001"
    | exception e ->
        write_body t entry (err_path job) (Printexc.to_string e ^ "\n");
        finish t entry (Failed { code = "SRV000" });
        Atomic.incr t.jobs_failed;
        Log.err (fun m -> m "job %s/%s: %s" job.tenant job.name (Printexc.to_string e))
  end

let rec worker_loop t =
  match Admission.take t.adm with
  | None -> ()
  | Some (_tenant, job) ->
      (match find_entry t ~tenant:job.tenant ~name:job.name with
      | None -> () (* unregistered work is impossible; be safe *)
      | Some entry ->
          if Atomic.get t.stopping then
            (* drained during shutdown: leave it for the restart scan *)
            set_state t entry Queued
          else run_job t entry);
      worker_loop t

(* ---------------- request handling ---------------- *)

let reject t ~retry_after ~reason =
  Atomic.incr t.jobs_rejected;
  Proto.Rejected { retry_after; reason }

let reject_disk_pressure t =
  reject t
    ~retry_after:(Float.max 0.1 t.config.disk_probe_interval)
    ~reason:"SRV007 disk pressure: durable writes failing, admissions shed"

(* withdraw the accounting taken by [Quota.admit] when a later admission
   step loses a race or fails *)
let quota_rollback t ~tenant ~bytes =
  Quota.charge t.quota ~tenant ~bytes:(-bytes) ~jobs:(-1)

let handle_submit t ~tenant ~name ~runs ~seed ~deadline ~source =
  if Atomic.get t.stopping then
    reject t ~retry_after:1.0 ~reason:"server stopping"
  else if not (disk_ok t) then reject_disk_pressure t
  else
    match Supervise.breaker_state t.sup ~key:tenant with
    | Supervise.Breaker_open { remaining } ->
        reject t
          ~retry_after:(Float.max 0.1 remaining)
          ~reason:(Printf.sprintf "NET001 tenant %s circuit open" tenant)
    | Supervise.Breaker_closed | Supervise.Breaker_half_open -> (
        match find_entry t ~tenant ~name with
        | Some { state = Queued | Running | Done _; _ } ->
            (* idempotent: resubmitting a live or finished job re-acks it
               (no new resources — the quota ledger is untouched) *)
            Proto.Accepted { job = name }
        | Some ({ state = Expired _ | Failed _; _ } as entry) -> (
            (* explicit retry of a dead job: clear its verdict and requeue
               — atomically against a GC tombstoning it (the state
               re-check under the registry lock is the race arbiter) *)
            let prev = entry.state in
            let resurrected =
              locked t (fun () ->
                  is_finished entry.state
                  && Hashtbl.mem t.jobs (tenant, name)
                  &&
                  (entry.state <- Queued;
                   entry.finished <- 0.0;
                   entry.cached <- None;
                   true))
            in
            if not resurrected then
              (* collected (or resurrected by a concurrent retry) just now *)
              reject t ~retry_after:0.1
                ~reason:
                  (Printf.sprintf "NET001 job %s/%s just changed state; retry"
                     tenant name)
            else
              match Admission.submit t.adm ~tenant entry.job with
              | Ok _ ->
                  List.iter
                    (fun p -> try Sys.remove p with Sys_error _ -> ())
                    [ err_path entry.job; partial_path entry.job ];
                  Proto.Accepted { job = name }
              | Error (`Full depth) ->
                  set_state t entry prev;
                  reject t ~retry_after:1.0
                    ~reason:(Printf.sprintf "NET001 queue full (depth %d)" depth)
              | Error `Closed ->
                  set_state t entry prev;
                  reject t ~retry_after:1.0 ~reason:"server stopping")
        | None -> (
            if Admission.depth t.adm ~tenant >= t.config.queue_capacity then
              reject t ~retry_after:1.0
                ~reason:
                  (Printf.sprintf "NET001 queue full (depth %d)"
                     (Admission.depth t.adm ~tenant))
            else
              (* the quota gate: one token + the job's initial bytes,
                 taken atomically (NET004 on refusal, with the bucket
                 refill as retry-after) *)
              let est_bytes = String.length source + 256 in
              match Quota.admit t.quota ~tenant ~bytes:est_bytes with
              | Error r ->
                  let reason, retry_after =
                    Quota.describe ~quota_retry:t.config.gc_interval r
                  in
                  reject t ~retry_after ~reason
              | Ok () -> (
                  let now = Unix.gettimeofday () in
                  let job =
                    { tenant; name; runs; seed;
                      deadline = (if deadline > 0.0 then now +. deadline else 0.0);
                      submitted = now; source;
                      dir = job_dir t ~tenant ~name ~source }
                  in
                  let withdraw () =
                    locked t (fun () -> Hashtbl.remove t.jobs (tenant, name));
                    List.iter
                      (fun p -> try Sys.remove p with Sys_error _ -> ())
                      [ Filename.concat job.dir "job.meta";
                        Filename.concat job.dir "source.mf" ];
                    quota_rollback t ~tenant ~bytes:est_bytes
                  in
                  (* durable-ack: source + meta are atomically on disk
                     BEFORE the accept answer, so an acked job survives
                     any crash; a disk fault here must NOT ack — it sheds
                     with SRV007 instead *)
                  match
                    mkdir_p job.dir;
                    write_atomic ~fsync:t.config.fsync
                      (Filename.concat job.dir "source.mf")
                      source;
                    write_atomic ~fsync:t.config.fsync
                      (Filename.concat job.dir "job.meta")
                      (meta_of_job job)
                  with
                  | exception e when Wal.is_disk_fault e ->
                      enter_disk_pressure t e;
                      withdraw ();
                      reject_disk_pressure t
                  | () -> (
                      let entry = register t job Queued in
                      entry.bytes <- est_bytes;
                      ignore (Atomic.fetch_and_add t.store_bytes est_bytes : int);
                      match Admission.submit t.adm ~tenant job with
                      | Ok _ -> Proto.Accepted { job = name }
                      | Error (`Full depth) ->
                          (* lost the race for the last slot: withdraw the
                             meta so a restart doesn't resurrect a job we
                             refused *)
                          withdraw ();
                          ignore (Atomic.fetch_and_add t.store_bytes (-est_bytes) : int);
                          reject t ~retry_after:1.0
                            ~reason:
                              (Printf.sprintf "NET001 queue full (depth %d)" depth)
                      | Error `Closed ->
                          withdraw ();
                          ignore (Atomic.fetch_and_add t.store_bytes (-est_bytes) : int);
                          reject t ~retry_after:1.0 ~reason:"server stopping"))))

let handle_status t ~tenant ~name =
  match find_entry t ~tenant ~name with
  | None -> Proto.Job_status { state = "unknown"; completed = 0; total = 0 }
  | Some e ->
      let completed =
        match e.state with
        | Done { runs } -> runs
        | Expired { completed } -> completed
        | Queued | Running | Failed _ -> 0
      in
      Proto.Job_status
        { state = state_string e.state; completed; total = e.job.runs }

let handle_result t ~tenant ~name =
  match find_entry t ~tenant ~name with
  | None -> Proto.Job_result { state = "unknown"; body = "" }
  | Some e ->
      let read_opt p = try read_file p with Sys_error _ -> "" in
      let body =
        match e.state with
        | Done _ -> read_opt (report_path e.job)
        | Expired _ -> read_opt (partial_path e.job)
        | Failed _ -> read_opt (err_path e.job)
        | Queued | Running -> ""
      in
      (* a job finished under disk pressure may have no file on disk:
         serve the body cached at completion time instead *)
      let body =
        if body = "" then Option.value ~default:"" e.cached else body
      in
      Proto.Job_result { state = state_string e.state; body }

(* the process's live fd count — the budget a conn leak would exhaust *)
let fds_open () =
  match Sys.readdir "/proc/self/fd" with
  | entries -> Array.length entries
  | exception Sys_error _ -> -1

let metrics_text t =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "s89_jobs_done %d" (Atomic.get t.jobs_done);
  line "s89_jobs_failed %d" (Atomic.get t.jobs_failed);
  line "s89_jobs_expired %d" (Atomic.get t.jobs_expired);
  line "s89_jobs_rejected %d" (Atomic.get t.jobs_rejected);
  List.iter
    (fun (tenant, depth) -> line "s89_queue_depth{tenant=\"%s\"} %d" tenant depth)
    (Admission.depths t.adm);
  let tenants =
    locked t (fun () -> Hashtbl.fold (fun k () acc -> k :: acc) t.tenants_seen [])
    |> List.sort compare
  in
  List.iter
    (fun tenant ->
      let v =
        match Supervise.breaker_state t.sup ~key:tenant with
        | Supervise.Breaker_closed -> 0
        | Supervise.Breaker_half_open -> 1
        | Supervise.Breaker_open _ -> 2
      in
      line "s89_breaker{tenant=\"%s\"} %d" tenant v)
    tenants;
  List.iter
    (fun (tenant, bytes, jobs) ->
      line "s89_quota_bytes{tenant=\"%s\"} %d" tenant bytes;
      line "s89_quota_jobs{tenant=\"%s\"} %d" tenant jobs)
    (Quota.usages t.quota);
  line "s89_conns_open %d" (Atomic.get t.conns);
  line "s89_conn_limit %d" t.config.max_connections;
  line "s89_conns_rejected %d" (Atomic.get t.conns_rejected);
  line "s89_conns_timed_out %d" (Atomic.get t.conns_timed_out);
  line "s89_fds_open %d" (fds_open ());
  line "s89_disk_pressure %d" (if Atomic.get t.disk_pressured then 1 else 0);
  line "s89_disk_pressure_windows %d" (Atomic.get t.disk_windows);
  line "s89_store_bytes %d" (Atomic.get t.store_bytes);
  line "s89_max_store_bytes %d" t.config.max_store_bytes;
  line "s89_gc_runs %d" (Atomic.get t.gc_runs);
  line "s89_gc_collected %d" (Atomic.get t.gc_collected);
  line "s89_gc_reclaimed_bytes %d" (Atomic.get t.gc_reclaimed);
  line "s89_job_latency_seconds_count %d" (Histogram.count t.hist);
  line "s89_job_latency_seconds{quantile=\"0.5\"} %.6f"
    (Histogram.quantile t.hist 0.5);
  line "s89_job_latency_seconds{quantile=\"0.99\"} %.6f"
    (Histogram.quantile t.hist 0.99);
  Buffer.contents b

let handle_request t = function
  | Proto.Submit { tenant; job; runs; seed; deadline; source } ->
      handle_submit t ~tenant ~name:job ~runs ~seed ~deadline ~source
  | Proto.Status { tenant; job } -> handle_status t ~tenant ~name:job
  | Proto.Result { tenant; job } -> handle_result t ~tenant ~name:job
  | Proto.Metrics -> Proto.Metrics_text (metrics_text t)

(* ---------------- store GC ---------------- *)

(* Finish a tombstoned job dir: everything except the tomb, then the
   tomb, then the dir.  The tomb goes LAST — a crash mid-delete always
   leaves either a tombed dir (the next sweep finishes it) or an intact
   job, never a half-deleted job that recovery would resurrect. *)
let gc_delete dir =
  (match Sys.readdir dir with
  | entries ->
      Array.iter
        (fun f -> if f <> "job.tomb" then rm_rf (Filename.concat dir f))
        entries
  | exception Sys_error _ -> ());
  (try Sys.remove (Filename.concat dir "job.tomb") with Sys_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

(* Collect one finished job.  The tombstone is written durably UNDER the
   registry lock, then the entry is removed — after that no submit can
   resurrect the job (its retry path re-checks membership under the same
   lock) and no worker holds it (only finished jobs are candidates), so
   the file deletion runs race-free outside the lock.  A disk fault on
   the tombstone aborts the collection (the job stays whole). *)
let gc_collect_one t entry =
  let job = entry.job in
  let tombed =
    locked t (fun () ->
        is_finished entry.state
        && Hashtbl.mem t.jobs (job.tenant, job.name)
        &&
        match write_atomic ~fsync:t.config.fsync (tomb_path job) "tomb\n" with
        | () ->
            Hashtbl.remove t.jobs (job.tenant, job.name);
            true
        | exception e when Wal.is_disk_fault e ->
            enter_disk_pressure t e;
            false)
  in
  if tombed then begin
    gc_delete job.dir;
    ignore (Atomic.fetch_and_add t.store_bytes (-entry.bytes) : int);
    Atomic.incr t.gc_collected;
    ignore (Atomic.fetch_and_add t.gc_reclaimed entry.bytes : int);
    Quota.charge t.quota ~tenant:job.tenant ~bytes:(-entry.bytes) ~jobs:(-1)
  end;
  tombed

(* One GC pass; returns the number of jobs collected.  Two policies
   compose: finished jobs older than [retain_done] are collected, then —
   while the tracked store size still exceeds [max_store_bytes] —
   finished jobs are evicted oldest-finished-first. *)
let gc_now t =
  Atomic.incr t.gc_runs;
  let now = Unix.gettimeofday () in
  let finished =
    locked t (fun () ->
        Hashtbl.fold
          (fun _ e acc ->
            if is_finished e.state && e.finished > 0.0 then e :: acc else acc)
          t.jobs [])
    |> List.sort (fun a b -> compare a.finished b.finished)
  in
  let collected = ref 0 in
  let survivors =
    List.filter
      (fun e ->
        if
          t.config.retain_done >= 0.0
          && now -. e.finished > t.config.retain_done
        then begin
          if gc_collect_one t e then incr collected;
          false
        end
        else true)
      finished
  in
  if t.config.max_store_bytes > 0 then
    List.iter
      (fun e ->
        if Atomic.get t.store_bytes > t.config.max_store_bytes then
          if gc_collect_one t e then incr collected)
      survivors;
  !collected

(* Maintenance thread: GC every [gc_interval], plus disk-pressure probes
   so an idle server still recovers (the admission-path probe only fires
   when traffic arrives). *)
let gc_loop t =
  let rec sleep remaining =
    if remaining > 0.0 && not (Atomic.get t.stopping) then begin
      let step = Float.min 0.05 remaining in
      Thread.delay step;
      sleep (remaining -. step)
    end
  in
  while not (Atomic.get t.stopping) do
    sleep t.config.gc_interval;
    if not (Atomic.get t.stopping) then begin
      if Atomic.get t.disk_pressured then ignore (disk_ok t : bool);
      let n = gc_now t in
      if n > 0 then
        Log.info (fun m ->
            m "gc: collected %d job(s), store at %d bytes" n
              (Atomic.get t.store_bytes))
    end
  done

(* ---------------- connection + listener threads ---------------- *)

(* Connection thread.  The listener already counted this connection in
   [t.conns]; we own the decrement.  Every frame is read against an
   ABSOLUTE deadline of [recv_timeout] from its first byte — the
   slowloris defence: a client dripping one byte per interval is cut off
   at the deadline instead of holding the thread and fd forever. *)
let handle_connection t fd =
  let rec loop () =
    let deadline = Unix.gettimeofday () +. t.config.recv_timeout in
    match Proto.read_frame ~deadline fd with
    | Error msg ->
        (* protocol desync: answer NET002 and drop the connection *)
        Proto.send_response fd (Proto.Error_resp { code = "NET002"; message = msg })
    | Ok payload -> (
        match Proto.decode_request payload with
        | Error msg ->
            Proto.send_response fd
              (Proto.Error_resp { code = "NET002"; message = msg })
        | Ok req ->
            Proto.send_response fd (handle_request t req);
            loop ())
  in
  (try loop () with
  | Proto.Closed -> ()
  | Proto.Timed_out -> Atomic.incr t.conns_timed_out
  | Unix.Unix_error _ -> ());
  ignore (Atomic.fetch_and_add t.conns (-1) : int);
  try Unix.close fd with Unix.Unix_error _ -> ()

let listener_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ -> () (* socket closed: stopping *)
    | fd, _addr ->
        (if Atomic.get t.stopping then
           try Unix.close fd with Unix.Unix_error _ -> ()
         else if
           t.config.max_connections > 0
           && Atomic.get t.conns >= t.config.max_connections
         then begin
           (* over the cap: best-effort rejection with a bounded send,
              so a slow peer can never block the accept loop *)
           Atomic.incr t.conns_rejected;
           (try
              Unix.setsockopt_float fd Unix.SO_SNDTIMEO 0.5;
              Proto.send_response fd
                (Proto.Rejected
                   { retry_after = 1.0;
                     reason = "NET004 connection limit reached" })
            with Proto.Closed | Unix.Unix_error _ | Invalid_argument _ -> ());
           try Unix.close fd with Unix.Unix_error _ -> ()
         end
         else begin
           ignore (Atomic.fetch_and_add t.conns 1 : int);
           ignore (Thread.create (fun () -> handle_connection t fd) ())
         end);
        loop ()
  in
  loop ()

(* ---------------- startup scan ---------------- *)

let recover t =
  let dirs p = try Sys.readdir p with Sys_error _ -> [||] in
  Array.iter
    (fun shard ->
      if String.length shard >= 6 && String.sub shard 0 6 = "shard-" then
        let shard_dir = Filename.concat t.store_root shard in
        Array.iter
          (fun jdir ->
            let dir = Filename.concat shard_dir jdir in
            let meta_p = Filename.concat dir "job.meta" in
            let src_p = Filename.concat dir "source.mf" in
            if Sys.file_exists (Filename.concat dir "job.tomb") then begin
              (* a GC died mid-delete: the tomb is durable, so the job is
                 dead — finish the delete, never resurrect *)
              Log.info (fun m -> m "sweeping tombstoned job dir %s" dir);
              gc_delete dir
            end
            else if Sys.file_exists meta_p && Sys.file_exists src_p then
              match job_of_meta ~dir ~source:(read_file src_p) (read_file meta_p) with
              | None -> Log.warn (fun m -> m "[SRV005] unreadable job meta in %s" dir)
              | Some job ->
                  let mtime p =
                    try (Unix.stat p).Unix.st_mtime
                    with Unix.Unix_error _ -> Unix.gettimeofday ()
                  in
                  (* seed the byte gauge and the tenant's quota ledger:
                     this is what makes quotas survive a restart *)
                  let seed state ~finished =
                    let e = register t job state in
                    e.finished <- finished;
                    e.bytes <- dir_bytes dir;
                    ignore (Atomic.fetch_and_add t.store_bytes e.bytes : int);
                    Quota.charge t.quota ~tenant:job.tenant ~bytes:e.bytes
                      ~jobs:1
                  in
                  if Sys.file_exists (report_path job) then
                    seed (Done { runs = job.runs })
                      ~finished:(mtime (report_path job))
                  else if Sys.file_exists (err_path job) then
                    seed (Failed { code = "" }) ~finished:(mtime (err_path job))
                  else begin
                    seed Queued ~finished:0.0;
                    (* acked work outranks the admission bound: recovery
                       must never drop a job the server promised to run *)
                    match Admission.submit ~force:true t.adm ~tenant:job.tenant job with
                    | Ok _ ->
                        Log.info (fun m ->
                            m "recovered job %s/%s: re-enqueued" job.tenant job.name)
                    | Error _ -> ()
                  end)
          (dirs shard_dir))
    (dirs t.store_root)

(* ---------------- lifecycle ---------------- *)

let port t = t.bound_port

let start ?(config = default_config) ~store_root () =
  mkdir_p store_root;
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, config.port));
  Unix.listen listen_fd 128;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let t =
    { config; store_root;
      sup = Supervise.create ~policy:config.policy ~on_event:Service.log_event ();
      adm =
        Admission.create ~capacity:config.queue_capacity
          ~weights:config.tenant_weights ();
      quota = Quota.create config.quota;
      hist = Histogram.create (); jmu = Mutex.create ();
      jobs = Hashtbl.create 64; tenants_seen = Hashtbl.create 8;
      stopping = Atomic.make false; listen_fd; bound_port;
      jobs_done = Atomic.make 0; jobs_failed = Atomic.make 0;
      jobs_expired = Atomic.make 0; jobs_rejected = Atomic.make 0;
      conns = Atomic.make 0; conns_rejected = Atomic.make 0;
      conns_timed_out = Atomic.make 0;
      disk_pressured = Atomic.make false; disk_windows = Atomic.make 0;
      disk_mu = Mutex.create (); disk_last_probe = 0.0;
      store_bytes = Atomic.make 0; gc_runs = Atomic.make 0;
      gc_collected = Atomic.make 0; gc_reclaimed = Atomic.make 0;
      listener = None; gc_thread = None; domains = [] }
  in
  recover t;
  t.domains <-
    List.init (Stdlib.max 1 config.workers) (fun _ ->
        Domain.spawn (fun () -> worker_loop t));
  t.listener <- Some (Thread.create (fun () -> listener_loop t) ());
  if config.gc_interval > 0.0 then
    t.gc_thread <- Some (Thread.create (fun () -> gc_loop t) ());
  Log.info (fun m ->
      m "serving on 127.0.0.1:%d (%d workers, queue capacity %d)" bound_port
        config.workers config.queue_capacity);
  t

let stop t =
  Atomic.set t.stopping true;
  Admission.close t.adm;
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Option.iter Thread.join t.listener;
  t.listener <- None;
  Option.iter Thread.join t.gc_thread;
  t.gc_thread <- None;
  List.iter Domain.join t.domains;
  t.domains <- []

let wait t =
  Option.iter Thread.join t.listener;
  List.iter Domain.join t.domains

(* ---------------- client helpers ---------------- *)

module Client = struct
  let connect ?(host = "127.0.0.1") ~port () =
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } -> raise Not_found
        | h -> h.Unix.h_addr_list.(0))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (addr, port))
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd

  let rpc fd req =
    Proto.send_request fd req;
    Proto.recv_response fd

  let close fd = try Unix.close fd with Unix.Unix_error _ -> ()

  (* Backoff schedule for the CLI's [--retries]: the server's advised
     retry-after is the floor, exponential (0.1 * 2^attempt, capped at
     5 s) above it, and [jitter] in [0, 1] spreads synchronized clients
     up to +25 % so a rejected flood does not re-arrive as a thundering
     herd.  Pure, so the schedule is unit-testable. *)
  let retry_delay ~attempt ~retry_after ~jitter =
    let expo = Float.min 5.0 (0.1 *. (2.0 ** float_of_int attempt)) in
    Float.max retry_after expo *. (1.0 +. (0.25 *. jitter))
end
