(* Multi-tenant TCP analysis service.

   One listener thread accepts connections; each connection gets a
   thread speaking the {!Proto} frame protocol.  Submitted jobs pass
   through a bounded per-tenant {!Admission} queue (overflow is refused
   immediately with NET001 + retry-after) and are executed by a pool of
   worker DOMAINS, each running one checkpointed {!S89_core.Service}
   batch at a time — threads own the blocking socket I/O, domains own
   the compute, and the admission queue is the hand-off point.

   DURABILITY.  A job is acked only after its [source.mf] and [job.meta]
   are atomically persisted under the store root, sharded by source
   fingerprint ([shard-%02x/] from the low byte of the source FNV-64);
   each job's runs then stream into its own WAL-backed store.  A server
   killed at any point therefore restarts into a consistent picture: the
   startup scan re-registers finished jobs (report on disk), failed ones
   ([job.err] on disk), and re-enqueues everything else, and resumed
   batches continue from their run-count checkpoint to byte-identical
   reports.  Completed runs are never lost or recomputed.

   DEADLINES.  A submit carries a relative deadline (seconds; 0 = none)
   made absolute at admission.  Queue wait counts against it: an expired
   job stops at the next run boundary via the batch's [should_stop]
   guard (the same mechanism as PR 4's fuel/wall guards), answers SRV004
   and keeps the PARTIAL estimate over the runs that did complete — the
   store already holds them, so degradation is graceful, not lossy.

   LOAD SHEDDING.  A {!S89_exec.Supervise} breaker is keyed by TENANT:
   a tenant whose jobs keep failing trips its own circuit and further
   submits from it are refused (NET001 with the remaining cooldown as
   retry-after) while other tenants continue unaffected.  After the
   cooldown one job runs as the half-open probe and a success closes the
   circuit.

   Metrics (jobs done/failed/expired/rejected, per-tenant queue depth
   and breaker state, p50/p99 job latency from a fixed-bucket
   {!S89_exec.Histogram}) are served as a text document by the
   [metrics] request. *)

module Supervise = S89_exec.Supervise
module Histogram = S89_exec.Histogram
module Service = S89_core.Service
module Cost_model = S89_vm.Cost_model
module Database = S89_profiling.Database
module Diag = S89_diag.Diag

let log_src = Logs.Src.create "s89.net" ~doc:"multi-tenant TCP service"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  port : int;
  workers : int;
  queue_capacity : int;
  tenant_weights : (string * int) list;
  fsync : bool;
  policy : Supervise.policy;
  cost_model : Cost_model.t;
  recv_timeout : float;
}

let default_config =
  { port = 0; workers = 2; queue_capacity = 64; tenant_weights = [];
    fsync = true;
    policy =
      { Supervise.default_policy with
        max_restarts = 0; breaker_threshold = 5; cooldown = 2.0 };
    cost_model = Cost_model.optimized; recv_timeout = 30.0 }

type job = {
  tenant : string;
  name : string;
  runs : int;
  seed : int;
  deadline : float; (* absolute wall-clock; 0 = none *)
  submitted : float;
  source : string;
  dir : string; (* job directory under its shard *)
}

type job_state =
  | Queued
  | Running
  | Done of { runs : int }
  | Expired of { completed : int }
  | Failed of { code : string }

type entry = { job : job; mutable state : job_state }

type t = {
  config : config;
  store_root : string;
  sup : Supervise.t;
  adm : job Admission.t;
  hist : Histogram.t;
  jmu : Mutex.t;
  jobs : (string * string, entry) Hashtbl.t; (* (tenant, name), under jmu *)
  tenants_seen : (string, unit) Hashtbl.t; (* under jmu *)
  stopping : bool Atomic.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  jobs_done : int Atomic.t;
  jobs_failed : int Atomic.t;
  jobs_expired : int Atomic.t;
  jobs_rejected : int Atomic.t;
  mutable listener : Thread.t option;
  mutable domains : unit Domain.t list;
}

(* ---------------- small file helpers ---------------- *)

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

(* tmp + fsync + rename + dir fsync: the job files gate the durable-ack
   contract, so they get the same atomic commit as the store's snapshots *)
let write_atomic ~fsync path content =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (try
     let n = String.length content in
     let off = ref 0 in
     while !off < n do
       off := !off + Unix.write_substring fd content !off (n - !off)
     done;
     if fsync then Unix.fsync fd
   with e ->
     Unix.close fd;
     raise e);
  Unix.close fd;
  Unix.rename tmp path;
  if fsync then
    match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
    | exception Unix.Unix_error _ -> ()
    | dirfd ->
        (try Unix.fsync dirfd with Unix.Unix_error _ -> ());
        Unix.close dirfd

(* ---------------- job layout ---------------- *)

let shard_of_source source =
  Printf.sprintf "shard-%02x"
    (Int64.to_int (Int64.logand (Database.fnv64 source) 0xFFL))

let job_dir t ~tenant ~name ~source =
  Filename.concat
    (Filename.concat t.store_root (shard_of_source source))
    (tenant ^ "__" ^ name)

let meta_of_job j =
  String.concat "\n"
    [ "tenant " ^ j.tenant; "job " ^ j.name; "runs " ^ string_of_int j.runs;
      "seed " ^ string_of_int j.seed;
      Printf.sprintf "deadline %.17g" j.deadline;
      Printf.sprintf "submitted %.17g" j.submitted ]
  ^ "\n"

let job_of_meta ~dir ~source meta =
  let kv =
    List.filter_map
      (fun line ->
        match String.index_opt line ' ' with
        | None -> None
        | Some i ->
            Some
              ( String.sub line 0 i,
                String.sub line (i + 1) (String.length line - i - 1) ))
      (String.split_on_char '\n' meta)
  in
  let find k = List.assoc_opt k kv in
  match (find "tenant", find "job", find "runs", find "seed") with
  | Some tenant, Some name, Some runs, Some seed -> (
      match (int_of_string_opt runs, int_of_string_opt seed) with
      | Some runs, Some seed ->
          let f k d =
            match find k with
            | Some v -> Option.value ~default:d (float_of_string_opt v)
            | None -> d
          in
          Some
            { tenant; name; runs; seed; deadline = f "deadline" 0.0;
              submitted = f "submitted" 0.0; source; dir }
      | _ -> None)
  | _ -> None

let store_dir job = Filename.concat job.dir "store"
let report_path job = Filename.concat job.dir "report"
let partial_path job = Filename.concat job.dir "report.partial"
let err_path job = Filename.concat job.dir "job.err"

(* ---------------- registry ---------------- *)

let locked t f =
  Mutex.lock t.jmu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.jmu) f

let find_entry t ~tenant ~name =
  locked t (fun () -> Hashtbl.find_opt t.jobs (tenant, name))

let register t job state =
  locked t (fun () ->
      Hashtbl.replace t.tenants_seen job.tenant ();
      match Hashtbl.find_opt t.jobs (job.tenant, job.name) with
      | Some e ->
          e.state <- state;
          e
      | None ->
          let e = { job; state } in
          Hashtbl.replace t.jobs (job.tenant, job.name) e;
          e)

let set_state t entry state = locked t (fun () -> entry.state <- state)

let state_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done _ -> "done"
  | Expired _ -> "expired"
  | Failed _ -> "failed"

(* ---------------- workers ---------------- *)

exception Job_error of Diag.t

let run_job t entry =
  let job = entry.job in
  let now () = Unix.gettimeofday () in
  let expired () = job.deadline > 0.0 && now () > job.deadline in
  let finish_expired ~completed ~partial =
    Option.iter (fun p -> write_atomic ~fsync:t.config.fsync (partial_path job) p) partial;
    let d =
      Diag.errorf ~code:"SRV004"
        ~hint:"partial estimate over the completed runs is in report.partial"
        "job %s/%s deadline expired after %d/%d runs" job.tenant job.name
        completed job.runs
    in
    write_atomic ~fsync:t.config.fsync (err_path job) (Diag.to_string d ^ "\n");
    set_state t entry (Expired { completed });
    Atomic.incr t.jobs_expired;
    Histogram.observe t.hist (now () -. job.submitted);
    Log.warn (fun m -> m "%a" Diag.pp d)
  in
  if expired () then
    (* expired while queued: don't burn a worker on a dead job *)
    finish_expired ~completed:0 ~partial:None
  else begin
    set_state t entry Running;
    let should_stop () = Atomic.get t.stopping || expired () in
    match
      Supervise.protect t.sup ~key:job.tenant (fun () ->
          match
            Service.batch ~fsync:t.config.fsync ~cost_model:t.config.cost_model
              ~should_stop ~resume:true ~runs:job.runs ~seed:job.seed
              ~dir:(store_dir job) job.source
          with
          | Ok o -> o
          | Error d -> raise (Job_error d))
    with
    | Service.Completed { runs; report } ->
        write_atomic ~fsync:t.config.fsync (report_path job) report;
        set_state t entry (Done { runs });
        Atomic.incr t.jobs_done;
        Histogram.observe t.hist (now () -. job.submitted);
        Log.info (fun m -> m "job %s/%s: done (%d runs)" job.tenant job.name runs)
    | Service.Interrupted { completed; total = _; partial } ->
        if Atomic.get t.stopping && not (expired ()) then
          (* graceful shutdown: the WAL holds every completed run; the
             restart scan re-enqueues and the batch resumes byte-identically *)
          set_state t entry Queued
        else finish_expired ~completed ~partial
    | exception Job_error d ->
        write_atomic ~fsync:t.config.fsync (err_path job) (Diag.to_string d ^ "\n");
        set_state t entry (Failed { code = d.Diag.code });
        Atomic.incr t.jobs_failed;
        Log.warn (fun m -> m "job %s/%s: %a" job.tenant job.name Diag.pp d)
    | exception Supervise.Circuit_open _ ->
        let d =
          Diag.errorf ~code:"NET001"
            ~hint:"the tenant's circuit is open; resubmit after the cooldown"
            "job %s/%s shed: tenant breaker open" job.tenant job.name
        in
        write_atomic ~fsync:t.config.fsync (err_path job) (Diag.to_string d ^ "\n");
        set_state t entry (Failed { code = "NET001" });
        Atomic.incr t.jobs_failed;
        Log.warn (fun m -> m "%a" Diag.pp d)
    | exception e ->
        write_atomic ~fsync:t.config.fsync (err_path job)
          (Printexc.to_string e ^ "\n");
        set_state t entry (Failed { code = "SRV000" });
        Atomic.incr t.jobs_failed;
        Log.err (fun m -> m "job %s/%s: %s" job.tenant job.name (Printexc.to_string e))
  end

let rec worker_loop t =
  match Admission.take t.adm with
  | None -> ()
  | Some (_tenant, job) ->
      (match find_entry t ~tenant:job.tenant ~name:job.name with
      | None -> () (* unregistered work is impossible; be safe *)
      | Some entry ->
          if Atomic.get t.stopping then
            (* drained during shutdown: leave it for the restart scan *)
            set_state t entry Queued
          else run_job t entry);
      worker_loop t

(* ---------------- request handling ---------------- *)

let reject t ~retry_after ~reason =
  Atomic.incr t.jobs_rejected;
  Proto.Rejected { retry_after; reason }

let handle_submit t ~tenant ~name ~runs ~seed ~deadline ~source =
  if Atomic.get t.stopping then
    reject t ~retry_after:1.0 ~reason:"server stopping"
  else
    match Supervise.breaker_state t.sup ~key:tenant with
    | Supervise.Breaker_open { remaining } ->
        reject t
          ~retry_after:(Float.max 0.1 remaining)
          ~reason:(Printf.sprintf "NET001 tenant %s circuit open" tenant)
    | Supervise.Breaker_closed | Supervise.Breaker_half_open -> (
        match find_entry t ~tenant ~name with
        | Some { state = Queued | Running | Done _; _ } ->
            (* idempotent: resubmitting a live or finished job re-acks it *)
            Proto.Accepted { job = name }
        | Some ({ state = Expired _ | Failed _; _ } as entry) -> (
            (* explicit retry of a dead job: clear its verdict, requeue *)
            match Admission.submit t.adm ~tenant entry.job with
            | Ok _ ->
                List.iter
                  (fun p -> try Sys.remove p with Sys_error _ -> ())
                  [ err_path entry.job; partial_path entry.job ];
                set_state t entry Queued;
                Proto.Accepted { job = name }
            | Error (`Full depth) ->
                reject t ~retry_after:1.0
                  ~reason:(Printf.sprintf "NET001 queue full (depth %d)" depth)
            | Error `Closed ->
                reject t ~retry_after:1.0 ~reason:"server stopping")
        | None -> (
            if Admission.depth t.adm ~tenant >= t.config.queue_capacity then
              reject t ~retry_after:1.0
                ~reason:
                  (Printf.sprintf "NET001 queue full (depth %d)"
                     (Admission.depth t.adm ~tenant))
            else
              let now = Unix.gettimeofday () in
              let job =
                { tenant; name; runs; seed;
                  deadline = (if deadline > 0.0 then now +. deadline else 0.0);
                  submitted = now; source;
                  dir = job_dir t ~tenant ~name ~source }
              in
              (* durable-ack: source + meta are atomically on disk BEFORE
                 the accept answer, so an acked job survives any crash *)
              mkdir_p job.dir;
              write_atomic ~fsync:t.config.fsync
                (Filename.concat job.dir "source.mf")
                source;
              write_atomic ~fsync:t.config.fsync
                (Filename.concat job.dir "job.meta")
                (meta_of_job job);
              let entry = register t job Queued in
              match Admission.submit t.adm ~tenant job with
              | Ok _ -> Proto.Accepted { job = name }
              | Error (`Full depth) ->
                  (* lost the race for the last slot: withdraw the meta so
                     a restart doesn't resurrect a job we refused *)
                  locked t (fun () -> Hashtbl.remove t.jobs (tenant, name));
                  ignore entry;
                  List.iter
                    (fun p -> try Sys.remove p with Sys_error _ -> ())
                    [ Filename.concat job.dir "job.meta";
                      Filename.concat job.dir "source.mf" ];
                  reject t ~retry_after:1.0
                    ~reason:(Printf.sprintf "NET001 queue full (depth %d)" depth)
              | Error `Closed ->
                  locked t (fun () -> Hashtbl.remove t.jobs (tenant, name));
                  reject t ~retry_after:1.0 ~reason:"server stopping"))

let handle_status t ~tenant ~name =
  match find_entry t ~tenant ~name with
  | None -> Proto.Job_status { state = "unknown"; completed = 0; total = 0 }
  | Some e ->
      let completed =
        match e.state with
        | Done { runs } -> runs
        | Expired { completed } -> completed
        | Queued | Running | Failed _ -> 0
      in
      Proto.Job_status
        { state = state_string e.state; completed; total = e.job.runs }

let handle_result t ~tenant ~name =
  match find_entry t ~tenant ~name with
  | None -> Proto.Job_result { state = "unknown"; body = "" }
  | Some e ->
      let read_opt p = try read_file p with Sys_error _ -> "" in
      let body =
        match e.state with
        | Done _ -> read_opt (report_path e.job)
        | Expired _ -> read_opt (partial_path e.job)
        | Failed _ -> read_opt (err_path e.job)
        | Queued | Running -> ""
      in
      Proto.Job_result { state = state_string e.state; body }

let metrics_text t =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "s89_jobs_done %d" (Atomic.get t.jobs_done);
  line "s89_jobs_failed %d" (Atomic.get t.jobs_failed);
  line "s89_jobs_expired %d" (Atomic.get t.jobs_expired);
  line "s89_jobs_rejected %d" (Atomic.get t.jobs_rejected);
  List.iter
    (fun (tenant, depth) -> line "s89_queue_depth{tenant=\"%s\"} %d" tenant depth)
    (Admission.depths t.adm);
  let tenants =
    locked t (fun () -> Hashtbl.fold (fun k () acc -> k :: acc) t.tenants_seen [])
    |> List.sort compare
  in
  List.iter
    (fun tenant ->
      let v =
        match Supervise.breaker_state t.sup ~key:tenant with
        | Supervise.Breaker_closed -> 0
        | Supervise.Breaker_half_open -> 1
        | Supervise.Breaker_open _ -> 2
      in
      line "s89_breaker{tenant=\"%s\"} %d" tenant v)
    tenants;
  line "s89_job_latency_seconds_count %d" (Histogram.count t.hist);
  line "s89_job_latency_seconds{quantile=\"0.5\"} %.6f"
    (Histogram.quantile t.hist 0.5);
  line "s89_job_latency_seconds{quantile=\"0.99\"} %.6f"
    (Histogram.quantile t.hist 0.99);
  Buffer.contents b

let handle_request t = function
  | Proto.Submit { tenant; job; runs; seed; deadline; source } ->
      handle_submit t ~tenant ~name:job ~runs ~seed ~deadline ~source
  | Proto.Status { tenant; job } -> handle_status t ~tenant ~name:job
  | Proto.Result { tenant; job } -> handle_result t ~tenant ~name:job
  | Proto.Metrics -> Proto.Metrics_text (metrics_text t)

(* ---------------- connection + listener threads ---------------- *)

let handle_connection t fd =
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.recv_timeout
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  let rec loop () =
    match Proto.read_frame fd with
    | Error msg ->
        (* protocol desync: answer NET002 and drop the connection *)
        Proto.send_response fd (Proto.Error_resp { code = "NET002"; message = msg })
    | Ok payload -> (
        match Proto.decode_request payload with
        | Error msg ->
            Proto.send_response fd
              (Proto.Error_resp { code = "NET002"; message = msg })
        | Ok req ->
            Proto.send_response fd (handle_request t req);
            loop ())
  in
  (try loop () with
  | Proto.Closed -> ()
  | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let listener_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ -> () (* socket closed: stopping *)
    | fd, _addr ->
        if Atomic.get t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
        else ignore (Thread.create (fun () -> handle_connection t fd) ());
        loop ()
  in
  loop ()

(* ---------------- startup scan ---------------- *)

let recover t =
  let dirs p = try Sys.readdir p with Sys_error _ -> [||] in
  Array.iter
    (fun shard ->
      if String.length shard >= 6 && String.sub shard 0 6 = "shard-" then
        let shard_dir = Filename.concat t.store_root shard in
        Array.iter
          (fun jdir ->
            let dir = Filename.concat shard_dir jdir in
            let meta_p = Filename.concat dir "job.meta" in
            let src_p = Filename.concat dir "source.mf" in
            if Sys.file_exists meta_p && Sys.file_exists src_p then
              match job_of_meta ~dir ~source:(read_file src_p) (read_file meta_p) with
              | None -> Log.warn (fun m -> m "[SRV005] unreadable job meta in %s" dir)
              | Some job ->
                  if Sys.file_exists (report_path job) then
                    ignore (register t job (Done { runs = job.runs }))
                  else if Sys.file_exists (err_path job) then
                    ignore (register t job (Failed { code = "" }))
                  else begin
                    ignore (register t job Queued);
                    (* acked work outranks the admission bound: recovery
                       must never drop a job the server promised to run *)
                    match Admission.submit ~force:true t.adm ~tenant:job.tenant job with
                    | Ok _ ->
                        Log.info (fun m ->
                            m "recovered job %s/%s: re-enqueued" job.tenant job.name)
                    | Error _ -> ()
                  end)
          (dirs shard_dir))
    (dirs t.store_root)

(* ---------------- lifecycle ---------------- *)

let port t = t.bound_port

let start ?(config = default_config) ~store_root () =
  mkdir_p store_root;
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, config.port));
  Unix.listen listen_fd 128;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let t =
    { config; store_root;
      sup = Supervise.create ~policy:config.policy ~on_event:Service.log_event ();
      adm =
        Admission.create ~capacity:config.queue_capacity
          ~weights:config.tenant_weights ();
      hist = Histogram.create (); jmu = Mutex.create ();
      jobs = Hashtbl.create 64; tenants_seen = Hashtbl.create 8;
      stopping = Atomic.make false; listen_fd; bound_port;
      jobs_done = Atomic.make 0; jobs_failed = Atomic.make 0;
      jobs_expired = Atomic.make 0; jobs_rejected = Atomic.make 0;
      listener = None; domains = [] }
  in
  recover t;
  t.domains <-
    List.init (Stdlib.max 1 config.workers) (fun _ ->
        Domain.spawn (fun () -> worker_loop t));
  t.listener <- Some (Thread.create (fun () -> listener_loop t) ());
  Log.info (fun m ->
      m "serving on 127.0.0.1:%d (%d workers, queue capacity %d)" bound_port
        config.workers config.queue_capacity);
  t

let stop t =
  Atomic.set t.stopping true;
  Admission.close t.adm;
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Option.iter Thread.join t.listener;
  t.listener <- None;
  List.iter Domain.join t.domains;
  t.domains <- []

let wait t =
  Option.iter Thread.join t.listener;
  List.iter Domain.join t.domains

(* ---------------- client helpers ---------------- *)

module Client = struct
  let connect ?(host = "127.0.0.1") ~port () =
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } -> raise Not_found
        | h -> h.Unix.h_addr_list.(0))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (addr, port))
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd

  let rpc fd req =
    Proto.send_request fd req;
    Proto.recv_response fd

  let close fd = try Unix.close fd with Unix.Unix_error _ -> ()
end
