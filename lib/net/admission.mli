(** Bounded per-tenant admission queues with deterministic smooth
    weighted round-robin (SWRR) dequeue.  Submits against a full tenant
    queue are refused immediately (NET001 material) rather than
    blocking; takers block until work or {!close}.  Thread/domain-safe. *)

type 'a t

(** [create ~weights ()] — [weights] assigns per-tenant SWRR weights;
    tenants not listed get [default_weight] (1) on first submit.  Each
    tenant's queue holds at most [capacity] (64) jobs.  Raises
    [Invalid_argument] on non-positive capacity or weights. *)
val create : ?capacity:int -> ?default_weight:int -> weights:(string * int) list -> unit -> 'a t

(** [Ok depth] (the tenant's queue depth after the add), [Error (`Full
    depth)] when the tenant's queue is at capacity, [Error `Closed]
    after {!close}.  [~force:true] bypasses the capacity bound — used
    only by crash recovery, which must never drop an acked job. *)
val submit :
  ?force:bool -> 'a t -> tenant:string -> 'a -> (int, [ `Full of int | `Closed ]) result

(** Block until work is available and dequeue one job by SWRR over the
    tenants with work queued (ties alphabetical — the schedule is a pure
    function of the submit history).  [None] once the queue is closed
    AND drained: pending work is still handed out after {!close}. *)
val take : 'a t -> (string * 'a) option

(** Change a tenant's SWRR weight mid-stream (effective on the next
    pick).  The tenant's accumulated credit is clamped into
    [[-weight, weight]] so service earned under the old weight cannot be
    spent after a downgrade.  Raises [Invalid_argument] on a
    non-positive weight. *)
val set_weight : 'a t -> tenant:string -> int -> unit

(** The tenant's current weight ([default_weight] if never seen). *)
val weight : 'a t -> tenant:string -> int

val depth : 'a t -> tenant:string -> int

(** All known tenants' queue depths, sorted by tenant name. *)
val depths : 'a t -> (string * int) list

(** Refuse new submits and wake all blocked takers. *)
val close : 'a t -> unit
