(* Bounded per-tenant admission queues with weighted-fair dequeue.

   Every tenant owns a FIFO of at most [capacity] jobs; a submit against
   a full queue is refused IMMEDIATELY (the caller answers NET001 with a
   retry-after) instead of blocking the connection thread — overload
   back-pressure reaches the client, not the accept loop.

   Dequeue is smooth weighted round-robin (SWRR, the nginx algorithm)
   over the tenants with work queued: each participating tenant's credit
   grows by its weight, the highest credit wins (ties break
   alphabetically, so the schedule is deterministic), and the winner
   pays back the total weight in play.  Over any window the service
   ratio of backlogged tenants converges to their weight ratio, and a
   burst from one tenant cannot starve the others — the per-tenant
   bound caps how much of the queue it can own, and SWRR caps how much
   of the worker pool it can hold.

   One mutex + condition pair guards the whole structure: takers block
   on the condition, submitters signal it.  [close] wakes every taker;
   takers drain what is already queued, then observe [closed] and
   return [None]. *)

type 'a tenant_q = {
  mutable weight : int;
  q : 'a Queue.t;
  mutable credit : int;
}

type 'a t = {
  capacity : int;
  default_weight : int;
  mu : Mutex.t;
  nonempty : Condition.t;
  tenants : (string, 'a tenant_q) Hashtbl.t;
  mutable closed : bool;
}

let create ?(capacity = 64) ?(default_weight = 1) ~weights () =
  if capacity <= 0 then invalid_arg "Admission.create: capacity must be positive";
  if default_weight <= 0 then
    invalid_arg "Admission.create: default_weight must be positive";
  let t =
    { capacity; default_weight; mu = Mutex.create ();
      nonempty = Condition.create (); tenants = Hashtbl.create 8;
      closed = false }
  in
  List.iter
    (fun (name, weight) ->
      if weight <= 0 then invalid_arg "Admission.create: weights must be positive";
      Hashtbl.replace t.tenants name { weight; q = Queue.create (); credit = 0 })
    weights;
  t

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let tenant_q t name =
  match Hashtbl.find_opt t.tenants name with
  | Some tq -> tq
  | None ->
      let tq = { weight = t.default_weight; q = Queue.create (); credit = 0 } in
      Hashtbl.replace t.tenants name tq;
      tq

let submit ?(force = false) t ~tenant x =
  locked t (fun () ->
      if t.closed then Error `Closed
      else
        let tq = tenant_q t tenant in
        let depth = Queue.length tq.q in
        if depth >= t.capacity && not force then Error (`Full depth)
        else begin
          Queue.add x tq.q;
          Condition.signal t.nonempty;
          Ok (depth + 1)
        end)

(* the SWRR pick over tenants with work queued; assumes the lock is held
   and at least one queue is nonempty *)
let pick_locked t =
  let participants =
    Hashtbl.fold
      (fun name tq acc -> if Queue.is_empty tq.q then acc else (name, tq) :: acc)
      t.tenants []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let total = List.fold_left (fun s (_, tq) -> s + tq.weight) 0 participants in
  List.iter (fun (_, tq) -> tq.credit <- tq.credit + tq.weight) participants;
  let winner_name, winner =
    List.fold_left
      (fun ((_, best) as acc) ((_, tq) as cand) ->
        if tq.credit > best.credit then cand else acc)
      (List.hd participants) (List.tl participants)
  in
  winner.credit <- winner.credit - total;
  (winner_name, Queue.pop winner.q)

let take t =
  locked t (fun () ->
      let rec wait () =
        let has_work =
          Hashtbl.fold (fun _ tq b -> b || not (Queue.is_empty tq.q)) t.tenants false
        in
        if has_work then Some (pick_locked t)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.mu;
          wait ()
        end
      in
      wait ())

(* Mid-stream reweighting: takes effect on the next pick.  The credit is
   clamped into the new weight's natural range so a tenant downgraded
   after a long backlog cannot spend credit earned at the old weight
   (which would let it hog picks long after the operator throttled it). *)
let set_weight t ~tenant weight =
  if weight <= 0 then invalid_arg "Admission.set_weight: weight must be positive";
  locked t (fun () ->
      let tq = tenant_q t tenant in
      tq.weight <- weight;
      if tq.credit > weight then tq.credit <- weight
      else if tq.credit < -weight then tq.credit <- -weight)

let weight t ~tenant =
  locked t (fun () ->
      match Hashtbl.find_opt t.tenants tenant with
      | None -> t.default_weight
      | Some tq -> tq.weight)

let depth t ~tenant =
  locked t (fun () ->
      match Hashtbl.find_opt t.tenants tenant with
      | None -> 0
      | Some tq -> Queue.length tq.q)

let depths t =
  locked t (fun () ->
      Hashtbl.fold (fun name tq acc -> (name, Queue.length tq.q) :: acc) t.tenants []
      |> List.sort compare)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)
